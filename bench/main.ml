(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (§5) on the nine synthetic workloads, plus an
   ablation (bidirectional streams vs Sequitur) and Bechamel
   micro-benchmarks of the kernel behind each table.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe table1 fig8  -- a subset
     dune exec bench/main.exe -- --quick   -- quarter-scale sizes

   Absolute numbers differ from the paper (its substrate was Trimaran +
   SPEC on 2004 hardware); the shapes are the reproduction target. See
   EXPERIMENTS.md. *)

module Spec = Wet_workloads.Spec
module Interp = Wet_interp.Interp
module T = Wet_interp.Trace
module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module Sizes = Wet_core.Sizes
module AP = Wet_arch.Arch_profile
module Table = Wet_report.Table
module Chart = Wet_report.Chart
module Instr = Wet_ir.Instr

let quick = ref false

(* Timing and narration come from wet_obs, so the bench harness and the
   CLI report from the same clock and the same progress channel. With a
   sink enabled (e.g. under [wet_cli profile]) each [time] also leaves a
   span behind. *)
let time name f = Wet_obs.Span.timed name f

let progress fmt = Wet_obs.Log.progress fmt

let scale_of w =
  let s = w.Spec.default_scale in
  if !quick then max 1 (s / 4) else s

let mb = Sizes.mb

(* ------------------------------------------------------------------ *)
(* Shared full-scale evaluation (Tables 1-4, Figure 8)                 *)
(* ------------------------------------------------------------------ *)

type size_row = {
  name : string;
  stmts : int;
  orig : Sizes.breakdown;
  tier1 : Sizes.breakdown;
  tier2 : Sizes.breakdown;
  arch : AP.result;
  construction_s : float;
}

let size_rows : size_row list Lazy.t =
  lazy
    (List.map
       (fun w ->
         progress "measuring %s (scale %d)" w.Spec.name (scale_of w);
         let res = Spec.run ~scale:(scale_of w) w in
         let arch = AP.of_trace res.Interp.trace in
         let w1, construction_s =
           time "bench.build.tier1" (fun () -> Builder.build res.Interp.trace)
         in
         let orig = Sizes.original w1 in
         let tier1 = Sizes.current w1 in
         let w2 = Builder.pack w1 in
         let tier2 = Sizes.current w2 in
         {
           name = w.Spec.name;
           stmts = res.Interp.stmts_executed;
           orig;
           tier1;
           tier2;
           arch;
           construction_s;
         })
       Spec.all)

let avg f rows =
  List.fold_left (fun acc r -> acc +. f r) 0. rows
  /. float_of_int (List.length rows)

let table1 () =
  let rows = Lazy.force size_rows in
  let data =
    List.map
      (fun r ->
        [
          r.name;
          Table.millions r.stmts;
          Table.f2 (mb r.orig.Sizes.total_bytes);
          Table.f2 (mb r.tier2.Sizes.total_bytes);
          Table.f2 (r.orig.Sizes.total_bytes /. r.tier2.Sizes.total_bytes);
        ])
      rows
    @ [
        [
          "Avg.";
          Table.f2 (avg (fun r -> float_of_int r.stmts /. 1e6) rows);
          Table.f2 (avg (fun r -> mb r.orig.Sizes.total_bytes) rows);
          Table.f2 (avg (fun r -> mb r.tier2.Sizes.total_bytes) rows);
          Table.f2
            (avg
               (fun r -> r.orig.Sizes.total_bytes /. r.tier2.Sizes.total_bytes)
               rows);
        ];
      ]
  in
  Table.print ~title:"Table 1. WET sizes."
    ~header:
      [ "Benchmark"; "Stmts Executed (Millions)"; "Orig. WET (MB)";
        "Comp. WET (MB)"; "Orig./Comp." ]
    data

let table2 () =
  let rows = Lazy.force size_rows in
  let data =
    List.map
      (fun r ->
        [
          r.name;
          Table.f2 (mb r.orig.Sizes.ts_bytes);
          Table.f2 (r.orig.Sizes.ts_bytes /. r.tier1.Sizes.ts_bytes);
          Table.f2 (r.orig.Sizes.ts_bytes /. r.tier2.Sizes.ts_bytes);
          Table.f2 (mb r.orig.Sizes.vals_bytes);
          Table.f2 (r.orig.Sizes.vals_bytes /. r.tier1.Sizes.vals_bytes);
          Table.f2 (r.orig.Sizes.vals_bytes /. r.tier2.Sizes.vals_bytes);
        ])
      rows
    @ [
        [
          "Avg.";
          Table.f2 (avg (fun r -> mb r.orig.Sizes.ts_bytes) rows);
          Table.f2
            (avg (fun r -> r.orig.Sizes.ts_bytes /. r.tier1.Sizes.ts_bytes) rows);
          Table.f2
            (avg (fun r -> r.orig.Sizes.ts_bytes /. r.tier2.Sizes.ts_bytes) rows);
          Table.f2 (avg (fun r -> mb r.orig.Sizes.vals_bytes) rows);
          Table.f2
            (avg
               (fun r -> r.orig.Sizes.vals_bytes /. r.tier1.Sizes.vals_bytes)
               rows);
          Table.f2
            (avg
               (fun r -> r.orig.Sizes.vals_bytes /. r.tier2.Sizes.vals_bytes)
               rows);
        ];
      ]
  in
  Table.print ~title:"Table 2. Effect of compression on node labels."
    ~header:
      [ "Benchmark"; "ts Orig. (MB)"; "ts Orig./Tier-1"; "ts Orig./Tier-2";
        "vals Orig. (MB)"; "vals Orig./Tier-1"; "vals Orig./Tier-2" ]
    data

let table3 () =
  let rows = Lazy.force size_rows in
  let data =
    List.map
      (fun r ->
        [
          r.name;
          Table.f2 (mb r.orig.Sizes.edge_bytes);
          Table.f2 (r.orig.Sizes.edge_bytes /. r.tier1.Sizes.edge_bytes);
          Table.f2 (r.orig.Sizes.edge_bytes /. r.tier2.Sizes.edge_bytes);
        ])
      rows
    @ [
        [
          "Avg.";
          Table.f2 (avg (fun r -> mb r.orig.Sizes.edge_bytes) rows);
          Table.f2
            (avg
               (fun r -> r.orig.Sizes.edge_bytes /. r.tier1.Sizes.edge_bytes)
               rows);
          Table.f2
            (avg
               (fun r -> r.orig.Sizes.edge_bytes /. r.tier2.Sizes.edge_bytes)
               rows);
        ];
      ]
  in
  Table.print ~title:"Table 3. Effect of compression on edge labels."
    ~header:
      [ "Benchmark"; "Edge labels Orig. (MB)"; "Orig./Tier-1"; "Orig./Tier-2" ]
    data

let table4 () =
  let rows = Lazy.force size_rows in
  let data =
    List.map
      (fun r ->
        let b, l, s = AP.history_bytes r.arch in
        [ r.name; Table.f2 (mb b); Table.f2 (mb l); Table.f2 (mb s) ])
      rows
    @ [
        (let sum f =
           avg (fun r -> let b, l, s = AP.history_bytes r.arch in f (b, l, s)) rows
         in
         [
           "Avg.";
           Table.f2 (mb (sum (fun (b, _, _) -> b)));
           Table.f2 (mb (sum (fun (_, l, _) -> l)));
           Table.f2 (mb (sum (fun (_, _, s) -> s)));
         ]);
      ]
  in
  Table.print
    ~title:
      "Table 4. Architecture specific information (uncompressed 1-bit \
       histories)."
    ~header:[ "Benchmark"; "Branch (MB)"; "Load (MB)"; "Store (MB)" ]
    data

let fig8 () =
  let rows = Lazy.force size_rows in
  let bars =
    List.concat_map
      (fun r ->
        [
          ( r.name ^ " orig",
            [ r.orig.Sizes.ts_bytes; r.orig.Sizes.vals_bytes; r.orig.Sizes.edge_bytes ] );
          ( r.name ^ " tier1",
            [ r.tier1.Sizes.ts_bytes; r.tier1.Sizes.vals_bytes; r.tier1.Sizes.edge_bytes ] );
          ( r.name ^ " tier2",
            [ r.tier2.Sizes.ts_bytes; r.tier2.Sizes.vals_bytes; r.tier2.Sizes.edge_bytes ] );
        ])
      rows
  in
  print_string
    (Chart.stacked
       ~title:
         "Figure 8. Relative sizes of WET components (ts / vals / edge \
          labels) before and after each tier."
       ~width:50
       ~legend:[ ('t', "ts-nodes"); ('v', "vals-nodes"); ('#', "ts pairs-edges") ]
       bars);
  print_newline ()

let fig9 () =
  print_endline
    "Figure 9. Scalability of compression ratio (ratio vs execution length).";
  List.iter
    (fun w ->
      let base = scale_of w in
      let points =
        List.map
          (fun q ->
            let scale = max 1 (base * q / 4) in
            let res = Spec.run ~scale w in
            let w1 = Builder.build res.Interp.trace in
            let orig = Sizes.original w1 in
            let w2 = Builder.pack w1 in
            let t2 = Sizes.current w2 in
            progress "fig9 %s scale %d: %d stmts" w.Spec.name scale
              res.Interp.stmts_executed;
            ( Printf.sprintf "%5.2fM stmts"
                (float_of_int res.Interp.stmts_executed /. 1e6),
              orig.Sizes.total_bytes /. t2.Sizes.total_bytes ))
          [ 1; 2; 3; 4 ]
      in
      print_string
        (Chart.series ~title:("  " ^ w.Spec.name) ~ylabel:"x" points))
    Spec.all;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Timing experiments (Tables 5-9)                                     *)
(* ------------------------------------------------------------------ *)

type timing_ctx = {
  tw : Spec.t;
  tstmts : int;
  w1 : W.t;
  w2 : W.t;
  build_s : float;
}

let timing_rows : timing_ctx list Lazy.t =
  lazy
    (List.map
       (fun w ->
         progress "timing build %s" w.Spec.name;
         let res = Spec.run ~scale:w.Spec.timing_scale w in
         let w1, build_s =
           time "bench.build.tier1" (fun () -> Builder.build res.Interp.trace)
         in
         let w2 = Builder.pack w1 in
         { tw = w; tstmts = res.Interp.stmts_executed; w1; w2; build_s })
       Spec.all)

let table5 () =
  let rows = Lazy.force timing_rows in
  let data =
    List.map
      (fun r ->
        [ r.tw.Spec.name; Table.millions r.tstmts; Table.f2 r.build_s ])
      rows
    @ [
        [
          "Avg.";
          Table.f2 (avg (fun r -> float_of_int r.tstmts /. 1e6) rows);
          Table.f2 (avg (fun r -> r.build_s) rows);
        ];
      ]
  in
  Table.print ~title:"Table 5. WET construction times."
    ~header:[ "Benchmark"; "Stmts Executed (Millions)"; "Construction (sec)" ]
    data

(* Control-flow trace extraction, forward then backward (Table 6). The
   extracted trace is one 4-byte block id per block execution. *)
let cf_extract s dir =
  let count = ref 0 in
  let _ = Query.Session.control_flow s dir ~f:(fun _ _ -> incr count) in
  !count

let table6 () =
  let rows = Lazy.force timing_rows in
  let data =
    List.map
      (fun r ->
        progress "table6 %s" r.tw.Spec.name;
        let s1 = W.open_session r.w1 and s2 = W.open_session r.w2 in
        Query.Session.park s1 Query.Forward;
        Query.Session.park s2 Query.Forward;
        let blocks = r.w1.W.stats.W.block_execs in
        let trace_mb = mb (4. *. float_of_int blocks) in
        let measure sess dir =
          let n, s = time "bench.query.cf" (fun () -> cf_extract sess dir) in
          assert (n = blocks);
          (Printf.sprintf "%.3f" s, trace_mb /. Float.max 1e-9 s)
        in
        (* forward passes leave cursors at the end, ready for backward *)
        let f1s, f1r = measure s1 Query.Forward in
        let b1s, b1r = measure s1 Query.Backward in
        let f2s, f2r = measure s2 Query.Forward in
        let b2s, b2r = measure s2 Query.Backward in
        [
          r.tw.Spec.name;
          Table.f2 trace_mb;
          f1s; Table.f1 f1r;
          f2s; Table.f1 f2r;
          b1s; Table.f1 b1r;
          b2s; Table.f1 b2r;
        ])
      rows
  in
  Table.print
    ~title:
      "Table 6. Response times for control flow traces (forward and \
       backward, tier-1 vs tier-2)."
    ~header:
      [ "Benchmark"; "CF trace (MB)";
        "Fwd T1 (s)"; "MB/s"; "Fwd T2 (s)"; "MB/s";
        "Bwd T1 (s)"; "MB/s"; "Bwd T2 (s)"; "MB/s" ]
    data

let table7 () =
  let rows = Lazy.force timing_rows in
  let data =
    List.map
      (fun r ->
        progress "table7 %s" r.tw.Spec.name;
        let measure wet =
          let sess = W.open_session wet in
          let n, s =
            time "bench.query.load_values" (fun () ->
                Query.Session.load_values sess ~f:(fun _ _ -> ()))
          in
          (mb (4. *. float_of_int n), s)
        in
        let sz, t1 = measure r.w1 in
        let _, t2 = measure r.w2 in
        [
          r.tw.Spec.name; Table.f2 sz;
          Printf.sprintf "%.3f" t1; Table.f1 (sz /. Float.max 1e-9 t1);
          Printf.sprintf "%.3f" t2; Table.f1 (sz /. Float.max 1e-9 t2);
        ])
      rows
  in
  Table.print
    ~title:"Table 7. Response times for per-instruction load value traces."
    ~header:
      [ "Benchmark"; "Ld value trace (MB)"; "Tier-1 (s)"; "MB/s";
        "Tier-2 (s)"; "MB/s" ]
    data

let table8 () =
  let rows = Lazy.force timing_rows in
  let data =
    List.map
      (fun r ->
        progress "table8 %s" r.tw.Spec.name;
        let measure wet =
          let sess = W.open_session wet in
          let n, s =
            time "bench.query.addresses" (fun () ->
                Query.Session.addresses sess ~f:(fun _ _ -> ()))
          in
          (mb (4. *. float_of_int n), s)
        in
        let sz, t1 = measure r.w1 in
        let _, t2 = measure r.w2 in
        [
          r.tw.Spec.name; Table.f2 sz;
          Printf.sprintf "%.3f" t1; Table.f1 (sz /. Float.max 1e-9 t1);
          Printf.sprintf "%.3f" t2; Table.f1 (sz /. Float.max 1e-9 t2);
        ])
      rows
  in
  Table.print
    ~title:
      "Table 8. Response times for per-instruction load/store address \
       traces."
    ~header:
      [ "Benchmark"; "Address trace (MB)"; "Tier-1 (s)"; "MB/s";
        "Tier-2 (s)"; "MB/s" ]
    data

(* 25 slice criteria per benchmark: value-producing copies picked by a
   seeded PRNG, sliced at their last execution instance (Table 9). *)
let slice_criteria wet n =
  let defs =
    Array.of_list
      (Query.copies_matching wet (fun i -> Instr.has_def i))
  in
  let rng = Wet_util.Prng.create 20040101 in
  List.init n (fun _ ->
      let c = defs.(Wet_util.Prng.int rng (Array.length defs)) in
      (c, (W.node_of_copy wet c).W.n_nexec - 1))

let table9 () =
  let rows = Lazy.force timing_rows in
  let data =
    List.map
      (fun r ->
        progress "table9 %s" r.tw.Spec.name;
        let criteria = slice_criteria r.w1 25 in
        let run wet =
          let sess = W.open_session wet in
          let _, s =
            time "bench.slice.backward" (fun () ->
                List.iter
                  (fun (c, i) -> ignore (Slice.Session.backward sess c i))
                  criteria)
          in
          s /. float_of_int (List.length criteria)
        in
        let t1 = run r.w1 in
        let t2 = run r.w2 in
        [
          r.tw.Spec.name;
          Printf.sprintf "%.4f" t1;
          Printf.sprintf "%.4f" t2;
          Table.f2 (t2 /. Float.max 1e-9 t1);
        ])
      rows
  in
  Table.print ~title:"Table 9. WET slices (avg over 25 slices)."
    ~header:[ "Benchmark"; "Tier-1 (sec)"; "Tier-2 (sec)"; "Tier-2/Tier-1" ]
    data

(* ------------------------------------------------------------------ *)
(* Ablation: bidirectional predictor streams vs Sequitur (§4's claim)  *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline
    "Ablation. Generic stream compressors on real WET label streams\n\
     (gcc timing run): bits per value, lower is better. The paper argues\n\
     Sequitur is traversable but weaker than predictor-based compression\n\
     on value streams.";
  let r = List.nth (Lazy.force timing_rows) 1 (* 126.gcc *) in
  let wet = r.w1 in
  (* representative streams *)
  let node =
    Array.to_list wet.W.nodes
    |> List.sort (fun a b -> compare b.W.n_nexec a.W.n_nexec)
    |> List.hd
  in
  let ts_stream = W.Stream.contents node.W.n_ts in
  let pattern_stream =
    match
      Array.to_list node.W.n_groups
      |> List.filter_map (fun g -> g.W.g_pattern)
    with
    | p :: _ -> W.Stream.contents p
    | [] -> [||]
  in
  let uvals_stream =
    let best = ref [||] in
    Array.iter
      (fun u ->
        match u with
        | Some s ->
          let a = W.Stream.contents s in
          if Array.length a > Array.length !best then best := a
        | None -> ())
      wet.W.copy_uvals;
    !best
  in
  let streams =
    [
      ("node timestamps", ts_stream);
      ("group pattern", pattern_stream);
      ("largest UVals", uvals_stream);
    ]
  in
  (* a unidirectional VPC-style coding: 1 bit per hit, 33 per miss, no
     stored tables (they are rebuilt while decompressing) — the paper's
     [3]; its weakness is that it only decompresses front to back *)
  let unidir_bits arr =
    let best = ref (32. *. float_of_int (Array.length arr)) in
    List.iter
      (fun p ->
        let acc = Wet_predict.Predictor.accuracy p arr in
        let n = float_of_int (Array.length arr) in
        let bits = (acc *. n) +. (33. *. (1. -. acc) *. n) in
        if bits < !best then best := bits)
      [
        Wet_predict.Predictor.fcm ~ctx:2 ();
        Wet_predict.Predictor.dfcm ~ctx:2 ();
        Wet_predict.Predictor.last_n ~n:4;
        Wet_predict.Predictor.stride ();
      ];
    !best
  in
  let rows =
    List.filter_map
      (fun (name, arr) ->
        if Array.length arr < 4 then None
        else begin
          let n = float_of_int (Array.length arr) in
          let bidir =
            let s = Wet_bistream.Stream.compress arr in
            (Wet_bistream.Stream.method_name s, float_of_int (Wet_bistream.Stream.bits s) /. n)
          in
          let seq =
            float_of_int (Wet_sequitur.Sequitur.bits (Wet_sequitur.Sequitur.build arr)) /. n
          in
          Some
            [
              name;
              Table.i (Array.length arr);
              fst bidir;
              Table.f2 (snd bidir);
              Table.f2 (unidir_bits arr /. n);
              Table.f2 seq;
              Table.f2 32.;
            ]
        end)
      streams
  in
  Table.print
    ~title:
      "Bidirectional predictor streams vs unidirectional VPC coding vs \
       Sequitur."
    ~header:
      [ "Stream"; "Length"; "Best method"; "Bidir bits/val";
        "Unidir bits/val"; "Sequitur bits/val"; "Raw bits/val" ]
    rows

(* Method x context-size sensitivity of the bidirectional compressors,
   on a real timestamp stream: the data behind the paper's choice to try
   "three versions with differing context size" per method. *)
let ctx_ablation () =
  print_endline
    "Ablation. Compression (x over raw) of every (method, context) pair\n\
     on the hottest node's timestamp stream and largest UVals stream\n\
     (126.gcc timing run).";
  let r = List.nth (Lazy.force timing_rows) 1 in
  let wet = r.w1 in
  let hottest =
    Array.fold_left
      (fun best (n : W.node) -> if n.W.n_nexec > best.W.n_nexec then n else best)
      wet.W.nodes.(0) wet.W.nodes
  in
  let uvals =
    let best = ref [||] in
    Array.iter
      (function
        | Some s ->
          let a = W.Stream.contents s in
          if Array.length a > Array.length !best then best := a
        | None -> ())
      wet.W.copy_uvals;
    !best
  in
  let streams =
    [ ("timestamps", W.Stream.contents hottest.W.n_ts); ("uvals", uvals) ]
  in
  List.iter
    (fun (sname, arr) ->
      if Array.length arr >= 4 then begin
        let rows =
          List.map
            (fun m ->
              [ Wet_bistream.Bidir.meth_name m ]
              @ List.map
                  (fun ctx ->
                    let b = Wet_bistream.Bidir.compress m ~ctx arr in
                    Table.f2
                      (float_of_int (32 * Array.length arr)
                       /. float_of_int (Wet_bistream.Bidir.compressed_bits b)))
                  [ 1; 2; 4; 8 ])
            Wet_bistream.Bidir.all_meths
        in
        Table.print
          ~title:(Printf.sprintf "%s stream (%d values)." sname (Array.length arr))
          ~header:[ "Method"; "ctx=1"; "ctx=2"; "ctx=4"; "ctx=8" ]
          rows
      end)
    streams

(* Optimised vs unoptimised code: how scalar optimisation changes what
   the WET sees. Trimaran profiles optimised intermediate code; this
   quantifies the difference on our side. *)
let opt_ablation () =
  print_endline
    "Ablation. WET metrics on unoptimised (-O0) vs optimised (-O1) code.";
  let rows =
    List.concat_map
      (fun name ->
        let w = Spec.find name in
        let scale = w.Spec.timing_scale in
        List.map
          (fun (tag, level) ->
            let prog = Wet_opt.Driver.optimize ~level (Spec.compile w) in
            let res =
              Interp.run prog ~input:(Spec.input w ~scale)
            in
            let w1 = Builder.build res.Interp.trace in
            let orig = Sizes.original w1 in
            let w2 = Builder.pack w1 in
            let t2 = Sizes.current w2 in
            [
              w.Spec.name ^ " " ^ tag;
              Table.millions res.Interp.stmts_executed;
              Table.f2 (mb orig.Sizes.total_bytes);
              Table.f2 (mb t2.Sizes.total_bytes);
              Table.f2 (orig.Sizes.total_bytes /. t2.Sizes.total_bytes);
            ])
          [ ("-O0", 0); ("-O1", 1) ])
      [ "126.gcc"; "181.mcf"; "300.twolf" ]
  in
  Table.print ~title:"Optimisation ablation."
    ~header:
      [ "Benchmark"; "Stmts (M)"; "Orig. WET (MB)"; "Comp. WET (MB)";
        "Ratio" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the kernel behind each table             *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  print_endline
    "Bechamel micro-benchmarks (one kernel per table/figure; ns per run).";
  let w = Spec.find "parser" in
  let res = Spec.run ~scale:60 w in
  let trace = res.Interp.trace in
  let w1 = Builder.build trace in
  let w2 = Builder.pack w1 in
  let hottest =
    Array.fold_left
      (fun best (n : W.node) ->
        if n.W.n_nexec > best.W.n_nexec then n else best)
      w1.W.nodes.(0) w1.W.nodes
  in
  let ts = W.Stream.contents hottest.W.n_ts in
  let packed = Wet_bistream.Stream.compress ts in
  let tests =
    [
      (* Table 1/5: construction *)
      Test.make ~name:"table1+5: build tier-1 WET"
        (Staged.stage (fun () -> ignore (Builder.build trace)));
      (* Tables 1-3: tier-2 packing *)
      Test.make ~name:"tables1-3: pack to tier-2"
        (Staged.stage (fun () -> ignore (Builder.pack w1)));
      (* Table 4: architectural replay *)
      Test.make ~name:"table4: arch replay"
        (Staged.stage (fun () -> ignore (AP.of_trace trace)));
      (* Table 6: control-flow extraction *)
      Test.make ~name:"table6: cf trace (tier-2)"
        (Staged.stage
           (let s = W.open_session w2 in
            fun () ->
              Query.Session.park s Query.Forward;
              ignore
                (Query.Session.control_flow s Query.Forward
                   ~f:(fun _ _ -> ()))));
      (* Table 7 *)
      Test.make ~name:"table7: load values (tier-2)"
        (Staged.stage
           (let s = W.open_session w2 in
            fun () ->
              ignore (Query.Session.load_values s ~f:(fun _ _ -> ()))));
      (* Table 8 *)
      Test.make ~name:"table8: addresses (tier-2)"
        (Staged.stage
           (let s = W.open_session w2 in
            fun () ->
              ignore (Query.Session.addresses s ~f:(fun _ _ -> ()))));
      (* Table 9 *)
      Test.make ~name:"table9: one backward slice (tier-2)"
        (Staged.stage
           (let s = W.open_session w2 in
            let c, i = List.hd (slice_criteria w2 1) in
            fun () -> ignore (Slice.Session.backward s c i)));
      (* Figures 8/9 reduce to stream compression *)
      Test.make ~name:"fig8+9: compress a ts stream"
        (Staged.stage (fun () ->
             ignore (Wet_bistream.Stream.compress ts)));
      Test.make ~name:"fig8+9: step a packed stream"
        (Staged.stage
           (let cur = Wet_bistream.Stream.Cursor.make packed in
            fun () ->
              Wet_bistream.Stream.Cursor.seek cur 0;
              for _ = 1 to min 256 (Array.length ts) do
                ignore (Wet_bistream.Stream.Cursor.step_forward cur)
              done));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"wet" ~fmt:"%s %s" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> Printf.sprintf "%.0f" x
        | Some [] | None -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  Table.print ~title:"Micro-benchmarks."
    ~header:[ "Kernel"; "ns/run" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Persisted bench observatory (BENCH_PR*.json + `wet bench-check`)    *)
(* ------------------------------------------------------------------ *)

let repeat = ref 3

let warmup = ref 1

let out_file = ref "BENCH_PR10.json"

module Bench = Wet_insight.Bench
module Explain = Wet_watch.Explain
module Qprof = Wet_qprof.Qprof
module Qlog = Wet_qprof.Qlog
module Store = Wet_core.Store
module Serve = Wet_serve.Server
module Serve_client = Wet_serve.Client
module SP = Wet_serve.Protocol

(* The sweep is 4 queries (cf fwd, cf bwd, load values, addresses); the
   per-query table columns divide by this. *)
let sweep_queries = 4

(* The fixed query sweep every observatory sample times: both directions
   of control flow, load values and addresses, all on the tier-2 WET —
   the shape of Tables 6–8 in one deterministic unit of work. *)
(* Deliberately the default session: Explain.arm () arms the default
   recorder and Qprof.profiled uses the default scope, so the sweep's
   work must land on the default cursors for the cost attribution
   below to see it. *)
let query_sweep w2 =
  let s = W.default_session w2 in
  Query.Session.park s Query.Forward;
  ignore (Query.Session.control_flow s Query.Forward ~f:(fun _ _ -> ()));
  ignore (Query.Session.control_flow s Query.Backward ~f:(fun _ _ -> ()));
  ignore (Query.Session.load_values s ~f:(fun _ _ -> ()));
  ignore (Query.Session.addresses s ~f:(fun _ _ -> ()))

let timed_ms f =
  let t0 = Wet_obs.Clock.now_ns () in
  let x = f () in
  (x, float_of_int (Wet_obs.Clock.now_ns () - t0) /. 1e6)

(* [warmup] discarded runs, then [repeat] timed ones (ms). *)
let sampled f =
  for _ = 1 to !warmup do
    ignore (f ())
  done;
  List.init !repeat (fun _ -> snd (timed_ms f))

(* One streaming build with peak tracking, against a live-word baseline
   taken after a compaction so earlier garbage doesn't inflate the
   peak. Returns (wet, peak delta in words, shard flushes). *)
let streaming_peak w ~scale =
  let prog = Spec.compile w in
  let input = Spec.input w ~scale in
  let analysis = Wet_cfg.Program_analysis.of_program prog in
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let sink = Builder.Sink.create ~track_peak:true analysis in
  let _ =
    Interp.run_with_sink ~analysis ~sink:(Builder.Sink.events sink) prog
      ~input
  in
  let wet = Builder.Sink.finish sink in
  let peak = max 0 (Builder.Sink.peak_live_words sink - live0) in
  (wet, peak, Builder.Sink.shard_count sink)

(* One fused interp+build, the `wet build` hot path. With [progress] the
   whole live-observability stack a user gets from `--progress` is
   armed — sink enabled, heartbeats on, a reporter emitting JSONL to
   /dev/null — so stream_progress_p50_ms minus stream_p50_ms is what
   watching a build live actually costs. *)
let streaming_build ?(progress = false) w ~scale =
  let prog = Spec.compile w in
  let input = Spec.input w ~scale in
  let analysis = Wet_cfg.Program_analysis.of_program prog in
  let run () =
    let sink = Builder.Sink.create analysis in
    let _ =
      Interp.run_with_sink ~analysis ~sink:(Builder.Sink.events sink) prog
        ~input
    in
    ignore (Builder.Sink.finish sink)
  in
  if not progress then run ()
  else begin
    let was_enabled = !Wet_obs.Sink.enabled in
    let hb = !Wet_obs.Sink.heartbeat_every in
    let oc = open_out "/dev/null" in
    let reporter =
      Wet_pulse.Reporter.create ~interval_ms:0 (Wet_pulse.Reporter.Jsonl oc)
    in
    Wet_obs.Sink.enable ();
    Wet_obs.Sink.heartbeat_every := 50_000;
    Wet_pulse.Reporter.install reporter;
    Fun.protect
      ~finally:(fun () ->
        Wet_pulse.Reporter.uninstall ();
        Wet_obs.Sink.heartbeat_every := hb;
        if not was_enabled then Wet_obs.Sink.disable ();
        close_out oc)
      run
  end

module Journal = Wet_journal.Journal

(* The same fused build with a checkpoint journal armed: one sink
   snapshot + fsync'd append per shard flush into [journal]
   (truncated each run). stream_checkpoint_p50_ms minus stream_p50_ms
   is what durability costs. Mirrors [streaming_build]'s shape —
   compile, input and analysis inside the timed region — so the two
   walls are directly comparable. *)
let streaming_checkpoint w ~scale ~journal =
  let prog = Spec.compile w in
  let input = Spec.input w ~scale in
  ignore
    (Builder.Checkpoint.build ~label:w.Spec.name ~journal ~program:prog
       ~input ())

(* One crash recovery, timed by the recovery path itself: kill a
   checkpointed build at its midpoint shard, then [Checkpoint.resume]
   reads the journal, restores the latest snapshot and re-executes up
   to the watermark. One-shot — a kill is not repeatable inside the
   warmup/repeat loop — so the number is recorded but never gated. *)
let resume_once w ~scale ~shards ~journal =
  let prog = Spec.compile w in
  let input = Spec.input w ~scale in
  let kill_at = max 1 (shards / 2) in
  (match
     Fun.protect
       ~finally:(fun () -> Journal.kill_after_records := None)
       (fun () ->
         Builder.Checkpoint.build ~label:w.Spec.name
           ~on_header_written:(fun () ->
             Journal.kill_after_records := Some kill_at)
           ~journal ~program:prog ~input ())
   with
   | _wet -> ()  (* tiny scales can finish before the kill fires *)
   | exception Journal.Kill_injected -> ());
  let r = Builder.Checkpoint.resume ~journal () in
  r.Builder.Checkpoint.r_resume_ms

(* Serve round trips: save the tier-2 WET to a temp container, stand up
   an in-process daemon on a temp socket, and time [trace] requests end
   to end — encode, socket write, dispatch under the engine lock,
   response read. A discarded first request warms the daemon's cache so
   the sampled walls measure serving, not loading. The daemon enables
   the span sink for its own lifetime; the prior sink state is restored
   so later stream walls stay comparable. *)
let serve_roundtrips w2 ~name =
  let dir = Filename.temp_file "wet_serve_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let wet_path = Filename.concat dir (name ^ ".wet") in
  let socket = Filename.concat dir "bench.sock" in
  let sink_was_enabled = !Wet_obs.Sink.enabled in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ wet_path; socket ];
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    if not sink_was_enabled then Wet_obs.Sink.disable ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      Store.save w2 wet_path;
      (* the daemon gets its own domain so its compute overlaps the
         clients' turnaround — in one runtime the two would serialise
         on the master lock and the concurrent phase could never beat
         the single-client rate *)
      (* the adaptive domain default: the concurrent columns measure
         what a client gets from this machine's daemon — parallel
         dispatch where cores exist, thread time-sharing where not *)
      let daemon =
        Domain.spawn (fun () ->
            Serve.run
              { (Serve.default_config ~socket) with Serve.cache_capacity = 2 })
      in
      let rec connect tries =
        match Serve_client.connect socket with
        | Ok c -> c
        | Error e ->
          if tries = 0 then failwith ("serve bench: " ^ e)
          else begin
            Thread.delay 0.02;
            connect (tries - 1)
          end
      in
      let client = connect 250 in
      let trace_req id =
        SP.request ~wet:wet_path
          ~params:[ ("kind", "cf"); ("limit", "16") ]
          ~id SP.Trace
      in
      let roundtrip_on c id =
        match Serve_client.request c (trace_req id) with
        | Ok r when r.SP.rs_ok -> ()
        | Ok r ->
          failwith
            ("serve bench: " ^ Option.value r.SP.rs_error ~default:"error")
        | Error e -> failwith ("serve bench: " ^ e)
      in
      let roundtrip id = roundtrip_on client id in
      let walls, mt_walls, mt_wall_s =
        Fun.protect
          ~finally:(fun () ->
            ignore (Serve_client.request client (SP.request ~id:0 SP.Shutdown));
            Serve_client.close client;
            Domain.join daemon)
          (fun () ->
            for i = 1 to !warmup + 1 do
              roundtrip i
            done;
            let walls =
              List.init (max 5 (!repeat * 5)) (fun i ->
                  snd (timed_ms (fun () -> roundtrip (100 + i))))
            in
            (* Concurrent phase: 4 clients, each its own connection (so
               each gets its own server-side session over the shared
               resident WET), hammering the same trace verb. Per-request
               walls feed the MT p50; the burst's total wall feeds the
               aggregate requests/sec. *)
            let clients = 4 in
            let per_client = max 5 (!repeat * 5) in
            let results = Array.make clients [] in
            let burst () =
              let threads =
                List.init clients (fun k ->
                    Thread.create
                      (fun k ->
                        let c = connect 250 in
                        Fun.protect
                          ~finally:(fun () -> Serve_client.close c)
                          (fun () ->
                            results.(k) <-
                              List.init per_client (fun i ->
                                  snd
                                    (timed_ms (fun () ->
                                         roundtrip_on c
                                           (1000 + (k * per_client) + i))))))
                      k)
              in
              List.iter Thread.join threads
            in
            let (), mt_wall_ms = timed_ms burst in
            let mt_walls = List.concat (Array.to_list results) in
            (walls, mt_walls, mt_wall_ms /. 1e3))
      in
      let mt_rps =
        if mt_wall_s <= 0. then 0.
        else float_of_int (List.length mt_walls) /. mt_wall_s
      in
      ( Bench.percentile 0.5 walls,
        Bench.percentile 0.95 walls,
        Bench.percentile 0.5 mt_walls,
        mt_rps ))

let observatory () =
  let samples =
    List.map
      (fun w ->
        let scale =
          let s = w.Spec.timing_scale in
          if !quick then max 1 (s / 4) else s
        in
        progress "observatory %s (scale %d)" w.Spec.name scale;
        (* streaming build first, before any trace is materialised, so
           the live-word peak reflects the sink alone *)
        let _wet, peak_words, shards = streaming_peak w ~scale in
        let res = Spec.run ~scale w in
        let stmts = res.Interp.stmts_executed in
        let build_ms = sampled (fun () -> Builder.build res.Interp.trace) in
        let w1 = Builder.build res.Interp.trace in
        let orig = Sizes.original w1 in
        let t1 = Sizes.current w1 in
        let w2 = Builder.pack w1 in
        let t2 = Sizes.current w2 in
        let query_ms = sampled (fun () -> query_sweep w2) in
        let stream_ms = sampled (fun () -> streaming_build w ~scale) in
        let stream_progress_ms =
          sampled (fun () -> streaming_build ~progress:true w ~scale)
        in
        (* the sweep's deterministic cost profile, via query-explain *)
        Explain.arm ();
        query_sweep w2;
        let er = Fun.protect ~finally:Explain.disarm Explain.publish in
        let switches =
          List.fold_left
            (fun a (s : Explain.stream_stats) -> a + s.Explain.e_switches)
            0 er.Explain.r_streams
        in
        (* exact decode cost of one sweep, attributed by wet_qprof. By
           this point the sweep has run several times, so the cursor
           start state is the sweep's own fixed point and the figures
           are deterministic run to run. *)
        let _, prof =
          Qprof.profiled
            ~params:[ ("workload", w.Spec.name) ]
            "bench/sweep"
            (fun () -> query_sweep w2)
        in
        (* qlog overhead: the same sweep inside a profiling context with
           a qlog line appended, vs the plain walls already sampled *)
        let qlog_ms =
          sampled (fun () ->
              let _, p = Qprof.profiled "bench/sweep" (fun () -> query_sweep w2) in
              Qlog.append "/dev/null" p)
        in
        (* durable-build costs: the checkpointed fused build, then one
           kill-at-midpoint recovery, into a throwaway journal *)
        let journal = Filename.temp_file "wet_bench" ".jrnl" in
        let stream_ckpt_ms, resume_ms =
          Fun.protect
            ~finally:(fun () ->
              try Sys.remove journal with Sys_error _ -> ())
            (fun () ->
              let ckpt =
                sampled (fun () -> streaming_checkpoint w ~scale ~journal)
              in
              (ckpt, resume_once w ~scale ~shards ~journal))
        in
        let stream_p50 = Bench.percentile 0.5 stream_ms in
        let stream_ckpt_p50 = Bench.percentile 0.5 stream_ckpt_ms in
        let checkpoint_overhead_frac =
          if stream_p50 <= 0. then 0.
          else (stream_ckpt_p50 -. stream_p50) /. stream_p50
        in
        let query_p50 = Bench.percentile 0.5 query_ms in
        let qlog_overhead_frac =
          if query_p50 <= 0. then 0.
          else (Bench.percentile 0.5 qlog_ms -. query_p50) /. query_p50
        in
        (* serve round trips against the same tier-2 WET *)
        let serve_p50_ms, serve_p95_ms, serve_mt_p50_ms, serve_mt_rps =
          serve_roundtrips w2 ~name:w.Spec.name
        in
        let build_p50 = Bench.percentile 0.5 build_ms in
        let per_label b = b.Sizes.total_bytes /. float_of_int stmts in
        {
          Bench.workload = w.Spec.name;
          scale;
          stmts;
          stmts_per_sec = float_of_int stmts /. (build_p50 /. 1e3);
          bytes_per_label_t1 = per_label t1;
          bytes_per_label_t2 = per_label t2;
          ratio_t1 = orig.Sizes.total_bytes /. t1.Sizes.total_bytes;
          ratio_t2 = orig.Sizes.total_bytes /. t2.Sizes.total_bytes;
          build_p50_ms = build_p50;
          build_p95_ms = Bench.percentile 0.95 build_ms;
          query_p50_ms = Bench.percentile 0.5 query_ms;
          query_p95_ms = Bench.percentile 0.95 query_ms;
          query_steps = Explain.total_steps er;
          query_switches = switches;
          build_peak_words = peak_words;
          wet_words = Obj.reachable_words (Obj.repr w1);
          shards;
          stream_p50_ms = stream_p50;
          stream_progress_p50_ms = Bench.percentile 0.5 stream_progress_ms;
          query_decode_steps = Qprof.decode_steps prof.Qprof.p_total;
          query_bits_touched = prof.Qprof.p_total.Qprof.c_bits;
          qlog_overhead_frac;
          stream_checkpoint_p50_ms = stream_ckpt_p50;
          checkpoint_overhead_frac;
          resume_ms;
          serve_p50_ms;
          serve_p95_ms;
          serve_mt_p50_ms;
          serve_mt_rps;
        })
      Spec.all
  in
  let run =
    {
      Bench.label = "observatory";
      quick = !quick;
      repeat = !repeat;
      warmup = !warmup;
      samples;
    }
  in
  Bench.save run !out_file;
  Table.print
    ~title:
      (Printf.sprintf
         "Bench observatory (%s scale, %d warmup + %d timed) -> %s."
         (if !quick then "quick" else "timing")
         !warmup !repeat !out_file)
    ~header:
      [ "Workload"; "Stmts"; "Stmts/s"; "B/label T2"; "Ratio T2";
        "Build p50 (ms)"; "Query p50 (ms)"; "Steps"; "Peak (Mw)"; "Shards";
        "Stream p50 (ms)"; "Reporter +%"; "Ckpt +%"; "Resume (ms)";
        "Decode/q"; "Bits/q"; "Qlog +%"; "Serve p50 (ms)"; "Serve p95 (ms)";
        "MT p50 (ms)"; "MT req/s" ]
    (List.map
       (fun (s : Bench.sample) ->
         let overhead_pct =
           if s.Bench.stream_p50_ms <= 0. then 0.
           else
             (s.Bench.stream_progress_p50_ms -. s.Bench.stream_p50_ms)
             /. s.Bench.stream_p50_ms *. 100.
         in
         [
           s.Bench.workload;
           Table.millions s.Bench.stmts;
           Printf.sprintf "%.3g" s.Bench.stmts_per_sec;
           Table.f2 s.Bench.bytes_per_label_t2;
           Table.f2 s.Bench.ratio_t2;
           Table.f2 s.Bench.build_p50_ms;
           Table.f2 s.Bench.query_p50_ms;
           Table.i s.Bench.query_steps;
           Table.f2 (float_of_int s.Bench.build_peak_words /. 1e6);
           Table.i s.Bench.shards;
           Table.f2 s.Bench.stream_p50_ms;
           Printf.sprintf "%+.1f" overhead_pct;
           Printf.sprintf "%+.1f" (100. *. s.Bench.checkpoint_overhead_frac);
           Table.f2 s.Bench.resume_ms;
           Table.i (s.Bench.query_decode_steps / sweep_queries);
           Table.i (s.Bench.query_bits_touched / sweep_queries);
           Printf.sprintf "%+.1f" (100. *. s.Bench.qlog_overhead_frac);
           Table.f2 s.Bench.serve_p50_ms;
           Table.f2 s.Bench.serve_p95_ms;
           Table.f2 s.Bench.serve_mt_p50_ms;
           Printf.sprintf "%.3g" s.Bench.serve_mt_rps;
         ])
       samples)

(* Memory smoke for CI: a streaming build's peak live-word delta must
   stay within a fixed multiple of the finished WET plus a constant
   floor covering one shard's buffers and interpreter state — the
   O(shard size + final WET) bound the sink advertises. Runs at quick
   scales; exit 3 on any violation, mirroring bench-check. *)
let memsmoke () =
  let mw n = float_of_int n /. 1e6 in
  let failures = ref 0 in
  let rows =
    List.map
      (fun w ->
        let scale = max 1 (w.Spec.timing_scale / 4) in
        progress "memsmoke %s (scale %d)" w.Spec.name scale;
        let wet, peak, shards = streaming_peak w ~scale in
        let wet_words = Obj.reachable_words (Obj.repr wet) in
        let budget = (4 * wet_words) + 4_000_000 in
        if peak > budget then incr failures;
        [
          w.Spec.name;
          Table.f2 (mw peak);
          Table.f2 (mw wet_words);
          Table.i shards;
          Table.f2 (mw budget);
          (if peak > budget then "EXCEEDED" else "ok");
        ])
      Spec.all
  in
  Table.print
    ~title:
      "Memory smoke: streaming peak vs budget (4 x WET + 4 Mwords), quick \
       scales."
    ~header:
      [ "Workload"; "Peak (Mw)"; "WET (Mw)"; "Shards"; "Budget (Mw)";
        "Status" ]
    rows;
  if !failures > 0 then begin
    Printf.printf
      "memsmoke: %d workload(s) exceeded the streaming memory budget\n"
      !failures;
    exit 3
  end
  else print_endline "memsmoke: all streaming peaks within budget"

let all_targets =
  [
    ("table1", table1); ("table2", table2); ("table3", table3);
    ("table4", table4); ("table5", table5); ("table6", table6);
    ("table7", table7); ("table8", table8); ("table9", table9);
    ("fig8", fig8); ("fig9", fig9); ("ablation", ablation);
    ("optablation", opt_ablation); ("ctxablation", ctx_ablation);
    ("micro", micro); ("observatory", observatory);
    ("memsmoke", memsmoke);
  ]

let () =
  (* Hand-rolled flag parsing: positional target names plus --quick,
     --quiet, --repeat N, --warmup N and --out FILE. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--" :: rest -> parse acc rest
    | "--quick" :: rest ->
      quick := true;
      parse acc rest
    | "--quiet" :: rest ->
      Wet_obs.Log.quiet := true;
      parse acc rest
    | (("--repeat" | "--warmup") as flag) :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= (if flag = "--repeat" then 1 else 0) ->
        (if flag = "--repeat" then repeat else warmup) := n;
        parse acc rest
      | _ ->
        Printf.eprintf "%s needs a non-negative integer, got %s\n" flag v;
        exit 1)
    | "--out" :: path :: rest ->
      out_file := path;
      parse acc rest
    | (("--repeat" | "--warmup" | "--out") as flag) :: [] ->
      Printf.eprintf "%s needs an argument\n" flag;
      exit 1
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  let targets =
    match args with
    | [] -> all_targets
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_targets with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown target %s (have: %s)\n" n
              (String.concat ", " (List.map fst all_targets));
            exit 1)
        names
  in
  List.iter
    (fun (_, f) ->
      f ();
      print_newline ())
    targets
