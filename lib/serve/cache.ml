module W = Wet_core.Wet
module Store = Wet_core.Store
module Obs = Wet_obs.Metrics

let c_hits = Obs.counter "serve.cache.hits"
let c_misses = Obs.counter "serve.cache.misses"
let c_evictions = Obs.counter "serve.cache.evictions"

type entry = {
  e_path : string;
  e_wet : W.t;
  e_damage : string list;
  mutable e_stamp : int;
  mutable e_requests : int;
}

type t = {
  cap : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity () =
  { cap = max 1 capacity; tbl = Hashtbl.create 8; clock = 0; hits = 0;
    misses = 0; evictions = 0 }

let capacity t = t.cap

let stats t = (t.hits, t.misses, t.evictions)

let resident t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort (fun a b -> compare b.e_stamp a.e_stamp)

let touch t e =
  t.clock <- t.clock + 1;
  e.e_stamp <- t.clock;
  e.e_requests <- e.e_requests + 1

let evict_lru t =
  match List.rev (resident t) with
  | [] -> ()
  | lru :: _ ->
    Hashtbl.remove t.tbl lru.e_path;
    t.evictions <- t.evictions + 1;
    Obs.incr c_evictions

let load path =
  if not (Filename.check_suffix path ".wet") then
    Error (Printf.sprintf "%s: not a .wet container" path)
  else
    match Store.load path with
    | wet -> Ok wet
    | exception Store.Corrupt { path; fault } ->
      Error (Store.corrupt_message ~path fault)
    | exception (Sys_error m | Invalid_argument m) -> Error m
    | exception Wet_error.Error e -> Error (Wet_error.message e)

let peek t path = Hashtbl.find_opt t.tbl path

let find t path =
  match Hashtbl.find_opt t.tbl path with
  | Some e ->
    t.hits <- t.hits + 1;
    Obs.incr c_hits;
    touch t e;
    Ok e
  | None ->
    t.misses <- t.misses + 1;
    Obs.incr c_misses;
    (match load path with
     | Error _ as e -> e
     | Ok wet ->
       (* one validation sweep at admission: queries after this trust
          the flags instead of re-walking the invariants per request *)
       let damage = W.validate wet in
       if Hashtbl.length t.tbl >= t.cap then evict_lru t;
       let e =
         { e_path = path; e_wet = wet; e_damage = damage; e_stamp = 0;
           e_requests = 0 }
       in
       touch t e;
       Hashtbl.add t.tbl path e;
       Ok e)
