module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
    Ok
      {
        fd;
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket
         (Unix.error_message e))

let request t req =
  match
    output_string t.oc (P.encode_request req);
    output_char t.oc '\n';
    flush t.oc;
    In_channel.input_line t.ic
  with
  | None -> Error "server closed the connection"
  | Some line ->
    (match P.decode_response line with
     | Error _ as e -> e
     (* an undecodable request earns an error reply with id 0 — the
        server never learned our id, so only match ids on successes *)
     | Ok resp when resp.P.rs_ok && resp.P.rs_id <> req.P.rq_id ->
       Error
         (Printf.sprintf "response id %d does not match request id %d"
            resp.P.rs_id req.P.rq_id)
     | Ok resp -> Ok resp)
  | exception Sys_error m -> Error m

(* Send the line as-is — not necessarily valid wet-serve/1 — and decode
   whatever comes back: the hostile-client probe. *)
let raw_request t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    In_channel.input_line t.ic
  with
  | None -> Error "server closed the connection"
  | Some l -> P.decode_response l
  | exception Sys_error m -> Error m

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call ~socket req =
  match connect socket with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> request t req)
