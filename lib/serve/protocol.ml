module Json = Wet_insight.Json

let schema = "wet-serve/1"

type verb =
  | Open
  | Stats
  | Trace
  | Slice
  | At
  | Paths
  | Watch
  | Health
  | Metrics
  | Shutdown

let all_verbs =
  [ Open; Stats; Trace; Slice; At; Paths; Watch; Health; Metrics; Shutdown ]

let verb_name = function
  | Open -> "open"
  | Stats -> "stats"
  | Trace -> "trace"
  | Slice -> "slice"
  | At -> "at"
  | Paths -> "paths"
  | Watch -> "watch"
  | Health -> "health"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let verb_of_string s =
  match
    List.find_opt (fun v -> verb_name v = String.lowercase_ascii s) all_verbs
  with
  | Some v -> Ok v
  | None ->
    Error
      (Printf.sprintf "unknown verb %S (expected one of %s)" s
         (String.concat ", " (List.map verb_name all_verbs)))

type request = {
  rq_id : int;
  rq_verb : verb;
  rq_wet : string option;
  rq_params : (string * string) list;
  rq_analyze : bool;
}

type response = {
  rs_id : int;
  rs_ok : bool;
  rs_error : string option;
  rs_lines : string list;
  rs_data : Json.t;
}

let request ?wet ?(params = []) ?(analyze = false) ~id verb =
  { rq_id = id; rq_verb = verb; rq_wet = wet; rq_params = params;
    rq_analyze = analyze }

(* ---------------- encoding ---------------- *)

let encode_request r =
  let fields =
    [ ("schema", Json.Str schema); ("id", Json.Num (float_of_int r.rq_id));
      ("verb", Json.Str (verb_name r.rq_verb)) ]
    @ (match r.rq_wet with
       | None -> []
       | Some w -> [ ("wet", Json.Str w) ])
    @ (if r.rq_params = [] then []
       else
         [ ("params",
            Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.rq_params))
         ])
    @ if r.rq_analyze then [ ("analyze", Json.Bool true) ] else []
  in
  Json.to_string (Json.Obj fields)

let encode_response r =
  let fields =
    [ ("id", Json.Num (float_of_int r.rs_id)); ("ok", Json.Bool r.rs_ok) ]
    @ (match r.rs_error with
       | None -> []
       | Some e -> [ ("error", Json.Str e) ])
    @ (if r.rs_lines = [] then []
       else
         [ ("lines", Json.Arr (List.map (fun l -> Json.Str l) r.rs_lines)) ])
    @
    match r.rs_data with Json.Obj [] -> [] | d -> [ ("data", d) ]
  in
  Json.to_string (Json.Obj fields)

(* ---------------- decoding ---------------- *)

(* Every accessor is total and names what it expected: the daemon's
   answer to a malformed line is a structured error, never a parse
   exception killing the connection. *)

let parse_object what line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "truncated or malformed %s: %s" what m)
  | Ok (Json.Obj _ as o) -> Ok o
  | Ok _ -> Error (Printf.sprintf "%s must be a JSON object" what)

let int_field what name o =
  match Json.member name o with
  | None -> Error (Printf.sprintf "%s is missing field %S" what name)
  | Some v ->
    (match Json.to_int v with
     | Some i -> Ok i
     | None -> Error (Printf.sprintf "%s field %S must be an integer" what name))

let opt_str_field what name o =
  match Json.member name o with
  | None -> Ok None
  | Some v ->
    (match Json.to_str v with
     | Some s -> Ok (Some s)
     | None -> Error (Printf.sprintf "%s field %S must be a string" what name))

let bool_field what name o ~default =
  match Json.member name o with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "%s field %S must be a boolean" what name)

let ( let* ) = Result.bind

let decode_request line =
  let what = "request" in
  let* o = parse_object what line in
  let* id = int_field what "id" o in
  let* verb_s = opt_str_field what "verb" o in
  let* verb =
    match verb_s with
    | None -> Error "request is missing field \"verb\""
    | Some s -> verb_of_string s
  in
  let* wet = opt_str_field what "wet" o in
  let* params =
    match Json.member "params" o with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, Json.Str v) :: rest -> go ((k, v) :: acc) rest
        | (k, _) :: _ ->
          Error (Printf.sprintf "request param %S must be a string" k)
      in
      go [] kvs
    | Some _ -> Error "request field \"params\" must be an object"
  in
  let* analyze = bool_field what "analyze" o ~default:false in
  Ok { rq_id = id; rq_verb = verb; rq_wet = wet; rq_params = params;
       rq_analyze = analyze }

let decode_response line =
  let what = "response" in
  let* o = parse_object what line in
  let* id = int_field what "id" o in
  let* ok = bool_field what "ok" o ~default:true in
  let* err = opt_str_field what "error" o in
  let* lines =
    match Json.member "lines" o with
    | None -> Ok []
    | Some (Json.Arr vs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | Json.Str s :: rest -> go (s :: acc) rest
        | _ -> Error "response field \"lines\" must hold strings"
      in
      go [] vs
    | Some _ -> Error "response field \"lines\" must be an array"
  in
  let data = Option.value (Json.member "data" o) ~default:(Json.Obj []) in
  Ok { rs_id = id; rs_ok = ok; rs_error = err; rs_lines = lines;
       rs_data = data }

let error_response ~id msg =
  { rs_id = id; rs_ok = false; rs_error = Some msg; rs_lines = [];
    rs_data = Json.Obj [] }
