module W = Wet_core.Wet
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module Table = Wet_report.Table
module Explain = Wet_watch.Explain
module Qprof = Wet_qprof.Qprof
module State_reconstruct = Wet_analyses.State_reconstruct
module Insight_report = Wet_insight.Report
module Insight_json = Wet_insight.Json

(* [Table.print] is render + print_newline, so the line list keeps the
   trailing "" — print_endline turns it back into the blank line. *)
let table_lines ?align ~title ~header rows =
  String.split_on_char '\n' (Table.render ?align ~title ~header rows)

type trace_kind = Cf | Values | Addresses

let trace_kind_of_string = function
  | "cf" -> Ok Cf
  | "values" -> Ok Values
  | "addresses" -> Ok Addresses
  | s ->
    Error
      (Printf.sprintf "unknown trace kind %S (cf, values or addresses)" s)

let trace s ~kind ~limit =
  let wet = W.Session.wet s in
  let lines = ref [] in
  let printed = ref 0 in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !printed < limit then begin
          lines := s :: !lines;
          incr printed
        end)
      fmt
  in
  (match kind with
   | Cf ->
     (* [control_flow] replays the timestamp chain from parked cursors;
        a previous request on this session may have left them
        mid-stream. Other sessions' cursors are unaffected. *)
     Query.Session.park s Query.Forward;
     let n =
       Query.Session.control_flow s Query.Forward ~f:(fun f b ->
           emit "f%d:B%d" f b)
     in
     lines := Printf.sprintf "... (%d block executions total)" n :: !lines
   | Values ->
     let n =
       Query.Session.load_values s ~f:(fun c v ->
           emit "load copy %d (stmt %d): %d" c wet.W.copy_stmt.(c) v)
     in
     lines := Printf.sprintf "... (%d load values total)" n :: !lines
   | Addresses ->
     let n =
       Query.Session.addresses s ~f:(fun c a ->
           emit "mem copy %d (stmt %d): @%d" c wet.W.copy_stmt.(c) a)
     in
     lines := Printf.sprintf "... (%d addresses total)" n :: !lines);
  List.rev !lines

let slice s ~output =
  let wet = W.Session.wet s in
  let outs =
    Query.copies_matching wet (function
      | Wet_ir.Instr.Output _ -> true
      | _ -> false)
  in
  let instances =
    List.concat_map
      (fun c ->
        List.init (W.node_of_copy wet c).W.n_nexec (fun i ->
            (W.Session.timestamp s c i, c, i)))
      outs
    |> List.sort compare
  in
  if instances = [] then [ "program has no outputs to slice" ]
  else begin
    let total = List.length instances in
    let k = Option.value output ~default:(total - 1) in
    if k < 0 || k >= total then
      [ Printf.sprintf "output index %d out of range [0,%d)" k total ]
    else begin
      let _, c, i = List.nth instances k in
      let lines =
        ref
          [
            Printf.sprintf
              "backward WET slice of output #%d (copy %d, instance %d):" k c
              i;
          ]
      in
      let shown = ref 0 in
      let r =
        Slice.Session.backward s c i ~f:(fun c' i' ->
            if !shown < 40 then begin
              lines :=
                Printf.sprintf "  (%s) instance %d"
                  (Fmt.str "%a" Wet_ir.Instr.pp (W.instr_of_copy wet c'))
                  i'
                :: !lines;
              incr shown
            end)
      in
      lines :=
        Printf.sprintf
          "slice: %d statement instances, %d copies, %d static statements"
          r.Slice.instances r.Slice.copies r.Slice.stmts
        :: !lines;
      List.rev !lines
    end
  end

let at s ~ts =
  let wet = W.Session.wet s in
  let total = wet.W.stats.W.path_execs in
  let ts = Option.value ts ~default:(max 1 (total / 2)) in
  match Query.Session.locate_time s ts with
  | None -> [ Printf.sprintf "timestamp %d out of range [1,%d]" ts total ]
  | Some (nid, i) ->
    let n = wet.W.nodes.(nid) in
    let lines =
      ref
        [
          Printf.sprintf "t=%d of %d: execution %d of f%d/path%d (blocks %s)"
            ts total i n.W.n_func n.W.n_path
            (String.concat " "
               (Array.to_list
                  (Array.map (Printf.sprintf "B%d") n.W.n_blocks)));
        ]
    in
    let start_ts = max 1 (ts - 2) in
    lines := Printf.sprintf "control flow from t=%d:" start_ts :: !lines;
    let shown = ref 0 in
    ignore
      (Query.Session.control_flow_from s ~start_ts ~steps:4 ~f:(fun f b ->
           if !shown < 24 then begin
             lines := Printf.sprintf "  f%d:B%d" f b :: !lines;
             incr shown
           end));
    let state = State_reconstruct.at_session s ~ts in
    let scalars =
      List.filter
        (fun (_, _, size) -> size = 1)
        wet.W.program.Wet_ir.Program.globals
    in
    if scalars <> [] then begin
      lines := Printf.sprintf "global scalars at t=%d:" ts :: !lines;
      List.iter
        (fun (name, base, _) ->
          lines :=
            Printf.sprintf "  %s = %d" name (State_reconstruct.read state base)
            :: !lines)
        scalars
    end;
    List.rev !lines

let paths wet ~top =
  let nodes = Array.copy wet.W.nodes in
  Array.sort (fun a b -> compare b.W.n_nexec a.W.n_nexec) nodes;
  let rows = ref [] in
  Array.iteri
    (fun i (n : W.node) ->
      if i < top then
        rows :=
          [
            Printf.sprintf "f%d/path%d" n.W.n_func n.W.n_path;
            string_of_int n.W.n_nexec;
            string_of_int (Array.length n.W.n_stmts);
            String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "B%d") n.W.n_blocks));
          ]
          :: !rows)
    nodes;
  table_lines ~title:"Hottest Ball-Larus paths."
    ~align:Table.[ Left; Right; Right; Left ]
    ~header:[ "Path"; "Executions"; "Stmts"; "Blocks" ]
    (List.rev !rows)

let stats_json wet ~label =
  let report = Insight_report.of_wet ~label wet in
  [ Insight_json.to_string (Insight_report.to_json report) ]

(* ---------------- --analyze tables ---------------- *)

let ns_ms ns = float_of_int ns /. 1e6

let analyze wet (p : Qprof.profile) =
  let c = p.Qprof.p_total in
  let ests = Query.estimate wet p.Qprof.p_shape in
  let actual kind =
    List.fold_left
      (fun acc (s : Explain.stream_stats) ->
        if Explain.stream_kind s.Explain.e_stream = kind then
          acc + Explain.steps s
        else acc)
      0 p.Qprof.p_streams
  in
  let kinds =
    let touched =
      List.map
        (fun (s : Explain.stream_stats) ->
          Explain.stream_kind s.Explain.e_stream)
        p.Qprof.p_streams
    in
    List.fold_left
      (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
      (List.map (fun e -> e.Query.est_kind) ests)
      touched
  in
  let estimate_lines =
    if kinds = [] then
      [ "analyze: no label streams touched (answered from in-memory arrays)" ]
    else
      let rows =
        List.map
          (fun k ->
            let est = List.find_opt (fun e -> e.Query.est_kind = k) ests in
            [
              k;
              (match est with
               | Some e -> string_of_int e.Query.est_steps
               | None -> "-");
              string_of_int (actual k);
              (match est with
               | Some e when e.Query.est_exact -> "exact"
               | Some _ -> "bound"
               | None -> "unplanned");
            ])
          kinds
      in
      table_lines
        ~title:
          (Printf.sprintf "Estimated vs actual cursor steps (%s)."
             p.Qprof.p_shape)
        ~align:Table.[ Left; Right; Right; Left ]
        ~header:[ "Stream class"; "Estimated"; "Actual"; "Model" ]
        rows
  in
  let lookups = c.Qprof.c_hits + c.Qprof.c_misses in
  let cost_rows =
    [
      [ "wall"; Printf.sprintf "%.3f ms" (ns_ms c.Qprof.c_wall_ns) ];
      [
        "decode steps";
        Printf.sprintf "%d (fwd %d, bwd %d)" (Qprof.decode_steps c)
          c.Qprof.c_fwd c.Qprof.c_bwd;
      ];
      [ "direction switches"; string_of_int c.Qprof.c_switches ];
      [
        "dictionary";
        (if lookups = 0 then "no packed entries decoded"
         else
           Printf.sprintf "%d hits / %d misses (%.1f%% hit rate)"
             c.Qprof.c_hits c.Qprof.c_misses
             (100. *. float_of_int c.Qprof.c_hits /. float_of_int lookups));
      ];
      [
        "stored bits touched";
        Printf.sprintf "%d (%.1f KB)" c.Qprof.c_bits
          (float_of_int c.Qprof.c_bits /. 8. /. 1024.);
      ];
      [
        "allocation";
        Printf.sprintf "%.2f Mwords"
          (float_of_int c.Qprof.c_alloc_words /. 1e6);
      ];
    ]
    @ (if c.Qprof.c_seq_input = 0 then []
       else
         [
           [
             "sequitur (build inside query)";
             Printf.sprintf "%d appends, %d digram hits, %d rules"
               c.Qprof.c_seq_input c.Qprof.c_seq_digram_hits
               c.Qprof.c_seq_rules_created;
           ];
         ])
    @ [
        [
          "streams touched";
          (let entry_points =
             List.fold_left
               (fun acc q -> if List.mem q acc then acc else acc @ [ q ])
               [] p.Qprof.p_queries
           in
           Printf.sprintf "%d (%s)"
             (List.length p.Qprof.p_streams)
             (if entry_points = [] then "no entry points recorded"
              else String.concat ", " entry_points));
        ];
      ]
  in
  let cost_lines =
    table_lines
      ~title:(Printf.sprintf "Query cost (%s)." p.Qprof.p_outcome)
      ~align:Table.[ Left; Left ]
      ~header:[ "Cost"; "Value" ]
      cost_rows
  in
  estimate_lines @ cost_lines
  @ List.map (fun h -> Printf.sprintf "hint: %s" h) (Qprof.hints p)
