module W = Wet_core.Wet
module Telemetry = Wet_bistream.Telemetry
module Ex = Wet_watch.Explain
module Obs = Wet_obs.Metrics
module Sink = Wet_obs.Sink
module Export = Wet_obs.Export
module Log = Wet_obs.Log
module Clock = Wet_obs.Clock
module Ring = Wet_pulse.Ring
module Qprof = Wet_qprof.Qprof
module Qlog = Wet_qprof.Qlog
module Json = Wet_insight.Json
module P = Protocol

type config = {
  socket : string;
  cache_capacity : int;
  qlog : string option;
  ring_capacity : int;
  domains : int;
}

let default_config ~socket =
  {
    socket;
    cache_capacity = 4;
    qlog = None;
    ring_capacity = 4096;
    domains = max 0 (Domain.recommended_domain_count () - 2);
  }

(* ---------------- process-view instruments ---------------- *)

(* Connection-scoped counts live in per-connection Local registries
   (below); only genuinely process-global state records here. *)
let c_connections = Obs.counter "serve.connections"

let g_in_flight = Obs.gauge "serve.in_flight"

(* Session lifecycle over the resident containers: one [Wet.session]
   per (connection, path), minted lazily and kept until the container
   under the path is reloaded. *)
let c_sessions_opened = Obs.counter "serve.sessions.opened"

let c_sessions_reused = Obs.counter "serve.sessions.reused"

(* ---------------- per-connection state ---------------- *)

(* Each connection owns a Local registry it records into without
   contention; [conn.lock] only guards the moment the metrics verb
   merges a snapshot out while the owner might be recording.

   The connection is also the ownership unit for read-side cursor
   state: it carries a private decode tally, explain recorder and qprof
   scope, and a table of [Wet.session]s (one per container path) minted
   against them. Everything in it except [local] is touched only by the
   connection's own thread. *)
type conn = {
  id : int;
  fd : Unix.file_descr;
  mutable closed : bool;
  local : Obs.Local.t;
  lock : Mutex.t;
  tally : Telemetry.tally;
  recorder : Ex.recorder;
  scope : Qprof.scope;
  (* path -> (container it was opened on, session). The container is
     kept to detect staleness: a path can be re-admitted after an
     eviction, and a session on the old container must not answer for
     the new one. *)
  sessions : (string, W.t * W.session) Hashtbl.t;
  c_requests : P.verb -> Obs.counter;
  c_errors : Obs.counter;
  c_bytes_in : Obs.counter;
  c_bytes_out : Obs.counter;
  h_request_ns : Obs.histogram;
}

let make_conn id fd =
  let local = Obs.Local.create () in
  let by_verb =
    List.map
      (fun v ->
        (v, Obs.Local.counter local ("serve.requests." ^ P.verb_name v)))
      P.all_verbs
  in
  let tally = Telemetry.make () in
  let recorder = Ex.make_recorder () in
  {
    id;
    fd;
    closed = false;
    local;
    lock = Mutex.create ();
    tally;
    recorder;
    scope = Qprof.make_scope ~tally ~recorder ();
    sessions = Hashtbl.create 4;
    c_requests = (fun v -> List.assoc v by_verb);
    c_errors = Obs.Local.counter local "serve.errors";
    c_bytes_in = Obs.Local.counter local "serve.bytes_in";
    c_bytes_out = Obs.Local.counter local "serve.bytes_out";
    h_request_ns = Obs.Local.histogram local "serve.request_ns";
  }

(* The connection's session over an admitted container, minting it on
   first use. Runs on the connection's own thread with no lock:
   [Wet.open_session] only reads the immutable container and builds
   private cursors. *)
let session_of conn (e : Cache.entry) =
  match Hashtbl.find_opt conn.sessions e.Cache.e_path with
  | Some (w, s) when w == e.Cache.e_wet ->
    Obs.incr c_sessions_reused;
    s
  | _ ->
    let s =
      W.open_session ~tally:conn.tally ~recorder:conn.recorder
        e.Cache.e_wet
    in
    Hashtbl.replace conn.sessions e.Cache.e_path (e.Cache.e_wet, s);
    Obs.incr c_sessions_opened;
    s

(* ---------------- daemon state ---------------- *)

type state = {
  cfg : config;
  cache : Cache.t;
  ring : Ring.t;
  t0_ns : int;
  (* the engine lock now guards only cache admission and inspection —
     [Cache.find]/[peek]/[stats]/[resident] mutate or walk the LRU
     table. Read verbs run outside it: each connection's session owns
     its cursors, and its decode work lands on its own tally. *)
  engine : Mutex.t;
  (* serialises the instrumentation spine shared by every connection
     thread: the flight-recorder ring (sink taps and snapshots) and
     access-qlog appends. *)
  instr : Mutex.t;
  conns_lock : Mutex.t;
  mutable conns : conn list;
  mutable in_flight : int;
  requests_total : int Atomic.t;
  (* connection handlers claimed a domain slot; see [domain_budget] *)
  dom_active : int Atomic.t;
  mutable shutdown : bool;
}

(* Connection handlers run on their own domains up to [cfg.domains] —
   the session split makes concurrent reads safe, domains make them
   parallel — and fall back to sys-threads of the accept domain once
   the budget is spent (correct either way, threads just time-share).
   The default reserves two slots: the accept loop's own domain and
   one for whatever process hosts the daemon. *)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ---------------- verb handlers ---------------- *)

let param st name = List.assoc_opt name st.P.rq_params

let int_param req name ~default =
  match param req name with
  | None -> Ok default
  | Some s ->
    (match int_of_string_opt s with
     | Some i -> Ok i
     | None -> Error (Printf.sprintf "param %S must be an integer" name))

let opt_int_param req name =
  match param req name with
  | None -> Ok None
  | Some s ->
    (match int_of_string_opt s with
     | Some i -> Ok (Some i)
     | None -> Error (Printf.sprintf "param %S must be an integer" name))

let require_wet t req k =
  match req.P.rq_wet with
  | None ->
    Error
      (Printf.sprintf "verb %S needs a \"wet\" container path"
         (P.verb_name req.P.rq_verb))
  | Some path ->
    (match with_lock t.engine (fun () -> Cache.find t.cache path) with
     | Error m -> Error m
     | Ok entry -> k entry)

let json_int i = Json.Num (float_of_int i)

let entry_json (e : Cache.entry) =
  Json.Obj
    [
      ("path", Json.Str e.Cache.e_path);
      ("label", Json.Str (Filename.basename e.Cache.e_path));
      ("stmts", json_int e.Cache.e_wet.W.stats.W.stmts_executed);
      ( "tier",
        Json.Str
          (match e.Cache.e_wet.W.tier with
           | `Tier1 -> "tier-1"
           | `Tier2 -> "tier-2") );
      ("damage", Json.Arr (List.map (fun d -> Json.Str d) e.Cache.e_damage));
      ("requests", json_int e.Cache.e_requests);
    ]

let ring_stats_json (s : Ring.stats) =
  Json.Obj
    [
      ("pushed", json_int s.Ring.total);
      ("dropped", json_int s.Ring.dropped);
      ("retained", json_int s.Ring.retained);
      ("capacity", json_int s.Ring.capacity);
    ]

let health_data t =
  let hits, misses, evictions, resident =
    with_lock t.engine (fun () ->
        let h, m, e = Cache.stats t.cache in
        (h, m, e, Cache.resident t.cache))
  in
  Json.Obj
    [
      ("schema", Json.Str P.schema);
      ("status", Json.Str "ok");
      ( "uptime_ms",
        Json.Num (Clock.to_s (Clock.now_ns () - t.t0_ns) *. 1e3) );
      ("requests_total", json_int (Atomic.get t.requests_total));
      ("in_flight", json_int t.in_flight);
      ( "cache",
        Json.Obj
          [
            ("capacity", json_int (Cache.capacity t.cache));
            ("resident", json_int (List.length resident));
            ("hits", json_int hits);
            ("misses", json_int misses);
            ("evictions", json_int evictions);
          ] );
      ("ring", ring_stats_json (with_lock t.instr (fun () -> Ring.stats t.ring)));
      ("wets", Json.Arr (List.map entry_json resident));
    ]

(* The merged metric view: the process registry (interp/build/qprof/…
   plus serve.cache.* and the gauges) folded together with every live
   connection's private serve.* registry. Merging into a scratch
   registry leaves all sources untouched. *)
let merged_snapshot t =
  let scratch = Obs.Local.create () in
  Obs.merge ~into:scratch Obs.default;
  let conns = with_lock t.conns_lock (fun () -> t.conns) in
  List.iter
    (fun c -> with_lock c.lock (fun () -> Obs.merge ~into:scratch c.local))
    conns;
  Obs.Local.snapshot scratch

let metrics_lines t =
  let s = Export.metrics_jsonl_of (merged_snapshot t) in
  (* drop the split's trailing "" — the export ends with one newline *)
  match List.rev (String.split_on_char '\n' s) with
  | "" :: rev -> List.rev rev
  | rev -> List.rev rev

let watch_data t req =
  match int_param req "last" ~default:32 with
  | Error _ as e -> e
  | Ok last ->
    let entries, stats =
      with_lock t.instr (fun () -> Ring.snapshot t.ring)
    in
    let keep =
      let n = List.length entries in
      List.filteri (fun i _ -> i >= n - last) entries
    in
    let entry_json = function
      | Ring.Span (e : Sink.event) ->
        Json.Obj
          ([
             ("type", Json.Str "span");
             ("name", Json.Str e.Sink.ev_name);
             ("ts_ns", json_int e.Sink.ev_ts_ns);
           ]
          @
          match e.Sink.ev_dur_ns with
          | None -> []
          | Some d -> [ ("dur_ns", json_int d) ])
      | Ring.Watch (ev, stamp) ->
        Json.Obj
          [
            ("type", Json.Str "watch");
            ("event", Json.Str (Fmt.str "%a" Wet_watch.Event.pp ev));
            ("ts_ns", json_int stamp);
          ]
    in
    Ok
      (Json.Obj
         [
           ("ring", ring_stats_json stats);
           ("entries", Json.Arr (List.map entry_json keep));
         ])

(* Dispatch one request to (lines, data). Runs on the connection's own
   thread, outside the engine lock: verbs that move cursors do so on
   the connection's session, so concurrent connections interleave
   freely over one resident container and still answer byte-identically
   to the serial path. Only cache admission serialises. *)
let answer t conn req =
  match req.P.rq_verb with
  | P.Open ->
    require_wet t req (fun e -> Ok ([], entry_json e))
  | P.Stats ->
    require_wet t req (fun e ->
        Ok
          ( Render.stats_json e.Cache.e_wet
              ~label:(Filename.basename e.Cache.e_path),
            Json.Obj [] ))
  | P.Trace ->
    require_wet t req (fun e ->
        match
          Render.trace_kind_of_string
            (Option.value (param req "kind") ~default:"cf")
        with
        | Error _ as err -> err
        | Ok kind ->
          (match int_param req "limit" ~default:50 with
           | Error _ as err -> err
           | Ok limit ->
             Ok (Render.trace (session_of conn e) ~kind ~limit, Json.Obj [])))
  | P.Slice ->
    require_wet t req (fun e ->
        match opt_int_param req "output" with
        | Error _ as err -> err
        | Ok output ->
          Ok (Render.slice (session_of conn e) ~output, Json.Obj []))
  | P.At ->
    require_wet t req (fun e ->
        match opt_int_param req "ts" with
        | Error _ as err -> err
        | Ok ts -> Ok (Render.at (session_of conn e) ~ts, Json.Obj []))
  | P.Paths ->
    require_wet t req (fun e ->
        match int_param req "top" ~default:10 with
        | Error _ as err -> err
        | Ok top -> Ok (Render.paths e.Cache.e_wet ~top, Json.Obj []))
  | P.Watch -> (
    match watch_data t req with
    | Error _ as err -> err
    | Ok data -> Ok ([], data))
  | P.Health -> Ok ([], health_data t)
  | P.Metrics -> Ok (metrics_lines t, Json.Obj [])
  | P.Shutdown ->
    t.shutdown <- true;
    Ok ([ "shutting down" ], Json.Obj [])

(* The qprof shape fingerprint: query verbs reuse the one-shot CLI's
   vocabulary so daemon access logs aggregate with --qlog-out files. *)
let shape_of req =
  match req.P.rq_verb with
  | P.Trace ->
    let kind = Option.value (param req "kind") ~default:"cf" in
    "trace/" ^ kind
  | P.Slice -> "slice/backward"
  | P.At -> "at"
  | P.Paths -> "paths"
  | v -> "serve/" ^ P.verb_name v

(* --analyze tables need the target WET for the planner's estimates;
   [peek] avoids distorting the hit/miss tallies with a second lookup. *)
let analyze_lines t req profile =
  match req.P.rq_wet with
  | None -> []
  | Some path ->
    (match with_lock t.engine (fun () -> Cache.peek t.cache path) with
     | None -> []
     | Some e -> Render.analyze e.Cache.e_wet profile)

let handle t conn req =
  Atomic.incr t.requests_total;
  let shape = shape_of req in
  let params =
    req.P.rq_params
    @ match req.P.rq_wet with None -> [] | Some w -> [ ("wet", w) ]
  in
  let start_ns = Clock.now_ns () in
  let res, profile =
    Qprof.run ~scope:conn.scope ~params shape (fun () -> answer t conn req)
  in
  let dur_ns = Clock.now_ns () - start_ns in
  (* the request span feeds the flight-recorder ring via the sink tap;
     the ring and the qlog are shared by every connection thread, so
     both sit under the instrumentation lock *)
  with_lock t.instr (fun () ->
      Sink.record
        {
          Sink.ev_name = "serve." ^ P.verb_name req.P.rq_verb;
          ev_ts_ns = start_ns;
          ev_dur_ns = Some dur_ns;
          ev_depth = 0;
          ev_attrs =
            [ ("conn", Sink.Int conn.id); ("id", Sink.Int req.P.rq_id) ];
        };
      match t.cfg.qlog with
      | None -> ()
      | Some path -> (
        try Qlog.append path profile
        with Sys_error m -> Log.error "cannot append access qlog: %s" m));
  with_lock conn.lock (fun () ->
      Obs.incr (conn.c_requests req.P.rq_verb);
      Obs.observe conn.h_request_ns dur_ns);
  match res with
  | Ok (Ok (lines, data)) ->
    let lines =
      if req.P.rq_analyze then lines @ analyze_lines t req profile
      else lines
    in
    {
      P.rs_id = req.P.rq_id;
      rs_ok = true;
      rs_error = None;
      rs_lines = lines;
      rs_data = data;
    }
  | Ok (Error msg) ->
    with_lock conn.lock (fun () -> Obs.incr conn.c_errors);
    P.error_response ~id:req.P.rq_id msg
  | Error exn ->
    with_lock conn.lock (fun () -> Obs.incr conn.c_errors);
    let msg =
      match exn with
      | Wet_error.Error e -> Wet_error.message e
      | W.Missing_stream sec ->
        Printf.sprintf "section %S was lost to a salvage load" sec
      | e -> Printexc.to_string e
    in
    P.error_response ~id:req.P.rq_id msg

(* ---------------- connection loop ---------------- *)

let serve_connection t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      with_lock conn.lock (fun () ->
          Obs.add conn.c_bytes_in (String.length line + 1));
      with_lock t.conns_lock (fun () ->
          t.in_flight <- t.in_flight + 1;
          Obs.set g_in_flight t.in_flight);
      let resp =
        Fun.protect
          ~finally:(fun () ->
            with_lock t.conns_lock (fun () ->
                t.in_flight <- t.in_flight - 1;
                Obs.set g_in_flight t.in_flight))
          (fun () ->
            match P.decode_request line with
            | Error msg ->
              with_lock conn.lock (fun () -> Obs.incr conn.c_errors);
              Log.debug "conn %d: bad request: %s" conn.id msg;
              P.error_response ~id:0 msg
            | Ok req -> handle t conn req)
      in
      let out = P.encode_response resp in
      output_string oc out;
      output_char oc '\n';
      flush oc;
      with_lock conn.lock (fun () ->
          Obs.add conn.c_bytes_out (String.length out + 1));
      (* closing the listening socket does not interrupt a thread
         blocked in accept(2); a dummy connection does *)
      if t.shutdown then begin
        match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | probe -> (
          (try Unix.connect probe (Unix.ADDR_UNIX t.cfg.socket)
           with Unix.Unix_error _ -> ());
          try Unix.close probe with Unix.Unix_error _ -> ())
        | exception Unix.Unix_error _ -> ()
      end;
      Log.debug "conn %d: %s (%d lines)" conn.id
        (match resp.P.rs_error with
         | Some e -> "error: " ^ e
         | None -> "ok")
        (List.length resp.P.rs_lines);
      if not t.shutdown then loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      with_lock t.conns_lock (fun () ->
          if not conn.closed then begin
            conn.closed <- true;
            try Unix.close conn.fd with Unix.Unix_error _ -> ()
          end);
      Log.info "connection %d closed" conn.id)
    (fun () -> try loop () with Sys_error _ | End_of_file -> ())

(* ---------------- socket lifecycle ---------------- *)

(* A socket file can outlive a killed daemon. Probe it: connection
   refused means nobody is listening (remove and rebind); a successful
   connect means the address is genuinely being served. *)
let claim_socket path =
  (match Unix.stat path with
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
   | { Unix.st_kind = Unix.S_SOCK; _ } -> (
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX path) with
     | () ->
       Unix.close probe;
       Wet_error.fail Obs "%s is already being served" path
     | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
       ->
       Unix.close probe;
       Log.warn "removing stale socket %s" path;
       (try Unix.unlink path with Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ ->
       Unix.close probe;
       Wet_error.fail Obs "cannot probe existing socket %s" path)
   | _ -> Wet_error.fail Obs "%s exists and is not a socket" path);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.bind fd (Unix.ADDR_UNIX path) with
  | () ->
    Unix.listen fd 64;
    fd
  | exception Unix.Unix_error (e, _, _) ->
    Unix.close fd;
    Wet_error.fail Obs "cannot bind %s: %s" path (Unix.error_message e)

let run cfg =
  Sink.enable ();
  let ring = Ring.create ~capacity:cfg.ring_capacity () in
  Ring.install ring;
  let t =
    {
      cfg;
      cache = Cache.create ~capacity:cfg.cache_capacity ();
      ring;
      t0_ns = Clock.now_ns ();
      engine = Mutex.create ();
      instr = Mutex.create ();
      conns_lock = Mutex.create ();
      conns = [];
      in_flight = 0;
      requests_total = Atomic.make 0;
      dom_active = Atomic.make 0;
      shutdown = false;
    }
  in
  let listen_fd = claim_socket cfg.socket in
  Log.info "serving on %s (cache %d, ring %d%s)" cfg.socket
    cfg.cache_capacity cfg.ring_capacity
    (match cfg.qlog with None -> "" | Some q -> ", qlog " ^ q);
  let threads = ref [] in
  let domains = ref [] in
  let next_id = ref 0 in
  let rec claim_domain_slot () =
    let n = Atomic.get t.dom_active in
    if n >= cfg.domains then false
    else if Atomic.compare_and_set t.dom_active n (n + 1) then true
    else claim_domain_slot ()
  in
  (let rec accept_loop () =
     match Unix.accept listen_fd with
     | fd, _ ->
       if t.shutdown then (
         (* the shutdown handler's wake-up connection (or a client that
            raced it) — drop it and stop accepting *)
         try Unix.close fd with Unix.Unix_error _ -> ())
       else begin
         incr next_id;
         let conn = make_conn !next_id fd in
         Obs.incr c_connections;
         with_lock t.conns_lock (fun () -> t.conns <- conn :: t.conns);
         Log.info "connection %d accepted" conn.id;
         if claim_domain_slot () then begin
           let d =
             Domain.spawn (fun () ->
                 Fun.protect
                   ~finally:(fun () ->
                     ignore (Atomic.fetch_and_add t.dom_active (-1)))
                   (fun () -> serve_connection t conn))
           in
           domains := d :: !domains
         end
         else begin
           let th = Thread.create (fun () -> serve_connection t conn) () in
           threads := th :: !threads
         end;
         accept_loop ()
       end
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
   in
   accept_loop ();
   try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (* wake connection threads still blocked on idle clients: a shutdown
     half-close delivers EOF without racing the owner's own close *)
  with_lock t.conns_lock (fun () ->
      List.iter
        (fun c ->
          if not c.closed then
            try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
        t.conns);
  List.iter Thread.join !threads;
  List.iter Domain.join !domains;
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  Ring.uninstall ();
  Log.info "serve: clean shutdown (%d requests)"
    (Atomic.get t.requests_total)
