(** The wet_serve daemon: a long-lived query service over a Unix-domain
    socket, observable from birth.

    One thread accepts, one thread per connection reads wet-serve/1
    request lines; query execution itself is serialised under a single
    engine lock (WET stream cursors, the qprof context stack and the
    span sink are process-global). Every request runs inside a
    {!Wet_qprof.Qprof.run} context, appends to the shared wet-qlog/1
    access log when one is configured, and bumps [serve.*] instruments
    in the connection's private {!Wet_obs.Metrics.Local} registry; the
    [metrics] verb folds those registries over the process view with
    {!Wet_obs.Metrics.merge} into one wet-obs/2 snapshot. A bounded
    {!Wet_pulse.Ring} taps request spans as the flight recorder the
    [watch] verb replays. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  cache_capacity : int;  (** resident WET containers (LRU) *)
  qlog : string option;  (** wet-qlog/1 access-log path *)
  ring_capacity : int;  (** flight-recorder entries *)
}

val default_config : socket:string -> config

(** Serve until a [shutdown] request arrives; returns cleanly after the
    socket is closed and unlinked. A stale socket file (left by a
    killed predecessor, connection refused) is removed and rebound; a
    live one is an error.
    @raise Wet_error.Error ([Obs] stage) when the socket cannot be
    bound or is already being served. *)
val run : config -> unit
