(** The wet_serve daemon: a long-lived query service over a Unix-domain
    socket, observable from birth.

    One thread accepts; each connection gets its own handler (a domain
    while the [domains] budget lasts, then a sys-thread) reading
    wet-serve/1 request lines. The resident {!Wet_core.Wet.t}
    containers are immutable and shared; every connection opens its own
    {!Wet_core.Wet.session} over them, so read verbs dispatch without
    any global lock — the engine mutex guards cache admission only.
    Every request runs inside a {!Wet_qprof.Qprof.run} context, appends
    to the shared wet-qlog/1 access log when one is configured, and
    bumps [serve.*] instruments in the connection's private
    {!Wet_obs.Metrics.Local} registry; the [metrics] verb folds those
    registries over the process view with {!Wet_obs.Metrics.merge} into
    one wet-obs/2 snapshot. A bounded {!Wet_pulse.Ring} taps request
    spans as the flight recorder the [watch] verb replays. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  cache_capacity : int;  (** resident WET containers (LRU) *)
  qlog : string option;  (** wet-qlog/1 access-log path *)
  ring_capacity : int;  (** flight-recorder entries *)
  domains : int;
      (** connection handlers get their own domain up to this budget
          (parallel reads over shared containers), then fall back to
          sys-threads; default [recommended_domain_count - 2], clamped
          at 0 *)
}

val default_config : socket:string -> config

(** Serve until a [shutdown] request arrives; returns cleanly after the
    socket is closed and unlinked. A stale socket file (left by a
    killed predecessor, connection refused) is removed and rebound; a
    live one is an error.
    @raise Wet_error.Error ([Obs] stage) when the socket cannot be
    bound or is already being served. *)
val run : config -> unit
