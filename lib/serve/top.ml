module P = Protocol
module Json = Wet_insight.Json
module Clock = Wet_obs.Clock

type mode = Tty | Jsonl

type opts = {
  socket : string;
  mode : mode;
  interval_ms : int;
  count : int;
  instruments : int;
}

(* ---------------- metrics-line digestion ---------------- *)

(* The metrics verb answers with wet-obs/2 JSONL lines; fold them into
   an association of name -> simplified reading. *)
type reading =
  | Counter of int
  | Gauge of int
  | Hist of { count : int; sum : int; buckets : (int * int * int) list }

let parse_metrics lines =
  let readings = ref [] in
  List.iter
    (fun line ->
      match Json.parse line with
      | Error _ -> ()
      | Ok o -> (
        match
          ( Option.bind (Json.member "type" o) Json.to_str,
            Option.bind (Json.member "name" o) Json.to_str )
        with
        | Some "counter", Some name ->
          Option.iter
            (fun v -> readings := (name, Counter v) :: !readings)
            (Option.bind (Json.member "value" o) Json.to_int)
        | Some "gauge", Some name ->
          Option.iter
            (fun v -> readings := (name, Gauge v) :: !readings)
            (Option.bind (Json.member "value" o) Json.to_int)
        | Some "histogram", Some name ->
          let count =
            Option.value
              (Option.bind (Json.member "count" o) Json.to_int)
              ~default:0
          in
          let sum =
            Option.value
              (Option.bind (Json.member "sum" o) Json.to_int)
              ~default:0
          in
          let buckets =
            match Json.member "buckets" o with
            | Some (Json.Arr bs) ->
              List.filter_map
                (fun b ->
                  match
                    ( Option.bind (Json.member "lo" b) Json.to_int,
                      Option.bind (Json.member "hi" b) Json.to_int,
                      Option.bind (Json.member "count" b) Json.to_int )
                  with
                  | Some lo, Some hi, Some c -> Some (lo, hi, c)
                  | _ -> None)
                bs
            | _ -> []
          in
          readings := (name, Hist { count; sum; buckets }) :: !readings
        | _ -> ()))
    lines;
  List.rev !readings

let counter readings name =
  match List.assoc_opt name readings with Some (Counter v) -> v | _ -> 0

let gauge readings name =
  match List.assoc_opt name readings with Some (Gauge v) -> v | _ -> 0

let quantile_of_buckets ~q buckets =
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  if total = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let rec go seen = function
      | [] -> 0
      | (_, hi, c) :: rest ->
        if seen + c >= target then hi else go (seen + c) rest
    in
    go 0 buckets
  end

let request_quantiles readings =
  match List.assoc_opt "serve.request_ns" readings with
  | Some (Hist h) ->
    ( float_of_int (quantile_of_buckets ~q:0.5 h.buckets) /. 1e6,
      float_of_int (quantile_of_buckets ~q:0.95 h.buckets) /. 1e6 )
  | _ -> (0., 0.)

let requests_total readings =
  List.fold_left
    (fun acc (name, r) ->
      match r with
      | Counter v
        when String.length name > 15
             && String.sub name 0 15 = "serve.requests." ->
        acc + v
      | _ -> acc)
    0 readings

(* ---------------- snapshots ---------------- *)

type snap = {
  seq : int;
  elapsed_ms : float;
  readings : (string * reading) list;
  health : Json.t;
}

let float_member name o =
  Option.value (Option.bind (Json.member name o) Json.to_num) ~default:0.

let int_member name o =
  Option.value (Option.bind (Json.member name o) Json.to_int) ~default:0

let jsonl_snapshot prev s =
  let rps =
    match prev with
    | None -> 0.
    | Some p ->
      let dt = (s.elapsed_ms -. p.elapsed_ms) /. 1e3 in
      if dt <= 0. then 0.
      else
        float_of_int (requests_total s.readings - requests_total p.readings)
        /. dt
  in
  let p50, p95 = request_quantiles s.readings in
  let cache = Option.value (Json.member "cache" s.health) ~default:(Json.Obj []) in
  let ring = Option.value (Json.member "ring" s.health) ~default:(Json.Obj []) in
  Json.Obj
    [
      ("type", Json.Str "top");
      ("seq", Json.Num (float_of_int s.seq));
      ("elapsed_ms", Json.Num s.elapsed_ms);
      ("uptime_ms", Json.Num (float_member "uptime_ms" s.health));
      ( "requests_total",
        Json.Num (float_of_int (requests_total s.readings)) );
      ("requests_per_sec", Json.Num rps);
      ("p50_ms", Json.Num p50);
      ("p95_ms", Json.Num p95);
      ("in_flight", Json.Num (float_of_int (gauge s.readings "serve.in_flight")));
      ("errors", Json.Num (float_of_int (counter s.readings "serve.errors")));
      ("cache", cache);
      ("ring", ring);
    ]

let hottest readings n =
  readings
  |> List.filter_map (fun (name, r) ->
         match r with
         | Counter v when v > 0 -> Some (name, v)
         | _ -> None)
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)

let render_tty prev s ~instruments =
  let b = Buffer.create 1024 in
  Buffer.add_string b "\027[H\027[2J";
  let rps =
    match prev with
    | None -> 0.
    | Some p ->
      let dt = (s.elapsed_ms -. p.elapsed_ms) /. 1e3 in
      if dt <= 0. then 0.
      else
        float_of_int (requests_total s.readings - requests_total p.readings)
        /. dt
  in
  let p50, p95 = request_quantiles s.readings in
  let cache = Option.value (Json.member "cache" s.health) ~default:(Json.Obj []) in
  let ring = Option.value (Json.member "ring" s.health) ~default:(Json.Obj []) in
  Buffer.add_string b
    (Printf.sprintf "wet top — uptime %.1fs  requests %d  in-flight %d\n"
       (float_member "uptime_ms" s.health /. 1e3)
       (requests_total s.readings)
       (gauge s.readings "serve.in_flight"));
  Buffer.add_string b
    (Printf.sprintf "rate %.1f req/s  latency p50 %.3f ms  p95 %.3f ms\n"
       rps p50 p95);
  Buffer.add_string b
    (Printf.sprintf
       "cache %d/%d resident  %d hits  %d misses  %d evictions\n"
       (int_member "resident" cache) (int_member "capacity" cache)
       (int_member "hits" cache) (int_member "misses" cache)
       (int_member "evictions" cache));
  Buffer.add_string b
    (Printf.sprintf "ring %d pushed  %d dropped\n\n"
       (int_member "pushed" ring) (int_member "dropped" ring));
  Buffer.add_string b "hottest instruments\n";
  List.iter
    (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%10d  %s\n" v name))
    (hottest s.readings instruments);
  Buffer.contents b

(* ---------------- the poll loop ---------------- *)

let poll client ~seq ~t0 =
  match
    Client.request client (P.request ~id:(2 * seq) P.Metrics)
  with
  | Error _ as e -> e
  | Ok m when not m.P.rs_ok ->
    Error (Option.value m.P.rs_error ~default:"metrics verb failed")
  | Ok m ->
    (match
       Client.request client (P.request ~id:((2 * seq) + 1) P.Health)
     with
     | Error _ as e -> e
     | Ok h when not h.P.rs_ok ->
       Error (Option.value h.P.rs_error ~default:"health verb failed")
     | Ok h ->
       Ok
         {
           seq;
           elapsed_ms = Clock.to_s (Clock.now_ns () - t0) *. 1e3;
           readings = parse_metrics m.P.rs_lines;
           health = h.P.rs_data;
         })

let run opts =
  let interval_s = float_of_int (max 100 opts.interval_ms) /. 1e3 in
  match Client.connect opts.socket with
  | Error _ as e -> e
  | Ok client ->
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        let t0 = Clock.now_ns () in
        let rec loop prev seq =
          if opts.count > 0 && seq > opts.count then Ok ()
          else
            match poll client ~seq ~t0 with
            | Error _ as e -> e
            | Ok s ->
              (match opts.mode with
               | Jsonl ->
                 print_endline (Json.to_string (jsonl_snapshot prev s));
                 flush stdout
               | Tty ->
                 print_string
                   (render_tty prev s ~instruments:opts.instruments);
                 flush stdout);
              if opts.count > 0 && seq = opts.count then Ok ()
              else begin
                Thread.delay interval_s;
                loop (Some s) (seq + 1)
              end
        in
        loop None 1)
