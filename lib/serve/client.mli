(** A blocking wet-serve/1 client: one connection, synchronous
    request/response, used by [wet query --remote], [wet top] and the
    test suite. *)

type t

val connect : string -> (t, string) result

(** Send one request and wait for its response line. Ids are checked:
    a response for a different id is an [Error]. *)
val request : t -> Protocol.request -> (Protocol.response, string) result

(** Send [line] verbatim — valid wet-serve/1 or not — and decode the
    reply. Exercises the daemon's total decoding from the outside. *)
val raw_request : t -> string -> (Protocol.response, string) result

val close : t -> unit

(** [connect] + [request] + [close] for one-shot callers. *)
val call : socket:string -> Protocol.request ->
  (Protocol.response, string) result
