(** The [wet top] live dashboard: a rate-limited poll loop over a serve
    daemon's [metrics] and [health] verbs.

    Each tick computes request rates from counter deltas and latency
    p50/p95 from the ["serve.request_ns"] histogram buckets, then
    either repaints a TTY screen or appends one JSONL snapshot object —
    snapshots carry a strictly increasing [seq] and monotonic
    [elapsed_ms], and ticks never fire closer together than the
    requested interval, so machine consumers can trust the stream's
    ordering and pacing. *)

type mode = Tty | Jsonl

type opts = {
  socket : string;
  mode : mode;
  interval_ms : int;  (** clamped to at least 100 *)
  count : int;  (** stop after N snapshots; 0 = run until interrupted *)
  instruments : int;  (** hottest-instrument rows on the TTY screen *)
}

(** Poll until [count] snapshots have been emitted (or forever when 0).
    [Error] on connection loss or a malformed daemon answer. *)
val run : opts -> (unit, string) result

(** Estimate the [q]-quantile (0..1) of a histogram from its
    log-scale buckets: the upper bound of the bucket holding the
    quantile, in the histogram's unit. 0 when empty. Exposed for the
    test suite. *)
val quantile_of_buckets : q:float -> (int * int * int) list -> int
