(** The wet-serve/1 wire protocol: one JSON object per line in each
    direction over a Unix-domain socket.

    A request names a verb, optionally the [.wet] container it targets,
    free-form string parameters (the same key=value vocabulary the
    qprof contexts record) and an [analyze] flag asking the daemon to
    append the --analyze cost tables to the response. A response echoes
    the request id, carries the query's rendered output as a list of
    lines (byte-identical to what the one-shot CLI prints) and a
    structured [data] payload for machine consumers ([health],
    [metrics], [watch]).

    Decoding is total: unknown verbs, truncated lines and
    wrongly-typed fields come back as [Error] with a message naming
    the offence, never an exception — a daemon must survive any bytes
    a client throws at it. *)

module Json = Wet_insight.Json

type verb =
  | Open
  | Stats
  | Trace
  | Slice
  | At
  | Paths
  | Watch
  | Health
  | Metrics
  | Shutdown

val verb_name : verb -> string

(** [Error] names the unknown verb. *)
val verb_of_string : string -> (verb, string) result

val all_verbs : verb list

type request = {
  rq_id : int;  (** echoed back in the response *)
  rq_verb : verb;
  rq_wet : string option;  (** target container path (query verbs) *)
  rq_params : (string * string) list;
  rq_analyze : bool;  (** append --analyze tables to the response *)
}

type response = {
  rs_id : int;
  rs_ok : bool;
  rs_error : string option;
  rs_lines : string list;  (** rendered output, one terminal line each *)
  rs_data : Json.t;  (** structured payload; [Obj []] when none *)
}

val request : ?wet:string -> ?params:(string * string) list ->
  ?analyze:bool -> id:int -> verb -> request

(** One line, no trailing newline. *)
val encode_request : request -> string

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

(** The error reply for a line that failed to decode. *)
val error_response : id:int -> string -> response

val schema : string
