(** The daemon's resident-container cache.

    A bounded LRU keyed by container path: a hit hands back the
    already-loaded {!Wet_core.Wet.t}, a miss loads the container from
    disk, runs the full {!Wet_core.Wet.validate} invariant sweep once
    (so every later answer from that container is known-sound or
    known-damaged up front) and evicts the least recently used resident
    when over capacity.

    Hits, misses and evictions mirror into the process metric view as
    ["serve.cache.hits"] / ["serve.cache.misses"] /
    ["serve.cache.evictions"]. Not thread-safe by itself — the server
    serialises all cache access under its engine lock. *)

type entry = {
  e_path : string;
  e_wet : Wet_core.Wet.t;
  e_damage : string list;
      (** [Wet.validate] findings at load time; [[]] = sound *)
  mutable e_stamp : int;  (** LRU clock at last use *)
  mutable e_requests : int;  (** requests answered from this entry *)
}

type t

(** [create ~capacity ()] — capacity is clamped to at least 1. *)
val create : capacity:int -> unit -> t

val capacity : t -> int

(** Residents, most recently used first. *)
val resident : t -> entry list

(** Fetch [path], loading (and possibly evicting) on a miss. [Error]
    on unreadable or corrupt containers — the daemon stays up and the
    path stays out of the cache. *)
val find : t -> string -> (entry, string) result

(** [find] without the load, the LRU touch or the hit/miss tally — for
    follow-up work on a request that already fetched the entry. *)
val peek : t -> string -> entry option

(** Lifetime hit/miss/eviction tallies (also mirrored as metrics). *)
val stats : t -> int * int * int
