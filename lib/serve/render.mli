(** Query renderers shared by the one-shot CLI and the serve daemon.

    Each renderer returns the answer as a list of terminal lines; the
    CLI prints them with [print_endline] and the daemon ships them in a
    response's [lines] field — so a remote query is byte-identical to a
    local one by construction, not by parallel maintenance of two
    printf vocabularies.

    An element may be [""] (a blank output line, e.g. the one
    {!Wet_report.Table.print} emits after a table). Renderers that move
    cursors take a {!Wet_core.Wet.session} and move only that session's
    cursors (re-parking them first where the query semantics require
    it), so a daemon can answer many clients over one resident container
    concurrently — each connection brings its own session. Renderers
    that only read container structure take the [Wet.t] itself. *)

module Qprof = Wet_qprof.Qprof

type trace_kind = Cf | Values | Addresses

val trace_kind_of_string : string -> (trace_kind, string) result

(** [wet trace --kind K --limit N]. Moves only the session's cursors. *)
val trace :
  Wet_core.Wet.session -> kind:trace_kind -> limit:int -> string list

(** [wet slice --output K] ([None] = the last output). *)
val slice : Wet_core.Wet.session -> output:int option -> string list

(** [wet at --ts T] ([None] = the midpoint). *)
val at : Wet_core.Wet.session -> ts:int option -> string list

(** [wet paths --top N]. *)
val paths : Wet_core.Wet.t -> top:int -> string list

(** [wet stats --json]: the one-line insight report document. *)
val stats_json : Wet_core.Wet.t -> label:string -> string list

(** The [--analyze] tables and hints for a finished profile. *)
val analyze : Wet_core.Wet.t -> Qprof.profile -> string list

(** Split a {!Wet_report.Table.render} result into lines, with the
    blank line [Table.print] appends. *)
val table_lines :
  ?align:Wet_report.Table.align list -> title:string ->
  header:string list -> string list list -> string list
