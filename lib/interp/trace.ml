type t = {
  analysis : Wet_cfg.Program_analysis.t;
  paths : int array;
  blocks : int array;
  cd_producer : int array;
  values : int array;
  deps : int array;
  mem_ops : int array;
  outputs : int array;
  nstmts : int;
}

(* 22 bits of function id, 41 bits of path/block id (OCaml ints are
   63-bit here). Encoding an id outside its field would silently corrupt
   neighbouring bits, so both are bounds-checked. *)
let shift = 41

let max_func = (1 lsl (63 - shift)) - 1

let max_id = (1 lsl shift) - 1

let encode_path f id =
  assert (f >= 0 && f <= max_func);
  assert (id >= 0 && id <= max_id);
  (f lsl shift) lor id

let decode_path e = (e lsr shift, e land ((1 lsl shift) - 1))

let encode_block = encode_path

let decode_block = decode_path

let num_block_execs t = Array.length t.blocks

let num_path_execs t = Array.length t.paths

let program t = t.analysis.Wet_cfg.Program_analysis.program
