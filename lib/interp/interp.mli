(** The IR interpreter — the repository's stand-in for the paper's
    simulator-based profiler. It executes a program on a given input
    stream and records the raw whole-execution trace the WET builder
    consumes: either materialized as a {!Trace.t} ({!run}) or delivered
    incrementally to an {!event_sink} as it happens ({!run_with_sink}),
    so a streaming builder can compress on the fly without the full
    event list ever existing. No instrumentation of the program itself.

    Semantics notes: registers and memory words start at 0; arithmetic is
    63-bit OCaml [int] arithmetic; shift amounts are masked to 6 bits (63 saturates);
    [Shr] is arithmetic; division or remainder by zero, out-of-bounds
    memory accesses, exhausted input and exceeded statement budgets all
    raise [Wet_error.Error] with stage [Interp]. *)

(** Callbacks receiving trace events in execution order. The streams are
    the positional streams of {!Trace.t}, delivered element by element:

    - [es_block cd] — a basic block was entered; [cd] is the position of
      its control-dependence producer (-1 for none), one call per
      element of [Trace.cd_producer].
    - [es_dep p] — the next dependence slot links to producer position
      [p] (-1 for none), one call per element of [Trace.deps].
    - [es_stmt v] — a statement completed with value [v], one call per
      element of [Trace.values].
    - [es_path key] — a path execution ended with encoded key [key], one
      call per element of [Trace.paths].
    - [es_call ()] — the value and dependence slot just emitted belong
      to a call with a return destination: both are placeholders that
      will be patched by exactly one later [es_ret] (calls nest, so
      patches arrive in LIFO order).
    - [es_ret v p] — the innermost pending call returned: its statement
      value becomes [v] and its return-link dependence slot resolves to
      producer position [p].
    - [es_live iter] — called once before execution starts, handing the
      sink an iterator over every position a future event may still
      reference (live register/memory shadows, branch histories and
      calling contexts). A bounded-memory consumer calls it at flush
      time to decide what survives eviction; [iter f] may call [f] with
      -1 and with duplicate positions.

    Memory operations ([Trace.mem_ops]) are not delivered: they are a
    replay aid for trace verification and are not consumed by the
    builder. *)
type event_sink = {
  es_block : int -> unit;
  es_dep : int -> unit;
  es_stmt : int -> unit;
  es_path : int -> unit;
  es_call : unit -> unit;
  es_ret : int -> int -> unit;
  es_live : ((int -> unit) -> unit) -> unit;
}

(** A position in the event stream, as per-kind event counts: how many
    [es_stmt], [es_block], [es_dep], [es_path], [es_call] and [es_ret]
    deliveries a checkpointed consumer has already absorbed. Because
    execution is deterministic, a watermark identifies a unique point of
    the run — the resume point of a crash-recovered streaming build. *)
type watermark = {
  wm_stmts : int;
  wm_blocks : int;
  wm_deps : int;
  wm_paths : int;
  wm_calls : int;
  wm_rets : int;
}

val zero_watermark : watermark

(** [fast_forward wm sink] wraps [sink] for crash recovery: the first
    [wm] events of each kind are counted off and dropped (the restored
    sink consumed them before the crash), every later event is forwarded
    untouched. [es_live] always passes through — the live-position
    iterator carries no history and the sink must re-learn it. A
    suppressed [es_call] is also not re-pushed on the consumer's
    pending-call LIFO; its eventual [es_ret], arriving at or after the
    watermark, pops the entry the restored sink already holds.
    [on_caught_up] fires once, when every per-kind count has reached the
    watermark (immediately if [wm] is {!zero_watermark}). *)
val fast_forward :
  ?on_caught_up:(unit -> unit) -> watermark -> event_sink -> event_sink

type result = {
  trace : Trace.t;
  outputs : int array;  (** values passed to [Output], in order *)
  stmts_executed : int;
}

(** [run program ~input] executes [program] from [main] and materializes
    the full trace.

    @param max_stmts statement budget (default [2_000_000_000]).
    @param interprocedural_cd record the calling statement's instance as
      the control-dependence producer of blocks with no intraprocedural
      parent (function entries and unconditional prologue blocks).
      Default [false], matching the paper's intraprocedural control
      dependence; turning it on makes backward slices pull in the full
      calling context.
    @param analysis reuse a precomputed {!Wet_cfg.Program_analysis.t}
      instead of analysing [program] again.
    @raise Wet_error.Error on any dynamic error. *)
val run :
  ?max_stmts:int ->
  ?interprocedural_cd:bool ->
  ?analysis:Wet_cfg.Program_analysis.t ->
  Wet_ir.Program.t ->
  input:int array ->
  result

(** [run_with_sink ~sink program ~input] executes like {!run} but hands
    every trace event to [sink] instead of materializing a {!Trace.t} —
    peak memory stays bounded by the consumer's buffering policy, not by
    execution length. Returns (outputs, statements executed).

    @param resume_at fast-forward the run: wrap [sink] in
      {!fast_forward} so events below the watermark are re-executed but
      not re-delivered — the crash-recovery path of a checkpointed
      streaming build. [on_caught_up] is passed through.
    @raise Wet_error.Error as {!run}. *)
val run_with_sink :
  ?max_stmts:int ->
  ?interprocedural_cd:bool ->
  ?analysis:Wet_cfg.Program_analysis.t ->
  ?resume_at:watermark ->
  ?on_caught_up:(unit -> unit) ->
  sink:event_sink ->
  Wet_ir.Program.t ->
  input:int array ->
  int array * int

(** [outputs_only program ~input] runs without recording a trace — a
    fast path for program-correctness tests and native-speed baselines.
    @raise Wet_error.Error as {!run}. *)
val outputs_only :
  ?max_stmts:int -> Wet_ir.Program.t -> input:int array -> int array
