open Wet_ir
module Dyn = Wet_util.Dynarray_int
module PA = Wet_cfg.Program_analysis
module BL = Wet_cfg.Ball_larus

exception Runtime_error of string

exception Halted

(* Observability: whole-run counters (filled once per run from the
   recorded streams, so the hot loop pays nothing) and an optional
   heartbeat every [Wet_obs.Sink.heartbeat_every] statements. *)
let c_stmts = Wet_obs.Metrics.counter "interp.stmts"

let c_blocks = Wet_obs.Metrics.counter "interp.block_execs"

let c_paths = Wet_obs.Metrics.counter "interp.path_execs"

let c_deps = Wet_obs.Metrics.counter "interp.dep_events"

let c_outputs = Wet_obs.Metrics.counter "interp.outputs"

(* Last heartbeat position: a live progress gauge for long runs. *)
let g_heartbeat = Wet_obs.Metrics.gauge "interp.heartbeat_stmts"

let heartbeat pos =
  Wet_obs.Metrics.set g_heartbeat pos;
  Wet_obs.Span.instant "interp.heartbeat"
    ~attrs:[ ("stmts", Wet_obs.Span.Int pos) ];
  Wet_obs.Log.progress "interp: %d statements" pos

(* Tracer-driver event kinds (dense indices, fixed at module init). *)
let k_entry = Wet_watch.Event.kind_index Wet_watch.Event.Block_entry

let k_def = Wet_watch.Event.kind_index Wet_watch.Event.Value_def

let k_use = Wet_watch.Event.kind_index Wet_watch.Event.Use

let k_load = Wet_watch.Event.kind_index Wet_watch.Event.Load

let k_store = Wet_watch.Event.kind_index Wet_watch.Event.Store

let k_call = Wet_watch.Event.kind_index Wet_watch.Event.Call

type result = {
  trace : Trace.t;
  outputs : int array;
  stmts_executed : int;
}

let fail fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

let eval_binop op a b =
  match Wet_ir.Eval.binop op a b with
  | Some v -> v
  | None ->
    fail "%s by zero" (match op with Instr.Div -> "division" | _ -> "remainder")

let eval_cmp = Wet_ir.Eval.cmp

let eval_unop = Wet_ir.Eval.unop

(* One shared implementation; [record] selects whether trace streams are
   accumulated. The recording branches are statically dead in the
   outputs-only path after inlining the flag test. *)
let execute ~record ~inter_cd ~max_stmts ~analysis (prog : Program.t) ~input =
  let memory = Array.make prog.mem_words 0 in
  let mem_shadow = if record then Array.make prog.mem_words (-1) else [||] in
  let paths = Dyn.create () in
  let blocks = Dyn.create () in
  let cd_producer = Dyn.create () in
  let values = Dyn.create () in
  let deps = Dyn.create () in
  let mem_ops = Dyn.create () in
  let outputs = Dyn.create () in
  let pos = ref 0 in
  (* Statement budget and heartbeat share one per-statement comparison:
     [limit] is whichever threshold comes first, and the slow path
     disentangles budget exhaustion from a due heartbeat. A heartbeat
     becomes due after every [hb]-th completed statement (observed at
     the next statement boundary, or at run end for the last one), so a
     run of S statements heartbeats exactly floor(S/hb) times. *)
  let hb = !Wet_obs.Sink.heartbeat_every in
  let hb_next = ref (if hb > 0 then hb else max_int) in
  let limit = ref (min max_stmts !hb_next) in
  (* The tracer driver is consulted only on recording runs; [watching]
     is fixed for the whole run, so disarmed event sites are a dead
     conditional on an immutable bool. *)
  let watching = record && Wet_watch.Watch.armed () in
  let input_ix = ref 0 in
  let next_input () =
    if !input_ix >= Array.length input then fail "input stream exhausted"
    else begin
      let v = input.(!input_ix) in
      incr input_ix;
      v
    end
  in
  let check_addr a =
    if a < 0 || a >= prog.mem_words then
      fail "memory access out of bounds: address %d (memory has %d words)" a
        prog.mem_words
  in
  let past_limit () =
    if !pos >= max_stmts then
      fail "statement budget exceeded (%d)" max_stmts;
    while !pos >= !hb_next do
      heartbeat !pos;
      hb_next := !hb_next + hb
    done;
    limit := min max_stmts !hb_next
  in
  (* [ctx_pos]: dynamic position of the calling statement, -1 for main;
     with [inter_cd] it becomes the control-dependence producer of blocks
     that have no intraprocedural parent. *)
  let rec exec_func f ~ctx_pos (args : (int * int) list) =
    let fn = prog.funcs.(f) in
    let info = PA.fn analysis f in
    let bl = info.PA.bl in
    let regs = Array.make fn.Func.nregs 0 in
    let shadow = if record then Array.make fn.Func.nregs (-1) else [||] in
    List.iteri
      (fun i (v, s) ->
        regs.(i) <- v;
        if record then shadow.(i) <- s)
      args;
    let last_branch =
      if record then Array.make info.PA.graph.Wet_cfg.Graph.nblocks (-1)
      else [||]
    in
    let pathsum = ref 0 in
    let finish_path b =
      if record then
        Dyn.push paths (Trace.encode_path f (!pathsum + BL.finish_value bl ~src:b))
    in
    (* [begin_stmt]/[end_stmt] take the block as an argument so the
       closures are built once per function activation, not once per
       executed block — the non-recording path stays allocation-free. *)
    let begin_stmt b ins =
      if !pos >= !limit then past_limit ();
      if record then
        List.iter (fun r -> Dyn.push deps shadow.(r)) (Instr.uses ins);
      if watching then begin
        let ts = Dyn.length paths + 1 in
        List.iter
          (fun r -> Wet_watch.Watch.emit k_use f b !pos regs.(r) (-1) ts)
          (Instr.uses ins)
      end
    in
    let end_stmt b ins value =
      (* Defs of loads surface as [load] events (value and address
         together); call return values surface as [call] events. *)
      if watching && Instr.has_def ins
         && not (Instr.is_memory ins)
         && not (Instr.is_terminator ins)
      then
        Wet_watch.Watch.emit k_def f b !pos value (-1) (Dyn.length paths + 1);
      if record then Dyn.push values value;
      incr pos
    in
    let rec block_loop b =
      if record then begin
        Dyn.push blocks (Trace.encode_block f b);
        let cd =
          List.fold_left
            (fun acc p -> max acc last_branch.(p))
            (-1) info.PA.cd_parents.(b)
        in
        let cd = if cd = -1 && inter_cd then ctx_pos else cd in
        Dyn.push cd_producer cd
      end;
      if watching then
        Wet_watch.Watch.emit k_entry f b !pos 0 (-1) (Dyn.length paths + 1);
      let instrs = fn.Func.blocks.(b).Func.instrs in
      let n = Array.length instrs in
      for i = 0 to n - 2 do
        let ins = instrs.(i) in
        begin_stmt b ins;
        match ins with
        | Instr.Const (r, v) ->
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Move (r, a) ->
          let v = regs.(a) in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Binop (op, r, a, b') ->
          let v = eval_binop op regs.(a) regs.(b') in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Cmp (op, r, a, b') ->
          let v = eval_cmp op regs.(a) regs.(b') in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Unop (op, r, a) ->
          let v = eval_unop op regs.(a) in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Load (r, a) ->
          let addr = regs.(a) in
          check_addr addr;
          let v = memory.(addr) in
          regs.(r) <- v;
          if record then begin
            Dyn.push deps mem_shadow.(addr);
            Dyn.push mem_ops (addr lsl 1);
            shadow.(r) <- !pos
          end;
          if watching then
            Wet_watch.Watch.emit k_load f b !pos v addr (Dyn.length paths + 1);
          end_stmt b ins v
        | Instr.Store (a, vr) ->
          let addr = regs.(a) in
          check_addr addr;
          let v = regs.(vr) in
          memory.(addr) <- v;
          if record then begin
            Dyn.push mem_ops ((addr lsl 1) lor 1);
            mem_shadow.(addr) <- !pos
          end;
          if watching then
            Wet_watch.Watch.emit k_store f b !pos v addr (Dyn.length paths + 1);
          (* A store has no def port, but its position must resolve to
             the stored value so that loads can recover their operand. *)
          end_stmt b ins v
        | Instr.Input r ->
          let v = next_input () in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Output r ->
          Dyn.push outputs regs.(r);
          end_stmt b ins 0
        | Instr.Call _ | Instr.Branch _ | Instr.Jump _ | Instr.Ret _
        | Instr.Halt ->
          assert false (* terminators are in last position (validated) *)
      done;
      let term = instrs.(n - 1) in
      begin_stmt b term;
      let term_pos = !pos in
      match term with
      | Instr.Branch (r, b1, b2) ->
        let taken = regs.(r) <> 0 in
        if record then last_branch.(b) <- term_pos;
        end_stmt b term 0;
        let succ_ix = if taken then 0 else 1 in
        let target = if taken then b1 else b2 in
        goto b succ_ix target
      | Instr.Jump target ->
        end_stmt b term 0;
        goto b 0 target
      | Instr.Call (dst, callee, arg_regs, cont) ->
        let args =
          List.map
            (fun r -> (regs.(r), if record then shadow.(r) else -1))
            arg_regs
        in
        let ret_slot =
          if record && dst <> None then begin
            Dyn.push deps (-1);
            Dyn.length deps - 1
          end
          else -1
        in
        if watching then
          Wet_watch.Watch.emit k_call callee
            prog.funcs.(callee).Func.entry term_pos 0 (-1)
            (Dyn.length paths + 1);
        end_stmt b term 0;
        finish_path b;
        let ret = exec_func callee ~ctx_pos:term_pos args in
        (match (dst, ret) with
         | Some r, Some (v, s) ->
           regs.(r) <- v;
           if record then begin
             shadow.(r) <- term_pos;
             Dyn.set values term_pos v;
             Dyn.set deps ret_slot s
           end
         | Some _, None ->
           fail "function %s returned no value but one was expected"
             prog.funcs.(callee).Func.name
         | None, _ -> ());
        pathsum := BL.start_value bl ~node:cont;
        block_loop cont
      | Instr.Ret r -> (
        match r with
        | Some r ->
          (* Like a store, a return has no def port but acts as the
             producer of the caller's return-value link; its position
             resolves to the returned value, and its own use slot links
             on to the value's producer. *)
          let v = regs.(r) in
          end_stmt b term v;
          finish_path b;
          Some (v, term_pos)
        | None ->
          end_stmt b term 0;
          finish_path b;
          None)
      | Instr.Halt ->
        end_stmt b term 0;
        finish_path b;
        raise Halted
      | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Cmp _
      | Instr.Unop _ | Instr.Load _ | Instr.Store _ | Instr.Input _
      | Instr.Output _ ->
        assert false
    and goto src succ_ix target =
      let bl = (PA.fn analysis f).PA.bl in
      if BL.is_break bl ~src ~succ_ix then begin
        finish_path src;
        pathsum := BL.start_value bl ~node:target
      end
      else pathsum := !pathsum + BL.edge_value bl ~src ~succ_ix;
      block_loop target
    in
    block_loop fn.Func.entry
  in
  (try ignore (exec_func prog.main ~ctx_pos:(-1) []) with Halted -> ());
  (* a heartbeat due exactly at the last statement has no next statement
     boundary to surface at *)
  if !pos >= !hb_next then heartbeat !pos;
  let out = Dyn.to_array outputs in
  let trace =
    {
      Trace.analysis;
      paths = Dyn.to_array paths;
      blocks = Dyn.to_array blocks;
      cd_producer = Dyn.to_array cd_producer;
      values = Dyn.to_array values;
      deps = Dyn.to_array deps;
      mem_ops = Dyn.to_array mem_ops;
      outputs = out;
      nstmts = !pos;
    }
  in
  (trace, out, !pos)

let run ?(max_stmts = 2_000_000_000) ?(interprocedural_cd = false) ?analysis
    prog ~input =
  let analysis =
    match analysis with Some a -> a | None -> PA.of_program prog
  in
  Wet_obs.Span.with_ "interp.run" (fun () ->
      let trace, outputs, stmts_executed =
        execute ~record:true ~inter_cd:interprocedural_cd ~max_stmts ~analysis
          prog ~input
      in
      let open Wet_obs.Metrics in
      add c_stmts stmts_executed;
      add c_blocks (Array.length trace.Trace.blocks);
      add c_paths (Array.length trace.Trace.paths);
      add c_deps (Array.length trace.Trace.deps);
      add c_outputs (Array.length outputs);
      Wet_obs.Span.set_attr "stmts" (Wet_obs.Span.Int stmts_executed);
      Wet_obs.Span.set_attr "paths"
        (Wet_obs.Span.Int (Array.length trace.Trace.paths));
      { trace; outputs; stmts_executed })

let outputs_only ?(max_stmts = 2_000_000_000) prog ~input =
  let analysis = PA.of_program prog in
  let _, outputs, _ =
    execute ~record:false ~inter_cd:false ~max_stmts ~analysis prog ~input
  in
  outputs
