open Wet_ir
module Dyn = Wet_util.Dynarray_int
module PA = Wet_cfg.Program_analysis
module BL = Wet_cfg.Ball_larus

exception Halted

type event_sink = {
  es_block : int -> unit;
  es_dep : int -> unit;
  es_stmt : int -> unit;
  es_path : int -> unit;
  es_call : unit -> unit;
  es_ret : int -> int -> unit;
  es_live : ((int -> unit) -> unit) -> unit;
}

type watermark = {
  wm_stmts : int;
  wm_blocks : int;
  wm_deps : int;
  wm_paths : int;
  wm_calls : int;
  wm_rets : int;
}

let zero_watermark =
  { wm_stmts = 0; wm_blocks = 0; wm_deps = 0; wm_paths = 0; wm_calls = 0;
    wm_rets = 0 }

(* Recovery fast-forward: re-execution is deterministic, so the first
   [wm] events of each kind are exactly the ones a restored sink has
   already consumed — count them off and drop them, forward the rest.
   [es_live] passes through immediately (the sink must re-learn the
   interpreter's live-position iterator; it carries no history). A
   suppressed [es_call] stays suppressed as a pending-LIFO push too:
   the restored sink already holds the entry, and the matching
   [es_ret] — which may arrive after the watermark — pops it. *)
let fast_forward ?(on_caught_up = fun () -> ()) wm k =
  let stmts = ref 0 and blocks = ref 0 and deps = ref 0 in
  let paths = ref 0 and calls = ref 0 and rets = ref 0 in
  let signaled = ref false in
  let caught_up () =
    if
      (not !signaled)
      && !stmts >= wm.wm_stmts && !blocks >= wm.wm_blocks
      && !deps >= wm.wm_deps && !paths >= wm.wm_paths
      && !calls >= wm.wm_calls && !rets >= wm.wm_rets
    then begin
      signaled := true;
      on_caught_up ()
    end
  in
  caught_up ();
  {
    es_block =
      (fun cd ->
        if !blocks < wm.wm_blocks then begin
          incr blocks;
          caught_up ()
        end
        else k.es_block cd);
    es_dep =
      (fun p ->
        if !deps < wm.wm_deps then begin
          incr deps;
          caught_up ()
        end
        else k.es_dep p);
    es_stmt =
      (fun v ->
        if !stmts < wm.wm_stmts then begin
          incr stmts;
          caught_up ()
        end
        else k.es_stmt v);
    es_path =
      (fun key ->
        if !paths < wm.wm_paths then begin
          incr paths;
          caught_up ()
        end
        else k.es_path key);
    es_call =
      (fun () ->
        if !calls < wm.wm_calls then begin
          incr calls;
          caught_up ()
        end
        else k.es_call ());
    es_ret =
      (fun v p ->
        if !rets < wm.wm_rets then begin
          incr rets;
          caught_up ()
        end
        else k.es_ret v p);
    es_live = k.es_live;
  }

(* Observability: whole-run counters (filled once per run from the
   recorded streams, so the hot loop pays nothing) and an optional
   heartbeat every [Wet_obs.Sink.heartbeat_every] statements. *)
let c_stmts = Wet_obs.Metrics.counter "interp.stmts"

let c_blocks = Wet_obs.Metrics.counter "interp.block_execs"

let c_paths = Wet_obs.Metrics.counter "interp.path_execs"

let c_deps = Wet_obs.Metrics.counter "interp.dep_events"

let c_outputs = Wet_obs.Metrics.counter "interp.outputs"

(* Last heartbeat position: a live progress gauge for long runs. *)
let g_heartbeat = Wet_obs.Metrics.gauge "interp.heartbeat_stmts"

let heartbeat pos =
  Wet_obs.Metrics.set g_heartbeat pos;
  Wet_obs.Span.instant "interp.heartbeat"
    ~attrs:[ ("stmts", Wet_obs.Span.Int pos) ];
  Wet_obs.Sink.tick ();
  Wet_obs.Log.progress "interp: %d statements" pos

(* Tracer-driver event kinds (dense indices, fixed at module init). *)
let k_entry = Wet_watch.Event.kind_index Wet_watch.Event.Block_entry

let k_def = Wet_watch.Event.kind_index Wet_watch.Event.Value_def

let k_use = Wet_watch.Event.kind_index Wet_watch.Event.Use

let k_load = Wet_watch.Event.kind_index Wet_watch.Event.Load

let k_store = Wet_watch.Event.kind_index Wet_watch.Event.Store

let k_call = Wet_watch.Event.kind_index Wet_watch.Event.Call

type result = {
  trace : Trace.t;
  outputs : int array;
  stmts_executed : int;
}

let fail fmt = Wet_error.fail Wet_error.Interp fmt

let eval_binop op a b =
  match Wet_ir.Eval.binop op a b with
  | Some v -> v
  | None ->
    fail "%s by zero" (match op with Instr.Div -> "division" | _ -> "remainder")

let eval_cmp = Wet_ir.Eval.cmp

let eval_unop = Wet_ir.Eval.unop

(* What execute hands back: the trace exists only in [`Trace] mode; the
   event counts are maintained in every recording mode so both entry
   points fill the same obs counters. *)
type raw = {
  r_trace : Trace.t option;
  r_outputs : int array;
  r_stmts : int;
  r_paths : int;
  r_blocks : int;
  r_deps : int;
}

(* One shared implementation; [mode] selects where trace events go:
   [`Off] discards them (outputs-only fast path), [`Trace] accumulates
   the materialized {!Trace.t} streams, [`Sink k] hands each event to
   the caller's callbacks as it happens so nothing is retained here.
   The recording branches are statically dead in the outputs-only path
   after inlining the flag test. *)
let execute ~mode ~inter_cd ~max_stmts ~analysis (prog : Program.t) ~input =
  let record = match mode with `Off -> false | `Trace | `Sink _ -> true in
  let memory = Array.make prog.mem_words 0 in
  let mem_shadow = if record then Array.make prog.mem_words (-1) else [||] in
  let paths = Dyn.create () in
  let blocks = Dyn.create () in
  let cd_producer = Dyn.create () in
  let values = Dyn.create () in
  let deps = Dyn.create () in
  let mem_ops = Dyn.create () in
  let outputs = Dyn.create () in
  let pos = ref 0 in
  let npaths = ref 0 in
  let nblocks = ref 0 in
  let ndeps = ref 0 in
  (* Event emitters: one branch on the immutable [mode] per event. The
     path count is tracked on this side in every mode because watch
     timestamps are path-exec ordinals. *)
  let push_dep s =
    incr ndeps;
    match mode with
    | `Trace -> Dyn.push deps s
    | `Sink k -> k.es_dep s
    | `Off -> ()
  in
  let push_value v =
    match mode with
    | `Trace -> Dyn.push values v
    | `Sink k -> k.es_stmt v
    | `Off -> ()
  in
  let push_path key =
    incr npaths;
    match mode with
    | `Trace -> Dyn.push paths key
    | `Sink k -> k.es_path key
    | `Off -> ()
  in
  (* Live-position registry for [`Sink] mode: the shadows of every
     active activation (plus its branch history and calling position)
     and the memory shadow are exactly the positions future dependence
     events can still reference, so the sink can evict everything
     else at a shard boundary. *)
  let frames = ref [] in
  (* A call's position becomes the callee's [ctx_pos], but the callee's
     frame only enters the registry inside [exec_func] — after the
     caller's [finish_path] has run, which may flush a shard. Without a
     destination register no pending-call gate holds the position back
     either, so this slot keeps it live across that window. *)
  let pending_ctx = ref (-1) in
  let in_sink = match mode with `Sink _ -> true | _ -> false in
  (match mode with
   | `Sink k ->
     k.es_live (fun f ->
         if !pending_ctx >= 0 then f !pending_ctx;
         List.iter
           (fun (sh, lb, cp) ->
             Array.iter f sh;
             Array.iter f lb;
             f cp)
           !frames;
         Array.iter f mem_shadow)
   | _ -> ());
  (* Statement budget and heartbeat share one per-statement comparison:
     [limit] is whichever threshold comes first, and the slow path
     disentangles budget exhaustion from a due heartbeat. A heartbeat
     becomes due after every [hb]-th completed statement (observed at
     the next statement boundary, or at run end for the last one), so a
     run of S statements heartbeats exactly floor(S/hb) times. *)
  let hb = !Wet_obs.Sink.heartbeat_every in
  let hb_next = ref (if hb > 0 then hb else max_int) in
  let limit = ref (min max_stmts !hb_next) in
  (* The tracer driver is consulted only on recording runs; [watching]
     is fixed for the whole run, so disarmed event sites are a dead
     conditional on an immutable bool. *)
  let watching = record && Wet_watch.Watch.armed () in
  let input_ix = ref 0 in
  let next_input () =
    if !input_ix >= Array.length input then fail "input stream exhausted"
    else begin
      let v = input.(!input_ix) in
      incr input_ix;
      v
    end
  in
  let check_addr a =
    if a < 0 || a >= prog.mem_words then
      fail "memory access out of bounds: address %d (memory has %d words)" a
        prog.mem_words
  in
  let past_limit () =
    if !pos >= max_stmts then
      fail "statement budget exceeded (%d)" max_stmts;
    while !pos >= !hb_next do
      heartbeat !pos;
      hb_next := !hb_next + hb
    done;
    limit := min max_stmts !hb_next
  in
  (* [ctx_pos]: dynamic position of the calling statement, -1 for main;
     with [inter_cd] it becomes the control-dependence producer of blocks
     that have no intraprocedural parent. *)
  let rec exec_func f ~ctx_pos (args : (int * int) list) =
    let fn = prog.funcs.(f) in
    let info = PA.fn analysis f in
    let bl = info.PA.bl in
    let regs = Array.make fn.Func.nregs 0 in
    let shadow = if record then Array.make fn.Func.nregs (-1) else [||] in
    List.iteri
      (fun i (v, s) ->
        regs.(i) <- v;
        if record then shadow.(i) <- s)
      args;
    let last_branch =
      if record then Array.make info.PA.graph.Wet_cfg.Graph.nblocks (-1)
      else [||]
    in
    if in_sink then begin
      frames := (shadow, last_branch, ctx_pos) :: !frames;
      pending_ctx := -1
    end;
    let pathsum = ref 0 in
    let finish_path b =
      if record then
        push_path (Trace.encode_path f (!pathsum + BL.finish_value bl ~src:b))
    in
    (* [begin_stmt]/[end_stmt] take the block as an argument so the
       closures are built once per function activation, not once per
       executed block — the non-recording path stays allocation-free. *)
    let begin_stmt b ins =
      if !pos >= !limit then past_limit ();
      if record then
        List.iter (fun r -> push_dep shadow.(r)) (Instr.uses ins);
      if watching then begin
        let ts = !npaths + 1 in
        List.iter
          (fun r -> Wet_watch.Watch.emit k_use f b !pos regs.(r) (-1) ts)
          (Instr.uses ins)
      end
    in
    let end_stmt b ins value =
      (* Defs of loads surface as [load] events (value and address
         together); call return values surface as [call] events. *)
      if watching && Instr.has_def ins
         && not (Instr.is_memory ins)
         && not (Instr.is_terminator ins)
      then
        Wet_watch.Watch.emit k_def f b !pos value (-1) (!npaths + 1);
      if record then push_value value;
      incr pos
    in
    let rec block_loop b =
      if record then begin
        incr nblocks;
        (match mode with
         | `Trace -> Dyn.push blocks (Trace.encode_block f b)
         | _ -> ());
        let cd =
          List.fold_left
            (fun acc p -> max acc last_branch.(p))
            (-1) info.PA.cd_parents.(b)
        in
        let cd = if cd = -1 && inter_cd then ctx_pos else cd in
        match mode with
        | `Trace -> Dyn.push cd_producer cd
        | `Sink k -> k.es_block cd
        | `Off -> ()
      end;
      if watching then
        Wet_watch.Watch.emit k_entry f b !pos 0 (-1) (!npaths + 1);
      let instrs = fn.Func.blocks.(b).Func.instrs in
      let n = Array.length instrs in
      for i = 0 to n - 2 do
        let ins = instrs.(i) in
        begin_stmt b ins;
        match ins with
        | Instr.Const (r, v) ->
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Move (r, a) ->
          let v = regs.(a) in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Binop (op, r, a, b') ->
          let v = eval_binop op regs.(a) regs.(b') in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Cmp (op, r, a, b') ->
          let v = eval_cmp op regs.(a) regs.(b') in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Unop (op, r, a) ->
          let v = eval_unop op regs.(a) in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Load (r, a) ->
          let addr = regs.(a) in
          check_addr addr;
          let v = memory.(addr) in
          regs.(r) <- v;
          if record then begin
            push_dep mem_shadow.(addr);
            (match mode with
             | `Trace -> Dyn.push mem_ops (addr lsl 1)
             | _ -> ());
            shadow.(r) <- !pos
          end;
          if watching then
            Wet_watch.Watch.emit k_load f b !pos v addr (!npaths + 1);
          end_stmt b ins v
        | Instr.Store (a, vr) ->
          let addr = regs.(a) in
          check_addr addr;
          let v = regs.(vr) in
          memory.(addr) <- v;
          if record then begin
            (match mode with
             | `Trace -> Dyn.push mem_ops ((addr lsl 1) lor 1)
             | _ -> ());
            mem_shadow.(addr) <- !pos
          end;
          if watching then
            Wet_watch.Watch.emit k_store f b !pos v addr (!npaths + 1);
          (* A store has no def port, but its position must resolve to
             the stored value so that loads can recover their operand. *)
          end_stmt b ins v
        | Instr.Input r ->
          let v = next_input () in
          regs.(r) <- v;
          if record then shadow.(r) <- !pos;
          end_stmt b ins v
        | Instr.Output r ->
          Dyn.push outputs regs.(r);
          end_stmt b ins 0
        | Instr.Call _ | Instr.Branch _ | Instr.Jump _ | Instr.Ret _
        | Instr.Halt ->
          assert false (* terminators are in last position (validated) *)
      done;
      let term = instrs.(n - 1) in
      begin_stmt b term;
      let term_pos = !pos in
      match term with
      | Instr.Branch (r, b1, b2) ->
        let taken = regs.(r) <> 0 in
        if record then last_branch.(b) <- term_pos;
        end_stmt b term 0;
        let succ_ix = if taken then 0 else 1 in
        let target = if taken then b1 else b2 in
        goto b succ_ix target
      | Instr.Jump target ->
        end_stmt b term 0;
        goto b 0 target
      | Instr.Call (dst, callee, arg_regs, cont) ->
        let args =
          List.map
            (fun r -> (regs.(r), if record then shadow.(r) else -1))
            arg_regs
        in
        (* The return-value link is a dep slot that cannot be filled
           until the callee returns: the trace mode patches the slot (and
           the call's value) in place, the sink mode is told a patchable
           call was just emitted and receives the patch via [es_ret]. *)
        let ret_slot =
          if record && dst <> None then begin
            push_dep (-1);
            match mode with
            | `Trace -> Dyn.length deps - 1
            | `Sink k ->
              k.es_call ();
              -1
            | `Off -> -1
          end
          else -1
        in
        if watching then
          Wet_watch.Watch.emit k_call callee
            prog.funcs.(callee).Func.entry term_pos 0 (-1)
            (!npaths + 1);
        end_stmt b term 0;
        if in_sink then pending_ctx := term_pos;
        finish_path b;
        let ret = exec_func callee ~ctx_pos:term_pos args in
        (match (dst, ret) with
         | Some r, Some (v, s) ->
           regs.(r) <- v;
           if record then begin
             shadow.(r) <- term_pos;
             match mode with
             | `Trace ->
               Dyn.set values term_pos v;
               Dyn.set deps ret_slot s
             | `Sink k -> k.es_ret v s
             | `Off -> ()
           end
         | Some _, None ->
           fail "function %s returned no value but one was expected"
             prog.funcs.(callee).Func.name
         | None, _ -> ());
        pathsum := BL.start_value bl ~node:cont;
        block_loop cont
      | Instr.Ret r -> (
        match r with
        | Some r ->
          (* Like a store, a return has no def port but acts as the
             producer of the caller's return-value link; its position
             resolves to the returned value, and its own use slot links
             on to the value's producer. *)
          let v = regs.(r) in
          end_stmt b term v;
          finish_path b;
          Some (v, term_pos)
        | None ->
          end_stmt b term 0;
          finish_path b;
          None)
      | Instr.Halt ->
        end_stmt b term 0;
        finish_path b;
        raise Halted
      | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Cmp _
      | Instr.Unop _ | Instr.Load _ | Instr.Store _ | Instr.Input _
      | Instr.Output _ ->
        assert false
    and goto src succ_ix target =
      let bl = (PA.fn analysis f).PA.bl in
      if BL.is_break bl ~src ~succ_ix then begin
        finish_path src;
        pathsum := BL.start_value bl ~node:target
      end
      else pathsum := !pathsum + BL.edge_value bl ~src ~succ_ix;
      block_loop target
    in
    let ret = block_loop fn.Func.entry in
    (* Not reached on Halted — the whole run is over then, so the frame
       registry's staleness is unobservable. *)
    if in_sink then frames := List.tl !frames;
    ret
  in
  (try ignore (exec_func prog.main ~ctx_pos:(-1) []) with Halted -> ());
  (* a heartbeat due exactly at the last statement has no next statement
     boundary to surface at *)
  if !pos >= !hb_next then heartbeat !pos;
  let out = Dyn.to_array outputs in
  let trace =
    match mode with
    | `Trace ->
      Some
        {
          Trace.analysis;
          paths = Dyn.to_array paths;
          blocks = Dyn.to_array blocks;
          cd_producer = Dyn.to_array cd_producer;
          values = Dyn.to_array values;
          deps = Dyn.to_array deps;
          mem_ops = Dyn.to_array mem_ops;
          outputs = out;
          nstmts = !pos;
        }
    | `Sink _ | `Off -> None
  in
  {
    r_trace = trace;
    r_outputs = out;
    r_stmts = !pos;
    r_paths = !npaths;
    r_blocks = !nblocks;
    r_deps = !ndeps;
  }

let note_counters raw =
  let open Wet_obs.Metrics in
  add c_stmts raw.r_stmts;
  add c_blocks raw.r_blocks;
  add c_paths raw.r_paths;
  add c_deps raw.r_deps;
  add c_outputs (Array.length raw.r_outputs);
  Wet_obs.Span.set_attr "stmts" (Wet_obs.Span.Int raw.r_stmts);
  Wet_obs.Span.set_attr "paths" (Wet_obs.Span.Int raw.r_paths)

let run ?(max_stmts = 2_000_000_000) ?(interprocedural_cd = false) ?analysis
    prog ~input =
  let analysis =
    match analysis with Some a -> a | None -> PA.of_program prog
  in
  Wet_obs.Span.with_ "interp.run" (fun () ->
      let raw =
        execute ~mode:`Trace ~inter_cd:interprocedural_cd ~max_stmts ~analysis
          prog ~input
      in
      note_counters raw;
      let trace =
        match raw.r_trace with Some t -> t | None -> assert false
      in
      { trace; outputs = raw.r_outputs; stmts_executed = raw.r_stmts })

let run_with_sink ?(max_stmts = 2_000_000_000) ?(interprocedural_cd = false)
    ?analysis ?resume_at ?on_caught_up ~sink prog ~input =
  let sink =
    match resume_at with
    | Some wm -> fast_forward ?on_caught_up wm sink
    | None -> sink
  in
  let analysis =
    match analysis with Some a -> a | None -> PA.of_program prog
  in
  Wet_obs.Span.with_ "interp.run" (fun () ->
      let raw =
        execute ~mode:(`Sink sink) ~inter_cd:interprocedural_cd ~max_stmts
          ~analysis prog ~input
      in
      note_counters raw;
      (raw.r_outputs, raw.r_stmts))

let outputs_only ?(max_stmts = 2_000_000_000) prog ~input =
  let analysis = PA.of_program prog in
  let raw = execute ~mode:`Off ~inter_cd:false ~max_stmts ~analysis prog ~input in
  raw.r_outputs
