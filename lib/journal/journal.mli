(** The crash-safe checkpoint journal behind durable streaming builds.

    A journal is an append-only file of tagged records, each individually
    CRC-32'd and fsync'd before the append returns: after a process death
    at {e any} byte — mid-record included — the on-disk prefix up to the
    last intact record is trustworthy, and everything after it is
    detectably torn. The builder appends one header record (program,
    input, build configuration) when a checkpointed build starts and one
    checkpoint record (sink snapshot + resume watermark) per flushed
    shard; recovery reads the longest intact prefix, restores the last
    checkpoint, and re-executes deterministically past it.

    This module knows nothing about what the payloads mean — it owns the
    framing, the durability discipline, and the seeded process-kill hooks
    the kill-campaign harness arms (the journal-side mirror of
    [Store.crash_after]).

    Format: an 8-byte magic ["WETJRNL1"], then records. Each record is a
    1-byte tag, a 4-byte little-endian payload length, a 4-byte
    little-endian CRC-32 of the payload, and the payload bytes.

    Failures raise [Wet_error.Error] with stage [Journal] (writer side)
    or return [Error] (reader side, where a damaged file is an expected
    input, not a bug). *)

(** {1 Kill injection}

    Deterministic stand-ins for [kill -9] at a seeded point, so the
    crash campaign replays exactly. Both hooks disarm themselves when
    they fire. *)

(** Raised by {!append} when an armed kill hook fires. The CLI maps it
    to exit code 70 so campaigns can tell an injected death from a real
    failure. *)
exception Kill_injected

(** When [Some n], the [n]-th subsequent {!append} completes durably
    (record written and fsync'd) and then raises {!Kill_injected};
    [Some 0] kills the next append before it writes anything. *)
val kill_after_records : int option ref

(** When [Some b], raise {!Kill_injected} once [b] more bytes have been
    written: the append that crosses the budget writes only the
    remaining prefix of its record (fsync'd — a genuinely torn record
    reaches the disk) and raises. *)
val kill_after_bytes : int option ref

(** {1 Writing} *)

type writer

(** [create path] truncates or creates [path], writes the magic and
    fsyncs. The containing directory must exist. *)
val create : string -> writer

(** [append w ~tag payload] frames, writes and fsyncs one record
    ([tag] in 0..255). Durable when it returns. Honours the kill
    hooks. *)
val append : writer -> tag:int -> string -> unit

val close : writer -> unit

(** [reopen path ~at] truncates [path] to [at] bytes (discarding a torn
    tail reported by {!read}) and returns a writer positioned to append
    after the surviving records. *)
val reopen : string -> at:int -> writer

(** {1 Reading} *)

type record = { tag : int; payload : string }

type scan = {
  records : record list;  (** intact records, in append order *)
  torn : bool;
      (** the file ends in a partial or CRC-corrupt record — expected
          after a kill mid-append; the tail must be discarded, never
          trusted *)
  intact_bytes : int;
      (** file offset one past the last intact record — pass to
          {!reopen} to resume appending *)
}

(** [read path] scans the journal sequentially, stopping at the first
    damaged record. [Error] only for a missing, unreadable or
    non-journal file; torn tails are reported in the {!scan}. *)
val read : string -> (scan, string) result

(** {1 Recovery metrics}

    Recorded by the resume path; documented in [Metric_docs]. *)

(** Bump [journal.replayed_shards] — shards the recovery fast-forwarded
    through instead of rebuilding. *)
val note_replayed_shards : int -> unit

(** Set the [journal.resume_ms] gauge — wall time from the start of the
    resumed run until re-execution caught up with the watermark. *)
val note_resume_ms : float -> unit
