(* Append-only, per-record CRC'd, fsync'd journal. The framing is
   deliberately dumb — one tag byte, LE32 length, LE32 CRC, payload —
   so the reader can always classify a trailing partial write as torn
   rather than silently mis-parsing it: every intact record announces
   its own extent and checksums its own payload. *)

let fail fmt = Wet_error.fail Wet_error.Journal fmt

let magic = "WETJRNL1"

let c_records = Wet_obs.Metrics.counter "journal.records"

let c_replayed = Wet_obs.Metrics.counter "journal.replayed_shards"

let g_resume_ms = Wet_obs.Metrics.gauge "journal.resume_ms"

let note_replayed_shards n = Wet_obs.Metrics.add c_replayed n

let note_resume_ms ms =
  Wet_obs.Metrics.set g_resume_ms (int_of_float (Float.round ms))

(* ---------------- kill injection ---------------- *)

exception Kill_injected

let () =
  Printexc.register_printer (function
    | Kill_injected -> Some "Wet_journal.Journal.Kill_injected"
    | _ -> None)

let kill_after_records : int option ref = ref None

let kill_after_bytes : int option ref = ref None

(* Write [data] fully, or — when the byte budget runs out inside it —
   write exactly the budgeted prefix, fsync it so the torn bytes really
   reach the file, and raise. Mirrors [Store.write_all]. *)
let write_all fd data =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let limit =
    match !kill_after_bytes with
    | Some b when b < len ->
      kill_after_bytes := None;
      Some b
    | Some b ->
      kill_after_bytes := Some (b - len);
      None
    | None -> None
  in
  let upto = match limit with Some b -> b | None -> len in
  let pos = ref 0 in
  while !pos < upto do
    pos := !pos + Unix.write fd bytes !pos (upto - !pos)
  done;
  if limit <> None then begin
    Unix.fsync fd;
    raise Kill_injected
  end

(* ---------------- framing ---------------- *)

let le32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))

let read_le32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame ~tag payload =
  if tag < 0 || tag > 0xff then fail "record tag %d out of range" tag;
  let buf = Buffer.create (9 + String.length payload) in
  Buffer.add_char buf (Char.chr tag);
  le32 buf (String.length payload);
  le32 buf (Wet_util.Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---------------- writer ---------------- *)

type writer = { w_path : string; w_fd : Unix.file_descr; mutable w_open : bool }

let wrap_unix path f =
  try f () with Unix.Unix_error (e, _, _) ->
    fail "%s: %s" path (Unix.error_message e)

let create path =
  wrap_unix path @@ fun () ->
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  write_all fd magic;
  Unix.fsync fd;
  { w_path = path; w_fd = fd; w_open = true }

let reopen path ~at =
  if at < String.length magic then
    fail "%s: cannot reopen at offset %d (inside the magic)" path at;
  wrap_unix path @@ fun () ->
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd at;
  ignore (Unix.lseek fd at Unix.SEEK_SET);
  Unix.fsync fd;
  { w_path = path; w_fd = fd; w_open = true }

let check_open w =
  if not w.w_open then fail "%s: journal writer is closed" w.w_path

let append w ~tag payload =
  check_open w;
  (match !kill_after_records with
   | Some 0 ->
     kill_after_records := None;
     raise Kill_injected
   | _ -> ());
  wrap_unix w.w_path (fun () ->
      write_all w.w_fd (frame ~tag payload);
      Unix.fsync w.w_fd);
  Wet_obs.Metrics.incr c_records;
  match !kill_after_records with
  | Some n when n <= 1 ->
    kill_after_records := None;
    raise Kill_injected
  | Some n ->
    kill_after_records := Some (n - 1)
  | None -> ()

let close w =
  if w.w_open then begin
    w.w_open <- false;
    wrap_unix w.w_path (fun () -> Unix.close w.w_fd)
  end

(* ---------------- reader ---------------- *)

type record = { tag : int; payload : string }

type scan = { records : record list; torn : bool; intact_bytes : int }

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | data ->
    let n = String.length data in
    let mlen = String.length magic in
    if n < mlen || String.sub data 0 mlen <> magic then
      Error (Printf.sprintf "%s: not a WET journal (bad magic)" path)
    else begin
      let records = ref [] in
      let pos = ref mlen in
      let torn = ref false in
      let stop = ref false in
      while not !stop do
        if !pos = n then stop := true
        else if n - !pos < 9 then begin
          (* partial frame header *)
          torn := true;
          stop := true
        end
        else begin
          let tag = Char.code data.[!pos] in
          let plen = read_le32 data (!pos + 1) in
          let crc = read_le32 data (!pos + 5) in
          if plen < 0 || !pos + 9 + plen > n then begin
            torn := true;
            stop := true
          end
          else if Wet_util.Crc32.sub data ~pos:(!pos + 9) ~len:plen <> crc
          then begin
            torn := true;
            stop := true
          end
          else begin
            records :=
              { tag; payload = String.sub data (!pos + 9) plen } :: !records;
            pos := !pos + 9 + plen
          end
        end
      done;
      Ok { records = List.rev !records; torn = !torn; intact_bytes = !pos }
    end
