(** The curated reference for every instrument name the pipeline
    registers with {!Wet_obs.Metrics} — the table behind
    `wet profile --list-metrics` and DESIGN.md's metric reference.
    Names with a [<placeholder>] segment describe dynamically registered
    families (per-method pack counters, per-watch match counters). *)

type kind = Counter | Gauge | Histogram

val kind_name : kind -> string

(** [(name-or-pattern, kind, one-line description)], in pipeline
    order. *)
val docs : (string * kind * string) list

(** Description for a concrete registered name, resolving placeholder
    patterns (e.g. ["pack.method.dfcm/4.streams"]). [None] means the
    name is undocumented — the drift `--list-metrics` exists to catch. *)
val lookup : string -> string option
