type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let add_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string b (Printf.sprintf "%.12g" f)
  else Buffer.add_string b "null"

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num f -> add_num b f
  | Str s -> add_string b s
  | Arr l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        add b v)
      l;
    Buffer.add_char b ']'
  | Obj l ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_string b k;
        Buffer.add_char b ':';
        add b v)
      l;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  add b v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* Only BMP codepoints below 0x80 round-trip exactly; others
              are emitted as UTF-8. Good enough for our own output. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number '%s'" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let items = ref [ member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := member () :: !items;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !items)
      end
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---------------- accessors ---------------- *)

let member k = function Obj l -> List.assoc_opt k l | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr l -> Some l | _ -> None
