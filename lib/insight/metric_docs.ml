(* The curated registry of instrument names. The runtime registry
   (Wet_obs.Metrics) is created by side effect at module init, so names
   can silently drift; `wet profile --list-metrics` prints this table
   next to the live registry and flags names only one side knows. *)

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let docs =
  [
    (* interpreter *)
    ("interp.stmts", Counter, "statement instances executed");
    ("interp.block_execs", Counter, "basic-block executions");
    ("interp.path_execs", Counter, "Ball-Larus acyclic path executions");
    ("interp.dep_events", Counter, "dynamic dependence events recorded");
    ("interp.outputs", Counter, "program output values");
    ("interp.heartbeat_stmts", Gauge, "statements at the last heartbeat");
    (* tier-1 construction *)
    ("build.intern.hits", Counter, "label-sequence intern table hits");
    ("build.intern.misses", Counter, "label-sequence intern table misses");
    ("build.labels.records", Counter, "dependence label records built");
    ("build.labels.dedup_hits", Counter, "label sequences shared via dedup");
    ("build.labels.shared_values", Counter, "values saved by label sharing");
    ("build.groups.count", Counter, "statement groups formed");
    ("build.groups.members", Counter, "group member statements");
    ("build.groups.unique_tuples", Counter, "distinct value tuples per group");
    ("build.groups.pattern_entries", Counter, "pattern stream entries");
    ("build.shards", Counter, "streaming-build shard flushes");
    ("build.shard_events", Histogram, "raw events buffered per shard flush");
    ("build.peak_live_words", Gauge,
     "peak GC live words sampled at shard boundaries");
    (* tier-2 packing *)
    ("pack.streams", Counter, "streams compressed by Builder.pack");
    ("pack.bits_raw", Counter, "analytic bits before packing");
    ("pack.bits_packed", Counter, "analytic bits after packing");
    ("pack.stream_values", Histogram, "values per packed stream");
    ("pack.method.<m>.streams", Counter,
     "streams won by method <m> (e.g. dfcm/4, raw)");
    ("pack.method.<m>.bits_saved", Counter, "bits method <m> saved vs raw");
    (* container I/O *)
    ("store.bytes_written", Counter, "container bytes written");
    ("store.bytes_read", Counter, "container bytes read");
    ("store.sections_ok", Counter, "sections whose CRC verified");
    ("store.sections_corrupt", Counter, "sections failing CRC");
    ("store.salvaged_loads", Counter, "loads that recovered via salvage");
    (* checkpoint journal (durable builds) *)
    ("journal.records", Counter, "checkpoint-journal records appended");
    ("journal.replayed_shards", Counter,
     "shards fast-forwarded through on resume instead of rebuilt");
    ("journal.resume_ms", Gauge,
     "wall ms a resumed build spent re-executing up to its watermark");
    (* queries *)
    ("query.control_flow_ns", Histogram, "control-flow query latency (ns)");
    ("query.load_values_ns", Histogram, "load-value query latency (ns)");
    ("query.addresses_ns", Histogram, "address query latency (ns)");
    ("slice.backward_ns", Histogram, "backward slice latency (ns)");
    ("slice.forward_ns", Histogram, "forward slice latency (ns)");
    ("slice.chop_ns", Histogram, "chop latency (ns)");
    (* tracer driver *)
    ("watch.<name>.matches", Counter, "events matched by watch <name>");
    (* live pulse *)
    ("pulse.ring.pushed", Counter, "events pushed into the pulse event ring");
    ("pulse.ring.dropped", Counter,
     "ring events overwritten before anyone read them");
    ("pulse.reporter.ticks", Counter, "progress ticks offered to the reporter");
    ("pulse.reporter.emits", Counter, "progress lines/heartbeats emitted");
    ("pulse.reporter.emit_ns", Histogram, "time spent emitting progress (ns)");
    (* query explain -> observatory *)
    ("explain.streams", Counter, "streams touched by explained queries");
    ("explain.fwd_steps", Counter, "forward stream steps (explained)");
    ("explain.bwd_steps", Counter, "backward stream steps (explained)");
    ("explain.seeks", Counter, "stream seeks (explained)");
    ("explain.seek_distance", Counter, "total seek distance (explained)");
    ("explain.dir_switches", Counter, "direction reversals (explained)");
    ("explain.stream_steps", Histogram, "per-stream step cost (explained)");
    (* per-query profiling (wet_qprof) *)
    ("qprof.queries", Counter, "queries run under a profiling context");
    ("qprof.fwd_steps", Counter, "forward decode steps (profiled, self)");
    ("qprof.bwd_steps", Counter, "backward decode steps (profiled, self)");
    ("qprof.dir_switches", Counter,
     "traversal direction reversals (profiled, self)");
    ("qprof.dict_hits", Counter,
     "dictionary-hit entries decoded (profiled, self)");
    ("qprof.dict_misses", Counter,
     "verbatim entries decoded (profiled, self)");
    ("qprof.bits_touched", Counter, "stored bits touched (profiled, self)");
    ("qprof.seq_digram_hits", Counter,
     "sequitur digram hits inside profiled contexts (self)");
    ("qprof.seq_digram_misses", Counter,
     "sequitur digram misses inside profiled contexts (self)");
    ("qprof.alloc_words", Counter,
     "words allocated by profiled queries (self)");
    ("qprof.wall_ns", Histogram, "profiled query latency (ns)");
    ("qprof.latency.<shape>", Histogram,
     "latency by query-shape fingerprint (ns), e.g. trace/cf");
    (* query daemon (wet_serve) *)
    ("serve.connections", Counter, "client connections accepted");
    ("serve.requests.<verb>", Counter, "requests answered for verb <verb>");
    ("serve.errors", Counter, "requests answered with an error");
    ("serve.in_flight", Gauge, "requests currently being dispatched");
    ("serve.bytes_in", Counter, "request bytes read from clients");
    ("serve.bytes_out", Counter, "response bytes written to clients");
    ("serve.cache.hits", Counter, "WET container cache hits");
    ("serve.cache.misses", Counter, "WET container cache misses (loads)");
    ("serve.cache.evictions", Counter, "resident WETs evicted by LRU");
    ("serve.sessions.opened", Counter,
     "per-connection sessions opened over resident WETs");
    ("serve.sessions.reused", Counter,
     "requests answered by a connection's existing session");
    ("serve.request_ns", Histogram, "request dispatch latency (ns)");
  ]

(* Match a live name against a doc name, where a <placeholder> segment
   matches any run of characters up to the next literal part. *)
let matches ~pattern name =
  let rec go pi ni =
    if pi >= String.length pattern then ni = String.length name
    else if pattern.[pi] = '<' then begin
      let close =
        match String.index_from_opt pattern pi '>' with
        | Some c -> c
        | None -> String.length pattern - 1
      in
      let rest_start = close + 1 in
      if rest_start >= String.length pattern then ni <= String.length name
      else begin
        (* try every split point for the wildcard *)
        let ok = ref false in
        let j = ref ni in
        while (not !ok) && !j <= String.length name do
          if go rest_start !j then ok := true;
          incr j
        done;
        !ok
      end
    end
    else if ni < String.length name && pattern.[pi] = name.[ni] then
      go (pi + 1) (ni + 1)
    else false
  in
  go 0 0

let lookup name =
  List.find_map
    (fun (pat, _, desc) ->
      if pat = name || (String.contains pat '<' && matches ~pattern:pat name)
      then Some desc
      else None)
    docs
