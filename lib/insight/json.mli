(** A tiny self-contained JSON tree: recursive-descent parser plus a
    printer, used by `wet stats --json` and the bench observatory's
    [BENCH_PR*.json] files. No external dependency, by design — the
    repo's other JSON producers ({!Wet_obs.Export}) emit strings
    directly; this module adds the read side so round-trip tests and
    [bench-check] can consume what we write. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact one-line rendering. Integral numbers print without a decimal
    point; non-finite floats print as [null]. *)
val to_string : t -> string

(** Parse a complete JSON document. [Error] carries a message with a
    byte offset. Accepts exactly what {!to_string} emits (and standard
    JSON generally; surrogate pairs are not recombined). *)
val parse : string -> (t, string) result

(** Object member lookup ([None] on non-objects too). *)
val member : string -> t -> t option

val to_num : t -> float option

(** [Some] only for integral numbers. *)
val to_int : t -> int option

val to_str : t -> string option
val to_list : t -> t list option
