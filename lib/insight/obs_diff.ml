(* A/B comparison of two instrument snapshots, the logic behind
   `wet obs diff`. Kept in the library so the zero-overlap case — two
   exports with no instrument in common must be reported as such, not
   as "nothing changed" — is pinned by a unit test. *)

type inst = { i_name : string; i_kind : string; i_value : int }

type row = {
  d_name : string;
  d_kind : string;
  d_a : int;
  d_b : int;
  d_rel : float;  (* signed relative change, vs max 1 |a| *)
}

type t = {
  d_overlap : int;
  d_changed : row list;  (* sorted by |d_rel| descending, then name *)
  d_only_a : string list;
  d_only_b : string list;
}

let diff a b =
  let in_b = Hashtbl.create 64 in
  List.iter (fun i -> Hashtbl.replace in_b i.i_name i) b;
  let overlap = ref 0 in
  let changed =
    List.filter_map
      (fun ia ->
        match Hashtbl.find_opt in_b ia.i_name with
        | None -> None
        | Some ib ->
          incr overlap;
          if ia.i_value = ib.i_value then None
          else
            let rel =
              float_of_int (ib.i_value - ia.i_value)
              /. float_of_int (max 1 (abs ia.i_value))
            in
            Some
              {
                d_name = ia.i_name;
                d_kind = ia.i_kind;
                d_a = ia.i_value;
                d_b = ib.i_value;
                d_rel = rel;
              })
      a
    |> List.sort (fun x y ->
           compare (abs_float y.d_rel, x.d_name) (abs_float x.d_rel, y.d_name))
  in
  let names l = List.map (fun i -> i.i_name) l in
  let only xs ys =
    let have = Hashtbl.create 64 in
    List.iter (fun i -> Hashtbl.replace have i.i_name ()) ys;
    List.filter (fun n -> not (Hashtbl.mem have n)) (names xs)
  in
  {
    d_overlap = !overlap;
    d_changed = changed;
    d_only_a = only a b;
    d_only_b = only b a;
  }
