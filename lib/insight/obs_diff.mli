(** A/B comparison of two instrument snapshots — the logic behind
    `wet obs diff`, in the library so its edge cases (notably two
    exports with {e no} instrument in common, which must read as "no
    overlap", never as "nothing changed") are unit-testable. *)

type inst = { i_name : string; i_kind : string; i_value : int }

type row = {
  d_name : string;
  d_kind : string;  (** kind as recorded in the A export *)
  d_a : int;
  d_b : int;
  d_rel : float;  (** signed [(b - a) / max 1 |a|] *)
}

type t = {
  d_overlap : int;  (** instruments present in both exports *)
  d_changed : row list;  (** sorted by [|d_rel|] descending, then name *)
  d_only_a : string list;
  d_only_b : string list;
}

val diff : inst list -> inst list -> t
