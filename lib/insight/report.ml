module Wet = Wet_core.Wet
module Sizes = Wet_core.Sizes
module Table = Wet_report.Table

type t = {
  rp_label : string;
  rp_tier : string;
  rp_damage : string list;
  rp_stmts : int;
  rp_orig : Sizes.breakdown;
  rp_current : Sizes.breakdown;
  rp_detail : Sizes.detail;
}

let of_wet ~label (w : Wet.t) =
  {
    rp_label = label;
    rp_tier = (match w.Wet.tier with `Tier1 -> "tier1" | `Tier2 -> "tier2");
    rp_damage = w.Wet.damage;
    rp_stmts = w.Wet.stats.Wet.stmts_executed;
    rp_orig = Sizes.original w;
    rp_current = Sizes.current w;
    rp_detail = Sizes.detail w;
  }

let method_mix (c : Sizes.stream_class) =
  match c.Sizes.sc_methods with
  | [] -> "-"
  | ms ->
    ms
    |> List.map (fun (m, n) ->
           if n = 1 then m else Printf.sprintf "%s x%d" m n)
    |> String.concat " "

let pct num den = if den = 0 then "-" else Table.f1 (100. *. float_of_int num /. float_of_int den)

let ratio_vs_raw (c : Sizes.stream_class) =
  if c.Sizes.sc_bits = 0 then "-"
  else Table.f2 (float_of_int c.Sizes.sc_raw_bits /. float_of_int c.Sizes.sc_bits)

let bits_per_value (c : Sizes.stream_class) =
  if c.Sizes.sc_values = 0 then "-"
  else Table.f2 (float_of_int c.Sizes.sc_bits /. float_of_int c.Sizes.sc_values)

let print r =
  let d = r.rp_detail in
  let rows =
    List.map
      (fun (c : Sizes.stream_class) ->
        [
          c.Sizes.sc_kind;
          Table.i c.Sizes.sc_streams;
          Table.i c.Sizes.sc_values;
          method_mix c;
          Table.i c.Sizes.sc_bits;
          bits_per_value c;
          ratio_vs_raw c;
          pct c.Sizes.sc_hits c.Sizes.sc_lookups;
        ])
      d.Sizes.d_classes
    @ [
        [
          "total";
          Table.i (List.fold_left (fun s c -> s + c.Sizes.sc_streams) 0 d.Sizes.d_classes);
          Table.i (List.fold_left (fun s c -> s + c.Sizes.sc_values) 0 d.Sizes.d_classes);
          "";
          Table.i d.Sizes.d_total_bits;
          "";
          "";
          "";
        ];
      ]
  in
  Table.print
    ~title:
      (Printf.sprintf "%s: per-stream breakdown (%s%s)" r.rp_label r.rp_tier
         (match r.rp_damage with
          | [] -> ""
          | ds -> Printf.sprintf ", damaged: %s" (String.concat "," ds)))
    ~header:
      [ "stream"; "streams"; "values"; "methods"; "bits"; "bits/val";
        "vs raw"; "hit%" ]
    rows;
  let summary =
    [
      [ "orig (paper model)"; Table.f2 (Sizes.mb r.rp_orig.Sizes.total_bytes) ];
      [ "stored"; Table.f2 (Sizes.mb r.rp_current.Sizes.total_bytes) ];
      [
        "ratio";
        (if r.rp_current.Sizes.total_bytes = 0. then "-"
         else
           Table.f2 (r.rp_orig.Sizes.total_bytes /. r.rp_current.Sizes.total_bytes));
      ];
      [ "stmts executed"; Table.i r.rp_stmts ];
      [
        "bits/stmt";
        (if r.rp_stmts = 0 then "-"
         else
           Table.f2 (8. *. r.rp_current.Sizes.total_bytes /. float_of_int r.rp_stmts));
      ];
    ]
  in
  Table.print ~title:"summary" ~header:[ "metric"; "value" ] summary

let breakdown_json (b : Sizes.breakdown) =
  Json.Obj
    [
      ("ts_bytes", Json.Num b.Sizes.ts_bytes);
      ("vals_bytes", Json.Num b.Sizes.vals_bytes);
      ("edge_bytes", Json.Num b.Sizes.edge_bytes);
      ("total_bytes", Json.Num b.Sizes.total_bytes);
    ]

let class_json (c : Sizes.stream_class) =
  Json.Obj
    [
      ("kind", Json.Str c.Sizes.sc_kind);
      ("streams", Json.Num (float_of_int c.Sizes.sc_streams));
      ("values", Json.Num (float_of_int c.Sizes.sc_values));
      ("bits", Json.Num (float_of_int c.Sizes.sc_bits));
      ("raw_bits", Json.Num (float_of_int c.Sizes.sc_raw_bits));
      ("lookups", Json.Num (float_of_int c.Sizes.sc_lookups));
      ("hits", Json.Num (float_of_int c.Sizes.sc_hits));
      ( "methods",
        Json.Obj
          (List.map
             (fun (m, n) -> (m, Json.Num (float_of_int n)))
             c.Sizes.sc_methods) );
    ]

let to_json r =
  Json.Obj
    [
      ("label", Json.Str r.rp_label);
      ("tier", Json.Str r.rp_tier);
      ("damage", Json.Arr (List.map (fun d -> Json.Str d) r.rp_damage));
      ("stmts", Json.Num (float_of_int r.rp_stmts));
      ("orig", breakdown_json r.rp_orig);
      ("stored", breakdown_json r.rp_current);
      ( "streams",
        Json.Arr (List.map class_json r.rp_detail.Sizes.d_classes) );
      ("total_bits", Json.Num (float_of_int r.rp_detail.Sizes.d_total_bits));
    ]
