(** The paper-style per-stream compression report behind `wet stats`
    (paper §5, Table 3): per stream class — timestamps, used values,
    patterns, dependence label endpoints — the stored bits, the method
    mix the per-stream selector picked, compression vs the 32-bit raw
    encoding, and the predictor hit rate, plus the coarse original
    vs stored summary of {!Wet_core.Sizes}. Works on salvaged WETs: the
    damaged sections are listed in the title and their streams simply
    don't appear. *)

type t = {
  rp_label : string;  (** file path or workload name *)
  rp_tier : string;  (** ["tier1"] or ["tier2"] *)
  rp_damage : string list;  (** salvaged-away sections *)
  rp_stmts : int;
  rp_orig : Wet_core.Sizes.breakdown;
  rp_current : Wet_core.Sizes.breakdown;
  rp_detail : Wet_core.Sizes.detail;
}

val of_wet : label:string -> Wet_core.Wet.t -> t

(** Print the per-stream table and a summary table to stdout. *)
val print : t -> unit

(** The machine-readable form behind `wet stats --json`. [total_bits]
    equals the sum of the per-class [bits] fields by construction. *)
val to_json : t -> Json.t
