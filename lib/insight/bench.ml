type sample = {
  workload : string;
  scale : int;
  stmts : int;
  stmts_per_sec : float;
  bytes_per_label_t1 : float;
  bytes_per_label_t2 : float;
  ratio_t1 : float;
  ratio_t2 : float;
  build_p50_ms : float;
  build_p95_ms : float;
  query_p50_ms : float;
  query_p95_ms : float;
  query_steps : int;
  query_switches : int;
  build_peak_words : int;
  wet_words : int;
  shards : int;
  stream_p50_ms : float;
  stream_progress_p50_ms : float;
  query_decode_steps : int;
  query_bits_touched : int;
  qlog_overhead_frac : float;
  stream_checkpoint_p50_ms : float;
  checkpoint_overhead_frac : float;
  resume_ms : float;
  serve_p50_ms : float;
  serve_p95_ms : float;
  serve_mt_p50_ms : float;
  serve_mt_rps : float;
}

type run = {
  label : string;
  quick : bool;
  repeat : int;
  warmup : int;
  samples : sample list;
}

(* Nearest-rank on a sorted copy; [p] in [0,1]. *)
let percentile p xs =
  match xs with
  | [] -> invalid_arg "Bench.percentile: empty"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

(* ---------------- JSON round trip ---------------- *)

let sample_json s =
  Json.Obj
    [
      ("workload", Json.Str s.workload);
      ("scale", Json.Num (float_of_int s.scale));
      ("stmts", Json.Num (float_of_int s.stmts));
      ("stmts_per_sec", Json.Num s.stmts_per_sec);
      ("bytes_per_label_t1", Json.Num s.bytes_per_label_t1);
      ("bytes_per_label_t2", Json.Num s.bytes_per_label_t2);
      ("ratio_t1", Json.Num s.ratio_t1);
      ("ratio_t2", Json.Num s.ratio_t2);
      ("build_p50_ms", Json.Num s.build_p50_ms);
      ("build_p95_ms", Json.Num s.build_p95_ms);
      ("query_p50_ms", Json.Num s.query_p50_ms);
      ("query_p95_ms", Json.Num s.query_p95_ms);
      ("query_steps", Json.Num (float_of_int s.query_steps));
      ("query_switches", Json.Num (float_of_int s.query_switches));
      ("build_peak_words", Json.Num (float_of_int s.build_peak_words));
      ("wet_words", Json.Num (float_of_int s.wet_words));
      ("shards", Json.Num (float_of_int s.shards));
      ("stream_p50_ms", Json.Num s.stream_p50_ms);
      ("stream_progress_p50_ms", Json.Num s.stream_progress_p50_ms);
      ("query_decode_steps", Json.Num (float_of_int s.query_decode_steps));
      ("query_bits_touched", Json.Num (float_of_int s.query_bits_touched));
      ("qlog_overhead_frac", Json.Num s.qlog_overhead_frac);
      ("stream_checkpoint_p50_ms", Json.Num s.stream_checkpoint_p50_ms);
      ("checkpoint_overhead_frac", Json.Num s.checkpoint_overhead_frac);
      ("resume_ms", Json.Num s.resume_ms);
      ("serve_p50_ms", Json.Num s.serve_p50_ms);
      ("serve_p95_ms", Json.Num s.serve_p95_ms);
      ("serve_mt_p50_ms", Json.Num s.serve_mt_p50_ms);
      ("serve_mt_rps", Json.Num s.serve_mt_rps);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.Str "wet-bench/1");
      ("label", Json.Str r.label);
      ("quick", Json.Bool r.quick);
      ("repeat", Json.Num (float_of_int r.repeat));
      ("warmup", Json.Num (float_of_int r.warmup));
      ("samples", Json.Arr (List.map sample_json r.samples));
    ]

let ( let* ) o f = match o with Some x -> f x | None -> Error "missing field"

let sample_of_json j =
  let num k = Option.bind (Json.member k j) Json.to_num in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let* workload = Option.bind (Json.member "workload" j) Json.to_str in
  let* scale = int "scale" in
  let* stmts = int "stmts" in
  let* stmts_per_sec = num "stmts_per_sec" in
  let* bytes_per_label_t1 = num "bytes_per_label_t1" in
  let* bytes_per_label_t2 = num "bytes_per_label_t2" in
  let* ratio_t1 = num "ratio_t1" in
  let* ratio_t2 = num "ratio_t2" in
  let* build_p50_ms = num "build_p50_ms" in
  let* build_p95_ms = num "build_p95_ms" in
  let* query_p50_ms = num "query_p50_ms" in
  let* query_p95_ms = num "query_p95_ms" in
  let* query_steps = int "query_steps" in
  let* query_switches = int "query_switches" in
  (* Memory fields arrived with the streaming build; default 0 so files
     from before them still load (0 never anchors a regression). *)
  let opt_int k = Option.value (int k) ~default:0 in
  let build_peak_words = opt_int "build_peak_words" in
  let wet_words = opt_int "wet_words" in
  let shards = opt_int "shards" in
  (* Reporter-overhead pair arrived with the live pulse; same rule. *)
  let opt_num k = Option.value (num k) ~default:0. in
  let stream_p50_ms = opt_num "stream_p50_ms" in
  let stream_progress_p50_ms = opt_num "stream_progress_p50_ms" in
  (* Per-query cost columns arrived with wet_qprof; same rule. *)
  let query_decode_steps = opt_int "query_decode_steps" in
  let query_bits_touched = opt_int "query_bits_touched" in
  let qlog_overhead_frac = opt_num "qlog_overhead_frac" in
  (* Durable-build columns arrived with the checkpoint journal; same
     rule. *)
  let stream_checkpoint_p50_ms = opt_num "stream_checkpoint_p50_ms" in
  let checkpoint_overhead_frac = opt_num "checkpoint_overhead_frac" in
  let resume_ms = opt_num "resume_ms" in
  (* Serve columns arrived with wet_serve; same rule. *)
  let serve_p50_ms = opt_num "serve_p50_ms" in
  let serve_p95_ms = opt_num "serve_p95_ms" in
  (* Concurrent-serve columns arrived with session cursors; same rule. *)
  let serve_mt_p50_ms = opt_num "serve_mt_p50_ms" in
  let serve_mt_rps = opt_num "serve_mt_rps" in
  Ok
    {
      workload;
      scale;
      stmts;
      stmts_per_sec;
      bytes_per_label_t1;
      bytes_per_label_t2;
      ratio_t1;
      ratio_t2;
      build_p50_ms;
      build_p95_ms;
      query_p50_ms;
      query_p95_ms;
      query_steps;
      query_switches;
      build_peak_words;
      wet_words;
      shards;
      stream_p50_ms;
      stream_progress_p50_ms;
      query_decode_steps;
      query_bits_touched;
      qlog_overhead_frac;
      stream_checkpoint_p50_ms;
      checkpoint_overhead_frac;
      resume_ms;
      serve_p50_ms;
      serve_p95_ms;
      serve_mt_p50_ms;
      serve_mt_rps;
    }

let of_json j =
  match Json.member "schema" j with
  | Some (Json.Str "wet-bench/1") ->
    let* label = Option.bind (Json.member "label" j) Json.to_str in
    let* quick =
      match Json.member "quick" j with Some (Json.Bool b) -> Some b | _ -> None
    in
    let* repeat = Option.bind (Json.member "repeat" j) Json.to_int in
    let* warmup = Option.bind (Json.member "warmup" j) Json.to_int in
    let* samples = Option.bind (Json.member "samples" j) Json.to_list in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
        match sample_of_json s with
        | Ok s -> go (s :: acc) rest
        | Error e -> Error e)
    in
    (match go [] samples with
     | Ok samples -> Ok { label; quick; repeat; warmup; samples }
     | Error e -> Error e)
  | _ -> Error "not a wet-bench/1 document"

let save r path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json r));
      output_char oc '\n')

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse s with
  | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" path e)
  | Ok j -> (
    match of_json j with
    | Ok r -> Ok r
    | Error e -> Error (Printf.sprintf "%s: %s" path e))

(* ---------------- regression gate ---------------- *)

type thresholds = { wall_frac : float; size_frac : float }

let default_thresholds = { wall_frac = 0.25; size_frac = 0.02 }

type verdict = {
  v_workload : string;
  v_metric : string;
  v_prev : float;
  v_cur : float;
  v_worse_frac : float;
  v_threshold : float;
  v_regressed : bool;
}

(* Signed "how much worse" fraction. Positive = regressed. A zero or
   negative previous value cannot anchor a relative comparison, so it
   never regresses (fresh metrics slide in silently). *)
let worse_frac ~higher_is_better ~prev ~cur =
  if prev <= 0. then 0.
  else if higher_is_better then (prev -. cur) /. prev
  else (cur -. prev) /. prev

(* Metric table: name, extractor, direction, which threshold gates it.
   Wall-clock numbers are noisy (hence the loose default and p50s only);
   size and step metrics are deterministic, so they gate tightly. *)
let metrics =
  [
    ("stmts_per_sec", (fun s -> s.stmts_per_sec), true, `Wall);
    ("build_p50_ms", (fun s -> s.build_p50_ms), false, `Wall);
    ("query_p50_ms", (fun s -> s.query_p50_ms), false, `Wall);
    ("bytes_per_label_t1", (fun s -> s.bytes_per_label_t1), false, `Size);
    ("bytes_per_label_t2", (fun s -> s.bytes_per_label_t2), false, `Size);
    ("ratio_t1", (fun s -> s.ratio_t1), true, `Size);
    ("ratio_t2", (fun s -> s.ratio_t2), true, `Size);
    ("query_steps", (fun s -> float_of_int s.query_steps), false, `Size);
    (* GC live-word peaks jitter with collector scheduling, so they gate
       at the loose wall threshold; a zero (pre-streaming baseline or
       untracked run) never regresses. *)
    ("build_peak_words", (fun s -> float_of_int s.build_peak_words), false,
     `Wall);
    (* The fused streaming build, observability off and with a live
       reporter armed. Both wall-noisy; both zero in pre-pulse files. *)
    ("stream_p50_ms", (fun s -> s.stream_p50_ms), false, `Wall);
    ("stream_progress_p50_ms", (fun s -> s.stream_progress_p50_ms), false,
     `Wall);
    (* Per-query decode work is deterministic (same sweep, same cursor
       history every run), so it gates tightly; the qlog overhead
       fraction is a ratio of two small walls — far too noisy to gate,
       it is recorded for the table only. *)
    ("query_decode_steps", (fun s -> float_of_int s.query_decode_steps),
     false, `Size);
    ("query_bits_touched", (fun s -> float_of_int s.query_bits_touched),
     false, `Size);
    (* The checkpointed streaming build: per-shard snapshot + fsync'd
       journal append on top of stream_p50_ms. Gating this wall number
       is the "journal overhead stays bounded" guarantee; the overhead
       fraction and the resume wall are ratios/one-shots far too noisy
       to gate, recorded for the table only. *)
    ("stream_checkpoint_p50_ms", (fun s -> s.stream_checkpoint_p50_ms),
     false, `Wall);
    (* Serve round trips are socket I/O + dispatch over a hot cache —
       wall-noisy, so the p50 gates loosely and the p95 is recorded for
       the table only (0 = pre-serve file never regresses). *)
    ("serve_p50_ms", (fun s -> s.serve_p50_ms), false, `Wall);
    (* Concurrent serve: per-request p50 across 4 client threads, and
       the aggregate requests/sec of the whole burst (higher is
       better). Both socket-and-scheduler noisy, so they gate at the
       wall threshold; 0 = pre-session file never regresses. *)
    ("serve_mt_p50_ms", (fun s -> s.serve_mt_p50_ms), false, `Wall);
    ("serve_mt_rps", (fun s -> s.serve_mt_rps), true, `Wall);
  ]

let check th ~prev ~cur =
  List.concat_map
    (fun (c : sample) ->
      match
        List.find_opt (fun (p : sample) -> p.workload = c.workload) prev.samples
      with
      | None -> []  (* new workload: nothing to compare against *)
      | Some p ->
        List.map
          (fun (name, get, higher_is_better, kind) ->
            let threshold =
              match kind with `Wall -> th.wall_frac | `Size -> th.size_frac
            in
            let wf = worse_frac ~higher_is_better ~prev:(get p) ~cur:(get c) in
            {
              v_workload = c.workload;
              v_metric = name;
              v_prev = get p;
              v_cur = get c;
              v_worse_frac = wf;
              v_threshold = threshold;
              (* Strictly greater: landing exactly on the threshold is
                 within tolerance. *)
              v_regressed = wf > threshold;
            })
          metrics)
    cur.samples

let regressed verdicts = List.exists (fun v -> v.v_regressed) verdicts
