(** The persisted bench observatory: machine-readable bench runs
    ([BENCH_PR*.json]) and the regression gate behind
    `wet bench-check`.

    A {!run} is one invocation of `bench observatory`: per workload, the
    throughput, compression and query-cost figures of the paper's
    Tables 2–9, with wall-clock percentiles over [repeat] timed
    iterations after [warmup] discarded ones. {!check} diffs two runs
    metric by metric with direction-aware relative thresholds; wall
    metrics share a loose noise threshold, deterministic size/step
    metrics a tight one. *)

type sample = {
  workload : string;
  scale : int;
  stmts : int;  (** statements executed *)
  stmts_per_sec : float;  (** build throughput, p50 wall *)
  bytes_per_label_t1 : float;  (** stored bytes / stmt, tier-1 *)
  bytes_per_label_t2 : float;  (** stored bytes / stmt, tier-2 *)
  ratio_t1 : float;  (** orig bytes / tier-1 bytes *)
  ratio_t2 : float;  (** orig bytes / tier-2 bytes *)
  build_p50_ms : float;
  build_p95_ms : float;
  query_p50_ms : float;  (** fixed query sweep, see bench/main.ml *)
  query_p95_ms : float;
  query_steps : int;  (** stream steps the sweep costs (deterministic) *)
  query_switches : int;  (** direction reversals in the sweep *)
  build_peak_words : int;
      (** peak GC live-word delta of a streaming build (0 = untracked or
          a pre-streaming file) *)
  wet_words : int;  (** reachable words of the finished tier-1 WET *)
  shards : int;  (** shard flushes the streaming build performed *)
  stream_p50_ms : float;
      (** fused interp+build wall, observability off (0 = pre-pulse
          file) *)
  stream_progress_p50_ms : float;
      (** same fused build with a live progress reporter armed; the
          difference against {!stream_p50_ms} is the reporter's
          overhead *)
  query_decode_steps : int;
      (** tier-2 decode steps the profiled query sweep pays
          (deterministic; 0 = pre-qprof file) *)
  query_bits_touched : int;
      (** stored bits the profiled sweep touches (deterministic) *)
  qlog_overhead_frac : float;
      (** relative wall overhead of running the sweep under profiling
          contexts with a qlog sink vs. plain — recorded, not gated *)
  stream_checkpoint_p50_ms : float;
      (** fused streaming build with a checkpoint journal armed (one
          snapshot + fsync'd append per shard); gated at the wall
          threshold — the "journal overhead stays bounded" guarantee
          (0 = pre-journal file) *)
  checkpoint_overhead_frac : float;
      (** (stream_checkpoint_p50_ms - stream_p50_ms) / stream_p50_ms —
          a ratio of two noisy walls, recorded but never gated *)
  resume_ms : float;
      (** wall time for a crash recovery killed at the midpoint shard:
          read journal, restore snapshot, re-execute to the watermark —
          recorded, not gated (one-shot, dominated by re-execution) *)
  serve_p50_ms : float;
      (** round-trip wall for a trace query through an in-process serve
          daemon over a Unix socket, hot cache; gated at the wall
          threshold (0 = pre-serve file) *)
  serve_p95_ms : float;
      (** tail of the same round trips — recorded, not gated *)
  serve_mt_p50_ms : float;
      (** per-request round-trip p50 with 4 client threads hammering
          the daemon concurrently (each connection on its own session);
          gated at the wall threshold (0 = pre-session file) *)
  serve_mt_rps : float;
      (** aggregate requests/sec of the 4-client burst — the lock-free
          read path's throughput headroom over the single client;
          higher is better, gated at the wall threshold *)
}

type run = {
  label : string;
  quick : bool;
  repeat : int;
  warmup : int;
  samples : sample list;
}

(** [percentile p xs] is the nearest-rank [p]-quantile ([p] in [[0,1]]).
    @raise Invalid_argument on an empty list. *)
val percentile : float -> float list -> float

val to_json : run -> Json.t

val of_json : Json.t -> (run, string) result

val save : run -> string -> unit

val load : string -> (run, string) result

type thresholds = {
  wall_frac : float;  (** relative tolerance for wall-clock metrics *)
  size_frac : float;  (** for deterministic size/step metrics *)
}

(** [{ wall_frac = 0.25; size_frac = 0.02 }]. *)
val default_thresholds : thresholds

type verdict = {
  v_workload : string;
  v_metric : string;
  v_prev : float;
  v_cur : float;
  v_worse_frac : float;
      (** signed, direction-normalised: positive = worse *)
  v_threshold : float;
  v_regressed : bool;  (** [v_worse_frac > v_threshold], strictly *)
}

(** One verdict per (workload present in both runs) × metric. Workloads
    only in [cur] produce no verdicts; a non-positive previous value
    never regresses. Exactly-at-threshold is a pass. *)
val check : thresholds -> prev:run -> cur:run -> verdict list

val regressed : verdict list -> bool
