(** Column-aligned plain-text tables, in the visual style of the paper's
    Tables 1–9. *)

type align = Left | Right

(** [render ~title ~header ?align rows] lays the table out with
    per-column widths; numeric columns usually read best right-aligned
    (the default for every column but the first). *)
val render :
  ?align:align list -> title:string -> header:string list ->
  string list list -> string

(** [render] followed by [print_string]. *)
val print :
  ?align:align list -> title:string -> header:string list ->
  string list list -> unit

(** Formatting helpers used by the benches. *)
val f1 : float -> string  (** one decimal, e.g. [41.3] *)

val f2 : float -> string  (** two decimals *)

val i : int -> string

(** Millions with two decimals, e.g. statement counts. *)
val millions : int -> string

(** Hexadecimal, e.g. memory addresses: [0x1ff] (negatives unchanged). *)
val hex : int -> string

(** Nanoseconds as milliseconds with two decimals. *)
val ms : int -> string
