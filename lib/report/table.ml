type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~title ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ | None -> Left :: List.init (ncols - 1) (fun _ -> Right)
  in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun c cell ->
          if c < ncols then widths.(c) <- max widths.(c) (String.length cell))
        row)
    rows;
  let line row =
    String.concat "  "
      (List.mapi (fun c cell -> pad (List.nth aligns c) widths.(c) cell) row)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?align ~title ~header rows =
  print_string (render ?align ~title ~header rows);
  print_newline ()

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let i = string_of_int

let millions n = Printf.sprintf "%.2f" (float_of_int n /. 1_000_000.)

let hex n = if n < 0 then string_of_int n else Printf.sprintf "0x%x" n

let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6)
