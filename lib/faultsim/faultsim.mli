(** Deterministic fault injection for container bytes.

    The robustness claim of the sectioned {!Container} format — every
    fault is detected, attributed, and survivable — is only worth
    anything if it is exercised. This library produces the faults:
    seeded single-bit flips, byte-range zeroing, and truncation, as pure
    functions on strings so tests and [wet_cli fsck --inject] share one
    implementation and every campaign replays from its seed. *)

type fault =
  | Bit_flip of { offset : int; bit : int }  (** xor bit [bit] (0–7) *)
  | Zero_range of { offset : int; len : int }
  | Truncate_at of int  (** keep the first [n] bytes *)

(** Human-readable one-liner, e.g. ["bit 3 of byte 812 flipped"]. *)
val describe : fault -> string

(** Compact spec syntax, ["flip:OFF:BIT"] | ["zero:OFF:LEN"] |
    ["trunc:LEN"] — what [wet_cli fsck --inject] accepts. *)
val to_spec : fault -> string

(** Inverse of {!to_spec}. [Error] explains the malformed spec. *)
val of_spec : string -> (fault, string) result

(** Apply a fault to container bytes. Out-of-range offsets clamp to the
    data (an empty input is returned unchanged), so campaign faults are
    always applicable. *)
val apply : fault -> string -> string

(** Read [path], apply the faults in order, write the result back. *)
val apply_file : fault list -> string -> unit

(** One random fault for data of length [len], drawn from the
    generator: 60% bit flips, 25% zeroed ranges (up to 64 bytes), 15%
    truncations. *)
val random_fault : Wet_util.Prng.t -> len:int -> fault

(** [campaign ~seed ~count ~len] is [count] reproducible faults for
    data of length [len]. *)
val campaign : seed:int -> count:int -> len:int -> fault list

(** {1 Process kills}

    Faults above damage bytes at rest; kills stop a checkpointed build
    mid-flight ([wet build --checkpoint --kill SPEC]). They map onto
    the {!Wet_journal.Journal} kill hooks — deterministic stand-ins for
    [kill -9] at a seeded point, so a campaign replays exactly. Offsets
    are relative to the checkpoint stream (the CLI arms the hook once
    the journal header is durable). *)

type kill =
  | Kill_at_shard of int
      (** die once [n] shard checkpoints are durable; [0] dies before
          the first, leaving a header-only journal *)
  | Kill_at_byte of int
      (** die once [n] more journal bytes are written — lands inside a
          record, leaving a genuinely torn tail on disk *)

(** e.g. ["killed after shard checkpoint 3 was durable"]. *)
val describe_kill : kill -> string

(** Compact spec, ["kill:shard:N"] | ["kill:byte:N"] — what
    [wet build --kill] accepts. *)
val kill_to_spec : kill -> string

(** Inverse of {!kill_to_spec}. [Error] explains the malformed spec. *)
val kill_of_spec : string -> (kill, string) result

(** One random kill: 50% [Kill_at_shard] (uniform in [0..shards-1]),
    50% [Kill_at_byte] (uniform in [0..bytes-1]). *)
val random_kill : Wet_util.Prng.t -> shards:int -> bytes:int -> kill

(** [kill_campaign ~seed ~count ~shards ~bytes] is [count] reproducible
    kill points for a build expected to checkpoint [shards] shards and
    write about [bytes] journal bytes. *)
val kill_campaign :
  seed:int -> count:int -> shards:int -> bytes:int -> kill list
