module Prng = Wet_util.Prng

type fault =
  | Bit_flip of { offset : int; bit : int }
  | Zero_range of { offset : int; len : int }
  | Truncate_at of int

let describe = function
  | Bit_flip { offset; bit } ->
    Printf.sprintf "bit %d of byte %d flipped" bit offset
  | Zero_range { offset; len } ->
    Printf.sprintf "%d bytes zeroed at offset %d" len offset
  | Truncate_at n -> Printf.sprintf "truncated to %d bytes" n

let to_spec = function
  | Bit_flip { offset; bit } -> Printf.sprintf "flip:%d:%d" offset bit
  | Zero_range { offset; len } -> Printf.sprintf "zero:%d:%d" offset len
  | Truncate_at n -> Printf.sprintf "trunc:%d" n

let of_spec s =
  let nat what v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s: %s must be a non-negative integer" s what)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "flip"; off; bit ] ->
    let* off = nat "offset" off in
    let* bit = nat "bit" bit in
    if bit > 7 then Error (Printf.sprintf "%s: bit must be in 0..7" s)
    else Ok (Bit_flip { offset = off; bit })
  | [ "zero"; off; len ] ->
    let* off = nat "offset" off in
    let* len = nat "length" len in
    Ok (Zero_range { offset = off; len })
  | [ "trunc"; n ] ->
    let* n = nat "length" n in
    Ok (Truncate_at n)
  | _ ->
    Error
      (Printf.sprintf
         "%s: expected flip:OFF:BIT, zero:OFF:LEN, or trunc:LEN" s)

let apply fault data =
  let n = String.length data in
  if n = 0 then data
  else
    match fault with
    | Bit_flip { offset; bit } ->
      let offset = min offset (n - 1) in
      let b = Bytes.of_string data in
      Bytes.set b offset
        (Char.chr (Char.code (Bytes.get b offset) lxor (1 lsl (bit land 7))));
      Bytes.unsafe_to_string b
    | Zero_range { offset; len } ->
      let offset = min offset (n - 1) in
      let len = min len (n - offset) in
      let b = Bytes.of_string data in
      Bytes.fill b offset len '\000';
      Bytes.unsafe_to_string b
    | Truncate_at k -> String.sub data 0 (min k n)

let apply_file faults path =
  let data =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let data = List.fold_left (fun d f -> apply f d) data faults in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let random_fault rng ~len =
  let len = max len 1 in
  match Prng.int rng 100 with
  | r when r < 60 ->
    Bit_flip { offset = Prng.int rng len; bit = Prng.int rng 8 }
  | r when r < 85 ->
    Zero_range
      { offset = Prng.int rng len; len = 1 + Prng.int rng 64 }
  | _ -> Truncate_at (Prng.int rng len)

let campaign ~seed ~count ~len =
  let rng = Prng.create seed in
  (* explicit loop: [List.init]'s evaluation order is unspecified and
     the generator is stateful *)
  let acc = ref [] in
  for _ = 1 to count do
    acc := random_fault rng ~len :: !acc
  done;
  List.rev !acc

(* ---------------- process kills ---------------- *)

type kill =
  | Kill_at_shard of int
  | Kill_at_byte of int

let describe_kill = function
  | Kill_at_shard 0 -> "killed before the first shard checkpoint"
  | Kill_at_shard n ->
    Printf.sprintf "killed after shard checkpoint %d was durable" n
  | Kill_at_byte b ->
    Printf.sprintf "killed %d bytes into the checkpoint stream" b

let kill_to_spec = function
  | Kill_at_shard n -> Printf.sprintf "kill:shard:%d" n
  | Kill_at_byte b -> Printf.sprintf "kill:byte:%d" b

let kill_of_spec s =
  let nat what v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s: %s must be a non-negative integer" s what)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ "kill"; "shard"; n ] ->
    let* n = nat "shard count" n in
    Ok (Kill_at_shard n)
  | [ "kill"; "byte"; b ] ->
    let* b = nat "byte offset" b in
    Ok (Kill_at_byte b)
  | _ ->
    Error (Printf.sprintf "%s: expected kill:shard:N or kill:byte:N" s)

let random_kill rng ~shards ~bytes =
  if Prng.int rng 2 = 0 then Kill_at_shard (Prng.int rng (max shards 1))
  else Kill_at_byte (Prng.int rng (max bytes 1))

let kill_campaign ~seed ~count ~shards ~bytes =
  let rng = Prng.create seed in
  let acc = ref [] in
  for _ = 1 to count do
    acc := random_kill rng ~shards ~bytes :: !acc
  done;
  List.rev !acc
