(** Sequitur grammar inference (Nevill-Manning & Witten), the paper's
    reference point for traversable compression (§4): it also yields a
    representation walkable in both directions, but is "nearly not as
    effective as unidirectional predictors when compressing value
    streams". The ablation bench quantifies exactly that comparison
    against the bidirectional predictor streams.

    The algorithm maintains two invariants over a straight-line grammar:
    {e digram uniqueness} (no pair of adjacent symbols appears twice) and
    {e rule utility} (every rule is used at least twice). *)

type t

(** Infer a grammar for the sequence. *)
val build : int array -> t

(** Reconstruct the original sequence. *)
val expand : t -> int array

(** Number of rules, including the start rule. *)
val num_rules : t -> int

(** Total number of symbols on the right-hand sides of all rules. *)
val grammar_symbols : t -> int

(** Analytic compressed size: 32 bits per right-hand-side symbol plus 32
    per rule header. *)
val bits : t -> int

(** Invariant checks, exposed for property tests: every digram of
    adjacent symbols occurs at most once across all rules, and every rule
    other than the start rule is referenced at least twice. *)
val check_invariants : t -> (unit, string) result

(** Always-on inference telemetry. Invariants, checked in tests:
    [tl_rules = 1 + tl_rules_created - tl_rules_inlined] (the start rule
    plus surviving created rules) and [tl_input = Array.length input].
    [tl_digram_hits] counts appearances of an already-indexed digram
    (each triggers a rule reuse or creation); [tl_digram_misses] counts
    fresh digrams entering the index. *)
type telemetry = {
  tl_input : int;  (** terminals appended *)
  tl_rules : int;  (** live rules, start included *)
  tl_symbols : int;  (** symbols across all live right-hand sides *)
  tl_rules_created : int;  (** rules ever created (start excluded) *)
  tl_rules_inlined : int;  (** rules removed by the utility invariant *)
  tl_digram_hits : int;  (** repeated-digram detections *)
  tl_digram_misses : int;  (** first-seen digrams indexed *)
}

val telemetry : t -> telemetry

(** Process-global inference counters, bumped at the same sites as the
    per-grammar ones but monotone for the life of the process and never
    marshalled. Consumers ([Wet_qprof]) bracket a window of work with
    two {!global_telemetry} snapshots and look only at the
    {!global_delta}, so deltas of disjoint windows sum exactly to the
    delta of their union. *)
type global = {
  gs_input : int;  (** terminals appended, all grammars *)
  gs_digram_hits : int;
  gs_digram_misses : int;
  gs_rules_created : int;
  gs_rules_inlined : int;
}

val global_zero : global

(** Current value of the process-global counters. *)
val global_telemetry : unit -> global

(** Field-wise [after - before]. *)
val global_delta : before:global -> after:global -> global

(** Field-wise sum (for aggregating deltas). *)
val global_add : global -> global -> global

(** The non-start rules as [(expansion, static uses)] pairs: the terminal
    sequence each rule derives and how many times it is referenced in the
    grammar. The repeated substrings a grammar discovers — on an address
    trace these are Chilimbi-style {e hot data streams}. *)
val rule_stats : t -> (int array * int) list
