(* A direct port of the canonical Sequitur implementation: doubly linked
   symbol lists with guard nodes, a digram index, and the two invariants
   (digram uniqueness, rule utility) restored after every append. *)

type sym = {
  mutable term : int;  (* terminal payload; meaningless for nonterminals *)
  mutable nt : rule option;  (* Some r = nonterminal referencing r *)
  mutable guard : rule option;  (* Some r = guard node of r *)
  mutable prev : sym;
  mutable next : sym;
}

and rule = {
  id : int;
  mutable g : sym;  (* guard; g.next = first, g.prev = last *)
  mutable uses : int;
  mutable dead : bool;
}

type t = {
  start : rule;
  mutable rules : rule list;  (* all ever created; dead ones flagged *)
  index : (int * int * int * int, sym) Hashtbl.t;
  mutable next_id : int;
  (* Always-on inference telemetry (never marshalled; grammars are
     serialised through [rule_stats]/[expand], not [t]). *)
  mutable n_input : int;  (* terminals appended *)
  mutable n_digram_hits : int;  (* digram seen before -> match_digram *)
  mutable n_digram_misses : int;  (* fresh digram indexed *)
  mutable n_rules_created : int;  (* via new_rule (start excluded) *)
  mutable n_rules_inlined : int;  (* rule-utility expansions *)
}

(* Process-global inference counters, mirroring the per-grammar ones.
   Monotone for the life of the process and never marshalled: consumers
   (Wet_qprof) only look at snapshot deltas, which bracket exactly the
   grammar work done in a window regardless of which grammars it hit. *)

type global = {
  gs_input : int;
  gs_digram_hits : int;
  gs_digram_misses : int;
  gs_rules_created : int;
  gs_rules_inlined : int;
}

let global_zero =
  {
    gs_input = 0;
    gs_digram_hits = 0;
    gs_digram_misses = 0;
    gs_rules_created = 0;
    gs_rules_inlined = 0;
  }

let g_input = ref 0
let g_digram_hits = ref 0
let g_digram_misses = ref 0
let g_rules_created = ref 0
let g_rules_inlined = ref 0

let global_telemetry () =
  {
    gs_input = !g_input;
    gs_digram_hits = !g_digram_hits;
    gs_digram_misses = !g_digram_misses;
    gs_rules_created = !g_rules_created;
    gs_rules_inlined = !g_rules_inlined;
  }

let global_delta ~before ~after =
  {
    gs_input = after.gs_input - before.gs_input;
    gs_digram_hits = after.gs_digram_hits - before.gs_digram_hits;
    gs_digram_misses = after.gs_digram_misses - before.gs_digram_misses;
    gs_rules_created = after.gs_rules_created - before.gs_rules_created;
    gs_rules_inlined = after.gs_rules_inlined - before.gs_rules_inlined;
  }

let global_add a b =
  {
    gs_input = a.gs_input + b.gs_input;
    gs_digram_hits = a.gs_digram_hits + b.gs_digram_hits;
    gs_digram_misses = a.gs_digram_misses + b.gs_digram_misses;
    gs_rules_created = a.gs_rules_created + b.gs_rules_created;
    gs_rules_inlined = a.gs_rules_inlined + b.gs_rules_inlined;
  }

let rec dummy =
  { term = 0; nt = None; guard = None; prev = dummy; next = dummy }

let new_rule t =
  let g = { term = 0; nt = None; guard = None; prev = dummy; next = dummy } in
  let r = { id = t.next_id; g; uses = 0; dead = false } in
  g.guard <- Some r;
  g.prev <- g;
  g.next <- g;
  t.next_id <- t.next_id + 1;
  t.rules <- r :: t.rules;
  t.n_rules_created <- t.n_rules_created + 1;
  incr g_rules_created;
  r

let is_guard s = s.guard <> None

let key_of s s' =
  let k x = match x.nt with Some r -> (1, r.id) | None -> (0, x.term) in
  let a, b = k s and c, d = k s' in
  (a, b, c, d)

(* Remove the digram starting at [s] from the index, if the index entry
   is this very occurrence. *)
let delete_digram t s =
  if s.next != dummy && (not (is_guard s)) && not (is_guard s.next) then begin
    let key = key_of s s.next in
    match Hashtbl.find_opt t.index key with
    | Some m when m == s -> Hashtbl.remove t.index key
    | Some _ | None -> ()
  end

(* Symbols that stand for the same grammar symbol. *)
let same_sym a b =
  (not (is_guard a))
  && (not (is_guard b))
  &&
  match (a.nt, b.nt) with
  | Some r1, Some r2 -> r1 == r2
  | None, None -> a.term = b.term
  | Some _, None | None, Some _ -> false

let join t left right =
  if left.next != dummy then begin
    delete_digram t left;
    (* The canonical triple handling: unlinking inside a run of equal
       symbols (e.g. [a a a]) displaces digram occurrences the index
       must keep pointing at. *)
    if right.prev != dummy && right.next != dummy
       && same_sym right right.prev && same_sym right right.next
    then Hashtbl.replace t.index (key_of right right.next) right;
    if left.prev != dummy && left.next != dummy
       && same_sym left left.next && same_sym left left.prev
    then Hashtbl.replace t.index (key_of left.prev left) left.prev
  end;
  left.next <- right;
  right.prev <- left

let insert_after t s x =
  join t x s.next;
  join t s x

(* Unlink [s]; maintains use counts of referenced rules. *)
let remove_symbol t s =
  join t s.prev s.next;
  delete_digram t s;
  match s.nt with
  | Some r -> r.uses <- r.uses - 1
  | None -> ()

let mk_term v =
  { term = v; nt = None; guard = None; prev = dummy; next = dummy }

let mk_nt r =
  r.uses <- r.uses + 1;
  { term = 0; nt = Some r; guard = None; prev = dummy; next = dummy }

let copy_sym s = match s.nt with Some r -> mk_nt r | None -> mk_term s.term

(* [check] and [match_digram] are mutually recursive with [expand_rule]
   through substitution. *)
let rec check t s =
  if is_guard s || is_guard s.next then false
  else begin
    let key = key_of s s.next in
    match Hashtbl.find_opt t.index key with
    | None ->
      Hashtbl.replace t.index key s;
      t.n_digram_misses <- t.n_digram_misses + 1;
      incr g_digram_misses;
      false
    | Some m when m == s || m.next == s || m == s.next -> false
    | Some m ->
      t.n_digram_hits <- t.n_digram_hits + 1;
      incr g_digram_hits;
      match_digram t s m;
      true
  end

and match_digram t s m =
  let r =
    if is_guard m.prev && is_guard m.next.next then begin
      (* m's whole rule is exactly this digram: reuse it *)
      let r = match m.prev.guard with Some r -> r | None -> assert false in
      substitute t s r;
      r
    end
    else begin
      let r = new_rule t in
      (* rule body = copies of the digram *)
      insert_after t r.g (copy_sym s);
      insert_after t r.g.next (copy_sym s.next);
      substitute t m r;
      substitute t s r;
      Hashtbl.replace t.index (key_of r.g.next r.g.next.next) r.g.next;
      r
    end
  in
  (* rule utility: inline rules that are now used only once *)
  match r.g.next.nt with
  | Some r' when r'.uses = 1 -> expand_rule t r.g.next
  | Some _ | None -> ()

(* Replace the digram starting at [s] by a reference to [r]. *)
and substitute t s r =
  let q = s.prev in
  remove_symbol t s;
  remove_symbol t q.next;
  insert_after t q (mk_nt r);
  if not (check t q) then ignore (check t q.next)

(* [s] is the sole use of its rule: splice the body in place of [s]. *)
and expand_rule t s =
  match s.nt with
  | None -> assert false
  | Some r ->
    let left = s.prev and right = s.next in
    let first = r.g.next and last = r.g.prev in
    delete_digram t s;
    join t left first;
    join t last right;
    r.dead <- true;
    t.n_rules_inlined <- t.n_rules_inlined + 1;
    incr g_rules_inlined;
    Hashtbl.replace t.index (key_of last right) last;
    ignore (check t left)

let append t v =
  let last = t.start.g.prev in
  insert_after t last (mk_term v);
  t.n_input <- t.n_input + 1;
  incr g_input;
  ignore (check t last)

let build values =
  let g = { term = 0; nt = None; guard = None; prev = dummy; next = dummy } in
  let start = { id = 0; g; uses = 0; dead = false } in
  g.guard <- Some start;
  g.prev <- g;
  g.next <- g;
  let t =
    {
      start;
      rules = [ start ];
      index = Hashtbl.create 1024;
      next_id = 1;
      n_input = 0;
      n_digram_hits = 0;
      n_digram_misses = 0;
      n_rules_created = 0;
      n_rules_inlined = 0;
    }
  in
  Array.iter (append t) values;
  t

let live_rules t = List.filter (fun r -> not r.dead) t.rules

let iter_body r f =
  let rec go s = if not (is_guard s) then (f s; go s.next) in
  go r.g.next

let num_rules t = List.length (live_rules t)

let grammar_symbols t =
  let n = ref 0 in
  List.iter (fun r -> iter_body r (fun _ -> incr n)) (live_rules t);
  !n

let bits t = 32 * (grammar_symbols t + num_rules t)

type telemetry = {
  tl_input : int;
  tl_rules : int;
  tl_symbols : int;
  tl_rules_created : int;
  tl_rules_inlined : int;
  tl_digram_hits : int;
  tl_digram_misses : int;
}

let telemetry t =
  {
    tl_input = t.n_input;
    tl_rules = num_rules t;
    tl_symbols = grammar_symbols t;
    tl_rules_created = t.n_rules_created;
    tl_rules_inlined = t.n_rules_inlined;
    tl_digram_hits = t.n_digram_hits;
    tl_digram_misses = t.n_digram_misses;
  }

let expand t =
  let out = ref [] in
  let rec walk r =
    iter_body r (fun s ->
        match s.nt with
        | Some r' -> walk r'
        | None -> out := s.term :: !out)
  in
  walk t.start;
  Array.of_list (List.rev !out)

let check_invariants t =
  (* Digram uniqueness, modulo overlap: occurrences sharing a symbol
     (e.g. inside a run [a a a]) are exempt, exactly as in the original
     algorithm's overlap rule. *)
  let digrams : (int * int * int * int, (sym * sym) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let dup = ref None in
  List.iter
    (fun r ->
      let prev = ref None in
      iter_body r (fun s ->
          (match !prev with
           | Some p ->
             let key = key_of p s in
             let occs =
               match Hashtbl.find_opt digrams key with
               | Some l -> l
               | None ->
                 let l = ref [] in
                 Hashtbl.replace digrams key l;
                 l
             in
             if
               List.exists
                 (fun (a, b) -> not (a == p || a == s || b == p || b == s))
                 !occs
             then
               dup :=
                 Some (Printf.sprintf "duplicate digram in rule %d" r.id);
             occs := (p, s) :: !occs
           | None -> ());
          prev := Some s))
    (live_rules t);
  match !dup with
  | Some m -> Error m
  | None ->
    let uses = Hashtbl.create 64 in
    List.iter
      (fun r ->
        iter_body r (fun s ->
            match s.nt with
            | Some r' ->
              Hashtbl.replace uses r'.id
                (1 + Option.value (Hashtbl.find_opt uses r'.id) ~default:0)
            | None -> ()))
      (live_rules t);
    let bad = ref None in
    List.iter
      (fun r ->
        if r.id <> t.start.id then begin
          let u = Option.value (Hashtbl.find_opt uses r.id) ~default:0 in
          if u < 2 then
            bad := Some (Printf.sprintf "rule %d used %d time(s)" r.id u)
        end)
      (live_rules t);
    (match !bad with Some m -> Error m | None -> Ok ())

let rule_stats t =
  let rec expansion r acc =
    let out = ref acc in
    iter_body r (fun s ->
        match s.nt with
        | Some r' -> out := expansion r' !out
        | None -> out := s.term :: !out);
    !out
  in
  List.filter_map
    (fun r ->
      if r.id = t.start.id then None
      else Some (Array.of_list (List.rev (expansion r [])), r.uses))
    (live_rules t)
