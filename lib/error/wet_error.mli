(** Structured pipeline errors.

    Every dynamic failure of the interpret/build/pack pipeline raises one
    {!Error} carrying the {!stage} that failed and a human message — the
    pipeline-side mirror of [Store.Corrupt] on the container side. The
    CLI formats these uniformly ([error: runtime error: …]) instead of
    pattern-matching a zoo of [Failure] strings, and tests can assert on
    the stage without parsing messages. *)

type stage =
  | Interp  (** dynamic execution error (bad input, budget, memory) *)
  | Build  (** tier-1 sink/splicer misuse or internal inconsistency *)
  | Pack  (** tier-2 packing misuse *)
  | Obs  (** observability-layer misuse (registry, merge, export) *)
  | Journal  (** checkpoint-journal format or recovery failure *)
  | Query  (** read-side misuse: bad timestamps/ports, sessions on
               damage (the [Wet.Session] / [Query] surface) *)

type t = { stage : stage; msg : string }

exception Error of t

(** [stage_name Interp] is ["runtime error"] — the historical prefix the
    CLI printed for interpreter failures — and ["build error"] /
    ["pack error"] / ["obs error"] for the other stages. *)
val stage_name : stage -> string

(** ["<stage_name>: <msg>"]. Also what [Printexc.to_string] shows; the
    printer is registered at module init. *)
val message : t -> string

(** [fail stage fmt …] raises {!Error} with a formatted message. *)
val fail : stage -> ('a, unit, string, 'b) format4 -> 'a
