type stage = Interp | Build | Pack | Obs | Journal | Query

type t = { stage : stage; msg : string }

exception Error of t

let stage_name = function
  | Interp -> "runtime error"
  | Build -> "build error"
  | Pack -> "pack error"
  | Obs -> "obs error"
  | Journal -> "journal error"
  | Query -> "query error"

let message e = Printf.sprintf "%s: %s" (stage_name e.stage) e.msg

let fail stage fmt =
  Printf.ksprintf (fun msg -> raise (Error { stage; msg })) fmt

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Wet_error.Error (%s)" (message e))
    | _ -> None)
