module Cursor = Wet_bistream.Stream.Cursor
module Ex = Wet_watch.Explain
module S = Wet.Session

(* Slice latency histograms (log-scale nanoseconds). *)
let h_backward = Wet_obs.Metrics.histogram "slice.backward_ns"

let h_forward = Wet_obs.Metrics.histogram "slice.forward_ns"

let h_chop = Wet_obs.Metrics.histogram "slice.chop_ns"

(* Placeholders for salvaged-away sections are empty ([[||]] dep slots,
   empty out-edge lists), which a walk would silently treat as "no
   dependences" — a wrong slice, not an error. Check damage up front. *)
let need (t : Wet.t) sec =
  if Wet.damaged t sec then raise (Wet.Missing_stream sec)

type result = {
  instances : int;
  copies : int;
  stmts : int;
  truncated : bool;
}

let walk ~max_instances ~f (t : Wet.t) c0 i0 ~expand =
  let visited = Hashtbl.create 1024 in
  let copies = Hashtbl.create 256 in
  let stmts = Hashtbl.create 256 in
  let work = ref [ (c0, i0) ] in
  let count = ref 0 in
  let truncated = ref false in
  let push c i =
    if not (Hashtbl.mem visited (c, i)) then begin
      Hashtbl.replace visited (c, i) ();
      work := (c, i) :: !work
    end
  in
  Hashtbl.replace visited (c0, i0) ();
  let continue_ = ref true in
  while !continue_ do
    match !work with
    | [] -> continue_ := false
    | (c, i) :: rest ->
      work := rest;
      incr count;
      (match f with Some f -> f c i | None -> ());
      Hashtbl.replace copies c ();
      Hashtbl.replace stmts t.Wet.copy_stmt.(c) ();
      (match max_instances with
       | Some m when !count >= m ->
         truncated := true;
         continue_ := false
       | Some _ | None -> expand c i push)
  done;
  {
    instances = !count;
    copies = Hashtbl.length copies;
    stmts = Hashtbl.length stmts;
    truncated = !truncated;
  }

module Session = struct
  let backward ?max_instances ?f s c0 i0 =
    Wet_obs.Metrics.time h_backward @@ fun () ->
    let t = S.wet s in
    need t "labels.deps";
    Ex.query ~recorder:(S.recorder s) "slice.backward";
    let expand c i push =
      let nslots = Array.length t.Wet.copy_deps.(c) in
      for slot = 0 to nslots - 1 do
        match S.resolve_dep s c i slot with
        | Some (pc, pi) -> push pc pi
        | None -> ()
      done;
      match S.resolve_cd s c i with
      | Some (pc, pi) -> push pc pi
      | None -> ()
    in
    walk ~max_instances ~f t c0 i0 ~expand

  let forward ?max_instances ?f s c0 i0 =
    Wet_obs.Metrics.time h_forward @@ fun () ->
    let t = S.wet s in
    need t "index.out";
    let recorder = S.recorder s and tally = S.tally s in
    Ex.query ~recorder "slice.forward";
    let expand c i push =
      List.iter (fun cc -> push cc i) t.Wet.copy_local_out.(c);
      List.iter
        (fun (e : Wet.edge) ->
          (* producer-instance streams are not sorted, so scan them *)
          let l = e.Wet.e_labels.Wet.l_id in
          let dst, src = S.label_cursors s e.Wet.e_labels in
          if Ex.recording recorder then
            Ex.touch ~recorder (Ex.Label_src l) Ex.Seek (Cursor.pos src);
          Cursor.seek ~tally src 0;
          for j = 0 to e.Wet.e_labels.Wet.l_len - 1 do
            if Ex.recording recorder then
              Ex.touch ~recorder (Ex.Label_src l) Ex.Fwd 1;
            if Cursor.step_forward ~tally src = i then begin
              if Ex.recording recorder then
                Ex.touch ~recorder (Ex.Label_dst l) Ex.Seek
                  (max 1 (abs (j - Cursor.pos dst)));
              push e.Wet.e_dst (Cursor.read_at ~tally dst j)
            end
          done)
        t.Wet.copy_remote_out.(c)
    in
    walk ~max_instances ~f t c0 i0 ~expand

  let chop ?max_instances ?f s ~source ~sink =
    Wet_obs.Metrics.time h_chop @@ fun () ->
    let t = S.wet s in
    Ex.query ~recorder:(S.recorder s) "slice.chop";
    let sc, si = source and kc, ki = sink in
    let fwd = Hashtbl.create 256 in
    ignore
      (forward ?max_instances s sc si ~f:(fun c i ->
           Hashtbl.replace fwd (c, i) ()));
    let count = ref 0 in
    let copies = Hashtbl.create 64 in
    let stmts = Hashtbl.create 64 in
    let back =
      backward ?max_instances s kc ki ~f:(fun c i ->
          if Hashtbl.mem fwd (c, i) then begin
            incr count;
            (match f with Some f -> f c i | None -> ());
            Hashtbl.replace copies c ();
            Hashtbl.replace stmts t.Wet.copy_stmt.(c) ()
          end)
    in
    {
      instances = !count;
      copies = Hashtbl.length copies;
      stmts = Hashtbl.length stmts;
      truncated = back.truncated;
    }
end

(* Deprecated implicit-session layer. *)

let backward ?max_instances ?f t c0 i0 =
  Session.backward ?max_instances ?f (Wet.default_session t) c0 i0

let forward ?max_instances ?f t c0 i0 =
  Session.forward ?max_instances ?f (Wet.default_session t) c0 i0

let chop ?max_instances ?f t ~source ~sink =
  Session.chop ?max_instances ?f (Wet.default_session t) ~source ~sink
