(** Saving WETs to disk and loading them back.

    The paper's premise is a tool for the {e collection and maintenance}
    of whole execution traces; persistence makes the collected WETs
    reusable across analysis sessions. The on-disk form is the sectioned,
    checksummed {!Container} format: every logical payload carries its
    own CRC-32, so corruption is detected before unmarshalling and
    attributed to the section it hit.

    Saves are atomic (temp file in the destination directory, fsync,
    rename): an interrupted save never damages an existing file. Both
    {!save} and {!load} {!Wet.rewind} the WET, so the bytes written are
    a deterministic function of the trace regardless of prior query
    activity, and a loaded WET always starts with every cursor at the
    left end. *)

(** Raised by {!load} on a damaged or alien file; [fault] says exactly
    what is wrong and where. *)
exception Corrupt of { path : string; fault : Container.fault }

(** ["<path>: section 'labels.values' corrupt (crc mismatch at offset
    N, ...)"] — the rendering used by [wet_cli]. *)
val corrupt_message : path:string -> Container.fault -> string

(** [save wet path] writes the WET (either tier) atomically. Sections
    named in [wet.damage] (from a prior salvage load) are omitted and
    recorded in the container's metadata. *)
val save : Wet.t -> string -> unit

(** [load path] reads a WET saved by {!save}. Strict by default: any
    checksum or structural fault raises {!Corrupt}. With
    [~salvage:true], intact sections are loaded, damaged salvageable
    sections become placeholders recorded in [Wet.t.damage], and only
    header-level or required-section faults raise. I/O failures
    ([Sys_error]) propagate as themselves; no raw [End_of_file] or
    [Failure] ever escapes.
    @raise Corrupt on a damaged, truncated, legacy-version, or non-WET
    file. *)
val load : ?salvage:bool -> string -> Wet.t

(** Test hook for torn-write simulation: when [Some n], {!save} raises
    {!Crash_injected} after writing [n] bytes of the temp file, leaving
    the temp file behind and the destination untouched. Reset to [None]
    by {!save} on entry to the crash path. *)
val crash_after : int option ref

exception Crash_injected

(** [orphan_temps path] lists the [.<basename>.*.tmp] staging files a
    crashed {!save} of [path] may have stranded in [path]'s directory,
    sorted, as full paths. They are harmless to {!load} but worth
    sweeping ([wet fsck] reports them; [--gc] removes them). An
    unreadable directory yields []. *)
val orphan_temps : string -> string list

(** [remove_orphans path] deletes {!orphan_temps}[ path] (ignoring
    files that vanish concurrently) and returns what it targeted. *)
val remove_orphans : string -> string list
