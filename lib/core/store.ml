(* Persistence via the sectioned {!Container} format. Two properties
   are load-bearing for the robustness story:

   - Atomicity: the container bytes are staged in a temp file next to
     the destination, fsynced, then renamed over it. A crash mid-save
     (simulated by [crash_after]) leaves the previous file intact.

   - Determinism: cursors are part of stream state, so [save] first
     {!Wet.rewind}s the WET; tier-2 bidirectional streams restore their
     exact construction-time tables when parked at the left end, making
     the written bytes independent of prior query activity. [load]
     rewinds too, so a loaded WET is always canonical. *)

exception Corrupt of { path : string; fault : Container.fault }

let () =
  Printexc.register_printer (function
    | Corrupt { path; fault } ->
      Some
        (Printf.sprintf "Store.Corrupt (%s: %s)" path
           (Container.fault_message fault))
    | _ -> None)

let corrupt_message ~path fault =
  Printf.sprintf "%s: %s" path (Container.fault_message fault)

let c_bytes_written = Wet_obs.Metrics.counter "store.bytes_written"

let c_bytes_read = Wet_obs.Metrics.counter "store.bytes_read"

let c_sections_ok = Wet_obs.Metrics.counter "store.sections_ok"

let c_sections_corrupt = Wet_obs.Metrics.counter "store.sections_corrupt"

let c_salvaged_loads = Wet_obs.Metrics.counter "store.salvaged_loads"

exception Crash_injected

let crash_after : int option ref = ref None

(* Write [data] to [fd], raising {!Crash_injected} after [!crash_after]
   bytes when the hook is armed. The partial prefix really reaches the
   file first, so the temp file left behind looks like a torn write. *)
let write_all fd data =
  let len = String.length data in
  let bytes = Bytes.unsafe_of_string data in
  let limit =
    match !crash_after with
    | Some n when n < len ->
      crash_after := None;
      Some n
    | _ -> None
  in
  let upto = match limit with Some n -> n | None -> len in
  let pos = ref 0 in
  while !pos < upto do
    pos := !pos + Unix.write fd bytes !pos (upto - !pos)
  done;
  if limit <> None then raise Crash_injected

let save (w : Wet.t) path =
  Wet_obs.Span.with_ "store.save"
    ~attrs:[ ("path", Wet_obs.Span.Str path) ]
    (fun () ->
      Wet.rewind w;
      let data = Container.encode w in
      let dir = Filename.dirname path in
      let tmp =
        Filename.temp_file ~temp_dir:dir
          ("." ^ Filename.basename path ^ ".")
          ".tmp"
      in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
      (try
         write_all fd data;
         Unix.fsync fd;
         Unix.close fd
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      Unix.rename tmp path;
      let bytes = String.length data in
      Wet_obs.Metrics.add c_bytes_written bytes;
      Wet_obs.Span.set_attr "bytes" (Wet_obs.Span.Int bytes))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A crash between temp-file creation and the rename strands a
   [.<basename>.<rand>.tmp] next to the destination. They are inert —
   [load] never looks at them — but they accumulate, so [fsck] sweeps
   for them. Matching is deliberately exact about the frame
   ("." prefix, basename, "." separator, ".tmp" suffix) to avoid
   claiming unrelated dotfiles. *)
let orphan_temps path =
  let dir = Filename.dirname path in
  let prefix = "." ^ Filename.basename path ^ "." in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list entries
  |> List.filter (fun name ->
         String.length name > String.length prefix + 4
         && String.sub name 0 (String.length prefix) = prefix
         && Filename.check_suffix name ".tmp")
  |> List.sort compare
  |> List.map (fun name -> Filename.concat dir name)

let remove_orphans path =
  let orphans = orphan_temps path in
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    orphans;
  orphans

let load ?(salvage = false) path =
  Wet_obs.Span.with_ "store.load"
    ~attrs:[ ("path", Wet_obs.Span.Str path) ]
    (fun () ->
      let data = read_file path in
      Wet_obs.Metrics.add c_bytes_read (String.length data);
      Wet_obs.Span.set_attr "bytes"
        (Wet_obs.Span.Int (String.length data));
      match Container.decode ~salvage data with
      | Error fault -> raise (Corrupt { path; fault })
      | Ok (w, health) ->
        List.iter
          (fun (s : Container.section_status) ->
            Wet_obs.Metrics.incr
              (if s.Container.sec_fault = None then c_sections_ok
               else c_sections_corrupt))
          health.Container.hl_sections;
        if w.Wet.damage <> [] then Wet_obs.Metrics.incr c_salvaged_loads;
        Wet.rewind w;
        w)
