(* Versioned container around the runtime representation. Everything in
   a [Wet.t] is plain data (arrays, bytes, records), so the OCaml
   marshaller round-trips it exactly; [Closures] is not passed, keeping
   the format closed under data. Cursor positions are part of the state
   and therefore of the file; [Query.park] resets them after load if a
   caller wants a canonical starting point. *)

let magic = "WETOCaml"

let version = 1

let c_bytes_written = Wet_obs.Metrics.counter "store.bytes_written"

let c_bytes_read = Wet_obs.Metrics.counter "store.bytes_read"

let save (w : Wet.t) path =
  Wet_obs.Span.with_ "store.save"
    ~attrs:[ ("path", Wet_obs.Span.Str path) ]
    (fun () ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc magic;
          output_binary_int oc version;
          Marshal.to_channel oc w [];
          let bytes = pos_out oc in
          Wet_obs.Metrics.add c_bytes_written bytes;
          Wet_obs.Span.set_attr "bytes" (Wet_obs.Span.Int bytes)))

let load path =
  Wet_obs.Span.with_ "store.load"
    ~attrs:[ ("path", Wet_obs.Span.Str path) ]
    (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let bytes = in_channel_length ic in
          Wet_obs.Metrics.add c_bytes_read bytes;
          Wet_obs.Span.set_attr "bytes" (Wet_obs.Span.Int bytes);
          let tag =
            try really_input_string ic (String.length magic)
            with End_of_file -> ""
          in
          if not (String.equal tag magic) then
            invalid_arg (path ^ ": not a WET container");
          let v = input_binary_int ic in
          if v <> version then
            invalid_arg
              (Printf.sprintf "%s: WET container version %d, expected %d" path
                 v version);
          (Marshal.from_channel ic : Wet.t)))
