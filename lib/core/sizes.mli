(** Size accounting for the paper's Tables 1–3 and Figure 8.

    "Original" sizes follow the paper's uncompressed model: a 4-byte
    timestamp per {e statement} execution (each statement instance is
    labeled [<ts, val>] in §2; Table 2's arithmetic is ~4 bytes of
    timestamp per executed statement), a 4-byte value per def-port
    statement execution, and an 8-byte timestamp pair per dynamic
    dependence (data, per operand; control, per statement). "Current" sizes measure
    the WET as it stands — tier-1 when label streams are raw, tier-2
    after {!Builder.pack} — using the analytic bit counts of
    {!Wet_bistream.Stream.bits}, with shared label sequences counted
    once. *)

type breakdown = {
  ts_bytes : float;  (** node timestamp labels *)
  vals_bytes : float;  (** node value labels (UVals + patterns) *)
  edge_bytes : float;  (** dependence edge labels *)
  total_bytes : float;
}

(** Uncompressed WET size (paper's "Orig."). *)
val original : Wet.t -> breakdown

(** Size of the representation as currently stored. Derived from
    {!detail}, so the two always agree to the bit. *)
val current : Wet.t -> breakdown

(** Per-stream-class accounting behind {!current} — the paper-style
    per-stream view that `wet stats` prints. *)
type stream_class = {
  sc_kind : string;
      (** ["ts"], ["uvals"], ["pattern"], ["label.src"] or ["label.dst"] *)
  sc_streams : int;  (** streams of this class (labels deduped by id) *)
  sc_values : int;  (** values across those streams *)
  sc_bits : int;  (** analytic stored bits ({!Wet_bistream.Stream.bits}) *)
  sc_raw_bits : int;  (** 32 bits per value, the tier-1 cost *)
  sc_lookups : int;  (** predictor lookups (0 for raw streams) *)
  sc_hits : int;  (** predictor hits *)
  sc_methods : (string * int) list;
      (** method name -> stream count, sorted by name *)
}

type detail = {
  d_classes : stream_class list;  (** fixed order: the five kinds above *)
  d_total_bits : int;  (** sum of [sc_bits]; [= 8 * current.total_bytes] *)
}

val detail : Wet.t -> detail

(** [mb b] converts bytes to the paper's megabyte unit. *)
val mb : float -> float
