(** Profile-subset queries over a (compressed) WET (paper §2 and §5.2).

    All queries work by moving stream cursors; none of them decompress a
    stream wholesale. On a tier-1 WET the streams are raw arrays, on a
    tier-2 WET they are bidirectional compressed streams — the query code
    is identical, which is exactly the property the paper's two-tier
    design is after.

    The API has three layers:

    - {!Session}: the primary implementations. Each takes a
      {!Wet.Session.t} — one per concurrent reader over a shared
      container — and moves only that session's cursors. Any
      interleaving of N sessions is byte-identical to the serial path.
    - Structure lookups and cost estimation ({!copies_matching},
      {!estimate}): read only the immutable container, no session
      needed.
    - The deprecated wet-taking layer at the bottom: thin wrappers over
      {!Wet.default_session}, kept so single-threaded callers compile
      unchanged. Not safe for concurrent use.

    Within a layer, the callback extractions ([control_flow],
    [load_values], [addresses], …) push every instance into an effectful
    [f] and return only a count, which keeps the extraction loops
    allocation-free; the fold wrappers ([fold_control_flow], …) thread
    an accumulator through the same traversals. *)

type direction = Forward | Backward

(** {1 Session queries} *)

module Session : sig
  (** [park s dir] parks [s]'s node timestamp cursors at the start
      (before a forward control-flow extraction) or at the end (before
      a backward one). A fresh session is already parked at the
      start. *)
  val park : Wet.session -> direction -> unit

  (** [control_flow s dir ~f] regenerates the complete dynamic
      control-flow trace by following dynamic node successors and
      timestamp sequences (paper: "Control flow path"). Calls
      [f func block] for every block execution, in execution order
      ([Forward]) or reverse ([Backward]). Returns the number of block
      executions visited.

      The session's timestamp cursors must be parked at the matching
      end; the opposite end is where they finish, so a forward pass
      followed by a backward pass needs no re-parking. Raises a
      [Wet_error] [Query] error if the cursors are mispositioned. *)
  val control_flow : Wet.session -> direction -> f:(int -> int -> unit) -> int

  (** [values_of_copy s c ~f] iterates the full value sequence of copy
      [c] (instances in order). Raises a [Wet_error] [Query] error if
      [c] has no def. *)
  val values_of_copy : Wet.session -> Wet.copy_id -> f:(int -> unit) -> unit

  (** Per-instruction load value trace (paper Table 7): iterates every
      [Load] copy's value sequence; [f copy value] per instance.
      Returns the total number of values extracted. *)
  val load_values : Wet.session -> f:(Wet.copy_id -> int -> unit) -> int

  (** Per-instruction load/store address trace (paper Table 8): for
      every memory-access copy, resolves the address operand's producer
      and reconstructs its value for each instance. Returns the total
      number of addresses extracted. *)
  val addresses : Wet.session -> f:(Wet.copy_id -> int -> unit) -> int

  (** [locate_time s ts] finds the node execution holding global
      timestamp [ts]: [(node id, execution index)]. [None] if [ts] is
      outside [\[1, path_execs\]]. Timestamps are unique, so at most
      one node matches. *)
  val locate_time : Wet.session -> int -> (Wet.node_id * int) option

  (** [control_flow_from s ~start_ts ~steps ~f] regenerates the partial
      control-flow trace beginning at the node execution with timestamp
      [start_ts] and following [steps] further path executions (fewer
      at the end of the trace) — the paper's "generate part of the
      program path starting at any execution point". Returns the number
      of block executions emitted. Uses and leaves the session's
      timestamp cursors wherever the walk needs them. *)
  val control_flow_from :
    Wet.session -> start_ts:int -> steps:int -> f:(int -> int -> unit) -> int

  (** Fold variants of the extractions above, threading an
      accumulator. *)

  val fold_control_flow :
    Wet.session -> direction -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

  val fold_loads :
    Wet.session -> init:'a -> f:('a -> Wet.copy_id -> int -> 'a) -> 'a

  val fold_addresses :
    Wet.session -> init:'a -> f:('a -> Wet.copy_id -> int -> 'a) -> 'a
end

(** {1 Structure lookups and cost estimation}

    These read only the immutable container — safe from any thread,
    no session involved. *)

(** All copies whose statement satisfies the predicate. *)
val copies_matching : Wet.t -> (Wet_ir.Instr.t -> bool) -> Wet.copy_id list

(** Plan-time step prediction for one Explain stream class. *)
type class_estimate = {
  est_kind : string;
      (** Explain stream class: ["ts"], ["uvals"], ["pattern"],
          ["label.src"], ["label.dst"] *)
  est_steps : int;  (** predicted cursor steps (fwd + bwd + seek dist) *)
  est_exact : bool;  (** the model is exact, not a bound *)
}

(** [estimate t shape] predicts, per stream class, how many cursor steps
    the query shape [shape] (a [Wet_qprof] fingerprint such as
    ["trace/cf"] or ["slice/backward"]) will pay on [t] — the estimated
    side of the CLI's [--analyze] table. ["trace/cf"] is exact (one
    timestamp revealed per path execution, peeks free); the value,
    address, [at] and slice shapes are per-instance approximations.
    Unknown shapes return [[]]. *)
val estimate : Wet.t -> string -> class_estimate list

(** {1 Deprecated implicit-session layer}

    Wrappers over {!Wet.default_session} — single-threaded use only. *)

val park : Wet.t -> direction -> unit
[@@deprecated "use Query.Session.park"]

val control_flow : Wet.t -> direction -> f:(int -> int -> unit) -> int
[@@deprecated "use Query.Session.control_flow"]

val values_of_copy : Wet.t -> Wet.copy_id -> f:(int -> unit) -> unit
[@@deprecated "use Query.Session.values_of_copy"]

val load_values : Wet.t -> f:(Wet.copy_id -> int -> unit) -> int
[@@deprecated "use Query.Session.load_values"]

val addresses : Wet.t -> f:(Wet.copy_id -> int -> unit) -> int
[@@deprecated "use Query.Session.addresses"]

val locate_time : Wet.t -> int -> (Wet.node_id * int) option
[@@deprecated "use Query.Session.locate_time"]

val control_flow_from :
  Wet.t -> start_ts:int -> steps:int -> f:(int -> int -> unit) -> int
[@@deprecated "use Query.Session.control_flow_from"]

val fold_control_flow :
  Wet.t -> direction -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
[@@deprecated "use Query.Session.fold_control_flow"]

val fold_loads : Wet.t -> init:'a -> f:('a -> Wet.copy_id -> int -> 'a) -> 'a
[@@deprecated "use Query.Session.fold_loads"]

val fold_addresses :
  Wet.t -> init:'a -> f:('a -> Wet.copy_id -> int -> 'a) -> 'a
[@@deprecated "use Query.Session.fold_addresses"]
