module Stream = Wet_bistream.Stream

type breakdown = {
  ts_bytes : float;
  vals_bytes : float;
  edge_bytes : float;
  total_bytes : float;
}

let make ts vals edges =
  { ts_bytes = ts; vals_bytes = vals; edge_bytes = edges;
    total_bytes = ts +. vals +. edges }

let original (t : Wet.t) =
  let s = t.Wet.stats in
  (* Per the WET definition (paper §2) every statement instance carries a
     timestamp and, if it has a def port, a value; the paper's Table 2
     arithmetic (~4 bytes of ts per executed statement) confirms the
     per-statement accounting. *)
  make
    (4. *. float_of_int s.Wet.stmts_executed)
    (4. *. float_of_int s.Wet.def_execs)
    (8. *. float_of_int (s.Wet.dep_instances + s.Wet.cd_instances))

type stream_class = {
  sc_kind : string;
  sc_streams : int;
  sc_values : int;
  sc_bits : int;
  sc_raw_bits : int;
  sc_lookups : int;
  sc_hits : int;
  sc_methods : (string * int) list;
}

type detail = { d_classes : stream_class list; d_total_bits : int }

(* One accumulator per stream class; [detail] walks every stream in the
   WET exactly once, with shared dependence-label sequences deduplicated
   by [l_id] — the same dedup rule [current] has always used. *)
type acc = {
  kind : string;
  mutable streams : int;
  mutable values : int;
  mutable a_bits : int;
  mutable lookups : int;
  mutable hits : int;
  methods : (string, int ref) Hashtbl.t;
}

let new_acc kind =
  {
    kind;
    streams = 0;
    values = 0;
    a_bits = 0;
    lookups = 0;
    hits = 0;
    methods = Hashtbl.create 8;
  }

let acc_stream a s =
  a.streams <- a.streams + 1;
  a.values <- a.values + Stream.length s;
  a.a_bits <- a.a_bits + Stream.bits s;
  let tl = Stream.telemetry s in
  a.lookups <- a.lookups + tl.Stream.tl_lookups;
  a.hits <- a.hits + tl.Stream.tl_hits;
  let m = Stream.method_name s in
  match Hashtbl.find_opt a.methods m with
  | Some r -> incr r
  | None -> Hashtbl.replace a.methods m (ref 1)

let close_acc a =
  {
    sc_kind = a.kind;
    sc_streams = a.streams;
    sc_values = a.values;
    sc_bits = a.a_bits;
    sc_raw_bits = 32 * a.values;
    sc_lookups = a.lookups;
    sc_hits = a.hits;
    sc_methods =
      Hashtbl.fold (fun m r l -> (m, !r) :: l) a.methods []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let detail (t : Wet.t) =
  let ts = new_acc "ts" in
  let uvals = new_acc "uvals" in
  let pattern = new_acc "pattern" in
  let lsrc = new_acc "label.src" in
  let ldst = new_acc "label.dst" in
  Array.iter
    (fun (n : Wet.node) ->
      acc_stream ts n.Wet.n_ts;
      Array.iter
        (fun (g : Wet.group) ->
          match g.Wet.g_pattern with
          | Some p -> acc_stream pattern p
          | None -> ())
        n.Wet.n_groups)
    t.Wet.nodes;
  Array.iter
    (fun uv -> match uv with Some s -> acc_stream uvals s | None -> ())
    t.Wet.copy_uvals;
  (* Dependence labels, shared sequences counted once. *)
  let seen = Hashtbl.create 1024 in
  let add_labels (l : Wet.labels) =
    if not (Hashtbl.mem seen l.Wet.l_id) then begin
      Hashtbl.replace seen l.Wet.l_id ();
      acc_stream lsrc l.Wet.l_src;
      acc_stream ldst l.Wet.l_dst
    end
  in
  let add_source = function
    | Wet.No_dep | Wet.Local _ -> ()
    | Wet.Remote es -> List.iter (fun e -> add_labels e.Wet.e_labels) es
  in
  Array.iter (Array.iter add_source) t.Wet.copy_deps;
  Array.iter (fun (n : Wet.node) -> Array.iter add_source n.Wet.n_cd) t.Wet.nodes;
  let classes = List.map close_acc [ ts; uvals; pattern; lsrc; ldst ] in
  {
    d_classes = classes;
    d_total_bits = List.fold_left (fun s c -> s + c.sc_bits) 0 classes;
  }

(* Derived from [detail] so the coarse and per-stream views agree to the
   bit by construction. Bit counts stay exact through the float division:
   they are far below 2^53. *)
let current (t : Wet.t) =
  let d = detail t in
  let bits_of kind =
    List.fold_left
      (fun s c -> if c.sc_kind = kind then s + c.sc_bits else s)
      0 d.d_classes
  in
  let bits_to_bytes b = float_of_int b /. 8. in
  make
    (bits_to_bytes (bits_of "ts"))
    (bits_to_bytes (bits_of "uvals" + bits_of "pattern"))
    (bits_to_bytes (bits_of "label.src" + bits_of "label.dst"))

let mb bytes = bytes /. (1024. *. 1024.)
