module Instr = Wet_ir.Instr
module Ex = Wet_watch.Explain
module S = Wet.Session

(* Query latency histograms (log-scale nanoseconds). *)
let h_control_flow = Wet_obs.Metrics.histogram "query.control_flow_ns"

let h_load_values = Wet_obs.Metrics.histogram "query.load_values_ns"

let h_addresses = Wet_obs.Metrics.histogram "query.addresses_ns"

type direction = Forward | Backward

(* Control-flow reconstruction walks the per-node timestamp streams; on
   a salvage load that lost [labels.ts] those are empty placeholders,
   so fail cleanly up front instead of deep inside a cursor step. *)
let need (t : Wet.t) sec =
  if Wet.damaged t sec then raise (Wet.Missing_stream sec)

let emit_blocks f (n : Wet.node) =
  Array.iter (fun b -> f n.Wet.n_func b) n.Wet.n_blocks

let emit_blocks_rev f (n : Wet.node) =
  for i = Array.length n.Wet.n_blocks - 1 downto 0 do
    f n.Wet.n_func n.Wet.n_blocks.(i)
  done

(* Structure lookups: read only the immutable container — no cursor
   moves, so no session required. *)

let copies_matching (t : Wet.t) pred =
  let acc = ref [] in
  for c = Wet.num_copies t - 1 downto 0 do
    if pred (Wet.instr_of_copy t c) then acc := c :: !acc
  done;
  !acc

let instances_matching t pred =
  List.fold_left
    (fun acc c -> acc + (Wet.node_of_copy t c).Wet.n_nexec)
    0
    (copies_matching t pred)

(* ------------------------------------------------------------------ *)
(* Session queries (the primary implementations)                      *)
(* ------------------------------------------------------------------ *)

module Session = struct
  let park s dir =
    let t = S.wet s in
    need t "labels.ts";
    Array.iter
      (fun (n : Wet.node) ->
        match dir with
        | Forward -> S.ts_seek s n 0
        | Backward -> S.ts_seek s n n.Wet.n_nexec)
      t.Wet.nodes

  let control_flow s dir ~f =
    Wet_obs.Metrics.time h_control_flow @@ fun () ->
    let t = S.wet s in
    need t "labels.ts";
    Ex.query ~recorder:(S.recorder s) "query.control_flow";
    let total = t.Wet.stats.Wet.path_execs in
    let blocks = ref 0 in
    if total > 0 then begin
      match dir with
      | Forward ->
        let cur = ref t.Wet.nodes.(t.Wet.first_node) in
        ignore (S.ts_step_forward s !cur);
        emit_blocks f !cur;
        blocks := Array.length !cur.Wet.n_blocks;
        for ts = 2 to total do
          (* exactly one successor holds the next timestamp *)
          let next = ref None in
          Array.iter
            (fun sc ->
              if !next = None then begin
                let n = t.Wet.nodes.(sc) in
                if S.ts_pos s n < n.Wet.n_nexec
                   && S.ts_peek_forward s n = ts
                then next := Some n
              end)
            !cur.Wet.n_succs;
          match !next with
          | None ->
            Wet_error.fail Query
              "control_flow: timestamp chain broken (cursors parked?)"
          | Some n ->
            ignore (S.ts_step_forward s n);
            emit_blocks f n;
            blocks := !blocks + Array.length n.Wet.n_blocks;
            cur := n
        done
      | Backward ->
        let cur = ref t.Wet.nodes.(t.Wet.last_node) in
        ignore (S.ts_step_backward s !cur);
        emit_blocks_rev f !cur;
        blocks := Array.length !cur.Wet.n_blocks;
        for ts = total - 1 downto 1 do
          let next = ref None in
          Array.iter
            (fun pr ->
              if !next = None then begin
                let n = t.Wet.nodes.(pr) in
                if S.ts_pos s n > 0 && S.ts_peek_backward s n = ts then
                  next := Some n
              end)
            !cur.Wet.n_preds;
          match !next with
          | None ->
            Wet_error.fail Query
              "control_flow: timestamp chain broken (cursors parked?)"
          | Some n ->
            ignore (S.ts_step_backward s n);
            emit_blocks_rev f n;
            blocks := !blocks + Array.length n.Wet.n_blocks;
            cur := n
        done
    end;
    !blocks

  let values_of_copy s c ~f =
    let node = Wet.node_of_copy (S.wet s) c in
    for i = 0 to node.Wet.n_nexec - 1 do
      f (S.value_of_copy s c i)
    done

  let locate_time s ts =
    let t = S.wet s in
    need t "labels.ts";
    if ts < 1 || ts > t.Wet.stats.Wet.path_execs then None
    else begin
      Ex.query ~recorder:(S.recorder s) "query.locate_time";
      let found = ref None in
      Array.iter
        (fun (n : Wet.node) ->
          if !found = None then
            match S.ts_find s n ts with
            | Some i -> found := Some (n.Wet.n_id, i)
            | None -> ())
        t.Wet.nodes;
      !found
    end

  let control_flow_from s ~start_ts ~steps ~f =
    match locate_time s start_ts with
    | None ->
      Wet_error.fail Query "control_flow_from: timestamp out of range"
    | Some (nid, i) ->
      let t = S.wet s in
      Ex.query ~recorder:(S.recorder s) "query.control_flow_from";
      let total = t.Wet.stats.Wet.path_execs in
      let blocks = ref 0 in
      let cur = ref t.Wet.nodes.(nid) in
      (* position the start node's cursor just past its matching ts *)
      S.ts_seek s !cur (i + 1);
      emit_blocks f !cur;
      blocks := Array.length !cur.Wet.n_blocks;
      let last = min total (start_ts + steps) in
      for ts = start_ts + 1 to last do
        let next = ref None in
        Array.iter
          (fun sc ->
            if !next = None then begin
              let n = t.Wet.nodes.(sc) in
              (* neighbours may be parked anywhere: locate ts directly *)
              match S.ts_find s n ts with
              | Some j ->
                S.ts_seek s n (j + 1);
                next := Some n
              | None -> ()
            end)
          !cur.Wet.n_succs;
        match !next with
        | None ->
          Wet_error.fail Query "control_flow_from: timestamp chain broken"
        | Some n ->
          emit_blocks f n;
          blocks := !blocks + Array.length n.Wet.n_blocks;
          cur := n
      done;
      !blocks

  let load_values s ~f =
    Wet_obs.Metrics.time h_load_values @@ fun () ->
    let t = S.wet s in
    Ex.query ~recorder:(S.recorder s) "query.load_values";
    let loads =
      copies_matching t (function Instr.Load _ -> true | _ -> false)
    in
    let count = ref 0 in
    List.iter
      (fun c ->
        let node = Wet.node_of_copy t c in
        for i = 0 to node.Wet.n_nexec - 1 do
          f c (S.value_of_copy s c i);
          incr count
        done)
      loads;
    !count

  let addresses s ~f =
    Wet_obs.Metrics.time h_addresses @@ fun () ->
    let t = S.wet s in
    Ex.query ~recorder:(S.recorder s) "query.addresses";
    let mems = copies_matching t Instr.is_memory in
    let count = ref 0 in
    List.iter
      (fun c ->
        let node = Wet.node_of_copy t c in
        for i = 0 to node.Wet.n_nexec - 1 do
          (* The address is the value of the producer of operand slot 0
             (paper: "addresses are simply part of values"). *)
          (match S.resolve_dep s c i 0 with
           | Some (pc, pi) -> f c (S.value_of_copy s pc pi)
           | None -> f c 0);
          incr count
        done)
      mems;
    !count

  let fold_control_flow s dir ~init ~f =
    let acc = ref init in
    ignore (control_flow s dir ~f:(fun func block -> acc := f !acc func block));
    !acc

  let fold_loads s ~init ~f =
    let acc = ref init in
    ignore (load_values s ~f:(fun c v -> acc := f !acc c v));
    !acc

  let fold_addresses s ~init ~f =
    let acc = ref init in
    ignore (addresses s ~f:(fun c a -> acc := f !acc c a));
    !acc
end

(* ------------------------------------------------------------------ *)
(* Cost estimation (EXPLAIN side of EXPLAIN ANALYZE).                 *)
(* ------------------------------------------------------------------ *)

type class_estimate = {
  est_kind : string;  (* Explain stream class: ts/uvals/pattern/label.* *)
  est_steps : int;  (* predicted cursor steps (fwd + bwd + seek dist) *)
  est_exact : bool;  (* model is exact, not a bound *)
}

(* Plan-time step predictions per query shape (the fingerprints the CLI
   stamps on profiled queries). The control-flow walk is exact by
   construction — each path execution reveals exactly one timestamp, and
   peeks are free — so estimated and actual agree to the step on both
   tiers. The value/address extractions depend on pattern-group layout
   and cursor locality, so those are stated as per-instance lower
   bounds; [at] and the slices depend on where the data lands and are
   the loosest. Unknown shapes estimate nothing. *)
let estimate (t : Wet.t) shape =
  let execs = t.Wet.stats.Wet.path_execs in
  match shape with
  | "trace/cf" -> [ { est_kind = "ts"; est_steps = execs; est_exact = true } ]
  | "trace/values" ->
    let insts =
      instances_matching t (function Instr.Load _ -> true | _ -> false)
    in
    [
      { est_kind = "pattern"; est_steps = insts; est_exact = false };
      { est_kind = "uvals"; est_steps = insts; est_exact = false };
    ]
  | "trace/addresses" ->
    let insts = instances_matching t Instr.is_memory in
    [
      { est_kind = "label.dst"; est_steps = insts; est_exact = false };
      { est_kind = "label.src"; est_steps = insts; est_exact = false };
      { est_kind = "pattern"; est_steps = insts; est_exact = false };
      { est_kind = "uvals"; est_steps = insts; est_exact = false };
    ]
  | "at" ->
    (* locate_time probes node ts streams until the timestamp is found;
       the reconstruct then walks forward from there. *)
    [ { est_kind = "ts"; est_steps = execs; est_exact = false } ]
  | "slice/backward" | "slice/forward" | "slice/chop" ->
    let deps = t.Wet.stats.Wet.dep_instances in
    [
      { est_kind = "label.dst"; est_steps = deps; est_exact = false };
      { est_kind = "label.src"; est_steps = deps; est_exact = false };
    ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Deprecated implicit-session layer                                  *)
(* ------------------------------------------------------------------ *)

let park t dir = Session.park (Wet.default_session t) dir

let control_flow t dir ~f = Session.control_flow (Wet.default_session t) dir ~f

let values_of_copy t c ~f = Session.values_of_copy (Wet.default_session t) c ~f

let locate_time t ts = Session.locate_time (Wet.default_session t) ts

let control_flow_from t ~start_ts ~steps ~f =
  Session.control_flow_from (Wet.default_session t) ~start_ts ~steps ~f

let load_values t ~f = Session.load_values (Wet.default_session t) ~f

let addresses t ~f = Session.addresses (Wet.default_session t) ~f

let fold_control_flow t dir ~init ~f =
  Session.fold_control_flow (Wet.default_session t) dir ~init ~f

let fold_loads t ~init ~f = Session.fold_loads (Wet.default_session t) ~init ~f

let fold_addresses t ~init ~f =
  Session.fold_addresses (Wet.default_session t) ~init ~f
