module Stream = Wet_bistream.Stream
module Instr = Wet_ir.Instr
module Ex = Wet_watch.Explain

(* Query latency histograms (log-scale nanoseconds). *)
let h_control_flow = Wet_obs.Metrics.histogram "query.control_flow_ns"

let h_load_values = Wet_obs.Metrics.histogram "query.load_values_ns"

let h_addresses = Wet_obs.Metrics.histogram "query.addresses_ns"

(* Query-explain hooks: one flag read when disarmed. Timestamp cursor
   movements are attributed to the owning node's [Ts] stream; peeks
   (which move no cursor) are not counted. *)
let ex_step (n : Wet.node) dir =
  if !Ex.armed then
    Ex.touch (Ex.Ts n.Wet.n_id) (match dir with `F -> Ex.Fwd | `B -> Ex.Bwd) 1

let ex_seek (n : Wet.node) k =
  if !Ex.armed then
    Ex.touch (Ex.Ts n.Wet.n_id) Ex.Seek (abs (k - Stream.cursor n.Wet.n_ts))

let ex_find (n : Wet.node) v =
  if !Ex.armed then begin
    let st = n.Wet.n_ts in
    let c0 = Stream.cursor st in
    let r = Stream.find_ascending st v in
    let d = Stream.cursor st - c0 in
    if d >= 0 then Ex.touch (Ex.Ts n.Wet.n_id) Ex.Fwd d
    else Ex.touch (Ex.Ts n.Wet.n_id) Ex.Bwd (-d);
    r
  end
  else Stream.find_ascending n.Wet.n_ts v

type direction = Forward | Backward

(* Control-flow reconstruction walks the per-node timestamp streams; on
   a salvage load that lost [labels.ts] those are empty placeholders,
   so fail cleanly up front instead of deep inside a cursor step. *)
let need (t : Wet.t) sec =
  if Wet.damaged t sec then raise (Wet.Missing_stream sec)

let park (t : Wet.t) dir =
  need t "labels.ts";
  Array.iter
    (fun (n : Wet.node) ->
      match dir with
      | Forward ->
        ex_seek n 0;
        Stream.seek n.Wet.n_ts 0
      | Backward ->
        ex_seek n n.Wet.n_nexec;
        Stream.seek n.Wet.n_ts n.Wet.n_nexec)
    t.Wet.nodes

let emit_blocks f (n : Wet.node) =
  Array.iter (fun b -> f n.Wet.n_func b) n.Wet.n_blocks

let emit_blocks_rev f (n : Wet.node) =
  for i = Array.length n.Wet.n_blocks - 1 downto 0 do
    f n.Wet.n_func n.Wet.n_blocks.(i)
  done

let control_flow (t : Wet.t) dir ~f =
  Wet_obs.Metrics.time h_control_flow @@ fun () ->
  need t "labels.ts";
  Ex.query "query.control_flow";
  let total = t.Wet.stats.Wet.path_execs in
  let blocks = ref 0 in
  if total > 0 then begin
    match dir with
    | Forward ->
      let cur = ref t.Wet.nodes.(t.Wet.first_node) in
      ex_step !cur `F;
      ignore (Stream.step_forward !cur.Wet.n_ts);
      emit_blocks f !cur;
      blocks := Array.length !cur.Wet.n_blocks;
      for ts = 2 to total do
        (* exactly one successor holds the next timestamp *)
        let next = ref None in
        Array.iter
          (fun s ->
            if !next = None then begin
              let n = t.Wet.nodes.(s) in
              let st = n.Wet.n_ts in
              if Stream.cursor st < n.Wet.n_nexec
                 && Stream.peek_forward st = ts
              then next := Some n
            end)
          !cur.Wet.n_succs;
        match !next with
        | None ->
          invalid_arg
            "Query.control_flow: timestamp chain broken (cursors parked?)"
        | Some n ->
          ex_step n `F;
          ignore (Stream.step_forward n.Wet.n_ts);
          emit_blocks f n;
          blocks := !blocks + Array.length n.Wet.n_blocks;
          cur := n
      done
    | Backward ->
      let cur = ref t.Wet.nodes.(t.Wet.last_node) in
      ex_step !cur `B;
      ignore (Stream.step_backward !cur.Wet.n_ts);
      emit_blocks_rev f !cur;
      blocks := Array.length !cur.Wet.n_blocks;
      for ts = total - 1 downto 1 do
        let next = ref None in
        Array.iter
          (fun pr ->
            if !next = None then begin
              let n = t.Wet.nodes.(pr) in
              let st = n.Wet.n_ts in
              if Stream.cursor st > 0 && Stream.peek_backward st = ts then
                next := Some n
            end)
          !cur.Wet.n_preds;
        match !next with
        | None ->
          invalid_arg
            "Query.control_flow: timestamp chain broken (cursors parked?)"
        | Some n ->
          ex_step n `B;
          ignore (Stream.step_backward n.Wet.n_ts);
          emit_blocks_rev f n;
          blocks := !blocks + Array.length n.Wet.n_blocks;
          cur := n
      done
  end;
  !blocks

let values_of_copy (t : Wet.t) c ~f =
  let node = Wet.node_of_copy t c in
  for i = 0 to node.Wet.n_nexec - 1 do
    f (Wet.value_of_copy t c i)
  done

let copies_matching (t : Wet.t) pred =
  let acc = ref [] in
  for c = Wet.num_copies t - 1 downto 0 do
    if pred (Wet.instr_of_copy t c) then acc := c :: !acc
  done;
  !acc

let locate_time (t : Wet.t) ts =
  need t "labels.ts";
  if ts < 1 || ts > t.Wet.stats.Wet.path_execs then None
  else begin
    Ex.query "query.locate_time";
    let found = ref None in
    Array.iter
      (fun (n : Wet.node) ->
        if !found = None then
          match ex_find n ts with
          | Some i -> found := Some (n.Wet.n_id, i)
          | None -> ())
      t.Wet.nodes;
    !found
  end

let control_flow_from (t : Wet.t) ~start_ts ~steps ~f =
  match locate_time t start_ts with
  | None -> invalid_arg "Query.control_flow_from: timestamp out of range"
  | Some (nid, i) ->
    Ex.query "query.control_flow_from";
    let total = t.Wet.stats.Wet.path_execs in
    let blocks = ref 0 in
    let cur = ref t.Wet.nodes.(nid) in
    (* position the start node's cursor just past its matching ts *)
    ex_seek !cur (i + 1);
    Stream.seek !cur.Wet.n_ts (i + 1);
    emit_blocks f !cur;
    blocks := Array.length !cur.Wet.n_blocks;
    let last = min total (start_ts + steps) in
    for ts = start_ts + 1 to last do
      let next = ref None in
      Array.iter
        (fun s ->
          if !next = None then begin
            let n = t.Wet.nodes.(s) in
            let st = n.Wet.n_ts in
            (* neighbours may be parked anywhere: locate ts directly *)
            match ex_find n ts with
            | Some j ->
              ex_seek n (j + 1);
              Stream.seek st (j + 1);
              next := Some n
            | None -> ()
          end)
        !cur.Wet.n_succs;
      match !next with
      | None -> invalid_arg "Query.control_flow_from: timestamp chain broken"
      | Some n ->
        emit_blocks f n;
        blocks := !blocks + Array.length n.Wet.n_blocks;
        cur := n
    done;
    !blocks

let load_values (t : Wet.t) ~f =
  Wet_obs.Metrics.time h_load_values @@ fun () ->
  Ex.query "query.load_values";
  let loads =
    copies_matching t (function Instr.Load _ -> true | _ -> false)
  in
  let count = ref 0 in
  List.iter
    (fun c ->
      let node = Wet.node_of_copy t c in
      for i = 0 to node.Wet.n_nexec - 1 do
        f c (Wet.value_of_copy t c i);
        incr count
      done)
    loads;
  !count

let addresses (t : Wet.t) ~f =
  Wet_obs.Metrics.time h_addresses @@ fun () ->
  Ex.query "query.addresses";
  let mems = copies_matching t Instr.is_memory in
  let count = ref 0 in
  List.iter
    (fun c ->
      let node = Wet.node_of_copy t c in
      for i = 0 to node.Wet.n_nexec - 1 do
        (* The address is the value of the producer of operand slot 0
           (paper: "addresses are simply part of values"). *)
        (match Wet.resolve_dep t c i 0 with
         | Some (pc, pi) -> f c (Wet.value_of_copy t pc pi)
         | None -> f c 0);
        incr count
      done)
    mems;
  !count

(* ------------------------------------------------------------------ *)
(* Cost estimation (EXPLAIN side of EXPLAIN ANALYZE).                 *)
(* ------------------------------------------------------------------ *)

type class_estimate = {
  est_kind : string;  (* Explain stream class: ts/uvals/pattern/label.* *)
  est_steps : int;  (* predicted cursor steps (fwd + bwd + seek dist) *)
  est_exact : bool;  (* model is exact, not a bound *)
}

let instances_matching t pred =
  List.fold_left
    (fun acc c -> acc + (Wet.node_of_copy t c).Wet.n_nexec)
    0
    (copies_matching t pred)

(* Plan-time step predictions per query shape (the fingerprints the CLI
   stamps on profiled queries). The control-flow walk is exact by
   construction — each path execution reveals exactly one timestamp, and
   peeks are free — so estimated and actual agree to the step on both
   tiers. The value/address extractions depend on pattern-group layout
   and cursor locality, so those are stated as per-instance lower
   bounds; [at] and the slices depend on where the data lands and are
   the loosest. Unknown shapes estimate nothing. *)
let estimate (t : Wet.t) shape =
  let execs = t.Wet.stats.Wet.path_execs in
  match shape with
  | "trace/cf" -> [ { est_kind = "ts"; est_steps = execs; est_exact = true } ]
  | "trace/values" ->
    let insts =
      instances_matching t (function Instr.Load _ -> true | _ -> false)
    in
    [
      { est_kind = "pattern"; est_steps = insts; est_exact = false };
      { est_kind = "uvals"; est_steps = insts; est_exact = false };
    ]
  | "trace/addresses" ->
    let insts = instances_matching t Instr.is_memory in
    [
      { est_kind = "label.dst"; est_steps = insts; est_exact = false };
      { est_kind = "label.src"; est_steps = insts; est_exact = false };
      { est_kind = "pattern"; est_steps = insts; est_exact = false };
      { est_kind = "uvals"; est_steps = insts; est_exact = false };
    ]
  | "at" ->
    (* locate_time probes node ts streams until the timestamp is found;
       the reconstruct then walks forward from there. *)
    [ { est_kind = "ts"; est_steps = execs; est_exact = false } ]
  | "slice/backward" | "slice/forward" | "slice/chop" ->
    let deps = t.Wet.stats.Wet.dep_instances in
    [
      { est_kind = "label.dst"; est_steps = deps; est_exact = false };
      { est_kind = "label.src"; est_steps = deps; est_exact = false };
    ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Fold wrappers over the callback extractions.                       *)
(* ------------------------------------------------------------------ *)

let fold_control_flow t dir ~init ~f =
  let acc = ref init in
  ignore (control_flow t dir ~f:(fun func block -> acc := f !acc func block));
  !acc

let fold_loads t ~init ~f =
  let acc = ref init in
  ignore (load_values t ~f:(fun c v -> acc := f !acc c v));
  !acc

let fold_addresses t ~init ~f =
  let acc = ref init in
  ignore (addresses t ~f:(fun c a -> acc := f !acc c a));
  !acc
