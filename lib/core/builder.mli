(** WET construction (tier-1) and stream packing (tier-2).

    Tier-1 customized compression runs while replaying the event
    stream:
    {ul
    {- nodes are interned per executed Ball–Larus path, so one timestamp
       is recorded per path execution rather than per block (§3.1);}
    {- value sequences are split into input groups with shared patterns
       and per-copy unique values (§3.2);}
    {- dependence slots whose producer always lies in the same node
       execution become label-free {!Wet.Local} links, and labeled edges
       between the same node pair with identical sequences share one
       label record (§3.3).}}

    The replay is streaming: a {!Sink} consumes interpreter events
    incrementally, buffers at most about one shard of raw events, runs
    the compression eagerly per shard, and splices the shard streams
    into the final {!Wet.t} at {!Sink.finish}. The batch {!build} is a
    thin wrapper that feeds a materialized trace through the same sink,
    so the two paths produce byte-identical containers.

    All label sequences are raw after tier-1; {!pack} rewrites each of
    them as a bidirectionally compressed stream with per-stream method
    selection (§4), leaving the graph structure untouched.

    Failures raise [Wet_error.Error] (stage [Build] or [Pack]). *)

(** A bounded-memory consumer of {!Wet_interp.Interp.event_sink}
    events. Feed it either by passing {!Sink.events} to
    {!Wet_interp.Interp.run_with_sink} (no trace is ever materialized)
    or through the individual feed functions; then {!Sink.finish}.

    Buffering is bounded by [shard_events] plus whatever an unreturned
    call pins: a call's return-value link is patched only when the
    callee returns, so the replay holds back the caller's path
    execution (and everything after it) until then — deep recursion
    temporarily widens the window. Eviction of replayed positions
    needs the interpreter's live-position iterator and therefore only
    happens in sink-fed runs, not when replaying a materialized
    trace. *)
module Sink : sig
  type t

  (** 65536 — the default shard size, in raw trace events. *)
  val default_shard_events : int

  (** [create analysis] makes an empty sink.

      @param shard_events flush automatically after about this many
        buffered events (clamped to at least 1; default
        {!default_shard_events}).
      @param track_peak sample [Gc.stat] live words at shard
        boundaries and expose the maximum via {!peak_live_words};
        off by default because [Gc.stat] walks the heap.
      @param values_from resolve statement values through this function
        (indexed by dynamic position) instead of buffering them — used
        by the batch path, where the trace already holds them.
      @param on_shard_flushed called at the end of every shard flush,
        with the sink quiescent (replay caught up, windows trimmed) —
        the point where {!Checkpoint} snapshots the sink. *)
  val create :
    ?shard_events:int ->
    ?track_peak:bool ->
    ?values_from:(int -> int) ->
    ?on_shard_flushed:(t -> unit) ->
    Wet_cfg.Program_analysis.t ->
    t

  (** [snapshot t] marshals the sink's accumulated state — everything
      replay has learned, none of the runtime plumbing — into a string
      a later process can {!resume_from}. Meaningful at any quiescent
      point; {!Checkpoint} takes it from [on_shard_flushed]. Batch
      sinks (with [values_from]) cannot be snapshotted. *)
  val snapshot : t -> string

  (** The per-kind counts of events this sink has already consumed —
      the point a fast-forwarded re-execution must reach before
      delivering events again ({!Wet_interp.Interp.fast_forward}). *)
  val watermark : t -> Wet_interp.Interp.watermark

  (** [resume_from ~snapshot analysis] reconstructs a sink from a
      {!snapshot}. [analysis] must be derived from the same program the
      snapshot was built from. Runtime options are the caller's again:
      they are configuration, not state.
      @raise Wet_error.Error (stage [Build]) on an undecodable
        snapshot. *)
  val resume_from :
    ?shard_events:int ->
    ?track_peak:bool ->
    ?on_shard_flushed:(t -> unit) ->
    snapshot:string ->
    Wet_cfg.Program_analysis.t ->
    t

  (** The sink's feed functions bundled as an interpreter event sink. *)
  val events : t -> Wet_interp.Interp.event_sink

  (** One element of [Trace.cd_producer]: a block was entered. *)
  val feed_block : t -> int -> unit

  (** One element of [Trace.deps]: the next dependence slot. *)
  val feed_dep : t -> int -> unit

  (** One element of [Trace.values]: a statement completed. *)
  val feed_value : t -> int -> unit

  (** One element of [Trace.paths]: a path execution ended. May flush. *)
  val feed_path : t -> int -> unit

  (** The value/dep just fed belong to a call awaiting its return. *)
  val feed_call : t -> unit

  (** [feed_ret t v producer] patches the innermost pending call. *)
  val feed_ret : t -> int -> int -> unit

  (** Replay and compress everything the buffer allows, then evict
      positions no future event can reference. Called automatically
      every [shard_events] fed events; callable explicitly. *)
  val flush_shard : t -> unit

  (** Drain the buffer, resolve deferred forward references and splice
      the shard streams into the final tier-1 WET. The sink cannot be
      used afterwards. *)
  val finish : t -> Wet.t

  (** Number of shard flushes so far (auto and explicit). *)
  val shard_count : t -> int

  (** Maximum [Gc.stat] live words observed at shard boundaries, 0
      unless [track_peak] was set. *)
  val peak_live_words : t -> int

  (** Depth of the pending-call LIFO (calls fed, not yet returned). *)
  val pending_calls : t -> int

  (** Size of the retained keep-set (positions surviving eviction). *)
  val retained_positions : t -> int
end

(** Build a tier-1 WET from a recorded trace by feeding it through a
    {!Sink} — byte-identical to the streaming path. *)
val build : Wet_interp.Trace.t -> Wet.t

(** Tier-2: compress every label stream of a tier-1 WET. The input WET
    remains usable. @raise Wet_error.Error if already packed. *)
val pack : Wet.t -> Wet.t

(** [run_streaming ~program ~input ()] is the full streaming pipeline:
    interpret [program] directly into a {!Sink} — no [Trace.t] is ever
    allocated, so peak memory is bounded by the shard size plus the
    final WET, not by execution length — and return the tier-1 WET.
    [shard_events] and [track_peak] are passed to {!Sink.create}; the
    remaining optional arguments match {!Wet_interp.Interp.run}. *)
val run_streaming :
  ?shard_events:int ->
  ?track_peak:bool ->
  ?max_stmts:int ->
  ?interprocedural_cd:bool ->
  ?analysis:Wet_cfg.Program_analysis.t ->
  program:Wet_ir.Program.t ->
  input:int array ->
  unit ->
  Wet.t

(** Durable builds: {!run_streaming} with a {!Wet_journal.Journal}
    recording enough at every shard boundary to survive [kill -9].

    {!Checkpoint.build} writes one header record (the post-optimization
    program, the input, and the build configuration — a resumed build
    needs nothing else) and then, via the sink's [on_shard_flushed]
    hook, one checkpoint record per flushed shard: a {!Sink.snapshot}
    plus its {!Sink.watermark}. Every record is CRC'd and fsync'd
    before the build proceeds, so a crash at any byte loses at most the
    work since the last flushed shard.

    {!Checkpoint.resume} reads the longest intact journal prefix,
    truncates any torn tail (never trusting it), restores the last
    checkpoint's snapshot, and re-executes the program deterministically
    with events below the watermark suppressed
    ({!Wet_interp.Interp.fast_forward}). The result is byte-identical
    to an uninterrupted build — the invariant the kill-campaign tests
    enforce. Recovery keeps checkpointing into the same journal, so a
    second death during recovery is itself recoverable.

    Failures raise [Wet_error.Error] with stage [Journal]. *)
module Checkpoint : sig
  (** Decoded header record. *)
  type header = {
    h_program : Wet_ir.Program.t;
        (** post-optimization: resume never re-optimizes *)
    h_input : int array;
    h_shard_events : int;
    h_checkpoint_every : int;  (** journal every n-th shard flush *)
    h_max_stmts : int option;
    h_interprocedural_cd : bool;
    h_tier2 : bool;
        (** the build was asked for tier-2 packing; recorded so
            [wet build --resume] repacks without being retold *)
    h_label : string;  (** free-form provenance, e.g. the source path *)
  }

  (** Decoded checkpoint record summary (snapshot omitted). *)
  type ckpt = {
    c_snapshot : string;
    c_watermark : Wet_interp.Interp.watermark;
    c_shards : int;
    c_pending_calls : int;
    c_retained : int;
  }

  type resumed = {
    r_wet : Wet.t;  (** tier-1; pack per [r_header.h_tier2] *)
    r_header : header;
    r_replayed_shards : int;
        (** shards fast-forwarded through instead of rebuilt *)
    r_torn_tail : bool;
        (** the journal ended in a torn record that was truncated *)
    r_resume_ms : float;
        (** wall time to re-execute up to the watermark *)
  }

  (** [build ~journal ~program ~input ()] is {!run_streaming} with
      checkpoints journaled to [journal] (created or truncated). The
      returned WET is tier-1; [tier2] is only recorded in the header.
      [on_header_written] runs once the header record is durable — the
      kill campaign arms {!Wet_journal.Journal.kill_after_records} /
      [kill_after_bytes] there, so seeded kill offsets are relative to
      the checkpoint stream and recovery always finds a header. *)
  val build :
    ?shard_events:int ->
    ?checkpoint_every:int ->
    ?track_peak:bool ->
    ?max_stmts:int ->
    ?interprocedural_cd:bool ->
    ?analysis:Wet_cfg.Program_analysis.t ->
    ?tier2:bool ->
    ?label:string ->
    ?on_header_written:(unit -> unit) ->
    journal:string ->
    program:Wet_ir.Program.t ->
    input:int array ->
    unit ->
    Wet.t

  (** [resume ~journal ()] recovers an interrupted {!build} (see the
      module doc) and finishes it, continuing to checkpoint into
      [journal]. Records the [journal.replayed_shards] and
      [journal.resume_ms] metrics.
      @raise Wet_error.Error (stage [Journal]) if the journal is
        unreadable or holds no intact header. *)
  val resume : ?track_peak:bool -> journal:string -> unit -> resumed

  (** [describe journal] reports the header, the latest checkpoint (if
      any) and whether the file ends torn — inspection for [wet fsck]
      and tests, no recovery performed. *)
  val describe :
    string -> (header * ckpt option * bool, string) result
end
