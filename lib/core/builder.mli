(** WET construction (tier-1) and stream packing (tier-2).

    Tier-1 customized compression runs while replaying the event
    stream:
    {ul
    {- nodes are interned per executed Ball–Larus path, so one timestamp
       is recorded per path execution rather than per block (§3.1);}
    {- value sequences are split into input groups with shared patterns
       and per-copy unique values (§3.2);}
    {- dependence slots whose producer always lies in the same node
       execution become label-free {!Wet.Local} links, and labeled edges
       between the same node pair with identical sequences share one
       label record (§3.3).}}

    The replay is streaming: a {!Sink} consumes interpreter events
    incrementally, buffers at most about one shard of raw events, runs
    the compression eagerly per shard, and splices the shard streams
    into the final {!Wet.t} at {!Sink.finish}. The batch {!build} is a
    thin wrapper that feeds a materialized trace through the same sink,
    so the two paths produce byte-identical containers.

    All label sequences are raw after tier-1; {!pack} rewrites each of
    them as a bidirectionally compressed stream with per-stream method
    selection (§4), leaving the graph structure untouched.

    Failures raise [Wet_error.Error] (stage [Build] or [Pack]). *)

(** A bounded-memory consumer of {!Wet_interp.Interp.event_sink}
    events. Feed it either by passing {!Sink.events} to
    {!Wet_interp.Interp.run_with_sink} (no trace is ever materialized)
    or through the individual feed functions; then {!Sink.finish}.

    Buffering is bounded by [shard_events] plus whatever an unreturned
    call pins: a call's return-value link is patched only when the
    callee returns, so the replay holds back the caller's path
    execution (and everything after it) until then — deep recursion
    temporarily widens the window. Eviction of replayed positions
    needs the interpreter's live-position iterator and therefore only
    happens in sink-fed runs, not when replaying a materialized
    trace. *)
module Sink : sig
  type t

  (** 65536 — the default shard size, in raw trace events. *)
  val default_shard_events : int

  (** [create analysis] makes an empty sink.

      @param shard_events flush automatically after about this many
        buffered events (clamped to at least 1; default
        {!default_shard_events}).
      @param track_peak sample [Gc.stat] live words at shard
        boundaries and expose the maximum via {!peak_live_words};
        off by default because [Gc.stat] walks the heap.
      @param values_from resolve statement values through this function
        (indexed by dynamic position) instead of buffering them — used
        by the batch path, where the trace already holds them. *)
  val create :
    ?shard_events:int ->
    ?track_peak:bool ->
    ?values_from:(int -> int) ->
    Wet_cfg.Program_analysis.t ->
    t

  (** The sink's feed functions bundled as an interpreter event sink. *)
  val events : t -> Wet_interp.Interp.event_sink

  (** One element of [Trace.cd_producer]: a block was entered. *)
  val feed_block : t -> int -> unit

  (** One element of [Trace.deps]: the next dependence slot. *)
  val feed_dep : t -> int -> unit

  (** One element of [Trace.values]: a statement completed. *)
  val feed_value : t -> int -> unit

  (** One element of [Trace.paths]: a path execution ended. May flush. *)
  val feed_path : t -> int -> unit

  (** The value/dep just fed belong to a call awaiting its return. *)
  val feed_call : t -> unit

  (** [feed_ret t v producer] patches the innermost pending call. *)
  val feed_ret : t -> int -> int -> unit

  (** Replay and compress everything the buffer allows, then evict
      positions no future event can reference. Called automatically
      every [shard_events] fed events; callable explicitly. *)
  val flush_shard : t -> unit

  (** Drain the buffer, resolve deferred forward references and splice
      the shard streams into the final tier-1 WET. The sink cannot be
      used afterwards. *)
  val finish : t -> Wet.t

  (** Number of shard flushes so far (auto and explicit). *)
  val shard_count : t -> int

  (** Maximum [Gc.stat] live words observed at shard boundaries, 0
      unless [track_peak] was set. *)
  val peak_live_words : t -> int
end

(** Build a tier-1 WET from a recorded trace by feeding it through a
    {!Sink} — byte-identical to the streaming path. *)
val build : Wet_interp.Trace.t -> Wet.t

(** Tier-2: compress every label stream of a tier-1 WET. The input WET
    remains usable. @raise Wet_error.Error if already packed. *)
val pack : Wet.t -> Wet.t

(** [run_streaming ~program ~input ()] is the full streaming pipeline:
    interpret [program] directly into a {!Sink} — no [Trace.t] is ever
    allocated, so peak memory is bounded by the shard size plus the
    final WET, not by execution length — and return the tier-1 WET.
    [shard_events] and [track_peak] are passed to {!Sink.create}; the
    remaining optional arguments match {!Wet_interp.Interp.run}. *)
val run_streaming :
  ?shard_events:int ->
  ?track_peak:bool ->
  ?max_stmts:int ->
  ?interprocedural_cd:bool ->
  ?analysis:Wet_cfg.Program_analysis.t ->
  program:Wet_ir.Program.t ->
  input:int array ->
  unit ->
  Wet.t

(** [of_program p ~input] is [run_streaming ~program:p ~input ()]. *)
val of_program : Wet_ir.Program.t -> input:int array -> Wet.t
[@@deprecated "use run_streaming"]
