module Dyn = Wet_util.Dynarray_int
module Stream = Wet_bistream.Stream
module T = Wet_interp.Trace
module PA = Wet_cfg.Program_analysis
module BL = Wet_cfg.Ball_larus
module Instr = Wet_ir.Instr
module Program = Wet_ir.Program

(* ------------------------------------------------------------------ *)
(* Static structure of a node (one per executed Ball–Larus path).     *)
(* ------------------------------------------------------------------ *)

type source =
  | Src_slot of int * int  (* external operand: (offset, slot) *)
  | Src_input of int  (* an Input statement at this offset *)

type proto_group = {
  pg_sources : source array;
  pg_members : int array;  (* offsets with def ports, ascending *)
  pg_pattern : Dyn.t;
  pg_tuples : (int list, int) Hashtbl.t;
}

type proto = {
  p_id : int;
  p_func : int;
  p_path : int;
  p_blocks : int array;
  p_stmts : int array;  (* static statement ids, path order *)
  p_instrs : Instr.t array;
  p_block_start : int array;
  p_copy_base : int;
  p_slot_count : int array;  (* dyn_use_count per offset *)
  p_slot_base : int array;  (* global slot id of each offset's slot 0 *)
  p_cd_slot : int array;  (* global slot id per block position *)
  p_internal : int array array;
      (* per offset, per register slot: producing offset or -1 *)
  p_groups : proto_group array;
  p_offset_group : int array;  (* group index per offset, -1 for no def *)
  p_ts : Dyn.t;
  p_uvals : Dyn.t array;  (* per offset; unused when no def *)
  p_succs : (int, unit) Hashtbl.t;
  p_preds : (int, unit) Hashtbl.t;
  mutable p_nexec : int;
  (* scratch, reused across executions *)
  p_exec_pos : int array;  (* dynamic position per offset this exec *)
  p_exec_prod : int array array;  (* producer position per offset/slot *)
}

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Observability: tier-1 construction and tier-2 packing counters.    *)
(* ------------------------------------------------------------------ *)

module Obs = Wet_obs.Metrics

let c_intern_misses = Obs.counter "build.intern.misses"

let c_intern_hits = Obs.counter "build.intern.hits"

let c_label_records = Obs.counter "build.labels.records"

let c_label_dedup_hits = Obs.counter "build.labels.dedup_hits"

let c_label_shared_values = Obs.counter "build.labels.shared_values"

let c_groups = Obs.counter "build.groups.count"

let c_group_members = Obs.counter "build.groups.members"

let c_group_uniq = Obs.counter "build.groups.unique_tuples"

let c_group_pattern = Obs.counter "build.groups.pattern_entries"

let c_pack_streams = Obs.counter "pack.streams"

let c_pack_bits_raw = Obs.counter "pack.bits_raw"

let c_pack_bits_packed = Obs.counter "pack.bits_packed"

let h_pack_stream_len = Obs.histogram "pack.stream_values"

(* Per-stream method selection — the data behind the paper's tier-2
   "Selection" evaluation: one streams/bits_saved counter pair per
   (method, ctx) the selector actually picked. *)
let note_packed_stream raw_len s =
  if Obs.enabled () then begin
    let m = Wet_bistream.Stream.method_name s in
    let raw_bits = 32 * raw_len in
    Obs.incr c_pack_streams;
    Obs.add c_pack_bits_raw raw_bits;
    Obs.add c_pack_bits_packed (Wet_bistream.Stream.bits s);
    Obs.observe h_pack_stream_len raw_len;
    Obs.incr (Obs.counter ("pack.method." ^ m ^ ".streams"));
    Obs.add
      (Obs.counter ("pack.method." ^ m ^ ".bits_saved"))
      (max 0 (raw_bits - Wet_bistream.Stream.bits s))
  end

(* Analyse the statically known structure of a path: which register
   slots are fed from inside the path, and the input groups (§3.2). *)
let make_proto ~next_slot ~analysis ~id ~copy_base func path =
  let prog = analysis.PA.program in
  let fn = prog.Program.funcs.(func) in
  let info = PA.fn analysis func in
  let blocks = Array.of_list (BL.blocks_of_path info.PA.bl path) in
  let stmts = Dyn.create () in
  let block_start = Array.make (Array.length blocks) 0 in
  Array.iteri
    (fun bp b ->
      block_start.(bp) <- Dyn.length stmts;
      Array.iteri
        (fun i _ -> Dyn.push stmts (Program.stmt_id prog func b i))
        fn.Wet_ir.Func.blocks.(b).Wet_ir.Func.instrs)
    blocks;
  let p_stmts = Dyn.to_array stmts in
  let instrs = Array.map (Program.instr prog) p_stmts in
  let n = Array.length instrs in
  let slot_count = Array.map Instr.dyn_use_count instrs in
  let slot_base = Array.make n 0 in
  for o = 0 to n - 1 do
    slot_base.(o) <- !next_slot;
    next_slot := !next_slot + slot_count.(o)
  done;
  let cd_slot =
    Array.map
      (fun _ ->
        let s = !next_slot in
        incr next_slot;
        s)
      blocks
  in
  (* Register slots resolved to their unique in-path reaching def. *)
  let last_def = Array.make fn.Wet_ir.Func.nregs (-1) in
  let internal =
    Array.mapi
      (fun o ins ->
        let regs = Instr.uses ins in
        let resolved =
          Array.make slot_count.(o) (-1)
          (* extra slots (memory, return link) stay external *)
        in
        List.iteri (fun s r -> resolved.(s) <- last_def.(r)) regs;
        (match Instr.def ins with
         | Some r -> last_def.(r) <- o
         | None -> ());
        resolved)
      instrs
  in
  (* Transitive input sources per offset. *)
  let src_ids = Hashtbl.create 16 in
  let src_list = Dyn.create () in
  let src_descr = ref [] in
  let intern src =
    match Hashtbl.find_opt src_ids src with
    | Some i -> i
    | None ->
      let i = Dyn.length src_list in
      Hashtbl.replace src_ids src i;
      Dyn.push src_list i;
      src_descr := src :: !src_descr;
      i
  in
  let srcs = Array.make n IntSet.empty in
  for o = 0 to n - 1 do
    let s = ref IntSet.empty in
    Array.iteri
      (fun slot producer ->
        if producer >= 0 then s := IntSet.union !s srcs.(producer)
        else s := IntSet.add (intern (Src_slot (o, slot))) !s)
      internal.(o);
    (match instrs.(o) with
     | Instr.Input _ -> s := IntSet.add (intern (Src_input o)) !s
     | _ -> ());
    srcs.(o) <- !s
  done;
  let descr = Array.of_list (List.rev !src_descr) in
  (* Group def-bearing offsets by source set, then merge proper subsets
     into their (first) superset. Constant groups (no sources) stay
     separate: merging them would only add pattern storage. *)
  let by_set = Hashtbl.create 16 in
  let groups = ref [] in
  let order = ref [] in
  for o = 0 to n - 1 do
    if Instr.has_def instrs.(o) then begin
      let key = IntSet.elements srcs.(o) in
      match Hashtbl.find_opt by_set key with
      | Some members -> members := o :: !members
      | None ->
        let members = ref [ o ] in
        Hashtbl.replace by_set key members;
        order := (key, members) :: !order
    end
  done;
  let initial = List.rev !order in
  let alive =
    Array.of_list
      (List.map (fun (k, m) -> (IntSet.of_list k, m, ref true)) initial)
  in
  let card (s, _, _) = IntSet.cardinal s in
  let idx = Array.init (Array.length alive) Fun.id in
  Array.sort (fun a b -> compare (card alive.(a)) (card alive.(b))) idx;
  Array.iter
    (fun i ->
      let set_i, members_i, alive_i = alive.(i) in
      if !alive_i && not (IntSet.is_empty set_i) then begin
        (* find any strict superset group and merge into it *)
        let merged = ref false in
        Array.iter
          (fun j ->
            if (not !merged) && j <> i then begin
              let set_j, members_j, alive_j = alive.(j) in
              if !alive_j
                 && IntSet.cardinal set_j > IntSet.cardinal set_i
                 && IntSet.subset set_i set_j
              then begin
                members_j := !members_i @ !members_j;
                alive_i := false;
                merged := true
              end
            end)
          idx
      end)
    idx;
  Array.iter
    (fun (set, members, alive) ->
      if !alive then
        groups :=
          {
            pg_sources =
              Array.of_list (List.map (fun i -> descr.(i)) (IntSet.elements set));
            pg_members = Array.of_list (List.sort compare !members);
            pg_pattern = Dyn.create ();
            pg_tuples = Hashtbl.create 64;
          }
          :: !groups)
    alive;
  let p_groups = Array.of_list (List.rev !groups) in
  let offset_group = Array.make n (-1) in
  Array.iteri
    (fun g pg -> Array.iter (fun o -> offset_group.(o) <- g) pg.pg_members)
    p_groups;
  {
    p_id = id;
    p_func = func;
    p_path = path;
    p_blocks = blocks;
    p_stmts;
    p_instrs = instrs;
    p_block_start = block_start;
    p_copy_base = copy_base;
    p_slot_count = slot_count;
    p_slot_base = slot_base;
    p_cd_slot = cd_slot;
    p_internal = internal;
    p_groups;
    p_offset_group = offset_group;
    p_ts = Dyn.create ();
    p_uvals = Array.map (fun _ -> Dyn.create ()) instrs;
    p_succs = Hashtbl.create 4;
    p_preds = Hashtbl.create 4;
    p_nexec = 0;
    p_exec_pos = Array.make n (-1);
    p_exec_prod = Array.map (fun c -> Array.make (max 1 c) (-1)) slot_count;
  }

(* ------------------------------------------------------------------ *)
(* Dependence slot state machine (shared by data and control slots).  *)
(* ------------------------------------------------------------------ *)

(* st_kind: -2 all events so far are same-node same-instance from
   [st_prod] starting at instance 0 (or unseen when st_count = 0);
   -1 tabled: events stored as labeled edges. *)

type label_builder = { lb_dst : Dyn.t; lb_src : Dyn.t }

type slot_tables = {
  mutable st_kind : Bytes.t;  (* 0 = consecutive-local/unseen, 1 = tabled *)
  mutable st_prod : int array;  (* producer copy while consecutive-local *)
  mutable st_count : int array;
  edges : (int * int, label_builder) Hashtbl.t;  (* (slot gid, producer copy) *)
  slot_producers : (int, int list ref) Hashtbl.t;  (* slot gid -> producers *)
}

let ensure_slots st n =
  let cap = Bytes.length st.st_kind in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let kind = Bytes.make cap' '\000' in
    Bytes.blit st.st_kind 0 kind 0 cap;
    let prod = Array.make cap' (-1) in
    Array.blit st.st_prod 0 prod 0 cap;
    let count = Array.make cap' 0 in
    Array.blit st.st_count 0 count 0 cap;
    st.st_kind <- kind;
    st.st_prod <- prod;
    st.st_count <- count
  end

let add_edge_event st gid producer dst_inst src_inst =
  let key = (gid, producer) in
  let lb =
    match Hashtbl.find_opt st.edges key with
    | Some lb -> lb
    | None ->
      let lb = { lb_dst = Dyn.create (); lb_src = Dyn.create () } in
      Hashtbl.replace st.edges key lb;
      (match Hashtbl.find_opt st.slot_producers gid with
       | Some l -> l := producer :: !l
       | None -> Hashtbl.replace st.slot_producers gid (ref [ producer ]));
      lb
  in
  Dyn.push lb.lb_dst dst_inst;
  Dyn.push lb.lb_src src_inst

(* The slot stops being uniformly local: materialise the pairs the
   Local representation was standing for. *)
let spill_local st gid =
  let producer = st.st_prod.(gid) in
  for k = 0 to st.st_count.(gid) - 1 do
    add_edge_event st gid producer k k
  done;
  Bytes.set st.st_kind gid '\001'

(* Record one dependence event: instance [inst] of the consumer slot
   [gid] consumed the producer instance [(pcopy, pinst)]; [local] means
   same node, same instance. [pcopy = -1] is a hole (no producer). *)
let slot_event st gid ~inst ~pcopy ~pinst ~local =
  if Bytes.get st.st_kind gid = '\001' then begin
    if pcopy >= 0 then add_edge_event st gid pcopy inst pinst
  end
  else if local && st.st_count.(gid) = inst
          && (st.st_count.(gid) = 0 || st.st_prod.(gid) = pcopy)
  then begin
    st.st_prod.(gid) <- pcopy;
    st.st_count.(gid) <- st.st_count.(gid) + 1
  end
  else begin
    if st.st_count.(gid) > 0 then spill_local st gid
    else Bytes.set st.st_kind gid '\001';
    if pcopy >= 0 then add_edge_event st gid pcopy inst pinst
  end

(* ------------------------------------------------------------------ *)
(* The main replay.                                                   *)
(* ------------------------------------------------------------------ *)

let raw arr = Stream.compress_with `Raw arr

let build_tier1 (trace : T.t) : Wet.t =
  let analysis = trace.T.analysis in
  let prog = analysis.PA.program in
  let proto_list = ref [] in
  let nprotos = ref 0 in
  let proto_of = Hashtbl.create 256 in
  let next_slot = ref 0 in
  let next_copy = ref 0 in
  let get_proto key =
    match Hashtbl.find_opt proto_of key with
    | Some p -> p
    | None ->
      let func, path = T.decode_path key in
      let p =
        make_proto ~next_slot ~analysis ~id:!nprotos ~copy_base:!next_copy
          func path
      in
      next_copy := !next_copy + Array.length p.p_stmts;
      Hashtbl.replace proto_of key p;
      proto_list := p :: !proto_list;
      incr nprotos;
      p
  in
  let st =
    {
      st_kind = Bytes.make 1024 '\000';
      st_prod = Array.make 1024 (-1);
      st_count = Array.make 1024 0;
      edges = Hashtbl.create 4096;
      slot_producers = Hashtbl.create 4096;
    }
  in
  (* Dynamic position -> (copy, instance). *)
  let pos_copy = Array.make (max 1 trace.T.nstmts) (-1) in
  let pos_inst = Array.make (max 1 trace.T.nstmts) (-1) in
  let def_execs = ref 0 in
  let dep_instances = ref 0 in
  let cd_instances = ref 0 in
  let pos = ref 0 in
  let dep_cursor = ref 0 in
  let block_cursor = ref 0 in
  let prev_proto = ref (-1) in
  (* Return-value links point forward in the dynamic stream (the callee's
     Ret executes after the Call), so their events are deferred until the
     position maps are complete. A deferred producer is never in the
     consumer's node (callee paths are distinct from the caller's call
     path), so these events are never Local. *)
  let pend_gid = Dyn.create () in
  let pend_inst = Dyn.create () in
  let pend_prod = Dyn.create () in
  let first_node = ref (-1) in
  let last_node = ref (-1) in
  Array.iteri
    (fun path_index pkey ->
      let p = get_proto pkey in
      ensure_slots st !next_slot;
      if !first_node < 0 then first_node := p.p_id;
      last_node := p.p_id;
      ignore !prev_proto;
      Dyn.push p.p_ts (path_index + 1);
      let inst = p.p_nexec in
      let n = Array.length p.p_instrs in
      let bp = ref 0 in
      for o = 0 to n - 1 do
        (* advance block position *)
        if !bp + 1 < Array.length p.p_block_start
           && p.p_block_start.(!bp + 1) = o
        then incr bp;
        if p.p_block_start.(!bp) = o then begin
          (* block entry: consume the control-dependence event *)
          let cd_pos = trace.T.cd_producer.(!block_cursor) in
          incr block_cursor;
          let gid = p.p_cd_slot.(!bp) in
          let nstmts_in_block =
            (if !bp + 1 < Array.length p.p_block_start then
               p.p_block_start.(!bp + 1)
             else n)
            - p.p_block_start.(!bp)
          in
          if cd_pos >= 0 then begin
            cd_instances := !cd_instances + nstmts_in_block;
            let pc = pos_copy.(cd_pos) and pi = pos_inst.(cd_pos) in
            let local =
              pc >= p.p_copy_base
              && pc < p.p_copy_base + n
              && pi = inst
            in
            slot_event st gid ~inst ~pcopy:pc ~pinst:pi ~local
          end
          else slot_event st gid ~inst ~pcopy:(-1) ~pinst:(-1) ~local:false
        end;
        let copy = p.p_copy_base + o in
        pos_copy.(!pos) <- copy;
        pos_inst.(!pos) <- inst;
        p.p_exec_pos.(o) <- !pos;
        let nslots = p.p_slot_count.(o) in
        for s = 0 to nslots - 1 do
          let producer = trace.T.deps.(!dep_cursor) in
          incr dep_cursor;
          p.p_exec_prod.(o).(s) <- producer;
          let gid = p.p_slot_base.(o) + s in
          if producer >= 0 then begin
            incr dep_instances;
            if pos_copy.(producer) = -1 then begin
              (* forward reference: the producer has not been replayed *)
              Dyn.push pend_gid gid;
              Dyn.push pend_inst inst;
              Dyn.push pend_prod producer
            end
            else begin
              let pc = pos_copy.(producer) and pi = pos_inst.(producer) in
              let local =
                pc >= p.p_copy_base && pc < p.p_copy_base + n && pi = inst
              in
              slot_event st gid ~inst ~pcopy:pc ~pinst:pi ~local
            end
          end
          else slot_event st gid ~inst ~pcopy:(-1) ~pinst:(-1) ~local:false
        done;
        if Instr.has_def p.p_instrs.(o) then incr def_execs;
        incr pos
      done;
      (* value groups: one tuple per group for this execution *)
      Array.iter
        (fun g ->
          let tuple =
            Array.fold_right
              (fun src acc ->
                match src with
                | Src_slot (o, s) ->
                  let producer = p.p_exec_prod.(o).(s) in
                  (if producer >= 0 then trace.T.values.(producer) else 0)
                  :: acc
                | Src_input o -> trace.T.values.(p.p_exec_pos.(o)) :: acc)
              g.pg_sources []
          in
          if Array.length g.pg_sources = 0 then begin
            (* constant group: record unique values once *)
            if p.p_nexec = 0 then
              Array.iter
                (fun o ->
                  Dyn.push p.p_uvals.(o) trace.T.values.(p.p_exec_pos.(o)))
                g.pg_members
          end
          else begin
            match Hashtbl.find_opt g.pg_tuples tuple with
            | Some ix -> Dyn.push g.pg_pattern ix
            | None ->
              let ix = Hashtbl.length g.pg_tuples in
              Hashtbl.replace g.pg_tuples tuple ix;
              Dyn.push g.pg_pattern ix;
              Array.iter
                (fun o ->
                  Dyn.push p.p_uvals.(o) trace.T.values.(p.p_exec_pos.(o)))
                g.pg_members
          end)
        p.p_groups;
      prev_proto := p.p_id;
      p.p_nexec <- p.p_nexec + 1)
    trace.T.paths;
  for i = 0 to Dyn.length pend_gid - 1 do
    let producer = Dyn.get pend_prod i in
    slot_event st (Dyn.get pend_gid i) ~inst:(Dyn.get pend_inst i)
      ~pcopy:pos_copy.(producer) ~pinst:pos_inst.(producer) ~local:false
  done;
  (* ---------------- finalisation ---------------- *)
  let protos =
    let arr = Array.of_list (List.rev !proto_list) in
    Array.sort (fun a b -> compare a.p_id b.p_id) arr;
    arr
  in
  (* dynamic control-flow edges between nodes (consecutive timestamps) *)
  let prev = ref (-1) in
  Array.iter
    (fun pkey ->
      let p = Hashtbl.find proto_of pkey in
      if !prev >= 0 then begin
        Hashtbl.replace protos.(!prev).p_succs p.p_id ();
        Hashtbl.replace p.p_preds !prev ()
      end;
      prev := p.p_id)
    trace.T.paths;
  let ncopies = !next_copy in
  let copy_node = Array.make ncopies 0 in
  let copy_stmt = Array.make ncopies 0 in
  let copy_uvals = Array.make ncopies None in
  let copy_group = Array.make ncopies (-1) in
  let copy_deps = Array.make ncopies [||] in
  let copy_local_out = Array.make ncopies [] in
  let copy_remote_out = Array.make ncopies [] in
  let stmt_copies = Array.make (Program.num_stmts prog) [] in
  (* shared label records *)
  let next_label = ref 0 in
  (* Sharing identical label sequences between the same node pair
     (paper Â§3.3). Keyed by a strong content hash; the candidate list
     resolves collisions by structural comparison. *)
  let label_cache = Hashtbl.create 1024 in
  let shared_label_values = ref 0 in
  let local_dep_instances = ref 0 in
  let mk_labels src_node dst_node (lb : label_builder) =
    let dst = Dyn.to_array lb.lb_dst and src = Dyn.to_array lb.lb_src in
    let module H = Wet_util.Hashing in
    let h = H.hash_window dst 0 (Array.length dst) in
    let h = H.fnv_fold (H.hash_window src 0 (Array.length src)) h in
    let key = (src_node, dst_node, Array.length dst, h) in
    let candidates =
      Option.value (Hashtbl.find_opt label_cache key) ~default:[]
    in
    match
      List.find_opt (fun (d, s, _) -> d = dst && s = src) candidates
    with
    | Some (_, _, labels) ->
      shared_label_values := !shared_label_values + Array.length dst;
      Obs.incr c_label_dedup_hits;
      labels
    | None ->
      let labels =
        {
          Wet.l_id = !next_label;
          l_dst = raw dst;
          l_src = raw src;
          l_len = Array.length dst;
        }
      in
      incr next_label;
      Hashtbl.replace label_cache key ((dst, src, labels) :: candidates);
      labels
  in
  let finalize_slot p gid ~dst_copy ~slot =
    if Bytes.get st.st_kind gid = '\001' then begin
      let producers =
        match Hashtbl.find_opt st.slot_producers gid with
        | Some l -> List.rev !l
        | None -> []
      in
      match producers with
      | [] -> Wet.No_dep
      | _ ->
        let edges =
          List.map
            (fun pc ->
              let lb = Hashtbl.find st.edges (gid, pc) in
              let labels = mk_labels copy_node.(pc) p.p_id lb in
              { Wet.e_src = pc; e_dst = dst_copy; e_slot = slot;
                e_labels = labels })
            producers
        in
        List.iter
          (fun e ->
            copy_remote_out.(e.Wet.e_src) <- e :: copy_remote_out.(e.Wet.e_src))
          edges;
        Wet.Remote edges
    end
    else if st.st_count.(gid) = 0 then Wet.No_dep
    else begin
      let producer = st.st_prod.(gid) in
      local_dep_instances := !local_dep_instances + st.st_count.(gid);
      copy_local_out.(producer) <- dst_copy :: copy_local_out.(producer);
      Wet.Local producer
    end
  in
  (* copy-level tables must exist before finalize_slot reads
     [copy_node] for producers, so fill them first *)
  Array.iter
    (fun p ->
      Array.iteri
        (fun o stmt ->
          let c = p.p_copy_base + o in
          copy_node.(c) <- p.p_id;
          copy_stmt.(c) <- stmt;
          copy_group.(c) <- p.p_offset_group.(o);
          stmt_copies.(stmt) <- c :: stmt_copies.(stmt);
          if Instr.has_def p.p_instrs.(o) then
            copy_uvals.(c) <- Some (raw (Dyn.to_array p.p_uvals.(o))))
        p.p_stmts)
    protos;
  let nodes =
    Array.map
      (fun p ->
        let groups =
          Array.map
            (fun g ->
              {
                Wet.g_members =
                  Array.map (fun o -> p.p_copy_base + o) g.pg_members;
                g_nsources = Array.length g.pg_sources;
                g_pattern =
                  (if Array.length g.pg_sources = 0 then None
                   else Some (raw (Dyn.to_array g.pg_pattern)));
                g_nuniq =
                  (if Array.length g.pg_sources = 0 then 1
                   else Hashtbl.length g.pg_tuples);
              })
            p.p_groups
        in
        let cd =
          Array.mapi
            (fun bp _ ->
              finalize_slot p p.p_cd_slot.(bp)
                ~dst_copy:(p.p_copy_base + p.p_block_start.(bp))
                ~slot:(-1))
            p.p_blocks
        in
        {
          Wet.n_id = p.p_id;
          n_func = p.p_func;
          n_path = p.p_path;
          n_blocks = p.p_blocks;
          n_stmts = p.p_stmts;
          n_block_start = p.p_block_start;
          n_copy_base = p.p_copy_base;
          n_nexec = p.p_nexec;
          n_ts = raw (Dyn.to_array p.p_ts);
          n_succs =
            Array.of_list
              (List.sort compare
                 (Hashtbl.fold (fun k () acc -> k :: acc) p.p_succs []));
          n_preds =
            Array.of_list
              (List.sort compare
                 (Hashtbl.fold (fun k () acc -> k :: acc) p.p_preds []));
          n_groups = groups;
          n_cd = cd;
        })
      protos
  in
  Array.iter
    (fun p ->
      Array.iteri
        (fun o _ ->
          let c = p.p_copy_base + o in
          copy_deps.(c) <-
            Array.init p.p_slot_count.(o) (fun s ->
                finalize_slot p (p.p_slot_base.(o) + s) ~dst_copy:c ~slot:s))
        p.p_stmts)
    protos;
  if Obs.enabled () then begin
    Obs.add c_intern_misses !nprotos;
    Obs.add c_intern_hits (Array.length trace.T.paths - !nprotos);
    Obs.add c_label_records !next_label;
    Obs.add c_label_shared_values !shared_label_values;
    Array.iter
      (fun p ->
        Array.iter
          (fun g ->
            Obs.incr c_groups;
            Obs.add c_group_members (Array.length g.pg_members);
            Obs.add c_group_uniq
              (if Array.length g.pg_sources = 0 then 1
               else Hashtbl.length g.pg_tuples);
            Obs.add c_group_pattern (Dyn.length g.pg_pattern))
          p.p_groups)
      protos;
    Wet_obs.Span.set_attr "stmts" (Wet_obs.Span.Int trace.T.nstmts);
    Wet_obs.Span.set_attr "nodes" (Wet_obs.Span.Int !nprotos)
  end;
  let stats =
    {
      Wet.stmts_executed = trace.T.nstmts;
      block_execs = Array.length trace.T.blocks;
      path_execs = Array.length trace.T.paths;
      def_execs = !def_execs;
      dep_instances = !dep_instances;
      cd_instances = !cd_instances;
      local_dep_instances = !local_dep_instances;
      shared_label_values = !shared_label_values;
    }
  in
  {
    Wet.program = prog;
    analysis;
    nodes;
    copy_node;
    copy_stmt;
    copy_uvals;
    copy_group;
    copy_deps;
    copy_local_out;
    copy_remote_out;
    stmt_copies;
    first_node = (if !first_node < 0 then 0 else !first_node);
    last_node = (if !last_node < 0 then 0 else !last_node);
    stats;
    tier = `Tier1;
    damage = [];
  }

let build trace = Wet_obs.Span.with_ "build.tier1" (fun () -> build_tier1 trace)

(* ------------------------------------------------------------------ *)
(* Tier 2                                                             *)
(* ------------------------------------------------------------------ *)

let pack_tier2 (w : Wet.t) : Wet.t =
  if w.Wet.tier = `Tier2 then invalid_arg "Builder.pack: already packed";
  let pack_seq s =
    let arr = Stream.to_array s in
    let s' = Stream.compress arr in
    note_packed_stream (Array.length arr) s';
    s'
  in
  let label_memo = Hashtbl.create 1024 in
  let pack_labels (l : Wet.labels) =
    match Hashtbl.find_opt label_memo l.Wet.l_id with
    | Some l' -> l'
    | None ->
      let l' =
        {
          Wet.l_id = l.Wet.l_id;
          l_dst = pack_seq l.Wet.l_dst;
          l_src = pack_seq l.Wet.l_src;
          l_len = l.Wet.l_len;
        }
      in
      Hashtbl.replace label_memo l.Wet.l_id l';
      l'
  in
  let edge_memo = Hashtbl.create 1024 in
  let pack_edge (e : Wet.edge) =
    let key = (e.Wet.e_src, e.Wet.e_dst, e.Wet.e_slot) in
    match Hashtbl.find_opt edge_memo key with
    | Some e' -> e'
    | None ->
      let e' = { e with Wet.e_labels = pack_labels e.Wet.e_labels } in
      Hashtbl.replace edge_memo key e';
      e'
  in
  let pack_source = function
    | Wet.No_dep -> Wet.No_dep
    | Wet.Local c -> Wet.Local c
    | Wet.Remote edges -> Wet.Remote (List.map pack_edge edges)
  in
  let nodes =
    Array.map
      (fun n ->
        {
          n with
          Wet.n_ts = pack_seq n.Wet.n_ts;
          n_groups =
            Array.map
              (fun g ->
                { g with Wet.g_pattern = Option.map pack_seq g.Wet.g_pattern })
              n.Wet.n_groups;
          n_cd = Array.map pack_source n.Wet.n_cd;
        })
      w.Wet.nodes
  in
  {
    w with
    Wet.nodes;
    copy_uvals = Array.map (Option.map pack_seq) w.Wet.copy_uvals;
    copy_deps = Array.map (Array.map pack_source) w.Wet.copy_deps;
    copy_remote_out = Array.map (List.map pack_edge) w.Wet.copy_remote_out;
    tier = `Tier2;
  }

let pack w = Wet_obs.Span.with_ "build.tier2" (fun () -> pack_tier2 w)

let of_program prog ~input =
  let res = Wet_interp.Interp.run prog ~input in
  build res.Wet_interp.Interp.trace
