module Dyn = Wet_util.Dynarray_int
module Stream = Wet_bistream.Stream
module T = Wet_interp.Trace
module PA = Wet_cfg.Program_analysis
module BL = Wet_cfg.Ball_larus
module Instr = Wet_ir.Instr
module Program = Wet_ir.Program

(* ------------------------------------------------------------------ *)
(* Static structure of a node (one per executed Ball–Larus path).     *)
(* ------------------------------------------------------------------ *)

type source =
  | Src_slot of int * int  (* external operand: (offset, slot) *)
  | Src_input of int  (* an Input statement at this offset *)

type proto_group = {
  pg_sources : source array;
  pg_members : int array;  (* offsets with def ports, ascending *)
  pg_pattern : Dyn.t;
  pg_tuples : (int list, int) Hashtbl.t;
}

type proto = {
  p_id : int;
  p_func : int;
  p_path : int;
  p_blocks : int array;
  p_stmts : int array;  (* static statement ids, path order *)
  p_instrs : Instr.t array;
  p_block_start : int array;
  p_copy_base : int;
  p_slot_count : int array;  (* dyn_use_count per offset *)
  p_slot_base : int array;  (* global slot id of each offset's slot 0 *)
  p_cd_slot : int array;  (* global slot id per block position *)
  p_internal : int array array;
      (* per offset, per register slot: producing offset or -1 *)
  p_groups : proto_group array;
  p_offset_group : int array;  (* group index per offset, -1 for no def *)
  p_ts : Dyn.t;
  p_uvals : Dyn.t array;  (* per offset; unused when no def *)
  p_succs : (int, unit) Hashtbl.t;
  p_preds : (int, unit) Hashtbl.t;
  mutable p_nexec : int;
  (* scratch, reused across executions *)
  p_exec_pos : int array;  (* dynamic position per offset this exec *)
  p_exec_prod : int array array;  (* producer position per offset/slot *)
}

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Observability: tier-1 construction and tier-2 packing counters.    *)
(* ------------------------------------------------------------------ *)

module Obs = Wet_obs.Metrics

let c_intern_misses = Obs.counter "build.intern.misses"

let c_intern_hits = Obs.counter "build.intern.hits"

let c_label_records = Obs.counter "build.labels.records"

let c_label_dedup_hits = Obs.counter "build.labels.dedup_hits"

let c_label_shared_values = Obs.counter "build.labels.shared_values"

let c_groups = Obs.counter "build.groups.count"

let c_group_members = Obs.counter "build.groups.members"

let c_group_uniq = Obs.counter "build.groups.unique_tuples"

let c_group_pattern = Obs.counter "build.groups.pattern_entries"

let c_shards = Obs.counter "build.shards"

let g_peak_live = Obs.gauge "build.peak_live_words"

let h_shard_events = Obs.histogram "build.shard_events"

let c_pack_streams = Obs.counter "pack.streams"

let c_pack_bits_raw = Obs.counter "pack.bits_raw"

let c_pack_bits_packed = Obs.counter "pack.bits_packed"

let h_pack_stream_len = Obs.histogram "pack.stream_values"

(* Per-stream method selection — the data behind the paper's tier-2
   "Selection" evaluation: one streams/bits_saved counter pair per
   (method, ctx) the selector actually picked. *)
let note_packed_stream raw_len s =
  if Obs.enabled () then begin
    let m = Wet_bistream.Stream.method_name s in
    let raw_bits = 32 * raw_len in
    Obs.incr c_pack_streams;
    Obs.add c_pack_bits_raw raw_bits;
    Obs.add c_pack_bits_packed (Wet_bistream.Stream.bits s);
    Obs.observe h_pack_stream_len raw_len;
    Obs.incr (Obs.counter ("pack.method." ^ m ^ ".streams"));
    Obs.add
      (Obs.counter ("pack.method." ^ m ^ ".bits_saved"))
      (max 0 (raw_bits - Wet_bistream.Stream.bits s))
  end

(* Analyse the statically known structure of a path: which register
   slots are fed from inside the path, and the input groups (§3.2). *)
let make_proto ~next_slot ~analysis ~id ~copy_base func path =
  let prog = analysis.PA.program in
  let fn = prog.Program.funcs.(func) in
  let info = PA.fn analysis func in
  let blocks = Array.of_list (BL.blocks_of_path info.PA.bl path) in
  let stmts = Dyn.create () in
  let block_start = Array.make (Array.length blocks) 0 in
  Array.iteri
    (fun bp b ->
      block_start.(bp) <- Dyn.length stmts;
      Array.iteri
        (fun i _ -> Dyn.push stmts (Program.stmt_id prog func b i))
        fn.Wet_ir.Func.blocks.(b).Wet_ir.Func.instrs)
    blocks;
  let p_stmts = Dyn.to_array stmts in
  let instrs = Array.map (Program.instr prog) p_stmts in
  let n = Array.length instrs in
  let slot_count = Array.map Instr.dyn_use_count instrs in
  let slot_base = Array.make n 0 in
  for o = 0 to n - 1 do
    slot_base.(o) <- !next_slot;
    next_slot := !next_slot + slot_count.(o)
  done;
  let cd_slot =
    Array.map
      (fun _ ->
        let s = !next_slot in
        incr next_slot;
        s)
      blocks
  in
  (* Register slots resolved to their unique in-path reaching def. *)
  let last_def = Array.make fn.Wet_ir.Func.nregs (-1) in
  let internal =
    Array.mapi
      (fun o ins ->
        let regs = Instr.uses ins in
        let resolved =
          Array.make slot_count.(o) (-1)
          (* extra slots (memory, return link) stay external *)
        in
        List.iteri (fun s r -> resolved.(s) <- last_def.(r)) regs;
        (match Instr.def ins with
         | Some r -> last_def.(r) <- o
         | None -> ());
        resolved)
      instrs
  in
  (* Transitive input sources per offset. *)
  let src_ids = Hashtbl.create 16 in
  let src_list = Dyn.create () in
  let src_descr = ref [] in
  let intern src =
    match Hashtbl.find_opt src_ids src with
    | Some i -> i
    | None ->
      let i = Dyn.length src_list in
      Hashtbl.replace src_ids src i;
      Dyn.push src_list i;
      src_descr := src :: !src_descr;
      i
  in
  let srcs = Array.make n IntSet.empty in
  for o = 0 to n - 1 do
    let s = ref IntSet.empty in
    Array.iteri
      (fun slot producer ->
        if producer >= 0 then s := IntSet.union !s srcs.(producer)
        else s := IntSet.add (intern (Src_slot (o, slot))) !s)
      internal.(o);
    (match instrs.(o) with
     | Instr.Input _ -> s := IntSet.add (intern (Src_input o)) !s
     | _ -> ());
    srcs.(o) <- !s
  done;
  let descr = Array.of_list (List.rev !src_descr) in
  (* Group def-bearing offsets by source set, then merge proper subsets
     into their (first) superset. Constant groups (no sources) stay
     separate: merging them would only add pattern storage. *)
  let by_set = Hashtbl.create 16 in
  let groups = ref [] in
  let order = ref [] in
  for o = 0 to n - 1 do
    if Instr.has_def instrs.(o) then begin
      let key = IntSet.elements srcs.(o) in
      match Hashtbl.find_opt by_set key with
      | Some members -> members := o :: !members
      | None ->
        let members = ref [ o ] in
        Hashtbl.replace by_set key members;
        order := (key, members) :: !order
    end
  done;
  let initial = List.rev !order in
  let alive =
    Array.of_list
      (List.map (fun (k, m) -> (IntSet.of_list k, m, ref true)) initial)
  in
  let card (s, _, _) = IntSet.cardinal s in
  let idx = Array.init (Array.length alive) Fun.id in
  Array.sort (fun a b -> compare (card alive.(a)) (card alive.(b))) idx;
  Array.iter
    (fun i ->
      let set_i, members_i, alive_i = alive.(i) in
      if !alive_i && not (IntSet.is_empty set_i) then begin
        (* find any strict superset group and merge into it *)
        let merged = ref false in
        Array.iter
          (fun j ->
            if (not !merged) && j <> i then begin
              let set_j, members_j, alive_j = alive.(j) in
              if !alive_j
                 && IntSet.cardinal set_j > IntSet.cardinal set_i
                 && IntSet.subset set_i set_j
              then begin
                members_j := !members_i @ !members_j;
                alive_i := false;
                merged := true
              end
            end)
          idx
      end)
    idx;
  Array.iter
    (fun (set, members, alive) ->
      if !alive then
        groups :=
          {
            pg_sources =
              Array.of_list (List.map (fun i -> descr.(i)) (IntSet.elements set));
            pg_members = Array.of_list (List.sort compare !members);
            pg_pattern = Dyn.create ();
            pg_tuples = Hashtbl.create 64;
          }
          :: !groups)
    alive;
  let p_groups = Array.of_list (List.rev !groups) in
  let offset_group = Array.make n (-1) in
  Array.iteri
    (fun g pg -> Array.iter (fun o -> offset_group.(o) <- g) pg.pg_members)
    p_groups;
  {
    p_id = id;
    p_func = func;
    p_path = path;
    p_blocks = blocks;
    p_stmts;
    p_instrs = instrs;
    p_block_start = block_start;
    p_copy_base = copy_base;
    p_slot_count = slot_count;
    p_slot_base = slot_base;
    p_cd_slot = cd_slot;
    p_internal = internal;
    p_groups;
    p_offset_group = offset_group;
    p_ts = Dyn.create ();
    p_uvals = Array.map (fun _ -> Dyn.create ()) instrs;
    p_succs = Hashtbl.create 4;
    p_preds = Hashtbl.create 4;
    p_nexec = 0;
    p_exec_pos = Array.make n (-1);
    p_exec_prod = Array.map (fun c -> Array.make (max 1 c) (-1)) slot_count;
  }

(* ------------------------------------------------------------------ *)
(* Dependence slot state machine (shared by data and control slots).  *)
(* ------------------------------------------------------------------ *)

(* st_kind: -2 all events so far are same-node same-instance from
   [st_prod] starting at instance 0 (or unseen when st_count = 0);
   -1 tabled: events stored as labeled edges. *)

type label_builder = { lb_dst : Dyn.t; lb_src : Dyn.t }

type slot_tables = {
  mutable st_kind : Bytes.t;  (* 0 = consecutive-local/unseen, 1 = tabled *)
  mutable st_prod : int array;  (* producer copy while consecutive-local *)
  mutable st_count : int array;
  edges : (int * int, label_builder) Hashtbl.t;  (* (slot gid, producer copy) *)
  slot_producers : (int, int list ref) Hashtbl.t;  (* slot gid -> producers *)
}

let ensure_slots st n =
  let cap = Bytes.length st.st_kind in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let kind = Bytes.make cap' '\000' in
    Bytes.blit st.st_kind 0 kind 0 cap;
    let prod = Array.make cap' (-1) in
    Array.blit st.st_prod 0 prod 0 cap;
    let count = Array.make cap' 0 in
    Array.blit st.st_count 0 count 0 cap;
    st.st_kind <- kind;
    st.st_prod <- prod;
    st.st_count <- count
  end

let add_edge_event st gid producer dst_inst src_inst =
  let key = (gid, producer) in
  let lb =
    match Hashtbl.find_opt st.edges key with
    | Some lb -> lb
    | None ->
      let lb = { lb_dst = Dyn.create (); lb_src = Dyn.create () } in
      Hashtbl.replace st.edges key lb;
      (match Hashtbl.find_opt st.slot_producers gid with
       | Some l -> l := producer :: !l
       | None -> Hashtbl.replace st.slot_producers gid (ref [ producer ]));
      lb
  in
  Dyn.push lb.lb_dst dst_inst;
  Dyn.push lb.lb_src src_inst

(* The slot stops being uniformly local: materialise the pairs the
   Local representation was standing for. *)
let spill_local st gid =
  let producer = st.st_prod.(gid) in
  for k = 0 to st.st_count.(gid) - 1 do
    add_edge_event st gid producer k k
  done;
  Bytes.set st.st_kind gid '\001'

(* Record one dependence event: instance [inst] of the consumer slot
   [gid] consumed the producer instance [(pcopy, pinst)]; [local] means
   same node, same instance. [pcopy = -1] is a hole (no producer). *)
let slot_event st gid ~inst ~pcopy ~pinst ~local =
  if Bytes.get st.st_kind gid = '\001' then begin
    if pcopy >= 0 then add_edge_event st gid pcopy inst pinst
  end
  else if local && st.st_count.(gid) = inst
          && (st.st_count.(gid) = 0 || st.st_prod.(gid) = pcopy)
  then begin
    st.st_prod.(gid) <- pcopy;
    st.st_count.(gid) <- st.st_count.(gid) + 1
  end
  else begin
    if st.st_count.(gid) > 0 then spill_local st gid
    else Bytes.set st.st_kind gid '\001';
    if pcopy >= 0 then add_edge_event st gid pcopy inst pinst
  end

let raw arr = Stream.compress_with `Raw arr

(* ------------------------------------------------------------------ *)
(* Windowed event buffers.                                            *)
(*                                                                    *)
(* A [Win.t] is an int buffer addressed by a global, ever-growing     *)
(* index whose prefix can be dropped: the sink keeps only the window  *)
(* between the eviction boundary and the feed cursor, so buffering    *)
(* stays O(shard) while indices remain the dynamic positions the      *)
(* dependence events speak in.                                        *)
(* ------------------------------------------------------------------ *)

module Win = struct
  type t = {
    mutable base : int;  (* global index of arr.(0) *)
    mutable arr : int array;
    mutable len : int;
  }

  let create () = { base = 0; arr = Array.make 1024 0; len = 0 }

  (* one past the last pushed global index — i.e. the total fed count *)
  let end_ w = w.base + w.len

  let push w v =
    if w.len = Array.length w.arr then begin
      let arr = Array.make (2 * w.len) 0 in
      Array.blit w.arr 0 arr 0 w.len;
      w.arr <- arr
    end;
    w.arr.(w.len) <- v;
    w.len <- w.len + 1

  let mem w i = i >= w.base && i < w.base + w.len

  let get w i = w.arr.(i - w.base)

  let set w i v = w.arr.(i - w.base) <- v

  (* Drop the prefix [base, upto); keeps absolute indexing intact and
     returns the backing store to a small size when mostly empty. *)
  let drop_to w upto =
    if upto > w.base then begin
      let k = upto - w.base in
      let rem = w.len - k in
      Array.blit w.arr k w.arr 0 rem;
      w.len <- rem;
      w.base <- upto;
      if Array.length w.arr > 4096 && w.len * 4 < Array.length w.arr then begin
        let arr = Array.make (max 1024 (2 * w.len)) 0 in
        Array.blit w.arr 0 arr 0 w.len;
        w.arr <- arr
      end
    end
end

(* ------------------------------------------------------------------ *)
(* The streaming sink: replay + eager per-shard compression.          *)
(* ------------------------------------------------------------------ *)

module Sink = struct
  let default_shard_events = 65536

  (* Everything replay has accumulated, segregated from the runtime
     plumbing so a checkpoint is one [Marshal] of this record: no
     closures, no [PA.t] (re-derivable from the program), nothing
     process-specific. Within-snapshot sharing (protos reached from
     [proto_of], [proto_list] and [prev_proto] are the same blocks)
     survives the round trip because it is a single Marshal call. *)
  type state = {
    (* path interning *)
    proto_of : (int, proto) Hashtbl.t;
    mutable proto_list : proto list;
    mutable nprotos : int;
    next_slot : int ref;
    next_copy : int ref;
    st : slot_tables;
    (* buffered event windows (global FIFO indices) *)
    w_paths : Win.t;
    w_cd : Win.t;
    w_deps : Win.t;
    w_vals : Win.t;  (* unused when values_from is set *)
    (* processed position -> (copy, instance); same eviction boundary *)
    w_copy : Win.t;
    w_inst : Win.t;
    (* positions below the eviction boundary that are still referencable *)
    mutable retained : (int, int * int * int) Hashtbl.t;
        (* pos -> (value, copy, inst) *)
    (* cursors *)
    mutable vals_fed : int;  (* statements fed (= positions) *)
    mutable paths_done : int;  (* path executions processed *)
    mutable cd_done : int;
    mutable deps_done : int;
    (* pending call patches, LIFO (calls nest) *)
    pending_vpos : Dyn.t;
    pending_slot : Dyn.t;
    (* forward references, resolved at finish (as in the batch path) *)
    pend_gid : Dyn.t;
    pend_inst : Dyn.t;
    pend_prod : Dyn.t;
    (* stats accumulators *)
    mutable def_execs : int;
    mutable dep_instances : int;
    mutable cd_instances : int;
    mutable first_node : int;
    mutable last_node : int;
    mutable prev_proto : proto option;
    (* fed-event counters for the resume watermark (the window ends
       cover blocks/deps/paths; calls and returns need their own) *)
    mutable calls_fed : int;
    mutable rets_fed : int;
    mutable events_since_flush : int;
    mutable shards : int;
  }

  type t = {
    analysis : PA.t;
    shard_events : int;
    track_peak : bool;
    values_from : (int -> int) option;
    s : state;
    (* durability hook: runs at the end of every [flush_shard], with the
       sink quiescent — the point to snapshot and journal *)
    mutable on_shard_flushed : (t -> unit) option;
    (* streaming machinery (rebuilt on resume, never marshalled) *)
    mutable live_iter : ((int -> unit) -> unit) option;
    mutable peak_live : int;
    mutable finished : bool;
  }

  let create ?(shard_events = default_shard_events) ?(track_peak = false)
      ?values_from ?on_shard_flushed analysis =
    {
      analysis;
      shard_events = max 1 shard_events;
      track_peak;
      values_from;
      s =
        {
          proto_of = Hashtbl.create 256;
          proto_list = [];
          nprotos = 0;
          next_slot = ref 0;
          next_copy = ref 0;
          st =
            {
              st_kind = Bytes.make 1024 '\000';
              st_prod = Array.make 1024 (-1);
              st_count = Array.make 1024 0;
              edges = Hashtbl.create 4096;
              slot_producers = Hashtbl.create 4096;
            };
          w_paths = Win.create ();
          w_cd = Win.create ();
          w_deps = Win.create ();
          w_vals = Win.create ();
          w_copy = Win.create ();
          w_inst = Win.create ();
          retained = Hashtbl.create 1024;
          vals_fed = 0;
          paths_done = 0;
          cd_done = 0;
          deps_done = 0;
          pending_vpos = Dyn.create ();
          pending_slot = Dyn.create ();
          pend_gid = Dyn.create ();
          pend_inst = Dyn.create ();
          pend_prod = Dyn.create ();
          def_execs = 0;
          dep_instances = 0;
          cd_instances = 0;
          first_node = -1;
          last_node = -1;
          prev_proto = None;
          calls_fed = 0;
          rets_fed = 0;
          events_since_flush = 0;
          shards = 0;
        };
      on_shard_flushed;
      live_iter = None;
      peak_live = 0;
      finished = false;
    }

  (* ---------------- checkpointing ---------------- *)

  let snapshot t =
    if t.values_from <> None then
      Wet_error.fail Wet_error.Build
        "snapshot of a batch sink (values_from is not restorable)";
    Marshal.to_string t.s []

  let watermark t : Wet_interp.Interp.watermark =
    {
      Wet_interp.Interp.wm_stmts = t.s.vals_fed;
      wm_blocks = Win.end_ t.s.w_cd;
      wm_deps = Win.end_ t.s.w_deps;
      wm_paths = Win.end_ t.s.w_paths;
      wm_calls = t.s.calls_fed;
      wm_rets = t.s.rets_fed;
    }

  let resume_from ?(shard_events = default_shard_events)
      ?(track_peak = false) ?on_shard_flushed ~snapshot analysis =
    let s : state =
      try Marshal.from_string snapshot 0
      with Failure _ ->
        Wet_error.fail Wet_error.Build "corrupt sink snapshot"
    in
    {
      analysis;
      shard_events = max 1 shard_events;
      track_peak;
      values_from = None;
      s;
      on_shard_flushed;
      live_iter = None;
      peak_live = 0;
      finished = false;
    }

  let check_open t what =
    if t.finished then Wet_error.fail Wet_error.Build "%s after finish" what

  let get_proto t key =
    let s = t.s in
    match Hashtbl.find_opt s.proto_of key with
    | Some p -> p
    | None ->
      let func, path = T.decode_path key in
      let p =
        make_proto ~next_slot:s.next_slot ~analysis:t.analysis ~id:s.nprotos
          ~copy_base:!(s.next_copy) func path
      in
      s.next_copy := !(s.next_copy) + Array.length p.p_stmts;
      Hashtbl.replace s.proto_of key p;
      s.proto_list <- p :: s.proto_list;
      s.nprotos <- s.nprotos + 1;
      p

  (* (copy, instance) of an already-replayed position: in the window,
     or retained across an eviction. A miss is a sink invariant
     violation, never silent divergence. *)
  let copy_of t pos =
    let s = t.s in
    if Win.mem s.w_copy pos then (Win.get s.w_copy pos, Win.get s.w_inst pos)
    else
      match Hashtbl.find_opt s.retained pos with
      | Some (_, c, i) -> (c, i)
      | None ->
        Wet_error.fail Wet_error.Build
          "internal: position %d referenced after eviction" pos

  let value_at t pos =
    match t.values_from with
    | Some f -> f pos
    | None ->
      if Win.mem t.s.w_vals pos then Win.get t.s.w_vals pos
      else (
        match Hashtbl.find_opt t.s.retained pos with
        | Some (v, _, _) -> v
        | None ->
          Wet_error.fail Wet_error.Build
            "internal: value at %d referenced after eviction" pos)

  (* Replay one path execution through the slot state machine — the
     per-shard compression step. Identical event-for-event to the old
     whole-trace replay loop, reading the windows where that read the
     materialized trace arrays. *)
  let process_exec t (p : proto) =
    let s = t.s in
    ensure_slots s.st !(s.next_slot);
    if s.first_node < 0 then s.first_node <- p.p_id;
    s.last_node <- p.p_id;
    (* dynamic control-flow edges between consecutive nodes *)
    (match s.prev_proto with
     | Some q ->
       Hashtbl.replace q.p_succs p.p_id ();
       Hashtbl.replace p.p_preds q.p_id ()
     | None -> ());
    s.prev_proto <- Some p;
    Dyn.push p.p_ts (s.paths_done + 1);
    let inst = p.p_nexec in
    let n = Array.length p.p_instrs in
    let bp = ref 0 in
    for o = 0 to n - 1 do
      (* advance block position *)
      if !bp + 1 < Array.length p.p_block_start
         && p.p_block_start.(!bp + 1) = o
      then incr bp;
      if p.p_block_start.(!bp) = o then begin
        (* block entry: consume the control-dependence event *)
        let cd_pos = Win.get s.w_cd s.cd_done in
        s.cd_done <- s.cd_done + 1;
        let gid = p.p_cd_slot.(!bp) in
        let nstmts_in_block =
          (if !bp + 1 < Array.length p.p_block_start then
             p.p_block_start.(!bp + 1)
           else n)
          - p.p_block_start.(!bp)
        in
        if cd_pos >= 0 then begin
          s.cd_instances <- s.cd_instances + nstmts_in_block;
          let pc, pi = copy_of t cd_pos in
          let local =
            pc >= p.p_copy_base && pc < p.p_copy_base + n && pi = inst
          in
          slot_event s.st gid ~inst ~pcopy:pc ~pinst:pi ~local
        end
        else slot_event s.st gid ~inst ~pcopy:(-1) ~pinst:(-1) ~local:false
      end;
      let pos = Win.end_ s.w_copy in
      Win.push s.w_copy (p.p_copy_base + o);
      Win.push s.w_inst inst;
      p.p_exec_pos.(o) <- pos;
      let nslots = p.p_slot_count.(o) in
      for sl = 0 to nslots - 1 do
        let producer = Win.get s.w_deps s.deps_done in
        s.deps_done <- s.deps_done + 1;
        p.p_exec_prod.(o).(sl) <- producer;
        let gid = p.p_slot_base.(o) + sl in
        if producer >= 0 then begin
          s.dep_instances <- s.dep_instances + 1;
          if producer >= Win.end_ s.w_copy then begin
            (* forward reference: the producer has not been replayed *)
            Dyn.push s.pend_gid gid;
            Dyn.push s.pend_inst inst;
            Dyn.push s.pend_prod producer
          end
          else begin
            let pc, pi = copy_of t producer in
            let local =
              pc >= p.p_copy_base && pc < p.p_copy_base + n && pi = inst
            in
            slot_event s.st gid ~inst ~pcopy:pc ~pinst:pi ~local
          end
        end
        else slot_event s.st gid ~inst ~pcopy:(-1) ~pinst:(-1) ~local:false
      done;
      if Instr.has_def p.p_instrs.(o) then s.def_execs <- s.def_execs + 1
    done;
    (* value groups: one tuple per group for this execution *)
    Array.iter
      (fun g ->
        let tuple =
          Array.fold_right
            (fun src acc ->
              match src with
              | Src_slot (o, s) ->
                let producer = p.p_exec_prod.(o).(s) in
                (if producer >= 0 then value_at t producer else 0) :: acc
              | Src_input o -> value_at t p.p_exec_pos.(o) :: acc)
            g.pg_sources []
        in
        if Array.length g.pg_sources = 0 then begin
          (* constant group: record unique values once *)
          if p.p_nexec = 0 then
            Array.iter
              (fun o -> Dyn.push p.p_uvals.(o) (value_at t p.p_exec_pos.(o)))
              g.pg_members
        end
        else begin
          match Hashtbl.find_opt g.pg_tuples tuple with
          | Some ix -> Dyn.push g.pg_pattern ix
          | None ->
            let ix = Hashtbl.length g.pg_tuples in
            Hashtbl.replace g.pg_tuples tuple ix;
            Dyn.push g.pg_pattern ix;
            Array.iter
              (fun o -> Dyn.push p.p_uvals.(o) (value_at t p.p_exec_pos.(o)))
              g.pg_members
        end)
      p.p_groups;
    p.p_nexec <- p.p_nexec + 1;
    t.s.paths_done <- t.s.paths_done + 1

  (* Replay every complete, patch-free path execution in the buffer.
     An execution is held back while (a) its trailing statements have
     not been fed yet, or (b) it contains a call whose return value has
     not been patched in — the patch targets buffered slots, so the
     whole range from the oldest pending call onward must stay
     unreplayed. Calls nest, so the oldest pending call (stack bottom)
     is the gate. *)
  let process_available t =
    let s = t.s in
    let min_pending =
      if Dyn.length s.pending_vpos = 0 then max_int
      else Dyn.get s.pending_vpos 0
    in
    let continue = ref true in
    while !continue && s.paths_done < Win.end_ s.w_paths do
      let key = Win.get s.w_paths s.paths_done in
      let p = get_proto t key in
      let n = Array.length p.p_instrs in
      let start = Win.end_ s.w_copy in
      if start + n > s.vals_fed || start + n > min_pending then
        continue := false
      else process_exec t p
    done

  let sample_live t =
    if t.track_peak then begin
      let live = (Gc.stat ()).Gc.live_words in
      if live > t.peak_live then begin
        t.peak_live <- live;
        Obs.set g_peak_live live
      end
    end

  (* Process what the buffer allows, then evict everything a future
     event can no longer reference. The keep-set is exact: positions
     the interpreter still holds live (register/memory shadows, branch
     histories, calling contexts), producers named by still-buffered
     dependence events, and unresolved forward references. Without a
     live iterator (trace replay) nothing is evicted. *)
  let flush_shard t =
    check_open t "flush_shard";
    let s = t.s in
    process_available t;
    (match t.live_iter with
     | None -> ()
     | Some live ->
       let boundary = Win.end_ s.w_copy in
       let fresh = Hashtbl.create 1024 in
       let keep pos =
         if pos >= 0 && pos < boundary && not (Hashtbl.mem fresh pos) then begin
           let entry =
             if Win.mem s.w_copy pos then
               let v =
                 match t.values_from with
                 | Some _ -> 0
                 | None -> Win.get s.w_vals pos
               in
               (v, Win.get s.w_copy pos, Win.get s.w_inst pos)
             else
               match Hashtbl.find_opt s.retained pos with
               | Some e -> e
               | None ->
                 Wet_error.fail Wet_error.Build
                   "internal: live position %d already evicted" pos
           in
           Hashtbl.replace fresh pos entry
         end
       in
       live keep;
       for i = s.deps_done to Win.end_ s.w_deps - 1 do
         keep (Win.get s.w_deps i)
       done;
       for i = s.cd_done to Win.end_ s.w_cd - 1 do
         keep (Win.get s.w_cd i)
       done;
       Dyn.iter (fun p -> keep p) s.pend_prod;
       s.retained <- fresh;
       Win.drop_to s.w_copy boundary;
       Win.drop_to s.w_inst boundary;
       (match t.values_from with
        | None -> Win.drop_to s.w_vals boundary
        | Some _ -> ()));
    Win.drop_to s.w_paths s.paths_done;
    Win.drop_to s.w_cd s.cd_done;
    Win.drop_to s.w_deps s.deps_done;
    s.shards <- s.shards + 1;
    Obs.incr c_shards;
    if Obs.enabled () then Obs.observe h_shard_events s.events_since_flush;
    s.events_since_flush <- 0;
    sample_live t;
    (* shard boundaries are the builder's progress pulse *)
    Wet_obs.Sink.tick ();
    (* quiescent point: windows trimmed, replay caught up — where a
       durable build snapshots itself *)
    match t.on_shard_flushed with Some f -> f t | None -> ()

  let bump t =
    t.s.events_since_flush <- t.s.events_since_flush + 1

  let feed_block t cd =
    check_open t "feed";
    Win.push t.s.w_cd cd;
    bump t

  let feed_dep t producer =
    check_open t "feed";
    Win.push t.s.w_deps producer;
    bump t

  let feed_value t v =
    check_open t "feed";
    (match t.values_from with
     | None -> Win.push t.s.w_vals v
     | Some _ -> ());
    t.s.vals_fed <- t.s.vals_fed + 1;
    bump t

  (* Shard boundaries land on path ends so the replay cursor can make
     progress on every flush. *)
  let feed_path t key =
    check_open t "feed";
    Win.push t.s.w_paths key;
    bump t;
    if t.s.events_since_flush >= t.shard_events then flush_shard t

  let feed_call t =
    check_open t "feed";
    Dyn.push t.s.pending_vpos t.s.vals_fed;
    Dyn.push t.s.pending_slot (Win.end_ t.s.w_deps - 1);
    t.s.calls_fed <- t.s.calls_fed + 1

  let feed_ret t v producer =
    check_open t "feed";
    if Dyn.length t.s.pending_vpos = 0 then
      Wet_error.fail Wet_error.Build "return patch with no pending call";
    let vpos = Dyn.pop t.s.pending_vpos in
    let slot = Dyn.pop t.s.pending_slot in
    (match t.values_from with
     | None -> Win.set t.s.w_vals vpos v
     | Some _ -> ());
    Win.set t.s.w_deps slot producer;
    t.s.rets_fed <- t.s.rets_fed + 1

  let events t =
    {
      Wet_interp.Interp.es_block = (fun cd -> feed_block t cd);
      es_dep = (fun p -> feed_dep t p);
      es_stmt = (fun v -> feed_value t v);
      es_path = (fun key -> feed_path t key);
      es_call = (fun () -> feed_call t);
      es_ret = (fun v p -> feed_ret t v p);
      es_live = (fun iter -> t.live_iter <- Some iter);
    }

  let shard_count t = t.s.shards

  let peak_live_words t = t.peak_live

  (* checkpoint-record summaries, reported alongside the watermark *)
  let pending_calls t = Dyn.length t.s.pending_vpos

  let retained_positions t = Hashtbl.length t.s.retained

  (* ---------------- splicing the shard streams ---------------- *)

  let finalize t : Wet.t =
    let analysis = t.analysis in
    let prog = analysis.PA.program in
    let st = t.s.st in
    let npath_execs = Win.end_ t.s.w_paths in
    let protos =
      let arr = Array.of_list (List.rev t.s.proto_list) in
      Array.sort (fun a b -> compare a.p_id b.p_id) arr;
      arr
    in
    let ncopies = !(t.s.next_copy) in
    let copy_node = Array.make ncopies 0 in
    let copy_stmt = Array.make ncopies 0 in
    let copy_uvals = Array.make ncopies None in
    let copy_group = Array.make ncopies (-1) in
    let copy_deps = Array.make ncopies [||] in
    let copy_local_out = Array.make ncopies [] in
    let copy_remote_out = Array.make ncopies [] in
    let stmt_copies = Array.make (Program.num_stmts prog) [] in
    (* shared label records *)
    let next_label = ref 0 in
    (* Sharing identical label sequences between the same node pair
       (paper §3.3). Keyed by a strong content hash; the candidate list
       resolves collisions by structural comparison. *)
    let label_cache = Hashtbl.create 1024 in
    let shared_label_values = ref 0 in
    let local_dep_instances = ref 0 in
    let mk_labels src_node dst_node (lb : label_builder) =
      let dst = Dyn.to_array lb.lb_dst and src = Dyn.to_array lb.lb_src in
      let module H = Wet_util.Hashing in
      let h = H.hash_window dst 0 (Array.length dst) in
      let h = H.fnv_fold (H.hash_window src 0 (Array.length src)) h in
      let key = (src_node, dst_node, Array.length dst, h) in
      let candidates =
        Option.value (Hashtbl.find_opt label_cache key) ~default:[]
      in
      match
        List.find_opt (fun (d, s, _) -> d = dst && s = src) candidates
      with
      | Some (_, _, labels) ->
        shared_label_values := !shared_label_values + Array.length dst;
        Obs.incr c_label_dedup_hits;
        labels
      | None ->
        let labels =
          {
            Wet.l_id = !next_label;
            l_dst = raw dst;
            l_src = raw src;
            l_len = Array.length dst;
          }
        in
        incr next_label;
        Hashtbl.replace label_cache key ((dst, src, labels) :: candidates);
        labels
    in
    let finalize_slot p gid ~dst_copy ~slot =
      if Bytes.get st.st_kind gid = '\001' then begin
        let producers =
          match Hashtbl.find_opt st.slot_producers gid with
          | Some l -> List.rev !l
          | None -> []
        in
        match producers with
        | [] -> Wet.No_dep
        | _ ->
          let edges =
            List.map
              (fun pc ->
                let lb = Hashtbl.find st.edges (gid, pc) in
                let labels = mk_labels copy_node.(pc) p.p_id lb in
                { Wet.e_src = pc; e_dst = dst_copy; e_slot = slot;
                  e_labels = labels })
              producers
          in
          List.iter
            (fun e ->
              copy_remote_out.(e.Wet.e_src) <-
                e :: copy_remote_out.(e.Wet.e_src))
            edges;
          Wet.Remote edges
      end
      else if st.st_count.(gid) = 0 then Wet.No_dep
      else begin
        let producer = st.st_prod.(gid) in
        local_dep_instances := !local_dep_instances + st.st_count.(gid);
        copy_local_out.(producer) <- dst_copy :: copy_local_out.(producer);
        Wet.Local producer
      end
    in
    (* copy-level tables must exist before finalize_slot reads
       [copy_node] for producers, so fill them first *)
    Array.iter
      (fun p ->
        Array.iteri
          (fun o stmt ->
            let c = p.p_copy_base + o in
            copy_node.(c) <- p.p_id;
            copy_stmt.(c) <- stmt;
            copy_group.(c) <- p.p_offset_group.(o);
            stmt_copies.(stmt) <- c :: stmt_copies.(stmt);
            if Instr.has_def p.p_instrs.(o) then
              copy_uvals.(c) <- Some (raw (Dyn.to_array p.p_uvals.(o))))
          p.p_stmts)
      protos;
    let nodes =
      Array.map
        (fun p ->
          let groups =
            Array.map
              (fun g ->
                {
                  Wet.g_members =
                    Array.map (fun o -> p.p_copy_base + o) g.pg_members;
                  g_nsources = Array.length g.pg_sources;
                  g_pattern =
                    (if Array.length g.pg_sources = 0 then None
                     else Some (raw (Dyn.to_array g.pg_pattern)));
                  g_nuniq =
                    (if Array.length g.pg_sources = 0 then 1
                     else Hashtbl.length g.pg_tuples);
                })
              p.p_groups
          in
          let cd =
            Array.mapi
              (fun bp _ ->
                finalize_slot p p.p_cd_slot.(bp)
                  ~dst_copy:(p.p_copy_base + p.p_block_start.(bp))
                  ~slot:(-1))
              p.p_blocks
          in
          {
            Wet.n_id = p.p_id;
            n_func = p.p_func;
            n_path = p.p_path;
            n_blocks = p.p_blocks;
            n_stmts = p.p_stmts;
            n_block_start = p.p_block_start;
            n_copy_base = p.p_copy_base;
            n_nexec = p.p_nexec;
            n_ts = raw (Dyn.to_array p.p_ts);
            n_succs =
              Array.of_list
                (List.sort compare
                   (Hashtbl.fold (fun k () acc -> k :: acc) p.p_succs []));
            n_preds =
              Array.of_list
                (List.sort compare
                   (Hashtbl.fold (fun k () acc -> k :: acc) p.p_preds []));
            n_groups = groups;
            n_cd = cd;
          })
        protos
    in
    Array.iter
      (fun p ->
        Array.iteri
          (fun o _ ->
            let c = p.p_copy_base + o in
            copy_deps.(c) <-
              Array.init p.p_slot_count.(o) (fun s ->
                  finalize_slot p (p.p_slot_base.(o) + s) ~dst_copy:c ~slot:s))
          p.p_stmts)
      protos;
    if Obs.enabled () then begin
      Obs.add c_intern_misses t.s.nprotos;
      Obs.add c_intern_hits (npath_execs - t.s.nprotos);
      Obs.add c_label_records !next_label;
      Obs.add c_label_shared_values !shared_label_values;
      Array.iter
        (fun p ->
          Array.iter
            (fun g ->
              Obs.incr c_groups;
              Obs.add c_group_members (Array.length g.pg_members);
              Obs.add c_group_uniq
                (if Array.length g.pg_sources = 0 then 1
                 else Hashtbl.length g.pg_tuples);
              Obs.add c_group_pattern (Dyn.length g.pg_pattern))
            p.p_groups)
        protos;
      Wet_obs.Span.set_attr "stmts" (Wet_obs.Span.Int t.s.vals_fed);
      Wet_obs.Span.set_attr "nodes" (Wet_obs.Span.Int t.s.nprotos)
    end;
    let stats =
      {
        Wet.stmts_executed = t.s.vals_fed;
        block_execs = Win.end_ t.s.w_cd;
        path_execs = npath_execs;
        def_execs = t.s.def_execs;
        dep_instances = t.s.dep_instances;
        cd_instances = t.s.cd_instances;
        local_dep_instances = !local_dep_instances;
        shared_label_values = !shared_label_values;
      }
    in
    {
      Wet.program = prog;
      analysis;
      nodes;
      copy_node;
      copy_stmt;
      copy_uvals;
      copy_group;
      copy_deps;
      copy_local_out;
      copy_remote_out;
      stmt_copies;
      first_node = (if t.s.first_node < 0 then 0 else t.s.first_node);
      last_node = (if t.s.last_node < 0 then 0 else t.s.last_node);
      stats;
      tier = `Tier1;
      damage = [];
      session0 = None;
    }

  let finish t =
    check_open t "finish";
    t.finished <- true;
    let s = t.s in
    (* Calls the run abandoned (a Halt below them) are never patched:
       their slots legitimately stay holes, exactly as the batch path
       leaves them, so they no longer gate the replay. *)
    Dyn.clear s.pending_vpos;
    Dyn.clear s.pending_slot;
    process_available t;
    if s.paths_done < Win.end_ s.w_paths then
      Wet_error.fail Wet_error.Build
        "event stream truncated: %d path executions lack their statements"
        (Win.end_ s.w_paths - s.paths_done);
    if
      s.deps_done < Win.end_ s.w_deps
      || s.cd_done < Win.end_ s.w_cd
      || Win.end_ s.w_copy < s.vals_fed
    then
      Wet_error.fail Wet_error.Build
        "trailing events not covered by a path execution";
    (* Return-value links point forward in the dynamic stream (the
       callee's Ret executes after the Call), so their events were
       deferred until the position maps are complete. A deferred
       producer is never in the consumer's node (callee paths are
       distinct from the caller's call path), so these events are never
       Local. *)
    for i = 0 to Dyn.length s.pend_gid - 1 do
      let producer = Dyn.get s.pend_prod i in
      let pc, pi = copy_of t producer in
      slot_event s.st (Dyn.get s.pend_gid i)
        ~inst:(Dyn.get s.pend_inst i) ~pcopy:pc ~pinst:pi ~local:false
    done;
    let wet = finalize t in
    sample_live t;
    wet
end

(* ------------------------------------------------------------------ *)
(* Batch entry points: feed a materialized trace through the sink.    *)
(* ------------------------------------------------------------------ *)

(* The trace arrays already carry the call-return patches applied, so
   the replay needs no pending-call bookkeeping; values resolve out of
   the trace instead of being buffered a second time. *)
let feed_trace sink (trace : T.t) =
  let dep_cursor = ref 0 in
  let block_cursor = ref 0 in
  let pos = ref 0 in
  Array.iter
    (fun key ->
      let p = Sink.get_proto sink key in
      let n = Array.length p.p_instrs in
      let bp = ref 0 in
      for o = 0 to n - 1 do
        if !bp + 1 < Array.length p.p_block_start
           && p.p_block_start.(!bp + 1) = o
        then incr bp;
        if p.p_block_start.(!bp) = o then begin
          Sink.feed_block sink trace.T.cd_producer.(!block_cursor);
          incr block_cursor
        end;
        for _s = 1 to p.p_slot_count.(o) do
          Sink.feed_dep sink trace.T.deps.(!dep_cursor);
          incr dep_cursor
        done;
        Sink.feed_value sink trace.T.values.(!pos);
        incr pos
      done;
      Sink.feed_path sink key)
    trace.T.paths

let build trace =
  Wet_obs.Span.with_ "build.tier1" (fun () ->
      let sink =
        Sink.create ~values_from:(fun p -> trace.T.values.(p))
          trace.T.analysis
      in
      feed_trace sink trace;
      Sink.finish sink)

(* ------------------------------------------------------------------ *)
(* Tier 2                                                             *)
(* ------------------------------------------------------------------ *)

let pack_tier2 (w : Wet.t) : Wet.t =
  if w.Wet.tier = `Tier2 then
    Wet_error.fail Wet_error.Pack "already packed";
  let pack_seq s =
    let arr = Stream.contents s in
    let s' = Stream.compress arr in
    note_packed_stream (Array.length arr) s';
    s'
  in
  let label_memo = Hashtbl.create 1024 in
  let pack_labels (l : Wet.labels) =
    match Hashtbl.find_opt label_memo l.Wet.l_id with
    | Some l' -> l'
    | None ->
      let l' =
        {
          Wet.l_id = l.Wet.l_id;
          l_dst = pack_seq l.Wet.l_dst;
          l_src = pack_seq l.Wet.l_src;
          l_len = l.Wet.l_len;
        }
      in
      Hashtbl.replace label_memo l.Wet.l_id l';
      l'
  in
  let edge_memo = Hashtbl.create 1024 in
  let pack_edge (e : Wet.edge) =
    let key = (e.Wet.e_src, e.Wet.e_dst, e.Wet.e_slot) in
    match Hashtbl.find_opt edge_memo key with
    | Some e' -> e'
    | None ->
      let e' = { e with Wet.e_labels = pack_labels e.Wet.e_labels } in
      Hashtbl.replace edge_memo key e';
      e'
  in
  let pack_source = function
    | Wet.No_dep -> Wet.No_dep
    | Wet.Local c -> Wet.Local c
    | Wet.Remote edges -> Wet.Remote (List.map pack_edge edges)
  in
  let nodes =
    Array.map
      (fun n ->
        {
          n with
          Wet.n_ts = pack_seq n.Wet.n_ts;
          n_groups =
            Array.map
              (fun g ->
                { g with Wet.g_pattern = Option.map pack_seq g.Wet.g_pattern })
              n.Wet.n_groups;
          n_cd = Array.map pack_source n.Wet.n_cd;
        })
      w.Wet.nodes
  in
  {
    w with
    Wet.nodes;
    copy_uvals = Array.map (Option.map pack_seq) w.Wet.copy_uvals;
    copy_deps = Array.map (Array.map pack_source) w.Wet.copy_deps;
    copy_remote_out = Array.map (List.map pack_edge) w.Wet.copy_remote_out;
    tier = `Tier2;
    session0 = None;
  }

let pack w = Wet_obs.Span.with_ "build.tier2" (fun () -> pack_tier2 w)

(* ------------------------------------------------------------------ *)
(* Streaming entry point: interpret straight into a sink.             *)
(* ------------------------------------------------------------------ *)

let run_streaming ?shard_events ?(track_peak = false) ?max_stmts
    ?interprocedural_cd ?analysis ~program ~input () =
  let analysis =
    match analysis with Some a -> a | None -> PA.of_program program
  in
  Wet_obs.Span.with_ "build.stream" (fun () ->
      let sink = Sink.create ?shard_events ~track_peak analysis in
      let _outputs, _stmts =
        Wet_interp.Interp.run_with_sink ?max_stmts ?interprocedural_cd
          ~analysis ~sink:(Sink.events sink) program ~input
      in
      Sink.finish sink)

(* ------------------------------------------------------------------ *)
(* Durable builds: checkpointed construction and crash recovery.      *)
(* ------------------------------------------------------------------ *)

module Checkpoint = struct
  module J = Wet_journal.Journal

  let tag_header = 0

  let tag_checkpoint = 1

  let fail fmt = Wet_error.fail Wet_error.Journal fmt

  type header = {
    h_program : Program.t;  (* post-optimization: resume never re-optimizes *)
    h_input : int array;
    h_shard_events : int;
    h_checkpoint_every : int;
    h_max_stmts : int option;
    h_interprocedural_cd : bool;
    h_tier2 : bool;
    h_label : string;
  }

  (* One durable point of the build. The snapshot carries the full sink
     state (pending-call LIFO and live keep-set included); the watermark
     and the summary counts ride alongside so tooling can report on a
     journal without unmarshalling snapshots. *)
  type ckpt = {
    c_snapshot : string;
    c_watermark : Wet_interp.Interp.watermark;
    c_shards : int;
    c_pending_calls : int;
    c_retained : int;
  }

  type resumed = {
    r_wet : Wet.t;
    r_header : header;
    r_replayed_shards : int;
    r_torn_tail : bool;
    r_resume_ms : float;
  }

  let append_checkpoint w ~checkpoint_every sink =
    if Sink.shard_count sink mod checkpoint_every = 0 then
      let c =
        {
          c_snapshot = Sink.snapshot sink;
          c_watermark = Sink.watermark sink;
          c_shards = Sink.shard_count sink;
          c_pending_calls = Sink.pending_calls sink;
          c_retained = Sink.retained_positions sink;
        }
      in
      J.append w ~tag:tag_checkpoint (Marshal.to_string c [])

  (* Run the interpretation with [sink], journaling a checkpoint per
     flushed shard, and close the writer even when an injected kill (or
     any other exception) unwinds — exactly what process death would do,
     since every append is already durable. *)
  let drive w ~header ?resume_at ?on_caught_up sink =
    let checkpoint_every = header.h_checkpoint_every in
    Sink.(
      sink.on_shard_flushed <-
        Some (fun s -> append_checkpoint w ~checkpoint_every s));
    let analysis = Sink.(sink.analysis) in
    Fun.protect
      ~finally:(fun () -> J.close w)
      (fun () ->
        let _outputs, _stmts =
          Wet_interp.Interp.run_with_sink ?max_stmts:header.h_max_stmts
            ~interprocedural_cd:header.h_interprocedural_cd ~analysis
            ?resume_at ?on_caught_up ~sink:(Sink.events sink)
            header.h_program ~input:header.h_input
        in
        Sink.finish sink)

  let build ?(shard_events = Sink.default_shard_events)
      ?(checkpoint_every = 1) ?(track_peak = false) ?max_stmts
      ?(interprocedural_cd = false) ?analysis ?(tier2 = false)
      ?(label = "") ?on_header_written ~journal ~program ~input () =
    let analysis =
      match analysis with Some a -> a | None -> PA.of_program program
    in
    let header =
      {
        h_program = program;
        h_input = input;
        h_shard_events = max 1 shard_events;
        h_checkpoint_every = max 1 checkpoint_every;
        h_max_stmts = max_stmts;
        h_interprocedural_cd = interprocedural_cd;
        h_tier2 = tier2;
        h_label = label;
      }
    in
    let w = J.create journal in
    (match
       J.append w ~tag:tag_header (Marshal.to_string header [])
     with
    | () -> ()
    | exception e ->
      J.close w;
      raise e);
    (* the header is durable: only now may the campaign arm its kills,
       so recovery always finds at least a replayable configuration *)
    (match on_header_written with Some f -> f () | None -> ());
    Wet_obs.Span.with_ "build.checkpointed" (fun () ->
        let sink = Sink.create ~shard_events ~track_peak analysis in
        drive w ~header sink)

  let header_of scan =
    match scan.J.records with
    | [] -> None
    | hd :: _ when hd.J.tag <> tag_header -> None
    | hd :: rest -> (
      match (Marshal.from_string hd.J.payload 0 : header) with
      | header -> Some (header, rest)
      | exception Failure _ -> None)

  let last_checkpoint rest =
    List.fold_left
      (fun _acc (r : J.record) ->
        if r.J.tag <> tag_checkpoint then
          fail "unknown journal record tag %d" r.J.tag
        else
          match (Marshal.from_string r.J.payload 0 : ckpt) with
          | c -> Some c
          | exception Failure _ -> fail "undecodable checkpoint record")
      None rest

  (* Inspection without recovery: header + latest checkpoint summary,
     for [wet fsck]-style reporting. *)
  let describe journal =
    match J.read journal with
    | Error m -> Error m
    | Ok scan -> (
      match header_of scan with
      | None -> Error (journal ^ ": no intact header record")
      | Some (header, rest) -> Ok (header, last_checkpoint rest, scan.J.torn))

  let resume ?(track_peak = false) ~journal () =
    let scan =
      match J.read journal with Ok s -> s | Error m -> fail "%s" m
    in
    let header, rest =
      match header_of scan with
      | Some hr -> hr
      | None ->
        fail
          "%s: no intact header record — the build died before its \
           configuration was durable; restart it from scratch"
          journal
    in
    let ckpt = last_checkpoint rest in
    (* drop any torn tail, then keep journaling subsequent shards so a
       second death during recovery is itself recoverable *)
    let w = J.reopen journal ~at:scan.J.intact_bytes in
    let analysis =
      match
        PA.of_program header.h_program
      with
      | a -> a
      | exception e ->
        J.close w;
        raise e
    in
    let t0 = Wet_obs.Clock.now_ns () in
    let caught_ms = ref 0. in
    let on_caught_up () =
      caught_ms := float_of_int (Wet_obs.Clock.now_ns () - t0) /. 1e6
    in
    let sink, resume_at, replayed =
      match ckpt with
      | None ->
        (* header only: nothing checkpointed, rebuild from the start *)
        ( Sink.create ~shard_events:header.h_shard_events ~track_peak
            analysis,
          None,
          0 )
      | Some c ->
        ( Sink.resume_from ~shard_events:header.h_shard_events ~track_peak
            ~snapshot:c.c_snapshot analysis,
          Some c.c_watermark,
          c.c_shards )
    in
    let wet =
      Wet_obs.Span.with_ "build.resume" (fun () ->
          drive w ~header ?resume_at ~on_caught_up sink)
    in
    J.note_replayed_shards replayed;
    J.note_resume_ms !caught_ms;
    {
      r_wet = wet;
      r_header = header;
      r_replayed_shards = replayed;
      r_torn_tail = scan.J.torn;
      r_resume_ms = !caught_ms;
    }
end
