(** The sectioned, checksummed WET container format (version 3).

    The previous format was a bare [Marshal] dump behind an 8-byte
    magic: one flipped bit meant [Failure], garbage data, or a segfault
    deep inside the unmarshaller. Version 2 is self-describing — a fixed
    header (magic, version, tier, flags), a section table with one entry
    per logical payload (offset, length, CRC-32), the payloads, and a
    whole-file footer checksum — so a damaged file is {e diagnosable}:
    corruption is detected before unmarshalling and attributed to the
    section it hit, and every intact section can still be loaded.
    Version 3 keeps the same layout; the bump fences off v2 stream
    payloads, whose marshalled record shape predates stream telemetry
    (a CRC cannot catch that mismatch).

    Layout (all integers big-endian):
    {v
    0   "WETOCaml"                      8-byte magic
    8   version                         u32 (= 3)
    12  tier                            u8 (1 | 2)
    13  flags                           u8 (reserved, 0)
    14  section count                   u32
    18  table: per section
          name length  u8
          name         bytes
          offset       u64   (absolute file offset of the payload)
          length       u64
          crc32        u32   (of the payload bytes)
    ..  payloads, concatenated in table order
    end "WETF" + u32 crc32 of every byte before the footer
    v}

    Sections, in file order (the required ones first, so a truncated
    tail loses only salvageable data): [meta], [program], [analysis],
    [graph.nodes], [copy.map] — required — then [labels.ts],
    [labels.values], [labels.deps], [index.out], [index.stmts].
    Each payload is Marshal-encoded individually, so a bad section is
    isolated. [index.stmts] is reconstructed from [copy.map] when lost;
    the other salvageable sections are replaced by placeholders and
    recorded in {!Wet.t.damage}. Saving a salvaged WET omits its damaged
    sections and records them in [meta], so damage survives round trips
    honestly. *)

(** Why a container (or one of its sections) cannot be trusted. *)
type fault =
  | Not_wet  (** the leading magic is absent *)
  | Bad_version of int  (** including legacy v1 monolithic files *)
  | Truncated of { what : string; offset : int }
      (** the file ends (at [offset]) inside [what] *)
  | Bad_section of {
      name : string;
      offset : int;
      length : int;
      expected_crc : int;
      actual_crc : int;
    }  (** a section's payload fails its CRC *)
  | Bad_footer of { expected_crc : int; actual_crc : int }
      (** sections pass but the whole-file checksum does not (header or
          table corruption) *)
  | Malformed of string  (** structurally impossible field values *)

(** One line of human-readable diagnosis, e.g.
    ["section 'labels.values' corrupt (crc mismatch at offset 812, 4096
    bytes: expected 0x1c291ca3, got 0x5d3f00c1)"]. *)
val fault_message : fault -> string

type section_status = {
  sec_name : string;
  sec_offset : int;
  sec_length : int;
  sec_crc : int;  (** the stored checksum *)
  sec_fault : fault option;  (** [None] = intact *)
}

(** The fsck view of a container: everything learnable without
    unmarshalling a byte. *)
type health = {
  hl_version : int;
  hl_tier : [ `Tier1 | `Tier2 ];
  hl_file_bytes : int;
  hl_sections : section_status list;  (** in table order *)
  hl_footer : fault option;
}

val format_version : int

(** Sections without which no WET can be assembled. *)
val required : string -> bool

(** Serialize a WET (either tier) to container bytes. Sections named in
    [w.damage] are omitted and recorded in the [meta] section. *)
val encode : Wet.t -> string

(** Checksum-check the container without unmarshalling anything.
    [Error] only for header-level faults (bad magic / version /
    truncated header or table) that prevent enumerating sections. *)
val examine : string -> (health, fault) result

(** Parse, verify, and assemble. Strict mode ([salvage = false], the
    default) returns the first fault found — section faults in table
    order, then the footer. With [~salvage:true], every intact section
    is loaded, damaged salvageable sections become placeholders recorded
    in {!Wet.t.damage}, and only a fault in a {!required} section (or
    the header) is an error. Either way the result's label sharing is
    re-interned and no cursor is moved. *)
val decode : ?salvage:bool -> string -> (Wet.t * health, fault) result
