(** The Whole Execution Trace: a labeled graph over Ball–Larus path nodes
    (paper §2, after the §3 customized compression).

    {b Nodes} are executed Ball–Larus paths. A node owns one {e statement
    copy} per statement occurrence along its path (paper §3.1: a basic
    block belonging to several paths is duplicated per path). Each node
    execution gives every copy in it exactly one execution instance, so a
    copy's local instance index equals the node execution index, and the
    node's timestamp sequence maps instances to global time.

    {b Node labels} (paper §3.2): the timestamp sequence, and the value
    sequences of def-bearing copies stored as per-copy unique-value
    arrays ([UVals]) plus one shared index [Pattern] per input group —
    [Values(c)(i) = UVals(c)(Pattern(group c)(i))].

    {b Edge labels} (paper §3.3): data/control dependence edges carry
    [(consumer instance, producer instance)] pair sequences in {e local}
    timestamps. Edges whose producer always lies in the same node
    execution carry no label at all ({!Local}); labeled edges between the
    same pair of nodes with identical sequences share one copy.

    Every label sequence is a {!Wet_bistream.Stream.t}: raw arrays after
    tier-1, bidirectionally compressed streams after tier-2
    ({!Builder.pack}). Queries work identically on both.

    {b Concurrency contract.} A {!t} is an immutable container: share it
    freely between threads and domains. All traversal state lives in
    {!Session.t} handles, each of which is single-owner — one session
    per concurrent reader ([wet serve] opens one per connection). The
    deprecated wet-taking query functions at the bottom read through one
    implicit {!default_session} and are therefore only safe
    single-threaded. *)

module Stream = Wet_bistream.Stream

type seq = Stream.t

type copy_id = int
(** Global dense id of a statement copy. *)

type node_id = int

(** Where a dependence slot's producer comes from. *)
type dep_source =
  | No_dep  (** the operand was never written (initial zeros) *)
  | Local of copy_id
      (** producer is this copy, in the same node and the same execution
          instance; no label is stored (paper §3.3, local edges) *)
  | Remote of edge list
      (** labeled dependence edges; a given consumer instance appears in
          exactly one of them *)

and edge = {
  e_src : copy_id;
  e_dst : copy_id;
  e_slot : int;
  e_labels : labels;
}

and labels = {
  l_id : int;  (** unique id; shared edges share the same [labels] *)
  l_dst : seq;  (** consumer instances, strictly ascending *)
  l_src : seq;  (** producer instances, aligned with [l_dst] *)
  l_len : int;
}

(** A group of copies depending on the same inputs (paper §3.2). *)
type group = {
  g_members : copy_id array;  (** def-bearing copies, in path order *)
  g_nsources : int;  (** distinct external inputs feeding the group *)
  g_pattern : seq option;
      (** [None] for constant groups (no sources): every instance reads
          [UVals(c)(0)] *)
  g_nuniq : int;  (** number of distinct input tuples observed *)
}

type node = {
  n_id : node_id;
  n_func : int;
  n_path : int;  (** Ball–Larus path id within the function *)
  n_blocks : int array;  (** block labels along the path *)
  n_stmts : int array;  (** static statement ids, in path order *)
  n_block_start : int array;
      (** index in [n_stmts] of each block's first statement *)
  n_copy_base : copy_id;  (** copies are [n_copy_base + offset] *)
  n_nexec : int;  (** number of executions of this path *)
  n_ts : seq;  (** global timestamps, one per execution *)
  n_succs : node_id array;  (** dynamic control-flow successor nodes *)
  n_preds : node_id array;
  n_groups : group array;
  n_cd : dep_source array;
      (** control-dependence source per block position *)
}

(** Build-time statistics used for the "original" (uncompressed,
    per-basic-block) size accounting of §5. *)
type stats = {
  stmts_executed : int;
  block_execs : int;
  path_execs : int;
  def_execs : int;  (** executions of statements with a def port *)
  dep_instances : int;  (** dynamic dependences with a real producer *)
  cd_instances : int;  (** per-statement control-dependence instances *)
  local_dep_instances : int;  (** dependences inferable from node labels *)
  shared_label_values : int;
      (** label-sequence values eliminated by cross-edge sharing *)
}

(** {1 The immutable container}

    Every field but the memoized default session is read-only after
    construction, and the streams inside are pristine compressed bodies
    that queries never mutate — a [t] may be shared between any number
    of concurrent sessions. *)

type t = {
  program : Wet_ir.Program.t;
  analysis : Wet_cfg.Program_analysis.t;
  nodes : node array;
  copy_node : node_id array;
  copy_stmt : int array;  (** static statement id per copy *)
  copy_uvals : seq option array;  (** unique values of def-bearing copies *)
  copy_group : int array;  (** group index within the node, or -1 *)
  copy_deps : dep_source array array;
      (** per copy, per dependence slot (register uses first, then the
          memory / return-value slot; see
          {!Wet_ir.Instr.dyn_use_count}) *)
  copy_local_out : copy_id list array;
      (** copies consuming this copy through [Local] slots *)
  copy_remote_out : edge list array;  (** out-edges (forward traversal) *)
  stmt_copies : copy_id list array;
      (** copies of each static statement, across nodes *)
  first_node : node_id;  (** node holding timestamp 1 *)
  last_node : node_id;
  stats : stats;
  tier : [ `Tier1 | `Tier2 ];
  damage : string list;
      (** container sections that were corrupt and replaced by
          placeholders during a salvage load ({!Store.load}
          [~salvage:true]); [[]] for a built or cleanly loaded WET.
          Queries touching a damaged section raise {!Missing_stream}. *)
  mutable session0 : session option;
      (** memoized implicit session behind the deprecated wet-taking
          functions; managed by {!default_session} and {!rewind} *)
}

(** One reader's private traversal state over a shared container; see
    {!Session}. *)
and session

(** Raised (with the container section name, e.g. ["labels.values"])
    when a query touches data lost to a salvage load. *)
exception Missing_stream of string

(** [damaged t sec] is [true] if section [sec] was salvaged away. *)
val damaged : t -> string -> bool

(** Number of statement copies. *)
val num_copies : t -> int

(** The node owning a copy. *)
val node_of_copy : t -> copy_id -> node

(** Offset of a copy inside its node's [n_stmts]. *)
val copy_offset : t -> copy_id -> int

(** The static statement of a copy. *)
val instr_of_copy : t -> copy_id -> Wet_ir.Instr.t

(** Copies of a given static statement, across all nodes. *)
val copies_of_stmt : t -> int -> copy_id list

(** Drop all implicit traversal state — every stream's default cursor
    and the memoized default session — returning the container to the
    canonical state of a freshly built WET. {!Store} rewinds on save
    and load so persistence is deterministic regardless of prior query
    activity. Explicit {!open_session} handles hold private cursors and
    are unaffected. *)
val rewind : t -> unit

(** Structural invariant checker: stream lengths consistent with node
    execution counts, timestamps strictly increasing per path and
    covering [1..path_execs] exactly once, dependence edges referencing
    live instances, copy maps and indexes mutually consistent. Returns
    human-readable violations ([[]] = sound). Checks that would touch a
    {!damage}d section are skipped, so a salvaged WET validates clean
    when its surviving sections are sound. Reads pure stream snapshots
    ({!Wet_bistream.Stream.contents}), so it never moves any cursor —
    safe to run concurrently with live sessions. *)
val validate : t -> string list

(** {1 Sessions}

    A session owns one cursor per stream (timestamp cursors minted
    eagerly, label cursors lazily), a {!Wet_bistream.Telemetry.tally}
    its decode work accounts to, and a {!Wet_watch.Explain.recorder}
    its cursor movements report to when armed. Opening one is
    O(streams); no decompression happens until a query walks a cursor.

    Sessions are single-owner: never share one between threads. Any
    interleaving of queries on N sessions over one container produces
    answers byte-identical to running them serially on one session —
    this is what lets [wet serve] answer reads concurrently. *)

(** [open_session t] mints a private session over [t] with a fresh
    tally and a fresh (disarmed) recorder.
    @param strict raise a [Wet_error] [Query] error immediately if [t]
      carries salvage {!damage} (default [false]: the session opens and
      queries on damaged sections raise {!Missing_stream} lazily, like
      the wet-taking API).
    @param tally account decode work to an existing tally instead.
    @param recorder report explain touches to an existing recorder. *)
val open_session :
  ?strict:bool ->
  ?tally:Wet_bistream.Telemetry.tally ->
  ?recorder:Wet_watch.Explain.recorder ->
  t ->
  session

(** The implicit session backing the deprecated wet-taking functions:
    memoized on the container, reads through each stream's default
    cursor, accounts to the process-global tally and explain recording.
    Single-threaded use only. *)
val default_session : t -> session

module Session : sig
  type wet := t

  type t = session

  (** The shared container this session reads. *)
  val wet : t -> wet

  (** The tally this session's decode work accounts to. *)
  val tally : t -> Wet_bistream.Telemetry.tally

  (** The recorder this session's cursor movements report to. *)
  val recorder : t -> Wet_watch.Explain.recorder

  (** {2 Timestamp-cursor primitives}

      The per-node timestamp cursors driving control-flow walks.
      Step/seek/find report to the session's recorder when armed; peeks
      move no cursor and are free. *)

  val ts_cursor : t -> node -> Stream.Cursor.t

  val ts_pos : t -> node -> int

  val ts_seek : t -> node -> int -> unit

  val ts_step_forward : t -> node -> int

  val ts_step_backward : t -> node -> int

  val ts_peek_forward : t -> node -> int

  val ts_peek_backward : t -> node -> int

  (** [ts_find s n v] is the execution index of node [n] holding global
      timestamp [v], walking from the cursor's current position. *)
  val ts_find : t -> node -> int -> int option

  (** This session's [(dst, src)] cursor pair over an edge label
      (minted on first use, memoized by [l_id]). *)
  val label_cursors : t -> labels -> Stream.Cursor.t * Stream.Cursor.t

  (** {2 Label queries} *)

  (** [value_of_copy s c i] reconstructs the value produced by instance
      [i] of copy [c] through the group pattern and unique values.
      Raises a [Wet_error] [Query] error if [c] has no def port. *)
  val value_of_copy : t -> copy_id -> int -> int

  (** [resolve_dep s c i slot] is the producer instance
      [(copy, instance)] feeding slot [slot] of instance [i] of copy
      [c], or [None] for [No_dep] or an instance the slot has no event
      for. *)
  val resolve_dep : t -> copy_id -> int -> int -> (copy_id * int) option

  (** [resolve_cd s c i] is the branch instance instance [i] of copy
      [c] is control dependent on, if any. *)
  val resolve_cd : t -> copy_id -> int -> (copy_id * int) option

  (** [timestamp s c i] is the global timestamp of instance [i] of copy
      [c]'s node execution (moves the node's timestamp cursor). *)
  val timestamp : t -> copy_id -> int -> int
end

(** {1 Deprecated implicit-session queries}

    Thin wrappers over {!default_session} — single-threaded use only;
    concurrent readers must open their own session. *)

val value_of_copy : t -> copy_id -> int -> int
[@@deprecated "use Wet.Session.value_of_copy"]

val resolve_dep : t -> copy_id -> int -> int -> (copy_id * int) option
[@@deprecated "use Wet.Session.resolve_dep"]

val resolve_cd : t -> copy_id -> int -> (copy_id * int) option
[@@deprecated "use Wet.Session.resolve_cd"]

val timestamp : t -> copy_id -> int -> int
[@@deprecated "use Wet.Session.timestamp"]

(** Find the position of [target] in an ascending stream by cursor
    stepping of the stream's default cursor; [None] if absent. *)
val find_in_ascending : seq -> int -> int option
[@@deprecated "use Stream.Cursor.find_ascending"]
