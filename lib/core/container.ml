module Stream = Wet_bistream.Stream
module Crc32 = Wet_util.Crc32

(* v3 keeps the v2 section layout but the marshalled stream payloads
   gained telemetry fields; loading a v2 payload into the new record
   layout would not fail the CRC, so the version must fence it off.
   v4: the stream record split into an immutable body plus an optional
   default cursor (the container/session redesign) — the marshalled
   stream layout changed again. *)
let format_version = 4

let magic = "WETOCaml"

let footer_magic = "WETF"

(* Header = magic + version + tier + flags + section count. *)
let header_size = 8 + 4 + 1 + 1 + 4

let footer_size = String.length footer_magic + 4

type fault =
  | Not_wet
  | Bad_version of int
  | Truncated of { what : string; offset : int }
  | Bad_section of {
      name : string;
      offset : int;
      length : int;
      expected_crc : int;
      actual_crc : int;
    }
  | Bad_footer of { expected_crc : int; actual_crc : int }
  | Malformed of string

let fault_message = function
  | Not_wet -> "not a WET container (bad magic)"
  | Bad_version v ->
    Printf.sprintf "container version %d, expected %d%s" v format_version
      (if v = 1 then " (legacy v1 monolithic format; rebuild with `wet build`)"
       else if v > 1 && v < format_version then
         " (older sectioned format; rebuild with `wet build`)"
       else "")
  | Truncated { what; offset } ->
    Printf.sprintf "truncated inside %s (file ends at byte %d)" what offset
  | Bad_section { name; offset; length; expected_crc; actual_crc } ->
    Printf.sprintf
      "section '%s' corrupt (crc mismatch at offset %d, %d bytes: expected \
       0x%08x, got 0x%08x)"
      name offset length expected_crc actual_crc
  | Bad_footer { expected_crc; actual_crc } ->
    Printf.sprintf
      "footer checksum mismatch (expected 0x%08x, got 0x%08x; header or \
       section table corrupt)"
      expected_crc actual_crc
  | Malformed m -> "malformed container: " ^ m

type section_status = {
  sec_name : string;
  sec_offset : int;
  sec_length : int;
  sec_crc : int;
  sec_fault : fault option;
}

type health = {
  hl_version : int;
  hl_tier : [ `Tier1 | `Tier2 ];
  hl_file_bytes : int;
  hl_sections : section_status list;
  hl_footer : fault option;
}

exception Fail of fault

let fail f = raise (Fail f)

let required = function
  | "meta" | "program" | "analysis" | "graph.nodes" | "copy.map" -> true
  | _ -> false

(* The [meta] section: everything needed to size placeholder arrays for
   salvage, plus the damage a previous salvage already recorded. *)
type meta = {
  m_tier : [ `Tier1 | `Tier2 ];
  m_first : int;
  m_last : int;
  m_stats : Wet.stats;
  m_nnodes : int;
  m_ncopies : int;
  m_nstmts : int;
  m_damage : string list;
}

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let empty_seq () = Stream.compress_with `Raw [||]

let sections_of (w : Wet.t) =
  let mar v = Marshal.to_string v [] in
  let meta =
    {
      m_tier = w.Wet.tier;
      m_first = w.Wet.first_node;
      m_last = w.Wet.last_node;
      m_stats = w.Wet.stats;
      m_nnodes = Array.length w.Wet.nodes;
      m_ncopies = Array.length w.Wet.copy_node;
      m_nstmts = Array.length w.Wet.stmt_copies;
      m_damage = w.Wet.damage;
    }
  in
  (* Timestamps live in their own section: the graph is stored with
     empty placeholder streams and re-spliced on load. *)
  let stripped =
    Array.map (fun n -> { n with Wet.n_ts = empty_seq () }) w.Wet.nodes
  in
  let all =
    [
      ("meta", mar meta);
      ("program", mar w.Wet.program);
      ("analysis", mar w.Wet.analysis);
      ("graph.nodes", mar stripped);
      ("copy.map", mar (w.Wet.copy_node, w.Wet.copy_stmt, w.Wet.copy_group));
      ("labels.ts", mar (Array.map (fun n -> n.Wet.n_ts) w.Wet.nodes));
      ("labels.values", mar w.Wet.copy_uvals);
      ("labels.deps", mar w.Wet.copy_deps);
      ("index.out", mar (w.Wet.copy_local_out, w.Wet.copy_remote_out));
      ("index.stmts", mar w.Wet.stmt_copies);
    ]
  in
  List.filter (fun (n, _) -> not (List.mem n w.Wet.damage)) all

let add_u32 b v =
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_u64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let encode (w : Wet.t) =
  let secs = sections_of w in
  let table_size =
    List.fold_left (fun a (n, _) -> a + 1 + String.length n + 20) 0 secs
  in
  let b = Buffer.create (64 * 1024) in
  Buffer.add_string b magic;
  add_u32 b format_version;
  Buffer.add_char b (match w.Wet.tier with `Tier1 -> '\001' | `Tier2 -> '\002');
  Buffer.add_char b '\000';
  add_u32 b (List.length secs);
  let off = ref (header_size + table_size) in
  List.iter
    (fun (name, payload) ->
      Buffer.add_char b (Char.chr (String.length name));
      Buffer.add_string b name;
      add_u64 b !off;
      add_u64 b (String.length payload);
      add_u32 b (Crc32.string payload);
      off := !off + String.length payload)
    secs;
  List.iter (fun (_, payload) -> Buffer.add_string b payload) secs;
  let body = Buffer.contents b in
  let f = Buffer.create footer_size in
  Buffer.add_string f footer_magic;
  add_u32 f (Crc32.string body);
  body ^ Buffer.contents f

(* ------------------------------------------------------------------ *)
(* Parsing and verification                                           *)
(* ------------------------------------------------------------------ *)

let get_u8 s off what =
  if off >= String.length s then
    fail (Truncated { what; offset = String.length s })
  else Char.code s.[off]

let get_u32 s off what =
  if off + 4 > String.length s then
    fail (Truncated { what; offset = String.length s });
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let get_u64 s off what =
  if off + 8 > String.length s then
    fail (Truncated { what; offset = String.length s });
  if Char.code s.[off] <> 0 then
    fail (Malformed (Printf.sprintf "%s: 64-bit field out of range" what));
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

(* Header and section table; raises [Fail] — nothing can be salvaged
   when the table itself is unreadable. *)
let parse_header s =
  let len = String.length s in
  if len < String.length magic then begin
    if String.sub magic 0 len = s then
      fail (Truncated { what = "magic"; offset = len })
    else fail Not_wet
  end;
  if String.sub s 0 (String.length magic) <> magic then fail Not_wet;
  let v = get_u32 s 8 "version field" in
  if v <> format_version then fail (Bad_version v);
  let tier =
    match get_u8 s 12 "tier byte" with
    | 1 -> `Tier1
    | 2 -> `Tier2
    | t -> fail (Malformed (Printf.sprintf "unknown tier %d" t))
  in
  ignore (get_u8 s 13 "flags byte");
  let count = get_u32 s 14 "section count" in
  if count < 1 || count > 64 then
    fail (Malformed (Printf.sprintf "unreasonable section count %d" count));
  let pos = ref header_size in
  let entry () =
    let nl = get_u8 s !pos "section table" in
    if nl < 1 || nl > 64 then
      fail (Malformed "section name length outside [1,64]");
    if !pos + 1 + nl > len then
      fail (Truncated { what = "section table"; offset = len });
    let name = String.sub s (!pos + 1) nl in
    let off = get_u64 s (!pos + 1 + nl) "section table" in
    let slen = get_u64 s (!pos + 1 + nl + 8) "section table" in
    let crc = get_u32 s (!pos + 1 + nl + 16) "section table" in
    pos := !pos + 1 + nl + 20;
    (name, off, slen, crc)
  in
  let entries = ref [] in
  for _ = 1 to count do
    entries := entry () :: !entries
  done;
  (tier, List.rev !entries, !pos)

let section_status s ~table_end (name, off, slen, crc) =
  let len = String.length s in
  let fault =
    if off < table_end || slen < 0 then
      Some
        (Malformed
           (Printf.sprintf "section '%s' extent [%d,+%d) overlaps the header"
              name off slen))
    else if off + slen > len then
      Some
        (Truncated
           { what = Printf.sprintf "section '%s'" name; offset = len })
    else
      let actual = Crc32.sub s ~pos:off ~len:slen in
      if actual <> crc then
        Some
          (Bad_section
             { name; offset = off; length = slen; expected_crc = crc;
               actual_crc = actual })
      else None
  in
  { sec_name = name; sec_offset = off; sec_length = slen; sec_crc = crc;
    sec_fault = fault }

let footer_status s =
  let len = String.length s in
  if len < header_size + footer_size then
    Some (Truncated { what = "footer"; offset = len })
  else if
    String.sub s (len - footer_size) (String.length footer_magic)
    <> footer_magic
  then Some (Truncated { what = "footer"; offset = len })
  else begin
    let stored =
      try get_u32 s (len - 4) "footer" with Fail f -> raise (Fail f)
    in
    let actual = Crc32.sub s ~pos:0 ~len:(len - footer_size) in
    if stored <> actual then
      Some (Bad_footer { expected_crc = stored; actual_crc = actual })
    else None
  end

let examine_exn s =
  let tier, entries, table_end = parse_header s in
  let sections = List.map (section_status s ~table_end) entries in
  {
    hl_version = format_version;
    hl_tier = tier;
    hl_file_bytes = String.length s;
    hl_sections = sections;
    hl_footer = footer_status s;
  }

let examine s = try Ok (examine_exn s) with Fail f -> Error f

(* ------------------------------------------------------------------ *)
(* Assembly                                                           *)
(* ------------------------------------------------------------------ *)

(* Re-intern label sharing lost by per-section marshalling: edges that
   shared one [labels] record before the save (across [copy_deps],
   [copy_remote_out] and the nodes' control-dependence slots) share one
   again after it, keyed by [l_id]. *)
let reshare (nodes : Wet.node array) copy_deps copy_remote_out =
  let memo = Hashtbl.create 256 in
  let labels (l : Wet.labels) =
    match Hashtbl.find_opt memo l.Wet.l_id with
    | Some l' -> l'
    | None ->
      Hashtbl.add memo l.Wet.l_id l;
      l
  in
  let edge (e : Wet.edge) = { e with Wet.e_labels = labels e.Wet.e_labels } in
  let source = function
    | Wet.Remote es -> Wet.Remote (List.map edge es)
    | s -> s
  in
  Array.iter
    (fun (n : Wet.node) ->
      Array.iteri (fun i s -> n.Wet.n_cd.(i) <- source s) n.Wet.n_cd)
    nodes;
  Array.iter (fun slots -> Array.iteri (fun i s -> slots.(i) <- source s) slots)
    copy_deps;
  Array.iteri (fun c es -> copy_remote_out.(c) <- List.map edge es)
    copy_remote_out

let decode_exn ~salvage s =
  let health = examine_exn s in
  if not salvage then begin
    List.iter
      (fun st -> match st.sec_fault with Some f -> fail f | None -> ())
      health.hl_sections;
    match health.hl_footer with Some f -> fail f | None -> ()
  end;
  let find name =
    List.find_opt (fun st -> st.sec_name = name) health.hl_sections
  in
  let unmarshal name st =
    try Marshal.from_string (String.sub s st.sec_offset st.sec_length) 0
    with _ ->
      fail
        (Malformed
           (Printf.sprintf "section '%s' does not unmarshal (version skew?)"
              name))
  in
  let req name =
    match find name with
    | Some ({ sec_fault = None; _ } as st) -> unmarshal name st
    | Some { sec_fault = Some f; _ } -> fail f
    | None ->
      fail (Malformed (Printf.sprintf "required section '%s' missing" name))
  in
  let damage = ref [] in
  let mark name = if not (List.mem name !damage) then damage := name :: !damage in
  (* A salvageable section: absent (omitted by an earlier salvage save)
     or damaged means placeholder + damage mark; damage in strict mode
     was already raised above. *)
  let opt name ~default ~use =
    match find name with
    | Some ({ sec_fault = None; _ } as st) -> (
      try use (unmarshal name st)
      with Fail f -> if salvage then (mark name; default ()) else fail f)
    | Some { sec_fault = Some f; _ } ->
      if salvage then (mark name; default ()) else fail f
    | None ->
      mark name;
      default ()
  in
  let meta : meta = req "meta" in
  let program : Wet_ir.Program.t = req "program" in
  let analysis : Wet_cfg.Program_analysis.t = req "analysis" in
  let nodes : Wet.node array = req "graph.nodes" in
  let copy_node, copy_stmt, copy_group =
    (req "copy.map" : int array * int array * int array)
  in
  let ncopies = meta.m_ncopies in
  if Array.length nodes <> meta.m_nnodes then
    fail (Malformed "graph.nodes disagrees with meta node count");
  if
    Array.length copy_node <> ncopies
    || Array.length copy_stmt <> ncopies
    || Array.length copy_group <> ncopies
  then fail (Malformed "copy.map disagrees with meta copy count");
  Array.iter
    (fun nid ->
      if nid < 0 || nid >= meta.m_nnodes then
        fail (Malformed "copy.map references a node out of range"))
    copy_node;
  let nodes =
    opt "labels.ts"
      ~default:(fun () -> nodes)
      ~use:(fun (ts : Wet.seq array) ->
        if Array.length ts <> Array.length nodes then
          fail (Malformed "labels.ts disagrees with the node count");
        Array.mapi (fun i n -> { n with Wet.n_ts = ts.(i) }) nodes)
  in
  let copy_uvals =
    opt "labels.values"
      ~default:(fun () -> Array.make ncopies None)
      ~use:(fun (u : Wet.seq option array) ->
        if Array.length u <> ncopies then
          fail (Malformed "labels.values disagrees with the copy count");
        u)
  in
  let copy_deps =
    opt "labels.deps"
      ~default:(fun () -> Array.make ncopies [||])
      ~use:(fun (d : Wet.dep_source array array) ->
        if Array.length d <> ncopies then
          fail (Malformed "labels.deps disagrees with the copy count");
        d)
  in
  let copy_local_out, copy_remote_out =
    opt "index.out"
      ~default:(fun () -> (Array.make ncopies [], Array.make ncopies []))
      ~use:(fun ((l, r) : Wet.copy_id list array * Wet.edge list array) ->
        if Array.length l <> ncopies || Array.length r <> ncopies then
          fail (Malformed "index.out disagrees with the copy count");
        (l, r))
  in
  (* [index.stmts] is fully reconstructible from the copy map, so its
     loss costs nothing and is not recorded as damage. *)
  let rebuild_stmt_index () =
    (* same order the builder produces: descending copy ids *)
    let a = Array.make meta.m_nstmts [] in
    for c = 0 to ncopies - 1 do
      let st = copy_stmt.(c) in
      if st >= 0 && st < meta.m_nstmts then a.(st) <- c :: a.(st)
    done;
    a
  in
  let stmt_copies =
    match find "index.stmts" with
    | Some ({ sec_fault = None; _ } as st) -> (
      match (unmarshal "index.stmts" st : Wet.copy_id list array) with
      | a when Array.length a = meta.m_nstmts -> a
      | _ -> rebuild_stmt_index ()
      | exception Fail f -> if salvage then rebuild_stmt_index () else fail f)
    | Some { sec_fault = Some _; _ } | None -> rebuild_stmt_index ()
  in
  reshare nodes copy_deps copy_remote_out;
  let damage = List.sort_uniq compare (meta.m_damage @ !damage) in
  let w =
    {
      Wet.program;
      analysis;
      nodes;
      copy_node;
      copy_stmt;
      copy_uvals;
      copy_group;
      copy_deps;
      copy_local_out;
      copy_remote_out;
      stmt_copies;
      first_node = meta.m_first;
      last_node = meta.m_last;
      stats = meta.m_stats;
      tier = meta.m_tier;
      damage;
      session0 = None;
    }
  in
  (w, health)

let decode ?(salvage = false) s =
  try Ok (decode_exn ~salvage s) with Fail f -> Error f
