(** WET slices (paper §2 "WET slices" and Table 9).

    A backward WET slice of a statement instance is the set of statement
    instances that directly or indirectly influenced it through data and
    control dependences — a superset of a traditional dynamic slice,
    resolved entirely by traversing the compressed representation.

    The {!Session} layer is primary: each function moves only the given
    session's cursors, so concurrent slices over one shared container
    need one session each. The wet-taking functions at the bottom are
    deprecated wrappers over {!Wet.default_session}. *)

type result = {
  instances : int;  (** statement instances in the slice *)
  copies : int;  (** distinct statement copies *)
  stmts : int;  (** distinct static statements *)
  truncated : bool;  (** [true] if [max_instances] stopped the walk *)
}

(** {1 Session slices} *)

module Session : sig
  (** [backward s c i] slices backward from instance [i] of copy [c],
      following every dependence slot and the control-dependence edge
      of each visited instance.
      @param max_instances stop after this many instances (default: no
        limit).
      @param f called on every visited [(copy, instance)]. *)
  val backward :
    ?max_instances:int ->
    ?f:(Wet.copy_id -> int -> unit) ->
    Wet.session ->
    Wet.copy_id ->
    int ->
    result

  (** [forward s c i] is the forward WET slice: the instances whose
      computation instance [i] of copy [c] influenced. Control
      dependence is followed at block granularity (the block's first
      statement copy stands for the block). *)
  val forward :
    ?max_instances:int ->
    ?f:(Wet.copy_id -> int -> unit) ->
    Wet.session ->
    Wet.copy_id ->
    int ->
    result

  (** [chop s ~source ~sink] is the {e chop}: the statement instances
      lying on some dependence path from [source] to [sink] — the
      intersection of [source]'s forward slice with [sink]'s backward
      slice. Empty when [sink] does not depend on [source]. *)
  val chop :
    ?max_instances:int ->
    ?f:(Wet.copy_id -> int -> unit) ->
    Wet.session ->
    source:Wet.copy_id * int ->
    sink:Wet.copy_id * int ->
    result
end

(** {1 Deprecated implicit-session layer} *)

val backward :
  ?max_instances:int ->
  ?f:(Wet.copy_id -> int -> unit) ->
  Wet.t ->
  Wet.copy_id ->
  int ->
  result
[@@deprecated "use Slice.Session.backward"]

val forward :
  ?max_instances:int ->
  ?f:(Wet.copy_id -> int -> unit) ->
  Wet.t ->
  Wet.copy_id ->
  int ->
  result
[@@deprecated "use Slice.Session.forward"]

val chop :
  ?max_instances:int ->
  ?f:(Wet.copy_id -> int -> unit) ->
  Wet.t ->
  source:Wet.copy_id * int ->
  sink:Wet.copy_id * int ->
  result
[@@deprecated "use Slice.Session.chop"]
