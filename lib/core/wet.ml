module Stream = Wet_bistream.Stream
module Telemetry = Wet_bistream.Telemetry
module Cursor = Stream.Cursor
module Instr = Wet_ir.Instr
module Ex = Wet_watch.Explain

type seq = Stream.t

type copy_id = int

type node_id = int

type dep_source =
  | No_dep
  | Local of copy_id
  | Remote of edge list

and edge = {
  e_src : copy_id;
  e_dst : copy_id;
  e_slot : int;
  e_labels : labels;
}

and labels = {
  l_id : int;
  l_dst : seq;
  l_src : seq;
  l_len : int;
}

type group = {
  g_members : copy_id array;
  g_nsources : int;
  g_pattern : seq option;
  g_nuniq : int;
}

type node = {
  n_id : node_id;
  n_func : int;
  n_path : int;
  n_blocks : int array;
  n_stmts : int array;
  n_block_start : int array;
  n_copy_base : copy_id;
  n_nexec : int;
  n_ts : seq;
  n_succs : node_id array;
  n_preds : node_id array;
  n_groups : group array;
  n_cd : dep_source array;
}

type stats = {
  stmts_executed : int;
  block_execs : int;
  path_execs : int;
  def_execs : int;
  dep_instances : int;
  cd_instances : int;
  local_dep_instances : int;
  shared_label_values : int;
}

(* The container ([t]) is immutable once built: every field but
   [session0] is read-only, and the streams inside are pristine
   compressed bodies. All traversal state — cursor positions, bidir
   window clones, telemetry tallies, explain recordings — lives in
   [session] values. [session0] memoizes the implicit default session
   that backs the deprecated wet-taking query functions; it is the only
   mutation and is dropped by [rewind]. *)
type t = {
  program : Wet_ir.Program.t;
  analysis : Wet_cfg.Program_analysis.t;
  nodes : node array;
  copy_node : node_id array;
  copy_stmt : int array;
  copy_uvals : seq option array;
  copy_group : int array;
  copy_deps : dep_source array array;
  copy_local_out : copy_id list array;
  copy_remote_out : edge list array;
  stmt_copies : copy_id list array;
  first_node : node_id;
  last_node : node_id;
  stats : stats;
  tier : [ `Tier1 | `Tier2 ];
  damage : string list;
  mutable session0 : session option;
}

(* One reader's traversal state over a shared container: a cursor per
   stream (timestamp cursors eagerly — they drive every control-flow
   walk — label cursors lazily by [l_id]), the telemetry tally decode
   work accounts to, and the explain recorder cursor movements report
   to. Single-owner; the container underneath may be shared freely. *)
and session = {
  s_wet : t;
  s_tally : Telemetry.tally;
  s_recorder : Ex.recorder;
  s_mint : seq -> Cursor.t;
  s_ts : Cursor.t array;  (* per node *)
  s_uvals : Cursor.t option array;  (* per copy *)
  s_patterns : Cursor.t option array array;  (* per node, per group *)
  s_labels : (int, Cursor.t * Cursor.t) Hashtbl.t;  (* l_id -> dst, src *)
}

exception Missing_stream of string

let damaged t sec = List.mem sec t.damage

let need t sec = if damaged t sec then raise (Missing_stream sec)

let num_copies t = Array.length t.copy_node

let node_of_copy t c = t.nodes.(t.copy_node.(c))

let copy_offset t c = c - (node_of_copy t c).n_copy_base

let instr_of_copy t c = Wet_ir.Program.instr t.program t.copy_stmt.(c)

let find_in_ascending s v = Cursor.find_ascending (Stream.default_cursor s) v

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let make_session ~mint ~tally ~recorder t =
  {
    s_wet = t;
    s_tally = tally;
    s_recorder = recorder;
    s_mint = mint;
    s_ts = Array.map (fun n -> mint n.n_ts) t.nodes;
    s_uvals = Array.map (Option.map mint) t.copy_uvals;
    s_patterns =
      Array.map
        (fun n -> Array.map (fun g -> Option.map mint g.g_pattern) n.n_groups)
        t.nodes;
    s_labels = Hashtbl.create 64;
  }

let open_session ?(strict = false) ?tally ?recorder t =
  if strict && t.damage <> [] then
    Wet_error.fail Query "open_session: container damaged (%s)"
      (String.concat ", " t.damage);
  let tally = match tally with Some x -> x | None -> Telemetry.make () in
  let recorder =
    match recorder with Some r -> r | None -> Ex.make_recorder ()
  in
  make_session ~mint:Cursor.make ~tally ~recorder t

(* The implicit session backing the deprecated wet-taking functions. It
   reads through each stream's *default* cursor (not private clones), so
   legacy code mixing module-level [Stream] calls with [Wet] queries
   still observes one consistent set of positions, and it targets the
   process-global tally and explain recording — exactly the historical
   behaviour. *)
let default_session t =
  match t.session0 with
  | Some s -> s
  | None ->
    let s =
      make_session ~mint:Stream.default_cursor ~tally:Telemetry.default
        ~recorder:Ex.default_recorder t
    in
    t.session0 <- Some s;
    s

module Session = struct
  type nonrec t = session

  let wet s = s.s_wet

  let tally s = s.s_tally

  let recorder s = s.s_recorder

  let ts_cursor s (n : node) = s.s_ts.(n.n_id)

  let label_cursors s (l : labels) =
    match Hashtbl.find_opt s.s_labels l.l_id with
    | Some p -> p
    | None ->
      let p = (s.s_mint l.l_dst, s.s_mint l.l_src) in
      Hashtbl.add s.s_labels l.l_id p;
      p

  (* Query-explain instrumentation: cursor movements report to the
     session's recorder when it is armed; disarmed cost is one flag
     read. A [read_at] is reported as a seek of the cursor's travel
     distance — the stream's decompression cost proxy. *)
  let c_read_at s sid c k =
    if Ex.recording s.s_recorder then begin
      let d = abs (k - Cursor.pos c) in
      let v = Cursor.read_at ~tally:s.s_tally c k in
      Ex.touch ~recorder:s.s_recorder sid Ex.Seek (max 1 d);
      v
    end
    else Cursor.read_at ~tally:s.s_tally c k

  let c_find_ascending s sid c v =
    if Ex.recording s.s_recorder then begin
      let c0 = Cursor.pos c in
      let r = Cursor.find_ascending ~tally:s.s_tally c v in
      let d = Cursor.pos c - c0 in
      if d >= 0 then Ex.touch ~recorder:s.s_recorder sid Ex.Fwd d
      else Ex.touch ~recorder:s.s_recorder sid Ex.Bwd (-d);
      r
    end
    else Cursor.find_ascending ~tally:s.s_tally c v

  (* Timestamp-cursor primitives for the control-flow walks. *)

  let ts_pos s n = Cursor.pos (ts_cursor s n)

  let ts_seek s (n : node) k =
    let c = ts_cursor s n in
    if Ex.recording s.s_recorder then
      Ex.touch ~recorder:s.s_recorder (Ex.Ts n.n_id) Ex.Seek
        (abs (k - Cursor.pos c));
    Cursor.seek ~tally:s.s_tally c k

  let ts_step_forward s (n : node) =
    if Ex.recording s.s_recorder then
      Ex.touch ~recorder:s.s_recorder (Ex.Ts n.n_id) Ex.Fwd 1;
    Cursor.step_forward ~tally:s.s_tally (ts_cursor s n)

  let ts_step_backward s (n : node) =
    if Ex.recording s.s_recorder then
      Ex.touch ~recorder:s.s_recorder (Ex.Ts n.n_id) Ex.Bwd 1;
    Cursor.step_backward ~tally:s.s_tally (ts_cursor s n)

  let ts_peek_forward s n = Cursor.peek_forward (ts_cursor s n)

  let ts_peek_backward s n = Cursor.peek_backward (ts_cursor s n)

  let ts_find s (n : node) v =
    c_find_ascending s (Ex.Ts n.n_id) (ts_cursor s n) v

  (* Label queries. *)

  let value_of_copy s c i =
    let t = s.s_wet in
    need t "labels.values";
    match s.s_uvals.(c) with
    | None -> Wet_error.fail Query "value_of_copy: copy %d has no def port" c
    | Some uvals -> (
      let node = node_of_copy t c in
      let g = t.copy_group.(c) in
      match s.s_patterns.(node.n_id).(g) with
      | None -> c_read_at s (Ex.Uvals c) uvals 0
      | Some pattern ->
        c_read_at s (Ex.Uvals c) uvals
          (c_read_at s (Ex.Pattern (node.n_id, g)) pattern i))

  (* Shared by data and control slots: locate the consumer instance on
     each candidate edge's dst label, then read the aligned producer
     instance off the src label. *)
  let search_edges s edges i =
    let rec search = function
      | [] -> None
      | e :: rest -> (
        let dst, src = label_cursors s e.e_labels in
        match c_find_ascending s (Ex.Label_dst e.e_labels.l_id) dst i with
        | Some j ->
          Some (e.e_src, c_read_at s (Ex.Label_src e.e_labels.l_id) src j)
        | None -> search rest)
    in
    search edges

  let resolve_dep s c i slot =
    let t = s.s_wet in
    need t "labels.deps";
    match t.copy_deps.(c).(slot) with
    | No_dep -> None
    | Local p -> Some (p, i)
    | Remote edges -> search_edges s edges i

  let resolve_cd s c i =
    let t = s.s_wet in
    let node = node_of_copy t c in
    let off = copy_offset t c in
    (* Find the block position owning this statement offset. *)
    let rec block_pos p =
      if p + 1 < Array.length node.n_block_start
         && node.n_block_start.(p + 1) <= off
      then block_pos (p + 1)
      else p
    in
    match node.n_cd.(block_pos 0) with
    | No_dep -> None
    | Local p -> Some (p, i)
    | Remote edges -> search_edges s edges i

  let timestamp s c i =
    let t = s.s_wet in
    need t "labels.ts";
    let node = node_of_copy t c in
    c_read_at s (Ex.Ts node.n_id) (ts_cursor s node) i
end

(* Deprecated implicit-session wrappers: each reads through the
   container's memoized default session. *)

let value_of_copy t c i = Session.value_of_copy (default_session t) c i

let resolve_dep t c i slot = Session.resolve_dep (default_session t) c i slot

let resolve_cd t c i = Session.resolve_cd (default_session t) c i

let copies_of_stmt t s = t.stmt_copies.(s)

let timestamp t c i = Session.timestamp (default_session t) c i

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                   *)
(* ------------------------------------------------------------------ *)

(* Drop all implicit traversal state: every stream's default cursor and
   the memoized default session. The compressed bodies themselves are
   pristine templates that never move, so after [rewind] the container
   is byte-identical to its freshly built self — [Store] rewinds on both
   save and load, which is what keeps persistence deterministic
   regardless of prior query activity. Explicit sessions opened by the
   caller hold private cursor clones and are unaffected. *)
let rewind t =
  let seq = Stream.drop_cursor in
  let labels (l : labels) =
    seq l.l_dst;
    seq l.l_src
  in
  let source = function
    | No_dep | Local _ -> ()
    | Remote es -> List.iter (fun e -> labels e.e_labels) es
  in
  Array.iter
    (fun n ->
      seq n.n_ts;
      Array.iter (fun g -> Option.iter seq g.g_pattern) n.n_groups;
      Array.iter source n.n_cd)
    t.nodes;
  Array.iter (Option.iter seq) t.copy_uvals;
  Array.iter (Array.iter source) t.copy_deps;
  Array.iter (List.iter (fun (e : edge) -> labels e.e_labels)) t.copy_remote_out;
  t.session0 <- None

(* ------------------------------------------------------------------ *)
(* Structural validation                                              *)
(* ------------------------------------------------------------------ *)

(* Invariant checker used after salvage loads and by [wet_cli fsck].
   Returns human-readable violations; [[]] means the structure is
   internally consistent. Checks touching a damaged (salvaged-away)
   section are skipped — placeholders are not violations. *)
let validate t =
  let errs = ref [] in
  let nerrs = ref 0 in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        incr nerrs;
        if !nerrs <= 100 then errs := s :: !errs)
      fmt
  in
  let ncopies = Array.length t.copy_node in
  let nnodes = Array.length t.nodes in
  let check_len name l =
    if l <> ncopies then
      err "%s has %d entries, expected %d (one per copy)" name l ncopies
  in
  check_len "copy_stmt" (Array.length t.copy_stmt);
  check_len "copy_uvals" (Array.length t.copy_uvals);
  check_len "copy_group" (Array.length t.copy_group);
  check_len "copy_deps" (Array.length t.copy_deps);
  check_len "copy_local_out" (Array.length t.copy_local_out);
  check_len "copy_remote_out" (Array.length t.copy_remote_out);
  let total_execs = t.stats.path_execs in
  (* Pure decode: reads the representation without touching any cursor. *)
  let snapshot = Stream.contents in
  let check_labels ctx (l : labels) =
    if Stream.length l.l_dst <> l.l_len || Stream.length l.l_src <> l.l_len
    then err "%s: label %d stream lengths differ from l_len=%d" ctx l.l_id l.l_len
    else begin
      let dst = snapshot l.l_dst in
      for j = 1 to l.l_len - 1 do
        if dst.(j) <= dst.(j - 1) then
          err "%s: label %d consumer instances not strictly ascending at %d"
            ctx l.l_id j
      done
    end
  in
  let check_edge ctx (e : edge) =
    if e.e_src < 0 || e.e_src >= ncopies || e.e_dst < 0 || e.e_dst >= ncopies
    then err "%s: edge endpoints (%d,%d) out of copy range" ctx e.e_src e.e_dst
    else begin
      check_labels ctx e.e_labels;
      (* dependence edges must reference live execution instances *)
      let src_nexec = t.nodes.(t.copy_node.(e.e_src)).n_nexec in
      let dst_nexec = t.nodes.(t.copy_node.(e.e_dst)).n_nexec in
      let dst = snapshot e.e_labels.l_dst and src = snapshot e.e_labels.l_src in
      Array.iter
        (fun i ->
          if i < 0 || i >= dst_nexec then
            err "%s: label %d consumer instance %d outside [0,%d)" ctx
              e.e_labels.l_id i dst_nexec)
        dst;
      Array.iter
        (fun i ->
          if i < 0 || i >= src_nexec then
            err "%s: label %d producer instance %d outside [0,%d)" ctx
              e.e_labels.l_id i src_nexec)
        src
    end
  in
  let check_source ctx = function
    | No_dep -> ()
    | Local p ->
      if p < 0 || p >= ncopies then err "%s: local producer %d out of range" ctx p
    | Remote es -> List.iter (check_edge ctx) es
  in
  (* global timestamp coverage: each of [1..path_execs] exactly once *)
  let seen =
    if total_execs >= 0 && not (damaged t "labels.ts") then
      Some (Bytes.make (total_execs + 1) '\000')
    else None
  in
  Array.iteri
    (fun id n ->
      let ctx = Printf.sprintf "node %d" id in
      if n.n_id <> id then err "%s: n_id is %d" ctx n.n_id;
      let nstmts = Array.length n.n_stmts in
      let nblocks = Array.length n.n_blocks in
      if Array.length n.n_block_start <> nblocks then
        err "%s: block_start/blocks length mismatch" ctx;
      Array.iteri
        (fun bp s ->
          if s < 0 || s > nstmts || (bp > 0 && s <= n.n_block_start.(bp - 1))
          then err "%s: block_start not ascending at %d" ctx bp)
        n.n_block_start;
      if nblocks > 0 && n.n_block_start.(0) <> 0 then
        err "%s: first block does not start at statement 0" ctx;
      if n.n_copy_base < 0 || n.n_copy_base + nstmts > ncopies then
        err "%s: copies [%d,%d) outside copy range" ctx n.n_copy_base
          (n.n_copy_base + nstmts)
      else
        for o = 0 to nstmts - 1 do
          let c = n.n_copy_base + o in
          if t.copy_node.(c) <> id then
            err "%s: copy %d maps to node %d" ctx c t.copy_node.(c);
          if Array.length t.copy_stmt = ncopies && t.copy_stmt.(c) <> n.n_stmts.(o)
          then err "%s: copy %d statement mismatch" ctx c
        done;
      Array.iter
        (fun s ->
          if s < 0 || s >= nnodes then err "%s: successor %d out of range" ctx s
          else if not (Array.exists (fun p -> p = id) t.nodes.(s).n_preds) then
            err "%s: successor %d lacks the symmetric predecessor" ctx s)
        n.n_succs;
      (if not (damaged t "labels.ts") then begin
         if Stream.length n.n_ts <> n.n_nexec then
           err "%s: %d timestamps for %d executions" ctx
             (Stream.length n.n_ts) n.n_nexec
         else begin
           let ts = snapshot n.n_ts in
           Array.iteri
             (fun i v ->
               if i > 0 && v <= ts.(i - 1) then
                 err "%s: timestamps not strictly increasing at %d" ctx i;
               if v < 1 || v > total_execs then
                 err "%s: timestamp %d outside [1,%d]" ctx v total_execs
               else
                 Option.iter
                   (fun b ->
                     if Bytes.get b v <> '\000' then
                       err "%s: timestamp %d already used" ctx v
                     else Bytes.set b v '\001')
                   seen)
             ts
         end
       end);
      Array.iter
        (fun g ->
          Array.iter
            (fun m ->
              if m < n.n_copy_base || m >= n.n_copy_base + nstmts then
                err "%s: group member %d outside the node" ctx m)
            g.g_members;
          match g.g_pattern with
          | None -> ()
          | Some p ->
            if Stream.length p <> n.n_nexec then
              err "%s: group pattern length %d <> nexec %d" ctx
                (Stream.length p) n.n_nexec
            else if not (damaged t "labels.values") then
              Array.iter
                (fun v ->
                  if v < 0 || v >= g.g_nuniq then
                    err "%s: pattern index %d outside [0,%d)" ctx v g.g_nuniq)
                (snapshot p))
        n.n_groups;
      Array.iteri
        (fun bp src -> check_source (Printf.sprintf "%s cd[%d]" ctx bp) src)
        n.n_cd)
    t.nodes;
  Option.iter
    (fun b ->
      for v = 1 to total_execs do
        if Bytes.get b v = '\000' then err "timestamp %d never assigned" v
      done)
    seen;
  (if not (damaged t "labels.values") && Array.length t.copy_uvals = ncopies
   then
     Array.iteri
       (fun c u ->
         match u with
         | None -> ()
         | Some _ when t.copy_group.(c) < 0 ->
           err "copy %d has values but no group" c
         | Some _ -> ())
       t.copy_uvals);
  (if not (damaged t "labels.deps") && Array.length t.copy_deps = ncopies then
     Array.iteri
       (fun c slots ->
         let k = Instr.dyn_use_count (instr_of_copy t c) in
         if Array.length slots <> k then
           err "copy %d: %d dependence slots, expected %d" c
             (Array.length slots) k
         else
           Array.iteri
             (fun s src ->
               check_source (Printf.sprintf "copy %d slot %d" c s) src)
             slots)
       t.copy_deps);
  (if not (damaged t "index.out") && Array.length t.copy_remote_out = ncopies
   then
     Array.iteri
       (fun c es ->
         List.iter
           (fun (e : edge) ->
             if e.e_src <> c then
               err "copy %d: out-edge claims source %d" c e.e_src)
           es)
       t.copy_remote_out);
  (let total = Array.fold_left (fun a l -> a + List.length l) 0 t.stmt_copies in
   if total <> ncopies then
     err "stmt_copies indexes %d copies, expected %d" total ncopies;
   Array.iteri
     (fun s cs ->
       List.iter
         (fun c ->
           if c < 0 || c >= ncopies then
             err "stmt %d: copy %d out of range" s c
           else if Array.length t.copy_stmt = ncopies && t.copy_stmt.(c) <> s
           then err "stmt %d: copy %d belongs to stmt %d" s c t.copy_stmt.(c))
         cs)
     t.stmt_copies);
  if !nerrs > 100 then
    errs := Printf.sprintf "... and %d more violations" (!nerrs - 100) :: !errs;
  List.rev !errs
