module Stream = Wet_bistream.Stream

type seq = Stream.t

type copy_id = int

type node_id = int

type dep_source =
  | No_dep
  | Local of copy_id
  | Remote of edge list

and edge = {
  e_src : copy_id;
  e_dst : copy_id;
  e_slot : int;
  e_labels : labels;
}

and labels = {
  l_id : int;
  l_dst : seq;
  l_src : seq;
  l_len : int;
}

type group = {
  g_members : copy_id array;
  g_nsources : int;
  g_pattern : seq option;
  g_nuniq : int;
}

type node = {
  n_id : node_id;
  n_func : int;
  n_path : int;
  n_blocks : int array;
  n_stmts : int array;
  n_block_start : int array;
  n_copy_base : copy_id;
  n_nexec : int;
  n_ts : seq;
  n_succs : node_id array;
  n_preds : node_id array;
  n_groups : group array;
  n_cd : dep_source array;
}

type stats = {
  stmts_executed : int;
  block_execs : int;
  path_execs : int;
  def_execs : int;
  dep_instances : int;
  cd_instances : int;
  local_dep_instances : int;
  shared_label_values : int;
}

type t = {
  program : Wet_ir.Program.t;
  analysis : Wet_cfg.Program_analysis.t;
  nodes : node array;
  copy_node : node_id array;
  copy_stmt : int array;
  copy_uvals : seq option array;
  copy_group : int array;
  copy_deps : dep_source array array;
  copy_local_out : copy_id list array;
  copy_remote_out : edge list array;
  stmt_copies : copy_id list array;
  first_node : node_id;
  last_node : node_id;
  stats : stats;
  tier : [ `Tier1 | `Tier2 ];
}

let num_copies t = Array.length t.copy_node

let node_of_copy t c = t.nodes.(t.copy_node.(c))

let copy_offset t c = c - (node_of_copy t c).n_copy_base

let instr_of_copy t c = Wet_ir.Program.instr t.program t.copy_stmt.(c)

(* Query-explain instrumentation: every cursor movement through these
   helpers reports to [Wet_watch.Explain] when it is armed; disarmed
   cost is one flag read. A [read_at] is reported as a seek of the
   cursor's travel distance — the stream's decompression cost proxy. *)
module Ex = Wet_watch.Explain

let ex_read_at sid s k =
  if !Ex.armed then begin
    let d = abs (k - Stream.cursor s) in
    let v = Stream.read_at s k in
    Ex.touch sid Ex.Seek (max 1 d);
    v
  end
  else Stream.read_at s k

let ex_find_ascending sid s v =
  if !Ex.armed then begin
    let c0 = Stream.cursor s in
    let r = Stream.find_ascending s v in
    let d = Stream.cursor s - c0 in
    if d >= 0 then Ex.touch sid Ex.Fwd d else Ex.touch sid Ex.Bwd (-d);
    r
  end
  else Stream.find_ascending s v

let find_in_ascending = Stream.find_ascending

let value_of_copy t c i =
  match t.copy_uvals.(c) with
  | None -> invalid_arg "Wet.value_of_copy: copy has no def port"
  | Some uvals -> (
    let node = node_of_copy t c in
    let g = t.copy_group.(c) in
    match node.n_groups.(g).g_pattern with
    | None -> ex_read_at (Ex.Uvals c) uvals 0
    | Some pattern ->
      ex_read_at (Ex.Uvals c) uvals
        (ex_read_at (Ex.Pattern (node.n_id, g)) pattern i))

(* Shared by data and control slots: locate the consumer instance on
   each candidate edge's dst label, then read the aligned producer
   instance off the src label. *)
let search_edges edges i =
  let rec search = function
    | [] -> None
    | e :: rest -> (
      match
        ex_find_ascending (Ex.Label_dst e.e_labels.l_id) e.e_labels.l_dst i
      with
      | Some j ->
        Some (e.e_src, ex_read_at (Ex.Label_src e.e_labels.l_id) e.e_labels.l_src j)
      | None -> search rest)
  in
  search edges

let resolve_dep t c i slot =
  match t.copy_deps.(c).(slot) with
  | No_dep -> None
  | Local p -> Some (p, i)
  | Remote edges -> search_edges edges i

let resolve_cd t c i =
  let node = node_of_copy t c in
  let off = copy_offset t c in
  (* Find the block position owning this statement offset. *)
  let rec block_pos p =
    if p + 1 < Array.length node.n_block_start
       && node.n_block_start.(p + 1) <= off
    then block_pos (p + 1)
    else p
  in
  match node.n_cd.(block_pos 0) with
  | No_dep -> None
  | Local p -> Some (p, i)
  | Remote edges -> search_edges edges i

let copies_of_stmt t s = t.stmt_copies.(s)

let timestamp t c i =
  let node = node_of_copy t c in
  ex_read_at (Ex.Ts node.n_id) node.n_ts i
