(** Fixed-length mutable bit vectors.

    Used for the hit/miss flags of compressed stream entries and the
    one-bit architectural histories of Table 4. *)

type t

(** [create n] is a vector of [n] bits, all clear. *)
val create : int -> t

(** Number of bits. *)
val length : t -> int

(** [copy v] is an independent vector with the same bits: mutating
    either afterwards never affects the other. *)
val copy : t -> t

(** [get v i] is bit [i]. @raise Invalid_argument if out of bounds. *)
val get : t -> int -> bool

(** [set v i b] writes bit [i]. @raise Invalid_argument if out of bounds. *)
val set : t -> int -> bool -> unit

(** Number of set bits. *)
val popcount : t -> int
