type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitvec.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length v = v.n

let copy v = { bits = Bytes.copy v.bits; n = v.n }

let check v i =
  if i < 0 || i >= v.n then invalid_arg "Bitvec: index out of bounds"

let get v i =
  check v i;
  Char.code (Bytes.unsafe_get v.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  check v i;
  let byte = Char.code (Bytes.unsafe_get v.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set v.bits (i lsr 3) (Char.chr byte)

let popcount v =
  let count = ref 0 in
  for i = 0 to Bytes.length v.bits - 1 do
    let b = ref (Char.code (Bytes.unsafe_get v.bits i)) in
    while !b <> 0 do
      count := !count + (!b land 1);
      b := !b lsr 1
    done
  done;
  !count
