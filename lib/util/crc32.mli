(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
    WET container sections. Values are in [0, 0xFFFFFFFF], carried in an
    OCaml [int]. *)

(** [sub s pos len] is the CRC-32 of [s.[pos .. pos+len-1]].
    @raise Invalid_argument if the range is outside [s]. *)
val sub : string -> pos:int -> len:int -> int

(** [string s] is [sub s ~pos:0 ~len:(String.length s)]. *)
val string : string -> int
