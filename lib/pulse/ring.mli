(** The bounded process flight recorder.

    Unlike {!Wet_obs.Sink}'s event buffer — which grows without bound
    for end-of-run export — this ring keeps the last [capacity] events
    and {e counts} what falls out of the window, so a long-lived
    process (the future [wet_cli serve] daemon) can stay armed forever
    in bounded memory and still account for every event it saw.

    Two producers feed it through taps installed by {!install}: the
    span sink (every span close and instant, via
    {!Wet_obs.Sink.set_tap}) and the tracer driver (every
    flight-recorded watch match, via {!Wet_watch.Watch.set_tap}).
    {!push} is protected by a [Mutex.t], so producers on different
    domains can share one ring.

    Pushes and drops also mirror into the process metric view as the
    counters ["pulse.ring.pushed"] / ["pulse.ring.dropped"]. *)

type entry =
  | Span of Wet_obs.Sink.event  (** a span close or instant event *)
  | Watch of Wet_watch.Event.t * int
      (** a flight-recorded watch match with its monotonic wall stamp *)

type stats = {
  total : int;  (** events pushed over the ring's lifetime *)
  dropped : int;  (** events that fell out of the bounded window *)
  retained : int;  (** events currently held: [min total capacity] *)
  capacity : int;
}

type t

(** [create ?capacity ()] — default capacity 4096 entries.
    @raise Wet_error.Error ([Obs] stage) when the capacity is not
    positive. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** Append one entry, overwriting (and counting as dropped) the oldest
    when full. Thread-safe. *)
val push : t -> entry -> unit

val stats : t -> stats

(** The retained window, oldest to newest, with the stats at the same
    instant. Thread-safe. *)
val snapshot : t -> entry list * stats

(** Install this ring as the tap of both the span sink and the watch
    dispatcher. Replaces any previously installed taps. *)
val install : t -> unit

(** Remove both taps (whichever ring installed them). *)
val uninstall : unit -> unit
