type entry =
  | Span of Wet_obs.Sink.event
  | Watch of Wet_watch.Event.t * int

type stats = { total : int; dropped : int; retained : int; capacity : int }

(* The counters mirror the ring's own fields into the process metric
   view so they show up in [--metrics-out] dumps; the authoritative
   numbers are the fields, read under the lock by [stats]. Both are
   updated while holding the lock, so the mirror is race-free even when
   several domains push. *)
let c_pushed = Wet_obs.Metrics.counter "pulse.ring.pushed"

let c_dropped = Wet_obs.Metrics.counter "pulse.ring.dropped"

type t = {
  cap : int;
  lock : Mutex.t;
  cells : entry option array;
  mutable total : int;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then
    Wet_error.fail Obs "Wet_pulse.Ring.create: capacity must be positive";
  {
    cap = capacity;
    lock = Mutex.create ();
    cells = Array.make capacity None;
    total = 0;
    dropped = 0;
  }

let capacity t = t.cap

let push t e =
  Mutex.lock t.lock;
  if t.total >= t.cap then begin
    t.dropped <- t.dropped + 1;
    Wet_obs.Metrics.incr c_dropped
  end;
  t.cells.(t.total mod t.cap) <- Some e;
  t.total <- t.total + 1;
  Wet_obs.Metrics.incr c_pushed;
  Mutex.unlock t.lock

let stats_unlocked t =
  {
    total = t.total;
    dropped = t.dropped;
    retained = min t.total t.cap;
    capacity = t.cap;
  }

let stats t =
  Mutex.lock t.lock;
  let s = stats_unlocked t in
  Mutex.unlock t.lock;
  s

(* Oldest to newest. *)
let snapshot t =
  Mutex.lock t.lock;
  let s = stats_unlocked t in
  let oldest = t.total - s.retained in
  let es =
    List.init s.retained (fun i ->
      match t.cells.((oldest + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)
  in
  Mutex.unlock t.lock;
  (es, s)

let install t =
  Wet_obs.Sink.set_tap (fun ev -> push t (Span ev));
  Wet_watch.Watch.set_tap (fun ev ~wall_ns -> push t (Watch (ev, wall_ns)))

let uninstall () =
  Wet_obs.Sink.clear_tap ();
  Wet_watch.Watch.clear_tap ()
