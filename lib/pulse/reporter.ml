module Obs = Wet_obs.Metrics
module Clock = Wet_obs.Clock

(* Live cells, interned by name: the interpreter and builder own the
   writes, the reporter only reads. [interp.stmts] is credited once at
   run end, [interp.heartbeat_stmts] advances during the run, so the
   live statement count is the max of the two. *)
let c_stmts = Obs.counter "interp.stmts"

let g_hb = Obs.gauge "interp.heartbeat_stmts"

let c_shards = Obs.counter "build.shards"

let g_peak = Obs.gauge "build.peak_live_words"

(* The reporter's own overhead, visible in the same exports it reads. *)
let c_ticks = Obs.counter "pulse.reporter.ticks"

let c_emits = Obs.counter "pulse.reporter.emits"

let h_emit_ns = Obs.histogram "pulse.reporter.emit_ns"

type sink = Tty | Jsonl of out_channel

type t = {
  out : sink;
  ring : Ring.t option;
  interval_ns : int;
  t0 : int;
  mutable last_ns : int;
  mutable last_stmts : int;
  mutable seq : int;
}

let create ?ring ?(interval_ms = 100) out =
  (match out with
   | Jsonl oc ->
     Printf.fprintf oc "{\"schema\":%S,\"type\":\"meta\",\"stream\":\"pulse\"}\n%!"
       Wet_obs.Export.schema
   | Tty -> ());
  {
    out;
    ring;
    interval_ns = interval_ms * 1_000_000;
    t0 = Clock.now_ns ();
    last_ns = 0;
    last_stmts = 0;
    seq = 0;
  }

let live_stmts () = max (Obs.value c_stmts) (Obs.gauge_value g_hb)

let human n =
  if n >= 1_000_000_000 then Printf.sprintf "%.1fG" (float_of_int n /. 1e9)
  else if n >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Printf.sprintf "%.0fk" (float_of_int n /. 1e3)
  else string_of_int n

let emit t now =
  Obs.time h_emit_ns (fun () ->
    let stmts = live_stmts () in
    let since = if t.last_ns = 0 then t.t0 else t.last_ns in
    let dt_s = Clock.to_s (now - since) in
    let rate =
      if dt_s > 0. then float_of_int (stmts - t.last_stmts) /. dt_s else 0.
    in
    let shards = Obs.value c_shards in
    let peak = Obs.gauge_value g_peak in
    let pushed, dropped =
      match t.ring with
      | None -> (0, 0)
      | Some r ->
        let s = Ring.stats r in
        (s.Ring.total, s.Ring.dropped)
    in
    t.seq <- t.seq + 1;
    t.last_ns <- now;
    t.last_stmts <- stmts;
    Obs.incr c_emits;
    match t.out with
    | Jsonl oc ->
      Printf.fprintf oc
        "{\"type\":\"heartbeat\",\"seq\":%d,\"elapsed_ms\":%.1f,\"stmts\":%d,\"stmts_per_sec\":%.0f,\"shards\":%d,\"peak_live_words\":%d,\"ring_pushed\":%d,\"ring_dropped\":%d}\n\
         %!"
        t.seq
        (Clock.to_s (now - t.t0) *. 1e3)
        stmts rate shards peak pushed dropped
    | Tty ->
      (* Through the Log layer, not a raw eprintf: --quiet suppresses
         the line and a JSONL log sink receives it as a status object. *)
      Wet_obs.Log.status
        "[wet] %6s stmts  %6s/s  shards %-4d  peak %6sw  ring drops %-6d"
        (human stmts) (human (int_of_float rate)) shards (human peak) dropped)

let tick t =
  Obs.incr c_ticks;
  let now = Clock.now_ns () in
  if now - t.last_ns >= t.interval_ns then emit t now

let force t = emit t (Clock.now_ns ())

let finish t =
  force t;
  match t.out with
  | Tty -> Wet_obs.Log.finish_status ()
  | Jsonl oc -> flush oc

let install t = Wet_obs.Sink.set_on_tick (fun () -> tick t)

let uninstall () = Wet_obs.Sink.clear_on_tick ()
