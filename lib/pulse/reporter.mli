(** Live progress for long builds.

    A reporter is driven by {!Wet_obs.Sink.tick} pulses — the
    interpreter fires one at every heartbeat
    ({!Wet_obs.Sink.heartbeat_every}) and [Builder.Sink] at every shard
    boundary. Each pulse is rate-limited against [interval_ms]; when
    one is due, the reporter reads the live process-view instruments
    (statement count and rate, shard count, [build.peak_live_words])
    and the ring's drop accounting, and renders one of:

    - [Tty]: a single [\r]-rewritten status line on [stderr]
      ([--progress]);
    - [Jsonl]: one machine-readable heartbeat object per line
      ([--progress-out]), after a
      [{"schema":"wet-obs/2","type":"meta","stream":"pulse"}] header.
      Heartbeat fields: [seq], [elapsed_ms], [stmts] (monotone
      non-decreasing), [stmts_per_sec], [shards], [peak_live_words],
      [ring_pushed], [ring_dropped].

    The reporter's own cost is recorded in the same registry it reads:
    ["pulse.reporter.ticks"], ["pulse.reporter.emits"] and the
    ["pulse.reporter.emit_ns"] histogram. *)

type sink = Tty | Jsonl of out_channel

type t

(** [create ?ring ?interval_ms out] — [interval_ms] (default 100)
    rate-limits emission; 0 emits on every tick. The [Jsonl] header
    line is written immediately. *)
val create : ?ring:Ring.t -> ?interval_ms:int -> sink -> t

(** Rate-limited: emits when at least [interval_ms] has elapsed since
    the previous emission. *)
val tick : t -> unit

(** Emit unconditionally. *)
val force : t -> unit

(** Final emission, then terminate the TTY status line / flush the
    JSONL channel (the caller closes it). *)
val finish : t -> unit

(** Register {!tick} as the sink's tick callback. *)
val install : t -> unit

val uninstall : unit -> unit
