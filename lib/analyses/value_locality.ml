module W = Wet_core.Wet
module Query = Wet_core.Query

let histogram wet =
  let counts = Hashtbl.create 1024 in
  let total =
    Query.Session.load_values (W.default_session wet) ~f:(fun _ v ->
        Hashtbl.replace counts v
          (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
  in
  (counts, total)

let frequent ?(top = 8) wet =
  let counts, _ = histogram wet in
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < top)

let coverage wet ~top =
  let counts, total = histogram wet in
  if total = 0 then 0.
  else begin
    let covered =
      Hashtbl.fold (fun _ c acc -> c :: acc) counts []
      |> List.sort (fun a b -> compare b a)
      |> List.filteri (fun i _ -> i < top)
      |> List.fold_left ( + ) 0
    in
    float_of_int covered /. float_of_int total
  end
