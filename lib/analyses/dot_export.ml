module W = Wet_core.Wet
module Slice_ = Wet_core.Slice
module Instr = Wet_ir.Instr

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let nodes (t : W.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph wet {\n  rankdir=LR;\n  node [shape=box];\n";
  Array.iter
    (fun (n : W.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"f%d/p%d\\n%d blocks, %d execs\"];\n"
           n.W.n_id n.W.n_func n.W.n_path (Array.length n.W.n_blocks)
           n.W.n_nexec))
    t.W.nodes;
  Array.iter
    (fun (n : W.node) ->
      Array.iter
        (fun s -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n.W.n_id s))
        n.W.n_succs)
    t.W.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let slice ?(max_instances = 64) ?session (t : W.t) c0 i0 =
  let s =
    match session with Some s -> s | None -> W.default_session t
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph wet_slice {\n  node [shape=box];\n";
  let visited = Hashtbl.create 64 in
  ignore
    (Slice_.Session.backward ~max_instances s c0 i0 ~f:(fun c i ->
         Hashtbl.replace visited (c, i) ();
         Buffer.add_string buf
           (Printf.sprintf "  s%d_%d [label=\"%s\\ninstance %d\"%s];\n" c i
              (escape (Fmt.str "%a" Instr.pp (W.instr_of_copy t c)))
              i
              (if c = c0 && i = i0 then ", style=filled, fillcolor=lightgrey"
               else ""))));
  (* edges between visited instances only *)
  Hashtbl.iter
    (fun (c, i) () ->
      let nslots = Array.length t.W.copy_deps.(c) in
      for slot = 0 to nslots - 1 do
        match W.Session.resolve_dep s c i slot with
        | Some (pc, pi) when Hashtbl.mem visited (pc, pi) ->
          Buffer.add_string buf
            (Printf.sprintf "  s%d_%d -> s%d_%d;\n" pc pi c i)
        | Some _ | None -> ()
      done;
      match W.Session.resolve_cd s c i with
      | Some (pc, pi) when Hashtbl.mem visited (pc, pi) ->
        Buffer.add_string buf
          (Printf.sprintf "  s%d_%d -> s%d_%d [style=dashed];\n" pc pi c i)
      | Some _ | None -> ())
    visited;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
