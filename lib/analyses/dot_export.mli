(** Graphviz export of WET structure, for inspecting small programs and
    slices ("a next generation software tool ... for mining of program
    profiles" needs eyes on the graph).

    Both exports are deliberately bounded: WETs of real runs are far too
    large to draw, so callers either render the node-level summary graph
    or a single slice's subgraph. *)

(** The node-level WET: one Graphviz node per Ball–Larus path node
    (annotated with function, path id, execution count), solid edges for
    dynamic control flow. *)
val nodes : Wet_core.Wet.t -> string

(** The dependence subgraph visited by a backward slice from
    [(copy, instance)]: statement instances as nodes, data dependences
    as solid edges, control dependences dashed. [max_instances] bounds
    the drawn slice (default 64). [session] supplies the cursor state
    to walk with (default: the WET's implicit default session). *)
val slice :
  ?max_instances:int ->
  ?session:Wet_core.Wet.session ->
  Wet_core.Wet.t ->
  Wet_core.Wet.copy_id ->
  int ->
  string
