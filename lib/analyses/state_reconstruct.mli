(** Reconstructing memory state at an arbitrary execution point.

    The WET's unified labels make a time-travel query possible that no
    single profile supports: "what did memory hold at timestamp [t]?"
    For every store instance the node timestamps give {e when} it ran,
    the dependence edges give {e which address} it wrote and {e which
    value} it stored — so the memory image at [t] is the latest store to
    each address no later than [t], plus zeros never written.

    Cost is proportional to the total number of store executions, not to
    [t]; it needs no re-execution of the program. *)

type t

(** [at_session s ~ts] reconstructs the memory image as of global
    timestamp [ts] (inclusive: effects of the path execution stamped
    [ts] are visible), moving only session [s]'s cursors. Raises a
    [Wet_error] [Query] error if [ts] is out of range. *)
val at_session : Wet_core.Wet.session -> ts:int -> t

(** [at wet ~ts] is {!at_session} on [wet]'s implicit default session —
    single-threaded use only. *)
val at : Wet_core.Wet.t -> ts:int -> t

(** Value of an address ([0] if never written by then). *)
val read : t -> int -> int

(** Addresses written by timestamp [ts], ascending. *)
val written : t -> int list

(** [global wet state name] reads a named global scalar / region base.
    @raise Not_found for unknown names. *)
val global : Wet_core.Wet.t -> t -> string -> int
