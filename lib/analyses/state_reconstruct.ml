module W = Wet_core.Wet
module Query = Wet_core.Query
module S = W.Session
module Instr = Wet_ir.Instr

type t = { cells : (int, int * int) Hashtbl.t (* addr -> (ts, value) *) }

let at_session (s : W.session) ~ts =
  let wet = S.wet s in
  if ts < 1 || ts > wet.W.stats.W.path_execs then
    Wet_error.fail Wet_error.Query "State_reconstruct.at: timestamp out of range";
  let cells = Hashtbl.create 1024 in
  let stores =
    Query.copies_matching wet (function Instr.Store _ -> true | _ -> false)
  in
  List.iter
    (fun c ->
      let node = W.node_of_copy wet c in
      for i = 0 to node.W.n_nexec - 1 do
        let when_ = S.timestamp s c i in
        if when_ <= ts then begin
          (* slot 0 is the address operand, slot 1 the stored value *)
          let addr =
            match S.resolve_dep s c i 0 with
            | Some (pc, pi) -> S.value_of_copy s pc pi
            | None -> 0
          in
          let value =
            match S.resolve_dep s c i 1 with
            | Some (pc, pi) -> S.value_of_copy s pc pi
            | None -> 0
          in
          match Hashtbl.find_opt cells addr with
          | Some (prev_ts, _) when prev_ts >= when_ -> ()
          | Some _ | None -> Hashtbl.replace cells addr (when_, value)
        end
      done)
    stores;
  { cells }

let at (wet : W.t) ~ts = at_session (W.default_session wet) ~ts

let read t addr =
  match Hashtbl.find_opt t.cells addr with
  | Some (_, v) -> v
  | None -> 0

let written t =
  List.sort compare (Hashtbl.fold (fun a _ acc -> a :: acc) t.cells [])

let global (wet : W.t) t name =
  read t (Wet_ir.Program.global_base wet.W.program name)
