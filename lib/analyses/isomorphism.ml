module W = Wet_core.Wet
module Stream = Wet_bistream.Stream
module H = Wet_util.Hashing

type klass = {
  members : W.copy_id list;
  executions : int;
  distinct_values : int;
}

let classes (t : W.t) =
  let out = ref [] in
  Array.iter
    (fun (n : W.node) ->
      Array.iter
        (fun (g : W.group) ->
          if Array.length g.W.g_members > 1 then begin
            (* partition members of the group by UVals content *)
            let buckets = Hashtbl.create 8 in
            Array.iter
              (fun c ->
                match t.W.copy_uvals.(c) with
                | None -> ()
                | Some s ->
                  let a = Stream.contents s in
                  let key = (Array.length a, H.hash_window a 0 (Array.length a)) in
                  let l =
                    match Hashtbl.find_opt buckets key with
                    | Some l -> l
                    | None ->
                      let l = ref [] in
                      Hashtbl.replace buckets key l;
                      l
                  in
                  (* verify on collision: compare against the first *)
                  (match !l with
                   | c0 :: _ ->
                     let a0 =
                       Stream.contents (Option.get t.W.copy_uvals.(c0))
                     in
                     if a0 = a then l := c :: !l
                   | [] -> l := c :: !l))
              g.W.g_members;
            Hashtbl.iter
              (fun (len, _) l ->
                match !l with
                | _ :: _ :: _ ->
                  out :=
                    {
                      members = List.rev !l;
                      executions = n.W.n_nexec;
                      distinct_values = len;
                    }
                    :: !out
                | _ -> ())
              buckets
          end)
        n.W.n_groups)
    t.W.nodes;
  !out

let summary (t : W.t) =
  let total_defs =
    Array.fold_left
      (fun acc uv -> match uv with Some _ -> acc + 1 | None -> acc)
      0 t.W.copy_uvals
  in
  let ks = classes t in
  let iso = List.fold_left (fun acc k -> acc + List.length k.members) 0 ks in
  let redundant =
    List.fold_left
      (fun acc k -> acc + ((List.length k.members - 1) * k.executions))
      0 ks
  in
  (iso, total_defs, redundant)
