(** Bidirectional compressed value streams (paper §4).

    A compressed stream of length [m] with context size [n] is kept as
    three parts: [FR] (values left of the cursor, forward-compressed
    using each value's {e right} context), an uncompressed window of [n]
    values, and [BL] (values right of the cursor, backward-compressed
    using each value's {e left} context). The stream is padded with [n]
    zero sentinels at each end so the window always exists.

    Stepping the cursor forward uncompresses the first [BL] entry into
    the window and compresses the value leaving the window into [FR];
    stepping backward is the mirror image. Both [FR] and [BL] behave as
    stacks, and a miss entry stores the table value it displaced, so
    every step restores the lookup tables exactly — this is what makes
    the traversal bidirectional (paper Fig. 5).

    Four predictors are provided. [Fcm] and [Dfcm] use two hashed lookup
    tables (one per direction), sized to the stream. [Last_n] and
    [Last_stride] use the window itself as the lookup table (the paper's
    single-table design, Fig. 7), so they carry no table state at all. *)

type meth = Fcm | Dfcm | Last_n | Last_stride

val meth_name : meth -> string
val all_meths : meth list

type t

(** [compress meth ~ctx values] builds the compressed stream with the
    cursor parked at the left end (everything in [BL]).
    @raise Invalid_argument if [ctx < 1] or [ctx > 16]. *)
val compress : meth -> ctx:int -> int array -> t

(** Number of (real) values in the stream. *)
val length : t -> int

(** Cursor position in [\[0, length\]]: the number of values already
    revealed by forward steps. *)
val cursor : t -> int

(** [clone t] is an independent cursor over the same logical values,
    positioned at the same [cursor], with zeroed traversal counters.
    Safe at any position: the window/table state is a pure function of
    the cursor (every pop exactly undoes the matching push), so the
    deep copy evolves correctly no matter how the original moves.
    O(length) time and space. *)
val clone : t -> t

(** Stepping, peeking and seeking optionally account their decode work
    against an explicit {!Telemetry.tally} (default:
    {!Telemetry.default}) — this is how per-session cost attribution
    stays race-free when several cursors traverse concurrently. *)

(** Reveal the value at index [cursor] and advance.
    @raise Invalid_argument at the right end. *)
val step_forward : ?tally:Telemetry.tally -> t -> int

(** Reveal the value at index [cursor - 1] and retreat.
    @raise Invalid_argument at the left end. *)
val step_backward : ?tally:Telemetry.tally -> t -> int

(** Value a forward step would reveal, leaving the stream state
    untouched (implemented as a step and its inverse; free in every
    tally). *)
val peek_forward : ?tally:Telemetry.tally -> t -> int

val peek_backward : ?tally:Telemetry.tally -> t -> int

(** Move the cursor to [k] by stepping. *)
val seek : ?tally:Telemetry.tally -> t -> int -> unit

(** [read_at t k] is the value at index [k]; the cursor ends at [k+1]. *)
val read_at : ?tally:Telemetry.tally -> t -> int -> int

(** Analytic size in bits of the compressed representation: one flag bit
    per entry, plus payload bits per miss (32) or per [Last_n]-family hit
    (log2 of the candidate count), plus the 32-bit window values and, for
    the FCM family, the two lookup tables. The in-memory working
    representation is word-aligned and larger; all reported sizes use
    this analytic measure. *)
val compressed_bits : t -> int

(** Decompress the whole stream (for tests; moves the cursor). *)
val to_array : ?tally:Telemetry.tally -> t -> int array

val meth : t -> meth

(** Context size the stream was compressed with. *)
val ctx : t -> int

(** Always-on stream telemetry, cheap enough to never gate.

    Dictionary figures are derived from the persisted hit bitvec (one
    classified entry per padded value outside the window), so they are
    cursor-independent and cost nothing on the push path:
    [tl_lookups = length + ctx] and [tl_hits + tl_misses = tl_lookups]
    always. Step counters track cursor traversal only — construction,
    peeks (a step plus its inverse) and [compress] itself do not count —
    and are zeroed by [reset_telemetry]. *)
type telemetry = {
  tl_lookups : int;  (** predictor lookups = entries classified *)
  tl_hits : int;  (** entries the predictor got right (flag-bit only) *)
  tl_misses : int;  (** entries stored verbatim (32-bit payload) *)
  tl_fwd_steps : int;  (** forward cursor steps since last reset *)
  tl_bwd_steps : int;  (** backward cursor steps since last reset *)
  tl_dir_switches : int;  (** traversal direction reversals *)
}

val telemetry : t -> telemetry

(** Zero the traversal counters ([tl_fwd_steps], [tl_bwd_steps],
    [tl_dir_switches]). [Wet.rewind] calls this so saved containers stay
    byte-deterministic regardless of query history. *)
val reset_telemetry : t -> unit
