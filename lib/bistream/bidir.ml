module Hashing = Wet_util.Hashing
module Bitvec = Wet_util.Bitvec

type meth = Fcm | Dfcm | Last_n | Last_stride

let meth_name = function
  | Fcm -> "fcm"
  | Dfcm -> "dfcm"
  | Last_n -> "last-n"
  | Last_stride -> "last-stride"

let all_meths = [ Fcm; Dfcm; Last_n; Last_stride ]

type t = {
  meth : meth;
  ctx : int;
  m : int;  (* real stream length *)
  p : int array;  (* padded storage: raw value in window, payload elsewhere *)
  hit : Bitvec.t;
  frtb : int array;  (* FCM family only; [||] otherwise *)
  bltb : int array;
  table_bits : int;
  mutable w : int;  (* window start: FR = [0,w), window = [w,w+ctx), BL after *)
  (* Traversal telemetry. Counted in the internal steps so seeks pay
     too; zeroed at the end of [compress] (the construction walk is not
     traversal) and by [reset_telemetry] ([Wet.rewind] calls it, keeping
     saved containers byte-deterministic). *)
  mutable tfwd : int;
  mutable tbwd : int;
  mutable tswitch : int;
  mutable tlast : int;  (* 0 none, 1 forward, 2 backward *)
}

type telemetry = {
  tl_lookups : int;
  tl_hits : int;
  tl_misses : int;
  tl_fwd_steps : int;
  tl_bwd_steps : int;
  tl_dir_switches : int;
}

let ceil_log2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(* Payload bits of a hit entry (the flag bit is counted separately). *)
let hit_bits t =
  match t.meth with
  | Fcm | Dfcm -> 0
  | Last_n | Last_stride -> ceil_log2 t.ctx

let key_fcm t q =
  Hashing.index_of_hash (Hashing.hash_window t.p q t.ctx) t.table_bits

let key_dfcm t q =
  let acc = ref Hashing.fnv_init in
  for i = q to q + t.ctx - 2 do
    acc := Hashing.fnv_fold !acc (t.p.(i + 1) - t.p.(i))
  done;
  Hashing.index_of_hash !acc t.table_bits

(* The [pop_*]/[push_*] pairs below are exact inverses: a miss entry's
   payload is the table value it displaced, so popping restores the
   table to its pre-push state (paper Fig. 5). The Last-n family uses
   the window itself as its table (paper Fig. 7) and needs no undo. *)

(* Pop the BL entry at padded position [pos]; its left context is the
   current window [pos-ctx .. pos-1]. Returns the revealed value. *)
let pop_bl t pos =
  let n = t.ctx in
  let hit = Bitvec.get t.hit pos in
  match t.meth with
  | Fcm ->
    let idx = key_fcm t (pos - n) in
    let x = t.bltb.(idx) in
    if not hit then t.bltb.(idx) <- t.p.(pos);
    x
  | Dfcm ->
    let idx = key_dfcm t (pos - n) in
    let s = t.bltb.(idx) in
    let x = t.p.(pos - 1) + s in
    if not hit then t.bltb.(idx) <- t.p.(pos);
    x
  | Last_n -> if hit then t.p.(pos - n + t.p.(pos)) else t.p.(pos)
  | Last_stride ->
    if hit then begin
      let k = t.p.(pos) in
      let s = if k = 0 then 0 else t.p.(pos - n + k) - t.p.(pos - n + k - 1) in
      t.p.(pos - 1) + s
    end
    else t.p.(pos)

(* Push value [x] (currently at window position [pos]) into BL; its left
   context is [pos-ctx .. pos-1]. Stores the entry payload at [pos]. *)
let push_bl t pos x =
  let n = t.ctx in
  let set hit payload =
    Bitvec.set t.hit pos hit;
    t.p.(pos) <- payload
  in
  match t.meth with
  | Fcm ->
    let idx = key_fcm t (pos - n) in
    if t.bltb.(idx) = x then set true 0
    else begin
      set false t.bltb.(idx);
      t.bltb.(idx) <- x
    end
  | Dfcm ->
    let idx = key_dfcm t (pos - n) in
    let s = x - t.p.(pos - 1) in
    if t.bltb.(idx) = s then set true 0
    else begin
      set false t.bltb.(idx);
      t.bltb.(idx) <- s
    end
  | Last_n ->
    let rec find k =
      if k >= n then set false x
      else if t.p.(pos - n + k) = x then set true k
      else find (k + 1)
    in
    find 0
  | Last_stride ->
    let s = x - t.p.(pos - 1) in
    if s = 0 then set true 0
    else begin
      let rec find k =
        if k >= n then set false x
        else if t.p.(pos - n + k) - t.p.(pos - n + k - 1) = s then set true k
        else find (k + 1)
      in
      find 1
    end

(* Pop the FR entry at padded position [pos]; its right context is the
   window [pos+1 .. pos+ctx]. *)
let pop_fr t pos =
  let hit = Bitvec.get t.hit pos in
  match t.meth with
  | Fcm ->
    let idx = key_fcm t (pos + 1) in
    let x = t.frtb.(idx) in
    if not hit then t.frtb.(idx) <- t.p.(pos);
    x
  | Dfcm ->
    let idx = key_dfcm t (pos + 1) in
    let s = t.frtb.(idx) in
    let x = t.p.(pos + 1) + s in
    if not hit then t.frtb.(idx) <- t.p.(pos);
    x
  | Last_n -> if hit then t.p.(pos + 1 + t.p.(pos)) else t.p.(pos)
  | Last_stride ->
    if hit then begin
      let k = t.p.(pos) in
      let s = if k = 0 then 0 else t.p.(pos + k) - t.p.(pos + k + 1) in
      t.p.(pos + 1) + s
    end
    else t.p.(pos)

(* Push value [x] (currently at window position [pos]) into FR; its
   right context is [pos+1 .. pos+ctx]. *)
let push_fr t pos x =
  let n = t.ctx in
  let set hit payload =
    Bitvec.set t.hit pos hit;
    t.p.(pos) <- payload
  in
  match t.meth with
  | Fcm ->
    let idx = key_fcm t (pos + 1) in
    if t.frtb.(idx) = x then set true 0
    else begin
      set false t.frtb.(idx);
      t.frtb.(idx) <- x
    end
  | Dfcm ->
    let idx = key_dfcm t (pos + 1) in
    let s = x - t.p.(pos + 1) in
    if t.frtb.(idx) = s then set true 0
    else begin
      set false t.frtb.(idx);
      t.frtb.(idx) <- s
    end
  | Last_n ->
    let rec find k =
      if k >= n then set false x
      else if t.p.(pos + 1 + k) = x then set true k
      else find (k + 1)
    in
    find 0
  | Last_stride ->
    let s = x - t.p.(pos + 1) in
    if s = 0 then set true 0
    else begin
      let rec find k =
        if k >= n then set false x
        else if t.p.(pos + k) - t.p.(pos + k + 1) = s then set true k
        else find (k + 1)
      in
      find 1
    end

let internal_step_forward ~tally t =
  let reveal = t.w + t.ctx in
  (* The hit flag of the entry being decoded, read before [pop_bl]
     (the pop rewrites the slot's payload; [push_fr] reclassifies it). *)
  let hit = Bitvec.get t.hit reveal in
  let x = pop_bl t reveal in
  let leaving = t.p.(t.w) in
  t.p.(reveal) <- x;
  push_fr t t.w leaving;
  t.w <- t.w + 1;
  t.tfwd <- t.tfwd + 1;
  let switched = t.tlast = 2 in
  if switched then t.tswitch <- t.tswitch + 1;
  t.tlast <- 1;
  Telemetry.note_packed ~tally ~fwd:true ~switched ~hit
    ~payload_bits:(if hit then hit_bits t else 32)
    ();
  x

(* A backward step reveals the value at index [w-1], which is already the
   rightmost window slot: it leaves the window into BL while the FR entry
   at [w-1] is popped to refill the window from the left. *)
let internal_step_backward ~tally t =
  let refill = t.w - 1 in
  let hit = Bitvec.get t.hit refill in
  let x = pop_fr t refill in
  let leaving = t.p.(t.w + t.ctx - 1) in
  (* The refill value must be in place before [push_bl] reads the new
     window as the left context of the leaving value. *)
  t.p.(refill) <- x;
  push_bl t (t.w + t.ctx - 1) leaving;
  t.w <- t.w - 1;
  t.tbwd <- t.tbwd + 1;
  let switched = t.tlast = 1 in
  if switched then t.tswitch <- t.tswitch + 1;
  t.tlast <- 2;
  Telemetry.note_packed ~tally ~fwd:false ~switched ~hit
    ~payload_bits:(if hit then hit_bits t else 32)
    ();
  leaving

let compress meth ~ctx values =
  if ctx < 1 || ctx > 16 then invalid_arg "Bidir.compress: ctx must be in [1,16]";
  let m = Array.length values in
  let p = Array.make (m + (2 * ctx)) 0 in
  Array.blit values 0 p ctx m;
  (* Tables are counted as part of the compressed size, so they are
     sized well below the stream itself; larger tables would raise hit
     rates slightly but cost more than they save on these streams. *)
  let table_bits =
    match meth with
    | Fcm | Dfcm -> min 12 (max 2 (ceil_log2 (max 2 m) - 5))
    | Last_n | Last_stride -> 0
  in
  let tb () =
    match meth with
    | Fcm | Dfcm -> Array.make (1 lsl table_bits) 0
    | Last_n | Last_stride -> [||]
  in
  let t =
    {
      meth; ctx; m; p;
      hit = Bitvec.create (m + (2 * ctx));
      frtb = tb (); bltb = tb (); table_bits;
      w = m + ctx;
      tfwd = 0; tbwd = 0; tswitch = 0; tlast = 0;
    }
  in
  (* Build the all-FR state left to right (each value compressed with
     its still-raw right context), then walk the cursor back to the left
     end, which moves everything into BL with consistent tables. The
     walk is construction, not traversal: it accounts against a scratch
     tally, so no caller's decode accounting ever sees it. *)
  let scratch = Telemetry.make () in
  for j = 0 to m + ctx - 1 do
    push_fr t j t.p.(j)
  done;
  for _ = 1 to m + ctx do
    ignore (internal_step_backward ~tally:scratch t)
  done;
  t.tfwd <- 0;
  t.tbwd <- 0;
  t.tswitch <- 0;
  t.tlast <- 0;
  t

let length t = t.m

let cursor t = t.w

(* The table/window state is a pure function of the cursor position —
   each pop exactly undoes the corresponding push — so deep-copying the
   mutable arrays at any [w] yields a fully independent cursor over the
   same logical values. Traversal counters start at zero: the clone has
   not traversed anything yet. *)
let clone t =
  {
    t with
    p = Array.copy t.p;
    hit = Bitvec.copy t.hit;
    frtb = Array.copy t.frtb;
    bltb = Array.copy t.bltb;
    tfwd = 0;
    tbwd = 0;
    tswitch = 0;
    tlast = 0;
  }

let step_forward ?(tally = Telemetry.default) t =
  if t.w >= t.m then invalid_arg "Bidir.step_forward: at right end";
  internal_step_forward ~tally t

let step_backward ?(tally = Telemetry.default) t =
  if t.w <= 0 then invalid_arg "Bidir.step_backward: at left end";
  internal_step_backward ~tally t

(* Peeks are a step and its exact inverse: they reveal a value without
   moving the cursor, so they must not show up as traversal either — the
   round trip accounts against a scratch tally. *)
let peek_forward ?tally:_ t =
  if t.w >= t.m then invalid_arg "Bidir.step_forward: at right end";
  let f, b, s, l = (t.tfwd, t.tbwd, t.tswitch, t.tlast) in
  let scratch = Telemetry.make () in
  let x = internal_step_forward ~tally:scratch t in
  ignore (internal_step_backward ~tally:scratch t);
  t.tfwd <- f;
  t.tbwd <- b;
  t.tswitch <- s;
  t.tlast <- l;
  x

let peek_backward ?tally:_ t =
  if t.w <= 0 then invalid_arg "Bidir.step_backward: at left end";
  let f, b, s, l = (t.tfwd, t.tbwd, t.tswitch, t.tlast) in
  let scratch = Telemetry.make () in
  let x = internal_step_backward ~tally:scratch t in
  ignore (internal_step_forward ~tally:scratch t);
  t.tfwd <- f;
  t.tbwd <- b;
  t.tswitch <- s;
  t.tlast <- l;
  x

let seek ?(tally = Telemetry.default) t k =
  if k < 0 || k > t.m then invalid_arg "Bidir.seek";
  while t.w < k do
    ignore (internal_step_forward ~tally t)
  done;
  while t.w > k do
    ignore (internal_step_backward ~tally t)
  done

let read_at ?(tally = Telemetry.default) t k =
  if k < 0 || k >= t.m then invalid_arg "Bidir.read_at";
  seek ~tally t k;
  step_forward ~tally t

let compressed_bits t =
  let hb = hit_bits t in
  let entry_bits pos =
    1 + (if Bitvec.get t.hit pos then hb else 32)
  in
  let total = ref (t.ctx * 32) in
  for pos = 0 to t.w - 1 do
    total := !total + entry_bits pos
  done;
  for pos = t.w + t.ctx to t.m + (2 * t.ctx) - 1 do
    total := !total + entry_bits pos
  done;
  (match t.meth with
   | Fcm | Dfcm -> total := !total + (2 * (1 lsl t.table_bits) * 32)
   | Last_n | Last_stride -> ());
  !total

let to_array ?(tally = Telemetry.default) t =
  seek ~tally t 0;
  Array.init t.m (fun _ -> step_forward ~tally t)

let meth t = t.meth

let ctx t = t.ctx

(* Dictionary telemetry is derived from the persistent hit bitvec rather
   than counted in the hot push path: every padded value outside the
   window carries exactly one classified entry, so lookups = m + ctx and
   the flag says whether the predictor hit. Cursor-position independent
   after a rewind, and free when nobody asks. *)
let telemetry t =
  let hits = ref 0 in
  for pos = 0 to t.w - 1 do
    if Bitvec.get t.hit pos then incr hits
  done;
  for pos = t.w + t.ctx to t.m + (2 * t.ctx) - 1 do
    if Bitvec.get t.hit pos then incr hits
  done;
  let lookups = t.m + t.ctx in
  {
    tl_lookups = lookups;
    tl_hits = !hits;
    tl_misses = lookups - !hits;
    tl_fwd_steps = t.tfwd;
    tl_bwd_steps = t.tbwd;
    tl_dir_switches = t.tswitch;
  }

let reset_telemetry t =
  t.tfwd <- 0;
  t.tbwd <- 0;
  t.tswitch <- 0;
  t.tlast <- 0
