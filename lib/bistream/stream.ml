type repr =
  | Raw of {
      data : int array;
      mutable pos : int;
      (* Traversal telemetry, mirroring Bidir's counters: steps only —
         seeks and random reads are O(1) on a raw array so they are not
         traversal work here. rlast: 0 none, 1 forward, 2 backward. *)
      mutable rfwd : int;
      mutable rbwd : int;
      mutable rswitch : int;
      mutable rlast : int;
    }
  | Packed of Bidir.t

type t = repr

type telemetry = Bidir.telemetry = {
  tl_lookups : int;
  tl_hits : int;
  tl_misses : int;
  tl_fwd_steps : int;
  tl_bwd_steps : int;
  tl_dir_switches : int;
}

let candidates =
  List.concat_map
    (fun meth -> List.map (fun ctx -> (meth, ctx)) [ 1; 2; 4 ])
    Bidir.all_meths

(* Streams shorter than this are kept raw outright; the trial prefix is
   capped at [trial_len] values. *)
let raw_cutoff = 16

let trial_len = 4096

let compress_with spec values =
  match spec with
  | `Raw ->
    Raw
      {
        data = Array.copy values;
        pos = 0;
        rfwd = 0;
        rbwd = 0;
        rswitch = 0;
        rlast = 0;
      }
  | `Bidir (meth, ctx) -> Packed (Bidir.compress meth ~ctx values)

let compress values =
  let m = Array.length values in
  if m < raw_cutoff then compress_with `Raw values
  else begin
    let prefix =
      if m <= trial_len then values else Array.sub values 0 trial_len
    in
    let best = ref (`Raw, 32 * Array.length prefix) in
    List.iter
      (fun (meth, ctx) ->
        let bits = Bidir.compressed_bits (Bidir.compress meth ~ctx prefix) in
        if bits < snd !best then best := (`Bidir (meth, ctx), bits))
      candidates;
    compress_with (fst !best) values
  end

let length = function
  | Raw { data; _ } -> Array.length data
  | Packed b -> Bidir.length b

let cursor = function Raw { pos; _ } -> pos | Packed b -> Bidir.cursor b

let step_forward = function
  | Raw r ->
    if r.pos >= Array.length r.data then
      invalid_arg "Stream.step_forward: at right end";
    let x = r.data.(r.pos) in
    r.pos <- r.pos + 1;
    r.rfwd <- r.rfwd + 1;
    let switched = r.rlast = 2 in
    if switched then r.rswitch <- r.rswitch + 1;
    r.rlast <- 1;
    Telemetry.note_raw ~fwd:true ~switched;
    x
  | Packed b -> Bidir.step_forward b

let step_backward = function
  | Raw r ->
    if r.pos <= 0 then invalid_arg "Stream.step_backward: at left end";
    r.pos <- r.pos - 1;
    r.rbwd <- r.rbwd + 1;
    let switched = r.rlast = 1 in
    if switched then r.rswitch <- r.rswitch + 1;
    r.rlast <- 2;
    Telemetry.note_raw ~fwd:false ~switched;
    r.data.(r.pos)
  | Packed b -> Bidir.step_backward b

let peek_forward = function
  | Raw r ->
    if r.pos >= Array.length r.data then
      invalid_arg "Stream.peek_forward: at right end";
    r.data.(r.pos)
  | Packed b -> Bidir.peek_forward b

let peek_backward = function
  | Raw r ->
    if r.pos <= 0 then invalid_arg "Stream.peek_backward: at left end";
    r.data.(r.pos - 1)
  | Packed b -> Bidir.peek_backward b

let seek t k =
  match t with
  | Raw r ->
    if k < 0 || k > Array.length r.data then invalid_arg "Stream.seek";
    r.pos <- k
  | Packed b -> Bidir.seek b k

let read_at t k =
  match t with
  | Raw r ->
    if k < 0 || k >= Array.length r.data then invalid_arg "Stream.read_at";
    r.pos <- k + 1;
    r.data.(k)
  | Packed b -> Bidir.read_at b k

let bits = function
  | Raw { data; _ } -> 32 * Array.length data
  | Packed b -> Bidir.compressed_bits b

let telemetry = function
  | Raw r ->
    (* Raw streams do no prediction: every value is stored verbatim and
       there is no dictionary to hit. *)
    {
      tl_lookups = 0;
      tl_hits = 0;
      tl_misses = 0;
      tl_fwd_steps = r.rfwd;
      tl_bwd_steps = r.rbwd;
      tl_dir_switches = r.rswitch;
    }
  | Packed b -> Bidir.telemetry b

let reset_telemetry = function
  | Raw r ->
    r.rfwd <- 0;
    r.rbwd <- 0;
    r.rswitch <- 0;
    r.rlast <- 0
  | Packed b -> Bidir.reset_telemetry b

let method_name = function
  | Raw _ -> "raw"
  | Packed b ->
    Printf.sprintf "%s/%d" (Bidir.meth_name (Bidir.meth b)) (Bidir.ctx b)

let to_array = function
  | Raw r ->
    r.pos <- Array.length r.data;
    Array.copy r.data
  | Packed b -> Bidir.to_array b

let lower_bound t v =
  match t with
  | Raw r ->
    let lo = ref 0 and hi = ref (Array.length r.data) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if r.data.(mid) < v then lo := mid + 1 else hi := mid
    done;
    r.pos <- !lo;
    !lo
  | Packed b ->
    let m = Bidir.length b in
    while Bidir.cursor b > 0 && Bidir.peek_backward b >= v do
      ignore (Bidir.step_backward b)
    done;
    while Bidir.cursor b < m && Bidir.peek_forward b < v do
      ignore (Bidir.step_forward b)
    done;
    Bidir.cursor b

let find_ascending t v =
  match t with
  | Raw r ->
    let lo = ref 0 and hi = ref (Array.length r.data - 1) in
    let found = ref None in
    while !found = None && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let x = r.data.(mid) in
      if x = v then found := Some mid
      else if x < v then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  | Packed b ->
    let m = Bidir.length b in
    if m = 0 then None
    else begin
      (* Walk until the value just right of the cursor is >= v. *)
      while Bidir.cursor b > 0 && Bidir.peek_backward b >= v do
        ignore (Bidir.step_backward b)
      done;
      while Bidir.cursor b < m && Bidir.peek_forward b < v do
        ignore (Bidir.step_forward b)
      done;
      if Bidir.cursor b < m && Bidir.peek_forward b = v then
        Some (Bidir.cursor b)
      else None
    end
