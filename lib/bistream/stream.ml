(* A stream is split hard into two halves:

   - [body]: the compressed payload, picked once at build time and
     immutable afterwards. Packed bodies are *pristine templates*: their
     Bidir state is parked at the left end (w = 0) with zeroed traversal
     counters and is never stepped again, so marshalling a body is
     byte-deterministic no matter what queries ran before.

   - [cur]: a cursor — all traversal state (position, direction flag,
     per-cursor step counters, and for packed bodies a deep clone of the
     window/table state). Cursors are single-owner and cheap to mint
     lazily: [Cursor.make] is O(1), the clone happens on first touch.

   The historical module-level API (step/seek/peek on the stream itself)
   survives as thin wrappers over one implicit default cursor stored on
   the stream, so single-session code and tests compile unchanged;
   concurrent readers each mint their own cursor via [Cursor]. *)

type body = Braw of int array | Bpacked of Bidir.t

type view =
  | Vraw of {
      data : int array;  (* physically shared with the body *)
      mutable pos : int;
      (* Traversal telemetry, mirroring Bidir's counters: steps only —
         seeks and random reads are O(1) on a raw array so they are not
         traversal work here. rlast: 0 none, 1 forward, 2 backward. *)
      mutable rfwd : int;
      mutable rbwd : int;
      mutable rswitch : int;
      mutable rlast : int;
    }
  | Vpacked of Bidir.t  (* a deep clone of the pristine template *)

type cur = { c_body : body; mutable c_view : view option }

type stream = { body : body; mutable dcur : cur option }

type t = stream

type telemetry = Bidir.telemetry = {
  tl_lookups : int;
  tl_hits : int;
  tl_misses : int;
  tl_fwd_steps : int;
  tl_bwd_steps : int;
  tl_dir_switches : int;
}

let candidates =
  List.concat_map
    (fun meth -> List.map (fun ctx -> (meth, ctx)) [ 1; 2; 4 ])
    Bidir.all_meths

(* Streams shorter than this are kept raw outright; the trial prefix is
   capped at [trial_len] values. *)
let raw_cutoff = 16

let trial_len = 4096

let compress_with spec values =
  match spec with
  | `Raw -> { body = Braw (Array.copy values); dcur = None }
  | `Bidir (meth, ctx) ->
    { body = Bpacked (Bidir.compress meth ~ctx values); dcur = None }

let compress values =
  let m = Array.length values in
  if m < raw_cutoff then compress_with `Raw values
  else begin
    let prefix =
      if m <= trial_len then values else Array.sub values 0 trial_len
    in
    let best = ref (`Raw, 32 * Array.length prefix) in
    List.iter
      (fun (meth, ctx) ->
        let bits = Bidir.compressed_bits (Bidir.compress meth ~ctx prefix) in
        if bits < snd !best then best := (`Bidir (meth, ctx), bits))
      candidates;
    compress_with (fst !best) values
  end

let body_length = function
  | Braw data -> Array.length data
  | Bpacked b -> Bidir.length b

let length t = body_length t.body

let bits t =
  match t.body with
  | Braw data -> 32 * Array.length data
  | Bpacked b -> Bidir.compressed_bits b

let method_name t =
  match t.body with
  | Braw _ -> "raw"
  | Bpacked b ->
    Printf.sprintf "%s/%d" (Bidir.meth_name (Bidir.meth b)) (Bidir.ctx b)

(* Pure decode of the body: packed templates are cloned first, so the
   pristine state (and every live cursor) is untouched, and the decode
   walk accounts to a scratch tally — reading the container's contents
   is representation work, not query traversal. *)
let contents t =
  match t.body with
  | Braw data -> Array.copy data
  | Bpacked b ->
    Bidir.to_array ~tally:(Telemetry.make ()) (Bidir.clone b)

(* ------------------------------------------------------------------ *)
(* Cursors                                                            *)
(* ------------------------------------------------------------------ *)

module Cursor = struct
  type stream = t

  type t = cur

  let make (s : stream) = { c_body = s.body; c_view = None }

  let view c =
    match c.c_view with
    | Some v -> v
    | None ->
      let v =
        match c.c_body with
        | Braw data ->
          Vraw { data; pos = 0; rfwd = 0; rbwd = 0; rswitch = 0; rlast = 0 }
        | Bpacked b -> Vpacked (Bidir.clone b)
      in
      c.c_view <- Some v;
      v

  let length c = body_length c.c_body

  let pos c =
    match c.c_view with
    | None -> 0
    | Some (Vraw r) -> r.pos
    | Some (Vpacked b) -> Bidir.cursor b

  let step_forward ?(tally = Telemetry.default) c =
    match view c with
    | Vraw r ->
      if r.pos >= Array.length r.data then
        invalid_arg "Stream.step_forward: at right end";
      let x = r.data.(r.pos) in
      r.pos <- r.pos + 1;
      r.rfwd <- r.rfwd + 1;
      let switched = r.rlast = 2 in
      if switched then r.rswitch <- r.rswitch + 1;
      r.rlast <- 1;
      Telemetry.note_raw ~tally ~fwd:true ~switched ();
      x
    | Vpacked b -> Bidir.step_forward ~tally b

  let step_backward ?(tally = Telemetry.default) c =
    match view c with
    | Vraw r ->
      if r.pos <= 0 then invalid_arg "Stream.step_backward: at left end";
      r.pos <- r.pos - 1;
      r.rbwd <- r.rbwd + 1;
      let switched = r.rlast = 1 in
      if switched then r.rswitch <- r.rswitch + 1;
      r.rlast <- 2;
      Telemetry.note_raw ~tally ~fwd:false ~switched ();
      r.data.(r.pos)
    | Vpacked b -> Bidir.step_backward ~tally b

  let peek_forward c =
    match view c with
    | Vraw r ->
      if r.pos >= Array.length r.data then
        invalid_arg "Stream.peek_forward: at right end";
      r.data.(r.pos)
    | Vpacked b -> Bidir.peek_forward b

  let peek_backward c =
    match view c with
    | Vraw r ->
      if r.pos <= 0 then invalid_arg "Stream.peek_backward: at left end";
      r.data.(r.pos - 1)
    | Vpacked b -> Bidir.peek_backward b

  let seek ?(tally = Telemetry.default) c k =
    match view c with
    | Vraw r ->
      if k < 0 || k > Array.length r.data then invalid_arg "Stream.seek";
      r.pos <- k
    | Vpacked b -> Bidir.seek ~tally b k

  let read_at ?(tally = Telemetry.default) c k =
    match view c with
    | Vraw r ->
      if k < 0 || k >= Array.length r.data then invalid_arg "Stream.read_at";
      r.pos <- k + 1;
      r.data.(k)
    | Vpacked b -> Bidir.read_at ~tally b k

  let to_array ?(tally = Telemetry.default) c =
    match view c with
    | Vraw r ->
      r.pos <- Array.length r.data;
      Array.copy r.data
    | Vpacked b -> Bidir.to_array ~tally b

  let lower_bound ?(tally = Telemetry.default) c v =
    match view c with
    | Vraw r ->
      let lo = ref 0 and hi = ref (Array.length r.data) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if r.data.(mid) < v then lo := mid + 1 else hi := mid
      done;
      r.pos <- !lo;
      !lo
    | Vpacked b ->
      let m = Bidir.length b in
      while Bidir.cursor b > 0 && Bidir.peek_backward b >= v do
        ignore (Bidir.step_backward ~tally b)
      done;
      while Bidir.cursor b < m && Bidir.peek_forward b < v do
        ignore (Bidir.step_forward ~tally b)
      done;
      Bidir.cursor b

  let find_ascending ?(tally = Telemetry.default) c v =
    match view c with
    | Vraw r ->
      let lo = ref 0 and hi = ref (Array.length r.data - 1) in
      let found = ref None in
      while !found = None && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = r.data.(mid) in
        if x = v then found := Some mid
        else if x < v then lo := mid + 1
        else hi := mid - 1
      done;
      !found
    | Vpacked b ->
      let m = Bidir.length b in
      if m = 0 then None
      else begin
        (* Walk until the value just right of the cursor is >= v. *)
        while Bidir.cursor b > 0 && Bidir.peek_backward b >= v do
          ignore (Bidir.step_backward ~tally b)
        done;
        while Bidir.cursor b < m && Bidir.peek_forward b < v do
          ignore (Bidir.step_forward ~tally b)
        done;
        if Bidir.cursor b < m && Bidir.peek_forward b = v then
          Some (Bidir.cursor b)
        else None
      end

  (* Traversal counters of this cursor (zero until first touch). *)
  let fwd_steps c =
    match c.c_view with
    | None -> 0
    | Some (Vraw r) -> r.rfwd
    | Some (Vpacked b) -> (Bidir.telemetry b).tl_fwd_steps

  let bwd_steps c =
    match c.c_view with
    | None -> 0
    | Some (Vraw r) -> r.rbwd
    | Some (Vpacked b) -> (Bidir.telemetry b).tl_bwd_steps

  let dir_switches c =
    match c.c_view with
    | None -> 0
    | Some (Vraw r) -> r.rswitch
    | Some (Vpacked b) -> (Bidir.telemetry b).tl_dir_switches
end

(* ------------------------------------------------------------------ *)
(* Implicit default cursor (deprecated single-session surface)        *)
(* ------------------------------------------------------------------ *)

let default_cursor t =
  match t.dcur with
  | Some c -> c
  | None ->
    let c = { c_body = t.body; c_view = None } in
    t.dcur <- Some c;
    c

let drop_cursor t = t.dcur <- None

let cursor t = match t.dcur with None -> 0 | Some c -> Cursor.pos c

let step_forward t = Cursor.step_forward (default_cursor t)

let step_backward t = Cursor.step_backward (default_cursor t)

let peek_forward t = Cursor.peek_forward (default_cursor t)

let peek_backward t = Cursor.peek_backward (default_cursor t)

let seek t k = Cursor.seek (default_cursor t) k

let read_at t k = Cursor.read_at (default_cursor t) k

let to_array t = Cursor.to_array (default_cursor t)

let lower_bound t v = Cursor.lower_bound (default_cursor t) v

let find_ascending t v = Cursor.find_ascending (default_cursor t) v

(* Dictionary figures come from the body (they are representation, not
   history, and identical in every cursor); traversal counters come from
   the default cursor — the single-session view the CLI reports. *)
let telemetry t =
  let base =
    match t.body with
    | Braw _ ->
      (* Raw streams do no prediction: every value is stored verbatim and
         there is no dictionary to hit. *)
      {
        tl_lookups = 0;
        tl_hits = 0;
        tl_misses = 0;
        tl_fwd_steps = 0;
        tl_bwd_steps = 0;
        tl_dir_switches = 0;
      }
    | Bpacked b -> Bidir.telemetry b
  in
  match t.dcur with
  | None -> base
  | Some c ->
    {
      base with
      tl_fwd_steps = Cursor.fwd_steps c;
      tl_bwd_steps = Cursor.bwd_steps c;
      tl_dir_switches = Cursor.dir_switches c;
    }

let reset_telemetry t =
  match t.dcur with
  | None -> ()
  | Some c -> (
    match c.c_view with
    | None -> ()
    | Some (Vraw r) ->
      r.rfwd <- 0;
      r.rbwd <- 0;
      r.rswitch <- 0;
      r.rlast <- 0
    | Some (Vpacked b) -> Bidir.reset_telemetry b)
