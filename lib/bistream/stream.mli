(** Tier-2 compressed streams with per-stream method selection.

    Following the paper's "Selection" paragraph (§5), each stream is
    trial-compressed with every bidirectional method — FCM, differential
    FCM, last-n and last-n-stride, each at three context sizes — over a
    bounded prefix, and the smallest result wins. A raw (uncompressed)
    representation competes too, so compression never loses more than
    the trial cost; tiny streams usually stay raw.

    {1 Container vs. cursor}

    A stream value is an immutable compressed {e body} — packed bodies
    are pristine templates parked at the left end, never stepped after
    construction, so marshalling is byte-deterministic regardless of
    query history. All traversal state (position, direction, per-cursor
    step counters, the bidirectional window/table state) lives in
    {!Cursor.t} handles. A body may be read through any number of
    concurrent cursors; each cursor is single-owner.

    The historical module-level traversal functions below survive as
    deprecated wrappers over one implicit {e default cursor} per stream:
    correct for single-session use, not for concurrent readers. *)

type t

(** All candidate (method, context) pairs, in trial order. *)
val candidates : (Bidir.meth * int) list

(** [compress values] picks the best method for this stream and builds
    the compressed representation (no cursor attached). *)
val compress : int array -> t

(** Force a specific representation (for ablations and tests). *)
val compress_with : [ `Raw | `Bidir of Bidir.meth * int ] -> int array -> t

val length : t -> int

(** Analytic compressed size in bits (32 bits per value when raw). *)
val bits : t -> int

(** Human-readable method name, e.g. ["dfcm/4"] or ["raw"]. *)
val method_name : t -> string

(** Pure decode of the whole stream. Never touches the default cursor
    or any live cursor (packed bodies are cloned first), and accounts to
    a scratch tally — reading the representation is not traversal. *)
val contents : t -> int array

(** Explicit traversal handles. [make] is O(1); the first traversal of a
    packed body pays one O(length) clone of the window/table state,
    which is safe at any position because that state is a pure function
    of the cursor (see {!Bidir.clone}). Each cursor is single-owner:
    share the stream, not the cursor. *)
module Cursor : sig
  type stream := t

  type t

  (** A fresh cursor at position 0 over [s]'s body. O(1). *)
  val make : stream -> t

  (** Number of values in the underlying stream. *)
  val length : t -> int

  (** Values revealed so far by forward steps (cursor position). *)
  val pos : t -> int

  (** Traversal ops mirror the historical stream-level API, with decode
      work attributed to [tally] (default {!Telemetry.default}). Bounds
      violations raise the same [Invalid_argument] messages as before
      ("Stream.step_forward: at right end", …). *)

  val step_forward : ?tally:Telemetry.tally -> t -> int

  val step_backward : ?tally:Telemetry.tally -> t -> int

  val peek_forward : t -> int

  val peek_backward : t -> int

  val seek : ?tally:Telemetry.tally -> t -> int -> unit

  (** [read_at c k] is the value at index [k] (moves the cursor). *)
  val read_at : ?tally:Telemetry.tally -> t -> int -> int

  (** Decompress everything (moves the cursor to the right end). *)
  val to_array : ?tally:Telemetry.tally -> t -> int array

  (** [lower_bound c v] is the index of the first value [>= v] in an
      ascending stream ([length c] if none); the cursor finishes there.
      Raw bodies binary-search (O(1) cursor moves); packed bodies walk
      from the current position. *)
  val lower_bound : ?tally:Telemetry.tally -> t -> int -> int

  (** [find_ascending c v] is the index of [v] in a stream whose values
      are strictly ascending, or [None]. Packed cursors step from their
      current position, so repeated nearby lookups are cheap — this is
      what makes tier-1 queries faster than tier-2 queries in the
      paper's Tables 6–9. *)
  val find_ascending : ?tally:Telemetry.tally -> t -> int -> int option

  (** Per-cursor traversal counters (zero before the first touch). *)

  val fwd_steps : t -> int

  val bwd_steps : t -> int

  val dir_switches : t -> int
end

(** The stream's implicit default cursor (minted lazily, O(1)) — the
    handle behind the deprecated wrappers below. [Wet]'s implicit
    default session reads through these so that legacy single-session
    call sites and the module-level functions observe the same
    positions. *)
val default_cursor : t -> Cursor.t

(** {1 Deprecated implicit-cursor surface}

    Every function below operates on the stream's implicit default
    cursor (minted lazily on first use). Safe only when the stream has a
    single traversing owner; concurrent readers must use {!Cursor}. *)

(** Position of the default cursor (0 when none was ever minted). *)
val cursor : t -> int
[@@deprecated "use Stream.Cursor"]

val step_forward : t -> int
[@@deprecated "use Stream.Cursor"]

val step_backward : t -> int
[@@deprecated "use Stream.Cursor"]

val peek_forward : t -> int
[@@deprecated "use Stream.Cursor"]

val peek_backward : t -> int
[@@deprecated "use Stream.Cursor"]

val seek : t -> int -> unit
[@@deprecated "use Stream.Cursor"]

(** [read_at t k] is the value at index [k] (moves the default cursor). *)
val read_at : t -> int -> int
[@@deprecated "use Stream.Cursor"]

(** Decompress everything (moves the default cursor). *)
val to_array : t -> int array
[@@deprecated "use Stream.contents or Stream.Cursor.to_array"]

val find_ascending : t -> int -> int option
[@@deprecated "use Stream.Cursor"]

val lower_bound : t -> int -> int
[@@deprecated "use Stream.Cursor"]

(** Per-stream telemetry (see {!Bidir.telemetry}). Dictionary figures
    come from the immutable body (identical in every cursor; all zero
    for raw bodies — there is no predictor). Traversal counters report
    the {e default cursor}'s steps only — per-session traversal lives
    in the session's {!Telemetry.tally}. *)
type telemetry = Bidir.telemetry = {
  tl_lookups : int;
  tl_hits : int;
  tl_misses : int;
  tl_fwd_steps : int;
  tl_bwd_steps : int;
  tl_dir_switches : int;
}

val telemetry : t -> telemetry

(** Zero the default cursor's traversal counters (no-op if it was never
    minted). *)
val reset_telemetry : t -> unit

(** Drop the default cursor entirely: the stream reverts to its pristine
    as-built state (position 0, zero counters). [Wet.rewind] calls this
    so saved containers stay byte-deterministic. Live explicit cursors
    are unaffected. *)
val drop_cursor : t -> unit
