(** Tier-2 compressed streams with per-stream method selection.

    Following the paper's "Selection" paragraph (§5), each stream is
    trial-compressed with every bidirectional method — FCM, differential
    FCM, last-n and last-n-stride, each at three context sizes — over a
    bounded prefix, and the smallest result wins. A raw (uncompressed)
    representation competes too, so compression never loses more than
    the trial cost; tiny streams usually stay raw. *)

type t

(** All candidate (method, context) pairs, in trial order. *)
val candidates : (Bidir.meth * int) list

(** [compress values] picks the best method for this stream and builds
    the compressed representation, cursor at the left end. *)
val compress : int array -> t

(** Force a specific representation (for ablations and tests). *)
val compress_with : [ `Raw | `Bidir of Bidir.meth * int ] -> int array -> t

val length : t -> int

(** Values revealed so far by forward steps (cursor position). *)
val cursor : t -> int

val step_forward : t -> int
val step_backward : t -> int
val peek_forward : t -> int
val peek_backward : t -> int
val seek : t -> int -> unit

(** [read_at t k] is the value at index [k] (moves the cursor). *)
val read_at : t -> int -> int

(** Analytic compressed size in bits (32 bits per value when raw). *)
val bits : t -> int

(** Human-readable method name, e.g. ["dfcm/4"] or ["raw"]. *)
val method_name : t -> string

(** Per-stream telemetry (see {!Bidir.telemetry}). For raw streams the
    dictionary figures are all zero — there is no predictor — and the
    step counters track cursor steps only (seeks and [read_at] are O(1)
    random access on raw data, so they are not traversal work). *)
type telemetry = Bidir.telemetry = {
  tl_lookups : int;
  tl_hits : int;
  tl_misses : int;
  tl_fwd_steps : int;
  tl_bwd_steps : int;
  tl_dir_switches : int;
}

val telemetry : t -> telemetry

(** Zero the traversal counters; called by [Wet.rewind] to keep saved
    containers byte-deterministic. *)
val reset_telemetry : t -> unit

(** Decompress everything (moves the cursor). *)
val to_array : t -> int array

(** [find_ascending t v] is the index of [v] in a stream whose values are
    strictly ascending, or [None]. Raw streams binary-search; packed
    streams step their cursor from its current position, so repeated
    nearby lookups are cheap — this is what makes tier-1 queries faster
    than tier-2 queries in the paper's Tables 6–9. *)
val find_ascending : t -> int -> int option

(** [lower_bound t v] is the index of the first value [>= v] in an
    ascending stream ([length t] if none); the cursor finishes there. *)
val lower_bound : t -> int -> int
