(** Decode telemetry tallies: the snapshot/delta substrate of per-query
    cost attribution ([Wet_qprof]).

    The per-stream counters in {!Stream.telemetry} answer "what happened
    to this stream since its last reset"; a query profiler needs the
    dual — "how much decode work happened in this window of time,
    across every stream". A {!tally} is a bundle of counters bumped by
    the very same internal steps that feed the per-stream ones, so the
    two views stay in lockstep: peeks (a step and its exact inverse) and
    the construction walk inside [Bidir.compress] account against
    scratch tallies, and raw-stream seeks/random reads stay free in
    both.

    {!default} is the process tally behind the historical tally-less
    API: single-session callers never name a tally and observe exactly
    the old global-counter behaviour. Concurrent sessions
    ([Wet.Session]) each own a private tally, so decode work attributes
    to the session that performed it without cross-domain races.

    Unlike per-stream counters a tally is monotone for the life of its
    owner: [Wet.rewind] does not touch tallies (they are never
    marshalled, so byte-determinism of saved containers is unaffected).
    Consumers only ever look at the difference between two {!snapshot}s,
    which makes deltas of disjoint windows sum exactly to the delta of
    their union — the reconciliation property [test_qprof] checks. *)

type snapshot = {
  g_fwd : int;  (** forward cursor steps *)
  g_bwd : int;  (** backward cursor steps *)
  g_switches : int;  (** traversal direction reversals (per stream) *)
  g_hits : int;  (** dictionary-hit entries decoded (packed only) *)
  g_misses : int;  (** verbatim entries decoded (packed only) *)
  g_bits : int;
      (** stored bits touched: flag + payload per packed entry, 32 per
          raw value *)
}

val zero : snapshot

(** A mutable counter bundle. Single-owner: one session (or the
    implicit default context) accounts against one tally; sharing a
    tally across domains races benignly (lost increments) but never
    corrupts memory. *)
type tally

(** A fresh tally, all counters zero. *)
val make : unit -> tally

(** The process-wide tally used whenever no explicit tally is passed —
    the historical global counters. *)
val default : tally

(** Current value of a tally's counters ({!default} if omitted). O(1),
    allocates one record. *)
val snapshot : ?tally:tally -> unit -> snapshot

(** Field-wise [after - before]: the decode work between two moments. *)
val delta : before:snapshot -> after:snapshot -> snapshot

(** Field-wise sum (for aggregating deltas). *)
val add : snapshot -> snapshot -> snapshot

(** [g_fwd + g_bwd]. *)
val steps : snapshot -> int

(** All fields non-negative (true for any well-formed delta). *)
val nonneg : snapshot -> bool

(** Set a tally's counters back to a snapshot. Not for general use. *)
val restore : ?tally:tally -> snapshot -> unit

(**/**)

(* Recording entry points for Bidir/Stream internal steps. *)

val note_packed :
  ?tally:tally ->
  fwd:bool -> switched:bool -> hit:bool -> payload_bits:int -> unit -> unit

val note_raw : ?tally:tally -> fwd:bool -> switched:bool -> unit -> unit
