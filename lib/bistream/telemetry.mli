(** Process-global decode telemetry: the snapshot/delta substrate of
    per-query cost attribution ([Wet_qprof]).

    The per-stream counters in {!Stream.telemetry} answer "what happened
    to this stream since its last reset"; a query profiler needs the
    dual — "how much decode work happened in this window of time,
    across every stream". These module-global counters are bumped by
    the very same internal steps that feed the per-stream ones, so the
    two views stay in lockstep: peeks (a step and its exact inverse) and
    the construction walk inside [Bidir.compress] save and restore the
    globals exactly as they do the per-stream counters, and raw-stream
    seeks/random reads stay free in both.

    Unlike per-stream counters the globals are monotone for the life of
    the process: [Wet.rewind]'s [reset_telemetry] does not touch them
    (they are never marshalled, so byte-determinism of saved containers
    is unaffected). Consumers only ever look at the difference between
    two {!snapshot}s, which makes deltas of disjoint windows sum exactly
    to the delta of their union — the reconciliation property
    [test_qprof] checks. *)

type snapshot = {
  g_fwd : int;  (** forward cursor steps *)
  g_bwd : int;  (** backward cursor steps *)
  g_switches : int;  (** traversal direction reversals (per stream) *)
  g_hits : int;  (** dictionary-hit entries decoded (packed only) *)
  g_misses : int;  (** verbatim entries decoded (packed only) *)
  g_bits : int;
      (** stored bits touched: flag + payload per packed entry, 32 per
          raw value *)
}

val zero : snapshot

(** Current value of the global counters. O(1), allocates one record. *)
val snapshot : unit -> snapshot

(** Field-wise [after - before]: the decode work between two moments. *)
val delta : before:snapshot -> after:snapshot -> snapshot

(** Field-wise sum (for aggregating deltas). *)
val add : snapshot -> snapshot -> snapshot

(** [g_fwd + g_bwd]. *)
val steps : snapshot -> int

(** All fields non-negative (true for any well-formed delta). *)
val nonneg : snapshot -> bool

(** Set the counters back to a snapshot. Used by [Bidir]'s peeks and
    construction walk to keep the globals in lockstep with the
    per-stream counters; not for general use. *)
val restore : snapshot -> unit

(**/**)

(* Recording entry points for Bidir/Stream internal steps. *)

val note_packed :
  fwd:bool -> switched:bool -> hit:bool -> payload_bits:int -> unit

val note_raw : fwd:bool -> switched:bool -> unit
