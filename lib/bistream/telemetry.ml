(* Decode counters, bumped by the same internal steps that feed the
   per-stream counters in Bidir/Stream. A [tally] is a bundle of monotone
   mutable counters — never marshalled, never reset by [Wet.rewind] — so
   a [before]/[after] snapshot pair brackets exactly the decode work
   performed against that tally in between, no matter which streams it
   landed on. Peeks and [Bidir.compress]'s construction walk use scratch
   tallies so they never perturb a caller's accounting.

   [default] is the process tally behind the historical global API:
   single-session callers (the CLI, the tests) never mention tallies and
   see exactly the old behaviour. Concurrent sessions each carry their
   own tally so their decode work attributes to the right qprof window
   without any cross-domain races. *)

type snapshot = {
  g_fwd : int;  (* forward cursor steps *)
  g_bwd : int;  (* backward cursor steps *)
  g_switches : int;  (* per-stream traversal direction reversals *)
  g_hits : int;  (* dictionary hits decoded (packed streams only) *)
  g_misses : int;  (* verbatim entries decoded (packed streams only) *)
  g_bits : int;  (* stored bits touched: flag + payload, 32/raw value *)
}

let zero =
  { g_fwd = 0; g_bwd = 0; g_switches = 0; g_hits = 0; g_misses = 0; g_bits = 0 }

type tally = {
  mutable a_fwd : int;
  mutable a_bwd : int;
  mutable a_switches : int;
  mutable a_hits : int;
  mutable a_misses : int;
  mutable a_bits : int;
}

let make () =
  { a_fwd = 0; a_bwd = 0; a_switches = 0; a_hits = 0; a_misses = 0; a_bits = 0 }

let default = make ()

let snapshot ?(tally = default) () =
  {
    g_fwd = tally.a_fwd;
    g_bwd = tally.a_bwd;
    g_switches = tally.a_switches;
    g_hits = tally.a_hits;
    g_misses = tally.a_misses;
    g_bits = tally.a_bits;
  }

let restore ?(tally = default) s =
  tally.a_fwd <- s.g_fwd;
  tally.a_bwd <- s.g_bwd;
  tally.a_switches <- s.g_switches;
  tally.a_hits <- s.g_hits;
  tally.a_misses <- s.g_misses;
  tally.a_bits <- s.g_bits

let delta ~before ~after =
  {
    g_fwd = after.g_fwd - before.g_fwd;
    g_bwd = after.g_bwd - before.g_bwd;
    g_switches = after.g_switches - before.g_switches;
    g_hits = after.g_hits - before.g_hits;
    g_misses = after.g_misses - before.g_misses;
    g_bits = after.g_bits - before.g_bits;
  }

let add a b =
  {
    g_fwd = a.g_fwd + b.g_fwd;
    g_bwd = a.g_bwd + b.g_bwd;
    g_switches = a.g_switches + b.g_switches;
    g_hits = a.g_hits + b.g_hits;
    g_misses = a.g_misses + b.g_misses;
    g_bits = a.g_bits + b.g_bits;
  }

let steps s = s.g_fwd + s.g_bwd

let nonneg s =
  s.g_fwd >= 0 && s.g_bwd >= 0 && s.g_switches >= 0 && s.g_hits >= 0
  && s.g_misses >= 0 && s.g_bits >= 0

(* One packed-stream step: the revealed entry's flag bit plus its
   payload. Hit/miss classification comes from the persisted hit bitvec
   of the entry being decoded. *)
let note_packed ?(tally = default) ~fwd ~switched ~hit ~payload_bits () =
  (if fwd then tally.a_fwd <- tally.a_fwd + 1
   else tally.a_bwd <- tally.a_bwd + 1);
  if switched then tally.a_switches <- tally.a_switches + 1;
  (if hit then tally.a_hits <- tally.a_hits + 1
   else tally.a_misses <- tally.a_misses + 1);
  tally.a_bits <- tally.a_bits + 1 + payload_bits

(* One raw-stream step: a verbatim 32-bit value, no predictor. *)
let note_raw ?(tally = default) ~fwd ~switched () =
  (if fwd then tally.a_fwd <- tally.a_fwd + 1
   else tally.a_bwd <- tally.a_bwd + 1);
  if switched then tally.a_switches <- tally.a_switches + 1;
  tally.a_bits <- tally.a_bits + 32
