(* Process-global decode counters, bumped by the same internal steps that
   feed the per-stream counters in Bidir/Stream. Everything here is
   monotone module state — never marshalled, never reset by
   [reset_telemetry] — so a [before]/[after] snapshot pair brackets
   exactly the decode work performed in between, no matter which streams
   it landed on. Peeks and [Bidir.compress]'s construction walk restore
   the globals just as they restore the per-stream counters. *)

type snapshot = {
  g_fwd : int;  (* forward cursor steps *)
  g_bwd : int;  (* backward cursor steps *)
  g_switches : int;  (* per-stream traversal direction reversals *)
  g_hits : int;  (* dictionary hits decoded (packed streams only) *)
  g_misses : int;  (* verbatim entries decoded (packed streams only) *)
  g_bits : int;  (* stored bits touched: flag + payload, 32/raw value *)
}

let zero =
  { g_fwd = 0; g_bwd = 0; g_switches = 0; g_hits = 0; g_misses = 0; g_bits = 0 }

let c_fwd = ref 0
let c_bwd = ref 0
let c_switches = ref 0
let c_hits = ref 0
let c_misses = ref 0
let c_bits = ref 0

let snapshot () =
  {
    g_fwd = !c_fwd;
    g_bwd = !c_bwd;
    g_switches = !c_switches;
    g_hits = !c_hits;
    g_misses = !c_misses;
    g_bits = !c_bits;
  }

let restore s =
  c_fwd := s.g_fwd;
  c_bwd := s.g_bwd;
  c_switches := s.g_switches;
  c_hits := s.g_hits;
  c_misses := s.g_misses;
  c_bits := s.g_bits

let delta ~before ~after =
  {
    g_fwd = after.g_fwd - before.g_fwd;
    g_bwd = after.g_bwd - before.g_bwd;
    g_switches = after.g_switches - before.g_switches;
    g_hits = after.g_hits - before.g_hits;
    g_misses = after.g_misses - before.g_misses;
    g_bits = after.g_bits - before.g_bits;
  }

let add a b =
  {
    g_fwd = a.g_fwd + b.g_fwd;
    g_bwd = a.g_bwd + b.g_bwd;
    g_switches = a.g_switches + b.g_switches;
    g_hits = a.g_hits + b.g_hits;
    g_misses = a.g_misses + b.g_misses;
    g_bits = a.g_bits + b.g_bits;
  }

let steps s = s.g_fwd + s.g_bwd

let nonneg s =
  s.g_fwd >= 0 && s.g_bwd >= 0 && s.g_switches >= 0 && s.g_hits >= 0
  && s.g_misses >= 0 && s.g_bits >= 0

(* One packed-stream step: the revealed entry's flag bit plus its
   payload. Hit/miss classification comes from the persisted hit bitvec
   of the entry being decoded. *)
let note_packed ~fwd ~switched ~hit ~payload_bits =
  (if fwd then incr c_fwd else incr c_bwd);
  if switched then incr c_switches;
  (if hit then incr c_hits else incr c_misses);
  c_bits := !c_bits + 1 + payload_bits

(* One raw-stream step: a verbatim 32-bit value, no predictor. *)
let note_raw ~fwd ~switched =
  (if fwd then incr c_fwd else incr c_bwd);
  if switched then incr c_switches;
  c_bits := !c_bits + 32
