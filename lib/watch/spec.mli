(** Textual filter specifications.

    Grammar (whitespace-insensitive; integers decimal or [0x]-hex):
    {v
    expr  := and ( '|' and )*
    and   := unary ( '&' unary )*
    unary := '!' unary | atom
    atom  := '(' expr ')' | 'any'
           | 'entry' | 'def' | 'use' | 'load' | 'store' | 'call'
           | 'fn' '=' IDENT
           | 'block' '=' INT
           | 'val'  '=' INT | 'val'  'in' '[' INT ',' INT ']'
           | 'addr' '=' INT | 'addr' 'in' '[' INT ',' INT ']'
    v}
    e.g. ["store & fn=main & addr in [0x100,0x1ff]"]. *)

(** Parse a filter spec. [Error] carries a human-readable message. *)
val parse : string -> (Filter.t, string) result

(** Canonical rendering with minimal parentheses;
    [parse (print f) = Ok f] up to the normalisation of empty and
    singleton [All]/[Any] lists (which print as their meaning). *)
val print : Filter.t -> string
