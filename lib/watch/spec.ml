(* Concrete syntax for filters:

     expr  := and ( '|' and )*
     and   := unary ( '&' unary )*
     unary := '!' unary | atom
     atom  := '(' expr ')' | 'any'
            | 'entry' | 'def' | 'use' | 'load' | 'store' | 'call'
            | 'fn' '=' IDENT
            | 'block' '=' INT
            | 'val'  '=' INT | 'val'  'in' '[' INT ',' INT ']'
            | 'addr' '=' INT | 'addr' 'in' '[' INT ',' INT ']'

   Integers are decimal or 0x-hex. [val=N] / [addr=N] abbreviate the
   degenerate range [N,N]. *)

type token =
  | Amp
  | Bar
  | Bang
  | Lpar
  | Rpar
  | Lbrack
  | Rbrack
  | Comma
  | Eq
  | Int of int
  | Word of string

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
  | _ -> false

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
     | ' ' | '\t' | '\n' | '\r' -> incr i
     | '&' -> toks := Amp :: !toks; incr i
     | '|' -> toks := Bar :: !toks; incr i
     | '!' -> toks := Bang :: !toks; incr i
     | '(' -> toks := Lpar :: !toks; incr i
     | ')' -> toks := Rpar :: !toks; incr i
     | '[' -> toks := Lbrack :: !toks; incr i
     | ']' -> toks := Rbrack :: !toks; incr i
     | ',' -> toks := Comma :: !toks; incr i
     | '=' -> toks := Eq :: !toks; incr i
     | '0' .. '9' | '-' ->
       let start = !i in
       if s.[!i] = '-' then incr i;
       if !i + 1 < n && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X')
       then i := !i + 2;
       while !i < n && is_word_char s.[!i] do incr i done;
       let lit = String.sub s start (!i - start) in
       (match int_of_string_opt lit with
        | Some v -> toks := Int v :: !toks
        | None -> fail "bad integer literal %S" lit)
     | c when is_word_char c ->
       let start = !i in
       while !i < n && is_word_char s.[!i] do incr i done;
       toks := Word (String.sub s start (!i - start)) :: !toks
     | c -> fail "unexpected character %C" c);
  done;
  List.rev !toks

let parse s =
  match tokenize s with
  | exception Error m -> Result.Error m
  | toks ->
    let toks = ref toks in
    let peek () = match !toks with t :: _ -> Some t | [] -> None in
    let next () =
      match !toks with
      | t :: rest ->
        toks := rest;
        t
      | [] -> fail "unexpected end of filter"
    in
    let expect t what =
      if next () <> t then fail "expected %s" what
    in
    let int_lit what =
      match next () with Int v -> v | _ -> fail "expected %s" what
    in
    let range field =
      match next () with
      | Eq ->
        let v = int_lit "an integer" in
        (v, v)
      | Word "in" ->
        expect Lbrack "'['";
        let lo = int_lit "a lower bound" in
        expect Comma "','";
        let hi = int_lit "an upper bound" in
        expect Rbrack "']'";
        if lo > hi then fail "empty %s range [%d,%d]" field lo hi;
        (lo, hi)
      | _ -> fail "expected '=' or 'in' after '%s'" field
    in
    let rec expr () =
      let first = and_ () in
      let rec more acc =
        match peek () with
        | Some Bar ->
          ignore (next ());
          more (and_ () :: acc)
        | _ -> List.rev acc
      in
      match more [ first ] with [ f ] -> f | fs -> Filter.Any fs
    and and_ () =
      let first = unary () in
      let rec more acc =
        match peek () with
        | Some Amp ->
          ignore (next ());
          more (unary () :: acc)
        | _ -> List.rev acc
      in
      match more [ first ] with [ f ] -> f | fs -> Filter.All fs
    and unary () =
      match peek () with
      | Some Bang ->
        ignore (next ());
        Filter.Not (unary ())
      | _ -> atom ()
    and atom () =
      match next () with
      | Lpar ->
        let f = expr () in
        expect Rpar "')'";
        f
      | Word "any" -> Filter.True
      | Word "fn" ->
        expect Eq "'=' after 'fn'";
        (match next () with
         | Word name -> Filter.Fn name
         | _ -> fail "expected a function name after 'fn='")
      | Word "block" ->
        expect Eq "'=' after 'block'";
        Filter.Block (int_lit "a block id")
      | Word "val" ->
        let lo, hi = range "val" in
        Filter.Value (lo, hi)
      | Word "addr" ->
        let lo, hi = range "addr" in
        Filter.Addr (lo, hi)
      | Word w -> (
        match Event.kind_of_name w with
        | Some k -> Filter.Kind k
        | None -> fail "unknown keyword %S" w)
      | _ -> fail "expected a filter atom"
    in
    (match expr () with
     | f ->
       if !toks <> [] then Result.Error "trailing input after filter"
       else Result.Ok f
     | exception Error m -> Result.Error m)

(* Canonical printing. Precedence: Any (0) < All (1) < Not (2) < atoms
   (3); a child is parenthesised when its level is below what its
   context requires, so [parse (print f) = f] up to the normalisation of
   empty/singleton combinator lists. *)
let print f =
  let b = Buffer.create 64 in
  let level = function
    | Filter.Any _ -> 0
    | Filter.All _ -> 1
    | Filter.Not _ -> 2
    | _ -> 3
  in
  let range field lo hi =
    if lo = hi then Printf.sprintf "%s=%d" field lo
    else Printf.sprintf "%s in [%d,%d]" field lo hi
  in
  let rec go need f =
    let parens = level f < need in
    if parens then Buffer.add_char b '(';
    (match f with
     | Filter.True -> Buffer.add_string b "any"
     | Filter.Kind k -> Buffer.add_string b (Event.kind_name k)
     | Filter.Fn name -> Buffer.add_string b ("fn=" ^ name)
     | Filter.Block blk -> Buffer.add_string b (Printf.sprintf "block=%d" blk)
     | Filter.Value (lo, hi) -> Buffer.add_string b (range "val" lo hi)
     | Filter.Addr (lo, hi) -> Buffer.add_string b (range "addr" lo hi)
     | Filter.Not g ->
       Buffer.add_char b '!';
       go 2 g
     | Filter.All gs -> sep " & " 2 gs
     | Filter.Any gs -> sep " | " 1 gs);
    if parens then Buffer.add_char b ')'
  and sep s need = function
    | [] -> Buffer.add_string b "any"
    | [ g ] -> go need g
    | g :: gs ->
      go need g;
      List.iter
        (fun g ->
          Buffer.add_string b s;
          go need g)
        gs
  in
  go 0 f;
  Buffer.contents b
