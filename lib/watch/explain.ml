type stream =
  | Ts of int
  | Uvals of int
  | Pattern of int * int
  | Label_src of int
  | Label_dst of int

type op = Fwd | Bwd | Seek

type stats = {
  st_stream : stream;
  mutable st_fwd : int;
  mutable st_bwd : int;
  mutable st_seeks : int;
  mutable st_seek_dist : int;
  mutable st_switches : int;
  mutable st_last : int;  (* 0 none, 1 forward, 2 backward *)
}

(* A recorder is one independent explain recording: an armed flag, the
   per-stream tallies, and the query names seen while armed. The
   process-global surface below ([armed], [arm], [touch], ...) operates
   on [default_recorder]; each [Wet.Session] owns a private recorder so
   concurrent sessions can explain queries without interleaving their
   recordings. *)
type recorder = {
  rc_armed : bool ref;
  rc_tbl : (stream, stats) Hashtbl.t;
  mutable rc_queries : string list;
}

let make_recorder () =
  { rc_armed = ref false; rc_tbl = Hashtbl.create 256; rc_queries = [] }

let default_recorder = make_recorder ()

(* The historical guard flag IS the default recorder's armed flag, so
   existing [if !Ex.armed then ...] sites keep meaning "is the default
   recording armed". *)
let armed = default_recorder.rc_armed

let recording r = !(r.rc_armed)

let reset ?(recorder = default_recorder) () =
  Hashtbl.reset recorder.rc_tbl;
  recorder.rc_queries <- []

let arm ?(recorder = default_recorder) () =
  reset ~recorder ();
  recorder.rc_armed := true

let disarm ?(recorder = default_recorder) () = recorder.rc_armed := false

let query ?(recorder = default_recorder) name =
  if !(recorder.rc_armed) then
    recorder.rc_queries <- name :: recorder.rc_queries

let stats_of recorder s =
  match Hashtbl.find_opt recorder.rc_tbl s with
  | Some st -> st
  | None ->
    let st =
      {
        st_stream = s;
        st_fwd = 0;
        st_bwd = 0;
        st_seeks = 0;
        st_seek_dist = 0;
        st_switches = 0;
        st_last = 0;
      }
    in
    Hashtbl.replace recorder.rc_tbl s st;
    st

let touch ?(recorder = default_recorder) s op n =
  if !(recorder.rc_armed) && n >= 0 then begin
    let st = stats_of recorder s in
    match op with
    | Fwd ->
      st.st_fwd <- st.st_fwd + n;
      if st.st_last = 2 then st.st_switches <- st.st_switches + 1;
      st.st_last <- 1
    | Bwd ->
      st.st_bwd <- st.st_bwd + n;
      if st.st_last = 1 then st.st_switches <- st.st_switches + 1;
      st.st_last <- 2
    | Seek ->
      st.st_seeks <- st.st_seeks + 1;
      st.st_seek_dist <- st.st_seek_dist + n;
      (* a seek reestablishes the cursor; the next step is not a
         direction switch *)
      st.st_last <- 0
  end

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type stream_stats = {
  e_stream : stream;
  e_fwd : int;
  e_bwd : int;
  e_seeks : int;
  e_seek_dist : int;
  e_switches : int;
}

type report = { r_queries : string list; r_streams : stream_stats list }

let stream_kind = function
  | Ts _ -> "ts"
  | Uvals _ -> "uvals"
  | Pattern _ -> "pattern"
  | Label_src _ -> "label.src"
  | Label_dst _ -> "label.dst"

let stream_name = function
  | Ts n -> Printf.sprintf "ts(node %d)" n
  | Uvals c -> Printf.sprintf "uvals(copy %d)" c
  | Pattern (n, g) -> Printf.sprintf "pattern(node %d, group %d)" n g
  | Label_src l -> Printf.sprintf "label %d src" l
  | Label_dst l -> Printf.sprintf "label %d dst" l

let report ?(recorder = default_recorder) () =
  let streams =
    Hashtbl.fold
      (fun _ st acc ->
        {
          e_stream = st.st_stream;
          e_fwd = st.st_fwd;
          e_bwd = st.st_bwd;
          e_seeks = st.st_seeks;
          e_seek_dist = st.st_seek_dist;
          e_switches = st.st_switches;
        }
        :: acc)
      recorder.rc_tbl []
    |> List.sort compare
  in
  { r_queries = List.rev recorder.rc_queries; r_streams = streams }

let steps s = s.e_fwd + s.e_bwd + s.e_seek_dist

let total_steps r = List.fold_left (fun a s -> a + steps s) 0 r.r_streams

(* [diff ~before ~after] is the work recorded between two report
   snapshots of one armed window: per-stream field-wise subtraction
   (streams absent from [before] count from zero; all-zero rows are
   dropped) and the query names appended after [before] was taken. This
   is what lets nested profiling contexts each claim their own slice of
   one continuously armed recording. *)
let diff ~before ~after =
  let prior = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace prior s.e_stream s) before.r_streams;
  let streams =
    List.filter_map
      (fun a ->
        let z =
          match Hashtbl.find_opt prior a.e_stream with
          | Some b ->
            {
              e_stream = a.e_stream;
              e_fwd = a.e_fwd - b.e_fwd;
              e_bwd = a.e_bwd - b.e_bwd;
              e_seeks = a.e_seeks - b.e_seeks;
              e_seek_dist = a.e_seek_dist - b.e_seek_dist;
              e_switches = a.e_switches - b.e_switches;
            }
          | None -> a
        in
        if z.e_fwd = 0 && z.e_bwd = 0 && z.e_seeks = 0 && z.e_switches = 0
        then None
        else Some z)
      after.r_streams
  in
  let rec drop n l = if n <= 0 then l else match l with
    | [] -> []
    | _ :: tl -> drop (n - 1) tl
  in
  {
    r_queries = drop (List.length before.r_queries) after.r_queries;
    r_streams = streams;
  }

(* ------------------------------------------------------------------ *)
(* Feeding the observatory                                            *)
(* ------------------------------------------------------------------ *)

(* Registered up front (interning is idempotent) so --list-metrics sees
   them even before the first explained query. *)
let c_streams = Wet_obs.Metrics.counter "explain.streams"

let c_fwd = Wet_obs.Metrics.counter "explain.fwd_steps"

let c_bwd = Wet_obs.Metrics.counter "explain.bwd_steps"

let c_seeks = Wet_obs.Metrics.counter "explain.seeks"

let c_seek_dist = Wet_obs.Metrics.counter "explain.seek_distance"

let c_switches = Wet_obs.Metrics.counter "explain.dir_switches"

let h_stream_steps = Wet_obs.Metrics.histogram "explain.stream_steps"

(* Take the report and fold its tallies into the wet_obs instruments,
   one histogram observation per touched stream — this is what links
   per-query cost profiles to the bench observatory's aggregates. *)
let publish ?(recorder = default_recorder) () =
  let r = report ~recorder () in
  Wet_obs.Metrics.add c_streams (List.length r.r_streams);
  List.iter
    (fun s ->
      Wet_obs.Metrics.add c_fwd s.e_fwd;
      Wet_obs.Metrics.add c_bwd s.e_bwd;
      Wet_obs.Metrics.add c_seeks s.e_seeks;
      Wet_obs.Metrics.add c_seek_dist s.e_seek_dist;
      Wet_obs.Metrics.add c_switches s.e_switches;
      Wet_obs.Metrics.observe h_stream_steps (steps s))
    r.r_streams;
  r

(* Aggregate per stream category — the shape CLI tables want. *)
let by_kind r =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = stream_kind s.e_stream in
      let streams, fwd, bwd, seeks, switches =
        Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0, 0, 0, 0)
      in
      Hashtbl.replace tbl k
        ( streams + 1,
          fwd + s.e_fwd,
          bwd + s.e_bwd,
          seeks + s.e_seeks,
          switches + s.e_switches ))
    r.r_streams;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
