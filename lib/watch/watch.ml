type action = Count | Capture | Sample of int | Stop_at of int

type probe = {
  p_name : string;
  p_filter : Filter.t;
  p_compiled : Filter.compiled;
  p_action : action;
  p_ring : Ring.t option;
  p_counter : Wet_obs.Metrics.counter;
  mutable p_matches : int;
  mutable p_stopped : int option;
}

let probe ?(name = "watch") ?(ring = 16) prog filter action =
  (match action with
   | Sample n when n < 1 ->
     invalid_arg "Watch.probe: sample period must be >= 1"
   | Stop_at k when k < 1 ->
     invalid_arg "Watch.probe: stop-at match index must be >= 1"
   | _ -> ());
  {
    p_name = name;
    p_filter = filter;
    p_compiled = Filter.compile prog filter;
    p_action = action;
    p_ring = (match action with Count -> None | _ -> Some (Ring.create ring));
    p_counter = Wet_obs.Metrics.counter ("watch." ^ name ^ ".matches");
    p_matches = 0;
    p_stopped = None;
  }

let name p = p.p_name

let filter p = p.p_filter

let action p = p.p_action

let matches p = p.p_matches

let ring p = p.p_ring

let stopped p = p.p_stopped

(* Optional forwarder to an external flight recorder (the pulse ring).
   Decoded [Event.t] records are only materialised when a tap is
   installed, so the default capture path stays allocation-free. *)
let tap : (Event.t -> wall_ns:int -> unit) option ref = ref None

let set_tap f = tap := Some f

let clear_tap () = tap := None

let capture p ~kind ~func ~block ~pos ~value ~addr ~ts =
  match p.p_ring with
  | None -> ()
  | Some r ->
    let wall = Wet_obs.Clock.now_ns () in
    Ring.record r ~kind ~func ~block ~pos ~value ~addr ~ts ~wall_ns:wall;
    (match !tap with
     | None -> ()
     | Some f ->
       f
         {
           Event.e_kind = Event.kind_of_index kind;
           e_func = func;
           e_block = block;
           e_pos = pos;
           e_value = value;
           e_addr = addr;
           e_ts = ts;
         }
         ~wall_ns:wall)

(* Matched: count, then act. Only the ring write reads a clock, and only
   [Capture]/sampled/pre-trigger matches reach it. *)
let fire p kind func block pos value addr ts =
  let m = p.p_matches + 1 in
  p.p_matches <- m;
  Wet_obs.Metrics.incr p.p_counter;
  match p.p_action with
  | Count -> ()
  | Capture -> capture p ~kind ~func ~block ~pos ~value ~addr ~ts
  | Sample n ->
    if (m - 1) mod n = 0 then capture p ~kind ~func ~block ~pos ~value ~addr ~ts
  | Stop_at k ->
    if p.p_stopped = None then begin
      capture p ~kind ~func ~block ~pos ~value ~addr ~ts;
      if m = k then p.p_stopped <- Some ts
    end

(* ------------------------------------------------------------------ *)
(* The armed dispatch closure                                          *)
(* ------------------------------------------------------------------ *)

let nop _ _ _ _ _ _ _ = ()

let dispatch = ref nop

let hot = ref false

let armed () = !hot

(* One closure per probe: mask test (fast reject) then the compiled
   predicate; [arm] chains them so the tracer pays a single indirect
   call per event however many probes are armed. *)
let one p =
  let mask = p.p_compiled.Filter.c_mask in
  let pred = p.p_compiled.Filter.c_pred in
  fun kind func block pos value addr ts ->
    let kb = 1 lsl kind in
    if mask land kb <> 0 && pred kb func block value addr then
      fire p kind func block pos value addr ts

let arm probes =
  (match probes with
   | [] -> dispatch := nop
   | [ p ] -> dispatch := one p
   | ps ->
     let fs = List.map one ps in
     dispatch :=
       fun kind func block pos value addr ts ->
         List.iter (fun f -> f kind func block pos value addr ts) fs);
  hot := probes <> []

let disarm () =
  dispatch := nop;
  hot := false

let emit kind func block pos value addr ts =
  !dispatch kind func block pos value addr ts

let with_armed probes f =
  arm probes;
  Fun.protect ~finally:disarm f
