type kind = Block_entry | Value_def | Use | Load | Store | Call

let num_kinds = 6

let kind_index = function
  | Block_entry -> 0
  | Value_def -> 1
  | Use -> 2
  | Load -> 3
  | Store -> 4
  | Call -> 5

let kind_of_index = function
  | 0 -> Block_entry
  | 1 -> Value_def
  | 2 -> Use
  | 3 -> Load
  | 4 -> Store
  | 5 -> Call
  | i -> invalid_arg (Printf.sprintf "Event.kind_of_index: %d" i)

let kind_name = function
  | Block_entry -> "entry"
  | Value_def -> "def"
  | Use -> "use"
  | Load -> "load"
  | Store -> "store"
  | Call -> "call"

let kind_of_name = function
  | "entry" -> Some Block_entry
  | "def" -> Some Value_def
  | "use" -> Some Use
  | "load" -> Some Load
  | "store" -> Some Store
  | "call" -> Some Call
  | _ -> None

let kind_bit k = 1 lsl kind_index k

let all_kinds_mask = (1 lsl num_kinds) - 1

(* Which kinds carry a meaningful value / address payload. Block entries
   and calls have no value port; only memory events have an address. *)
let value_mask =
  kind_bit Value_def lor kind_bit Use lor kind_bit Load lor kind_bit Store

let addr_mask = kind_bit Load lor kind_bit Store

let has_value k = value_mask land kind_bit k <> 0

let has_addr k = addr_mask land kind_bit k <> 0

type t = {
  e_kind : kind;
  e_func : int;  (** function executing (callee for [Call] events) *)
  e_block : int;  (** basic block within [e_func] *)
  e_pos : int;  (** dynamic statement position *)
  e_value : int;  (** value payload; 0 when the kind carries none *)
  e_addr : int;  (** memory address; -1 when the kind carries none *)
  e_ts : int;  (** WET global timestamp of the enclosing path execution *)
}

let pp ppf e =
  Fmt.pf ppf "%s f%d:B%d pos=%d" (kind_name e.e_kind) e.e_func e.e_block
    e.e_pos;
  if has_value e.e_kind then Fmt.pf ppf " val=%d" e.e_value;
  if has_addr e.e_kind then Fmt.pf ppf " @%d" e.e_addr;
  Fmt.pf ppf " t=%d" e.e_ts
