(** Trace events the interpreter reports to the tracer driver.

    Event kinds follow the interpreter's dynamic actions: a basic-block
    entry, a value-producing statement ([def]), an operand read ([use]),
    a memory access ([load]/[store]) and a call (reported against the
    callee). The hot emission path passes the fields as unboxed [int]
    arguments; this record form is only materialised on the cold side
    (flight-recorder decoding, reports, tests). *)

type kind = Block_entry | Value_def | Use | Load | Store | Call

val num_kinds : int

(** Dense index in [\[0, num_kinds)]. *)
val kind_index : kind -> int

(** Inverse of {!kind_index}. @raise Invalid_argument out of range. *)
val kind_of_index : int -> kind

(** Keyword used by the filter language: ["entry"], ["def"], ["use"],
    ["load"], ["store"], ["call"]. *)
val kind_name : kind -> string

val kind_of_name : string -> kind option

(** [1 lsl kind_index k] — kind-set masks for the fast-reject test. *)
val kind_bit : kind -> int

val all_kinds_mask : int

(** Kinds carrying a value payload ([def], [use], [load], [store]). *)
val value_mask : int

(** Kinds carrying an address payload ([load], [store]). *)
val addr_mask : int

val has_value : kind -> bool
val has_addr : kind -> bool

type t = {
  e_kind : kind;
  e_func : int;  (** function executing (callee for [Call] events) *)
  e_block : int;  (** basic block within [e_func] *)
  e_pos : int;  (** dynamic statement position *)
  e_value : int;  (** value payload; 0 when the kind carries none *)
  e_addr : int;  (** memory address; -1 when the kind carries none *)
  e_ts : int;  (** WET global timestamp of the enclosing path execution *)
}

val pp : t Fmt.t
