(** Declarative observation filters over trace events.

    A filter is a predicate combinator tree in the tracer-driver style
    (Deransart; Ducassé et al. — see PAPERS.md): the request is stated
    declaratively, compiled once, and evaluated {e at the source} so only
    matching events are ever materialised.

    Payload semantics: [Value] only holds on kinds carrying a value
    payload ([def]/[use]/[load]/[store]) and [Addr] only on memory kinds
    ([load]/[store]); on other kinds they are false, so [Not (Addr _)]
    holds for, say, block entries. *)

type t =
  | True  (** matches every event *)
  | Kind of Event.kind
  | Fn of string  (** executing function, by source name *)
  | Block of int  (** basic-block id within its function *)
  | Value of int * int  (** value payload within an inclusive range *)
  | Addr of int * int  (** address payload within an inclusive range *)
  | Not of t
  | All of t list  (** conjunction; [All \[\]] is [True] *)
  | Any of t list  (** disjunction; [Any \[\]] is false *)

val equal : t -> t -> bool

(** Bitmask (over {!Event.kind_bit}) of kinds the filter can possibly
    accept — the fast-reject test of the hot path. Conservative
    (never excludes a matching kind). *)
val kind_mask : t -> int

exception Unknown_function of string

(** Resolve a function name against a program.
    @raise Unknown_function when absent. *)
val func_id : Wet_ir.Program.t -> string -> int

type compiled = {
  c_mask : int;  (** {!kind_mask} of the compiled filter *)
  c_pred : int -> int -> int -> int -> int -> bool;
      (** [c_pred kind_bit func block value addr]; only meaningful for
          kinds in [c_mask] *)
}

(** Resolve every name and compile the filter to a closure tree — the
    hot path is integer comparisons only.
    @raise Unknown_function on an unresolvable [Fn]. *)
val compile : Wet_ir.Program.t -> t -> compiled

(** Cold-side convenience: evaluate a compiled filter on a materialised
    event (fast-reject included). *)
val matches : compiled -> Event.t -> bool
