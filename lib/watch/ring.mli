(** Bounded flight recorder: the last [capacity] matching events.

    Storage is one flat [int] array (8 words per event), so {!record}
    allocates nothing and the retained window is GC-free — safe to leave
    armed across multi-million-statement runs. *)

type t

(** @raise Invalid_argument when the capacity is not positive. *)
val create : int -> t

val capacity : t -> int

(** Events recorded over the ring's lifetime (retained or not). *)
val total : t -> int

(** Events currently retained: [min total capacity]. *)
val length : t -> int

(** Append one event, overwriting the oldest when full. [wall_ns] is a
    monotonic wall-clock stamp taken by the caller. *)
val record :
  t ->
  kind:int ->
  func:int ->
  block:int ->
  pos:int ->
  value:int ->
  addr:int ->
  ts:int ->
  wall_ns:int ->
  unit

(** [get t i] is the [i]-th oldest retained event with its wall stamp.
    @raise Invalid_argument unless [0 <= i < length t]. *)
val get : t -> int -> Event.t * int

(** Oldest to newest. *)
val to_list : t -> (Event.t * int) list
