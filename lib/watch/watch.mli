(** The tracer driver: declarative observation requests evaluated inside
    the tracer, in the architecture of Deransart's tracer driver and
    Ducassé et al.'s rigorous tracer design (PAPERS.md) — the filter
    runs {e at the source}, so only matching events cost anything.

    A {!probe} pairs a compiled {!Filter.t} with an {!action}; {!arm}
    installs a set of probes as one dispatch closure. The interpreter
    reports events through {!emit} — when nothing is armed that is a
    call to a no-op closure guarded by {!armed}, preserving the
    no-overhead-when-disabled guarantee of the [wet_obs] layer. Probe
    match counts also register as [wet_obs] counters
    (["watch.<name>.matches"]), so they appear in [--metrics-out]
    dumps whenever the metrics sink is armed. *)

type action =
  | Count  (** count matches only *)
  | Capture  (** record every match in the flight recorder *)
  | Sample of int  (** record 1-in-N matches (first, N+1st, ...) *)
  | Stop_at of int
      (** watchpoint: record matches until the K-th, then remember its
          timestamp ({!stopped}) — feed it to [Query.locate_time] or a
          slice criterion. Counting continues; execution does not stop
          (the WET is queried post-mortem, so the "stop" is the
          observation's, not the program's). *)

type probe

(** [probe prog filter action] compiles [filter] against [prog].
    [ring] bounds the flight recorder (default 16; unused for [Count]).
    [name] labels reports and the [wet_obs] counter (default
    ["watch"]).
    @raise Filter.Unknown_function on an unresolvable [Fn] atom.
    @raise Invalid_argument on a non-positive sample period or match
    index. *)
val probe :
  ?name:string -> ?ring:int -> Wet_ir.Program.t -> Filter.t -> action -> probe

val name : probe -> string
val filter : probe -> Filter.t
val action : probe -> action

(** Matches so far (all matches, recorded or not). *)
val matches : probe -> int

(** The probe's flight recorder ([None] for [Count] probes). *)
val ring : probe -> Ring.t option

(** The K-th match's timestamp, once a [Stop_at K] probe has seen it. *)
val stopped : probe -> int option

(** Install probes as the dispatch closure ([\[\]] disarms). *)
val arm : probe list -> unit

val disarm : unit -> unit

(** One flag read — the tracer's guard around {!emit} sites. *)
val armed : unit -> bool

(** [emit kind func block pos value addr ts] reports one event
    ([kind] is {!Event.kind_index}; [ts] the global timestamp of the
    enclosing path execution). A single indirect closure call; each
    armed probe applies its kind-mask fast reject first. *)
val emit : int -> int -> int -> int -> int -> int -> int -> unit

(** Arm around [f], always disarming afterwards. *)
val with_armed : probe list -> (unit -> 'a) -> 'a

(** Install an observer called with every event a probe records to its
    flight recorder ([Capture] / sampled / pre-trigger matches; [Count]
    probes never record) — how [Wet_pulse.Ring] sees watch events.
    [wall_ns] is the same monotonic stamp stored in the probe's ring.
    At most one tap; a new {!set_tap} replaces the previous one. *)
val set_tap : (Event.t -> wall_ns:int -> unit) -> unit

val clear_tap : unit -> unit
