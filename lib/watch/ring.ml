(* Fixed-capacity flight recorder. Events are stored flattened in one
   int array (8 slots per event), so recording writes plain unboxed
   integers — no allocation, nothing for the GC to scan. *)

let slots = 8

type t = {
  cap : int;
  cells : int array;
  mutable total : int;
}

let create cap =
  if cap <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { cap; cells = Array.make (cap * slots) 0; total = 0 }

let capacity t = t.cap

let total t = t.total

let length t = min t.total t.cap

let record t ~kind ~func ~block ~pos ~value ~addr ~ts ~wall_ns =
  let base = t.total mod t.cap * slots in
  t.cells.(base) <- kind;
  t.cells.(base + 1) <- func;
  t.cells.(base + 2) <- block;
  t.cells.(base + 3) <- pos;
  t.cells.(base + 4) <- value;
  t.cells.(base + 5) <- addr;
  t.cells.(base + 6) <- ts;
  t.cells.(base + 7) <- wall_ns;
  t.total <- t.total + 1

(* [i]-th oldest retained event, [0 <= i < length]. *)
let get t i =
  let len = length t in
  if i < 0 || i >= len then invalid_arg "Ring.get: index out of bounds";
  let oldest = t.total - len in
  let base = (oldest + i) mod t.cap * slots in
  ( {
      Event.e_kind = Event.kind_of_index t.cells.(base);
      e_func = t.cells.(base + 1);
      e_block = t.cells.(base + 2);
      e_pos = t.cells.(base + 3);
      e_value = t.cells.(base + 4);
      e_addr = t.cells.(base + 5);
      e_ts = t.cells.(base + 6);
    },
    t.cells.(base + 7) )

let to_list t = List.init (length t) (get t)
