(** Query-explain: which compressed streams a query touched, and how.

    When armed, the query and slice code reports every cursor movement
    here; the resulting report shows which label streams a query walked,
    in which directions, and how many decompression steps it paid — the
    observable cost model behind the paper's tier-1 vs tier-2 query
    timing tables. Disarmed cost is one flag read per cursor operation.

    Recordings live in {!recorder} values. The tally-less functions
    below operate on {!default_recorder} — the historical process-global
    recording, still what the CLI's [--explain] uses. Each [Wet.Session]
    owns a private recorder (single-owner, like the session itself), so
    concurrent sessions can explain queries without interleaving. *)

(** Identity of a WET label stream. *)
type stream =
  | Ts of int  (** timestamp sequence of a node *)
  | Uvals of int  (** unique-value sequence of a copy *)
  | Pattern of int * int  (** shared value pattern of (node, group) *)
  | Label_src of int  (** producer side of edge-label [l_id] *)
  | Label_dst of int  (** consumer side of edge-label [l_id] *)

type op =
  | Fwd  (** forward cursor steps *)
  | Bwd  (** backward cursor steps *)
  | Seek  (** one repositioning; the count is the seek distance *)

(** One independent explain recording: armed flag, per-stream tallies,
    query names. Not thread-safe — single-owner. *)
type recorder

(** A fresh, disarmed recorder. *)
val make_recorder : unit -> recorder

(** The process-global recording all tally-less calls target. *)
val default_recorder : recorder

(** Is this recorder currently armed? The per-session guard for
    instrumentation sites: [if Ex.recording r then touch ~recorder:r ...]. *)
val recording : recorder -> bool

(** Guard for default-recorder instrumentation sites:
    [if !armed then touch ...]. This is physically
    [default_recorder]'s armed flag. *)
val armed : bool ref

(** Clear recorded state and start recording. *)
val arm : ?recorder:recorder -> unit -> unit

val disarm : ?recorder:recorder -> unit -> unit
val reset : ?recorder:recorder -> unit -> unit

(** Record [n] cursor steps (or one seek of distance [n]) on a stream.
    No-op when the recorder is disarmed or [n < 0]. *)
val touch : ?recorder:recorder -> stream -> op -> int -> unit

(** Note a query entry point (e.g. ["query.control_flow"]). *)
val query : ?recorder:recorder -> string -> unit

type stream_stats = {
  e_stream : stream;
  e_fwd : int;
  e_bwd : int;
  e_seeks : int;
  e_seek_dist : int;  (** summed seek distances *)
  e_switches : int;  (** forward/backward direction reversals *)
}

type report = { r_queries : string list; r_streams : stream_stats list }

(** Snapshot of everything recorded since {!arm} (streams sorted). *)
val report : ?recorder:recorder -> unit -> report

(** {!report}, with the tallies also folded into the [wet_obs]
    instruments ([explain.streams], [explain.fwd_steps],
    [explain.bwd_steps], [explain.seeks], [explain.seek_distance],
    [explain.dir_switches]) and one [explain.stream_steps] histogram
    observation per touched stream — no-ops while the sink is disabled.
    This is the bridge between per-query explain profiles and the bench
    observatory's metric exports. *)
val publish : ?recorder:recorder -> unit -> report

val stream_kind : stream -> string
val stream_name : stream -> string

(** Steps paid on one stream: forward + backward + seek distance. *)
val steps : stream_stats -> int

val total_steps : report -> int

(** [diff ~before ~after] is the work recorded between two {!report}
    snapshots of one continuously armed window: per-stream field-wise
    subtraction (streams absent from [before] count from zero, all-zero
    rows dropped) and the query names appended after [before] was taken.
    [Wet_qprof] uses this so nested profiling contexts each claim their
    own slice of a single armed recording. *)
val diff : before:report -> after:report -> report

(** Aggregated per {!stream_kind}:
    [(kind, (streams, fwd, bwd, seeks, switches))], sorted. *)
val by_kind : report -> (string * (int * int * int * int * int)) list
