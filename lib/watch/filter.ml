type t =
  | True
  | Kind of Event.kind
  | Fn of string
  | Block of int
  | Value of int * int
  | Addr of int * int
  | Not of t
  | All of t list
  | Any of t list

let equal = ( = )

(* The set of kinds a filter can possibly accept, as a bitmask over
   [Event.kind_index]. Field predicates over payloads a kind does not
   carry can never hold, so [Value]/[Addr] narrow the mask; [Not] is kept
   conservative (complementing "possible" is not "impossible"), which
   only costs fast-reject precision, never correctness. *)
let rec kind_mask = function
  | True | Fn _ | Block _ | Not _ -> Event.all_kinds_mask
  | Kind k -> Event.kind_bit k
  | Value _ -> Event.value_mask
  | Addr _ -> Event.addr_mask
  | All fs ->
    List.fold_left (fun m f -> m land kind_mask f) Event.all_kinds_mask fs
  | Any fs -> List.fold_left (fun m f -> m lor kind_mask f) 0 fs

exception Unknown_function of string

let func_id (prog : Wet_ir.Program.t) name =
  let found = ref (-1) in
  Array.iteri
    (fun i (f : Wet_ir.Func.t) ->
      if !found < 0 && f.Wet_ir.Func.name = name then found := i)
    prog.Wet_ir.Program.funcs;
  if !found < 0 then raise (Unknown_function name) else !found

type compiled = {
  c_mask : int;
  c_pred : int -> int -> int -> int -> int -> bool;
      (** [pred kindbit func block value addr] *)
}

(* Compile to a closure tree evaluated once per candidate event. Every
   name is resolved against [prog] here, so the hot path does only
   integer comparisons. *)
let compile prog filter =
  let rec comp = function
    | True -> fun _ _ _ _ _ -> true
    | Kind k ->
      let bit = Event.kind_bit k in
      fun kb _ _ _ _ -> kb = bit
    | Fn name ->
      let id = func_id prog name in
      fun _ f _ _ _ -> f = id
    | Block b -> fun _ _ blk _ _ -> blk = b
    | Value (lo, hi) ->
      fun kb _ _ v _ -> kb land Event.value_mask <> 0 && lo <= v && v <= hi
    | Addr (lo, hi) ->
      fun kb _ _ _ a -> kb land Event.addr_mask <> 0 && lo <= a && a <= hi
    | Not f ->
      let p = comp f in
      fun kb fn blk v a -> not (p kb fn blk v a)
    | All fs ->
      let ps = List.map comp fs in
      fun kb fn blk v a -> List.for_all (fun p -> p kb fn blk v a) ps
    | Any fs ->
      let ps = List.map comp fs in
      fun kb fn blk v a -> List.exists (fun p -> p kb fn blk v a) ps
  in
  { c_mask = kind_mask filter; c_pred = comp filter }

let matches c (e : Event.t) =
  let kb = Event.kind_bit e.Event.e_kind in
  c.c_mask land kb <> 0
  && c.c_pred kb e.Event.e_func e.Event.e_block e.Event.e_value e.Event.e_addr
