(** Request-scoped query profiling: exact per-query cost attribution.

    A profiling context brackets one query (or any unit of work) with
    snapshots of the process-global decode telemetry
    ({!Wet_bistream.Telemetry}), the global Sequitur inference counters,
    the wall clock, the GC allocation counters and the armed
    {!Wet_watch.Explain} recording. The difference between the two
    snapshots is, by construction, exactly the work done inside the
    context — whichever streams it landed on — so per-query costs
    reconcile with the global counters to the step.

    Contexts nest: an inner context's total is also part of its parent's
    window, so each context additionally tracks the summed totals of its
    completed children and reports a {e self} cost (total minus
    children). Self costs telescope — summing them over any tree of
    contexts reproduces the flat delta of the outermost window — and the
    per-context [qprof.*] instruments are recorded into a private
    {!Wet_obs.Metrics.Local} registry with self costs, then merged into
    the parent context (or the process view at the root), so the merged
    metrics count every step exactly once no matter how contexts nest.

    When no context is active nothing here runs at all: the only
    always-on cost is the global counter bumps inside the stream steps
    themselves, which are unconditional in the same way the per-stream
    PR4 telemetry is. *)

(** Work attributed to one context, in physical units. The bistream
    fields cover tier-2 decode work (raw tier-1 steps count in
    [c_fwd]/[c_bwd]/[c_bits] but have no dictionary); the [c_seq_*]
    fields cover Sequitur grammar inference (zero for pure queries,
    non-zero when a build runs inside the context). *)
type cost = {
  c_fwd : int;  (** forward cursor steps, all streams *)
  c_bwd : int;  (** backward cursor steps *)
  c_switches : int;  (** per-stream traversal direction reversals *)
  c_hits : int;  (** dictionary-hit entries decoded (packed streams) *)
  c_misses : int;  (** verbatim entries decoded (packed streams) *)
  c_bits : int;  (** stored bits touched *)
  c_seq_input : int;
  c_seq_digram_hits : int;
  c_seq_digram_misses : int;
  c_seq_rules_created : int;
  c_seq_rules_inlined : int;
  c_wall_ns : int;
  c_alloc_words : int;  (** words allocated (minor + major - promoted) *)
}

val zero_cost : cost
val add_cost : cost -> cost -> cost
val sub_cost : cost -> cost -> cost

(** [c_fwd + c_bwd]. *)
val decode_steps : cost -> int

(** Every field non-negative (holds for any single context's total). *)
val nonneg_cost : cost -> bool

type profile = {
  p_shape : string;  (** query-shape fingerprint, e.g. ["trace/cf"] *)
  p_params : (string * string) list;  (** caller-supplied parameters *)
  p_total : cost;  (** inclusive cost of the whole context *)
  p_self : cost;  (** total minus completed child contexts *)
  p_streams : Wet_watch.Explain.stream_stats list;
      (** per-stream cursor work recorded while the context was open *)
  p_queries : string list;  (** Explain entry points hit *)
  p_outcome : string;  (** ["ok"] or ["error: ..."] *)
}

(** {1 Scopes}

    A scope is one independent profiling surface: a private context
    stack plus the {!Wet_bistream.Telemetry.tally} and
    {!Wet_watch.Explain.recorder} its snapshots bracket. All lifecycle
    functions default to {!default_scope}, which wraps the
    process-global tally, recorder and stack — exactly the historical
    single-threaded behaviour. A server answering concurrent clients
    builds one scope per session (from the session's own tally and
    recorder), so each request's profile sees only its own session's
    decode work. Scopes, like sessions, are single-owner: never share
    one scope between two threads. *)

type scope

(** The process-global scope: {!Wet_bistream.Telemetry.default} and
    {!Wet_watch.Explain.default_recorder}. *)
val default_scope : scope

(** A fresh scope. Omitted [tally]/[recorder] are created fresh; a
    server passes its session's own ([Wet.Session.tally],
    [Wet.Session.recorder]) so profiles attribute that session's work. *)
val make_scope :
  ?tally:Wet_bistream.Telemetry.tally ->
  ?recorder:Wet_watch.Explain.recorder ->
  unit ->
  scope

(** {1 Context lifecycle} *)

(** Open a context on the scope. The outermost context arms the scope's
    {!Wet_watch.Explain} recorder if nobody else has (and its matching
    {!finish} disarms); nested contexts share the one armed recording
    and slice it with [Explain.diff]. The wall clock is read last, so
    context setup is not charged to the query. *)
val start : ?scope:scope -> ?params:(string * string) list -> string -> unit

(** Close the scope's innermost context and return its profile. The
    context's [qprof.*] instruments are recorded into its private
    registry and merged into the parent context, or into the process
    view when this was the scope's outermost context.
    @raise Invalid_argument if no context is open on the scope. *)
val finish : ?scope:scope -> string -> profile

(** A context is open on the scope. *)
val active : ?scope:scope -> unit -> bool

(** Number of open contexts on the scope. *)
val depth : ?scope:scope -> unit -> int

(** {1 Wrappers} *)

(** [run ?scope ?params shape f] profiles [f ()]: the result (or the
    exception, captured) together with the profile; an exception is
    recorded as an ["error: ..."] outcome. *)
val run :
  ?scope:scope ->
  ?params:(string * string) list ->
  string ->
  (unit -> 'a) ->
  ('a, exn) result * profile

(** [run], re-raising the exception after the profile is recorded. *)
val profiled :
  ?scope:scope ->
  ?params:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a * profile

(** {1 Advice} *)

(** Human-readable advisory hints derived from the cost vector: heavy
    direction switching (a cursor cache would help), seek-dominated
    access (batch in stream order), poor dictionary hit rates (tier-1
    may win), raw-only traversal (steps are O(1)). Empty when nothing
    stands out. *)
val hints : profile -> string list
