module Telemetry = Wet_bistream.Telemetry
module Sequitur = Wet_sequitur.Sequitur
module Metrics = Wet_obs.Metrics
module Ex = Wet_watch.Explain

(* ------------------------------------------------------------------ *)
(* Cost vectors                                                        *)
(* ------------------------------------------------------------------ *)

type cost = {
  c_fwd : int;
  c_bwd : int;
  c_switches : int;
  c_hits : int;
  c_misses : int;
  c_bits : int;
  c_seq_input : int;
  c_seq_digram_hits : int;
  c_seq_digram_misses : int;
  c_seq_rules_created : int;
  c_seq_rules_inlined : int;
  c_wall_ns : int;
  c_alloc_words : int;
}

let zero_cost =
  {
    c_fwd = 0;
    c_bwd = 0;
    c_switches = 0;
    c_hits = 0;
    c_misses = 0;
    c_bits = 0;
    c_seq_input = 0;
    c_seq_digram_hits = 0;
    c_seq_digram_misses = 0;
    c_seq_rules_created = 0;
    c_seq_rules_inlined = 0;
    c_wall_ns = 0;
    c_alloc_words = 0;
  }

let add_cost a b =
  {
    c_fwd = a.c_fwd + b.c_fwd;
    c_bwd = a.c_bwd + b.c_bwd;
    c_switches = a.c_switches + b.c_switches;
    c_hits = a.c_hits + b.c_hits;
    c_misses = a.c_misses + b.c_misses;
    c_bits = a.c_bits + b.c_bits;
    c_seq_input = a.c_seq_input + b.c_seq_input;
    c_seq_digram_hits = a.c_seq_digram_hits + b.c_seq_digram_hits;
    c_seq_digram_misses = a.c_seq_digram_misses + b.c_seq_digram_misses;
    c_seq_rules_created = a.c_seq_rules_created + b.c_seq_rules_created;
    c_seq_rules_inlined = a.c_seq_rules_inlined + b.c_seq_rules_inlined;
    c_wall_ns = a.c_wall_ns + b.c_wall_ns;
    c_alloc_words = a.c_alloc_words + b.c_alloc_words;
  }

let sub_cost a b =
  {
    c_fwd = a.c_fwd - b.c_fwd;
    c_bwd = a.c_bwd - b.c_bwd;
    c_switches = a.c_switches - b.c_switches;
    c_hits = a.c_hits - b.c_hits;
    c_misses = a.c_misses - b.c_misses;
    c_bits = a.c_bits - b.c_bits;
    c_seq_input = a.c_seq_input - b.c_seq_input;
    c_seq_digram_hits = a.c_seq_digram_hits - b.c_seq_digram_hits;
    c_seq_digram_misses = a.c_seq_digram_misses - b.c_seq_digram_misses;
    c_seq_rules_created = a.c_seq_rules_created - b.c_seq_rules_created;
    c_seq_rules_inlined = a.c_seq_rules_inlined - b.c_seq_rules_inlined;
    c_wall_ns = a.c_wall_ns - b.c_wall_ns;
    c_alloc_words = a.c_alloc_words - b.c_alloc_words;
  }

let decode_steps c = c.c_fwd + c.c_bwd

let nonneg_cost c =
  c.c_fwd >= 0 && c.c_bwd >= 0 && c.c_switches >= 0 && c.c_hits >= 0
  && c.c_misses >= 0 && c.c_bits >= 0 && c.c_seq_input >= 0
  && c.c_seq_digram_hits >= 0 && c.c_seq_digram_misses >= 0
  && c.c_seq_rules_created >= 0 && c.c_seq_rules_inlined >= 0
  && c.c_wall_ns >= 0 && c.c_alloc_words >= 0

(* ------------------------------------------------------------------ *)
(* Profiling contexts                                                  *)
(* ------------------------------------------------------------------ *)

type profile = {
  p_shape : string;
  p_params : (string * string) list;
  p_total : cost;  (* inclusive: everything inside the context *)
  p_self : cost;  (* exclusive: total minus completed child contexts *)
  p_streams : Ex.stream_stats list;
  p_queries : string list;
  p_outcome : string;
}

type ctx = {
  k_shape : string;
  k_params : (string * string) list;
  k_bi0 : Telemetry.snapshot;
  k_seq0 : Sequitur.global;
  k_ex0 : Ex.report;
  k_armed_here : bool;  (* this context armed Explain and must disarm *)
  k_local : Metrics.Local.t;
  mutable k_children : cost;  (* summed totals of completed children *)
  k_alloc0 : float;
  k_t0 : int;  (* taken last in [start]: setup is not the query's wall *)
}

(* A scope is one independent profiling surface: its own context stack,
   and the tally/recorder its snapshots bracket. The default scope wraps
   the process-global tally and recorder — the historical behaviour.
   Concurrent sessions each profile into a private scope built from
   their session's tally and recorder, so one connection's decode work
   never bleeds into another's profile. *)
type scope = {
  sp_stack : ctx list ref;
  sp_tally : Telemetry.tally;
  sp_recorder : Ex.recorder;
}

let default_scope =
  {
    sp_stack = ref [];
    sp_tally = Telemetry.default;
    sp_recorder = Ex.default_recorder;
  }

let make_scope ?tally ?recorder () =
  {
    sp_stack = ref [];
    sp_tally = (match tally with Some t -> t | None -> Telemetry.make ());
    sp_recorder =
      (match recorder with Some r -> r | None -> Ex.make_recorder ());
  }

let active ?(scope = default_scope) () = !(scope.sp_stack) <> []

let depth ?(scope = default_scope) () = List.length !(scope.sp_stack)

let allocated_words (st : Gc.stat) =
  st.Gc.minor_words +. st.Gc.major_words -. st.Gc.promoted_words

let start ?(scope = default_scope) ?(params = []) shape =
  let recorder = scope.sp_recorder in
  let armed_here = not (Ex.recording recorder) in
  if armed_here then Ex.arm ~recorder ();
  let ctx =
    {
      k_shape = shape;
      k_params = params;
      k_bi0 = Telemetry.snapshot ~tally:scope.sp_tally ();
      k_seq0 = Sequitur.global_telemetry ();
      k_ex0 = Ex.report ~recorder ();
      k_armed_here = armed_here;
      k_local = Metrics.Local.create ();
      k_children = zero_cost;
      k_alloc0 = allocated_words (Gc.quick_stat ());
      k_t0 = Wet_obs.Clock.now_ns ();
    }
  in
  scope.sp_stack := ctx :: !(scope.sp_stack)

(* Registered up front in the process view (interning is idempotent) so
   `wet profile --list-metrics` sees the qprof family before the first
   profiled query; contexts record into private registries that merge
   onto these names. The per-shape latency histograms are dynamic. *)
let () =
  List.iter
    (fun n -> ignore (Metrics.counter n))
    [
      "qprof.queries"; "qprof.fwd_steps"; "qprof.bwd_steps";
      "qprof.dir_switches"; "qprof.dict_hits"; "qprof.dict_misses";
      "qprof.bits_touched"; "qprof.seq_digram_hits";
      "qprof.seq_digram_misses"; "qprof.alloc_words";
    ];
  ignore (Metrics.histogram "qprof.wall_ns")

(* The per-context instruments are recorded with the context's *self*
   cost (total minus completed children), so merging every context's
   registry up the stack and finally into the process view counts each
   decode step exactly once — the same telescoping that makes snapshot
   deltas of disjoint windows sum to the delta of their union. Only the
   wall histograms use the inclusive total: a span's latency is its
   latency. *)
let record reg p =
  let c name v = Metrics.add (Metrics.Local.counter reg name) v in
  c "qprof.queries" 1;
  c "qprof.fwd_steps" p.p_self.c_fwd;
  c "qprof.bwd_steps" p.p_self.c_bwd;
  c "qprof.dir_switches" p.p_self.c_switches;
  c "qprof.dict_hits" p.p_self.c_hits;
  c "qprof.dict_misses" p.p_self.c_misses;
  c "qprof.bits_touched" p.p_self.c_bits;
  c "qprof.seq_digram_hits" p.p_self.c_seq_digram_hits;
  c "qprof.seq_digram_misses" p.p_self.c_seq_digram_misses;
  c "qprof.alloc_words" p.p_self.c_alloc_words;
  Metrics.observe (Metrics.Local.histogram reg "qprof.wall_ns")
    p.p_total.c_wall_ns;
  Metrics.observe
    (Metrics.Local.histogram reg ("qprof.latency." ^ p.p_shape))
    p.p_total.c_wall_ns

let finish ?(scope = default_scope) outcome =
  match !(scope.sp_stack) with
  | [] -> invalid_arg "Qprof.finish: no active context"
  | ctx :: rest ->
    scope.sp_stack := rest;
    let recorder = scope.sp_recorder in
    let wall = Wet_obs.Clock.now_ns () - ctx.k_t0 in
    let alloc = allocated_words (Gc.quick_stat ()) -. ctx.k_alloc0 in
    let bi =
      Telemetry.delta ~before:ctx.k_bi0
        ~after:(Telemetry.snapshot ~tally:scope.sp_tally ())
    in
    let sq =
      Sequitur.global_delta ~before:ctx.k_seq0
        ~after:(Sequitur.global_telemetry ())
    in
    let ex = Ex.diff ~before:ctx.k_ex0 ~after:(Ex.report ~recorder ()) in
    if ctx.k_armed_here then Ex.disarm ~recorder ();
    let total =
      {
        c_fwd = bi.Telemetry.g_fwd;
        c_bwd = bi.Telemetry.g_bwd;
        c_switches = bi.Telemetry.g_switches;
        c_hits = bi.Telemetry.g_hits;
        c_misses = bi.Telemetry.g_misses;
        c_bits = bi.Telemetry.g_bits;
        c_seq_input = sq.Sequitur.gs_input;
        c_seq_digram_hits = sq.Sequitur.gs_digram_hits;
        c_seq_digram_misses = sq.Sequitur.gs_digram_misses;
        c_seq_rules_created = sq.Sequitur.gs_rules_created;
        c_seq_rules_inlined = sq.Sequitur.gs_rules_inlined;
        c_wall_ns = max 0 wall;
        c_alloc_words = max 0 (int_of_float alloc);
      }
    in
    let p =
      {
        p_shape = ctx.k_shape;
        p_params = ctx.k_params;
        p_total = total;
        p_self = sub_cost total ctx.k_children;
        p_streams = ex.Ex.r_streams;
        p_queries = ex.Ex.r_queries;
        p_outcome = outcome;
      }
    in
    record ctx.k_local p;
    (match rest with
     | parent :: _ ->
       parent.k_children <- add_cost parent.k_children total;
       Metrics.merge ~into:parent.k_local ctx.k_local
     | [] -> Metrics.merge ctx.k_local);
    p

let run ?scope ?params shape f =
  start ?scope ?params shape;
  match f () with
  | x -> (Ok x, finish ?scope "ok")
  | exception e ->
    let p = finish ?scope ("error: " ^ Printexc.to_string e) in
    (Error e, p)

let profiled ?scope ?params shape f =
  match run ?scope ?params shape f with
  | Ok x, p -> (x, p)
  | Error e, _ -> raise e

(* ------------------------------------------------------------------ *)
(* Advisory hints                                                      *)
(* ------------------------------------------------------------------ *)

let pct num den = 100. *. float_of_int num /. float_of_int (max 1 den)

let hints p =
  let t = p.p_total in
  let decode = decode_steps t in
  let ex_fwd, ex_bwd, ex_seek =
    List.fold_left
      (fun (f, b, s) st ->
        (f + st.Ex.e_fwd, b + st.Ex.e_bwd, s + st.Ex.e_seek_dist))
      (0, 0, 0) p.p_streams
  in
  let out = ref [] in
  let hint fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if decode > 0 && 4 * t.c_switches >= decode then
    hint
      "%.0f%% of decode steps were direction switches -- a cursor cache \
       (one parked cursor per direction) would save ~%d steps"
      (pct t.c_switches decode) t.c_switches;
  if ex_seek > ex_fwd + ex_bwd && ex_seek > 0 then
    hint
      "seek distance (%d) exceeds sequential steps (%d) -- batch queries \
       in stream order or park cursors near the hot region"
      ex_seek (ex_fwd + ex_bwd);
  let lookups = t.c_hits + t.c_misses in
  if lookups > 0 && 2 * t.c_misses > lookups then
    hint
      "%.0f%% of decoded entries were dictionary misses (verbatim 32-bit \
       payloads) -- these streams predict poorly; tier-1 may be faster \
       for this workload"
      (pct t.c_misses lookups);
  if decode = 0 && ex_fwd + ex_bwd + ex_seek > 0 then
    hint
      "all touched streams are raw (tier-1): cursor movement is O(1) \
       array access, decode cost is zero";
  List.rev !out
