module Json = Wet_insight.Json
module Bench = Wet_insight.Bench

let schema = "wet-qlog/1"

type entry = {
  e_shape : string;
  e_params : (string * string) list;
  e_cost : Qprof.cost;  (* the inclusive total of the profiled context *)
  e_streams : int;
  e_queries : string list;
  e_outcome : string;
}

let entry_of_profile (p : Qprof.profile) =
  {
    e_shape = p.Qprof.p_shape;
    e_params = p.Qprof.p_params;
    e_cost = p.Qprof.p_total;
    e_streams = List.length p.Qprof.p_streams;
    e_queries = p.Qprof.p_queries;
    e_outcome = p.Qprof.p_outcome;
  }

let num n = Json.Num (float_of_int n)

let to_json e =
  let c = e.e_cost in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("shape", Json.Str e.e_shape);
      ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) e.e_params));
      ("wall_ns", num c.Qprof.c_wall_ns);
      ("fwd", num c.Qprof.c_fwd);
      ("bwd", num c.Qprof.c_bwd);
      ("switches", num c.Qprof.c_switches);
      ("hits", num c.Qprof.c_hits);
      ("misses", num c.Qprof.c_misses);
      ("bits", num c.Qprof.c_bits);
      ("seq_input", num c.Qprof.c_seq_input);
      ("seq_digram_hits", num c.Qprof.c_seq_digram_hits);
      ("seq_digram_misses", num c.Qprof.c_seq_digram_misses);
      ("seq_rules_created", num c.Qprof.c_seq_rules_created);
      ("seq_rules_inlined", num c.Qprof.c_seq_rules_inlined);
      ("alloc_words", num c.Qprof.c_alloc_words);
      ("streams", num e.e_streams);
      ("queries", Json.Arr (List.map (fun q -> Json.Str q) e.e_queries));
      ("outcome", Json.Str e.e_outcome);
    ]

let of_json j =
  let int name =
    Option.bind (Json.member name j) Json.to_int |> Option.value ~default:0
  in
  match Option.bind (Json.member "schema" j) Json.to_str with
  | Some s when s = schema -> (
    match Option.bind (Json.member "shape" j) Json.to_str with
    | None -> Error "qlog entry: missing shape"
    | Some shape ->
      let params =
        match Json.member "params" j with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
            kvs
        | _ -> []
      in
      let queries =
        match Option.bind (Json.member "queries" j) Json.to_list with
        | Some l -> List.filter_map Json.to_str l
        | None -> []
      in
      Ok
        {
          e_shape = shape;
          e_params = params;
          e_cost =
            {
              Qprof.c_fwd = int "fwd";
              c_bwd = int "bwd";
              c_switches = int "switches";
              c_hits = int "hits";
              c_misses = int "misses";
              c_bits = int "bits";
              c_seq_input = int "seq_input";
              c_seq_digram_hits = int "seq_digram_hits";
              c_seq_digram_misses = int "seq_digram_misses";
              c_seq_rules_created = int "seq_rules_created";
              c_seq_rules_inlined = int "seq_rules_inlined";
              c_wall_ns = int "wall_ns";
              c_alloc_words = int "alloc_words";
            };
          e_streams = int "streams";
          e_queries = queries;
          e_outcome =
            Option.bind (Json.member "outcome" j) Json.to_str
            |> Option.value ~default:"ok";
        })
  | Some s -> Error (Printf.sprintf "qlog entry: schema %S, want %S" s schema)
  | None -> Error "qlog entry: missing schema field"

let line p = Json.to_string (to_json (entry_of_profile p))

let parse_line s =
  match Json.parse s with Ok j -> of_json j | Error e -> Error e

let append path p =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (line p);
      output_char oc '\n')

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error e -> Error e
  | lines ->
    let rec go n acc = function
      | [] -> Ok (List.rev acc)
      | l :: rest when String.trim l = "" -> go (n + 1) acc rest
      | l :: rest -> (
        match parse_line l with
        | Ok e -> go (n + 1) (e :: acc) rest
        | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
    in
    go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Shape summaries                                                     *)
(* ------------------------------------------------------------------ *)

type shape_summary = {
  s_shape : string;
  s_count : int;
  s_errors : int;
  s_wall_total_ns : int;
  s_wall_p50_ns : float;
  s_wall_p95_ns : float;
  s_cost : Qprof.cost;  (* summed inclusive costs *)
}

let summarize entries =
  let tbl : (string, entry list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.e_shape with
      | Some l -> l := e :: !l
      | None -> Hashtbl.replace tbl e.e_shape (ref [ e ]))
    entries;
  Hashtbl.fold
    (fun shape l acc ->
      let es = !l in
      let walls =
        List.map (fun e -> float_of_int e.e_cost.Qprof.c_wall_ns) es
      in
      {
        s_shape = shape;
        s_count = List.length es;
        s_errors =
          List.length (List.filter (fun e -> e.e_outcome <> "ok") es);
        s_wall_total_ns =
          List.fold_left (fun a e -> a + e.e_cost.Qprof.c_wall_ns) 0 es;
        s_wall_p50_ns = Bench.percentile 0.50 walls;
        s_wall_p95_ns = Bench.percentile 0.95 walls;
        s_cost =
          List.fold_left
            (fun a e -> Qprof.add_cost a e.e_cost)
            Qprof.zero_cost es;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.s_wall_total_ns a.s_wall_total_ns)
