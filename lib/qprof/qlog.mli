(** The structured query log: one JSONL line per profiled query.

    Every line is self-describing — it carries
    [{"schema":"wet-qlog/1"}] alongside the query-shape fingerprint,
    parameters, latency, the full cost vector and the outcome — so logs
    can be appended to across runs and consumed line by line without a
    header. [wet_cli qlog report] aggregates a log into per-shape
    summaries (hottest shapes first, p50/p95 latency, summed cost
    attribution). *)

(** ["wet-qlog/1"]. *)
val schema : string

type entry = {
  e_shape : string;
  e_params : (string * string) list;
  e_cost : Qprof.cost;  (** the profiled context's inclusive total *)
  e_streams : int;  (** distinct streams the query touched *)
  e_queries : string list;  (** Explain entry points hit *)
  e_outcome : string;
}

val entry_of_profile : Qprof.profile -> entry
val to_json : entry -> Wet_insight.Json.t

(** Missing numeric fields default to 0 (forward compatibility);
    [Error] on a wrong or missing schema tag or missing shape. *)
val of_json : Wet_insight.Json.t -> (entry, string) result

(** One JSONL line (no trailing newline). *)
val line : Qprof.profile -> string

val parse_line : string -> (entry, string) result

(** Append one profiled query to a log file (creating it if needed). *)
val append : string -> Qprof.profile -> unit

(** Read a whole log; blank lines are skipped, the first malformed line
    is an [Error] with its line number. *)
val load : string -> (entry list, string) result

type shape_summary = {
  s_shape : string;
  s_count : int;
  s_errors : int;  (** entries whose outcome is not ["ok"] *)
  s_wall_total_ns : int;
  s_wall_p50_ns : float;
  s_wall_p95_ns : float;
  s_cost : Qprof.cost;  (** summed inclusive costs *)
}

(** Group entries by shape, hottest (total wall) first. *)
val summarize : entry list -> shape_summary list
