(** The global observation sink.

    Every instrumentation hook in the pipeline is guarded by the single
    {!enabled} flag: with no sink installed a hook costs one load and a
    conditional branch, so instrumented code paths run at full speed.
    {!enable} arms the whole library — metric mutations start taking
    effect and spans start accumulating trace events in an in-memory
    buffer that {!Export} serialises. *)

(** Attribute values attached to spans and events. *)
type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_ts_ns : int;  (** monotonic start time *)
  ev_dur_ns : int option;  (** [Some] for spans, [None] for instants *)
  ev_depth : int;  (** span-stack depth at emission (0 = root) *)
  ev_attrs : (string * value) list;
}

(** Master switch, read directly by the hooks. Prefer {!enable} /
    {!disable} over writing it, so the event buffer stays consistent. *)
val enabled : bool ref

(** Arm the sink: clears the event buffer, stamps a fresh time origin
    and sets {!enabled}. Metric values are left untouched (use
    {!Metrics.reset} for a clean slate). *)
val enable : unit -> unit

val disable : unit -> unit

(** Monotonic time at the last {!enable} — the origin Chrome-trace
    timestamps are made relative to. *)
val epoch_ns : unit -> int

(** Append an event (no-op when disabled; the hooks check first). The
    event is also offered to the installed {!set_tap} observer before
    it reaches the buffer. *)
val record : event -> unit

(** All events recorded since {!enable}, in emission order. Spans are
    emitted when they close, so a parent appears after its children. *)
val events : unit -> event list

(** Install an observer called with every {!record}ed event — how
    [Wet_pulse.Ring] sees span and instant events without the sink
    growing a dependency on it. At most one tap is installed; a new
    {!set_tap} replaces the previous one. *)
val set_tap : (event -> unit) -> unit

val clear_tap : unit -> unit

(** Emit a heartbeat every N statement executions inside
    {!Wet_interp.Interp.run} (0, the default, turns the heartbeat off).
    Read once per run, so set it before calling the interpreter. *)
val heartbeat_every : int ref

(** [tick ()] invokes the {!set_on_tick} callback when the sink is
    enabled — the pipeline's progress pulse. The interpreter calls it
    at every heartbeat and [Builder.Sink] at every shard boundary;
    [Wet_pulse.Reporter] rate-limits and renders. Costs one flag read
    when disabled, one option match when no callback is installed. *)
val tick : unit -> unit

val set_on_tick : (unit -> unit) -> unit
val clear_on_tick : unit -> unit
