(** Monotonic-clock spans over pipeline phases.

    A span measures one phase ([Span.with_ "build.tier1" f]); spans nest
    through a thread of dynamic extent (a global stack), and each closed
    span records a {!Sink.event} carrying wall time, minor/major
    allocation deltas ([Gc.minor_words] for exact minor allocation,
    [Gc.quick_stat] for major/promoted), and any attributes attached
    by the caller or by {!set_attr} while the span was open.

    When no sink is installed, [with_] is one flag check followed by a
    direct call of [f] — safe to leave in hot paths. *)

type value = Sink.value = Int of int | Float of float | Str of string | Bool of bool

(** [with_ name f] runs [f] inside a span. The span closes (and its
    event is recorded, duration included) whether [f] returns or raises;
    a raise re-propagates with its original backtrace and the recorded
    event carries a [("raised", Bool true)] attribute. *)
val with_ : ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a

(** [timed name f] is [with_ name f] plus the span's wall-clock seconds,
    measured whether or not a sink is installed — the bench harness's
    replacement for hand-rolled [Unix.gettimeofday] pairs. *)
val timed : string -> (unit -> 'a) -> 'a * float

(** Attach an attribute to the innermost open span (ignored when
    disabled or outside any span). *)
val set_attr : string -> value -> unit

(** A zero-duration point event at the current span depth (heartbeats,
    milestones). *)
val instant : ?attrs:(string * value) list -> string -> unit

(** Current nesting depth (0 outside all spans). *)
val depth : unit -> int
