type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_ts_ns : int;
  ev_dur_ns : int option;
  ev_depth : int;
  ev_attrs : (string * value) list;
}

let enabled = ref false

let epoch = ref 0

let buffer : event list ref = ref []

let enable () =
  buffer := [];
  epoch := Clock.now_ns ();
  enabled := true

let disable () = enabled := false

let epoch_ns () = !epoch

let tap : (event -> unit) option ref = ref None

let set_tap f = tap := Some f

let clear_tap () = tap := None

let record ev =
  (match !tap with Some f -> f ev | None -> ());
  buffer := ev :: !buffer

let events () = List.rev !buffer

let heartbeat_every = ref 0

let on_tick : (unit -> unit) option ref = ref None

let set_on_tick f = on_tick := Some f

let clear_on_tick () = on_tick := None

let tick () =
  if !enabled then match !on_tick with Some f -> f () | None -> ()
