type value = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_ts_ns : int;
  ev_dur_ns : int option;
  ev_depth : int;
  ev_attrs : (string * value) list;
}

let enabled = ref false

let epoch = ref 0

let buffer : event list ref = ref []

let enable () =
  buffer := [];
  epoch := Clock.now_ns ();
  enabled := true

let disable () = enabled := false

let epoch_ns () = !epoch

let record ev = buffer := ev :: !buffer

let events () = List.rev !buffer

let heartbeat_every = ref 0
