type counter = { mutable c_value : int }

type gauge = { mutable g_value : int }

type histogram = {
  buckets : int array;  (* 64 log2 buckets *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type instrument = C of counter | G of gauge | H of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let enabled () = !Sink.enabled

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"

let intern name make check =
  match Hashtbl.find_opt registry name with
  | Some i -> (
    match check i with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Wet_obs.Metrics: %s already registered as a %s" name
           (kind_name i)))
  | None ->
    let x, i = make () in
    Hashtbl.replace registry name i;
    x

let counter name =
  intern name
    (fun () ->
      let c = { c_value = 0 } in
      (c, C c))
    (function C c -> Some c | _ -> None)

let add c n = if !Sink.enabled then c.c_value <- c.c_value + n

let incr c = add c 1

let value c = c.c_value

let gauge name =
  intern name
    (fun () ->
      let g = { g_value = 0 } in
      (g, G g))
    (function G g -> Some g | _ -> None)

let set g v = if !Sink.enabled then g.g_value <- v

let gauge_value g = g.g_value

let histogram name =
  intern name
    (fun () ->
      let h =
        {
          buckets = Array.make 64 0;
          count = 0;
          sum = 0;
          min_v = max_int;
          max_v = min_int;
        }
      in
      (h, H h))
    (function H h -> Some h | _ -> None)

(* Bucket 0: v <= 0; bucket b >= 1: 2^(b-1) <= v < 2^b. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

let observe h v =
  if !Sink.enabled then begin
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end

let time h f =
  if !Sink.enabled then begin
    let t0 = Clock.now_ns () in
    match f () with
    | x ->
      observe h (Clock.now_ns () - t0);
      x
    | exception e ->
      observe h (Clock.now_ns () - t0);
      raise e
  end
  else f ()

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type reading =
  | Counter of int
  | Gauge of int
  | Histogram of hist_snapshot

let snapshot () =
  Hashtbl.fold
    (fun name i acc ->
      let reading =
        match i with
        | C c -> Counter c.c_value
        | G g -> Gauge g.g_value
        | H h ->
          let bs = ref [] in
          for b = 63 downto 0 do
            if h.buckets.(b) > 0 then bs := (b, h.buckets.(b)) :: !bs
          done;
          Histogram
            {
              h_count = h.count;
              h_sum = h.sum;
              h_min = h.min_v;
              h_max = h.max_v;
              h_buckets = !bs;
            }
      in
      (name, reading) :: acc)
    registry []
  |> List.sort compare

let reset () =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c -> c.c_value <- 0
      | G g -> g.g_value <- 0
      | H h ->
        Array.fill h.buckets 0 64 0;
        h.count <- 0;
        h.sum <- 0;
        h.min_v <- max_int;
        h.max_v <- min_int)
    registry
