type counter = { mutable c_value : int }

(* [g_seq] is a logical write timestamp drawn from [write_seq]: merge
   resolves concurrent gauge writes by last-write-wins on it. 0 means
   "never written". *)
type gauge = { mutable g_value : int; mutable g_seq : int }

type histogram = {
  buckets : int array;  (* 64 log2 buckets *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type instrument = C of counter | G of gauge | H of histogram

let enabled () = !Sink.enabled

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"

(* Shared by every registry: gauge writes on any domain take distinct
   stamps, so merging local registries has a well-defined "last" write. *)
let write_seq = Atomic.make 1

let fresh_hist () =
  {
    buckets = Array.make 64 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
}

type reading =
  | Counter of int
  | Gauge of int
  | Histogram of hist_snapshot

module Local = struct
  type t = { tbl : (string, instrument) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 64 }

  let intern t name make check =
    match Hashtbl.find_opt t.tbl name with
    | Some i -> (
      match check i with
      | Some x -> x
      | None ->
        Wet_error.fail Obs "Wet_obs.Metrics: %s already registered as a %s"
          name (kind_name i))
    | None ->
      let x, i = make () in
      Hashtbl.replace t.tbl name i;
      x

  let counter t name =
    intern t name
      (fun () ->
        let c = { c_value = 0 } in
        (c, C c))
      (function C c -> Some c | _ -> None)

  let gauge t name =
    intern t name
      (fun () ->
        let g = { g_value = 0; g_seq = 0 } in
        (g, G g))
      (function G g -> Some g | _ -> None)

  let histogram t name =
    intern t name
      (fun () ->
        let h = fresh_hist () in
        (h, H h))
      (function H h -> Some h | _ -> None)

  let snapshot t =
    Hashtbl.fold
      (fun name i acc ->
        let reading =
          match i with
          | C c -> Counter c.c_value
          | G g -> Gauge g.g_value
          | H h ->
            let bs = ref [] in
            for b = 63 downto 0 do
              if h.buckets.(b) > 0 then bs := (b, h.buckets.(b)) :: !bs
            done;
            Histogram
              {
                h_count = h.count;
                h_sum = h.sum;
                h_min = h.min_v;
                h_max = h.max_v;
                h_buckets = !bs;
              }
        in
        (name, reading) :: acc)
      t.tbl []
    |> List.sort compare

  let reset t =
    Hashtbl.iter
      (fun _ i ->
        match i with
        | C c -> c.c_value <- 0
        | G g ->
          g.g_value <- 0;
          g.g_seq <- 0
        | H h ->
          Array.fill h.buckets 0 64 0;
          h.count <- 0;
          h.sum <- 0;
          h.min_v <- max_int;
          h.max_v <- min_int)
      t.tbl
end

(* The process view: the implicit registry behind the single-domain
   facade below. Interning, merging and snapshotting mutate its
   hashtable, and a concurrent server does all three from many threads,
   so those paths serialise on [default_lock]. Bumps on an
   already-interned instrument stay lock-free: they are single-field
   writes of immediates — racy increments can drop, never corrupt. *)
let default = Local.create ()

let default_lock = Mutex.create ()

let with_default_lock f =
  Mutex.lock default_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock default_lock) f

(* ---------------- merge ---------------- *)

let zero_like = function
  | C _ -> C { c_value = 0 }
  | G _ -> G { g_value = 0; g_seq = 0 }
  | H _ -> H (fresh_hist ())

let combine name dst src =
  match (dst, src) with
  | C d, C s -> d.c_value <- d.c_value + s.c_value
  | G d, G s ->
    if (s.g_seq, s.g_value) > (d.g_seq, d.g_value) then begin
      d.g_value <- s.g_value;
      d.g_seq <- s.g_seq
    end
  | H d, H s ->
    for b = 0 to 63 do
      d.buckets.(b) <- d.buckets.(b) + s.buckets.(b)
    done;
    d.count <- d.count + s.count;
    d.sum <- d.sum + s.sum;
    if s.min_v < d.min_v then d.min_v <- s.min_v;
    if s.max_v > d.max_v then d.max_v <- s.max_v
  | _ ->
    Wet_error.fail Obs
      "Wet_obs.Metrics.merge: %s is a %s in one registry and a %s in the \
       other"
      name (kind_name dst) (kind_name src)

let merge_unlocked ~into (src : Local.t) =
  Hashtbl.iter
    (fun name s ->
      let d =
        match Hashtbl.find_opt into.Local.tbl name with
        | Some d -> d
        | None ->
          let d = zero_like s in
          Hashtbl.replace into.Local.tbl name d;
          d
      in
      combine name d s)
    src.Local.tbl

let merge ?(into = default) (src : Local.t) =
  if into == default || src == default then
    with_default_lock (fun () -> merge_unlocked ~into src)
  else merge_unlocked ~into src

(* ---------------- single-domain facade ---------------- *)

let counter name = with_default_lock (fun () -> Local.counter default name)

let add c n = if !Sink.enabled then c.c_value <- c.c_value + n

let incr c = add c 1

let value c = c.c_value

let gauge name = with_default_lock (fun () -> Local.gauge default name)

let set g v =
  if !Sink.enabled then begin
    g.g_value <- v;
    g.g_seq <- Atomic.fetch_and_add write_seq 1
  end

let gauge_value g = g.g_value

let histogram name =
  with_default_lock (fun () -> Local.histogram default name)

(* Bucket 0: v <= 0; bucket b >= 1: 2^(b-1) <= v < 2^b. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      b := !b + 1;
      x := !x lsr 1
    done;
    !b
  end

let observe h v =
  if !Sink.enabled then begin
    h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v < h.min_v then h.min_v <- v;
    if v > h.max_v then h.max_v <- v
  end

let time h f =
  if !Sink.enabled then begin
    let t0 = Clock.now_ns () in
    match f () with
    | x ->
      observe h (Clock.now_ns () - t0);
      x
    | exception e ->
      observe h (Clock.now_ns () - t0);
      raise e
  end
  else f ()

let snapshot () = with_default_lock (fun () -> Local.snapshot default)

let reset () = with_default_lock (fun () -> Local.reset default)
