let now_ns () = Int64.to_int (Monotonic_clock.now ())

let to_s ns = float_of_int ns /. 1e9

let to_us ns = float_of_int ns /. 1e3
