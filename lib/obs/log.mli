(** Leveled logging on stderr — the one place the pipeline, the bench
    harness and the [wet serve] daemon narrate from.

    Four severities, filtered by a process-wide {!threshold} (initialised
    from the [WET_LOG] environment variable, overridable with the CLI's
    [--log-level]). Text lines go to stderr; an optional JSONL sink
    ({!set_jsonl}) additionally receives every emitted line as a
    self-describing object with a monotonic timestamp, so a long-lived
    daemon's access and error lines can be collected machine-readably.

    The {!status} line is the live-progress UI element (a [\r]-rewritten
    stderr line, used by [Wet_pulse.Reporter]): it honours {!quiet} and
    the JSONL sink but not the threshold, and regular log lines know to
    terminate an active status line before printing so the two never
    interleave on one row. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

(** Numeric rank, [Debug]=0 .. [Error]=3 — for comparing levels. *)
val severity : level -> int

(** ["debug"], ["info"], ["warn"]/["warning"], ["error"] (case
    insensitive); [Error _] names the valid spellings. *)
val level_of_string : string -> (level, string) result

(** Minimum severity that is emitted. Default [Info], or the value of
    the [WET_LOG] environment variable when set and valid. *)
val threshold : level ref

(** Suppress [Debug]/[Info] text lines and the {!status} line on stderr
    (default [false]). [Warn] and [Error] still print, and the JSONL
    sink still receives everything the threshold admits. *)
val quiet : bool ref

(** Route every emitted line to [oc] as one JSON object per line:
    [{"ts_ms":<monotonic ms since start>,"level":"info","msg":"..."}].
    [None] (the default) disables the sink. The caller owns the
    channel. *)
val set_jsonl : out_channel option -> unit

val debug : ('a, unit, string, unit) format4 -> 'a

(** [info "measuring %s" name] prints "[wet] measuring ..." on stderr
    and flushes. *)
val info : ('a, unit, string, unit) format4 -> 'a

val warn : ('a, unit, string, unit) format4 -> 'a
val error : ('a, unit, string, unit) format4 -> 'a

(** Historical alias of {!info} — the pipeline's progress lines. *)
val progress : ('a, unit, string, unit) format4 -> 'a

(** Rewrite the live status line: ["\r<text>"] on stderr, no newline.
    Suppressed by {!quiet}; mirrored to the JSONL sink (level
    ["status"]) when one is set. *)
val status : ('a, unit, string, unit) format4 -> 'a

(** Terminate an active status line with a newline (no-op otherwise). *)
val finish_status : unit -> unit
