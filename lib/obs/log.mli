(** Progress lines on stderr — the one place the pipeline and the bench
    harness narrate from, replacing ad-hoc [eprintf] helpers. *)

(** Suppress all progress output (default [false]). *)
val quiet : bool ref

(** [progress "measuring %s" name] prints "[wet] measuring ..." on
    stderr and flushes. *)
val progress : ('a, unit, string, unit) format4 -> 'a
