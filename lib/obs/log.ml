let quiet = ref false

let progress fmt =
  Printf.ksprintf
    (fun s -> if not !quiet then Printf.eprintf "[wet] %s\n%!" s)
    fmt
