type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other ->
    Error
      (Printf.sprintf "unknown log level %S (debug, info, warn or error)"
         other)

let threshold =
  ref
    (match Option.map level_of_string (Sys.getenv_opt "WET_LOG") with
     | Some (Ok l) -> l
     | Some (Error _) | None -> Info)

let quiet = ref false

let jsonl : out_channel option ref = ref None

let set_jsonl oc = jsonl := oc

(* Timestamps are monotonic ms since the first line, so daemon logs
   order and diff cleanly regardless of wall-clock adjustments. *)
let t0 = Clock.now_ns ()

let elapsed_ms () = Clock.to_s (Clock.now_ns () - t0) *. 1e3

(* One mutex covers stderr and the JSONL channel: the serve daemon logs
   from one thread per connection. OCaml 5 ships Mutex in the stdlib. *)
let lock = Mutex.create ()

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_sink level_str msg =
  match !jsonl with
  | None -> ()
  | Some oc ->
    Printf.fprintf oc "{\"ts_ms\":%.3f,\"level\":\"%s\",\"msg\":\"%s\"}\n%!"
      (elapsed_ms ()) level_str (json_escape msg)

(* A live status line owns the current stderr row; regular lines must
   break it before printing or the two interleave on one row. *)
let status_active = ref false

let break_status () =
  if !status_active then begin
    Printf.eprintf "\n";
    status_active := false
  end

let prefix = function
  | Debug -> "[wet:debug] "
  | Info -> "[wet] "
  | Warn -> "[wet:warn] "
  | Error -> "[wet:error] "

let emit lvl s =
  if severity lvl >= severity !threshold then begin
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        to_sink (level_name lvl) s;
        let on_stderr =
          match lvl with Debug | Info -> not !quiet | Warn | Error -> true
        in
        if on_stderr then begin
          break_status ();
          Printf.eprintf "%s%s\n%!" (prefix lvl) s
        end)
  end

let debug fmt = Printf.ksprintf (emit Debug) fmt
let info fmt = Printf.ksprintf (emit Info) fmt
let warn fmt = Printf.ksprintf (emit Warn) fmt
let error fmt = Printf.ksprintf (emit Error) fmt
let progress fmt = info fmt

let status fmt =
  Printf.ksprintf
    (fun s ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          to_sink "status" s;
          if not !quiet then begin
            Printf.eprintf "\r%s%!" s;
            status_active := true
          end))
    fmt

let finish_status () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      if !status_active then begin
        Printf.eprintf "\n%!";
        status_active := false
      end)
