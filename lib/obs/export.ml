(* ---------------- tiny JSON emission ---------------- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b = function
  | Sink.Int i -> Buffer.add_string b (string_of_int i)
  | Sink.Float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
    else Buffer.add_string b "null"
  | Sink.Str s -> add_json_string b s
  | Sink.Bool x -> Buffer.add_string b (if x then "true" else "false")

let add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_json_string b k;
      Buffer.add_char b ':';
      add_value b v)
    attrs;
  Buffer.add_char b '}'

(* ---------------- metrics dump ---------------- *)

let schema = "wet-obs/2"

let metrics_jsonl_of readings =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"schema\":%S}\n" schema);
  List.iter
    (fun (name, reading) ->
      (match reading with
       | Metrics.Counter v ->
         Buffer.add_string b "{\"type\":\"counter\",\"name\":";
         add_json_string b name;
         Buffer.add_string b (Printf.sprintf ",\"value\":%d}" v)
       | Metrics.Gauge v ->
         Buffer.add_string b "{\"type\":\"gauge\",\"name\":";
         add_json_string b name;
         Buffer.add_string b (Printf.sprintf ",\"value\":%d}" v)
       | Metrics.Histogram h ->
         Buffer.add_string b "{\"type\":\"histogram\",\"name\":";
         add_json_string b name;
         Buffer.add_string b
           (Printf.sprintf ",\"count\":%d,\"sum\":%d" h.Metrics.h_count
              h.Metrics.h_sum);
         if h.Metrics.h_count > 0 then
           Buffer.add_string b
             (Printf.sprintf ",\"min\":%d,\"max\":%d" h.Metrics.h_min
                h.Metrics.h_max);
         Buffer.add_string b ",\"buckets\":[";
         List.iteri
           (fun i (bk, n) ->
             if i > 0 then Buffer.add_char b ',';
             let lo = if bk = 0 then 0 else 1 lsl (bk - 1) in
             let hi = if bk = 0 then 1 else 1 lsl bk in
             Buffer.add_string b
               (Printf.sprintf "{\"lo\":%d,\"hi\":%d,\"count\":%d}" lo hi n))
           h.Metrics.h_buckets;
         Buffer.add_string b "]}");
      Buffer.add_char b '\n')
    readings;
  Buffer.contents b

let metrics_jsonl () = metrics_jsonl_of (Metrics.snapshot ())

(* ---------------- Chrome trace events ---------------- *)

let chrome_trace () =
  let b = Buffer.create 4096 in
  let t0 = Sink.epoch_ns () in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%S,\"displayTimeUnit\":\"ms\",\"traceEvents\":["
       schema);
  List.iteri
    (fun i (e : Sink.event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":";
      add_json_string b e.Sink.ev_name;
      Buffer.add_string b ",\"cat\":\"wet\",\"pid\":1,\"tid\":1";
      Buffer.add_string b
        (Printf.sprintf ",\"ts\":%.3f" (Clock.to_us (e.Sink.ev_ts_ns - t0)));
      (match e.Sink.ev_dur_ns with
       | Some d ->
         Buffer.add_string b
           (Printf.sprintf ",\"ph\":\"X\",\"dur\":%.3f" (Clock.to_us d))
       | None -> Buffer.add_string b ",\"ph\":\"i\",\"s\":\"t\"");
      Buffer.add_string b ",\"args\":";
      add_attrs b (("depth", Sink.Int e.Sink.ev_depth) :: e.Sink.ev_attrs);
      Buffer.add_char b '}')
    (Sink.events ());
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_metrics_jsonl path = write_file path (metrics_jsonl ())

let write_chrome_trace path = write_file path (chrome_trace ())
