(** Serialising the sink's state: a JSONL metrics dump and a Chrome
    trace-event file.

    The Chrome format is the JSON object form ([{"traceEvents": [...]}])
    with complete events ([ph = "X"]) for spans and instant events
    ([ph = "i"]) for heartbeats, loadable in [chrome://tracing] and
    Perfetto. Timestamps are microseconds relative to the last
    {!Sink.enable}. *)

(** The format version stamped on both exports: ["wet-obs/2"]. v1
    files (no [schema] field) predate the versioning; [wet obs diff]
    still reads them but flags the downgrade. *)
val schema : string

(** A [{"schema":"wet-obs/2"}] header line, then one JSON object per
    registered instrument, one per line, sorted by name:
    [{"type":"counter","name":...,"value":...}],
    [{"type":"gauge",...}] and [{"type":"histogram","name":...,"count":
    ...,"sum":...,"min":...,"max":...,"buckets":[{"lo":..,"hi":..,
    "count":..},...]}]. *)
val metrics_jsonl : unit -> string

(** {!metrics_jsonl} over an explicit reading list instead of the
    process view — how the serve daemon renders a merge of
    per-connection registries without disturbing its own. *)
val metrics_jsonl_of : (string * Metrics.reading) list -> string

(** The full trace-event JSON document for {!Sink.events}, with a
    top-level ["schema"] field (ignored by trace viewers). *)
val chrome_trace : unit -> string

val write_metrics_jsonl : string -> unit
val write_chrome_trace : string -> unit
