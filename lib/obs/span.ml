type value = Sink.value = Int of int | Float of float | Str of string | Bool of bool

type frame = { fr_name : string; mutable fr_attrs : (string * value) list }

let stack : frame list ref = ref []

let depth () = List.length !stack

let set_attr key v =
  if !Sink.enabled then
    match !stack with
    | fr :: _ -> fr.fr_attrs <- (key, v) :: fr.fr_attrs
    | [] -> ()

(* [Gc.minor_words ()] reads the allocation pointer, so it is exact even
   between collections; [quick_stat]'s major/promoted counters only
   advance at GC slices, which is accurate enough for phase-sized
   spans. *)
let gc_attrs mw0 (g0 : Gc.stat) mw1 (g1 : Gc.stat) =
  [
    ("alloc_minor_words", Float (mw1 -. mw0));
    ("alloc_major_words", Float (g1.Gc.major_words -. g0.Gc.major_words));
    ("promoted_words", Float (g1.Gc.promoted_words -. g0.Gc.promoted_words));
  ]

let with_ ?(attrs = []) name f =
  if not !Sink.enabled then f ()
  else begin
    let d = depth () in
    let fr = { fr_name = name; fr_attrs = attrs } in
    stack := fr :: !stack;
    let mw0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    let t0 = Clock.now_ns () in
    let close () =
      let t1 = Clock.now_ns () in
      let mw1 = Gc.minor_words () in
      let g1 = Gc.quick_stat () in
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      Sink.record
        {
          Sink.ev_name = fr.fr_name;
          ev_ts_ns = t0;
          ev_dur_ns = Some (t1 - t0);
          ev_depth = d;
          ev_attrs = List.rev fr.fr_attrs @ gc_attrs mw0 g0 mw1 g1;
        }
    in
    match f () with
    | x ->
      close ();
      x
    | exception e ->
      (* Exception safety: still pop the frame and record the event (so
         a raise cannot leak an open span or lose its duration), mark
         the span as aborted for the phase tables, and re-raise with the
         original backtrace intact. *)
      let bt = Printexc.get_raw_backtrace () in
      fr.fr_attrs <- ("raised", Bool true) :: fr.fr_attrs;
      close ();
      Printexc.raise_with_backtrace e bt
  end

let timed name f =
  let t0 = Clock.now_ns () in
  let x = with_ name f in
  (x, Clock.to_s (Clock.now_ns () - t0))

let instant ?(attrs = []) name =
  if !Sink.enabled then
    Sink.record
      {
        Sink.ev_name = name;
        ev_ts_ns = Clock.now_ns ();
        ev_dur_ns = None;
        ev_depth = depth ();
        ev_attrs = attrs;
      }
