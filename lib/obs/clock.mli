(** Monotonic time base for all observability hooks.

    Backed by [CLOCK_MONOTONIC] (the tiny C stub shipped with bechamel),
    so span durations are immune to wall-clock adjustments. All times in
    this library are integer nanoseconds from an arbitrary origin. *)

(** Current monotonic time in nanoseconds. *)
val now_ns : unit -> int

(** Nanoseconds to seconds. *)
val to_s : int -> float

(** Nanoseconds to microseconds (Chrome trace events use microseconds). *)
val to_us : int -> float
