(** Registries of named counters, gauges and log-scale histograms.

    Metric state lives in {e registries} ({!Local.t}). A worker —
    today the single main domain, tomorrow one OCaml 5 domain per
    shard-compression worker — records into a registry it owns
    exclusively, and registries are folded together downstream with the
    commutative {!merge}: counters sum, gauges resolve by
    last-write-wins on a process-wide write stamp, histograms add
    bucket-wise. No instrument cell is ever shared between domains, so
    recording needs no locks.

    The original single-domain API ([counter] / [add] / [snapshot] / …)
    is kept as a zero-cost facade over one implicit registry, the
    {!default} {e process view} — existing call sites compile and
    behave unchanged, and merges land worker results where the exporters
    already look.

    Instruments are interned by name: the first [counter "x"] creates
    it, later calls return the same cell, so call sites can register at
    module initialisation and mutate from hot loops. Mutations
    ({!add}, {!set}, {!observe}) are no-ops unless {!Sink.enabled} —
    one flag check — while reads always see the current value.

    Naming convention: dot-separated lowercase paths grouped by pipeline
    stage, e.g. ["interp.stmts"], ["build.intern.hits"],
    ["pack.method.dfcm/4.streams"], ["query.control_flow_ns"]. *)

type counter
type gauge
type histogram

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;  (** [max_int] when empty *)
  h_max : int;  (** [min_int] when empty *)
  h_buckets : (int * int) list;  (** non-empty (bucket index, count) *)
}

type reading =
  | Counter of int
  | Gauge of int
  | Histogram of hist_snapshot

(** A metric registry owned by one worker. Create one per domain, record
    into it without synchronisation, then {!merge} it into the process
    view (or any other registry) when the worker finishes. *)
module Local : sig
  type t

  val create : unit -> t

  (** Intern an instrument in this registry.
      @raise Wet_error.Error ([Obs] stage) if the name is already
      registered here as a different instrument kind. *)
  val counter : t -> string -> counter

  val gauge : t -> string -> gauge
  val histogram : t -> string -> histogram

  (** Every instrument registered here, with its current value, sorted
      by name. *)
  val snapshot : t -> (string * reading) list

  (** Zero every instrument (registrations survive). *)
  val reset : t -> unit
end

(** The process view — the implicit registry behind the facade below,
    and the default [?into] target of {!merge}. *)
val default : Local.t

(** [merge ?into src] folds [src] into [into] (default: the process
    view): counters sum, gauges keep the write with the highest
    process-wide stamp, histograms add bucket-wise (count, sum, min,
    max and every bucket). Commutative and associative, so any merge
    order over any partition of recorded work yields the same result;
    [src] is left unchanged. Works whether or not the sink is enabled.
    @raise Wet_error.Error ([Obs] stage) when a name is registered with
    different instrument kinds in the two registries. *)
val merge : ?into:Local.t -> Local.t -> unit

(** Intern a counter in the process view.
    @raise Wet_error.Error ([Obs] stage) if the name is already
    registered as a different instrument kind. *)
val counter : string -> counter

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** Histograms bucket by magnitude: bucket 0 holds values [<= 0] and
    bucket [b >= 1] holds values in [[2^(b-1), 2^b)] — 64 buckets cover
    the whole [int] range. Suited to latencies in ns and sizes in
    bytes, where order of magnitude is the interesting part. *)
val histogram : string -> histogram

val observe : histogram -> int -> unit

(** [time h f] runs [f] and observes its wall duration in nanoseconds —
    when disabled it is exactly [f ()], with no clock reads. The
    duration is observed even if [f] raises. *)
val time : histogram -> (unit -> 'a) -> 'a

(** [bucket_of v] is the index [observe] files [v] under. *)
val bucket_of : int -> int

(** [Local.snapshot] of the process view. *)
val snapshot : unit -> (string * reading) list

(** [Local.reset] of the process view. *)
val reset : unit -> unit

(** [Sink.enabled], re-exported for guards in instrumented code. *)
val enabled : unit -> bool
