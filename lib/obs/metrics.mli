(** A process-wide registry of named counters, gauges and log-scale
    histograms.

    Instruments are interned by name: the first [counter "x"] creates
    it, later calls return the same cell, so call sites can register at
    module initialisation and mutate from hot loops. Mutations
    ({!add}, {!set}, {!observe}) are no-ops unless {!Sink.enabled} —
    one flag check — while reads always see the current value.

    Naming convention: dot-separated lowercase paths grouped by pipeline
    stage, e.g. ["interp.stmts"], ["build.intern.hits"],
    ["pack.method.dfcm/4.streams"], ["query.control_flow_ns"]. *)

type counter
type gauge
type histogram

(** Intern a counter. @raise Invalid_argument if the name is already
    registered as a different instrument kind. *)
val counter : string -> counter

val add : counter -> int -> unit
val incr : counter -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** Histograms bucket by magnitude: bucket 0 holds values [<= 0] and
    bucket [b >= 1] holds values in [[2^(b-1), 2^b)] — 64 buckets cover
    the whole [int] range. Suited to latencies in ns and sizes in
    bytes, where order of magnitude is the interesting part. *)
val histogram : string -> histogram

val observe : histogram -> int -> unit

(** [time h f] runs [f] and observes its wall duration in nanoseconds —
    when disabled it is exactly [f ()], with no clock reads. The
    duration is observed even if [f] raises. *)
val time : histogram -> (unit -> 'a) -> 'a

(** [bucket_of v] is the index [observe] files [v] under. *)
val bucket_of : int -> int

type hist_snapshot = {
  h_count : int;
  h_sum : int;
  h_min : int;  (** [max_int] when empty *)
  h_max : int;  (** [min_int] when empty *)
  h_buckets : (int * int) list;  (** non-empty (bucket index, count) *)
}

type reading =
  | Counter of int
  | Gauge of int
  | Histogram of hist_snapshot

(** Every registered instrument with its current value, sorted by
    name. *)
val snapshot : unit -> (string * reading) list

(** Zero every instrument (registrations survive). *)
val reset : unit -> unit

(** [Sink.enabled], re-exported for guards in instrumented code. *)
val enabled : unit -> bool
