(* Fault localisation with backward WET slices — the paper's dynamic
   slicing application (§5.2, Table 9; the companion PLDI'04 paper).

   The program below computes statistics over a table, but one of its
   three accumulators is wrong. Slicing backward from the bad output
   isolates the handful of statements that could be responsible, while
   the slices of the good outputs don't contain the buggy line.

     dune exec examples/slicing_debug.exe *)

module W = Wet_core.Wet
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module Instr = Wet_ir.Instr

let source =
  {|
global data[32];

fn main() {
  // fill with a deterministic ramp
  var i = 0;
  while (i < 32) {
    data[i] = (i * 7) % 13;
    i = i + 1;
  }

  var total = 0;
  var evens = 0;
  var peak = 0;
  var j = 0;
  while (j < 32) {
    var v = data[j];
    total = total + v;
    if (v % 2 == 0) {
      evens = evens + 1;
    }
    if (v > peak) {
      peak = v + 1;        // BUG: records peak + 1, not the peak
    }
    j = j + 1;
  }
  print(total);   // output 0: correct
  print(evens);   // output 1: correct
  print(peak);    // output 2: wrong!
}
|}

let () =
  let program = Wet_minic.Frontend.compile_exn source in
  let res = Wet_interp.Interp.run program ~input:[||] in
  let out = res.Wet_interp.Interp.outputs in
  Printf.printf "outputs: total=%d evens=%d peak=%d (true peak is %d)\n\n"
    out.(0) out.(1) out.(2) (out.(2) - 1);

  let wet = Wet_core.Builder.build res.Wet_interp.Interp.trace in
  let sess = Wet_core.Wet.open_session wet in

  (* Output statements in source order. *)
  let outputs =
    Query.copies_matching wet (function Instr.Output _ -> true | _ -> false)
    |> List.sort (fun a b -> compare wet.W.copy_stmt.(a) wet.W.copy_stmt.(b))
  in

  (* For each output, slice backward and look at which *arithmetic*
     statements the value depends on. The wrong output is the only one
     whose slice contains the buggy "+ 1" after the comparison. *)
  List.iteri
    (fun k out_copy ->
      let adds = Hashtbl.create 16 in
      let r =
        Slice.Session.backward sess out_copy 0 ~f:(fun c _ ->
            match W.instr_of_copy wet c with
            | Instr.Binop (Instr.Add, _, _, _) | Instr.Binop (Instr.Rem, _, _, _)
            | Instr.Cmp _ ->
              Hashtbl.replace adds wet.W.copy_stmt.(c) (W.instr_of_copy wet c)
            | _ -> ())
      in
      Printf.printf "slice of output %d: %d instances, %d static statements\n"
        k r.Slice.instances r.Slice.stmts;
      let stmts =
        Hashtbl.fold (fun s i acc -> (s, i) :: acc) adds []
        |> List.sort compare
      in
      List.iter
        (fun (s, ins) ->
          Printf.printf "    stmt %-4d %s\n" s (Fmt.str "%a" Instr.pp ins))
        stmts;
      print_newline ())
    outputs;

  print_endline
    "The peak slice is the only one containing the increment that follows\n\
     the comparison (the injected bug); the total/evens slices exonerate it.\n\
     This is the query pattern the paper's Table 9 measures at scale."
