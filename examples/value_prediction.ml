(* Designing load value predictors from WET value profiles — one of the
   motivating uses in the paper's introduction ("value profiles have
   been used ... to perform value speculation"). The per-instruction
   load value traces of Table 7 drive four classical predictors, and
   the per-load best predictor is reported, reproducing the well-known
   result that FCM and last-n dominate on different loads.

     dune exec examples/value_prediction.exe [benchmark] *)

module W = Wet_core.Wet
module Query = Wet_core.Query
module P = Wet_predict.Predictor
module Spec = Wet_workloads.Spec
module Table = Wet_report.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "255.vortex" in
  let w = Spec.find name in
  Printf.printf "load value predictability for %s\n\n" w.Spec.name;
  let res = Spec.run ~scale:w.Spec.timing_scale w in
  let wet = Wet_core.Builder.build res.Wet_interp.Interp.trace in

  (* Gather the value trace of every load with enough executions. *)
  let traces : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let s = W.open_session wet in
  let _ =
    Query.Session.load_values s ~f:(fun c v ->
        match Hashtbl.find_opt traces c with
        | Some l -> l := v :: !l
        | None -> Hashtbl.replace traces c (ref [ v ]))
  in
  let loads =
    Hashtbl.fold
      (fun c l acc ->
        let arr = Array.of_list (List.rev !l) in
        if Array.length arr >= 64 then (c, arr) :: acc else acc)
      traces []
    |> List.sort (fun (_, a) (_, b) -> compare (Array.length b) (Array.length a))
  in

  let predictors () =
    [ P.fcm ~ctx:2 (); P.dfcm ~ctx:2 (); P.last_n ~n:4; P.stride () ]
  in
  let wins = Hashtbl.create 8 in
  let rows =
    List.filteri (fun i _ -> i < 12) loads
    |> List.map (fun (c, arr) ->
           let accs =
             List.map (fun p -> (P.name p, P.accuracy p arr)) (predictors ())
           in
           let best_name, _ =
             List.fold_left
               (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
               ("", -1.) accs
           in
           Hashtbl.replace wins best_name
             (1 + Option.value (Hashtbl.find_opt wins best_name) ~default:0);
           [
             Printf.sprintf "stmt %d" wet.W.copy_stmt.(c);
             string_of_int (Array.length arr);
           ]
           @ List.map (fun (_, v) -> Printf.sprintf "%.2f" v) accs
           @ [ best_name ])
  in
  Table.print
    ~title:"Per-load predictor accuracy (fraction of values predicted)."
    ~align:Table.[ Left; Right; Right; Right; Right; Right; Left ]
    ~header:[ "Load"; "Values"; "fcm/2"; "dfcm/2"; "last-4"; "stride"; "Best" ]
    rows;

  print_newline ();
  Hashtbl.iter
    (fun name n -> Printf.printf "%s wins on %d of the hottest loads\n" name n)
    wins;
  print_endline
    "\nNo single predictor dominates - the paper's rationale for selecting\n\
     a compression method per stream (its 'Selection' paragraph) and for\n\
     hybrid value predictors in general."
