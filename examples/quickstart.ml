(* Quickstart: compile a MiniC program, run it under the tracing
   interpreter, build the compressed Whole Execution Trace, and ask it
   the four kinds of questions from the paper (§2):
   control flow, values, dependences, and a WET slice.

     dune exec examples/quickstart.exe *)

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module Sizes = Wet_core.Sizes

let source =
  {|
global squares[12];

fn square(x) { return x * x; }

fn main() {
  var i = 0;
  while (i < 12) {
    squares[i] = square(i);
    i = i + 1;
  }
  var sum = 0;
  for (var j = 0; j < 12; j = j + 1) { sum = sum + squares[j]; }
  print(sum);
}
|}

let () =
  (* 1. Compile and run with tracing. The interpreter stands in for the
     paper's simulator: no instrumentation touches the program. *)
  let program = Wet_minic.Frontend.compile_exn source in
  let result = Wet_interp.Interp.run program ~input:[||] in
  Printf.printf "program output: %d\n"
    result.Wet_interp.Interp.outputs.(0);
  Printf.printf "statements executed: %d\n\n"
    result.Wet_interp.Interp.stmts_executed;

  (* 2. Build the WET (tier-1 structural compression), then pack every
     label stream with the bidirectional compressors (tier-2). *)
  let tier1 = Builder.build result.Wet_interp.Interp.trace in
  let wet = Builder.pack tier1 in
  let orig = Sizes.original wet and comp = Sizes.current wet in
  Printf.printf "WET nodes (executed Ball-Larus paths): %d\n"
    (Array.length wet.W.nodes);
  Printf.printf "uncompressed WET: %.1f KB, compressed: %.1f KB (%.1fx)\n\n"
    (orig.Sizes.total_bytes /. 1024.)
    (comp.Sizes.total_bytes /. 1024.)
    (orig.Sizes.total_bytes /. comp.Sizes.total_bytes);

  (* 3. Open a session: the container is immutable, all cursor state
     lives in the session handle. Independent sessions over the same
     WET answer concurrently; here one is plenty. *)
  let s = W.open_session wet in

  (* Query: regenerate the start of the control-flow trace. *)
  Query.Session.park s Query.Forward;
  let shown = ref 0 in
  print_endline "first 10 block executions (from the compressed WET):";
  let total =
    Query.Session.control_flow s Query.Forward ~f:(fun f b ->
        if !shown < 10 then begin
          Printf.printf "  f%d:B%d\n" f b;
          incr shown
        end)
  in
  Printf.printf "  ... %d block executions in all\n\n" total;

  (* 4. Query: the value sequence of one load instruction. *)
  (match
     Query.copies_matching wet (function Wet_ir.Instr.Load _ -> true | _ -> false)
   with
   | [] -> ()
   | load :: _ ->
     Printf.printf "values loaded by copy %d (statement %d):\n  " load
       wet.W.copy_stmt.(load);
     Query.Session.values_of_copy s load ~f:(Printf.printf "%d ");
     print_newline ();
     print_newline ());

  (* 5. A backward WET slice of the printed sum: everything that fed it. *)
  let out =
    List.hd
      (Query.copies_matching wet (function Wet_ir.Instr.Output _ -> true | _ -> false))
  in
  let slice = Slice.Session.backward s out 0 in
  Printf.printf
    "backward slice of the printed sum: %d statement instances across %d \
     static statements\n"
    slice.Slice.instances slice.Slice.stmts
