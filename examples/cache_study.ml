(* Cache-conscious analysis from WET address profiles — the paper's
   introduction cites "identifying hot data streams that exhibit data
   locality" as a use of address profiles. This example extracts the
   per-instruction address traces (Table 8's query), replays them
   through caches of several geometries, and ranks the memory
   instructions by miss contribution.

     dune exec examples/cache_study.exe [benchmark] *)

module W = Wet_core.Wet
module Query = Wet_core.Query
module Cache = Wet_arch.Cache
module Spec = Wet_workloads.Spec
module Table = Wet_report.Table
module Instr = Wet_ir.Instr

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "181.mcf" in
  let w = Spec.find name in
  Printf.printf "cache behaviour of %s\n\n" w.Spec.name;
  let res = Spec.run ~scale:w.Spec.timing_scale w in
  let wet = Wet_core.Builder.build res.Wet_interp.Interp.trace in

  (* Gather one address trace per memory instruction from the WET. *)
  let per_copy : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let s = W.open_session wet in
  let _ =
    Query.Session.addresses s ~f:(fun c a ->
        match Hashtbl.find_opt per_copy c with
        | Some l -> l := a :: !l
        | None ->
          Hashtbl.replace per_copy c (ref [ a ]);
          order := c :: !order)
  in

  (* Sweep cache sizes on the merged trace, in true program order. The
     merged trace is recovered from the raw trace (it is the
     interleaving the caches would see). *)
  let merged = res.Wet_interp.Interp.trace.Wet_interp.Trace.mem_ops in
  let rows =
    List.map
      (fun (size, line) ->
        let c = Cache.create ~size_words:size ~line_words:line () in
        Array.iter
          (fun op ->
            ignore (Cache.access c ~addr:(op lsr 1) ~is_store:(op land 1 = 1)))
          merged;
        let loads, lm, stores, sm = Cache.stats c in
        [
          Printf.sprintf "%d words / %d-word lines" size line;
          string_of_int (loads + stores);
          Printf.sprintf "%.2f%%" (100. *. float_of_int lm /. float_of_int (max 1 loads));
          Printf.sprintf "%.2f%%" (100. *. float_of_int sm /. float_of_int (max 1 stores));
        ])
      [ (256, 4); (1024, 4); (4096, 4); (4096, 16); (16384, 16) ]
  in
  Table.print ~title:"Miss rates across cache geometries."
    ~align:Table.[ Left; Right; Right; Right ]
    ~header:[ "Cache"; "Accesses"; "Load miss"; "Store miss" ]
    rows;
  print_newline ();

  (* Rank instructions by misses in a small cache: the "hot data
     stream" sources a prefetcher or layout optimiser would target. *)
  let ranked =
    Hashtbl.fold
      (fun c l acc ->
        let cache = Cache.create ~size_words:1024 ~line_words:4 () in
        let addrs = Array.of_list (List.rev !l) in
        Array.iter (fun a -> ignore (Cache.access cache ~addr:a ~is_store:false)) addrs;
        let _, misses, _, _ = Cache.stats cache in
        (misses, c, Array.length addrs) :: acc)
      per_copy []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
  in
  let rows =
    List.filteri (fun i _ -> i < 8) ranked
    |> List.map (fun (misses, c, n) ->
           [
             Printf.sprintf "stmt %d (%s)" wet.W.copy_stmt.(c)
               (Fmt.str "%a" Instr.pp (W.instr_of_copy wet c));
             string_of_int n;
             string_of_int misses;
           ])
  in
  Table.print
    ~title:
      "Memory instructions ranked by standalone misses (1K-word cache)."
    ~align:Table.[ Left; Right; Right ]
    ~header:[ "Instruction"; "Accesses"; "Misses" ]
    rows
