(* wet — command-line driver for the WET library.

   PROGRAM arguments accept either a path to a MiniC source file or the
   name of a bundled benchmark (e.g. "126.gcc" or just "gcc"). *)

open Cmdliner

module Spec = Wet_workloads.Spec
module Store = Wet_core.Store
module Container = Wet_core.Container
module Faultsim = Wet_faultsim.Faultsim
module Interp = Wet_interp.Interp
module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module Sizes = Wet_core.Sizes
module Table = Wet_report.Table
module Insight_report = Wet_insight.Report
module Insight_json = Wet_insight.Json
module Bench_obs = Wet_insight.Bench
module Metric_docs = Wet_insight.Metric_docs
module Obs_diff = Wet_insight.Obs_diff
module Pulse_ring = Wet_pulse.Ring
module Pulse_reporter = Wet_pulse.Reporter
module Journal = Wet_journal.Journal
module Checkpoint = Wet_core.Builder.Checkpoint
module Render = Wet_serve.Render
module Serve_protocol = Wet_serve.Protocol
module Serve_server = Wet_serve.Server
module Serve_client = Wet_serve.Client
module Serve_top = Wet_serve.Top

let is_wet_file name =
  Filename.check_suffix name ".wet"

let load_program name ~scale =
  match Spec.find name with
  | w ->
    let scale = Option.value scale ~default:w.Spec.default_scale in
    Ok (Spec.compile w, Spec.input w ~scale, w.Spec.name)
  | exception Not_found ->
    if Sys.file_exists name then begin
      let ic = open_in_bin name in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Wet_minic.Frontend.compile src with
      | Ok p -> Ok (p, [||], Filename.basename name)
      | Error m -> Error (`Msg m)
    end
    else
      Error
        (`Msg
           (Printf.sprintf
              "%s is neither a bundled benchmark nor a readable file" name))

let with_program ?(optimize = 0) name scale input f =
  match load_program name ~scale with
  | Error (`Msg m) -> `Error (false, m)
  | Ok (prog, winput, label) ->
    let prog = Wet_opt.Driver.optimize ~level:optimize prog in
    let input = if input = [] then winput else Array.of_list input in
    (match f prog input label with
     | () -> `Ok ()
     | exception Wet_error.Error e -> `Error (false, Wet_error.message e))

(* Exit codes: 0 success, 2 usage, 3 corrupt or salvage-degraded input
   (1 is left to analysis mismatches, e.g. [verify]). *)
let corrupt_exit path fault =
  Printf.eprintf "error: %s\n" (Store.corrupt_message ~path fault);
  exit 3

(* Commands operating on a WET accept either a saved [.wet] container or
   anything [load_program] accepts (built on the fly). On-the-fly builds
   stream interpreter events through the sharded sink by default, so no
   whole-execution trace is ever materialised; [--batch] restores the
   old materialise-then-build pipeline. *)
let with_wet ?(optimize = 0) ?(tier2 = false) ?(salvage = false)
    ?(batch = false) ?shard_events name scale input f =
  if is_wet_file name then begin
    match Store.load ~salvage name with
    | wet -> (
      match f wet (Filename.basename name) with
      | () -> `Ok ()
      | exception Wet_error.Error e -> `Error (false, Wet_error.message e)
      | exception W.Missing_stream sec ->
        Printf.eprintf
          "error: %s: section '%s' was lost to a salvage load; this query \
           needs it\n"
          name sec;
        exit 3)
    | exception Store.Corrupt { path; fault } -> corrupt_exit path fault
    | exception (Invalid_argument m | Sys_error m) -> `Error (false, m)
  end
  else
    with_program ~optimize name scale input (fun p input label ->
        let wet =
          if batch then
            let res = Interp.run p ~input in
            Builder.build res.Interp.trace
          else Builder.run_streaming ?shard_events ~program:p ~input ()
        in
        let wet = if tier2 then Builder.pack wet else wet in
        f wet label)

(* ---------------- observability flags ---------------- *)

(* Every pipeline subcommand accepts [--metrics-out], [--trace-out],
   [--progress] and [--progress-out]; giving any arms the observation
   sink for the whole command. The files are written when the action
   finishes (even on error); progress renders live, driven by interp
   heartbeats and builder shard boundaries. *)

let metrics_out_arg =
  let doc = "Write a JSONL dump of all pipeline metrics to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write phase spans as a Chrome trace-event file to $(docv) (open in \
     chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Render a live status line on stderr while the pipeline runs \
     (statement rate, shard count, peak live words, ring drops)."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let progress_out_arg =
  let doc =
    "Stream machine-readable JSONL heartbeats to $(docv) while the \
     pipeline runs (schema wet-obs/2)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "progress-out" ] ~docv:"FILE" ~doc)

let log_level_arg =
  let doc =
    "Minimum log severity printed on stderr: debug, info, warn or error. \
     Overrides the WET_LOG environment variable."
  in
  Arg.(
    value & opt (some string) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let log_out_arg =
  let doc =
    "Append every log line to $(docv) as JSONL objects with monotonic \
     timestamps (in addition to stderr)."
  in
  Arg.(value & opt (some string) None & info [ "log-out" ] ~docv:"FILE" ~doc)

type obs_opts = {
  o_metrics : string option;
  o_trace : string option;
  o_progress : bool;
  o_progress_out : string option;
  o_log_level : string option;
  o_log_out : string option;
}

let obs_term =
  Term.(
    const (fun m t p po ll lo ->
        {
          o_metrics = m;
          o_trace = t;
          o_progress = p;
          o_progress_out = po;
          o_log_level = ll;
          o_log_out = lo;
        })
    $ metrics_out_arg $ trace_out_arg $ progress_arg $ progress_out_arg
    $ log_level_arg $ log_out_arg)

(* Default heartbeat period when progress is requested but the caller
   did not pick one: frequent enough for a responsive status line, rare
   enough (every 50k statements) to stay off the profile. *)
let progress_heartbeat_default = 50_000

let with_obs o f =
  let progress = o.o_progress || o.o_progress_out <> None in
  if o.o_metrics <> None || o.o_trace <> None || progress then begin
    Wet_obs.Sink.enable ();
    Wet_obs.Metrics.reset ()
  end;
  let bad_level = ref None in
  (match o.o_log_level with
   | None -> ()
   | Some s ->
     (match Wet_obs.Log.level_of_string s with
      | Ok l -> Wet_obs.Log.threshold := l
      | Error m -> bad_level := Some m));
  let log_oc =
    match Option.map open_out o.o_log_out with
    | exception Sys_error m ->
      bad_level := Some ("cannot write log output: " ^ m);
      None
    | oc ->
      Wet_obs.Log.set_jsonl oc;
      oc
  in
  let close_log () =
    Wet_obs.Log.set_jsonl None;
    Option.iter close_out log_oc
  in
  match !bad_level with
  | Some m ->
    close_log ();
    `Error (false, m)
  | None ->
  let run_reported () =
    if not progress then f ()
    else begin
      match Option.map open_out o.o_progress_out with
      | exception Sys_error m ->
        `Error (false, "cannot write progress output: " ^ m)
      | oc ->
        let ring = Pulse_ring.create () in
        Pulse_ring.install ring;
        let out =
          match oc with
          | Some oc -> Pulse_reporter.Jsonl oc
          | None -> Pulse_reporter.Tty
        in
        let reporter = Pulse_reporter.create ~ring out in
        Pulse_reporter.install reporter;
        let hb0 = !Wet_obs.Sink.heartbeat_every in
        if hb0 = 0 then
          Wet_obs.Sink.heartbeat_every := progress_heartbeat_default;
        (* the reporter owns the status line; raise the threshold so
           heartbeat info lines don't interleave with it (the status
           line itself is threshold-exempt, so it keeps rendering) *)
        let threshold0 = !Wet_obs.Log.threshold in
        if
          Wet_obs.Log.severity threshold0
          < Wet_obs.Log.severity Wet_obs.Log.Warn
        then Wet_obs.Log.threshold := Wet_obs.Log.Warn;
        Fun.protect
          ~finally:(fun () ->
            Pulse_reporter.finish reporter;
            Pulse_reporter.uninstall ();
            Pulse_ring.uninstall ();
            Wet_obs.Sink.heartbeat_every := hb0;
            Wet_obs.Log.threshold := threshold0;
            Option.iter close_out oc)
          f
    end
  in
  let r = run_reported () in
  close_log ();
  (* An unwritable output path is a user error, not a crash. *)
  try
    Option.iter Wet_obs.Export.write_metrics_jsonl o.o_metrics;
    Option.iter Wet_obs.Export.write_chrome_trace o.o_trace;
    r
  with Sys_error m ->
    `Error (false, "cannot write observability output: " ^ m)

(* ---------------- query explain ---------------- *)

module Explain = Wet_watch.Explain

let explain_arg =
  let doc =
    "Arm query-explain: after the command's queries run, report which \
     compressed label streams they touched, in which directions, and how \
     many decompression steps each cost."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let print_explain (r : Explain.report) =
  if r.Explain.r_streams = [] then
    print_endline "explain: no compressed streams touched"
  else begin
    let queries =
      List.fold_left
        (fun acc q -> if List.mem q acc then acc else q :: acc)
        [] r.Explain.r_queries
      |> List.rev
    in
    let kind_rows =
      List.map
        (fun (kind, (streams, fwd, bwd, seeks, switches)) ->
          [
            kind; string_of_int streams; string_of_int fwd;
            string_of_int bwd; string_of_int seeks; string_of_int switches;
          ])
        (Explain.by_kind r)
    in
    Table.print
      ~title:
        (Printf.sprintf "Query explain: %s (%d streams, %d steps)."
           (String.concat ", " queries)
           (List.length r.Explain.r_streams)
           (Explain.total_steps r))
      ~align:Table.[ Left; Right; Right; Right; Right; Right ]
      ~header:
        [ "Stream kind"; "Streams"; "Fwd"; "Bwd"; "Seeks"; "Dir switches" ]
      kind_rows;
    let busiest =
      List.sort
        (fun a b -> compare (Explain.steps b) (Explain.steps a))
        r.Explain.r_streams
    in
    let rows =
      List.filteri (fun i _ -> i < 5) busiest
      |> List.map (fun (s : Explain.stream_stats) ->
             [
               Explain.stream_name s.Explain.e_stream;
               string_of_int (Explain.steps s);
               string_of_int s.Explain.e_fwd;
               string_of_int s.Explain.e_bwd;
               string_of_int s.Explain.e_seeks;
               string_of_int s.Explain.e_switches;
             ])
    in
    Table.print ~title:"Busiest streams."
      ~align:Table.[ Left; Right; Right; Right; Right; Right ]
      ~header:[ "Stream"; "Steps"; "Fwd"; "Bwd"; "Seeks"; "Dir switches" ]
      rows
  end

let with_explain explain f =
  if not explain then f ()
  else begin
    Explain.arm ();
    let r = Fun.protect ~finally:Explain.disarm f in
    (* [publish] also folds the tallies into the wet_obs instruments, so
       --explain combined with --metrics-out exports them. *)
    print_explain (Explain.publish ());
    r
  end

(* ---------------- query profiling (--analyze / --qlog-out) ------- *)

module Qprof = Wet_qprof.Qprof
module Qlog = Wet_qprof.Qlog

let analyze_arg =
  let doc =
    "Profile the command's query: report estimated vs. actual cursor \
     steps per stream class, the exact cost vector (wall, decode steps, \
     direction switches, dictionary hit rate, stored bits touched, \
     allocation) and advisory hints."
  in
  Arg.(value & flag & info [ "analyze" ] ~doc)

let qlog_out_arg =
  let doc =
    "Append the profiled query to $(docv) as one wet-qlog/1 JSONL line \
     (aggregate with `wet qlog report`)."
  in
  Arg.(value & opt (some string) None & info [ "qlog-out" ] ~docv:"FILE" ~doc)

type qprof_opts = { q_analyze : bool; q_qlog : string option }

let qprof_term =
  Term.(
    const (fun a q -> { q_analyze = a; q_qlog = q })
    $ analyze_arg $ qlog_out_arg)

let ns_ms ns = float_of_int ns /. 1e6

(* The table rendering lives in [Wet_serve.Render] so remote answers
   from the daemon are byte-identical to local ones. *)
let print_analyze wet (p : Qprof.profile) =
  List.iter print_endline (Render.analyze wet p)

(* Wrap the query part of a command (not the build: [with_wet] has
   already produced the WET when this runs) in a profiling context. The
   sink is enabled so the per-query [qprof.*] instruments land in the
   process registry and export via --metrics-out. *)
let with_qprof q ~shape ?(params = []) wet f =
  if (not q.q_analyze) && q.q_qlog = None then f ()
  else begin
    Wet_obs.Sink.enable ();
    let res, prof = Qprof.run ~params shape f in
    (match q.q_qlog with
     | None -> ()
     | Some path -> (
       try Qlog.append path prof
       with Sys_error m ->
         Printf.eprintf "error: cannot write qlog: %s\n" m;
         exit 2));
    if q.q_analyze then print_analyze wet prof;
    match res with Ok v -> v | Error e -> raise e
  end

(* ---------------- remote queries (wet serve client) ---------------- *)

let remote_arg =
  let doc =
    "Answer the query through a running `wet serve` daemon listening on \
     Unix socket $(docv) instead of loading the container in this \
     process. PROGRAM must then be a .wet container path (the daemon \
     keeps it resident across requests)."
  in
  Arg.(value & opt (some string) None & info [ "remote" ] ~docv:"SOCKET" ~doc)

(* One round-trip: the response's [lines] are exactly what the local
   code path would have printed, so emitting them with [print_endline]
   keeps remote and local output byte-identical. *)
let remote_query ~socket ~qp ~prog verb params =
  if qp.q_qlog <> None then
    `Error
      ( true,
        "--qlog-out is local; the daemon appends its own access log \
         (wet serve --qlog)" )
  else if not (is_wet_file prog) then
    `Error (true, "--remote queries name a saved .wet container path")
  else
    match
      Serve_client.call ~socket
        (Serve_protocol.request ~id:1 ~wet:prog ~params
           ~analyze:qp.q_analyze verb)
    with
    | Error m -> `Error (false, m)
    | Ok r when not r.Serve_protocol.rs_ok ->
      `Error
        ( false,
          Option.value r.Serve_protocol.rs_error ~default:"request failed" )
    | Ok r ->
      List.iter print_endline r.Serve_protocol.rs_lines;
      `Ok ()

(* ---------------- arguments ---------------- *)

let program_arg =
  let doc = "MiniC source file or bundled benchmark name." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let scale_arg =
  let doc = "Workload scale (bundled benchmarks only)." in
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc)

let input_arg =
  let doc = "Input stream for the program (overrides workload inputs)." in
  Arg.(value & opt (list int) [] & info [ "input" ] ~docv:"INTS" ~doc)

let tier2_arg =
  let doc = "Also apply tier-2 (bidirectional stream) compression." in
  Arg.(value & flag & info [ "tier2" ] ~doc)

let optimize_arg =
  let doc = "Optimisation level applied before running (0 or 1)." in
  Arg.(value & opt int 0 & info [ "O"; "optimize" ] ~docv:"LEVEL" ~doc)

(* On-the-fly builds default to the streaming sink; these two flags tune
   or disable it. *)
let shard_events_arg =
  let doc =
    "Streaming build only: buffer at most $(docv) raw interpreter events \
     before compressing a shard (default 65536). Smaller shards lower \
     peak memory; the resulting WET is identical either way."
  in
  Arg.(value & opt (some int) None & info [ "shard-events" ] ~docv:"N" ~doc)

let batch_arg =
  let doc =
    "Materialise the whole execution trace in memory before building the \
     WET, instead of streaming interpreter events through the sharded \
     sink (the default). Produces a byte-identical WET."
  in
  Arg.(value & flag & info [ "batch" ] ~doc)

let stream_term =
  Term.(const (fun batch shard -> (batch, shard)) $ batch_arg $ shard_events_arg)

(* ---------------- run ---------------- *)

let run_cmd =
  let action obs prog scale input optimize =
    with_obs obs @@ fun () ->
    with_program ~optimize prog scale input (fun p input _ ->
        let out = Interp.outputs_only p ~input in
        Array.iter (Printf.printf "%d\n") out)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program and print its outputs.")
    Term.(
      ret (const action $ obs_term $ program_arg $ scale_arg $ input_arg
           $ optimize_arg))

(* ---------------- stats ---------------- *)

let stats_cmd =
  let json_arg =
    let doc = "Emit the full report as one JSON document instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let salvage_arg =
    let doc =
      "When PROGRAM is a damaged .wet container, salvage the intact \
       sections and report on what survives (exit 3)."
    in
    Arg.(value & flag & info [ "salvage" ] ~doc)
  in
  let action obs (batch, shard_events) prog scale input tier2 json salvage =
    with_obs obs @@ fun () ->
    with_wet ~tier2 ~salvage ~batch ?shard_events prog scale input
      (fun wet label ->
        let report = Insight_report.of_wet ~label wet in
        if json then
          print_endline (Insight_json.to_string (Insight_report.to_json report))
        else begin
          let s = wet.W.stats in
          Printf.printf "program: %s\n" label;
          Printf.printf "statements executed: %d\n" s.W.stmts_executed;
          Printf.printf "basic block executions: %d\n" s.W.block_execs;
          Printf.printf "Ball-Larus path executions: %d\n" s.W.path_execs;
          Printf.printf "distinct executed paths (WET nodes): %d\n"
            (Array.length wet.W.nodes);
          Printf.printf "statement copies: %d\n" (W.num_copies wet);
          Printf.printf "dependence instances: %d (data) + %d (control)\n"
            s.W.dep_instances s.W.cd_instances;
          Printf.printf "  inferable from node labels (no edge stored): %d\n"
            s.W.local_dep_instances;
          Printf.printf "  label values shared across identical edges: %d\n"
            s.W.shared_label_values;
          let o = Sizes.original wet and c = Sizes.current wet in
          Printf.printf
            "original WET: %.2f MB (ts %.2f, vals %.2f, edges %.2f)\n"
            (Sizes.mb o.Sizes.total_bytes) (Sizes.mb o.Sizes.ts_bytes)
            (Sizes.mb o.Sizes.vals_bytes) (Sizes.mb o.Sizes.edge_bytes);
          Printf.printf "%s WET: %.2f MB (ts %.2f, vals %.2f, edges %.2f)\n"
            (match wet.W.tier with `Tier2 -> "tier-2" | `Tier1 -> "tier-1")
            (Sizes.mb c.Sizes.total_bytes) (Sizes.mb c.Sizes.ts_bytes)
            (Sizes.mb c.Sizes.vals_bytes) (Sizes.mb c.Sizes.edge_bytes);
          Printf.printf "compression ratio: %.2f\n"
            (o.Sizes.total_bytes /. c.Sizes.total_bytes);
          Insight_report.print report
        end;
        (* the paper-style report on a salvaged WET is still degraded
           input: keep the exit-code contract (3 = corrupt/salvaged) *)
        if wet.W.damage <> [] then exit 3)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Report sizes, per-stream compression and telemetry for a WET \
          (built on the fly or loaded from a .wet container).")
    Term.(
      ret (const action $ obs_term $ stream_term $ program_arg $ scale_arg
           $ input_arg $ tier2_arg $ json_arg $ salvage_arg))

(* ---------------- trace ---------------- *)

let trace_kind =
  let kinds =
    [ ("cf", `Cf); ("values", `Values); ("addresses", `Addresses) ]
  in
  let doc = "Trace to extract: cf, values or addresses." in
  Arg.(value & opt (enum kinds) `Cf & info [ "kind" ] ~docv:"KIND" ~doc)

let limit_arg =
  let doc = "Print at most N entries." in
  Arg.(value & opt int 50 & info [ "limit" ] ~docv:"N" ~doc)

let trace_cmd =
  let action obs (batch, shard_events) explain qp remote prog scale input
      kind limit =
    let kind_name, render_kind =
      match kind with
      | `Cf -> ("cf", Render.Cf)
      | `Values -> ("values", Render.Values)
      | `Addresses -> ("addresses", Render.Addresses)
    in
    match remote with
    | Some socket ->
      remote_query ~socket ~qp ~prog Serve_protocol.Trace
        [ ("kind", kind_name); ("limit", string_of_int limit) ]
    | None ->
      with_obs obs @@ fun () ->
      with_explain explain @@ fun () ->
      with_wet ~batch ?shard_events prog scale input (fun wet _ ->
          with_qprof qp ~shape:("trace/" ^ kind_name)
            ~params:[ ("limit", string_of_int limit) ]
            wet
          @@ fun () ->
          List.iter print_endline
            (Render.trace (W.default_session wet) ~kind:render_kind ~limit))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Extract a control-flow, load-value or address trace from the WET.")
    Term.(
      ret (const action $ obs_term $ stream_term $ explain_arg $ qprof_term
           $ remote_arg $ program_arg $ scale_arg $ input_arg $ trace_kind
           $ limit_arg))

(* ---------------- slice ---------------- *)

let slice_cmd =
  let output_arg =
    let doc =
      "Slice criterion: the K-th output statement execution (0-based, \
       default: the last output)."
    in
    Arg.(value & opt (some int) None & info [ "output" ] ~docv:"K" ~doc)
  in
  let action obs (batch, shard_events) explain qp remote prog scale input k =
    match remote with
    | Some socket ->
      remote_query ~socket ~qp ~prog Serve_protocol.Slice
        (match k with
         | Some k -> [ ("output", string_of_int k) ]
         | None -> [])
    | None ->
      with_obs obs @@ fun () ->
      with_explain explain @@ fun () ->
      with_wet ~batch ?shard_events prog scale input (fun wet _ ->
          with_qprof qp ~shape:"slice/backward"
            ~params:
              [
                ( "output",
                  match k with Some k -> string_of_int k | None -> "last" );
              ]
            wet
          @@ fun () ->
          List.iter print_endline
            (Render.slice (W.default_session wet) ~output:k))
  in
  Cmd.v
    (Cmd.info "slice" ~doc:"Compute a backward WET slice of an output value.")
    Term.(
      ret (const action $ obs_term $ stream_term $ explain_arg $ qprof_term
           $ remote_arg $ program_arg $ scale_arg $ input_arg $ output_arg))

(* ---------------- paths ---------------- *)

let paths_cmd =
  let top_arg =
    let doc = "Show the N hottest paths." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)
  in
  let action obs (batch, shard_events) qp remote prog scale input top =
    match remote with
    | Some socket ->
      remote_query ~socket ~qp ~prog Serve_protocol.Paths
        [ ("top", string_of_int top) ]
    | None ->
      with_obs obs @@ fun () ->
      with_wet ~batch ?shard_events prog scale input (fun wet _ ->
          with_qprof qp ~shape:"paths"
            ~params:[ ("top", string_of_int top) ]
            wet
          @@ fun () -> List.iter print_endline (Render.paths wet ~top))
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Profile Ball-Larus paths (hot path mining).")
    Term.(
      ret (const action $ obs_term $ stream_term $ qprof_term $ remote_arg
           $ program_arg $ scale_arg $ input_arg $ top_arg))

(* ---------------- build (persist a WET) ---------------- *)

let build_cmd =
  let out_arg =
    let doc = "Output path for the WET container." in
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  (* PROGRAM is positional-required everywhere else, but [--resume]
     carries the program inside the journal header, so here it is
     optional and validated by hand. *)
  let prog_opt_arg =
    let doc =
      "MiniC source file or bundled benchmark name. Omitted when resuming \
       from a checkpoint journal."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Make the build durable: journal a CRC'd, fsync'd checkpoint to \
       $(docv) at every shard boundary, so a build killed at any point \
       is resumable with $(b,--resume) and finishes byte-identical to an \
       uninterrupted one. Streaming builds only."
    in
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ] ~docv:"JOURNAL" ~doc)
  in
  let checkpoint_every_arg =
    let doc =
      "Checkpoint every $(docv)-th shard flush instead of every one — \
       cheaper journaling, more re-execution after a crash."
    in
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let kill_arg =
    let doc =
      "Kill-campaign hook: die deterministically at the seeded point \
       ($(b,kill:shard:N) after the N-th shard checkpoint is durable, \
       $(b,kill:byte:N) N bytes into the checkpoint stream, mid-record). \
       Exits 70. Requires $(b,--checkpoint)."
    in
    Arg.(value & opt (some string) None & info [ "kill" ] ~docv:"SPEC" ~doc)
  in
  let resume_arg =
    let doc =
      "Recover an interrupted checkpointed build from $(docv): restore \
       the last intact checkpoint (a torn tail is truncated, never \
       trusted), re-execute deterministically up to its watermark and \
       finish the build. The program, input and build configuration come \
       from the journal header."
    in
    Arg.(
      value & opt (some string) None & info [ "resume" ] ~docv:"JOURNAL" ~doc)
  in
  let print_saved label (wet : W.t) out =
    Printf.printf "%s: %d statements -> %s (%s, %.2f MB on disk)\n" label
      wet.W.stats.W.stmts_executed out
      (match wet.W.tier with `Tier2 -> "tier-2" | `Tier1 -> "tier-1")
      (float_of_int (Unix.stat out).Unix.st_size /. 1024. /. 1024.)
  in
  let checkpointed_build ~journal ~checkpoint_every ~kill ~shard_events
      ~tier2 ~optimize prog scale input out =
    with_program ~optimize prog scale input (fun p input label ->
        let on_header_written () =
          match kill with
          | Some (Faultsim.Kill_at_shard n) ->
            Journal.kill_after_records := Some n
          | Some (Faultsim.Kill_at_byte b) ->
            Journal.kill_after_bytes := Some b
          | None -> ()
        in
        let wet =
          Checkpoint.build ?shard_events ~checkpoint_every ~tier2 ~label
            ~on_header_written ~journal ~program:p ~input ()
        in
        let wet = if tier2 then Builder.pack wet else wet in
        Store.save wet out;
        print_saved label wet out;
        Printf.printf "checkpoint journal: %s\n" journal)
  in
  let action obs (batch, shard_events) prog scale input tier2 optimize out
      checkpoint checkpoint_every kill resume =
    with_obs obs @@ fun () ->
    match (resume, prog) with
    | Some _, Some _ ->
      `Error (true, "--resume reads the program from the journal; drop the \
                     PROGRAM argument")
    | Some journal, None -> (
      match Checkpoint.resume ~journal () with
      | r ->
        let header = r.Checkpoint.r_header in
        let wet =
          if header.Checkpoint.h_tier2 then Builder.pack r.Checkpoint.r_wet
          else r.Checkpoint.r_wet
        in
        Store.save wet out;
        Printf.printf
          "resumed %s: fast-forwarded %d checkpointed shard%s in %.1f ms%s\n"
          journal r.Checkpoint.r_replayed_shards
          (if r.Checkpoint.r_replayed_shards = 1 then "" else "s")
          r.Checkpoint.r_resume_ms
          (if r.Checkpoint.r_torn_tail then " (torn tail truncated)" else "");
        print_saved header.Checkpoint.h_label wet out;
        `Ok ()
      | exception Wet_error.Error e -> `Error (false, Wet_error.message e))
    | None, None ->
      `Error (true, "a PROGRAM argument (or --resume JOURNAL) is required")
    | None, Some prog -> (
      match checkpoint with
      | None ->
        if kill <> None then `Error (true, "--kill requires --checkpoint")
        else
          with_program ~optimize prog scale input (fun p input label ->
              let wet =
                if batch then
                  let res = Interp.run p ~input in
                  Builder.build res.Interp.trace
                else Builder.run_streaming ?shard_events ~program:p ~input ()
              in
              let wet = if tier2 then Builder.pack wet else wet in
              Store.save wet out;
              print_saved label wet out)
      | Some journal ->
        if batch then
          `Error
            (true, "--checkpoint journals the streaming build; drop --batch")
        else (
          match
            match kill with
            | None -> Ok None
            | Some s -> Result.map Option.some (Faultsim.kill_of_spec s)
          with
          | Error m -> `Error (true, m)
          | Ok kill -> (
            try
              checkpointed_build ~journal
                ~checkpoint_every:(max 1 checkpoint_every) ~kill
                ~shard_events ~tier2 ~optimize prog scale input out
            with Journal.Kill_injected ->
              (* the campaign's stand-in for [kill -9]: no cleanup, no
                 output container — only the journal survives *)
              Printf.eprintf
                "wet: build killed by injected fault (%s); journal %s \
                 retained for --resume\n"
                (Option.fold ~none:"-" ~some:Faultsim.kill_to_spec kill)
                journal;
              exit 70)))
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Build a WET (streaming by default; see --batch) and save it to \
          disk for later queries. With --checkpoint/--resume the build \
          survives being killed at any point.")
    Term.(
      ret (const action $ obs_term $ stream_term $ prog_opt_arg $ scale_arg
           $ input_arg $ tier2_arg $ optimize_arg $ out_arg $ checkpoint_arg
           $ checkpoint_every_arg $ kill_arg $ resume_arg))

(* ---------------- verify ---------------- *)

let verify_cmd =
  let action obs prog scale input tier2 =
    with_obs obs @@ fun () ->
    with_program prog scale input (fun p input label ->
        let res = Interp.run p ~input in
        let tr = res.Interp.trace in
        let wet = Builder.build tr in
        let wet = if tier2 then Builder.pack wet else wet in
        (* the WET must regenerate the exact control-flow trace *)
        let s = W.open_session wet in
        Query.Session.park s Query.Forward;
        let i = ref 0 in
        let ok = ref true in
        let blocks = tr.Wet_interp.Trace.blocks in
        let n =
          Query.Session.control_flow s Query.Forward ~f:(fun f b ->
              if !i < Array.length blocks
                 && blocks.(!i) <> Wet_interp.Trace.encode_block f b
              then ok := false;
              incr i)
        in
        if n <> Array.length blocks then ok := false;
        (* and every load value *)
        let load_count = ref 0 in
        let sum = ref 0 in
        let _ =
          Query.Session.load_values s ~f:(fun _ v ->
              incr load_count;
              sum := !sum + v)
        in
        Printf.printf
          "%s: control-flow trace %s (%d block executions); %d load values            extracted\n"
          label
          (if !ok then "EXACT" else "MISMATCH")
          n !load_count;
        if not !ok then exit 1)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
        "Self-check: rebuild the WET and verify it regenerates the raw          trace exactly.")
    Term.(
      ret (const action $ obs_term $ program_arg $ scale_arg $ input_arg
           $ tier2_arg))

(* ---------------- at (execution-point inspection) ---------------- *)

let at_cmd =
  let ts_arg =
    let doc = "Global timestamp to inspect (default: the midpoint)." in
    Arg.(value & opt (some int) None & info [ "ts" ] ~docv:"T" ~doc)
  in
  let action obs (batch, shard_events) explain qp remote prog scale input ts =
    match remote with
    | Some socket ->
      remote_query ~socket ~qp ~prog Serve_protocol.At
        (match ts with
         | Some ts -> [ ("ts", string_of_int ts) ]
         | None -> [])
    | None ->
      with_obs obs @@ fun () ->
      with_explain explain @@ fun () ->
      with_wet ~batch ?shard_events prog scale input (fun wet _ ->
          let total = wet.W.stats.W.path_execs in
          let ts = Option.value ts ~default:(max 1 (total / 2)) in
          with_qprof qp ~shape:"at"
            ~params:[ ("ts", string_of_int ts) ]
            wet
          @@ fun () ->
          List.iter print_endline
            (Render.at (W.default_session wet) ~ts:(Some ts)))
  in
  Cmd.v
    (Cmd.info "at"
       ~doc:"Inspect an arbitrary execution point: location, control flow \
             and reconstructed global state.")
    Term.(
      ret (const action $ obs_term $ stream_term $ explain_arg $ qprof_term
           $ remote_arg $ program_arg $ scale_arg $ input_arg $ ts_arg))

(* ---------------- dot ---------------- *)

let dot_cmd =
  let what_arg =
    let doc = "What to export: 'nodes' (the path-node graph) or 'slice' \
               (the last output's backward slice subgraph)." in
    Arg.(value & opt (enum [ ("nodes", `Nodes); ("slice", `Slice) ]) `Nodes
         & info [ "what" ] ~docv:"KIND" ~doc)
  in
  let action obs (batch, shard_events) prog scale input what =
    with_obs obs @@ fun () ->
    with_wet ~batch ?shard_events prog scale input (fun wet _ ->
        match what with
        | `Nodes -> print_string (Wet_analyses.Dot_export.nodes wet)
        | `Slice -> (
          match
            Query.copies_matching wet (function
              | Wet_ir.Instr.Output _ -> true
              | _ -> false)
          with
          | [] -> prerr_endline "program has no outputs to slice"
          | c :: _ ->
            print_string (Wet_analyses.Dot_export.slice wet c 0)))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export WET structure as Graphviz.")
    Term.(
      ret (const action $ obs_term $ stream_term $ program_arg $ scale_arg
           $ input_arg $ what_arg))

(* ---------------- profile ---------------- *)

(* Run the whole pipeline under the observation sink — interpret, build
   tier-1, pack tier-2, save/load a container, one query of every kind —
   then print a phase/metric summary. [--metrics-out] / [--trace-out]
   dump the raw data the summary is derived from. *)

let profile_cmd =
  let heartbeat_arg =
    let doc =
      "Emit a progress heartbeat (trace instant + stderr line) every \
       $(docv) executed statements (0 = off)."
    in
    Arg.(value & opt int 0 & info [ "heartbeat" ] ~docv:"N" ~doc)
  in
  let phase_row name =
    let evs = Wet_obs.Sink.events () in
    match
      List.find_opt
        (fun (e : Wet_obs.Sink.event) ->
          e.Wet_obs.Sink.ev_name = name && e.Wet_obs.Sink.ev_dur_ns <> None)
        evs
    with
    | None -> None
    | Some e ->
      let dur_ms =
        match e.Wet_obs.Sink.ev_dur_ns with
        | Some d -> float_of_int d /. 1e6
        | None -> 0.
      in
      let alloc_mw =
        match List.assoc_opt "alloc_minor_words" e.Wet_obs.Sink.ev_attrs with
        | Some (Wet_obs.Sink.Float w) -> w /. 1e6
        | _ -> 0.
      in
      Some [ name; Printf.sprintf "%.2f" dur_ms; Printf.sprintf "%.2f" alloc_mw ]
  in
  let opt_program_arg =
    let doc =
      "MiniC source file or bundled benchmark name. With --list-metrics, \
       an optional instrument-name prefix instead (e.g. `wet profile \
       --list-metrics qprof`)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)
  in
  let list_metrics_arg =
    let doc =
      "List every instrument the pipeline registers with the \
       observability sink, with one-line descriptions, and exit. A \
       positional argument filters by name prefix."
    in
    Arg.(value & flag & info [ "list-metrics" ] ~doc)
  in
  (* All library modules are linked into this binary, so their top-level
     instrument registrations have already run: the live registry is
     complete without executing anything. *)
  let list_metrics prefix =
    let keep name =
      match prefix with
      | None -> true
      | Some p -> String.starts_with ~prefix:p name
    in
    let kind_of = function
      | Wet_obs.Metrics.Counter _ -> "counter"
      | Wet_obs.Metrics.Gauge _ -> "gauge"
      | Wet_obs.Metrics.Histogram _ -> "histogram"
    in
    let rows =
      List.filter_map
        (fun (name, reading) ->
          if not (keep name) then None
          else
            Some
              [
                name;
                kind_of reading;
                Option.value (Metric_docs.lookup name)
                  ~default:"UNDOCUMENTED (add to Metric_docs.docs)";
              ])
        (Wet_obs.Metrics.snapshot ())
    in
    let families =
      List.filter_map
        (fun (name, kind, desc) ->
          if String.contains name '<' && keep name then
            Some [ name; Metric_docs.kind_name kind; desc ]
          else None)
        Metric_docs.docs
    in
    if rows = [] && families = [] then
      Printf.printf "no registered instrument matches prefix '%s'\n"
        (Option.value prefix ~default:"")
    else begin
      if rows <> [] then
        Table.print ~title:"Registered instruments."
          ~align:Table.[ Left; Left; Left ]
          ~header:[ "Name"; "Kind"; "Description" ]
          rows;
      if families <> [] then
        Table.print
          ~title:"Dynamically registered families (appear once instantiated)."
          ~align:Table.[ Left; Left; Left ]
          ~header:[ "Pattern"; "Kind"; "Description" ]
          families
    end;
    `Ok ()
  in
  let action obs prog scale input optimize heartbeat list_metrics_flag =
    with_obs obs @@ fun () ->
    if list_metrics_flag then list_metrics prog
    else
    match prog with
    | None ->
      `Error (true, "required argument PROGRAM is missing (or --list-metrics)")
    | Some prog ->
    Wet_obs.Sink.enable ();
    Wet_obs.Metrics.reset ();
    Wet_obs.Sink.heartbeat_every := heartbeat;
    with_program ~optimize prog scale input (fun p input label ->
        Wet_obs.Span.with_ "profile"
          ~attrs:[ ("program", Wet_obs.Span.Str label) ]
          (fun () ->
            let res = Interp.run p ~input in
            let w1 = Builder.build res.Interp.trace in
            let w2 = Builder.pack w1 in
            let tmp = Filename.temp_file "wet_profile" ".wet" in
            Fun.protect
              ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
              (fun () ->
                Store.save w2 tmp;
                ignore (Store.load tmp));
            Wet_obs.Span.with_ "profile.queries" (fun () ->
                let s = W.default_session w2 in
                Query.Session.park s Query.Forward;
                ignore
                  (Query.Session.control_flow s Query.Forward
                     ~f:(fun _ _ -> ()));
                ignore (Query.Session.load_values s ~f:(fun _ _ -> ()));
                ignore (Query.Session.addresses s ~f:(fun _ _ -> ()));
                match
                  Query.copies_matching w2 (fun i -> Wet_ir.Instr.has_def i)
                with
                | c :: _ ->
                  ignore
                    (Slice.Session.backward s c
                       ((W.node_of_copy w2 c).W.n_nexec - 1))
                | [] -> ()));
        (* phase summary, derived from the recorded spans *)
        let rows =
          List.filter_map phase_row
            [
              "interp.run"; "build.tier1"; "build.tier2"; "store.save";
              "store.load"; "profile.queries"; "profile";
            ]
        in
        Table.print
          ~title:(Printf.sprintf "Pipeline phases (%s)." label)
          ~align:Table.[ Left; Right; Right ]
          ~header:[ "Phase"; "Wall (ms)"; "Minor alloc (Mwords)" ]
          rows;
        (* tier-2 method selection, derived from the metrics registry *)
        let snapshot = Wet_obs.Metrics.snapshot () in
        let counter_value name =
          match List.assoc_opt name snapshot with
          | Some (Wet_obs.Metrics.Counter v) -> v
          | _ -> 0
        in
        let method_rows =
          List.filter_map
            (fun (name, reading) ->
              match reading with
              | Wet_obs.Metrics.Counter streams
                when String.length name > 12
                     && String.sub name 0 12 = "pack.method."
                     && Filename.check_suffix name ".streams" ->
                let meth =
                  String.sub name 12 (String.length name - 12 - 8)
                in
                let saved =
                  counter_value ("pack.method." ^ meth ^ ".bits_saved")
                in
                Some
                  [
                    meth;
                    string_of_int streams;
                    Printf.sprintf "%.3f" (float_of_int saved /. 8. /. 1024. /. 1024.);
                  ]
              | _ -> None)
            snapshot
        in
        if method_rows <> [] then
          Table.print
            ~title:
              "Tier-2 per-stream method selection (streams won, MB saved vs \
               raw)."
            ~align:Table.[ Left; Right; Right ]
            ~header:[ "Method"; "Streams"; "MB saved" ]
            method_rows;
        Printf.printf
          "%s: %d statements, %d path nodes, %d/%d streams left raw by \
           tier-2 selection\n"
          label (counter_value "interp.stmts")
          (counter_value "build.intern.misses")
          (counter_value "pack.method.raw.streams")
          (counter_value "pack.streams"))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the full pipeline under the observability sink and report \
          per-phase wall/allocation numbers and pipeline metrics, or list \
          the registered instruments with --list-metrics.")
    Term.(
      ret (const action $ obs_term $ opt_program_arg $ scale_arg $ input_arg
           $ optimize_arg $ heartbeat_arg $ list_metrics_arg))

(* ---------------- watch ---------------- *)

let watch_cmd =
  let module Watch = Wet_watch.Watch in
  let module Event = Wet_watch.Event in
  let module Ring = Wet_watch.Ring in
  let filter_arg =
    let doc =
      "Filter specification, e.g. 'store & fn=main & addr in \
       [0x100,0x1ff]'. Kinds: entry def use load store call; atoms: \
       fn=NAME, block=N, val=N, val in [a,b], addr=N, addr in [a,b]; \
       combinators: '&' '|' '!' parentheses and 'any'."
    in
    Arg.(
      required & opt (some string) None & info [ "filter" ] ~docv:"SPEC" ~doc)
  in
  let ring_arg =
    let doc =
      "Flight-recorder capacity: retain the last $(docv) recorded matches."
    in
    Arg.(value & opt int 16 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let sample_arg =
    let doc = "Record only one in $(docv) matches." in
    Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N" ~doc)
  in
  let stop_arg =
    let doc =
      "Watchpoint: remember the $(docv)-th match's global timestamp and \
       locate it in the built WET."
    in
    Arg.(value & opt (some int) None & info [ "stop-at" ] ~docv:"K" ~doc)
  in
  let count_arg =
    let doc = "Count matches only (no flight recorder)." in
    Arg.(value & flag & info [ "count-only" ] ~doc)
  in
  let jsonl_arg =
    let doc = "Export the retained matching events as JSON lines to $(docv)." in
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)
  in
  let action obs prog scale input optimize fspec ring sample stop count_only
      jsonl =
    with_obs obs @@ fun () ->
    match Wet_watch.Spec.parse fspec with
    | Error m -> `Error (false, "bad --filter: " ^ m)
    | Ok filter -> (
      let act =
        match (count_only, stop, sample) with
        | true, None, None -> Ok Watch.Count
        | false, Some k, None -> Ok (Watch.Stop_at k)
        | false, None, Some n -> Ok (Watch.Sample n)
        | false, None, None -> Ok Watch.Capture
        | _ ->
          Error "--count-only, --sample and --stop-at are mutually exclusive"
      in
      match act with
      | Error m -> `Error (false, m)
      | Ok act -> (
        try
          with_program ~optimize prog scale input (fun p input label ->
              let probe = Watch.probe ~ring p filter act in
              let t0 = Wet_obs.Clock.now_ns () in
              let res =
                Watch.with_armed [ probe ] (fun () -> Interp.run p ~input)
              in
              let matched = Watch.matches probe in
              Printf.printf "%s: %d statements executed, %d events matched '%s'\n"
                label res.Interp.stmts_executed matched
                (Wet_watch.Spec.print filter);
              let fn_name f = p.Wet_ir.Program.funcs.(f).Wet_ir.Func.name in
              (match Watch.ring probe with
               | None -> ()
               | Some r when Ring.length r = 0 ->
                 print_endline "flight recorder: no matches recorded"
               | Some r ->
                 let rows =
                   List.map
                     (fun ((e : Event.t), wall) ->
                       [
                         string_of_int e.Event.e_ts;
                         Table.ms (wall - t0);
                         Event.kind_name e.Event.e_kind;
                         Printf.sprintf "%s:B%d" (fn_name e.Event.e_func)
                           e.Event.e_block;
                         string_of_int e.Event.e_pos;
                         (if Event.has_value e.Event.e_kind then
                            string_of_int e.Event.e_value
                          else "-");
                         (if Event.has_addr e.Event.e_kind then
                            Table.hex e.Event.e_addr
                          else "-");
                       ])
                     (Ring.to_list r)
                 in
                 Table.print
                   ~title:
                     (Printf.sprintf
                        "Flight recorder: last %d of %d recorded matches."
                        (Ring.length r) (Ring.total r))
                   ~align:Table.[ Right; Right; Left; Left; Right; Right; Right ]
                   ~header:[ "t"; "+ms"; "Kind"; "Site"; "Pos"; "Value"; "Addr" ]
                   rows);
              (match jsonl with
               | None -> ()
               | Some path -> (
                 match Watch.ring probe with
                 | None ->
                   prerr_endline "--jsonl ignored: --count-only retains no events"
                 | Some r ->
                   let oc = open_out_bin path in
                   Fun.protect
                     ~finally:(fun () -> close_out oc)
                     (fun () ->
                       List.iter
                         (fun ((e : Event.t), wall) ->
                           Printf.fprintf oc
                             "{\"ts\":%d,\"wall_ns\":%d,\"kind\":%S,\"fn\":%S,\"block\":%d,\"pos\":%d,\"value\":%d,\"addr\":%d}\n"
                             e.Event.e_ts (wall - t0)
                             (Event.kind_name e.Event.e_kind)
                             (fn_name e.Event.e_func) e.Event.e_block
                             e.Event.e_pos e.Event.e_value e.Event.e_addr)
                         (Ring.to_list r));
                   Printf.printf "wrote %d events to %s\n" (Ring.length r) path));
              match act with
              | Watch.Stop_at k -> (
                match Watch.stopped probe with
                | None ->
                  Printf.printf "watchpoint: fewer than %d matches (%d total)\n"
                    k matched
                | Some ts -> (
                  let wet = Builder.build res.Interp.trace in
                  match
                    Query.Session.locate_time (W.default_session wet) ts
                  with
                  | None -> Printf.printf "watchpoint t=%d: not locatable\n" ts
                  | Some (nid, i) ->
                    let n = wet.W.nodes.(nid) in
                    Printf.printf
                      "watchpoint: match #%d at t=%d -> execution %d of \
                       f%d/path%d (blocks %s)\n"
                      k ts i n.W.n_func n.W.n_path
                      (String.concat " "
                         (Array.to_list
                            (Array.map (Printf.sprintf "B%d") n.W.n_blocks)));
                    Printf.printf "  inspect it with: wet at %s --ts %d\n" prog
                      ts))
              | _ -> ())
        with
        | Wet_watch.Filter.Unknown_function fn ->
          `Error
            (false, Printf.sprintf "filter: no function named %S in program" fn)
        | Invalid_argument m -> `Error (false, m)
        | Sys_error m -> `Error (false, m)))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Run a program under the tracer driver: count, sample or \
          flight-record the events matching a declarative filter, with an \
          optional watchpoint located in the built WET.")
    Term.(
      ret (const action $ obs_term $ program_arg $ scale_arg $ input_arg
           $ optimize_arg $ filter_arg $ ring_arg $ sample_arg $ stop_arg
           $ count_arg $ jsonl_arg))

(* ---------------- fsck ---------------- *)

(* Container integrity checking. Prints a per-section health table, then
   (on a clean file) a strict decode plus the structural validator, or
   (with --salvage, on a damaged file) a salvage report. Exit 0 only
   when the container is fully intact and structurally sound. *)

let fsck_cmd =
  let file_arg =
    let doc = "The WET container to check." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let salvage_arg =
    let doc =
      "On a damaged file, attempt a salvage load: report which sections \
       survive and run the structural validator on the result."
    in
    Arg.(value & flag & info [ "salvage" ] ~doc)
  in
  let inject_arg =
    let doc =
      "Corrupt the container bytes in memory before checking (repeatable, \
       applied in order; the file on disk is untouched). $(docv) is \
       flip:OFF:BIT, zero:OFF:LEN, or trunc:LEN."
    in
    Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"SPEC" ~doc)
  in
  let gc_arg =
    let doc =
      "Remove the orphaned save temps reported by the sweep (staging \
       files a crashed save stranded next to $(i,FILE))."
    in
    Arg.(value & flag & info [ "gc" ] ~doc)
  in
  let status_cell = function
    | None -> "ok"
    | Some (Container.Bad_section _) -> "CORRUPT (crc mismatch)"
    | Some (Container.Truncated _) -> "CORRUPT (truncated)"
    | Some f -> "CORRUPT (" ^ Container.fault_message f ^ ")"
  in
  let health_table path (h : Container.health) =
    let rows =
      List.map
        (fun (s : Container.section_status) ->
          [
            s.Container.sec_name;
            (if Container.required s.Container.sec_name then "yes" else "no");
            string_of_int s.Container.sec_offset;
            string_of_int s.Container.sec_length;
            Printf.sprintf "0x%08x" s.Container.sec_crc;
            status_cell s.Container.sec_fault;
          ])
        h.Container.hl_sections
      @ [
          [
            "(footer)"; "yes"; "-"; "-"; "-";
            (match h.Container.hl_footer with
             | None -> "ok"
             | Some (Container.Bad_footer _) -> "CORRUPT (crc mismatch)"
             | Some f -> status_cell (Some f));
          ];
        ]
    in
    Table.print
      ~title:
        (Printf.sprintf "%s: container v%d, %s, %d bytes." path
           h.Container.hl_version
           (match h.Container.hl_tier with
            | `Tier1 -> "tier-1"
            | `Tier2 -> "tier-2")
           h.Container.hl_file_bytes)
      ~align:Table.[ Left; Left; Right; Right; Right; Left ]
      ~header:[ "Section"; "Required"; "Offset"; "Bytes"; "CRC-32"; "Status" ]
      rows
  in
  let first_fault (h : Container.health) =
    match
      List.find_opt
        (fun (s : Container.section_status) -> s.Container.sec_fault <> None)
        h.Container.hl_sections
    with
    | Some { Container.sec_fault = Some f; _ } -> Some f
    | _ -> h.Container.hl_footer
  in
  let validate_report w =
    match W.validate w with
    | [] ->
      print_endline "structure: ok";
      true
    | errs ->
      Printf.printf "structure: %d violation(s)\n" (List.length errs);
      List.iter (fun e -> Printf.printf "  %s\n" e) errs;
      false
  in
  let action obs file salvage injects gc =
    with_obs obs @@ fun () ->
    (* Sweep for staging files a crashed atomic save left behind. They
       never affect the container's health (loads ignore them), so they
       are reported — and with --gc removed — without touching the exit
       code. *)
    (match Store.orphan_temps file with
     | [] -> ()
     | orphans ->
       Printf.printf "orphaned save temps (%d):\n" (List.length orphans);
       List.iter (fun p -> Printf.printf "  %s\n" p) orphans;
       if gc then begin
         ignore (Store.remove_orphans file);
         Printf.printf "removed %d orphaned temp file(s)\n"
           (List.length orphans)
       end
       else print_endline "(re-run with --gc to remove them)");
    let faults =
      List.map
        (fun s ->
          match Faultsim.of_spec s with
          | Ok f -> Ok f
          | Error m -> Error m)
        injects
    in
    match
      List.find_map (function Error m -> Some m | Ok _ -> None) faults
    with
    | Some m -> `Error (true, "--inject " ^ m)
    | None -> (
      let faults = List.filter_map Result.to_option faults in
      match
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error m -> `Error (false, m)
      | data -> (
        let data = List.fold_left (fun d f -> Faultsim.apply f d) data faults in
        List.iter
          (fun f -> Printf.printf "injected: %s\n" (Faultsim.describe f))
          faults;
        match Container.examine data with
        | Error fault -> corrupt_exit file fault
        | Ok health -> (
          health_table file health;
          match first_fault health with
          | None -> (
            (* checksums pass; decode strictly and validate structure *)
            match Container.decode data with
            | Error fault -> corrupt_exit file fault
            | Ok (w, _) ->
              if w.W.damage <> [] then
                Printf.printf "note: sections %s were salvaged away by an \
                               earlier load and are absent\n"
                  (String.concat ", "
                     (List.map (Printf.sprintf "'%s'") w.W.damage));
              if validate_report w then begin
                Printf.printf "%s: clean\n" file;
                `Ok ()
              end
              else exit 3)
          | Some fault ->
            if salvage then begin
              match Container.decode ~salvage:true data with
              | Error f -> corrupt_exit file f
              | Ok (w, _) ->
                (match w.W.damage with
                 | [] ->
                   print_endline
                     "salvage: nothing lost (damaged sections were \
                      reconstructible)"
                 | damage ->
                   Printf.printf
                     "salvage: lost %s; all other sections recovered\n"
                     (String.concat ", "
                        (List.map (Printf.sprintf "'%s'") damage)));
                ignore (validate_report w);
                corrupt_exit file fault
            end
            else corrupt_exit file fault)))
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Check a WET container: per-section checksums, footer, and \
          structural invariants (plus a sweep for orphaned save temps; \
          see --gc). Exits 3 on any damage.")
    Term.(
      ret (const action $ obs_term $ file_arg $ salvage_arg $ inject_arg
           $ gc_arg))

(* ---------------- bench-check ---------------- *)

(* The CI regression gate: diff a BENCH_PR*.json produced by
   `bench/main.exe observatory` against a committed baseline. Exit 3 on
   regression, mirroring fsck's "the input is bad" convention. *)

let bench_check_cmd =
  let current_arg =
    let doc = "The freshly produced bench observatory file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CURRENT" ~doc)
  in
  let against_arg =
    let doc = "Baseline bench file to compare against." in
    Arg.(
      required & opt (some string) None & info [ "against" ] ~docv:"FILE" ~doc)
  in
  let wall_arg =
    let doc =
      "Allowed relative worsening for wall-clock metrics (stmts/s, build \
       and query p50) before flagging a regression."
    in
    Arg.(
      value
      & opt float Bench_obs.default_thresholds.Bench_obs.wall_frac
      & info [ "wall-threshold" ] ~docv:"FRAC" ~doc)
  in
  let size_arg =
    let doc =
      "Allowed relative worsening for deterministic size/step metrics \
       (bytes/label, compression ratios, query steps)."
    in
    Arg.(
      value
      & opt float Bench_obs.default_thresholds.Bench_obs.size_frac
      & info [ "size-threshold" ] ~docv:"FRAC" ~doc)
  in
  let warn_only_arg =
    let doc = "Report regressions but exit 0 (first-run CI bootstrap)." in
    Arg.(value & flag & info [ "warn-only" ] ~doc)
  in
  let allow_missing_arg =
    let doc =
      "Exit 0 with a note when the baseline file does not exist (instead \
       of a usage error)."
    in
    Arg.(value & flag & info [ "allow-missing-baseline" ] ~doc)
  in
  let action current against wall_frac size_frac warn_only allow_missing =
    if not (Sys.file_exists against) then begin
      if allow_missing then begin
        Printf.printf
          "bench-check: no baseline at %s; nothing to compare (record %s as \
           the new baseline)\n"
          against current;
        `Ok ()
      end
      else `Error (false, Printf.sprintf "baseline %s does not exist" against)
    end
    else
      match (Bench_obs.load current, Bench_obs.load against) with
      | Error m, _ | _, Error m -> `Error (false, m)
      | Ok cur, Ok prev ->
        if cur.Bench_obs.quick <> prev.Bench_obs.quick then
          Printf.printf
            "note: comparing a %s run against a %s baseline; wall numbers \
             are not comparable\n"
            (if cur.Bench_obs.quick then "quick" else "full")
            (if prev.Bench_obs.quick then "quick" else "full");
        let verdicts =
          Bench_obs.check
            { Bench_obs.wall_frac; size_frac }
            ~prev ~cur
        in
        if verdicts = [] then begin
          Printf.printf
            "bench-check: no overlapping workloads between %s and %s\n"
            current against;
          `Ok ()
        end
        else begin
          let rows =
            List.map
              (fun (v : Bench_obs.verdict) ->
                [
                  v.Bench_obs.v_workload;
                  v.Bench_obs.v_metric;
                  Printf.sprintf "%.4g" v.Bench_obs.v_prev;
                  Printf.sprintf "%.4g" v.Bench_obs.v_cur;
                  Printf.sprintf "%+.1f%%" (100. *. v.Bench_obs.v_worse_frac);
                  Printf.sprintf "%.0f%%" (100. *. v.Bench_obs.v_threshold);
                  (if v.Bench_obs.v_regressed then "REGRESSED" else "ok");
                ])
              verdicts
          in
          Table.print
            ~title:
              (Printf.sprintf "bench-check: %s vs baseline %s." current against)
            ~align:Table.[ Left; Left; Right; Right; Right; Right; Left ]
            ~header:
              [ "Workload"; "Metric"; "Baseline"; "Current"; "Worse by";
                "Allowed"; "Status" ]
            rows;
          let bad =
            List.filter (fun v -> v.Bench_obs.v_regressed) verdicts
          in
          if bad = [] then begin
            Printf.printf "bench-check: ok (%d comparisons)\n"
              (List.length verdicts);
            `Ok ()
          end
          else begin
            Printf.printf "bench-check: %d regression(s) of %d comparisons\n"
              (List.length bad) (List.length verdicts);
            if warn_only then begin
              print_endline "bench-check: --warn-only set, not failing";
              `Ok ()
            end
            else exit 3
          end
        end
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Compare a bench observatory file (BENCH_PR*.json) against a \
          baseline and fail (exit 3) on metric regressions beyond the \
          noise thresholds.")
    Term.(
      ret
        (const action $ current_arg $ against_arg $ wall_arg $ size_arg
         $ warn_only_arg $ allow_missing_arg))

(* ---------------- obs (offline report / diff) ---------------- *)

(* Readers for the wet-obs exports: a metrics JSONL dump ([--metrics-out])
   and a Chrome trace file ([--trace-out]). Both formats carry a
   "schema":"wet-obs/2" version since PR 6; v1 files (no schema field)
   are still read, with a note. *)

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let jstr k j =
  match Insight_json.member k j with
  | Some v -> Option.value (Insight_json.to_str v) ~default:""
  | None -> ""

let jint k j =
  match Insight_json.member k j with
  | Some v -> Option.value (Insight_json.to_int v) ~default:0
  | None -> 0

let jnum k j =
  match Insight_json.member k j with
  | Some v -> Option.value (Insight_json.to_num v) ~default:0.
  | None -> 0.

type metrics_file = {
  mf_schema : string option;  (* None: v1, predates the schema field *)
  mf_instruments : (string * Insight_json.t) list;
}

let load_metrics_file path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s does not exist" path)
  else begin
    let lines =
      String.split_on_char '\n' (read_whole_file path)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let rec go schema insts = function
      | [] -> Ok { mf_schema = schema; mf_instruments = List.rev insts }
      | l :: rest -> (
        match Insight_json.parse l with
        | Error m -> Error (Printf.sprintf "%s: %s" path m)
        | Ok j -> (
          match Insight_json.member "name" j with
          | Some n -> (
            match Insight_json.to_str n with
            | Some name -> go schema ((name, j) :: insts) rest
            | None ->
              Error (Printf.sprintf "%s: non-string instrument name" path))
          | None -> (
            match Insight_json.member "schema" j with
            | Some s -> go (Insight_json.to_str s) insts rest
            | None -> go schema insts rest)))
    in
    go None [] lines
  end

let note_schema path = function
  | Some s when s = Wet_obs.Export.schema -> ()
  | Some s ->
    Printf.printf "note: %s carries schema %s (this build writes %s)\n" path
      s Wet_obs.Export.schema
  | None ->
    Printf.printf "note: %s has no schema field (wet-obs/1, pre-versioning)\n"
      path

(* Sort key for "hottest": event volume — counter/gauge value,
   histogram observation count. *)
let hotness j =
  match jstr "type" j with
  | "histogram" -> jint "count" j
  | _ -> jint "value" j

let print_hottest path mf top =
  let insts =
    List.sort
      (fun (a_n, a) (b_n, b) ->
        compare (hotness b, a_n) (hotness a, b_n))
      mf.mf_instruments
  in
  let rows =
    List.filteri (fun i _ -> i < top) insts
    |> List.map (fun (name, j) ->
         let kind = jstr "type" j in
         let v =
           match kind with
           | "histogram" ->
             Printf.sprintf "%d obs, sum %d" (jint "count" j) (jint "sum" j)
           | _ -> string_of_int (hotness j)
         in
         [ name; kind; v ])
  in
  Table.print
    ~title:
      (Printf.sprintf "Hottest instruments (%s, %d of %d)." path
         (List.length rows)
         (List.length mf.mf_instruments))
    ~align:Table.[ Left; Left; Right ]
    ~header:[ "Instrument"; "Kind"; "Value" ]
    rows

let print_ring_accounting mf =
  match List.assoc_opt "pulse.ring.pushed" mf.mf_instruments with
  | None -> print_endline "ring: no pulse ring was armed for this run"
  | Some pushed_j ->
    let pushed = jint "value" pushed_j in
    let dropped =
      match List.assoc_opt "pulse.ring.dropped" mf.mf_instruments with
      | Some j -> jint "value" j
      | None -> 0
    in
    Printf.printf "ring: %d events pushed, %d dropped (%.1f%%), %d retained\n"
      pushed dropped
      (if pushed > 0 then 100. *. float_of_int dropped /. float_of_int pushed
       else 0.)
      (pushed - dropped)

(* The trace's complete events ([ph = "X"]) sorted by start time, with
   the recorded span-stack depth as indentation, read as the phase
   tree. GC deltas ride along as span attributes. *)
let print_span_tree path =
  match Insight_json.parse (read_whole_file path) with
  | Error m -> Error (Printf.sprintf "%s: %s" path m)
  | Ok j ->
    (match Insight_json.member "schema" j with
     | Some s -> note_schema path (Insight_json.to_str s)
     | None -> note_schema path None);
    let events =
      match Insight_json.member "traceEvents" j with
      | Some a -> Option.value (Insight_json.to_list a) ~default:[]
      | None -> []
    in
    let spans =
      List.filter_map
        (fun e ->
          if jstr "ph" e <> "X" then None
          else
            let args =
              Option.value (Insight_json.member "args" e) ~default:Insight_json.Null
            in
            Some
              ( jnum "ts" e,
                jnum "dur" e,
                jint "depth" args,
                jstr "name" e,
                jnum "alloc_minor_words" args,
                jnum "alloc_major_words" args,
                Insight_json.member "raised" args <> None ))
        events
      |> List.sort compare
    in
    let rows =
      List.map
        (fun (_, dur, depth, name, minor, major, raised) ->
          [
            String.make (2 * depth) ' ' ^ name
            ^ (if raised then " [raised]" else "");
            Printf.sprintf "%.2f" (dur /. 1e3);
            Printf.sprintf "%.2f" (minor /. 1e6);
            Printf.sprintf "%.2f" (major /. 1e6);
          ])
        spans
    in
    if rows = [] then Printf.printf "%s: no spans recorded\n" path
    else
      Table.print
        ~title:(Printf.sprintf "Phase spans (%s)." path)
        ~align:Table.[ Left; Right; Right; Right ]
        ~header:[ "Span"; "ms"; "minor Mw"; "major Mw" ]
        rows;
    Ok ()

let obs_top_arg =
  let doc = "Show the N hottest / most-changed instruments." in
  Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc)

let obs_report_cmd =
  let metrics_arg =
    let doc = "A metrics JSONL export written by --metrics-out." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"METRICS" ~doc)
  in
  let trace_arg =
    let doc =
      "Also render the per-phase span tree (with GC deltas) from this \
       Chrome trace file written by --trace-out."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let action metrics trace top =
    match load_metrics_file metrics with
    | Error m -> `Error (false, m)
    | Ok mf ->
      note_schema metrics mf.mf_schema;
      (match trace with
       | None -> ()
       | Some t -> (
         match print_span_tree t with
         | Ok () -> ()
         | Error m ->
           Printf.printf "note: cannot read trace: %s\n" m));
      print_hottest metrics mf top;
      print_ring_accounting mf;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Pretty-print an end-of-run observability report from a metrics \
          export (and optionally a trace export): per-phase span tree \
          with GC deltas, hottest instruments, ring-drop accounting.")
    Term.(ret (const action $ metrics_arg $ trace_arg $ obs_top_arg))

let obs_diff_cmd =
  let a_arg =
    let doc = "Baseline metrics JSONL export (run A)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let b_arg =
    let doc = "Comparison metrics JSONL export (run B)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let action a b top =
    match (load_metrics_file a, load_metrics_file b) with
    | Error m, _ | _, Error m -> `Error (false, m)
    | Ok fa, Ok fb ->
      note_schema a fa.mf_schema;
      note_schema b fb.mf_schema;
      let insts mf =
        List.map
          (fun (name, j) ->
            {
              Obs_diff.i_name = name;
              Obs_diff.i_kind = jstr "type" j;
              Obs_diff.i_value = hotness j;
            })
          mf.mf_instruments
      in
      let d = Obs_diff.diff (insts fa) (insts fb) in
      let only_in tag = function
        | [] -> ()
        | names ->
          Printf.printf "only in %s: %s\n" tag (String.concat ", " names)
      in
      (* Zero overlap is its own verdict: the exports describe disjoint
         instrument sets (different pipelines, different schema eras), so
         "nothing changed" would be actively misleading. Still exit 0 —
         an empty comparison is an answer, not an error. *)
      if d.Obs_diff.d_overlap = 0 then
        Printf.printf
          "obs diff: %s and %s share no instrument — nothing to compare\n" a b
      else if d.Obs_diff.d_changed = [] then
        Printf.printf
          "obs diff: no instrument changed between %s and %s (%d compared)\n"
          a b d.Obs_diff.d_overlap
      else begin
        let rows =
          List.filteri (fun i _ -> i < top) d.Obs_diff.d_changed
          |> List.map (fun (r : Obs_diff.row) ->
               [
                 r.Obs_diff.d_name;
                 r.Obs_diff.d_kind;
                 string_of_int r.Obs_diff.d_a;
                 string_of_int r.Obs_diff.d_b;
                 Printf.sprintf "%+.1f%%" (100. *. r.Obs_diff.d_rel);
               ])
        in
        Table.print
          ~title:
            (Printf.sprintf "obs diff: %s vs %s (%d of %d changed)." a b
               (List.length rows)
               (List.length d.Obs_diff.d_changed))
          ~align:Table.[ Left; Left; Right; Right; Right ]
          ~header:[ "Instrument"; "Kind"; "A"; "B"; "Delta" ]
          rows
      end;
      only_in a d.Obs_diff.d_only_a;
      only_in b d.Obs_diff.d_only_b;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Diff two metrics JSONL exports (A/B runs): per-instrument \
          deltas sorted by relative change. Accepts v1 exports (no \
          schema field) with a note.")
    Term.(ret (const action $ a_arg $ b_arg $ obs_top_arg))

let obs_cmd =
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "Inspect observability exports: end-of-run reports and A/B \
          diffs of metrics dumps.")
    [ obs_report_cmd; obs_diff_cmd ]

(* ---------------- qlog (structured query log) ---------------- *)

let qlog_files_pos p =
  let doc =
    "wet-qlog/1 JSONL files written by --qlog-out or the serve daemon; \
     pass several to merge them, and $(b,-) reads from stdin."
  in
  Arg.(non_empty & pos_right (p - 1) string [] & info [] ~docv:"QLOG" ~doc)

(* Rotated daemon access logs arrive as many files (or a pipe); merge
   them into one entry list so report/top aggregate across the set. *)
let qlog_load_stdin () =
  let rec go n acc =
    match In_channel.input_line stdin with
    | None -> Ok (List.rev acc)
    | Some l when String.trim l = "" -> go (n + 1) acc
    | Some l ->
      (match Qlog.parse_line l with
       | Ok e -> go (n + 1) (e :: acc)
       | Error m -> Error (Printf.sprintf "stdin:%d: %s" n m))
  in
  go 1 []

let qlog_load_many files =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | f :: rest ->
      (match if f = "-" then qlog_load_stdin () else Qlog.load f with
       | Error m -> Error m
       | Ok es -> go (es :: acc) rest)
  in
  go [] files

let qlog_source_label = function
  | [ f ] -> (if f = "-" then "stdin" else f)
  | files -> Printf.sprintf "%d files" (List.length files)

let qlog_report_cmd =
  let top_arg =
    let doc = "Show the N hottest shapes." in
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc)
  in
  let action files top =
    let label = qlog_source_label files in
    match qlog_load_many files with
    | Error m -> `Error (false, m)
    | Ok [] ->
      Printf.printf "%s: empty query log\n" label;
      `Ok ()
    | Ok entries ->
      let sums = Qlog.summarize entries in
      let wall_total =
        List.fold_left
          (fun acc (s : Qlog.shape_summary) -> acc + s.Qlog.s_wall_total_ns)
          0 sums
      in
      let rows =
        List.filteri (fun i _ -> i < top) sums
        |> List.map (fun (s : Qlog.shape_summary) ->
             let c = s.Qlog.s_cost in
             [
               s.Qlog.s_shape;
               string_of_int s.Qlog.s_count;
               string_of_int s.Qlog.s_errors;
               Printf.sprintf "%.2f" (ns_ms s.Qlog.s_wall_total_ns);
               Printf.sprintf "%.1f%%"
                 (if wall_total = 0 then 0.
                  else
                    100.
                    *. float_of_int s.Qlog.s_wall_total_ns
                    /. float_of_int wall_total);
               Printf.sprintf "%.3f" (s.Qlog.s_wall_p50_ns /. 1e6);
               Printf.sprintf "%.3f" (s.Qlog.s_wall_p95_ns /. 1e6);
               string_of_int (Qprof.decode_steps c);
               string_of_int c.Qprof.c_bits;
               string_of_int c.Qprof.c_switches;
             ])
      in
      Table.print
        ~title:
          (Printf.sprintf "Hottest query shapes (%s: %d queries, %d shapes)."
             label (List.length entries) (List.length sums))
        ~align:
          Table.[
            Left; Right; Right; Right; Right; Right; Right; Right; Right;
            Right;
          ]
        ~header:
          [
            "Shape"; "Queries"; "Err"; "Wall ms"; "Share"; "p50 ms";
            "p95 ms"; "Decode"; "Bits"; "Switches";
          ]
        rows;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate a query log: hottest shapes first with query counts, \
          p50/p95 latency and summed cost attribution (decode steps, \
          stored bits, direction switches).")
    Term.(ret (const action $ qlog_files_pos 0 $ top_arg))

let qlog_top_cmd =
  let n_arg =
    let doc = "How many queries to show." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc)
  in
  let action n files =
    let label = qlog_source_label files in
    match qlog_load_many files with
    | Error m -> `Error (false, m)
    | Ok entries ->
      let slowest =
        List.sort
          (fun (a : Qlog.entry) (b : Qlog.entry) ->
            compare b.Qlog.e_cost.Qprof.c_wall_ns a.Qlog.e_cost.Qprof.c_wall_ns)
          entries
      in
      let rows =
        List.filteri (fun i _ -> i < n) slowest
        |> List.map (fun (e : Qlog.entry) ->
             [
               e.Qlog.e_shape;
               String.concat " "
                 (List.map (fun (k, v) -> k ^ "=" ^ v) e.Qlog.e_params);
               Printf.sprintf "%.3f" (ns_ms e.Qlog.e_cost.Qprof.c_wall_ns);
               string_of_int (Qprof.decode_steps e.Qlog.e_cost);
               string_of_int e.Qlog.e_cost.Qprof.c_bits;
               e.Qlog.e_outcome;
             ])
      in
      if rows = [] then Printf.printf "%s: empty query log\n" label
      else
        Table.print
          ~title:
            (Printf.sprintf "Slowest queries (%s, %d of %d)." label
               (List.length rows) (List.length entries))
          ~align:Table.[ Left; Left; Right; Right; Right; Left ]
          ~header:[ "Shape"; "Params"; "Wall ms"; "Decode"; "Bits"; "Outcome" ]
          rows;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Show the N slowest individual queries in a query log.")
    Term.(ret (const action $ n_arg $ qlog_files_pos 1))

let qlog_cmd =
  Cmd.group
    (Cmd.info "qlog"
       ~doc:
         "Inspect structured query logs (wet-qlog/1 JSONL written by \
          --qlog-out): per-shape latency/cost reports and slowest-query \
          listings.")
    [ qlog_report_cmd; qlog_top_cmd ]

(* ---------------- benchmarks ---------------- *)

let benchmarks_cmd =
  let action obs =
    with_obs obs @@ fun () ->
    Table.print ~title:"Bundled benchmarks."
      ~align:Table.[ Left; Right; Right; Left ]
      ~header:[ "Name"; "Default scale"; "Timing scale"; "Description" ]
      (List.map
         (fun w ->
           [
             w.Spec.name;
             string_of_int w.Spec.default_scale;
             string_of_int w.Spec.timing_scale;
             w.Spec.description;
           ])
         Spec.all);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "benchmarks" ~doc:"List the bundled benchmark programs.")
    Term.(ret (const action $ obs_term))

(* ---------------- serve (query daemon) ---------------- *)

let socket_pos =
  let doc = "Unix-domain socket path." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET" ~doc)

let serve_cmd =
  let cache_arg =
    let doc = "Keep at most $(docv) WET containers resident (LRU)." in
    Arg.(value & opt int 4 & info [ "cache" ] ~docv:"N" ~doc)
  in
  let qlog_arg =
    let doc =
      "Append every request's profile to $(docv) as wet-qlog/1 JSONL (the \
       daemon's access log; aggregate with `wet qlog report`)."
    in
    Arg.(value & opt (some string) None & info [ "qlog" ] ~docv:"FILE" ~doc)
  in
  let ring_arg =
    let doc = "Flight-recorder ring capacity (entries)." in
    Arg.(value & opt int 4096 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc =
      "Dispatch up to $(docv) connections on their own domains \
       (parallel reads over shared containers); later connections \
       share the accept domain's sys-threads. Defaults to the \
       machine's recommended domain count minus two."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let action obs socket cache qlog ring domains =
    with_obs obs @@ fun () ->
    let dft = Serve_server.default_config ~socket in
    match
      Serve_server.run
        {
          Serve_server.socket;
          cache_capacity = cache;
          qlog;
          ring_capacity = ring;
          domains =
            (match domains with
             | Some d -> max 0 d
             | None -> dft.Serve_server.domains);
        }
    with
    | () -> `Ok ()
    | exception Wet_error.Error e -> `Error (false, Wet_error.message e)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve WET queries over a Unix socket: a long-lived daemon with \
          an LRU container cache, per-request qprof attribution, a \
          wet-qlog/1 access log and live serve.* metrics (watch with \
          `wet top`).")
    Term.(
      ret (const action $ obs_term $ socket_pos $ cache_arg $ qlog_arg
           $ ring_arg $ domains_arg))

let top_cmd =
  let json_arg =
    let doc = "Emit one JSONL snapshot object per tick instead of \
               repainting the terminal." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let interval_arg =
    let doc = "Milliseconds between polls (at least 100)." in
    Arg.(value & opt int 1000 & info [ "interval-ms" ] ~docv:"MS" ~doc)
  in
  let count_arg =
    let doc = "Stop after $(docv) snapshots (0 = run until interrupted)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let instruments_arg =
    let doc = "Hottest-instrument rows on the terminal screen." in
    Arg.(value & opt int 12 & info [ "instruments" ] ~docv:"N" ~doc)
  in
  let action socket json interval count instruments =
    match
      Serve_top.run
        {
          Serve_top.socket;
          mode = (if json then Serve_top.Jsonl else Serve_top.Tty);
          interval_ms = interval;
          count;
          instruments;
        }
    with
    | Ok () -> `Ok ()
    | Error m -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a `wet serve` daemon: request rates, latency \
          p50/p95 from histogram buckets, cache and ring state, hottest \
          instruments.")
    Term.(
      ret (const action $ socket_pos $ json_arg $ interval_arg $ count_arg
           $ instruments_arg))

let () =
  let doc = "whole execution traces: build, compress and query WETs" in
  let info = Cmd.info "wet" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval ~term_err:2
      (Cmd.group info
         [
           run_cmd; stats_cmd; trace_cmd; slice_cmd; paths_cmd; at_cmd;
           watch_cmd; build_cmd; verify_cmd; fsck_cmd; dot_cmd; profile_cmd;
           obs_cmd; qlog_cmd; bench_check_cmd; benchmarks_cmd; serve_cmd;
           top_cmd;
         ])
  in
  (* usage errors — unknown flags, missing arguments, bad --inject specs —
     uniformly exit 2; 3 is reserved for corrupt input *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
