(* Mining a WET for cross-profile program characteristics — the paper's
   stated purpose ("a basis for a next generation software tool that
   will enable mining of program profiles"). Three miners run over one
   benchmark's WET:

   1. instruction isomorphism (value profiles + dependence structure):
      statements provably producing identical value sequences;
   2. hot data streams (address profiles, Chilimbi's grammar method);
   3. a Graphviz export of a slice's dependence subgraph, written next
      to the binary for inspection.

     dune exec examples/profile_mining.exe [benchmark] *)

module W = Wet_core.Wet
module Iso = Wet_analyses.Isomorphism
module HS = Wet_analyses.Hot_streams
module Dot = Wet_analyses.Dot_export
module Spec = Wet_workloads.Spec
module Table = Wet_report.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "256.bzip2" in
  let w = Spec.find name in
  Printf.printf "mining %s\n\n" w.Spec.name;
  let res = Spec.run ~scale:w.Spec.timing_scale w in
  let wet = Wet_core.Builder.build res.Wet_interp.Interp.trace in

  (* 1. isomorphism *)
  let iso, total, redundant = Iso.summary wet in
  Printf.printf
    "isomorphism: %d of %d def copies provably repeat a sibling's value\n\
     sequence (%d redundant value-producing executions)\n\n"
    iso total redundant;
  let classes =
    Iso.classes wet
    |> List.sort (fun a b -> compare b.Iso.executions a.Iso.executions)
  in
  List.iteri
    (fun i (k : Iso.klass) ->
      if i < 5 then begin
        Printf.printf "  class of %d (executed %d times, %d distinct values):\n"
          (List.length k.Iso.members) k.Iso.executions k.Iso.distinct_values;
        List.iter
          (fun c ->
            Printf.printf "    %s\n"
              (Fmt.str "%a" Wet_ir.Instr.pp (W.instr_of_copy wet c)))
          k.Iso.members
      end)
    classes;
  print_newline ();

  (* frequent value locality (Yang & Gupta, cited by the paper) *)
  let freq = Wet_analyses.Value_locality.frequent ~top:5 wet in
  Printf.printf "frequent load values (top 5 cover %.1f%% of all loads):\n"
    (100. *. Wet_analyses.Value_locality.coverage wet ~top:5);
  List.iter (fun (v, c) -> Printf.printf "  %d  (%d occurrences)\n" v c) freq;
  print_newline ();

  (* 2. hot data streams *)
  let addrs = HS.address_trace res.Wet_interp.Interp.trace in
  let sample = Array.sub addrs 0 (min 60_000 (Array.length addrs)) in
  let streams = HS.mine ~min_length:6 sample in
  let rows =
    List.filteri (fun i _ -> i < 8) streams
    |> List.map (fun (s : HS.stream) ->
           [
             string_of_int (Array.length s.HS.addresses);
             string_of_int s.HS.uses;
             string_of_int s.HS.heat;
             String.concat " "
               (Array.to_list
                  (Array.map string_of_int
                     (Array.sub s.HS.addresses 0 (min 6 (Array.length s.HS.addresses)))))
             ^ (if Array.length s.HS.addresses > 6 then " ..." else "");
           ])
  in
  Table.print ~title:"Hot data streams (Sequitur over the address trace)."
    ~align:Table.[ Right; Right; Right; Left ]
    ~header:[ "Length"; "Uses"; "Heat"; "Addresses" ]
    rows;
  Printf.printf "trace coverage by mined streams: %.1f%%\n\n"
    (100. *. HS.coverage streams sample);

  (* 3. slice subgraph to Graphviz *)
  let out =
    List.hd
      (Wet_core.Query.copies_matching wet (function
        | Wet_ir.Instr.Output _ -> true
        | _ -> false))
  in
  let dot = Dot.slice ~max_instances:48 wet out 0 in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "wet_slice.dot" in
  let oc = open_out path in
  output_string oc dot;
  close_out oc;
  Printf.printf "slice dependence subgraph written to %s\n" path;
  Printf.printf "  (render with: dot -Tsvg %s -o slice.svg)\n" path
