(* Time travel over a WET: reconstruct the memory image at arbitrary
   execution points without re-running the program.

   No single profile can answer "what did memory hold at time t?" — it
   takes the timestamps (when each store ran), the dependence edges
   (which address it wrote) and the value labels (what it stored)
   together. That is the unified-representation argument of the paper's
   introduction, exercised here on a program whose memory evolves in
   phases.

     dune exec examples/time_travel.exe *)

module W = Wet_core.Wet
module State = Wet_analyses.State_reconstruct

let source =
  {|
global phase;
global histogram[8];

fn main() {
  // phase 1: fill the histogram
  phase = 1;
  var i = 0;
  while (i < 64) {
    var bucket = (i * i) % 8;
    histogram[bucket] = histogram[bucket] + 1;
    i = i + 1;
  }
  // phase 2: fold it down
  phase = 2;
  var j = 1;
  while (j < 8) {
    histogram[0] = histogram[0] + histogram[j];
    histogram[j] = 0;
    j = j + 1;
  }
  print(histogram[0]);
}
|}

let () =
  let program = Wet_minic.Frontend.compile_exn source in
  let res = Wet_interp.Interp.run program ~input:[||] in
  let wet = Wet_core.Builder.pack (Wet_core.Builder.build res.Wet_interp.Interp.trace) in
  let total = wet.W.stats.W.path_execs in
  Printf.printf "run spans timestamps 1..%d; final output %d\n\n" total
    res.Wet_interp.Interp.outputs.(0);

  let show ts =
    let s = State.at wet ~ts in
    let hist_base = Wet_ir.Program.global_base wet.W.program "histogram" in
    Printf.printf "t=%-4d phase=%d histogram=[" ts (State.global wet s "phase");
    for b = 0 to 7 do
      Printf.printf "%s%d" (if b > 0 then "; " else "") (State.read s (hist_base + b))
    done;
    Printf.printf "]  (%d addresses written so far)\n"
      (List.length (State.written s))
  in
  (* sample the run at a few points: filling, mid-fill, folding, end *)
  List.iter show [ max 1 (total / 8); total / 2; max 1 (total - 4); total ];

  print_newline ();
  print_endline
    "Each line is reconstructed purely from the compressed WET - the\n\
     timestamps say when each store ran, the dependence edges say where\n\
     it wrote and what value it carried. No re-execution involved."
