(* Hot path mining — the original application of Ball-Larus path
   profiling, which the WET gets for free: its nodes are the executed
   paths and their timestamp sequences are the profile.

   Finds the hottest acyclic paths of a benchmark and shows what share
   of all statement executions the top paths cover (the classic "a few
   paths dominate" observation that path-sensitive optimisation relies
   on).

     dune exec examples/hot_paths.exe [benchmark] *)

module W = Wet_core.Wet
module Spec = Wet_workloads.Spec
module Table = Wet_report.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "197.parser" in
  let w = Spec.find name in
  Printf.printf "mining hot paths of %s (%s)\n\n" w.Spec.name w.Spec.description;
  let res = Spec.run ~scale:w.Spec.timing_scale w in
  let wet = Wet_core.Builder.build res.Wet_interp.Interp.trace in

  let nodes = Array.copy wet.W.nodes in
  Array.sort (fun a b -> compare b.W.n_nexec a.W.n_nexec) nodes;
  let total_stmts = wet.W.stats.W.stmts_executed in

  let cumulative = ref 0 in
  let rows =
    List.filteri (fun i _ -> i < 12) (Array.to_list nodes)
    |> List.map (fun (n : W.node) ->
           let stmts = n.W.n_nexec * Array.length n.W.n_stmts in
           cumulative := !cumulative + stmts;
           [
             Printf.sprintf "f%d/path%d" n.W.n_func n.W.n_path;
             string_of_int n.W.n_nexec;
             string_of_int (Array.length n.W.n_blocks);
             Printf.sprintf "%.1f%%"
               (100. *. float_of_int stmts /. float_of_int total_stmts);
             Printf.sprintf "%.1f%%"
               (100. *. float_of_int !cumulative /. float_of_int total_stmts);
           ])
  in
  Table.print ~title:"Hottest Ball-Larus paths."
    ~align:Table.[ Left; Right; Right; Right; Right ]
    ~header:[ "Path"; "Executions"; "Blocks"; "Stmt share"; "Cumulative" ]
    rows;

  (* Expand the hottest path so the reader can see actual code. *)
  let hottest = nodes.(0) in
  Printf.printf "\nhottest path (executed %d times):\n" hottest.W.n_nexec;
  Array.iteri
    (fun o stmt ->
      let _ = o in
      Printf.printf "  %s\n"
        (Fmt.str "%a" Wet_ir.Instr.pp (Wet_ir.Program.instr wet.W.program stmt)))
    hottest.W.n_stmts
