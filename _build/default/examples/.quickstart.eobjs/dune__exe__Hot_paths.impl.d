examples/hot_paths.ml: Array Fmt List Printf Sys Wet_core Wet_interp Wet_ir Wet_report Wet_workloads
