examples/time_travel.ml: Array List Printf Wet_analyses Wet_core Wet_interp Wet_ir Wet_minic
