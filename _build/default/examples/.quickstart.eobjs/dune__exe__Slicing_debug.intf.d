examples/slicing_debug.mli:
