examples/slicing_debug.ml: Array Fmt Hashtbl List Printf Wet_core Wet_interp Wet_ir Wet_minic
