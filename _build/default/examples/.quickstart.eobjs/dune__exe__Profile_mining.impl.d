examples/profile_mining.ml: Array Filename Fmt List Printf String Sys Wet_analyses Wet_core Wet_interp Wet_ir Wet_report Wet_workloads
