examples/quickstart.ml: Array List Printf Wet_core Wet_interp Wet_ir Wet_minic
