examples/cache_study.ml: Array Fmt Hashtbl List Printf Sys Wet_arch Wet_core Wet_interp Wet_ir Wet_report Wet_workloads
