examples/profile_mining.mli:
