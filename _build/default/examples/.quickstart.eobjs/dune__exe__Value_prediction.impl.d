examples/value_prediction.ml: Array Hashtbl List Option Printf Sys Wet_core Wet_interp Wet_predict Wet_report Wet_workloads
