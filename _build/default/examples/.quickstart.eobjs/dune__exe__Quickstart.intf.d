examples/quickstart.mli:
