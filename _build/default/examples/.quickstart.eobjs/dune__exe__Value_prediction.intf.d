examples/value_prediction.mli:
