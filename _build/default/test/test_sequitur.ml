module Sequitur = Wet_sequitur.Sequitur

let test_round_trip_fixtures () =
  let rng = Wet_util.Prng.create 3 in
  let cases =
    [
      ("abab", Array.init 1000 (fun i -> i mod 2));
      ("abcabc", Array.init 999 (fun i -> i mod 3));
      ("constant", Array.make 777 9);
      ("random", Array.init 400 (fun _ -> Wet_util.Prng.int rng 5));
      ("negatives", Array.init 600 (fun i -> -(i mod 4)));
      ("single", [| 42 |]);
      ("empty", [||]);
    ]
  in
  List.iter
    (fun (name, arr) ->
      let g = Sequitur.build arr in
      Alcotest.(check (array int)) (name ^ " expands") arr (Sequitur.expand g);
      (match Sequitur.check_invariants g with
       | Ok () -> ()
       | Error m -> Alcotest.failf "%s: invariant: %s" name m))
    cases

let test_compresses_repetition () =
  let arr = Array.init 4096 (fun i -> i mod 8) in
  let g = Sequitur.build arr in
  Alcotest.(check bool) "far fewer symbols than input" true
    (Sequitur.grammar_symbols g < 200);
  Alcotest.(check bool) "bits smaller" true
    (Sequitur.bits g < 32 * Array.length arr / 10)

let test_random_incompressible () =
  let rng = Wet_util.Prng.create 4 in
  let arr = Array.init 1000 (fun _ -> Wet_util.Prng.next rng) in
  let g = Sequitur.build arr in
  (* distinct values everywhere: grammar must stay close to the input *)
  Alcotest.(check bool) "no spurious rules" true (Sequitur.num_rules g <= 2);
  Alcotest.(check int) "all symbols kept" 1000 (Sequitur.grammar_symbols g)

let prop_round_trip =
  QCheck.Test.make ~name:"expand (build xs) = xs" ~count:100
    QCheck.(list (int_bound 6))
    (fun xs ->
      let arr = Array.of_list xs in
      Sequitur.expand (Sequitur.build arr) = arr)

let prop_invariants =
  QCheck.Test.make ~name:"digram uniqueness and rule utility" ~count:100
    QCheck.(list (int_bound 4))
    (fun xs ->
      let arr = Array.of_list xs in
      match Sequitur.check_invariants (Sequitur.build arr) with
      | Ok () -> true
      | Error _ -> false)

let () =
  Alcotest.run "sequitur"
    [
      ( "grammar",
        [
          Alcotest.test_case "round trips" `Quick test_round_trip_fixtures;
          Alcotest.test_case "compresses repetition" `Quick test_compresses_repetition;
          Alcotest.test_case "random stays flat" `Quick test_random_incompressible;
          QCheck_alcotest.to_alcotest prop_round_trip;
          QCheck_alcotest.to_alcotest prop_invariants;
        ] );
    ]
