module Dyn = Wet_util.Dynarray_int
module Bitvec = Wet_util.Bitvec
module Hashing = Wet_util.Hashing
module Prng = Wet_util.Prng

let test_dyn_basic () =
  let a = Dyn.create () in
  Alcotest.(check int) "empty" 0 (Dyn.length a);
  for i = 0 to 99 do
    Dyn.push a (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dyn.length a);
  Alcotest.(check int) "get" 49 (Dyn.get a 7);
  Dyn.set a 7 (-1);
  Alcotest.(check int) "set" (-1) (Dyn.get a 7);
  Alcotest.(check int) "last" (99 * 99) (Dyn.last a);
  Alcotest.(check int) "pop" (99 * 99) (Dyn.pop a);
  Alcotest.(check int) "after pop" 99 (Dyn.length a)

let test_dyn_bounds () =
  let a = Dyn.of_array [| 1; 2; 3 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dynarray_int: index 3 out of [0,3)")
    (fun () -> ignore (Dyn.get a 3));
  Alcotest.check_raises "neg" (Invalid_argument "Dynarray_int: index -1 out of [0,3)")
    (fun () -> ignore (Dyn.get a (-1)));
  let e = Dyn.create () in
  Alcotest.check_raises "pop empty" (Invalid_argument "Dynarray_int.pop: empty")
    (fun () -> ignore (Dyn.pop e))

let test_dyn_round_trip () =
  let src = Array.init 1000 (fun i -> (i * 37) mod 101) in
  let a = Dyn.of_array src in
  Alcotest.(check (array int)) "to_array" src (Dyn.to_array a);
  Alcotest.(check (array int)) "sub" (Array.sub src 10 50) (Dyn.sub a 10 50);
  let sum = Dyn.fold ( + ) 0 a in
  Alcotest.(check int) "fold" (Array.fold_left ( + ) 0 src) sum

let prop_dyn_model =
  QCheck.Test.make ~name:"dynarray models a list"
    QCheck.(list small_int)
    (fun xs ->
      let a = Dyn.create () in
      List.iter (Dyn.push a) xs;
      Array.to_list (Dyn.to_array a) = xs)

let test_bitvec () =
  let v = Bitvec.create 77 in
  Alcotest.(check int) "len" 77 (Bitvec.length v);
  Alcotest.(check int) "popcount0" 0 (Bitvec.popcount v);
  Bitvec.set v 0 true;
  Bitvec.set v 76 true;
  Bitvec.set v 33 true;
  Alcotest.(check bool) "get" true (Bitvec.get v 33);
  Alcotest.(check bool) "unset" false (Bitvec.get v 34);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 33 false;
  Alcotest.(check int) "clear" 2 (Bitvec.popcount v);
  Alcotest.check_raises "oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 77))

let prop_bitvec_model =
  QCheck.Test.make ~name:"bitvec models a bool array"
    QCheck.(list (pair (int_bound 199) bool))
    (fun ops ->
      let v = Bitvec.create 200 in
      let m = Array.make 200 false in
      List.iter
        (fun (i, b) ->
          Bitvec.set v i b;
          m.(i) <- b)
        ops;
      let ok = ref true in
      Array.iteri (fun i b -> if Bitvec.get v i <> b then ok := false) m;
      !ok && Bitvec.popcount v = Array.fold_left (fun a b -> if b then a + 1 else a) 0 m)

let test_hashing () =
  let a = [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "window stable"
    (Hashing.hash_window a 1 3)
    (Hashing.hash_window [| 9; 2; 3; 4; 9 |] 1 3);
  Alcotest.(check bool) "different windows differ"
    true
    (Hashing.hash_window a 0 3 <> Hashing.hash_window a 1 3);
  let ix = Hashing.index_of_hash (Hashing.hash_list [ 42 ]) 8 in
  Alcotest.(check bool) "index in range" true (ix >= 0 && ix < 256)

let test_prng () =
  let a = Prng.create 1 and b = Prng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "deterministic" (Prng.next a) (Prng.next b)
  done;
  let c = Prng.create 2 in
  Alcotest.(check bool) "seed matters" true (Prng.next a <> Prng.next c);
  for _ = 1 to 1000 do
    let x = Prng.int c 17 in
    Alcotest.(check bool) "bound" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int c 0))

let () =
  Alcotest.run "util"
    [
      ( "dynarray",
        [
          Alcotest.test_case "basic" `Quick test_dyn_basic;
          Alcotest.test_case "bounds" `Quick test_dyn_bounds;
          Alcotest.test_case "round-trip" `Quick test_dyn_round_trip;
          QCheck_alcotest.to_alcotest prop_dyn_model;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "basic" `Quick test_bitvec;
          QCheck_alcotest.to_alcotest prop_bitvec_model;
        ] );
      ("hashing", [ Alcotest.test_case "basic" `Quick test_hashing ]);
      ("prng", [ Alcotest.test_case "determinism" `Quick test_prng ]);
    ]
