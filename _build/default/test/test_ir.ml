module Instr = Wet_ir.Instr
module Func = Wet_ir.Func
module Builder = Wet_ir.Builder
module Program = Wet_ir.Program
module Validate = Wet_ir.Validate

let all_instrs : Instr.t list =
  [
    Const (0, 7);
    Move (1, 0);
    Binop (Add, 2, 0, 1);
    Cmp (Lt, 3, 0, 1);
    Unop (Neg, 4, 0);
    Load (5, 0);
    Store (0, 1);
    Input 6;
    Output 0;
    Call (Some 7, 0, [ 0; 1 ], 1);
    Call (None, 0, [], 1);
    Branch (0, 0, 1);
    Jump 0;
    Ret (Some 0);
    Ret None;
    Halt;
  ]

let test_classification () =
  let check ins ~term ~def ~uses ~dyn =
    Alcotest.(check bool)
      (Fmt.str "term %a" Instr.pp ins)
      term (Instr.is_terminator ins);
    Alcotest.(check (option int)) (Fmt.str "def %a" Instr.pp ins) def (Instr.def ins);
    Alcotest.(check (list int)) (Fmt.str "uses %a" Instr.pp ins) uses (Instr.uses ins);
    Alcotest.(check int) (Fmt.str "dyn %a" Instr.pp ins) dyn (Instr.dyn_use_count ins)
  in
  check (Const (0, 7)) ~term:false ~def:(Some 0) ~uses:[] ~dyn:0;
  check (Move (1, 0)) ~term:false ~def:(Some 1) ~uses:[ 0 ] ~dyn:1;
  check (Binop (Add, 2, 0, 1)) ~term:false ~def:(Some 2) ~uses:[ 0; 1 ] ~dyn:2;
  check (Cmp (Lt, 3, 0, 1)) ~term:false ~def:(Some 3) ~uses:[ 0; 1 ] ~dyn:2;
  check (Unop (Neg, 4, 0)) ~term:false ~def:(Some 4) ~uses:[ 0 ] ~dyn:1;
  (* loads carry an extra memory slot, calls with results a return link *)
  check (Load (5, 0)) ~term:false ~def:(Some 5) ~uses:[ 0 ] ~dyn:2;
  check (Store (0, 1)) ~term:false ~def:None ~uses:[ 0; 1 ] ~dyn:2;
  check (Input 6) ~term:false ~def:(Some 6) ~uses:[] ~dyn:0;
  check (Output 0) ~term:false ~def:None ~uses:[ 0 ] ~dyn:1;
  check (Call (Some 7, 0, [ 0; 1 ], 1)) ~term:true ~def:(Some 7) ~uses:[ 0; 1 ] ~dyn:3;
  check (Call (None, 0, [], 1)) ~term:true ~def:None ~uses:[] ~dyn:0;
  check (Branch (0, 0, 1)) ~term:true ~def:None ~uses:[ 0 ] ~dyn:1;
  check (Jump 0) ~term:true ~def:None ~uses:[] ~dyn:0;
  check (Ret (Some 0)) ~term:true ~def:None ~uses:[ 0 ] ~dyn:1;
  check Halt ~term:true ~def:None ~uses:[] ~dyn:0

let test_memory_classification () =
  Alcotest.(check bool) "load" true (Instr.is_memory (Load (0, 1)));
  Alcotest.(check bool) "store" true (Instr.is_memory (Store (0, 1)));
  Alcotest.(check (option int)) "addr load" (Some 1) (Instr.addr_reg (Load (0, 1)));
  Alcotest.(check (option int)) "addr store" (Some 0) (Instr.addr_reg (Store (0, 1)));
  List.iter
    (fun i ->
      if not (Instr.is_memory i) then
        Alcotest.(check (option int)) "no addr" None (Instr.addr_reg i))
    all_instrs

(* A two-block function: entry computes, then jumps to an exit block. *)
let sample_func () =
  let b = Builder.create ~name:"f" ~nparams:1 in
  let r = Builder.fresh_reg b in
  Builder.emit b (Instr.Const (r, 5));
  let exit_b = Builder.new_block b in
  Builder.terminate b (Instr.Jump exit_b);
  Builder.switch_to b exit_b;
  Builder.terminate b (Instr.Ret (Some r));
  Builder.finish b

let test_builder () =
  let f = sample_func () in
  Alcotest.(check int) "blocks" 2 (Func.num_blocks f);
  Alcotest.(check int) "stmts" 3 (Func.num_stmts f);
  Alcotest.(check (list int)) "succs entry" [ 1 ] (Func.successors f 0);
  Alcotest.(check (list int)) "succs exit" [] (Func.successors f 1);
  Alcotest.(check int) "nregs" 2 f.Func.nregs

let test_builder_discipline () =
  let b = Builder.create ~name:"g" ~nparams:0 in
  Alcotest.check_raises "terminator via emit"
    (Invalid_argument "Builder.emit: use terminate for terminators")
    (fun () -> Builder.emit b (Instr.Jump 0));
  Alcotest.check_raises "non-terminator via terminate"
    (Invalid_argument "Builder.terminate: not a terminator")
    (fun () -> Builder.terminate b (Instr.Const (0, 1)));
  Builder.terminate b Instr.Halt;
  Alcotest.check_raises "emit after terminate"
    (Invalid_argument "Builder.emit: current block terminated")
    (fun () -> Builder.emit b (Instr.Const (0, 1)));
  let unfinished = Builder.create ~name:"h" ~nparams:0 in
  ignore (Builder.new_block unfinished);
  Builder.terminate unfinished Instr.Halt;
  Alcotest.check_raises "unterminated block"
    (Invalid_argument "Builder.finish: block B1 of h not terminated")
    (fun () -> ignore (Builder.finish unfinished))

let main_func () =
  let b = Builder.create ~name:"main" ~nparams:0 in
  Builder.terminate b Instr.Halt;
  Builder.finish b

let test_program_numbering () =
  let f = sample_func () in
  let m = main_func () in
  let p = Program.make ~funcs:[| m; f |] ~main:0 ~mem_words:4 ~globals:[ ("g", 0, 4) ] in
  Alcotest.(check int) "num stmts" 4 (Program.num_stmts p);
  (* statement ids are dense and invertible *)
  for id = 0 to 3 do
    let fi, bi, i = Program.locate p id in
    Alcotest.(check int) "roundtrip" id (Program.stmt_id p fi bi i)
  done;
  Alcotest.(check int) "global base" 0 (Program.global_base p "g");
  let count = ref 0 in
  Program.iter_stmts p (fun _ _ -> incr count);
  Alcotest.(check int) "iter" 4 !count

let test_validate_ok () =
  let p = Program.make ~funcs:[| main_func (); sample_func () |] ~main:0
      ~mem_words:1 ~globals:[] in
  Alcotest.(check int) "no errors" 0 (List.length (Validate.errors p))

let make_invalid instrs =
  let f = { Func.name = "bad"; params = []; nregs = 2;
            blocks = [| { Func.instrs } |]; entry = 0 } in
  Program.make ~funcs:[| f |] ~main:0 ~mem_words:1 ~globals:[]

let expect_error name instrs =
  let p = make_invalid instrs in
  Alcotest.(check bool) name true (Validate.errors p <> [])

let test_validate_errors () =
  expect_error "empty block" [||];
  expect_error "no terminator" [| Instr.Const (0, 1) |];
  expect_error "terminator not last" [| Instr.Jump 0; Instr.Const (0, 1); Instr.Halt |];
  expect_error "register out of range" [| Instr.Const (9, 1); Instr.Halt |];
  expect_error "bad jump target" [| Instr.Jump 5 |];
  expect_error "bad branch target" [| Instr.Branch (0, 0, 9) |];
  expect_error "bad call target" [| Instr.Call (None, 7, [], 0) |];
  expect_error "bad call cont" [| Instr.Call (None, 0, [], 9) |];
  (* halt outside main *)
  let m = main_func () in
  let bad = { Func.name = "f"; params = []; nregs = 1;
              blocks = [| { Func.instrs = [| Instr.Halt |] } |]; entry = 0 } in
  let p = Program.make ~funcs:[| m; bad |] ~main:0 ~mem_words:1 ~globals:[] in
  Alcotest.(check bool) "halt outside main" true (Validate.errors p <> []);
  (* call arity mismatch *)
  let f = sample_func () in
  let caller =
    { Func.name = "c"; params = []; nregs = 1;
      blocks = [| { Func.instrs = [| Instr.Call (None, 1, [], 0) |] } |];
      entry = 0 }
  in
  let p = Program.make ~funcs:[| caller; f |] ~main:0 ~mem_words:1 ~globals:[] in
  Alcotest.(check bool) "arity" true (Validate.errors p <> [])

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_printer () =
  let p = Program.make ~funcs:[| main_func (); sample_func () |] ~main:0
      ~mem_words:4 ~globals:[ ("g", 0, 4) ] in
  let s = Wet_ir.Printer.program_to_string p in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [ "main"; "halt"; "ret"; "global g" ]

let () =
  Alcotest.run "ir"
    [
      ( "instr",
        [
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "memory" `Quick test_memory_classification;
        ] );
      ( "builder",
        [
          Alcotest.test_case "build" `Quick test_builder;
          Alcotest.test_case "discipline" `Quick test_builder_discipline;
        ] );
      ( "program",
        [ Alcotest.test_case "numbering" `Quick test_program_numbering ] );
      ( "validate",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_ok;
          Alcotest.test_case "rejects invalid" `Quick test_validate_errors;
        ] );
      ("printer", [ Alcotest.test_case "renders" `Quick test_printer ]);
    ]
