module P = Wet_predict.Predictor

let test_fcm_periodic () =
  let arr = Array.init 3000 (fun i -> [| 10; 20; 30; 40 |].(i mod 4)) in
  let acc = P.accuracy (P.fcm ~ctx:2 ()) arr in
  Alcotest.(check bool) (Printf.sprintf "fcm periodic %.2f" acc) true (acc > 0.95)

let test_stride_arithmetic () =
  let arr = Array.init 3000 (fun i -> 7 * i) in
  let acc = P.accuracy (P.stride ()) arr in
  Alcotest.(check bool) (Printf.sprintf "stride %.2f" acc) true (acc > 0.99);
  let acc_dfcm = P.accuracy (P.dfcm ~ctx:2 ()) arr in
  Alcotest.(check bool) (Printf.sprintf "dfcm %.2f" acc_dfcm) true (acc_dfcm > 0.95)

let test_last_n () =
  let arr = Array.init 3000 (fun i -> i mod 3) in
  let acc = P.accuracy (P.last_n ~n:4) arr in
  Alcotest.(check bool) (Printf.sprintf "last-4 %.2f" acc) true (acc > 0.99);
  let acc1 = P.accuracy (P.last_n ~n:1) (Array.make 1000 5) in
  Alcotest.(check bool) "last-1 constant" true (acc1 > 0.99)

let test_random_unpredictable () =
  let rng = Wet_util.Prng.create 12 in
  let arr = Array.init 3000 (fun _ -> Wet_util.Prng.next rng) in
  List.iter
    (fun p ->
      let acc = P.accuracy p arr in
      Alcotest.(check bool)
        (Printf.sprintf "%s on random: %.3f" (P.name p) acc)
        true (acc < 0.05))
    [ P.fcm ~ctx:2 (); P.dfcm ~ctx:2 (); P.last_n ~n:4; P.stride () ]

let test_names () =
  Alcotest.(check string) "fcm" "fcm/3" (P.name (P.fcm ~ctx:3 ()));
  Alcotest.(check string) "dfcm" "dfcm/1" (P.name (P.dfcm ~ctx:1 ()));
  Alcotest.(check string) "last" "last-2" (P.name (P.last_n ~n:2));
  Alcotest.(check string) "stride" "stride" (P.name (P.stride ()))

let prop_accuracy_bounded =
  QCheck.Test.make ~name:"accuracy in [0,1]" ~count:50
    QCheck.(list small_int)
    (fun xs ->
      let arr = Array.of_list xs in
      List.for_all
        (fun p ->
          let a = P.accuracy p arr in
          a >= 0. && a <= 1.)
        [ P.fcm ~ctx:1 (); P.dfcm ~ctx:2 (); P.last_n ~n:2; P.stride () ])

let () =
  Alcotest.run "predict"
    [
      ( "predictors",
        [
          Alcotest.test_case "fcm periodic" `Quick test_fcm_periodic;
          Alcotest.test_case "stride arithmetic" `Quick test_stride_arithmetic;
          Alcotest.test_case "last-n" `Quick test_last_n;
          Alcotest.test_case "random floor" `Quick test_random_unpredictable;
          Alcotest.test_case "names" `Quick test_names;
          QCheck_alcotest.to_alcotest prop_accuracy_bounded;
        ] );
    ]
