module BP = Wet_arch.Branch_predictor
module Cache = Wet_arch.Cache
module AP = Wet_arch.Arch_profile

let test_bp_learns_bias () =
  let bp = BP.create () in
  for _ = 1 to 1000 do
    ignore (BP.record bp ~pc:42 ~taken:true)
  done;
  let execs, miss = BP.stats bp in
  Alcotest.(check int) "executed" 1000 execs;
  Alcotest.(check bool) (Printf.sprintf "few misses (%d)" miss) true (miss < 20)

let test_bp_learns_alternation () =
  (* with history, a strict alternation becomes predictable *)
  let bp = BP.create ~history_bits:8 () in
  for i = 1 to 2000 do
    ignore (BP.record bp ~pc:7 ~taken:(i mod 2 = 0))
  done;
  let _, miss = BP.stats bp in
  Alcotest.(check bool) (Printf.sprintf "alternation learned (%d)" miss) true
    (miss < 100)

let test_bp_random_floor () =
  let rng = Wet_util.Prng.create 9 in
  let bp = BP.create () in
  for _ = 1 to 4000 do
    ignore (BP.record bp ~pc:(Wet_util.Prng.int rng 64) ~taken:(Wet_util.Prng.bool rng))
  done;
  let _, miss = BP.stats bp in
  Alcotest.(check bool) (Printf.sprintf "random is hard (%d)" miss) true
    (miss > 1200)

let test_cache_basics () =
  let c = Cache.create ~size_words:64 ~line_words:4 () in
  (* sequential sweep: one miss per line *)
  for a = 0 to 63 do
    ignore (Cache.access c ~addr:a ~is_store:false)
  done;
  let loads, misses, _, _ = Cache.stats c in
  Alcotest.(check int) "loads" 64 loads;
  Alcotest.(check int) "one miss per line" 16 misses;
  (* the sweep fits: a second pass hits everywhere *)
  for a = 0 to 63 do
    ignore (Cache.access c ~addr:a ~is_store:false)
  done;
  let _, misses2, _, _ = Cache.stats c in
  Alcotest.(check int) "second pass all hits" 16 misses2

let test_cache_conflicts () =
  let c = Cache.create ~size_words:64 ~line_words:4 () in
  (* two addresses 64 words apart map to the same line: always conflict *)
  for _ = 1 to 10 do
    ignore (Cache.access c ~addr:0 ~is_store:true);
    ignore (Cache.access c ~addr:64 ~is_store:true)
  done;
  let _, _, stores, misses = Cache.stats c in
  Alcotest.(check int) "stores" 20 stores;
  Alcotest.(check int) "all conflict" 20 misses

let test_cache_validation () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Cache.create: sizes must be powers of two") (fun () ->
      ignore (Cache.create ~size_words:100 ~line_words:4 ()));
  Alcotest.check_raises "line too large"
    (Invalid_argument "Cache.create: line larger than cache") (fun () ->
      ignore (Cache.create ~size_words:4 ~line_words:8 ()))

let test_profile_counts () =
  let src =
    {|
global a[64];
fn main() {
  var i = 0;
  while (i < 64) {
    a[i] = i;
    i = i + 1;
  }
  var s = 0;
  var j = 0;
  while (j < 64) {
    s = s + a[j];
    j = j + 1;
  }
  print(s);
}
|}
  in
  let prog = Wet_minic.Frontend.compile_exn src in
  let res = Wet_interp.Interp.run prog ~input:[||] in
  let r = AP.of_trace res.Wet_interp.Interp.trace in
  Alcotest.(check int) "loads" 64 r.AP.loads;
  Alcotest.(check int) "stores" 64 r.AP.stores;
  (* two loop headers, 65 executions each *)
  Alcotest.(check int) "branches" 130 r.AP.branches;
  (* loop branches are almost always taken; the residue is gshare's
     cold-start on fresh history patterns *)
  Alcotest.(check bool)
    (Printf.sprintf "mispredicts low (%d)" r.AP.mispredicts)
    true
    (r.AP.mispredicts < 45);
  let b, l, s = AP.history_bytes r in
  Alcotest.(check bool) "bit accounting" true
    (b = 130. /. 8. && l = 8. && s = 8.)

let () =
  Alcotest.run "arch"
    [
      ( "branch-predictor",
        [
          Alcotest.test_case "bias" `Quick test_bp_learns_bias;
          Alcotest.test_case "alternation" `Quick test_bp_learns_alternation;
          Alcotest.test_case "random floor" `Quick test_bp_random_floor;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "conflicts" `Quick test_cache_conflicts;
          Alcotest.test_case "validation" `Quick test_cache_validation;
        ] );
      ("profile", [ Alcotest.test_case "counts" `Quick test_profile_counts ]);
    ]
