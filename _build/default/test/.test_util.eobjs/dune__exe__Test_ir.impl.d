test/test_ir.ml: Alcotest Fmt List String Wet_ir
