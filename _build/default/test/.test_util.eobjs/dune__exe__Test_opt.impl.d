test/test_opt.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Wet_interp Wet_ir Wet_minic Wet_opt Wet_util Wet_workloads
