test/test_workloads.ml: Alcotest Array List Printf Wet_core Wet_interp Wet_ir Wet_workloads
