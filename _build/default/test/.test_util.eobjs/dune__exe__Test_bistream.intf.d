test/test_bistream.mli:
