test/test_interp.ml: Alcotest Array List String Wet_cfg Wet_core Wet_interp Wet_ir Wet_minic
