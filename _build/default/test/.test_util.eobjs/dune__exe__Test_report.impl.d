test/test_report.ml: Alcotest List String Wet_report
