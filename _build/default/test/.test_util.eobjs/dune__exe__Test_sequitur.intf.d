test/test_sequitur.mli:
