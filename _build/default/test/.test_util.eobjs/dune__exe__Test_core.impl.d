test/test_core.ml: Alcotest Array Filename Fun Hashtbl Lazy List Option Printf QCheck QCheck_alcotest String Sys Wet_cfg Wet_core Wet_interp Wet_ir Wet_minic Wet_util
