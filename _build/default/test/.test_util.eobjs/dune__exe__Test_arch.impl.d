test/test_arch.ml: Alcotest Printf Wet_arch Wet_interp Wet_minic Wet_util
