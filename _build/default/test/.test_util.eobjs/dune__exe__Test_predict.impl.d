test/test_predict.ml: Alcotest Array List Printf QCheck QCheck_alcotest Wet_predict Wet_util
