test/test_cfg.ml: Alcotest Array List Printf QCheck QCheck_alcotest String Wet_cfg Wet_interp Wet_ir Wet_minic Wet_util
