test/test_bistream.ml: Alcotest Array List Printf QCheck QCheck_alcotest Wet_bistream Wet_util
