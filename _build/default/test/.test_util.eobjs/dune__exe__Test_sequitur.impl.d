test/test_sequitur.ml: Alcotest Array List QCheck QCheck_alcotest Wet_sequitur Wet_util
