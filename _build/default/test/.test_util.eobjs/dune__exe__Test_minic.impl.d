test/test_minic.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest String Wet_interp Wet_ir Wet_minic Wet_util
