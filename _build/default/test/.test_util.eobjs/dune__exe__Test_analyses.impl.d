test/test_analyses.ml: Alcotest Array Hashtbl List Printf String Wet_analyses Wet_cfg Wet_core Wet_interp Wet_ir Wet_minic Wet_util Wet_workloads
