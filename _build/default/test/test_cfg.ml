module Instr = Wet_ir.Instr
module Func = Wet_ir.Func
module Graph = Wet_cfg.Graph
module Dominance = Wet_cfg.Dominance
module Control_dep = Wet_cfg.Control_dep
module BL = Wet_cfg.Ball_larus

(* Handmade CFG skeletons: blocks carry only their terminator (plus a
   constant filler so blocks are non-trivial). *)
let func_of_terminators terms =
  let blocks =
    Array.map
      (fun t -> { Func.instrs = [| Instr.Const (0, 0); t |] })
      (Array.of_list terms)
  in
  { Func.name = "t"; params = []; nregs = 1; blocks; entry = 0 }

(* 0 -> (1 | 2) -> 3 -> ret : the diamond *)
let diamond () =
  func_of_terminators
    [ Instr.Branch (0, 1, 2); Instr.Jump 3; Instr.Jump 3; Instr.Ret None ]

(* 0 -> 1; 1 -> (2 | 3); 2 -> 1 (back edge); 3 -> ret : a while loop *)
let loop () =
  func_of_terminators
    [ Instr.Jump 1; Instr.Branch (0, 2, 3); Instr.Jump 1; Instr.Ret None ]

let test_graph () =
  let g = Graph.of_func (diamond ()) in
  Alcotest.(check int) "nblocks" 4 g.Graph.nblocks;
  Alcotest.(check (array int)) "succs 0" [| 1; 2 |] g.Graph.succs.(0);
  Alcotest.(check (array int)) "preds 3" [| 1; 2 |] g.Graph.preds.(3);
  Alcotest.(check (list int)) "exits" [ 3 ] (Graph.exit_blocks g);
  Alcotest.(check (array bool)) "reachable" [| true; true; true; true |]
    (Graph.reachable g);
  let rpo = Graph.reverse_postorder g in
  Alcotest.(check int) "rpo starts at entry" 0 rpo.(0);
  Alcotest.(check int) "rpo length" 4 (Array.length rpo)

let test_dominators_diamond () =
  let g = Graph.of_func (diamond ()) in
  let d = Dominance.dominators g in
  Alcotest.(check int) "idom 1" 0 (Dominance.idom d 1);
  Alcotest.(check int) "idom 2" 0 (Dominance.idom d 2);
  Alcotest.(check int) "idom 3" 0 (Dominance.idom d 3);
  Alcotest.(check int) "root" (-1) (Dominance.idom d 0);
  Alcotest.(check bool) "0 dom 3" true (Dominance.dominates d 0 3);
  Alcotest.(check bool) "1 !dom 3" false (Dominance.dominates d 1 3);
  Alcotest.(check bool) "reflexive" true (Dominance.dominates d 2 2)

let test_postdominators_diamond () =
  let g = Graph.of_func (diamond ()) in
  let pd = Dominance.postdominators g in
  (* virtual exit is node 4 *)
  Alcotest.(check int) "ipdom 0" 3 (Dominance.idom pd 0);
  Alcotest.(check int) "ipdom 1" 3 (Dominance.idom pd 1);
  Alcotest.(check int) "ipdom 3" 4 (Dominance.idom pd 3);
  Alcotest.(check bool) "3 pdom 0" true (Dominance.dominates pd 3 0)

let test_control_dep () =
  let g = Graph.of_func (diamond ()) in
  let cd = Control_dep.parents g in
  Alcotest.(check (list int)) "branch arm 1" [ 0 ] cd.(1);
  Alcotest.(check (list int)) "branch arm 2" [ 0 ] cd.(2);
  Alcotest.(check (list int)) "join" [] cd.(3);
  Alcotest.(check (list int)) "entry" [] cd.(0);
  let g = Graph.of_func (loop ()) in
  let cd = Control_dep.parents g in
  Alcotest.(check (list int)) "loop body" [ 1 ] cd.(2);
  (* the header re-executes under its own control *)
  Alcotest.(check (list int)) "loop header" [ 1 ] cd.(1);
  Alcotest.(check (list int)) "loop exit" [] cd.(3)

let test_bl_diamond () =
  let g = Graph.of_func (diamond ()) in
  let bl = BL.compute g in
  Alcotest.(check int) "two paths" 2 (BL.num_paths bl);
  let p0 = BL.blocks_of_path bl 0 and p1 = BL.blocks_of_path bl 1 in
  Alcotest.(check bool) "distinct" true (p0 <> p1);
  List.iter
    (fun p ->
      Alcotest.(check int) "starts at entry" 0 (List.hd p);
      Alcotest.(check int) "ends at exit" 3 (List.nth p (List.length p - 1)))
    [ p0; p1 ]

(* Simulate the interpreter's protocol over an explicit block walk and
   check the emitted path ids expand to exactly the blocks walked. *)
let simulate_walk bl walk =
  (* walk: (src, succ_ix, dst) list, starting at entry, ending at exit *)
  let emitted = ref [] in
  let sum = ref (BL.start_value bl ~node:0) in
  List.iter
    (fun (src, succ_ix, dst) ->
      if BL.is_break bl ~src ~succ_ix then begin
        emitted := (!sum + BL.finish_value bl ~src) :: !emitted;
        sum := BL.start_value bl ~node:dst
      end
      else sum := !sum + BL.edge_value bl ~src ~succ_ix)
    walk;
  let last_src = match List.rev walk with (_, _, d) :: _ -> d | [] -> 0 in
  emitted := (!sum + BL.finish_value bl ~src:last_src) :: !emitted;
  List.rev !emitted

let test_bl_loop_protocol () =
  let g = Graph.of_func (loop ()) in
  let bl = BL.compute g in
  (* execute: 0 ->1 ->2 ->1 ->2 ->1 ->3 (two loop iterations) *)
  let walk = [ (0, 0, 1); (1, 0, 2); (2, 0, 1); (1, 0, 2); (2, 0, 1); (1, 1, 3) ] in
  let ids = simulate_walk bl walk in
  let expanded = List.concat_map (BL.blocks_of_path bl) ids in
  Alcotest.(check (list int)) "expansion equals block trace"
    [ 0; 1; 2; 1; 2; 1; 3 ] expanded

let test_bl_call_breaks () =
  (* block 0 ends in a call, continuing at block 1 which returns *)
  let f =
    func_of_terminators [ Instr.Call (None, 0, [], 1); Instr.Ret None ]
  in
  let g = Graph.of_func f in
  Alcotest.(check (array bool)) "call block flag" [| true; false |]
    g.Graph.is_call_block;
  let bl = BL.compute g in
  Alcotest.(check bool) "call edge is a break" true
    (BL.is_break bl ~src:0 ~succ_ix:0);
  (* path ending at the call, then path from the continuation *)
  let ids = simulate_walk bl [ (0, 0, 1) ] in
  Alcotest.(check (list (list int))) "paths" [ [ 0 ]; [ 1 ] ]
    (List.map (BL.blocks_of_path bl) ids)

(* Property: over random structured programs, replaying the trace's path
   stream through blocks_of_path reproduces the exact block stream. This
   exercises back edges, call breaks and nesting together. *)
let random_minic_src rng =
  let depth_stmts = ref [] in
  let n = 2 + Wet_util.Prng.int rng 4 in
  for i = 0 to n - 1 do
    let body =
      match Wet_util.Prng.int rng 3 with
      | 0 -> Printf.sprintf "x = x + %d;" i
      | 1 -> Printf.sprintf "if (x %% 3 == %d) { x = x * 2; } else { x = x + 1; }" (i mod 3)
      | _ -> Printf.sprintf "var k%d = 0; while (k%d < %d) { x = x + k%d; k%d = k%d + 1; }" i i (2 + i) i i i
    in
    depth_stmts := body :: !depth_stmts
  done;
  Printf.sprintf
    {|
fn helper(a) {
  if (a <= 0) { return 1; }
  return a + helper(a - 2);
}
fn main() {
  var x = %d;
  %s
  x = x + helper(x %% 7);
  print(x);
}
|}
    (Wet_util.Prng.int rng 10)
    (String.concat "\n  " !depth_stmts)

let prop_paths_expand =
  QCheck.Test.make ~name:"path stream expands to block stream" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Wet_util.Prng.create seed in
      let src = random_minic_src rng in
      let prog = Wet_minic.Frontend.compile_exn src in
      let res = Wet_interp.Interp.run prog ~input:[||] in
      let tr = res.Wet_interp.Interp.trace in
      let module T = Wet_interp.Trace in
      let module PA = Wet_cfg.Program_analysis in
      let expanded = ref [] in
      Array.iter
        (fun e ->
          let f, pid = T.decode_path e in
          let bl = (PA.fn tr.T.analysis f).PA.bl in
          List.iter
            (fun b -> expanded := T.encode_block f b :: !expanded)
            (BL.blocks_of_path bl pid))
        tr.T.paths;
      Array.of_list (List.rev !expanded) = tr.T.blocks)


(* A function of [n] sequential diamonds has 2^n Ball-Larus paths; with
   enough of them the numbering must overflow its limit and break extra
   edges rather than produce absurd ids. The walk protocol must keep
   round-tripping. *)
let sequential_diamonds n =
  (* blocks: for diamond i: head=3i branch-> (3i+1 | 3i+2) -> head of
     i+1; last joins to a final ret block *)
  let nblocks = (3 * n) + 1 in
  let terms =
    List.init nblocks (fun b ->
        if b = nblocks - 1 then Instr.Ret None
        else
          match b mod 3 with
          | 0 -> Instr.Branch (0, b + 1, b + 2)
          | 1 -> Instr.Jump (b + 2)
          | _ -> Instr.Jump (b + 1))
  in
  func_of_terminators terms

let test_bl_small_diamonds () =
  let g = Graph.of_func (sequential_diamonds 10) in
  let bl = BL.compute g in
  Alcotest.(check int) "2^10 paths" 1024 (BL.num_paths bl);
  (* walk: always take the first arm *)
  let rec walk b acc =
    match g.Graph.succs.(b) with
    | [||] -> List.rev acc
    | succs -> walk succs.(0) ((b, 0, succs.(0)) :: acc)
  in
  let ids = simulate_walk bl (walk 0 []) in
  let expanded = List.concat_map (BL.blocks_of_path bl) ids in
  let expected = List.init (Array.length g.Graph.succs) (fun i -> i)
                 |> List.filter (fun b -> b mod 3 <> 2 || b = 3 * 10) in
  ignore expected;
  (* ground truth: the blocks actually walked *)
  let walked = 0 :: List.map (fun (_, _, d) -> d) (walk 0 []) in
  Alcotest.(check (list int)) "expansion equals walk" walked expanded

let test_bl_overflow_guard () =
  (* 60 diamonds would give 2^60 paths; the limit must kick in *)
  let g = Graph.of_func (sequential_diamonds 60) in
  let bl = BL.compute g in
  (* each start node's range is capped at the limit; the total over all
     break targets may be a small multiple of it, never 2^60 *)
  Alcotest.(check bool)
    (Printf.sprintf "paths bounded (%d)" (BL.num_paths bl))
    true
    (BL.num_paths bl <= 1 lsl 43);
  (* the protocol still reproduces an execution exactly *)
  let rec walk b acc =
    match g.Graph.succs.(b) with
    | [||] -> List.rev acc
    | succs ->
      let pick = if b mod 2 = 0 then 0 else Array.length succs - 1 in
      walk succs.(pick) ((b, pick, succs.(pick)) :: acc)
  in
  let moves = walk 0 [] in
  let ids = simulate_walk bl moves in
  let expanded = List.concat_map (BL.blocks_of_path bl) ids in
  let walked = 0 :: List.map (fun (_, _, d) -> d) moves in
  Alcotest.(check (list int)) "overflowed numbering still round-trips"
    walked expanded

(* Brute-force dominance on random graphs: a dominates b iff removing a
   makes b unreachable from the entry. *)
let brute_dominates (g : Graph.t) a b =
  if a = b then true
  else begin
    let seen = Array.make g.Graph.nblocks false in
    let rec go n =
      if n <> a && not seen.(n) then begin
        seen.(n) <- true;
        Array.iter go g.Graph.succs.(n)
      end
    in
    go g.Graph.entry;
    (not seen.(b)) && b <> g.Graph.entry
    || (b = g.Graph.entry && a = g.Graph.entry)
  end

let random_graph rng nblocks =
  (* every block i jumps/branches forward-ish so everything stays
     reachable; occasional back edges *)
  let terms =
    List.init nblocks (fun b ->
        if b = nblocks - 1 then Instr.Ret None
        else
          let t1 = b + 1 in
          match Wet_util.Prng.int rng 3 with
          | 0 -> Instr.Jump t1
          | 1 ->
            let t2 = Wet_util.Prng.int rng nblocks in
            Instr.Branch (0, t1, t2)
          | _ ->
            let t2 = min (nblocks - 1) (b + 1 + Wet_util.Prng.int rng 3) in
            Instr.Branch (0, t1, t2))
  in
  Graph.of_func (func_of_terminators terms)

let prop_dominance_matches_brute_force =
  QCheck.Test.make ~name:"dominators match reachability definition" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Wet_util.Prng.create (seed + 77) in
      let g = random_graph rng (4 + Wet_util.Prng.int rng 8) in
      let d = Dominance.dominators g in
      let reachable = Graph.reachable g in
      let ok = ref true in
      for a = 0 to g.Graph.nblocks - 1 do
        for b = 0 to g.Graph.nblocks - 1 do
          if reachable.(a) && reachable.(b) then begin
            let brute =
              if b = g.Graph.entry then a = b else brute_dominates g a b
            in
            if Dominance.dominates d a b <> brute then ok := false
          end
        done
      done;
      !ok)

let () =
  Alcotest.run "cfg"
    [
      ("graph", [ Alcotest.test_case "diamond" `Quick test_graph ]);
      ( "dominance",
        [
          Alcotest.test_case "dominators" `Quick test_dominators_diamond;
          Alcotest.test_case "postdominators" `Quick test_postdominators_diamond;
          QCheck_alcotest.to_alcotest prop_dominance_matches_brute_force;
        ] );
      ("control-dep", [ Alcotest.test_case "diamond+loop" `Quick test_control_dep ]);
      ( "ball-larus",
        [
          Alcotest.test_case "diamond" `Quick test_bl_diamond;
          Alcotest.test_case "loop protocol" `Quick test_bl_loop_protocol;
          Alcotest.test_case "call breaks" `Quick test_bl_call_breaks;
          Alcotest.test_case "sequential diamonds" `Quick test_bl_small_diamonds;
          Alcotest.test_case "overflow guard" `Quick test_bl_overflow_guard;
          QCheck_alcotest.to_alcotest prop_paths_expand;
        ] );
    ]
