module Table = Wet_report.Table
module Chart = Wet_report.Chart

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_table_layout () =
  let s =
    Table.render ~title:"T" ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "12345" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has title" true (contains s "T");
  Alcotest.(check bool) "has header" true (contains s "name");
  (* all non-empty lines are equally wide (aligned columns) *)
  let widths =
    List.filter_map
      (fun l -> if l = "" || l = "T" then None else Some (String.length l))
      lines
  in
  (match widths with
   | w :: rest ->
     List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
   | [] -> Alcotest.fail "no lines");
  (* numeric column is right-aligned: the short value is padded left *)
  Alcotest.(check bool) "right aligned" true (contains s "      1")

let test_table_align_override () =
  let s =
    Table.render ~align:Table.[ Left; Left ] ~title:"x"
      ~header:[ "a"; "b" ]
      [ [ "1"; "2" ] ]
  in
  Alcotest.(check bool) "left aligned value" true (contains s "1  2")

let test_formatters () =
  Alcotest.(check string) "f1" "3.1" (Table.f1 3.14159);
  Alcotest.(check string) "f2" "3.14" (Table.f2 3.14159);
  Alcotest.(check string) "millions" "2.50" (Table.millions 2_500_000);
  Alcotest.(check string) "i" "42" (Table.i 42)

let test_stacked_chart () =
  let s =
    Chart.stacked ~title:"F" ~width:40
      ~legend:[ ('a', "first"); ('b', "second") ]
      [ ("row", [ 1.; 3. ]) ]
  in
  Alcotest.(check bool) "legend" true (contains s "a = first");
  Alcotest.(check bool) "percentages" true (contains s "25.0%");
  Alcotest.(check bool) "bar chars" true (contains s "ab");
  (* segments fill the width exactly *)
  let bar_line =
    List.find (fun l -> contains l "|") (String.split_on_char '\n' s)
  in
  let between =
    let i1 = String.index bar_line '|' in
    let i2 = String.index_from bar_line (i1 + 1) '|' in
    i2 - i1 - 1
  in
  Alcotest.(check int) "full width" 40 between

let test_stacked_degenerate () =
  (* all-zero rows must not crash or divide by zero *)
  let s =
    Chart.stacked ~title:"F" ~width:10 ~legend:[ ('x', "only") ]
      [ ("zero", [ 0.; 0. ]) ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_series_chart () =
  let s =
    Chart.series ~title:"S" ~ylabel:"x"
      [ ("p1", 10.); ("p2", 20.); ("p3", 5.) ]
  in
  Alcotest.(check bool) "contains values" true (contains s "20.0");
  (* the largest value gets the longest bar *)
  let bar l =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 l
  in
  let lines = String.split_on_char '\n' s in
  let get p = bar (List.find (fun l -> contains l p) lines) in
  Alcotest.(check bool) "p2 longest" true (get "p2" > get "p1");
  Alcotest.(check bool) "p3 shortest" true (get "p3" < get "p1")

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "layout" `Quick test_table_layout;
          Alcotest.test_case "alignment override" `Quick test_table_align_override;
          Alcotest.test_case "formatters" `Quick test_formatters;
        ] );
      ( "chart",
        [
          Alcotest.test_case "stacked" `Quick test_stacked_chart;
          Alcotest.test_case "stacked degenerate" `Quick test_stacked_degenerate;
          Alcotest.test_case "series" `Quick test_series_chart;
        ] );
    ]
