type t = {
  name : string;
  description : string;
  source : string;
  default_scale : int;
  timing_scale : int;
  seed : int;
}

let mk name description source default_scale timing_scale seed =
  { name; description; source; default_scale; timing_scale; seed }

let all =
  [
    mk "099.go" "board-game evaluation; branchy, irregular control flow"
      Sources.go 175 45 11;
    mk "126.gcc" "expression compilation with an operator-precedence stack"
      Sources.gcc 1300 330 23;
    mk "130.li" "lisp interpreter: cons cells, deep recursion"
      Sources.li 600 150 37;
    mk "164.gzip" "LZ77 sliding-window compression; high value repetition"
      Sources.gzip 4 1 41;
    mk "181.mcf" "shortest-path relaxations over a sparse flow network"
      Sources.mcf 4 1 53;
    mk "197.parser" "tokeniser and recursive-descent sentence parser"
      Sources.parser 3600 900 67;
    mk "255.vortex" "object store: hash-table insert/lookup/delete"
      Sources.vortex 14000 3500 71;
    mk "256.bzip2" "block sort, move-to-front and run-length coding"
      Sources.bzip2 4 1 83;
    mk "300.twolf" "placement by simulated annealing on a grid"
      Sources.twolf 36 9 97;
  ]

let find name =
  let matches w =
    String.equal w.name name
    || String.length name < String.length w.name
       && String.equal name
            (String.sub w.name
               (String.length w.name - String.length name)
               (String.length name))
  in
  List.find matches all

let compile w = Wet_minic.Frontend.compile_exn w.source

let input w ~scale = [| scale; w.seed |]

let run ?scale w =
  let scale = Option.value scale ~default:w.default_scale in
  Wet_interp.Interp.run (compile w) ~input:(input w ~scale)
