(* The nine benchmark programs, named after the paper's SpecInt suite.
   Each echoes the control-flow and value-locality character of its
   namesake at laptop scale. Every program first reads a scale parameter
   and a PRNG seed from the input stream; all further "randomness" comes
   from an in-language linear congruential generator so runs are
   deterministic and scale linearly. *)

(* Shared PRNG: seed' = (seed * 1103515245 + 12345) mod 2^31. *)
let prng =
  {|
global rng_state;

fn rng_next(bound) {
  rng_state = ((rng_state * 1103515245) + 12345) & 2147483647;
  return rng_state % bound;
}
|}

(* 099.go — board-game evaluation: a 19x19 board, stone placement and
   liberty counting. Complex, data-dependent control flow. *)
let go =
  prng
  ^ {|
global board[361];

fn liberties(p) {
  var libs = 0;
  var row = p / 19;
  var col = p % 19;
  if (row > 0) { if (board[p - 19] == 0) { libs = libs + 1; } }
  if (row < 18) { if (board[p + 19] == 0) { libs = libs + 1; } }
  if (col > 0) { if (board[p - 1] == 0) { libs = libs + 1; } }
  if (col < 18) { if (board[p + 1] == 0) { libs = libs + 1; } }
  return libs;
}

fn evaluate() {
  var score = 0;
  var p = 0;
  while (p < 361) {
    var s = board[p];
    if (s != 0) {
      var l = liberties(p);
      if (l == 0) {
        board[p] = 0;          // capture
        if (s == 1) { score = score - 10; } else { score = score + 10; }
      } else {
        if (s == 1) { score = score + l; } else { score = score - l; }
      }
    }
    p = p + 1;
  }
  return score;
}

fn main() {
  var moves = input();
  rng_state = input();
  var side = 1;
  var m = 0;
  var total = 0;
  while (m < moves) {
    var p = rng_next(361);
    if (board[p] == 0) {
      board[p] = side;
      side = 3 - side;
    }
    total = total + evaluate();
    m = m + 1;
  }
  print(total);
}
|}

(* 126.gcc — compiler-like: tokenise a pseudo-random expression stream
   and evaluate it with an operator-precedence stack machine. Many small
   functions and dispatch-style branching. *)
let gcc =
  prng
  ^ {|
global val_stack[128];
global op_stack[128];
global vsp;
global osp;

fn prec(op) {
  if (op == 1) { return 1; }      // +
  if (op == 2) { return 1; }      // -
  if (op == 3) { return 2; }      // *
  if (op == 4) { return 2; }      // /
  return 0;
}

fn apply(op, a, b) {
  if (op == 1) { return a + b; }
  if (op == 2) { return a - b; }
  if (op == 3) { return a * b; }
  if (b == 0) { return a; }
  return a / b;
}

fn reduce() {
  var op = op_stack[osp - 1];
  var b = val_stack[vsp - 1];
  var a = val_stack[vsp - 2];
  osp = osp - 1;
  vsp = vsp - 2;
  val_stack[vsp] = apply(op, a, b);
  vsp = vsp + 1;
  return 0;
}

fn push_op(op) {
  while (osp > 0 && prec(op_stack[osp - 1]) >= prec(op)) {
    reduce();
  }
  op_stack[osp] = op;
  osp = osp + 1;
  return 0;
}

fn eval_expr(len) {
  vsp = 0;
  osp = 0;
  val_stack[vsp] = rng_next(1000);
  vsp = vsp + 1;
  var i = 0;
  while (i < len) {
    push_op(1 + rng_next(4));
    val_stack[vsp] = rng_next(1000);
    vsp = vsp + 1;
    i = i + 1;
  }
  while (osp > 0) { reduce(); }
  return val_stack[0];
}

fn main() {
  var exprs = input();
  rng_state = input();
  var total = 0;
  var e = 0;
  while (e < exprs) {
    total = total + eval_expr(3 + rng_next(12));
    e = e + 1;
  }
  print(total);
}
|}

(* 130.li — a tiny lisp: cons cells in a global heap, recursive list
   construction and reduction. Recursion-heavy, pointer-chasing. *)
let li =
  prng
  ^ {|
global car_[65536];
global cdr_[65536];
global hp;

fn cons(a, d) {
  var c = hp;
  car_[c] = a;
  cdr_[c] = d;
  hp = hp + 1;
  if (hp >= 65536) { hp = 1; }   // wrap: primitive heap reuse
  return c;
}

fn build_list(n) {
  if (n == 0) { return 0; }
  return cons(rng_next(100), build_list(n - 1));
}

fn sum_list(l) {
  if (l == 0) { return 0; }
  return car_[l] + sum_list(cdr_[l]);
}

fn map_double(l) {
  if (l == 0) { return 0; }
  return cons(car_[l] * 2, map_double(cdr_[l]));
}

fn rev_append(l, acc) {
  if (l == 0) { return acc; }
  return rev_append(cdr_[l], cons(car_[l], acc));
}

fn main() {
  var iters = input();
  rng_state = input();
  hp = 1;
  var total = 0;
  var i = 0;
  while (i < iters) {
    var l = build_list(8 + rng_next(24));
    var d = map_double(l);
    var r = rev_append(d, 0);
    total = total + sum_list(r);
    i = i + 1;
  }
  print(total);
}
|}

(* 164.gzip — LZ77-style sliding-window match search over a synthetic
   buffer with high repetition; emits (distance, length) pairs. *)
let gzip =
  prng
  ^ {|
global buf[16384];
global outdist[16384];
global outlen[16384];

fn fill(n) {
  var i = 0;
  while (i < n) {
    if (rng_next(4) == 0) {
      buf[i] = rng_next(32);
      i = i + 1;
    } else {
      // copy an earlier run to create matches
      var len = 4 + rng_next(12);
      var back = 1 + rng_next(64);
      var j = 0;
      while (j < len && i < n) {
        if (i >= back) { buf[i] = buf[i - back]; } else { buf[i] = 7; }
        i = i + 1;
        j = j + 1;
      }
    }
  }
  return 0;
}

fn best_match(pos, n) {
  var best_len = 0;
  var best_dist = 0;
  var dist = 1;
  while (dist <= 64 && dist <= pos) {
    var len = 0;
    while (len < 16 && pos + len < n && buf[pos + len] == buf[pos - dist + len]) {
      len = len + 1;
    }
    if (len > best_len) {
      best_len = len;
      best_dist = dist;
    }
    dist = dist + 1;
  }
  return best_dist * 256 + best_len;
}

fn main() {
  var blocks = input();
  rng_state = input();
  var n = 2048;
  var total = 0;
  var b = 0;
  while (b < blocks) {
    fill(n);
    var pos = 0;
    var emitted = 0;
    while (pos < n) {
      var m = best_match(pos, n);
      var len = m % 256;
      if (len >= 3) {
        outdist[emitted] = m / 256;
        outlen[emitted] = len;
        pos = pos + len;
      } else {
        outdist[emitted] = 0;
        outlen[emitted] = buf[pos];
        pos = pos + 1;
      }
      emitted = emitted + 1;
    }
    total = total + emitted;
    b = b + 1;
  }
  print(total);
}
|}

(* 181.mcf — network simplex stand-in: Bellman-Ford relaxations over a
   synthetic sparse flow network. Array indirection, numeric. *)
let mcf =
  prng
  ^ {|
global arc_src[8192];
global arc_dst[8192];
global arc_cost[8192];
global dist[1024];

fn relax_all(narcs) {
  var changed = 0;
  var a = 0;
  while (a < narcs) {
    var u = arc_src[a];
    var v = arc_dst[a];
    var du = dist[u];
    if (du < 1000000000) {
      var nd = du + arc_cost[a];
      if (nd < dist[v]) {
        dist[v] = nd;
        changed = changed + 1;
      }
    }
    a = a + 1;
  }
  return changed;
}

fn main() {
  var rounds = input();
  rng_state = input();
  var nodes = 1024;
  var narcs = 2048;
  var a = 0;
  while (a < narcs) {
    arc_src[a] = rng_next(nodes);
    arc_dst[a] = rng_next(nodes);
    arc_cost[a] = 1 + rng_next(100);
    a = a + 1;
  }
  var total = 0;
  var r = 0;
  while (r < rounds) {
    var i = 0;
    while (i < nodes) { dist[i] = 1000000000; i = i + 1; }
    dist[rng_next(nodes)] = 0;
    var pass = 0;
    var changed = 1;
    while (pass < 8 && changed > 0) {
      changed = relax_all(narcs);
      pass = pass + 1;
    }
    total = total + dist[rng_next(nodes)] % 1000;
    // perturb a few arcs so rounds differ
    var k = 0;
    while (k < 32) {
      arc_cost[rng_next(narcs)] = 1 + rng_next(100);
      k = k + 1;
    }
    r = r + 1;
  }
  print(total);
}
|}

(* 197.parser — table-driven tokeniser plus recursive-descent parsing of
   a synthetic sentence grammar. State-machine control flow. *)
let parser =
  prng
  ^ {|
global toks[4096];
global ntoks;
global cur;

// token kinds: 0 noun, 1 verb, 2 adj, 3 det, 4 conj, 5 end
fn gen_sentence(depth) {
  if (ntoks >= 4000) { return 0; }
  toks[ntoks] = 3;  ntoks = ntoks + 1;          // det
  var adjs = rng_next(3);
  var a = 0;
  while (a < adjs) { toks[ntoks] = 2; ntoks = ntoks + 1; a = a + 1; }
  toks[ntoks] = 0;  ntoks = ntoks + 1;          // noun
  toks[ntoks] = 1;  ntoks = ntoks + 1;          // verb
  if (depth > 0 && rng_next(3) == 0) {
    toks[ntoks] = 4; ntoks = ntoks + 1;         // conj
    gen_sentence(depth - 1);
    return 0;
  }
  toks[ntoks] = 5;  ntoks = ntoks + 1;          // end
  return 0;
}

fn accept(kind) {
  if (cur < ntoks && toks[cur] == kind) {
    cur = cur + 1;
    return 1;
  }
  return 0;
}

fn parse_np() {
  var score = 0;
  if (accept(3)) { score = 1; }
  while (accept(2)) { score = score + 1; }
  if (accept(0)) { score = score + 2; }
  return score;
}

fn parse_sentence() {
  var score = parse_np();
  if (accept(1)) { score = score + 3; }
  if (accept(4)) { return score + parse_sentence(); }
  if (accept(5)) { return score; }
  return score - 5;   // parse error
}

fn main() {
  var sentences = input();
  rng_state = input();
  var total = 0;
  var s = 0;
  while (s < sentences) {
    ntoks = 0;
    cur = 0;
    gen_sentence(4);
    total = total + parse_sentence();
    s = s + 1;
  }
  print(total);
}
|}

(* 255.vortex — object store: open-hash table with chained insert,
   lookup and delete of records. Call-heavy. *)
let vortex =
  prng
  ^ {|
global hash_head[1024];
global rec_key[16384];
global rec_val[16384];
global rec_next[16384];
global free_head;

fn hash(k) { return ((k * 2654435761) & 2147483647) % 1024; }

fn insert(k, v) {
  var slot = free_head;
  if (slot == 0) { return 0; }
  free_head = rec_next[slot];
  var h = hash(k);
  rec_key[slot] = k;
  rec_val[slot] = v;
  rec_next[slot] = hash_head[h];
  hash_head[h] = slot;
  return slot;
}

fn lookup(k) {
  var p = hash_head[hash(k)];
  while (p != 0) {
    if (rec_key[p] == k) { return rec_val[p]; }
    p = rec_next[p];
  }
  return -1;
}

fn remove(k) {
  var h = hash(k);
  var p = hash_head[h];
  var prev = 0;
  while (p != 0) {
    if (rec_key[p] == k) {
      if (prev == 0) { hash_head[h] = rec_next[p]; }
      else { rec_next[prev] = rec_next[p]; }
      rec_next[p] = free_head;
      free_head = p;
      return 1;
    }
    prev = p;
    p = rec_next[p];
  }
  return 0;
}

fn main() {
  var ops = input();
  rng_state = input();
  // free list over records 1..16383 (0 is the null sentinel)
  var i = 1;
  while (i < 16383) { rec_next[i] = i + 1; i = i + 1; }
  rec_next[16383] = 0;
  free_head = 1;
  var total = 0;
  var o = 0;
  while (o < ops) {
    var k = rng_next(5000);
    var action = rng_next(10);
    if (action < 5) { insert(k, o); }
    else if (action < 9) { total = total + lookup(k); }
    else { total = total + remove(k); }
    o = o + 1;
  }
  print(total);
}
|}

(* 256.bzip2 — block transform: counting sort, move-to-front and
   run-length encoding over repetitive blocks. Tight regular loops. *)
let bzip2 =
  prng
  ^ {|
global block[8192];
global sorted[8192];
global counts[256];
global mtf[256];

fn counting_sort(n) {
  var i = 0;
  while (i < 256) { counts[i] = 0; i = i + 1; }
  i = 0;
  while (i < n) { counts[block[i]] = counts[block[i]] + 1; i = i + 1; }
  var c = 1;
  while (c < 256) { counts[c] = counts[c] + counts[c - 1]; c = c + 1; }
  i = n - 1;
  while (i >= 0) {
    var v = block[i];
    counts[v] = counts[v] - 1;
    sorted[counts[v]] = v;
    i = i - 1;
  }
  return 0;
}

fn mtf_encode(n) {
  var i = 0;
  while (i < 256) { mtf[i] = i; i = i + 1; }
  var sum = 0;
  i = 0;
  while (i < n) {
    var v = sorted[i];
    var j = 0;
    while (mtf[j] != v) { j = j + 1; }
    sum = sum + j;
    while (j > 0) { mtf[j] = mtf[j - 1]; j = j - 1; }
    mtf[0] = v;
    i = i + 1;
  }
  return sum;
}

fn rle(n) {
  var runs = 0;
  var i = 0;
  while (i < n) {
    var v = sorted[i];
    var j = i;
    while (j < n && sorted[j] == v) { j = j + 1; }
    runs = runs + 1;
    i = j;
  }
  return runs;
}

fn main() {
  var blocks = input();
  rng_state = input();
  var n = 2048;
  var total = 0;
  var b = 0;
  while (b < blocks) {
    var i = 0;
    var sym = rng_next(200);
    while (i < n) {
      // runs of repeated symbols from a small alphabet
      if (rng_next(5) == 0) { sym = rng_next(200); }
      block[i] = sym;
      i = i + 1;
    }
    counting_sort(n);
    total = total + mtf_encode(n) + rle(n);
    b = b + 1;
  }
  print(total);
}
|}

(* 300.twolf — placement by simulated annealing: random cell swaps on a
   grid, incremental wire-length cost, probabilistic accept. *)
let twolf =
  prng
  ^ {|
global cell_x[512];
global cell_y[512];
global net_a[1024];
global net_b[1024];

fn net_cost(n) {
  var a = net_a[n];
  var b = net_b[n];
  var dx = cell_x[a] - cell_x[b];
  var dy = cell_y[a] - cell_y[b];
  if (dx < 0) { dx = -dx; }
  if (dy < 0) { dy = -dy; }
  return dx + dy;
}

fn total_cost() {
  var c = 0;
  var n = 0;
  while (n < 1024) { c = c + net_cost(n); n = n + 1; }
  return c;
}

fn main() {
  var moves = input();
  rng_state = input();
  var i = 0;
  while (i < 512) {
    cell_x[i] = rng_next(64);
    cell_y[i] = rng_next(64);
    i = i + 1;
  }
  i = 0;
  while (i < 1024) {
    net_a[i] = rng_next(512);
    net_b[i] = rng_next(512);
    i = i + 1;
  }
  var cost = total_cost();
  var temp = 1000;
  var m = 0;
  while (m < moves) {
    var c = rng_next(512);
    var ox = cell_x[c];
    var oy = cell_y[c];
    cell_x[c] = rng_next(64);
    cell_y[c] = rng_next(64);
    var nc = total_cost();
    var accept = 0;
    if (nc <= cost) { accept = 1; }
    else if (rng_next(1000) < temp) { accept = 1; }
    if (accept == 1) { cost = nc; }
    else {
      cell_x[c] = ox;
      cell_y[c] = oy;
    }
    if (temp > 1) { temp = temp - 1; }
    m = m + 1;
  }
  print(cost);
}
|}
