(** The benchmark registry: nine deterministic MiniC programs named
    after the paper's SpecInt 95/2000 benchmarks (Table 1), each echoing
    the control-flow and value-locality character of its namesake.

    Every program consumes exactly two input values — a scale parameter
    (iterations / moves / blocks) and a PRNG seed — and derives all
    further data from an in-language linear congruential generator, so a
    run is a pure function of [(scale, seed)] and statement counts grow
    linearly with [scale]. *)

type t = {
  name : string;  (** the paper's benchmark name, e.g. ["099.go"] *)
  description : string;
  source : string;  (** MiniC source text *)
  default_scale : int;
      (** scale producing roughly the default evaluation length *)
  timing_scale : int;  (** smaller scale for the timing tables (§5.2) *)
  seed : int;
}

(** All nine, in the paper's order. *)
val all : t list

(** Look up by name ("099.go") or suffix ("go"). @raise Not_found. *)
val find : string -> t

(** Compile the MiniC source. *)
val compile : t -> Wet_ir.Program.t

(** The two-element input stream for a given scale. *)
val input : t -> scale:int -> int array

(** Compile and run, recording a trace. [scale] defaults to
    [default_scale]. *)
val run : ?scale:int -> t -> Wet_interp.Interp.result
