lib/workloads/sources.ml:
