lib/workloads/spec.mli: Wet_interp Wet_ir
