lib/workloads/spec.ml: List Option Sources String Wet_interp Wet_minic
