(** Raw whole-execution traces.

    The interpreter (the stand-in for the paper's Trimaran simulator)
    produces one of these; the WET builder consumes it. A trace records,
    in exact dynamic order:

    {ul
    {- one entry per {e completed Ball–Larus path} ({!field-paths}) — path
       completion order equals block order because calls and back edges
       both end paths, so the timestamp of a path execution is simply its
       index here (plus one);}
    {- one entry per {e block execution} ({!field-blocks},
       {!field-cd_producer});}
    {- one entry per {e statement execution} ({!field-values});}
    {- one entry per {e dynamic dependence slot}
       ({!field-deps}, see {!Wet_ir.Instr.dyn_use_count});}
    {- one entry per {e memory access} ({!field-mem_ops}).}}

    Producer references are {e dynamic statement positions}: the index of
    the producing statement execution in the global statement stream. *)

type t = {
  analysis : Wet_cfg.Program_analysis.t;
  paths : int array;  (** encoded (func, path id); see {!encode_path} *)
  blocks : int array;  (** encoded (func, block) per block execution *)
  cd_producer : int array;
      (** per block execution: dynamic position of the branch instance
          this execution is control dependent on, or [-1] *)
  values : int array;
      (** indexed by dynamic position. For statements without a def port
          this is 0, except stores (the stored value) and value-carrying
          returns (the returned value) — both act as producers whose
          positions must resolve to an operand value. *)
  deps : int array;
      (** producer positions, one per dependence slot, in execution
          order; [-1] when the operand was never written (initial zero) *)
  mem_ops : int array;  (** per load/store: [addr lsl 1 lor is_store] *)
  outputs : int array;
  nstmts : int;  (** total statement executions *)
}

(** [encode_path f id] packs a function id and a path id in one int. *)
val encode_path : int -> int -> int

(** Inverse of {!encode_path}. *)
val decode_path : int -> int * int

(** [encode_block f b] packs a function id and a block label. *)
val encode_block : int -> int -> int

val decode_block : int -> int * int

(** Number of block executions. *)
val num_block_execs : t -> int

(** Number of path executions (= number of WET timestamps after the
    Ball–Larus transformation). *)
val num_path_execs : t -> int

(** The program the trace was produced from. *)
val program : t -> Wet_ir.Program.t
