lib/interp/interp.ml: Array Fmt Func Instr List Program Trace Wet_cfg Wet_ir Wet_util
