lib/interp/interp.mli: Trace Wet_cfg Wet_ir
