lib/interp/trace.ml: Array Wet_cfg
