lib/interp/trace.mli: Wet_cfg Wet_ir
