type t = {
  analysis : Wet_cfg.Program_analysis.t;
  paths : int array;
  blocks : int array;
  cd_producer : int array;
  values : int array;
  deps : int array;
  mem_ops : int array;
  outputs : int array;
  nstmts : int;
}

(* 20 bits of function id, 41 bits of path/block id. *)
let shift = 41

let encode_path f id = (f lsl shift) lor id

let decode_path e = (e lsr shift, e land ((1 lsl shift) - 1))

let encode_block = encode_path

let decode_block = decode_path

let num_block_execs t = Array.length t.blocks

let num_path_execs t = Array.length t.paths

let program t = t.analysis.Wet_cfg.Program_analysis.program
