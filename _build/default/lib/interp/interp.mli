(** The IR interpreter — the repository's stand-in for the paper's
    simulator-based profiler. It executes a program on a given input
    stream and records the raw whole-execution trace the WET builder
    consumes ({!Trace.t}): block/path events, produced values, dynamic
    data/control dependences and memory accesses, with no instrumentation
    of the program itself.

    Semantics notes: registers and memory words start at 0; arithmetic is
    63-bit OCaml [int] arithmetic; shift amounts are masked to 6 bits (63 saturates);
    [Shr] is arithmetic; division or remainder by zero, out-of-bounds
    memory accesses, exhausted input and exceeded statement budgets all
    raise {!Runtime_error}. *)

exception Runtime_error of string

type result = {
  trace : Trace.t;
  outputs : int array;  (** values passed to [Output], in order *)
  stmts_executed : int;
}

(** [run program ~input] executes [program] from [main].

    @param max_stmts statement budget (default [2_000_000_000]).
    @param interprocedural_cd record the calling statement's instance as
      the control-dependence producer of blocks with no intraprocedural
      parent (function entries and unconditional prologue blocks).
      Default [false], matching the paper's intraprocedural control
      dependence; turning it on makes backward slices pull in the full
      calling context.
    @param analysis reuse a precomputed {!Wet_cfg.Program_analysis.t}
      instead of analysing [program] again.
    @raise Runtime_error on any dynamic error. *)
val run :
  ?max_stmts:int ->
  ?interprocedural_cd:bool ->
  ?analysis:Wet_cfg.Program_analysis.t ->
  Wet_ir.Program.t ->
  input:int array ->
  result

(** [outputs_only program ~input] runs without recording a trace — a
    fast path for program-correctness tests and native-speed baselines.
    @raise Runtime_error as {!run}. *)
val outputs_only :
  ?max_stmts:int -> Wet_ir.Program.t -> input:int array -> int array
