module Instr = Wet_ir.Instr
module Func = Wet_ir.Func

(* A statement is removable if it only defines a register and evaluating
   it can have no observable effect. *)
let removable (ins : Instr.t) =
  match ins with
  | Instr.Const _ | Instr.Move _ | Instr.Cmp _ | Instr.Unop _ -> true
  | Instr.Binop ((Instr.Div | Instr.Rem), _, _, _) -> false (* may trap *)
  | Instr.Binop _ -> true
  | Instr.Load _ (* may trap on a bad address *)
  | Instr.Store _ | Instr.Input _ | Instr.Output _ | Instr.Call _
  | Instr.Branch _ | Instr.Jump _ | Instr.Ret _ | Instr.Halt -> false

let dead_code (fn : Func.t) =
  let changed = ref true in
  let blocks = ref fn.Func.blocks in
  while !changed do
    changed := false;
    let used = Array.make fn.Func.nregs false in
    Array.iter
      (fun (b : Func.block) ->
        Array.iter
          (fun ins -> List.iter (fun r -> used.(r) <- true) (Instr.uses ins))
          b.Func.instrs)
      !blocks;
    blocks :=
      Array.map
        (fun (b : Func.block) ->
          let keep ins =
            match Instr.def ins with
            | Some r when removable ins && not used.(r) ->
              changed := true;
              false
            | Some _ | None -> true
          in
          let instrs = Array.of_list (List.filter keep (Array.to_list b.Func.instrs)) in
          { Func.instrs })
        !blocks
  done;
  { fn with Func.blocks = !blocks }

(* Follow chains of blocks containing only a [Jump]. *)
let thread_target (blocks : Func.block array) start =
  let rec follow seen b =
    if List.mem b seen then b
    else
      match blocks.(b).Func.instrs with
      | [| Instr.Jump next |] -> follow (b :: seen) next
      | _ -> b
  in
  follow [] start

let retarget f (ins : Instr.t) : Instr.t =
  match ins with
  | Instr.Branch (r, b1, b2) ->
    let b1 = f b1 and b2 = f b2 in
    if b1 = b2 then Instr.Jump b1 else Instr.Branch (r, b1, b2)
  | Instr.Jump b -> Instr.Jump (f b)
  | Instr.Call (dst, callee, args, cont) -> Instr.Call (dst, callee, args, f cont)
  | _ -> ins

let simplify_cfg (fn : Func.t) =
  (* 1. jump threading *)
  let blocks =
    Array.map
      (fun (b : Func.block) ->
        let n = Array.length b.Func.instrs in
        let instrs = Array.copy b.Func.instrs in
        instrs.(n - 1) <- retarget (thread_target fn.Func.blocks) instrs.(n - 1);
        { Func.instrs })
      fn.Func.blocks
  in
  (* 2. drop unreachable blocks, compacting labels (entry stays 0) *)
  let nblocks = Array.length blocks in
  let reachable = Array.make nblocks false in
  let rec mark b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      match blocks.(b).Func.instrs.(Array.length blocks.(b).Func.instrs - 1) with
      | Instr.Branch (_, b1, b2) ->
        mark b1;
        mark b2
      | Instr.Jump b' -> mark b'
      | Instr.Call (_, _, _, cont) -> mark cont
      | _ -> ()
    end
  in
  mark fn.Func.entry;
  let remap = Array.make nblocks (-1) in
  let next = ref 0 in
  for b = 0 to nblocks - 1 do
    if reachable.(b) then begin
      remap.(b) <- !next;
      incr next
    end
  done;
  let survivors =
    Array.of_list
      (List.filteri
         (fun b _ -> reachable.(b))
         (Array.to_list blocks))
  in
  let survivors =
    Array.map
      (fun (b : Func.block) ->
        let n = Array.length b.Func.instrs in
        let instrs = Array.copy b.Func.instrs in
        instrs.(n - 1) <- retarget (fun l -> remap.(l)) instrs.(n - 1);
        { Func.instrs })
      survivors
  in
  { fn with Func.blocks = survivors; entry = remap.(fn.Func.entry) }
