(** The optimisation pipeline.

    Level 0 returns the program unchanged; level 1 runs, per function,
    rounds of (copy propagation → constant folding → local CSE → dead
    code → CFG simplification) until a fixpoint or the round limit, then
    revalidates the whole program. Optimisation is semantics-preserving:
    identical outputs, inputs consumed and traps (property-tested against
    the interpreter on every bundled workload). *)

(** @raise Invalid_argument if the optimised program fails validation
    (which would indicate a pass bug; always a defect, never expected). *)
val optimize : ?level:int -> Wet_ir.Program.t -> Wet_ir.Program.t

(** Per-function statement counts [(before, after)], for reporting. *)
val shrinkage : Wet_ir.Program.t -> Wet_ir.Program.t -> (int * int) list
