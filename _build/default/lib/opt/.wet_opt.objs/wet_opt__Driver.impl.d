lib/opt/driver.ml: Array Global List Local Wet_ir
