lib/opt/local.mli: Wet_ir
