lib/opt/global.mli: Wet_ir
