lib/opt/global.ml: Array List Wet_ir
