lib/opt/driver.mli: Wet_ir
