lib/opt/local.ml: Array Hashtbl List Option Wet_ir
