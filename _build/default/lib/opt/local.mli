(** Block-local optimisations: constant folding, algebraic
    simplification, copy propagation and local common-subexpression
    elimination.

    These model the scalar optimisations Trimaran's front end applies
    before profiling; running them before tracing changes the statement
    mix the WET sees (fewer trivially-redundant value sequences), which
    the bench harness measures as an ablation.

    All passes are semantics-preserving, including for traps: folding a
    division only happens when the divisor is a non-zero constant, and
    loads/stores are never removed or reordered. *)

(** Fold constants and simplify algebra within each block. Replaces
    foldable [Binop]/[Cmp]/[Unop]/[Move] statements with [Const] (or a
    cheaper equivalent); never removes statements. *)
val constant_fold : Wet_ir.Func.t -> Wet_ir.Func.t

(** Rewrite uses of registers holding copies ([Move]) to their source
    within each block. *)
val copy_propagate : Wet_ir.Func.t -> Wet_ir.Func.t

(** Replace repeated pure computations of the same expression within a
    block by a [Move] from the first result. *)
val local_cse : Wet_ir.Func.t -> Wet_ir.Func.t
