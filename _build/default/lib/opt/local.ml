module Instr = Wet_ir.Instr
module Func = Wet_ir.Func
module Eval = Wet_ir.Eval

(* Rewrite every use register of a statement. *)
let map_uses f (ins : Instr.t) : Instr.t =
  match ins with
  | Instr.Const _ | Instr.Input _ | Instr.Jump _ | Instr.Ret None
  | Instr.Halt -> ins
  | Instr.Move (r, a) -> Instr.Move (r, f a)
  | Instr.Binop (op, r, a, b) -> Instr.Binop (op, r, f a, f b)
  | Instr.Cmp (op, r, a, b) -> Instr.Cmp (op, r, f a, f b)
  | Instr.Unop (op, r, a) -> Instr.Unop (op, r, f a)
  | Instr.Load (r, a) -> Instr.Load (r, f a)
  | Instr.Store (a, v) -> Instr.Store (f a, f v)
  | Instr.Output a -> Instr.Output (f a)
  | Instr.Call (dst, callee, args, cont) ->
    Instr.Call (dst, callee, List.map f args, cont)
  | Instr.Branch (a, b1, b2) -> Instr.Branch (f a, b1, b2)
  | Instr.Ret (Some a) -> Instr.Ret (Some (f a))

let map_blocks f (fn : Func.t) =
  { fn with Func.blocks = Array.map (fun b -> { Func.instrs = f b.Func.instrs }) fn.Func.blocks }

(* ------------------------------------------------------------------ *)
(* Constant folding + algebraic simplification                         *)
(* ------------------------------------------------------------------ *)

let constant_fold fn =
  let fold_block instrs =
    let consts : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let lookup r = Hashtbl.find_opt consts r in
    let define r value =
      match value with
      | Some v -> Hashtbl.replace consts r v
      | None -> Hashtbl.remove consts r
    in
    Array.map
      (fun ins ->
        let ins' =
          match ins with
          | Instr.Move (r, a) -> (
            match lookup a with
            | Some v -> Instr.Const (r, v)
            | None -> ins)
          | Instr.Binop (op, r, a, b) -> (
            match (lookup a, lookup b) with
            | Some va, Some vb -> (
              match Eval.binop op va vb with
              | Some v -> Instr.Const (r, v)
              | None -> ins (* folding a trap would change semantics *))
            | ca, cb -> (
              (* algebraic identities that cannot trap *)
              match (op, ca, cb) with
              | Instr.Add, Some 0, _ -> Instr.Move (r, b)
              | Instr.Add, _, Some 0 -> Instr.Move (r, a)
              | Instr.Sub, _, Some 0 -> Instr.Move (r, a)
              | Instr.Sub, _, _ when a = b -> Instr.Const (r, 0)
              | Instr.Mul, Some 1, _ -> Instr.Move (r, b)
              | Instr.Mul, _, Some 1 -> Instr.Move (r, a)
              | Instr.Mul, Some 0, _ | Instr.Mul, _, Some 0 ->
                Instr.Const (r, 0)
              | Instr.Div, _, Some 1 -> Instr.Move (r, a)
              | Instr.Xor, _, _ when a = b -> Instr.Const (r, 0)
              | (Instr.And | Instr.Or), _, _ when a = b -> Instr.Move (r, a)
              | Instr.Or, Some 0, _ -> Instr.Move (r, b)
              | Instr.Or, _, Some 0 -> Instr.Move (r, a)
              | Instr.And, Some 0, _ | Instr.And, _, Some 0 ->
                Instr.Const (r, 0)
              | (Instr.Shl | Instr.Shr), _, Some 0 -> Instr.Move (r, a)
              | _ -> ins))
          | Instr.Cmp (op, r, a, b) -> (
            match (lookup a, lookup b) with
            | Some va, Some vb -> Instr.Const (r, Eval.cmp op va vb)
            | _ when a = b -> (
              match op with
              | Instr.Eq | Instr.Le | Instr.Ge -> Instr.Const (r, 1)
              | Instr.Ne | Instr.Lt | Instr.Gt -> Instr.Const (r, 0))
            | _ -> ins)
          | Instr.Unop (op, r, a) -> (
            match lookup a with
            | Some v -> Instr.Const (r, Eval.unop op v)
            | None -> ins)
          | Instr.Branch (r, b1, b2) -> (
            match lookup r with
            | Some v -> Instr.Jump (if v <> 0 then b1 else b2)
            | None -> if b1 = b2 then Instr.Jump b1 else ins)
          | _ -> ins
        in
        (* update the constant environment from the rewritten statement *)
        (match ins' with
         | Instr.Const (r, v) -> define r (Some v)
         | Instr.Move (r, a) -> define r (lookup a)
         | _ -> Option.iter (fun r -> define r None) (Instr.def ins'));
        ins')
      instrs
  in
  map_blocks fold_block fn

(* ------------------------------------------------------------------ *)
(* Copy propagation                                                    *)
(* ------------------------------------------------------------------ *)

let copy_propagate fn =
  let prop_block instrs =
    let copies : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let invalidate r =
      Hashtbl.remove copies r;
      let stale =
        Hashtbl.fold (fun k v acc -> if v = r then k :: acc else acc) copies []
      in
      List.iter (Hashtbl.remove copies) stale
    in
    let subst r = Option.value (Hashtbl.find_opt copies r) ~default:r in
    Array.map
      (fun ins ->
        let ins' = map_uses subst ins in
        (match Instr.def ins' with
         | Some r -> invalidate r
         | None -> ());
        (match ins' with
         | Instr.Move (r, a) when r <> a -> Hashtbl.replace copies r a
         | _ -> ());
        ins')
      instrs
  in
  map_blocks prop_block fn

(* ------------------------------------------------------------------ *)
(* Local common-subexpression elimination                              *)
(* ------------------------------------------------------------------ *)

type expr =
  | Ebin of Instr.binop * int * int
  | Ecmp of Instr.cmpop * int * int
  | Eun of Instr.unop * int
  | Econst of int

let commutative (op : Instr.binop) =
  match op with
  | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor -> true
  | Instr.Sub | Instr.Div | Instr.Rem | Instr.Shl | Instr.Shr -> false

let expr_of (ins : Instr.t) =
  match ins with
  | Instr.Binop ((Instr.Div | Instr.Rem), _, _, _) ->
    None (* may trap: keep every occurrence *)
  | Instr.Binop (op, _, a, b) ->
    let a, b = if commutative op && b < a then (b, a) else (a, b) in
    Some (Ebin (op, a, b))
  | Instr.Cmp (op, _, a, b) -> Some (Ecmp (op, a, b))
  | Instr.Unop (op, _, a) -> Some (Eun (op, a))
  | Instr.Const (_, v) -> Some (Econst v)
  | _ -> None

let expr_regs = function
  | Ebin (_, a, b) | Ecmp (_, a, b) -> [ a; b ]
  | Eun (_, a) -> [ a ]
  | Econst _ -> []

let local_cse fn =
  let cse_block instrs =
    let table : (expr, int) Hashtbl.t = Hashtbl.create 16 in
    let invalidate r =
      let stale =
        Hashtbl.fold
          (fun e dst acc ->
            if dst = r || List.mem r (expr_regs e) then e :: acc else acc)
          table []
      in
      List.iter (Hashtbl.remove table) stale
    in
    Array.map
      (fun ins ->
        match (expr_of ins, Instr.def ins) with
        | Some e, Some r -> (
          match Hashtbl.find_opt table e with
          | Some prev when prev <> r ->
            invalidate r;
            Instr.Move (r, prev)
          | Some _ ->
            invalidate r;
            Hashtbl.replace table e r;
            ins
          | None ->
            invalidate r;
            Hashtbl.replace table e r;
            ins)
        | _ ->
          Option.iter invalidate (Instr.def ins);
          ins)
      instrs
  in
  map_blocks cse_block fn
