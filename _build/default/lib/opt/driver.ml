module Func = Wet_ir.Func
module Program = Wet_ir.Program

let round fn =
  fn
  |> Local.copy_propagate
  |> Local.constant_fold
  |> Local.local_cse
  |> Global.dead_code
  |> Global.simplify_cfg

let max_rounds = 4

let optimize ?(level = 1) (p : Program.t) =
  if level <= 0 then p
  else begin
    let optimize_fn fn =
      let rec go n fn =
        if n = 0 then fn
        else
          let fn' = round fn in
          if fn' = fn then fn else go (n - 1) fn'
      in
      go max_rounds fn
    in
    let funcs = Array.map optimize_fn p.Program.funcs in
    let p' =
      Program.make ~funcs ~main:p.Program.main ~mem_words:p.Program.mem_words
        ~globals:p.Program.globals
    in
    Wet_ir.Validate.check_exn p';
    p'
  end

let shrinkage before after =
  List.init (Array.length before.Program.funcs) (fun i ->
      ( Func.num_stmts before.Program.funcs.(i),
        Func.num_stmts after.Program.funcs.(i) ))
