(** Whole-function cleanups: dead code elimination and control-flow
    graph simplification. *)

(** Remove pure statements whose result no register ever reads.
    Loads, stores, calls, inputs, outputs and possibly-trapping
    divisions are never removed. Iterates to a fixpoint. *)
val dead_code : Wet_ir.Func.t -> Wet_ir.Func.t

(** Thread jumps through empty forwarding blocks, turn constant
    branches' leftovers into direct jumps, and drop unreachable blocks
    (relabeling the survivors). The entry block keeps label 0. *)
val simplify_cfg : Wet_ir.Func.t -> Wet_ir.Func.t
