type error = {
  func : Instr.func_id;
  block : Instr.blabel option;
  message : string;
}

let pp_error ppf e =
  match e.block with
  | Some b -> Fmt.pf ppf "f%d/B%d: %s" e.func b e.message
  | None -> Fmt.pf ppf "f%d: %s" e.func e.message

let errors (p : Program.t) =
  let errs = ref [] in
  let err func block fmt =
    Fmt.kstr (fun message -> errs := { func; block; message } :: !errs) fmt
  in
  let nfuncs = Array.length p.funcs in
  Array.iteri
    (fun fi (fn : Func.t) ->
      let nblocks = Array.length fn.blocks in
      if nblocks = 0 then err fi None "function has no blocks";
      if fn.entry <> 0 then err fi None "entry block must be block 0";
      List.iter
        (fun r ->
          if r < 0 || r >= fn.nregs then
            err fi None "parameter register r%d out of range" r)
        fn.params;
      let check_reg bi r =
        if r < 0 || r >= fn.nregs then
          err fi (Some bi) "register r%d out of range (nregs=%d)" r fn.nregs
      in
      let check_label bi l =
        if l < 0 || l >= nblocks then
          err fi (Some bi) "block label B%d out of range" l
      in
      Array.iteri
        (fun bi (blk : Func.block) ->
          let n = Array.length blk.instrs in
          if n = 0 then err fi (Some bi) "empty block"
          else begin
            Array.iteri
              (fun ii ins ->
                let is_last = ii = n - 1 in
                if Instr.is_terminator ins && not is_last then
                  err fi (Some bi) "terminator %a not in last position"
                    Instr.pp ins;
                if is_last && not (Instr.is_terminator ins) then
                  err fi (Some bi) "block does not end in a terminator";
                Option.iter (check_reg bi) (Instr.def ins);
                List.iter (check_reg bi) (Instr.uses ins);
                match ins with
                | Instr.Branch (_, b1, b2) ->
                  check_label bi b1;
                  check_label bi b2
                | Instr.Jump b -> check_label bi b
                | Instr.Call (_, callee, args, cont) ->
                  check_label bi cont;
                  if callee < 0 || callee >= nfuncs then
                    err fi (Some bi) "call to unknown function f%d" callee
                  else begin
                    let expected =
                      List.length p.funcs.(callee).Func.params
                    in
                    if List.length args <> expected then
                      err fi (Some bi)
                        "call to f%d passes %d args, expected %d" callee
                        (List.length args) expected
                  end
                | Instr.Halt ->
                  if fi <> p.main then
                    err fi (Some bi) "halt outside of main"
                | Instr.Const _ | Instr.Move _ | Instr.Binop _ | Instr.Cmp _
                | Instr.Unop _ | Instr.Load _ | Instr.Store _ | Instr.Input _
                | Instr.Output _ | Instr.Ret _ -> ())
              blk.instrs
          end)
        fn.blocks)
    p.funcs;
  List.rev !errs

let check_exn p =
  match errors p with
  | [] -> ()
  | errs ->
    Fmt.invalid_arg "invalid program:@,%a"
      Fmt.(list ~sep:(any "@,") pp_error)
      errs
