type reg = int
type blabel = int
type func_id = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not

type t =
  | Const of reg * int
  | Move of reg * reg
  | Binop of binop * reg * reg * reg
  | Cmp of cmpop * reg * reg * reg
  | Unop of unop * reg * reg
  | Load of reg * reg
  | Store of reg * reg
  | Input of reg
  | Output of reg
  | Call of reg option * func_id * reg list * blabel
  | Branch of reg * blabel * blabel
  | Jump of blabel
  | Ret of reg option
  | Halt

let is_terminator = function
  | Call _ | Branch _ | Jump _ | Ret _ | Halt -> true
  | Const _ | Move _ | Binop _ | Cmp _ | Unop _ | Load _ | Store _
  | Input _ | Output _ -> false

let def = function
  | Const (r, _) | Move (r, _) | Binop (_, r, _, _) | Cmp (_, r, _, _)
  | Unop (_, r, _) | Load (r, _) | Input r | Call (Some r, _, _, _) -> Some r
  | Store _ | Output _ | Call (None, _, _, _) | Branch _ | Jump _ | Ret _
  | Halt -> None

let has_def i = def i <> None

let uses = function
  | Const _ | Input _ | Jump _ | Ret None | Halt -> []
  | Move (_, a) | Unop (_, _, a) | Load (_, a) | Output a | Branch (a, _, _)
  | Ret (Some a) -> [ a ]
  | Binop (_, _, a, b) | Cmp (_, _, a, b) | Store (a, b) -> [ a; b ]
  | Call (_, _, args, _) -> args

let is_memory = function
  | Load _ | Store _ -> true
  | Const _ | Move _ | Binop _ | Cmp _ | Unop _ | Input _ | Output _
  | Call _ | Branch _ | Jump _ | Ret _ | Halt -> false

let addr_reg = function
  | Load (_, a) | Store (a, _) -> Some a
  | Const _ | Move _ | Binop _ | Cmp _ | Unop _ | Input _ | Output _
  | Call _ | Branch _ | Jump _ | Ret _ | Halt -> None

let is_branch = function
  | Branch _ -> true
  | Const _ | Move _ | Binop _ | Cmp _ | Unop _ | Load _ | Store _
  | Input _ | Output _ | Call _ | Jump _ | Ret _ | Halt -> false

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let unop_name = function Neg -> "neg" | Not -> "not"

let pp ppf = function
  | Const (r, v) -> Fmt.pf ppf "r%d := %d" r v
  | Move (r, a) -> Fmt.pf ppf "r%d := r%d" r a
  | Binop (op, r, a, b) ->
    Fmt.pf ppf "r%d := %s r%d r%d" r (binop_name op) a b
  | Cmp (op, r, a, b) -> Fmt.pf ppf "r%d := %s r%d r%d" r (cmpop_name op) a b
  | Unop (op, r, a) -> Fmt.pf ppf "r%d := %s r%d" r (unop_name op) a
  | Load (r, a) -> Fmt.pf ppf "r%d := load [r%d]" r a
  | Store (a, v) -> Fmt.pf ppf "store [r%d] := r%d" a v
  | Input r -> Fmt.pf ppf "r%d := input" r
  | Output r -> Fmt.pf ppf "output r%d" r
  | Call (dst, f, args, cont) ->
    let pp_args = Fmt.(list ~sep:(any ", ") (fmt "r%d")) in
    (match dst with
     | Some r ->
       Fmt.pf ppf "r%d := call f%d(%a) then B%d" r f pp_args args cont
     | None -> Fmt.pf ppf "call f%d(%a) then B%d" f pp_args args cont)
  | Branch (r, b1, b2) -> Fmt.pf ppf "br r%d ? B%d : B%d" r b1 b2
  | Jump b -> Fmt.pf ppf "jmp B%d" b
  | Ret (Some r) -> Fmt.pf ppf "ret r%d" r
  | Ret None -> Fmt.pf ppf "ret"
  | Halt -> Fmt.pf ppf "halt"

let dyn_use_count i =
  let base = List.length (uses i) in
  match i with
  | Load _ -> base + 1
  | Call (Some _, _, _, _) -> base + 1
  | Const _ | Move _ | Binop _ | Cmp _ | Unop _ | Store _ | Input _
  | Output _ | Call (None, _, _, _) | Branch _ | Jump _ | Ret _ | Halt ->
    base
