(** Human-readable rendering of functions and programs. *)

val pp_func : Func.t Fmt.t
val pp_program : Program.t Fmt.t

(** Rendered with {!pp_program}. *)
val program_to_string : Program.t -> string
