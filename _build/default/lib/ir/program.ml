type stmt_id = int

type t = {
  funcs : Func.t array;
  main : Instr.func_id;
  mem_words : int;
  globals : (string * int * int) list;
  stmt_base : int array array;
  stmt_count : int;
}

let make ~funcs ~main ~mem_words ~globals =
  if main < 0 || main >= Array.length funcs then
    invalid_arg "Program.make: main function index out of range";
  let next = ref 0 in
  let base_of_func f =
    Array.map
      (fun (b : Func.block) ->
        let base = !next in
        next := base + Array.length b.instrs;
        base)
      f.Func.blocks
  in
  let stmt_base = Array.map base_of_func funcs in
  { funcs; main; mem_words; globals; stmt_base; stmt_count = !next }

let num_stmts p = p.stmt_count

let stmt_id p f b i = p.stmt_base.(f).(b) + i

let locate p id =
  if id < 0 || id >= p.stmt_count then invalid_arg "Program.locate";
  (* Functions and blocks are numbered in increasing base order, so a
     linear scan per function followed by one over blocks suffices; this
     is only used on query/diagnostic paths, never per-event. *)
  let rec find_func f =
    if f + 1 < Array.length p.funcs
       && Array.length p.stmt_base.(f + 1) > 0
       && p.stmt_base.(f + 1).(0) <= id
    then find_func (f + 1)
    else f
  in
  let f = find_func 0 in
  let bases = p.stmt_base.(f) in
  let rec find_block b =
    if b + 1 < Array.length bases && bases.(b + 1) <= id then find_block (b + 1)
    else b
  in
  let b = find_block 0 in
  (f, b, id - bases.(b))

let instr p id =
  let f, b, i = locate p id in
  p.funcs.(f).Func.blocks.(b).Func.instrs.(i)

let iter_stmts p f =
  Array.iteri
    (fun fi (fn : Func.t) ->
      Array.iteri
        (fun bi (blk : Func.block) ->
          Array.iteri (fun i ins -> f (stmt_id p fi bi i) ins) blk.Func.instrs)
        fn.Func.blocks)
    p.funcs

let global_base p name =
  let _, base, _ = List.find (fun (n, _, _) -> String.equal n name) p.globals in
  base
