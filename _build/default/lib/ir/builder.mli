(** Imperative construction of IR functions.

    The MiniC code generator and the hand-written workloads build
    functions through this interface: open blocks, emit statements, and
    terminate. {!finish} checks that every created block was terminated. *)

type t
(** A function under construction. *)

(** [create ~name ~nparams] starts a function whose parameters occupy
    registers [0 .. nparams-1]. The entry block (label 0) is created and
    selected. *)
val create : name:string -> nparams:int -> t

(** Allocate a fresh virtual register. *)
val fresh_reg : t -> Instr.reg

(** Create a new, empty, unterminated block and return its label. The
    current block selection is unchanged. *)
val new_block : t -> Instr.blabel

(** Select the block that subsequent {!emit}/{!terminate} target.
    @raise Invalid_argument if the block is already terminated. *)
val switch_to : t -> Instr.blabel -> unit

(** Append an ordinary statement to the current block.
    @raise Invalid_argument if given a terminator or if the current block
    is terminated. *)
val emit : t -> Instr.t -> unit

(** Append the terminator and close the current block.
    @raise Invalid_argument if not a terminator or already terminated. *)
val terminate : t -> Instr.t -> unit

(** Label of the currently selected block. *)
val current : t -> Instr.blabel

(** [true] if the given block has been terminated. *)
val is_terminated : t -> Instr.blabel -> bool

(** Seal the function. @raise Invalid_argument if any block lacks a
    terminator. *)
val finish : t -> Func.t
