(** Whole programs, with a global numbering of statements.

    Every statement of every function gets a dense global [stmt_id]; the
    WET's node/edge tables are indexed by these ids. *)

type stmt_id = int

type t = private {
  funcs : Func.t array;
  main : Instr.func_id;
  mem_words : int;  (** size of the flat data memory, in words *)
  globals : (string * int * int) list;
      (** named global regions: (name, base address, size in words) *)
  stmt_base : int array array;
      (** [stmt_base.(f).(b)] = global id of the first statement of block
          [b] of function [f] *)
  stmt_count : int;
}

(** [make ~funcs ~main ~mem_words ~globals] computes the statement
    numbering. @raise Invalid_argument if [main] is out of range. *)
val make :
  funcs:Func.t array ->
  main:Instr.func_id ->
  mem_words:int ->
  globals:(string * int * int) list ->
  t

(** Total number of statements in the program. *)
val num_stmts : t -> int

(** [stmt_id p f b i] is the global id of statement [i] of block [b] of
    function [f]. *)
val stmt_id : t -> Instr.func_id -> Instr.blabel -> int -> stmt_id

(** Inverse of {!stmt_id}: [(func, block, index)] of a global id. *)
val locate : t -> stmt_id -> Instr.func_id * Instr.blabel * int

(** The statement with the given global id. *)
val instr : t -> stmt_id -> Instr.t

(** [iter_stmts p f] applies [f id instr] to every statement. *)
val iter_stmts : t -> (stmt_id -> Instr.t -> unit) -> unit

(** Base address of a named global region. @raise Not_found. *)
val global_base : t -> string -> int
