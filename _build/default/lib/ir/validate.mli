(** Structural validation of programs.

    Run after construction and before analysis: the CFG, interpreter and
    WET builder all assume the invariants checked here. *)

type error = {
  func : Instr.func_id;
  block : Instr.blabel option;
  message : string;
}

val pp_error : error Fmt.t

(** All structural problems found: empty blocks, misplaced or missing
    terminators, out-of-range registers, jump targets, call targets and
    arities, [Halt] outside [main], entry labels out of range. *)
val errors : Program.t -> error list

(** @raise Invalid_argument with a rendered report if {!errors} is
    non-empty. *)
val check_exn : Program.t -> unit
