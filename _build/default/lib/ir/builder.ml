type open_block = { mutable rev_instrs : Instr.t list; mutable closed : bool }

type t = {
  name : string;
  params : Instr.reg list;
  mutable next_reg : int;
  mutable blocks : open_block list;  (* reversed: head = newest *)
  mutable nblocks : int;
  mutable cur : Instr.blabel;
}

let block_of t label =
  if label < 0 || label >= t.nblocks then
    invalid_arg "Builder: unknown block label";
  List.nth t.blocks (t.nblocks - 1 - label)

let create ~name ~nparams =
  let params = List.init nparams Fun.id in
  {
    name;
    params;
    next_reg = nparams;
    blocks = [ { rev_instrs = []; closed = false } ];
    nblocks = 1;
    cur = 0;
  }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let new_block t =
  let label = t.nblocks in
  t.blocks <- { rev_instrs = []; closed = false } :: t.blocks;
  t.nblocks <- label + 1;
  label

let switch_to t label =
  if (block_of t label).closed then
    invalid_arg "Builder.switch_to: block already terminated";
  t.cur <- label

let emit t i =
  if Instr.is_terminator i then
    invalid_arg "Builder.emit: use terminate for terminators";
  let b = block_of t t.cur in
  if b.closed then invalid_arg "Builder.emit: current block terminated";
  b.rev_instrs <- i :: b.rev_instrs

let terminate t i =
  if not (Instr.is_terminator i) then
    invalid_arg "Builder.terminate: not a terminator";
  let b = block_of t t.cur in
  if b.closed then invalid_arg "Builder.terminate: already terminated";
  b.rev_instrs <- i :: b.rev_instrs;
  b.closed <- true

let current t = t.cur

let is_terminated t label = (block_of t label).closed

let finish t =
  let blocks = Array.make t.nblocks { Func.instrs = [||] } in
  List.iteri
    (fun i b ->
      let label = t.nblocks - 1 - i in
      if not b.closed then
        invalid_arg
          (Printf.sprintf "Builder.finish: block B%d of %s not terminated"
             label t.name);
      blocks.(label) <-
        { Func.instrs = Array.of_list (List.rev b.rev_instrs) })
    t.blocks;
  { Func.name = t.name; params = t.params; nregs = t.next_reg; blocks;
    entry = 0 }
