lib/ir/builder.ml: Array Fun Func Instr List Printf
