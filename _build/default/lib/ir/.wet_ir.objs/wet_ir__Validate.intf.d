lib/ir/validate.mli: Fmt Instr Program
