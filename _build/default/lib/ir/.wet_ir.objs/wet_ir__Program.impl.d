lib/ir/program.ml: Array Func Instr List String
