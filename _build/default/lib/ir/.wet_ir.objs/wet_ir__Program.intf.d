lib/ir/program.mli: Func Instr
