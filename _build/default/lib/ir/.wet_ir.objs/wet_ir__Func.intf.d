lib/ir/func.mli: Instr
