lib/ir/printer.ml: Array Fmt Func Instr List Program
