lib/ir/eval.mli: Instr
