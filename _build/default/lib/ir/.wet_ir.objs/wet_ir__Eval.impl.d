lib/ir/eval.ml: Instr
