lib/ir/instr.mli: Fmt
