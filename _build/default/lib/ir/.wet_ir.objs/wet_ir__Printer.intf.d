lib/ir/printer.mli: Fmt Func Program
