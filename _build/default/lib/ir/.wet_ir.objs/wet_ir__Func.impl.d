lib/ir/func.ml: Array Fmt Instr
