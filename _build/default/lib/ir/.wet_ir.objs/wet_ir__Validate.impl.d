lib/ir/validate.ml: Array Fmt Func Instr List Option Program
