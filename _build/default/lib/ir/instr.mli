(** Intermediate-representation statements.

    The WET is defined over "intermediate level statements" (paper §2);
    this register-based IR plays the role Trimaran's intermediate code
    plays in the paper. Registers are virtual and per-function; memory is
    a flat word-addressed array shared by the whole program.

    A basic block is an array of statements whose last element is the
    unique {{!is_terminator}terminator}. [Call] is a terminator carrying
    the label of its continuation block: a call always ends a basic
    block, so Ball–Larus paths never span a call and the whole-program
    block trace is exactly the concatenation of path blocks in timestamp
    order (see {!Wet_cfg.Ball_larus}). *)

type reg = int
(** Virtual register index, local to a function. *)

type blabel = int
(** Basic-block index, local to a function. *)

type func_id = int
(** Function index within a {!Program.t}. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Not

type t =
  | Const of reg * int  (** [r := imm] *)
  | Move of reg * reg  (** [r := r'] *)
  | Binop of binop * reg * reg * reg  (** [r := a op b] *)
  | Cmp of cmpop * reg * reg * reg  (** [r := a cmp b] (0 or 1) *)
  | Unop of unop * reg * reg  (** [r := op a] *)
  | Load of reg * reg  (** [r := mem\[addr\]] *)
  | Store of reg * reg  (** [mem\[addr\] := v]; no def port *)
  | Input of reg  (** [r := next external input] *)
  | Output of reg  (** append [r] to program output; no def port *)
  | Call of reg option * func_id * reg list * blabel
      (** [r := f(args)], then continue at the continuation block.
          Terminates its basic block. *)
  | Branch of reg * blabel * blabel  (** [if r <> 0 goto b1 else b2] *)
  | Jump of blabel
  | Ret of reg option
  | Halt  (** stop the program (valid only in [main]) *)

(** [true] on [Call], [Branch], [Jump], [Ret] and [Halt]. *)
val is_terminator : t -> bool

(** [true] iff the statement produces a result value (paper: "has a def
    port"). Stores, outputs, branches, jumps, returns without a value and
    halt do not. *)
val has_def : t -> bool

(** Destination register, if any. *)
val def : t -> reg option

(** Registers read by the statement, in operand order. [Call] uses are
    its arguments; [Ret (Some r)] uses [r]. *)
val uses : t -> reg list

(** [true] on [Load] and [Store]: the statement references memory, and
    its first operand register holds the address. *)
val is_memory : t -> bool

(** Address register of a [Load]/[Store]. *)
val addr_reg : t -> reg option

(** [true] on [Branch]. *)
val is_branch : t -> bool

(** Number of dynamic dependence slots of a statement: its register uses,
    plus one memory input for a [Load], plus one return-value link for a
    [Call] with a destination. The interpreter records exactly this many
    producer references per execution, and the WET builder consumes them
    in the same order (register uses first, then the extra slot). *)
val dyn_use_count : t -> int

val pp : t Fmt.t
