(** The arithmetic of the IR, shared by the interpreter and the
    optimiser so folding can never disagree with execution.

    Semantics: 63-bit OCaml [int] arithmetic; shift amounts are masked
    to 6 bits and a (masked) amount of 63 saturates (shifting out every
    bit) since OCaml leaves it unspecified at the native word size;
    [Shr] is arithmetic; comparisons yield 0/1. *)

(** [binop op a b] is [None] exactly for division/remainder by zero. *)
val binop : Instr.binop -> int -> int -> int option

val cmp : Instr.cmpop -> int -> int -> int

val unop : Instr.unop -> int -> int
