let binop op a b =
  match (op : Instr.binop) with
  | Instr.Add -> Some (a + b)
  | Instr.Sub -> Some (a - b)
  | Instr.Mul -> Some (a * b)
  | Instr.Div -> if b = 0 then None else Some (a / b)
  | Instr.Rem -> if b = 0 then None else Some (a mod b)
  | Instr.And -> Some (a land b)
  | Instr.Or -> Some (a lor b)
  | Instr.Xor -> Some (a lxor b)
  | Instr.Shl ->
    let s = b land 63 in
    Some (if s >= 63 then 0 else a lsl s)
  | Instr.Shr ->
    let s = b land 63 in
    Some (if s >= 63 then (if a < 0 then -1 else 0) else a asr s)

let cmp op a b =
  let r =
    match (op : Instr.cmpop) with
    | Instr.Eq -> a = b
    | Instr.Ne -> a <> b
    | Instr.Lt -> a < b
    | Instr.Le -> a <= b
    | Instr.Gt -> a > b
    | Instr.Ge -> a >= b
  in
  if r then 1 else 0

let unop op a =
  match (op : Instr.unop) with
  | Instr.Neg -> -a
  | Instr.Not -> if a = 0 then 1 else 0
