let pp_func ppf (f : Func.t) =
  Fmt.pf ppf "func %s(%a) nregs=%d@," f.name
    Fmt.(list ~sep:(any ", ") (fmt "r%d"))
    f.params f.nregs;
  Array.iteri
    (fun bi (blk : Func.block) ->
      Fmt.pf ppf "B%d:@," bi;
      Array.iter (fun i -> Fmt.pf ppf "  %a@," Instr.pp i) blk.Func.instrs)
    f.blocks

let pp_program ppf (p : Program.t) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "memory: %d words@," p.mem_words;
  List.iter
    (fun (name, base, size) ->
      Fmt.pf ppf "global %s @@ %d (%d words)@," name base size)
    p.globals;
  Array.iteri
    (fun fi f ->
      Fmt.pf ppf "; f%d%s@,%a" fi
        (if fi = p.main then " (main)" else "")
        pp_func f)
    p.funcs;
  Fmt.pf ppf "@]"

let program_to_string p = Fmt.str "%a" pp_program p
