(** Functions: arrays of basic blocks over a private register file. *)

type block = { instrs : Instr.t array }
(** A basic block. The last element of [instrs] is the block's unique
    terminator; no other element is a terminator. Blocks may otherwise be
    empty of ordinary statements (a lone [Jump] is a valid block). *)

type t = {
  name : string;
  params : Instr.reg list;  (** registers receiving the arguments *)
  nregs : int;  (** size of the register file; all registers < nregs *)
  blocks : block array;
  entry : Instr.blabel;  (** index of the entry block *)
}

(** Terminator of block [b]. *)
val terminator : t -> Instr.blabel -> Instr.t

(** Intraprocedural successor labels of block [b] in terminator order
    ([Branch] yields the taken target first; [Call] yields its
    continuation). [Ret]/[Halt] have no successors. *)
val successors : t -> Instr.blabel -> Instr.blabel list

(** Number of blocks. *)
val num_blocks : t -> int

(** Total number of statements (terminators included). *)
val num_stmts : t -> int
