type block = { instrs : Instr.t array }

type t = {
  name : string;
  params : Instr.reg list;
  nregs : int;
  blocks : block array;
  entry : Instr.blabel;
}

let terminator f b =
  let instrs = f.blocks.(b).instrs in
  instrs.(Array.length instrs - 1)

let successors f b =
  match terminator f b with
  | Instr.Branch (_, b1, b2) -> [ b1; b2 ]
  | Instr.Jump b' -> [ b' ]
  | Instr.Call (_, _, _, cont) -> [ cont ]
  | Instr.Ret _ | Instr.Halt -> []
  | i -> Fmt.invalid_arg "Func.successors: non-terminator %a" Instr.pp i

let num_blocks f = Array.length f.blocks

let num_stmts f =
  Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 f.blocks
