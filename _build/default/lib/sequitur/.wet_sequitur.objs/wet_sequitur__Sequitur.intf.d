lib/sequitur/sequitur.mli:
