lib/sequitur/sequitur.ml: Array Hashtbl List Option Printf
