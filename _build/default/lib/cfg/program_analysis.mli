(** Per-function static analyses, bundled for the whole program.

    The interpreter uses these to drive Ball–Larus path tracking and
    dynamic control-dependence shadowing; the WET builder uses the same
    instance so both sides agree on path numbering. *)

type fn_info = {
  graph : Graph.t;
  bl : Ball_larus.t;
  cd_parents : int list array;  (** static CD parents per block *)
}

type t = { program : Wet_ir.Program.t; fns : fn_info array }

(** Analyse every function of a validated program. *)
val of_program : Wet_ir.Program.t -> t

(** Info for function [f]. *)
val fn : t -> Wet_ir.Instr.func_id -> fn_info
