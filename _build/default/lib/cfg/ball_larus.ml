let path_limit = 1 lsl 40

type t = {
  g : Graph.t;
  break_ : bool array array;
  edge_vals : int array array;
  exit_vals : int array;
  starts : (int * int) array;  (* (base id, node), sorted by base *)
  npaths : int array;
  total : int;
}

(* Initial break edges: loop back edges (an edge to a node on the DFS
   stack; structured front ends produce reducible graphs, for which this
   matches the natural loop back edges) plus every call block's out-edge,
   so a path never spans a call. *)
let back_edges (g : Graph.t) =
  let break_ =
    Array.mapi
      (fun b s -> Array.make (Array.length s) g.is_call_block.(b))
      g.succs
  in
  let colour = Array.make g.nblocks `White in
  let rec dfs u =
    colour.(u) <- `Grey;
    Array.iteri
      (fun i v ->
        match colour.(v) with
        | `Grey -> break_.(u).(i) <- true
        | `White -> dfs v
        | `Black -> ())
      g.succs.(u);
    colour.(u) <- `Black
  in
  dfs g.entry;
  break_

(* Postorder over all edges. Every cycle closes through a break edge, so
   along non-break edges this is still a reverse topological order, and
   traversing break edges too keeps break targets (call continuations,
   loop headers) in the sweep. *)
let dag_postorder (g : Graph.t) =
  let seen = Array.make g.nblocks false in
  let acc = ref [] in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Array.iter dfs g.succs.(u);
      acc := u :: !acc
    end
  in
  dfs g.entry;
  List.rev !acc

let compute (g : Graph.t) =
  let break_ = back_edges g in
  let order = dag_postorder g in
  let npaths = Array.make g.nblocks 0 in
  let exit_vals = Array.make g.nblocks (-1) in
  let edge_vals = Array.map (fun s -> Array.make (Array.length s) 0) g.succs in
  List.iter
    (fun u ->
      let has_break () = Array.exists Fun.id break_.(u) in
      let sum () =
        let s = ref 0 in
        Array.iteri
          (fun i v -> if not break_.(u).(i) then s := !s + npaths.(v))
          g.succs.(u);
        if Array.length g.succs.(u) = 0 || has_break () then incr s;
        !s
      in
      let n = sum () in
      let n =
        if n <= path_limit then n
        else begin
          (* Too many paths through [u]: break all of its out-edges so
             every path ends here (standard Ball–Larus overflow cure). *)
          Array.iteri (fun i _ -> break_.(u).(i) <- true) g.succs.(u);
          1
        end
      in
      npaths.(u) <- n;
      (* Assign cumulative values: real DAG out-edges in successor order,
         then the exit edge (real for returns, pseudo for break sources). *)
      let running = ref 0 in
      Array.iteri
        (fun i v ->
          if not break_.(u).(i) then begin
            edge_vals.(u).(i) <- !running;
            running := !running + npaths.(v)
          end)
        g.succs.(u);
      if Array.length g.succs.(u) = 0 || has_break () then
        exit_vals.(u) <- !running)
    order;
  (* Base ids: paths from the entry occupy [0, npaths(entry)); paths from
     each break target occupy the next disjoint range. *)
  let targets = Hashtbl.create 8 in
  Array.iteri
    (fun u row ->
      Array.iteri
        (fun i is_b ->
          let v = g.succs.(u).(i) in
          if is_b && v <> g.entry then Hashtbl.replace targets v ())
        row)
    break_;
  let targets = List.sort compare (Hashtbl.fold (fun v () l -> v :: l) targets []) in
  let starts = ref [ (0, g.entry) ] in
  let running = ref npaths.(g.entry) in
  List.iter
    (fun v ->
      starts := (!running, v) :: !starts;
      running := !running + npaths.(v))
    targets;
  let starts = Array.of_list (List.rev !starts) in
  Array.sort compare starts;
  { g; break_; edge_vals; exit_vals; starts; npaths; total = !running }

let num_paths t = t.total

let is_break t ~src ~succ_ix = t.break_.(src).(succ_ix)

let edge_value t ~src ~succ_ix =
  if t.break_.(src).(succ_ix) then
    invalid_arg "Ball_larus.edge_value: break edge";
  t.edge_vals.(src).(succ_ix)

let finish_value t ~src =
  if t.exit_vals.(src) = -1 then
    invalid_arg "Ball_larus.finish_value: block has no exit edge";
  t.exit_vals.(src)

let start_value t ~node =
  let rec find i =
    if i >= Array.length t.starts then
      invalid_arg "Ball_larus.start_value: not a path start node"
    else
      let _, n = t.starts.(i) in
      if n = node then fst t.starts.(i) else find (i + 1)
  in
  find 0

let blocks_of_path t id =
  if id < 0 || id >= t.total then invalid_arg "Ball_larus.blocks_of_path";
  (* Binary search for the start node whose range contains [id]. *)
  let lo = ref 0 and hi = ref (Array.length t.starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if fst t.starts.(mid) <= id then lo := mid else hi := mid - 1
  done;
  let base, start = t.starts.(!lo) in
  let rec walk u r acc =
    let acc = u :: acc in
    (* Choose the numbering edge with the largest value <= r. *)
    let best = ref None in
    Array.iteri
      (fun i v ->
        if not t.break_.(u).(i) then begin
          let value = t.edge_vals.(u).(i) in
          if value <= r then
            match !best with
            | Some (bv, _) when bv >= value -> ()
            | _ -> best := Some (value, Some v)
        end)
      t.g.succs.(u);
    if t.exit_vals.(u) <> -1 && t.exit_vals.(u) <= r then begin
      match !best with
      | Some (bv, _) when bv >= t.exit_vals.(u) -> ()
      | _ -> best := Some (t.exit_vals.(u), None)
    end;
    match !best with
    | None -> invalid_arg "Ball_larus.blocks_of_path: corrupt id"
    | Some (value, None) ->
      if r <> value then invalid_arg "Ball_larus.blocks_of_path: corrupt id";
      List.rev acc
    | Some (value, Some v) -> walk v (r - value) acc
  in
  walk start (id - base) []
