let parents (g : Graph.t) =
  let pdom = Dominance.postdominators g in
  let deps = Array.make g.nblocks [] in
  (* For each edge (u, v) where v does not postdominate u, every node on
     the postdominator-tree path from v up to, but excluding, ipdom(u) is
     control dependent on u. *)
  for u = 0 to g.nblocks - 1 do
    if Array.length g.succs.(u) > 1 then begin
      let stop = Dominance.idom pdom u in
      Array.iter
        (fun v ->
          let rec walk w =
            if w <> stop && w <> -1 && w <> Dominance.root pdom then begin
              if not (List.mem u deps.(w)) then deps.(w) <- u :: deps.(w);
              walk (Dominance.idom pdom w)
            end
          in
          if not (Dominance.dominates pdom v u) then walk v)
        g.succs.(u)
    end
  done;
  Array.map (fun l -> List.sort compare l) deps
