type t = { idoms : int array; tree_root : int }

(* Cooper, Harvey, Kennedy: "A Simple, Fast Dominance Algorithm".
   [succs]/[preds] describe the graph in the direction of dominance;
   nodes unreachable from [root] keep idom = -1. *)
let compute ~nnodes ~root ~succs ~preds =
  let seen = Array.make nnodes false in
  let post = ref [] in
  let rec dfs n =
    if not seen.(n) then begin
      seen.(n) <- true;
      Array.iter dfs (succs n);
      post := n :: !post
    end
  in
  dfs root;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make nnodes (-1) in
  Array.iteri (fun i n -> rpo_index.(n) <- i) rpo;
  let idoms = Array.make nnodes (-1) in
  idoms.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun n ->
        if n <> root then begin
          let new_idom = ref (-1) in
          Array.iter
            (fun p ->
              if idoms.(p) <> -1 then
                new_idom := if !new_idom = -1 then p else intersect p !new_idom)
            (preds n);
          if !new_idom <> -1 && idoms.(n) <> !new_idom then begin
            idoms.(n) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  idoms.(root) <- -1;
  { idoms; tree_root = root }

let dominators (g : Graph.t) =
  compute ~nnodes:g.nblocks ~root:g.entry
    ~succs:(fun n -> g.succs.(n))
    ~preds:(fun n -> g.preds.(n))

let postdominators (g : Graph.t) =
  let exit = g.nblocks in
  let nnodes = g.nblocks + 1 in
  let exits = Array.of_list (Graph.exit_blocks g) in
  (* Reverse graph: edges flow from exit towards the entry. *)
  let succs n = if n = exit then exits else g.preds.(n) in
  let preds n =
    if n = exit then [||]
    else if Array.length g.succs.(n) = 0 then [| exit |]
    else g.succs.(n)
  in
  compute ~nnodes ~root:exit ~succs ~preds

let root t = t.tree_root

let idom t n = t.idoms.(n)

let dominates t a b =
  let rec walk n = n = a || (t.idoms.(n) <> -1 && walk t.idoms.(n)) in
  walk b
