(** Dominator and postdominator trees (Cooper–Harvey–Kennedy).

    Postdominance is computed on the reverse CFG augmented with a virtual
    exit node (label [nblocks]) that every [Ret]/[Halt] block reaches, so
    functions with several returns still have a tree. *)

type t

(** Dominator tree rooted at the entry. *)
val dominators : Graph.t -> t

(** Postdominator tree rooted at the virtual exit node [g.nblocks]. *)
val postdominators : Graph.t -> t

(** Root node of the tree. *)
val root : t -> int

(** Immediate dominator, or [-1] for the root and for nodes the root does
    not reach (e.g. blocks that cannot reach any exit). *)
val idom : t -> int -> int

(** [dominates t a b]: does [a] (post)dominate [b]? Reflexive. Nodes not
    in the tree dominate nothing and are dominated only by themselves. *)
val dominates : t -> int -> int -> bool
