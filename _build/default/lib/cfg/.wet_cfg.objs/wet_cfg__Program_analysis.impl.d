lib/cfg/program_analysis.ml: Array Ball_larus Control_dep Graph Wet_ir
