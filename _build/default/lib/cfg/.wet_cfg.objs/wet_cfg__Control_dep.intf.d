lib/cfg/control_dep.mli: Graph
