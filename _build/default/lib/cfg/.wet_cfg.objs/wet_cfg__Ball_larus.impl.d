lib/cfg/ball_larus.ml: Array Fun Graph Hashtbl List
