lib/cfg/control_dep.ml: Array Dominance Graph List
