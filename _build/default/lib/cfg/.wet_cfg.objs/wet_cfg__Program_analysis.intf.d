lib/cfg/program_analysis.mli: Ball_larus Graph Wet_ir
