lib/cfg/graph.mli: Wet_ir
