lib/cfg/graph.ml: Array Wet_ir
