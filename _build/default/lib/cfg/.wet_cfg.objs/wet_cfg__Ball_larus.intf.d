lib/cfg/ball_larus.mli: Graph
