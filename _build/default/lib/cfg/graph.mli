(** Per-function control-flow graphs.

    Nodes are basic-block labels [0 .. nblocks-1]; edges come from block
    terminators. The graph is the substrate for dominance, control
    dependence and Ball–Larus path numbering. *)

type t = {
  nblocks : int;
  entry : int;
  succs : int array array;  (** [succs.(b)] in terminator order *)
  preds : int array array;
  is_call_block : bool array;
      (** blocks terminated by a [Call]; their out-edge is always a
          Ball–Larus break edge so paths never span a call *)
}

(** Build the CFG of a function. *)
val of_func : Wet_ir.Func.t -> t

(** Blocks reachable from the entry. *)
val reachable : t -> bool array

(** Reverse postorder of the reachable blocks, starting at the entry.
    Every block appears before all of its unvisited successors. *)
val reverse_postorder : t -> int array

(** [exit_blocks g] are the blocks with no successors ([Ret]/[Halt]). *)
val exit_blocks : t -> int list
