(** Ball–Larus path numbering (paper §3.1).

    The CFG minus its {e break edges} (loop back edges, plus any edges
    broken to keep path counts bounded) is a DAG; every source-to-sink
    walk of that DAG gets a unique integer id. A WET node is one such
    path: all basic blocks of one path execution share a timestamp.

    Following Ball–Larus, a break edge [(u, v)] is modelled by pseudo
    edges [u -> Exit] and [Entry -> v]: a path finishing at [u] emits its
    id, and the next path starts at [v] with that node's base id.

    The interpreter drives this incrementally:
    {ul
    {- entering a function: [path_sum = start_value t ~node:entry]}
    {- taking successor [i] of block [u]:
       if [is_break t ~src:u ~succ_ix:i] then the path
       [path_sum + finish_value t ~src:u] is complete and the next path
       begins with [start_value t ~node:v];
       otherwise [path_sum <- path_sum + edge_value t ~src:u ~succ_ix:i]}
    {- leaving the function from block [u]:
       the path [path_sum + finish_value t ~src:u] is complete.}} *)

type t

(** [compute g] numbers the paths of [g]. Path counts are kept below
    [2^40] by breaking additional edges where necessary. *)
val compute : Graph.t -> t

(** Total number of distinct path ids (paths actually executed are
    usually a small subset). *)
val num_paths : t -> int

(** Is the [succ_ix]-th out-edge of [src] a break edge? *)
val is_break : t -> src:int -> succ_ix:int -> bool

(** Ball–Larus value of a non-break edge.
    @raise Invalid_argument on a break edge. *)
val edge_value : t -> src:int -> succ_ix:int -> int

(** Value of the (real or pseudo) edge from [src] to the exit.
    @raise Invalid_argument if [src] neither exits the function nor
    sources a break edge. *)
val finish_value : t -> src:int -> int

(** Base id for paths beginning at [node] (the function entry or a break
    target). @raise Invalid_argument otherwise. *)
val start_value : t -> node:int -> int

(** The block sequence of path [id], in execution order.
    @raise Invalid_argument if [id] is outside [\[0, num_paths)]. *)
val blocks_of_path : t -> int -> int list
