(** Static control dependence (Ferrante–Ottenstein–Warren).

    Block [b] is control dependent on branch block [p] when one successor
    of [p] always leads to [b] (i.e. [b] postdominates that successor)
    while [p] itself is not postdominated by [b]. These are the static CD
    edges of the WET (paper §2); the interpreter instantiates them with
    timestamp pairs at run time. *)

(** [parents g] maps each block to the branch blocks it is directly
    control dependent on (deduplicated, ascending). The entry of a
    function typically has no parents. *)
val parents : Graph.t -> int list array
