type t = {
  nblocks : int;
  entry : int;
  succs : int array array;
  preds : int array array;
  is_call_block : bool array;
}

let of_func (f : Wet_ir.Func.t) =
  let nblocks = Wet_ir.Func.num_blocks f in
  let succs =
    Array.init nblocks (fun b ->
        Array.of_list (Wet_ir.Func.successors f b))
  in
  let pred_lists = Array.make nblocks [] in
  for b = nblocks - 1 downto 0 do
    Array.iter (fun s -> pred_lists.(s) <- b :: pred_lists.(s)) succs.(b)
  done;
  let preds = Array.map Array.of_list pred_lists in
  let is_call_block =
    Array.init nblocks (fun b ->
        match Wet_ir.Func.terminator f b with
        | Wet_ir.Instr.Call _ -> true
        | _ -> false)
  in
  { nblocks; entry = f.Wet_ir.Func.entry; succs; preds; is_call_block }

let reachable g =
  let seen = Array.make g.nblocks false in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      Array.iter go g.succs.(b)
    end
  in
  go g.entry;
  seen

let reverse_postorder g =
  let seen = Array.make g.nblocks false in
  let post = ref [] in
  let rec go b =
    if not seen.(b) then begin
      seen.(b) <- true;
      Array.iter go g.succs.(b);
      post := b :: !post
    end
  in
  go g.entry;
  Array.of_list !post

let exit_blocks g =
  let acc = ref [] in
  for b = g.nblocks - 1 downto 0 do
    if Array.length g.succs.(b) = 0 then acc := b :: !acc
  done;
  !acc
