type fn_info = {
  graph : Graph.t;
  bl : Ball_larus.t;
  cd_parents : int list array;
}

type t = { program : Wet_ir.Program.t; fns : fn_info array }

let of_program (p : Wet_ir.Program.t) =
  let analyse f =
    let graph = Graph.of_func f in
    { graph; bl = Ball_larus.compute graph; cd_parents = Control_dep.parents graph }
  in
  { program = p; fns = Array.map analyse p.Wet_ir.Program.funcs }

let fn t f = t.fns.(f)
