lib/bistream/bidir.ml: Array Wet_util
