lib/bistream/stream.mli: Bidir
