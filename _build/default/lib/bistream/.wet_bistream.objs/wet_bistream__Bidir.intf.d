lib/bistream/bidir.mli:
