lib/bistream/stream.ml: Array Bidir List Printf
