module Sequitur = Wet_sequitur.Sequitur
module T = Wet_interp.Trace

type stream = {
  addresses : int array;
  uses : int;
  heat : int;
}

let mine ?(min_length = 4) ?(min_uses = 2) addresses =
  let g = Sequitur.build addresses in
  Sequitur.rule_stats g
  |> List.filter_map (fun (expansion, uses) ->
         if Array.length expansion >= min_length && uses >= min_uses then
           Some
             {
               addresses = expansion;
               uses;
               heat = Array.length expansion * uses;
             }
         else None)
  |> List.sort (fun a b -> compare b.heat a.heat)

let address_trace (tr : T.t) = Array.map (fun op -> op lsr 1) tr.T.mem_ops

let coverage streams addresses =
  let n = Array.length addresses in
  if n = 0 then 0.
  else begin
    let covered = ref 0 in
    let i = ref 0 in
    let matches (s : stream) at =
      let k = Array.length s.addresses in
      at + k <= n
      &&
      let rec go j = j >= k || (addresses.(at + j) = s.addresses.(j) && go (j + 1)) in
      go 0
    in
    while !i < n do
      match List.find_opt (fun s -> matches s !i) streams with
      | Some s ->
        covered := !covered + Array.length s.addresses;
        i := !i + Array.length s.addresses
      | None -> incr i
    done;
    float_of_int !covered /. float_of_int n
  end
