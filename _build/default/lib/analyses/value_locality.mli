(** Frequent value locality (the paper cites Yang & Gupta's "Frequent
    Value Locality and its Applications" as a client of value profiles).

    A small set of values typically accounts for a large share of all
    values flowing through loads; exploiting that enables value-centric
    cache compression and value encoding. Both measures below read the
    WET's per-instruction load value traces (the paper's Table 7
    query). *)

(** [frequent ?top wet] is the [top] (default 8) most frequent load
    values with their occurrence counts, descending. *)
val frequent : ?top:int -> Wet_core.Wet.t -> (int * int) list

(** [coverage wet ~top] is the fraction of all load value occurrences
    covered by the [top] most frequent values (0 when there are no
    loads). *)
val coverage : Wet_core.Wet.t -> top:int -> float
