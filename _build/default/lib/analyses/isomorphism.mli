(** Instruction isomorphism mining (the paper cites Sazeides'
    "Instruction-Isomorphism in Program Execution" as a client of
    dependence profiles).

    Two statement copies are {e value-isomorphic} when they produce
    identical value sequences over the whole run. The WET's tier-1 value
    representation makes a sound subset of these detectable without
    decompressing anything: members of the same input group share the
    pattern stream, so two members with equal [UVals] arrays provably
    produce identical sequences. Such statements are candidates for
    reuse-based redundancy elimination — the very observation §3.2's
    value grouping is built on. *)

type klass = {
  members : Wet_core.Wet.copy_id list;  (** ≥ 2 copies, identical value sequences *)
  executions : int;  (** per member *)
  distinct_values : int;  (** length of the shared [UVals] *)
}

(** All within-group isomorphism classes with at least two members. *)
val classes : Wet_core.Wet.t -> klass list

(** Aggregate statistics: [(isomorphic copies, total def copies,
    redundant value-sequence executions)] — the executions that produce
    a value some isomorphic sibling also produces. *)
val summary : Wet_core.Wet.t -> int * int * int
