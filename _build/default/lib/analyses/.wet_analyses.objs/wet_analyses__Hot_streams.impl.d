lib/analyses/hot_streams.ml: Array List Wet_interp Wet_sequitur
