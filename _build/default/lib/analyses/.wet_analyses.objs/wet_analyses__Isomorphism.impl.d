lib/analyses/isomorphism.ml: Array Hashtbl List Option Wet_bistream Wet_core Wet_util
