lib/analyses/state_reconstruct.mli: Wet_core
