lib/analyses/dot_export.ml: Array Buffer Fmt Hashtbl List Printf String Wet_core Wet_ir
