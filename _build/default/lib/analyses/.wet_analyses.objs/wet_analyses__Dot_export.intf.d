lib/analyses/dot_export.mli: Wet_core
