lib/analyses/state_reconstruct.ml: Hashtbl List Wet_core Wet_ir
