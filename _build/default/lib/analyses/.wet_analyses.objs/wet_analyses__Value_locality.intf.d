lib/analyses/value_locality.mli: Wet_core
