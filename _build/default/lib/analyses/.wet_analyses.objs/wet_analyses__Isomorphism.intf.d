lib/analyses/isomorphism.mli: Wet_core
