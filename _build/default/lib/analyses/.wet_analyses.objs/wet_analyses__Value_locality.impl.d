lib/analyses/value_locality.ml: Hashtbl List Option Wet_core
