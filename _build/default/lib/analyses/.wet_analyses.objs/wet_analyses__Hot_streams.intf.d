lib/analyses/hot_streams.mli: Wet_interp
