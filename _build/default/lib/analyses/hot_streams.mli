(** Hot data stream mining (the paper cites Chilimbi's PLDI'01/'02 work
    as the consumer of address profiles).

    A {e hot data stream} is a sequence of addresses that recurs often
    enough that prefetching or data relocation pays off. Chilimbi's
    method is exactly grammar inference: run Sequitur over the address
    trace and read the hot streams off the rules — a rule's expansion is
    the repeated subsequence, its use count the repetition count. *)

type stream = {
  addresses : int array;  (** the repeated address subsequence *)
  uses : int;  (** static occurrences in the grammar *)
  heat : int;  (** [length * uses] — Chilimbi's heat metric *)
}

(** [mine ?min_length ?min_uses addresses] infers the grammar and
    returns streams of at least [min_length] (default 4) addresses used
    at least [min_uses] (default 2) times, hottest first. *)
val mine : ?min_length:int -> ?min_uses:int -> int array -> stream list

(** The merged (program-order) address trace of a run, from the raw
    trace's memory operations. *)
val address_trace : Wet_interp.Trace.t -> int array

(** [coverage streams addresses] is the fraction of the trace covered by
    the given streams (greedy, non-overlapping). *)
val coverage : stream list -> int array -> float
