(** MiniC → IR translation.

    Globals are laid out contiguously from address 0 in declaration
    order; a scalar global is a 1-word region. Local variables and
    parameters live in virtual registers. Every array or global-scalar
    access materialises its address ([Const] base + [Add]), so the value
    stream of those statements is the program's address profile. *)

exception Error of string * Ast.pos

(** Translate a checked AST. Requires a zero-parameter [main] function.
    @raise Error on semantic problems (unknown names, arity mismatches,
    redeclarations, [break] outside loops, ...). *)
val program : Ast.program -> Wet_ir.Program.t
