let render (m : string) (p : Ast.pos) =
  Printf.sprintf "line %d, column %d: %s" p.Ast.line p.Ast.col m

let compile src =
  match Codegen.program (Parser.parse src) with
  | prog -> Ok prog
  | exception Parser.Error (m, p) -> Error (render m p)
  | exception Codegen.Error (m, p) -> Error (render m p)

let compile_exn src =
  match compile src with
  | Ok p -> p
  | Error m -> invalid_arg ("MiniC: " ^ m)
