open Wet_ir

exception Error of string * Ast.pos

let err pos fmt = Fmt.kstr (fun m -> raise (Error (m, pos))) fmt

type fctx = {
  fb : Builder.t;
  funcs : (string, int * int) Hashtbl.t;  (* name -> (id, arity) *)
  globals : (string, int * int) Hashtbl.t;  (* name -> (base, size) *)
  vars : (string, Instr.reg) Hashtbl.t;
  mutable loops : (Instr.blabel * Instr.blabel) list;
      (* innermost first: (continue target, break target) *)
  is_main : bool;
}

let binop_instr op dst a b : Instr.t =
  match (op : Ast.binary_op) with
  | Ast.Add -> Instr.Binop (Instr.Add, dst, a, b)
  | Ast.Sub -> Instr.Binop (Instr.Sub, dst, a, b)
  | Ast.Mul -> Instr.Binop (Instr.Mul, dst, a, b)
  | Ast.Div -> Instr.Binop (Instr.Div, dst, a, b)
  | Ast.Rem -> Instr.Binop (Instr.Rem, dst, a, b)
  | Ast.Band -> Instr.Binop (Instr.And, dst, a, b)
  | Ast.Bor -> Instr.Binop (Instr.Or, dst, a, b)
  | Ast.Bxor -> Instr.Binop (Instr.Xor, dst, a, b)
  | Ast.Shl -> Instr.Binop (Instr.Shl, dst, a, b)
  | Ast.Shr -> Instr.Binop (Instr.Shr, dst, a, b)
  | Ast.Eq -> Instr.Cmp (Instr.Eq, dst, a, b)
  | Ast.Ne -> Instr.Cmp (Instr.Ne, dst, a, b)
  | Ast.Lt -> Instr.Cmp (Instr.Lt, dst, a, b)
  | Ast.Le -> Instr.Cmp (Instr.Le, dst, a, b)
  | Ast.Gt -> Instr.Cmp (Instr.Gt, dst, a, b)
  | Ast.Ge -> Instr.Cmp (Instr.Ge, dst, a, b)
  | Ast.Land | Ast.Lor -> assert false (* handled in gen_expr *)

(* Address of element [ix_reg] of the global region at [base]. *)
let gen_address ctx base ix_reg =
  let base_reg = Builder.fresh_reg ctx.fb in
  Builder.emit ctx.fb (Instr.Const (base_reg, base));
  let addr = Builder.fresh_reg ctx.fb in
  Builder.emit ctx.fb (Instr.Binop (Instr.Add, addr, base_reg, ix_reg));
  addr

let rec gen_expr ctx (e : Ast.expr) : Instr.reg =
  match e.Ast.desc with
  | Ast.Int n ->
    let r = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (Instr.Const (r, n));
    r
  | Ast.Var x -> (
    match Hashtbl.find_opt ctx.vars x with
    | Some r -> r
    | None -> (
      match Hashtbl.find_opt ctx.globals x with
      | Some (base, _) ->
        let addr = Builder.fresh_reg ctx.fb in
        Builder.emit ctx.fb (Instr.Const (addr, base));
        let r = Builder.fresh_reg ctx.fb in
        Builder.emit ctx.fb (Instr.Load (r, addr));
        r
      | None -> err e.Ast.pos "unknown variable %s" x))
  | Ast.Index (g, ix) -> (
    match Hashtbl.find_opt ctx.globals g with
    | None -> err e.Ast.pos "unknown global array %s" g
    | Some (base, _) ->
      let ix_reg = gen_expr ctx ix in
      let addr = gen_address ctx base ix_reg in
      let r = Builder.fresh_reg ctx.fb in
      Builder.emit ctx.fb (Instr.Load (r, addr));
      r)
  | Ast.Call (f, args) -> (
    match Hashtbl.find_opt ctx.funcs f with
    | None -> err e.Ast.pos "call to unknown function %s" f
    | Some (id, arity) ->
      if List.length args <> arity then
        err e.Ast.pos "%s expects %d argument(s), got %d" f arity
          (List.length args);
      let arg_regs = List.map (gen_expr ctx) args in
      let dst = Builder.fresh_reg ctx.fb in
      let cont = Builder.new_block ctx.fb in
      Builder.terminate ctx.fb (Instr.Call (Some dst, id, arg_regs, cont));
      Builder.switch_to ctx.fb cont;
      dst)
  | Ast.Input ->
    let r = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (Instr.Input r);
    r
  | Ast.Unary (op, a) ->
    let ra = gen_expr ctx a in
    let dst = Builder.fresh_reg ctx.fb in
    let instr =
      match op with
      | Ast.Neg -> Instr.Unop (Instr.Neg, dst, ra)
      | Ast.Not -> Instr.Unop (Instr.Not, dst, ra)
    in
    Builder.emit ctx.fb instr;
    dst
  | Ast.Binary ((Ast.Land | Ast.Lor) as op, a, b) ->
    (* Non-short-circuit logical operators: both sides are evaluated and
       normalised to 0/1 before the bitwise combine. *)
    let ra = gen_expr ctx a in
    let rb = gen_expr ctx b in
    let zero = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (Instr.Const (zero, 0));
    let na = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (Instr.Cmp (Instr.Ne, na, ra, zero));
    let nb = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (Instr.Cmp (Instr.Ne, nb, rb, zero));
    let dst = Builder.fresh_reg ctx.fb in
    let bop = if op = Ast.Land then Instr.And else Instr.Or in
    Builder.emit ctx.fb (Instr.Binop (bop, dst, na, nb));
    dst
  | Ast.Binary (op, a, b) ->
    let ra = gen_expr ctx a in
    let rb = gen_expr ctx b in
    let dst = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (binop_instr op dst ra rb);
    dst

(* Ensure subsequent statements have an open block to land in: code
   following [return]/[break]/[continue] is unreachable but still
   generated into a fresh block. *)
let ensure_open ctx =
  if Builder.is_terminated ctx.fb (Builder.current ctx.fb) then begin
    let b = Builder.new_block ctx.fb in
    Builder.switch_to ctx.fb b
  end

let rec gen_stmt ctx (s : Ast.stmt) =
  ensure_open ctx;
  match s.Ast.sdesc with
  | Ast.Decl (x, init) ->
    if Hashtbl.mem ctx.vars x then err s.Ast.spos "variable %s redeclared" x;
    let value =
      match init with
      | Some e -> gen_expr ctx e
      | None ->
        let r = Builder.fresh_reg ctx.fb in
        Builder.emit ctx.fb (Instr.Const (r, 0));
        r
    in
    let r = Builder.fresh_reg ctx.fb in
    Builder.emit ctx.fb (Instr.Move (r, value));
    Hashtbl.replace ctx.vars x r
  | Ast.Assign (x, e) -> (
    match Hashtbl.find_opt ctx.vars x with
    | Some r ->
      let v = gen_expr ctx e in
      Builder.emit ctx.fb (Instr.Move (r, v))
    | None -> (
      match Hashtbl.find_opt ctx.globals x with
      | Some (base, _) ->
        let v = gen_expr ctx e in
        let addr = Builder.fresh_reg ctx.fb in
        Builder.emit ctx.fb (Instr.Const (addr, base));
        Builder.emit ctx.fb (Instr.Store (addr, v))
      | None -> err s.Ast.spos "assignment to unknown variable %s" x))
  | Ast.Index_assign (g, ix, e) -> (
    match Hashtbl.find_opt ctx.globals g with
    | None -> err s.Ast.spos "unknown global array %s" g
    | Some (base, _) ->
      let ix_reg = gen_expr ctx ix in
      let v = gen_expr ctx e in
      let addr = gen_address ctx base ix_reg in
      Builder.emit ctx.fb (Instr.Store (addr, v)))
  | Ast.If (cond, then_, else_) ->
    let c = gen_expr ctx cond in
    let then_b = Builder.new_block ctx.fb in
    let join_b = Builder.new_block ctx.fb in
    let else_b = if else_ = [] then join_b else Builder.new_block ctx.fb in
    Builder.terminate ctx.fb (Instr.Branch (c, then_b, else_b));
    Builder.switch_to ctx.fb then_b;
    gen_stmts ctx then_;
    if not (Builder.is_terminated ctx.fb (Builder.current ctx.fb)) then
      Builder.terminate ctx.fb (Instr.Jump join_b);
    if else_ <> [] then begin
      Builder.switch_to ctx.fb else_b;
      gen_stmts ctx else_;
      if not (Builder.is_terminated ctx.fb (Builder.current ctx.fb)) then
        Builder.terminate ctx.fb (Instr.Jump join_b)
    end;
    Builder.switch_to ctx.fb join_b
  | Ast.While (cond, body) ->
    let header = Builder.new_block ctx.fb in
    Builder.terminate ctx.fb (Instr.Jump header);
    Builder.switch_to ctx.fb header;
    let c = gen_expr ctx cond in
    let body_b = Builder.new_block ctx.fb in
    let exit_b = Builder.new_block ctx.fb in
    Builder.terminate ctx.fb (Instr.Branch (c, body_b, exit_b));
    Builder.switch_to ctx.fb body_b;
    ctx.loops <- (header, exit_b) :: ctx.loops;
    gen_stmts ctx body;
    ctx.loops <- List.tl ctx.loops;
    if not (Builder.is_terminated ctx.fb (Builder.current ctx.fb)) then
      Builder.terminate ctx.fb (Instr.Jump header);
    Builder.switch_to ctx.fb exit_b
  | Ast.Return v ->
    let value = Option.map (gen_expr ctx) v in
    if ctx.is_main then Builder.terminate ctx.fb Instr.Halt
    else Builder.terminate ctx.fb (Instr.Ret value)
  | Ast.Print e ->
    let r = gen_expr ctx e in
    Builder.emit ctx.fb (Instr.Output r)
  | Ast.Expr ({ Ast.desc = Ast.Call (f, args); _ } as e) -> (
    (* A call for effect has no def port, matching the paper's statement
       classification. *)
    match Hashtbl.find_opt ctx.funcs f with
    | None -> err e.Ast.pos "call to unknown function %s" f
    | Some (id, arity) ->
      if List.length args <> arity then
        err e.Ast.pos "%s expects %d argument(s), got %d" f arity
          (List.length args);
      let arg_regs = List.map (gen_expr ctx) args in
      let cont = Builder.new_block ctx.fb in
      Builder.terminate ctx.fb (Instr.Call (None, id, arg_regs, cont));
      Builder.switch_to ctx.fb cont)
  | Ast.Expr e -> ignore (gen_expr ctx e)
  | Ast.Break -> (
    match ctx.loops with
    | (_, exit_b) :: _ -> Builder.terminate ctx.fb (Instr.Jump exit_b)
    | [] -> err s.Ast.spos "break outside of a loop")
  | Ast.Continue -> (
    match ctx.loops with
    | (header, _) :: _ -> Builder.terminate ctx.fb (Instr.Jump header)
    | [] -> err s.Ast.spos "continue outside of a loop")

and gen_stmts ctx stmts = List.iter (gen_stmt ctx) stmts

let gen_func funcs globals is_main (f : Ast.func) =
  let fb = Builder.create ~name:f.Ast.fname ~nparams:(List.length f.Ast.params) in
  let ctx = { fb; funcs; globals; vars = Hashtbl.create 16; loops = []; is_main } in
  List.iteri (fun i p ->
      if Hashtbl.mem ctx.vars p then
        err { Ast.line = 0; col = 0 } "duplicate parameter %s in %s" p f.Ast.fname;
      Hashtbl.replace ctx.vars p i)
    f.Ast.params;
  gen_stmts ctx f.Ast.body;
  if not (Builder.is_terminated fb (Builder.current fb)) then
    Builder.terminate fb (if is_main then Instr.Halt else Instr.Ret None);
  Builder.finish fb

let program (p : Ast.program) =
  let globals = Hashtbl.create 16 in
  let glist =
    List.fold_left
      (fun base (g : Ast.global) ->
        if Hashtbl.mem globals g.Ast.gname then
          err { Ast.line = 0; col = 0 } "global %s redeclared" g.Ast.gname;
        Hashtbl.replace globals g.Ast.gname (base, g.Ast.gsize);
        base + g.Ast.gsize)
      0
      p.Ast.globals
    |> fun total ->
    ( List.map
        (fun (g : Ast.global) ->
          let base, size = Hashtbl.find globals g.Ast.gname in
          (g.Ast.gname, base, size))
        p.Ast.globals,
      total )
  in
  let global_list, mem_words = glist in
  let funcs = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ast.func) ->
      if Hashtbl.mem funcs f.Ast.fname then
        err { Ast.line = 0; col = 0 } "function %s redeclared" f.Ast.fname;
      Hashtbl.replace funcs f.Ast.fname (i, List.length f.Ast.params))
    p.Ast.funcs;
  let main_id =
    match Hashtbl.find_opt funcs "main" with
    | Some (id, 0) -> id
    | Some (_, n) ->
      err { Ast.line = 0; col = 0 } "main must take no parameters (has %d)" n
    | None -> err { Ast.line = 0; col = 0 } "program has no main function"
  in
  let ir_funcs =
    Array.of_list
      (List.mapi
         (fun i f -> gen_func funcs globals (i = main_id) f)
         p.Ast.funcs)
  in
  let prog =
    Program.make ~funcs:ir_funcs ~main:main_id
      ~mem_words:(max 1 mem_words) ~globals:global_list
  in
  Validate.check_exn prog;
  prog
