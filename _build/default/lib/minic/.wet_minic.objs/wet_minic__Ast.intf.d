lib/minic/ast.mli:
