lib/minic/codegen.ml: Array Ast Builder Fmt Hashtbl Instr List Option Program Validate Wet_ir
