lib/minic/ast.ml:
