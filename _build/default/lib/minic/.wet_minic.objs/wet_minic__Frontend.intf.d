lib/minic/frontend.mli: Wet_ir
