lib/minic/codegen.mli: Ast Wet_ir
