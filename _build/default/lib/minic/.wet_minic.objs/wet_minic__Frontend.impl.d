lib/minic/frontend.ml: Ast Codegen Parser Printf
