(** Recursive-descent parser for MiniC. *)

exception Error of string * Ast.pos

(** Parse a whole source file. @raise Error (with position) on syntax
    errors; lexer errors are re-raised as [Error] too. *)
val parse : string -> Ast.program
