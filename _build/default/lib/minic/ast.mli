(** Abstract syntax of MiniC.

    MiniC is the small imperative language the workloads are written in:
    integer scalars and global arrays, functions with recursion, [if] /
    [while] / [for], [input()] / [print()] for deterministic I/O. It
    exists so workloads are real structured programs (the role SpecInt
    sources play in the paper) rather than hand-assembled graphs. *)

type pos = { line : int; col : int }

type unary_op = Neg | Not

type binary_op =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Land | Lor  (** logical; both operands evaluated, result 0/1 *)
  | Eq | Ne | Lt | Le | Gt | Ge

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int
  | Var of string
  | Index of string * expr  (** [g\[e\]]: global array read *)
  | Call of string * expr list
  | Input  (** [input()]: next value of the external input stream *)
  | Unary of unary_op * expr
  | Binary of binary_op * expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of string * expr option  (** [var x = e;] *)
  | Assign of string * expr
  | Index_assign of string * expr * expr  (** [g\[e1\] = e2;] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Print of expr
  | Expr of expr  (** expression statement, e.g. a call for effect *)
  | Break
  | Continue

type func = { fname : string; params : string list; body : stmt list }

type global = { gname : string; gsize : int }
(** [gsize] is the region size in words; a scalar global has size 1. *)

type program = { globals : global list; funcs : func list }
