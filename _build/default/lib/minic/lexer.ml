type token =
  | INT of int
  | IDENT of string
  | KW_FN | KW_VAR | KW_GLOBAL | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_PRINT | KW_INPUT
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | AMPAMP | PIPEPIPE | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

type located = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

let keyword = function
  | "fn" -> Some KW_FN
  | "var" -> Some KW_VAR
  | "global" -> Some KW_GLOBAL
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "print" -> Some KW_PRINT
  | "input" -> Some KW_INPUT
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek s i =
  if s.off + i < String.length s.src then Some s.src.[s.off + i] else None

let advance s =
  (match peek s 0 with
   | Some '\n' ->
     s.line <- s.line + 1;
     s.col <- 1
   | Some _ -> s.col <- s.col + 1
   | None -> ());
  s.off <- s.off + 1

let pos s = { Ast.line = s.line; col = s.col }

let rec skip_ws s =
  match peek s 0 with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance s;
    skip_ws s
  | Some '/' when peek s 1 = Some '/' ->
    while peek s 0 <> None && peek s 0 <> Some '\n' do advance s done;
    skip_ws s
  | Some '/' when peek s 1 = Some '*' ->
    let start = pos s in
    advance s;
    advance s;
    let rec loop () =
      match (peek s 0, peek s 1) with
      | Some '*', Some '/' ->
        advance s;
        advance s
      | Some _, _ ->
        advance s;
        loop ()
      | None, _ -> raise (Error ("unterminated block comment", start))
    in
    loop ();
    skip_ws s
  | Some _ | None -> ()

let lex_one s =
  let p = pos s in
  let simple tok n =
    for _ = 1 to n do advance s done;
    { tok; pos = p }
  in
  match peek s 0 with
  | None -> { tok = EOF; pos = p }
  | Some c when is_digit c ->
    let start = s.off in
    while (match peek s 0 with Some c -> is_digit c | None -> false) do
      advance s
    done;
    let text = String.sub s.src start (s.off - start) in
    (match int_of_string_opt text with
     | Some n -> { tok = INT n; pos = p }
     | None -> raise (Error ("integer literal out of range: " ^ text, p)))
  | Some c when is_ident_start c ->
    let start = s.off in
    while (match peek s 0 with Some c -> is_ident_char c | None -> false) do
      advance s
    done;
    let text = String.sub s.src start (s.off - start) in
    (match keyword text with
     | Some kw -> { tok = kw; pos = p }
     | None -> { tok = IDENT text; pos = p })
  | Some '(' -> simple LPAREN 1
  | Some ')' -> simple RPAREN 1
  | Some '{' -> simple LBRACE 1
  | Some '}' -> simple RBRACE 1
  | Some '[' -> simple LBRACKET 1
  | Some ']' -> simple RBRACKET 1
  | Some ',' -> simple COMMA 1
  | Some ';' -> simple SEMI 1
  | Some '+' -> simple PLUS 1
  | Some '-' -> simple MINUS 1
  | Some '*' -> simple STAR 1
  | Some '/' -> simple SLASH 1
  | Some '%' -> simple PERCENT 1
  | Some '^' -> simple CARET 1
  | Some '&' -> if peek s 1 = Some '&' then simple AMPAMP 2 else simple AMP 1
  | Some '|' -> if peek s 1 = Some '|' then simple PIPEPIPE 2 else simple PIPE 1
  | Some '<' ->
    (match peek s 1 with
     | Some '<' -> simple SHL 2
     | Some '=' -> simple LE 2
     | _ -> simple LT 1)
  | Some '>' ->
    (match peek s 1 with
     | Some '>' -> simple SHR 2
     | Some '=' -> simple GE 2
     | _ -> simple GT 1)
  | Some '=' -> if peek s 1 = Some '=' then simple EQ 2 else simple ASSIGN 1
  | Some '!' -> if peek s 1 = Some '=' then simple NE 2 else simple BANG 1
  | Some c -> raise (Error (Printf.sprintf "unexpected character %C" c, p))

let tokens src =
  let s = { src; off = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_ws s;
    let t = lex_one s in
    if t.tok = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []

let token_name = function
  | INT n -> string_of_int n
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_FN -> "'fn'" | KW_VAR -> "'var'" | KW_GLOBAL -> "'global'"
  | KW_IF -> "'if'" | KW_ELSE -> "'else'" | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'" | KW_RETURN -> "'return'" | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'" | KW_PRINT -> "'print'" | KW_INPUT -> "'input'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | COMMA -> "','" | SEMI -> "';'"
  | ASSIGN -> "'='" | PLUS -> "'+'" | MINUS -> "'-'" | STAR -> "'*'"
  | SLASH -> "'/'" | PERCENT -> "'%'" | AMP -> "'&'" | PIPE -> "'|'"
  | CARET -> "'^'" | SHL -> "'<<'" | SHR -> "'>>'" | AMPAMP -> "'&&'"
  | PIPEPIPE -> "'||'" | BANG -> "'!'" | EQ -> "'=='" | NE -> "'!='"
  | LT -> "'<'" | LE -> "'<='" | GT -> "'>'" | GE -> "'>='" | EOF -> "end of input"
