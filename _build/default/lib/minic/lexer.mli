(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | IDENT of string
  | KW_FN | KW_VAR | KW_GLOBAL | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE | KW_PRINT | KW_INPUT
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN  (** [=] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR
  | AMPAMP | PIPEPIPE | BANG
  | EQ | NE | LT | LE | GT | GE
  | EOF

type located = { tok : token; pos : Ast.pos }

exception Error of string * Ast.pos

(** [tokens src] lexes the whole source. Supports [//] line comments and
    [/* */] block comments. @raise Error on an unexpected character. *)
val tokens : string -> located list

val token_name : token -> string
