type pos = { line : int; col : int }

type unary_op = Neg | Not

type binary_op =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Land | Lor
  | Eq | Ne | Lt | Le | Gt | Ge

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Int of int
  | Var of string
  | Index of string * expr
  | Call of string * expr list
  | Input
  | Unary of unary_op * expr
  | Binary of binary_op * expr * expr

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of string * expr option
  | Assign of string * expr
  | Index_assign of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Print of expr
  | Expr of expr
  | Break
  | Continue

type func = { fname : string; params : string list; body : stmt list }

type global = { gname : string; gsize : int }

type program = { globals : global list; funcs : func list }
