exception Error of string * Ast.pos

type state = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* the token list always ends with EOF *)

let advance st =
  match st.toks with
  | _ :: rest when rest <> [] -> st.toks <- rest
  | _ -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = peek st in
  if t.Lexer.tok = tok then advance st
  else
    raise
      (Error
         ( Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
             (Lexer.token_name t.Lexer.tok),
           t.Lexer.pos ))

let expect_ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> (s, t.Lexer.pos)
  | other ->
    raise
      (Error
         ( "expected an identifier but found " ^ Lexer.token_name other,
           t.Lexer.pos ))

(* Binary operator precedence: higher binds tighter. *)
let binop_of_token = function
  | Lexer.PIPEPIPE -> Some (Ast.Lor, 1)
  | Lexer.AMPAMP -> Some (Ast.Land, 2)
  | Lexer.PIPE -> Some (Ast.Bor, 3)
  | Lexer.CARET -> Some (Ast.Bxor, 4)
  | Lexer.AMP -> Some (Ast.Band, 5)
  | Lexer.EQ -> Some (Ast.Eq, 6)
  | Lexer.NE -> Some (Ast.Ne, 6)
  | Lexer.LT -> Some (Ast.Lt, 7)
  | Lexer.LE -> Some (Ast.Le, 7)
  | Lexer.GT -> Some (Ast.Gt, 7)
  | Lexer.GE -> Some (Ast.Ge, 7)
  | Lexer.SHL -> Some (Ast.Shl, 8)
  | Lexer.SHR -> Some (Ast.Shr, 8)
  | Lexer.PLUS -> Some (Ast.Add, 9)
  | Lexer.MINUS -> Some (Ast.Sub, 9)
  | Lexer.STAR -> Some (Ast.Mul, 10)
  | Lexer.SLASH -> Some (Ast.Div, 10)
  | Lexer.PERCENT -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    let t = peek st in
    match binop_of_token t.Lexer.tok with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop { Ast.desc = Ast.Binary (op, lhs, rhs); pos = t.Lexer.pos }
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.MINUS ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Unary (Ast.Neg, e); pos = t.Lexer.pos }
  | Lexer.BANG ->
    advance st;
    let e = parse_unary st in
    { Ast.desc = Ast.Unary (Ast.Not, e); pos = t.Lexer.pos }
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  let pos = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.INT n -> { Ast.desc = Ast.Int n; pos }
  | Lexer.KW_INPUT ->
    expect st Lexer.LPAREN;
    expect st Lexer.RPAREN;
    { Ast.desc = Ast.Input; pos }
  | Lexer.LPAREN ->
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    match (peek st).Lexer.tok with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      { Ast.desc = Ast.Call (name, args); pos }
    | Lexer.LBRACKET ->
      advance st;
      let ix = parse_expr st in
      expect st Lexer.RBRACKET;
      { Ast.desc = Ast.Index (name, ix); pos }
    | _ -> { Ast.desc = Ast.Var name; pos })
  | other ->
    raise (Error ("expected an expression, found " ^ Lexer.token_name other, pos))

and parse_args st =
  if (peek st).Lexer.tok = Lexer.RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match (next st).Lexer.tok with
      | Lexer.COMMA -> loop (e :: acc)
      | Lexer.RPAREN -> List.rev (e :: acc)
      | other ->
        raise
          (Error
             ( "expected ',' or ')' in argument list, found "
               ^ Lexer.token_name other,
               (peek st).Lexer.pos ))
    in
    loop []

(* [parse_stmt] yields a list because [for] desugars into its
   initialiser followed by a [while]. *)
let rec parse_stmt st : Ast.stmt list =
  let t = peek st in
  let pos = t.Lexer.pos in
  let mk sdesc = [ { Ast.sdesc; spos = pos } ] in
  match t.Lexer.tok with
  | Lexer.KW_VAR ->
    advance st;
    let name, _ = expect_ident st in
    let init =
      if (peek st).Lexer.tok = Lexer.ASSIGN then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    expect st Lexer.SEMI;
    mk (Ast.Decl (name, init))
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_ = parse_block st in
    let else_ =
      if (peek st).Lexer.tok = Lexer.KW_ELSE then begin
        advance st;
        if (peek st).Lexer.tok = Lexer.KW_IF then parse_stmt st
        else parse_block st
      end
      else []
    in
    mk (Ast.If (cond, then_, else_))
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    mk (Ast.While (cond, body))
  | Lexer.KW_FOR ->
    (* for (init; cond; step) body  desugars to
       init; while (cond) { body; step; } — note that [continue] inside a
       desugared [for] skips the step, which is documented MiniC
       behaviour (closer to a while loop than to C). *)
    advance st;
    expect st Lexer.LPAREN;
    let init =
      match (peek st).Lexer.tok with
      | Lexer.SEMI ->
        advance st;
        []
      | Lexer.KW_VAR ->
        advance st;
        let name, vpos = expect_ident st in
        expect st Lexer.ASSIGN;
        let e = parse_expr st in
        expect st Lexer.SEMI;
        [ { Ast.sdesc = Ast.Decl (name, Some e); spos = vpos } ]
      | _ -> [ parse_simple_stmt st ]
    in
    let cond =
      if (peek st).Lexer.tok = Lexer.SEMI then
        { Ast.desc = Ast.Int 1; pos }
      else parse_expr st
    in
    expect st Lexer.SEMI;
    let step =
      if (peek st).Lexer.tok = Lexer.RPAREN then []
      else [ parse_simple_stmt_no_semi st ]
    in
    expect st Lexer.RPAREN;
    let body = parse_block st in
    let while_ = { Ast.sdesc = Ast.While (cond, body @ step); spos = pos } in
    init @ [ while_ ]
  | Lexer.KW_RETURN ->
    advance st;
    let v =
      if (peek st).Lexer.tok = Lexer.SEMI then None else Some (parse_expr st)
    in
    expect st Lexer.SEMI;
    mk (Ast.Return v)
  | Lexer.KW_PRINT ->
    advance st;
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    expect st Lexer.SEMI;
    mk (Ast.Print e)
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI;
    mk Ast.Break
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    mk Ast.Continue
  | _ -> [ parse_simple_stmt st ]

(* Assignment, array store or expression statement, consuming ';'. *)
and parse_simple_stmt st =
  let s = parse_simple_stmt_no_semi st in
  expect st Lexer.SEMI;
  s

and parse_simple_stmt_no_semi st =
  let t = peek st in
  let pos = t.Lexer.pos in
  match t.Lexer.tok with
  | Lexer.IDENT name -> (
    advance st;
    match (peek st).Lexer.tok with
    | Lexer.ASSIGN ->
      advance st;
      let e = parse_expr st in
      { Ast.sdesc = Ast.Assign (name, e); spos = pos }
    | Lexer.LBRACKET ->
      advance st;
      let ix = parse_expr st in
      expect st Lexer.RBRACKET;
      (match (peek st).Lexer.tok with
       | Lexer.ASSIGN ->
         advance st;
         let e = parse_expr st in
         { Ast.sdesc = Ast.Index_assign (name, ix, e); spos = pos }
       | _ ->
         raise (Error ("expected '=' after array index", pos)))
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      { Ast.sdesc = Ast.Expr { Ast.desc = Ast.Call (name, args); pos };
        spos = pos }
    | other ->
      raise
        (Error
           ( "expected '=', '[' or '(' after identifier, found "
             ^ Lexer.token_name other,
             pos )))
  | other ->
    raise (Error ("expected a statement, found " ^ Lexer.token_name other, pos))

and parse_block st =
  expect st Lexer.LBRACE;
  let rec loop acc =
    if (peek st).Lexer.tok = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (List.rev_append (parse_stmt st) acc)
  in
  loop []

let parse_global st : Ast.global =
  (* 'global' consumed by caller *)
  let name, pos = expect_ident st in
  let size =
    if (peek st).Lexer.tok = Lexer.LBRACKET then begin
      advance st;
      let t = next st in
      match t.Lexer.tok with
      | Lexer.INT n ->
        expect st Lexer.RBRACKET;
        if n <= 0 then raise (Error ("array size must be positive", pos));
        n
      | other ->
        raise
          (Error
             ( "expected an integer array size, found " ^ Lexer.token_name other,
               t.Lexer.pos ))
    end
    else 1
  in
  expect st Lexer.SEMI;
  { Ast.gname = name; gsize = size }

let parse_func st : Ast.func =
  (* 'fn' consumed by caller *)
  let name, _ = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    if (peek st).Lexer.tok = Lexer.RPAREN then begin
      advance st;
      []
    end
    else
      let rec loop acc =
        let p, _ = expect_ident st in
        match (next st).Lexer.tok with
        | Lexer.COMMA -> loop (p :: acc)
        | Lexer.RPAREN -> List.rev (p :: acc)
        | other ->
          raise
            (Error
               ( "expected ',' or ')' in parameter list, found "
                 ^ Lexer.token_name other,
                 (peek st).Lexer.pos ))
      in
      loop []
  in
  let body = parse_block st in
  { Ast.fname = name; params; body }

let parse src =
  let toks =
    try Lexer.tokens src with Lexer.Error (m, p) -> raise (Error (m, p))
  in
  let st = { toks } in
  let rec loop globals funcs =
    let t = next st in
    match t.Lexer.tok with
    | Lexer.EOF ->
      { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KW_GLOBAL -> loop (parse_global st :: globals) funcs
    | Lexer.KW_FN -> loop globals (parse_func st :: funcs)
    | other ->
      raise
        (Error
           ( "expected 'global' or 'fn' at top level, found "
             ^ Lexer.token_name other,
             t.Lexer.pos ))
  in
  loop [] []
