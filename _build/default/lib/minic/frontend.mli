(** One-call MiniC front end. *)

(** [compile src] lexes, parses and translates a MiniC source string.
    Errors are rendered as ["line L, column C: message"]. *)
val compile : string -> (Wet_ir.Program.t, string) result

(** Like {!compile} but raises [Invalid_argument] with the rendered
    message. Convenient for workloads that are known-good sources. *)
val compile_exn : string -> Wet_ir.Program.t
