module Hashing = Wet_util.Hashing

type kind =
  | Fcm of { table : int array; bits : int; ctx : int array; mutable fill : int }
  | Dfcm of {
      table : int array;
      bits : int;
      ctx : int array;  (* last strides *)
      mutable last : int;
      mutable fill : int;
    }
  | Last_n of { history : int array; mutable fill : int }
  | Stride of { mutable last : int; mutable stride : int; mutable fill : int }

type t = { kind : kind; label : string }

let fcm ?(table_bits = 16) ~ctx () =
  if ctx < 1 then invalid_arg "Predictor.fcm: ctx >= 1";
  {
    kind =
      Fcm { table = Array.make (1 lsl table_bits) 0; bits = table_bits;
            ctx = Array.make ctx 0; fill = 0 };
    label = Printf.sprintf "fcm/%d" ctx;
  }

let dfcm ?(table_bits = 16) ~ctx () =
  if ctx < 1 then invalid_arg "Predictor.dfcm: ctx >= 1";
  {
    kind =
      Dfcm { table = Array.make (1 lsl table_bits) 0; bits = table_bits;
             ctx = Array.make ctx 0; last = 0; fill = 0 };
    label = Printf.sprintf "dfcm/%d" ctx;
  }

let last_n ~n =
  if n < 1 then invalid_arg "Predictor.last_n: n >= 1";
  { kind = Last_n { history = Array.make n 0; fill = 0 };
    label = Printf.sprintf "last-%d" n }

let stride () =
  { kind = Stride { last = 0; stride = 0; fill = 0 }; label = "stride" }

let name t = t.label

let shift_in a v =
  let n = Array.length a in
  Array.blit a 1 a 0 (n - 1);
  a.(n - 1) <- v

let feed t v =
  match t.kind with
  | Fcm s ->
    let ix =
      Hashing.index_of_hash
        (Hashing.hash_window s.ctx 0 (Array.length s.ctx))
        s.bits
    in
    let warm = s.fill >= Array.length s.ctx in
    let correct = warm && s.table.(ix) = v in
    s.table.(ix) <- v;
    shift_in s.ctx v;
    s.fill <- s.fill + 1;
    correct
  | Dfcm s ->
    let ix =
      Hashing.index_of_hash
        (Hashing.hash_window s.ctx 0 (Array.length s.ctx))
        s.bits
    in
    let warm = s.fill >= Array.length s.ctx + 1 in
    let predicted = s.last + s.table.(ix) in
    let correct = warm && predicted = v in
    let actual_stride = v - s.last in
    s.table.(ix) <- actual_stride;
    shift_in s.ctx actual_stride;
    s.last <- v;
    s.fill <- s.fill + 1;
    correct
  | Last_n s ->
    let correct = s.fill > 0 && Array.exists (fun x -> x = v) s.history in
    shift_in s.history v;
    s.fill <- s.fill + 1;
    correct
  | Stride s ->
    let correct = s.fill >= 2 && s.last + s.stride = v in
    s.stride <- v - s.last;
    s.last <- v;
    s.fill <- s.fill + 1;
    correct

let accuracy t values =
  let n = Array.length values in
  if n = 0 then 0.
  else begin
    let hits = ref 0 in
    Array.iter (fun v -> if feed t v then incr hits) values;
    float_of_int !hits /. float_of_int n
  end
