lib/predict/predictor.ml: Array Printf Wet_util
