lib/predict/predictor.mli:
