(** Unidirectional value predictors.

    These are the classical predictors the paper's compression scheme is
    derived from (FCM, differential FCM, last-n, stride). The library
    exists for profile-analysis clients — e.g. using a WET's
    per-instruction load value traces to evaluate value predictability,
    one of the motivating uses in the paper's introduction — and as a
    reference point for the bidirectional compressors. *)

type t

(** Finite context method: predicts the value that followed the hash of
    the last [ctx] values last time. *)
val fcm : ?table_bits:int -> ctx:int -> unit -> t

(** Differential FCM: predicts strides instead of values. *)
val dfcm : ?table_bits:int -> ctx:int -> unit -> t

(** Last-n: predicts a repeat of one of the last [n] values. *)
val last_n : n:int -> t

(** Stride: predicts last value + last stride. *)
val stride : unit -> t

val name : t -> string

(** [feed t v] — was [v] predicted correctly? Updates the predictor. *)
val feed : t -> int -> bool

(** Fraction of correctly predicted values over a whole stream (the
    predictor keeps its state; use a fresh predictor per experiment). *)
val accuracy : t -> int array -> float
