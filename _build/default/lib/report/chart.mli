(** ASCII charts for the paper's figures. *)

(** [stacked ~title ~width ~legend rows] renders one horizontal
    100%-stacked bar per row (paper Fig. 8). Each row is
    [(label, segments)]; segments are scaled to percentages of their sum
    and drawn with the legend's fill characters. *)
val stacked :
  title:string ->
  width:int ->
  legend:(char * string) list ->
  (string * float list) list ->
  string

(** [series ~title ~ylabel rows] renders one line per row label with a
    bar proportional to the value and the value itself (paper Fig. 9:
    compression ratio as the run length grows). *)
val series :
  title:string -> ylabel:string -> (string * float) list -> string
