lib/report/chart.mli:
