lib/report/table.mli:
