let stacked ~title ~width ~legend rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf "  legend: ";
  Buffer.add_string buf
    (String.concat "  "
       (List.map (fun (c, name) -> Printf.sprintf "%c = %s" c name) legend));
  Buffer.add_char buf '\n';
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  List.iter
    (fun (label, segments) ->
      let total = List.fold_left ( +. ) 0. segments in
      let total = if total <= 0. then 1. else total in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |" label_width label);
      let drawn = ref 0 in
      List.iteri
        (fun i v ->
          let c = fst (List.nth legend (min i (List.length legend - 1))) in
          let cells =
            if i = List.length segments - 1 then width - !drawn
            else int_of_float (Float.round (v /. total *. float_of_int width))
          in
          let cells = max 0 (min cells (width - !drawn)) in
          Buffer.add_string buf (String.make cells c);
          drawn := !drawn + cells)
        segments;
      Buffer.add_string buf "|";
      List.iteri
        (fun i v ->
          Buffer.add_string buf
            (Printf.sprintf "%s%.1f%%"
               (if i = 0 then " " else " / ")
               (v /. total *. 100.)))
        segments;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let series ~title ~ylabel rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let vmax = List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 rows in
  List.iter
    (fun (label, v) ->
      let cells = int_of_float (v /. vmax *. 50.) in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s |%s %.1f %s\n" label_width label
           (String.make (max 0 cells) '#')
           v ylabel))
    rows;
  Buffer.contents buf
