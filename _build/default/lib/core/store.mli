(** Saving WETs to disk and loading them back.

    The paper's premise is a tool for the {e collection and maintenance}
    of whole execution traces; persistence makes the collected WETs
    reusable across analysis sessions. The on-disk form is a versioned,
    magic-tagged container of the in-memory representation, so a load
    costs no recompression and cursors resume at the left end. *)

(** [save wet path] writes the WET (either tier). Overwrites [path]. *)
val save : Wet.t -> string -> unit

(** [load path] reads a WET saved by {!save}.
    @raise Invalid_argument if the file is not a WET container or the
    format version does not match. *)
val load : string -> Wet.t
