module Stream = Wet_bistream.Stream

type breakdown = {
  ts_bytes : float;
  vals_bytes : float;
  edge_bytes : float;
  total_bytes : float;
}

let make ts vals edges =
  { ts_bytes = ts; vals_bytes = vals; edge_bytes = edges;
    total_bytes = ts +. vals +. edges }

let original (t : Wet.t) =
  let s = t.Wet.stats in
  (* Per the WET definition (paper §2) every statement instance carries a
     timestamp and, if it has a def port, a value; the paper's Table 2
     arithmetic (~4 bytes of ts per executed statement) confirms the
     per-statement accounting. *)
  make
    (4. *. float_of_int s.Wet.stmts_executed)
    (4. *. float_of_int s.Wet.def_execs)
    (8. *. float_of_int (s.Wet.dep_instances + s.Wet.cd_instances))

let current (t : Wet.t) =
  let bits_to_bytes b = float_of_int b /. 8. in
  let ts = ref 0 in
  let vals = ref 0 in
  Array.iter
    (fun (n : Wet.node) ->
      ts := !ts + Stream.bits n.Wet.n_ts;
      Array.iter
        (fun (g : Wet.group) ->
          match g.Wet.g_pattern with
          | Some p -> vals := !vals + Stream.bits p
          | None -> ())
        n.Wet.n_groups)
    t.Wet.nodes;
  Array.iter
    (fun uv -> match uv with Some s -> vals := !vals + Stream.bits s | None -> ())
    t.Wet.copy_uvals;
  (* Dependence labels, shared sequences counted once. *)
  let seen = Hashtbl.create 1024 in
  let edges = ref 0 in
  let add_labels (l : Wet.labels) =
    if not (Hashtbl.mem seen l.Wet.l_id) then begin
      Hashtbl.replace seen l.Wet.l_id ();
      edges := !edges + Stream.bits l.Wet.l_dst + Stream.bits l.Wet.l_src
    end
  in
  let add_source = function
    | Wet.No_dep | Wet.Local _ -> ()
    | Wet.Remote es -> List.iter (fun e -> add_labels e.Wet.e_labels) es
  in
  Array.iter (Array.iter add_source) t.Wet.copy_deps;
  Array.iter (fun (n : Wet.node) -> Array.iter add_source n.Wet.n_cd) t.Wet.nodes;
  make (bits_to_bytes !ts) (bits_to_bytes !vals) (bits_to_bytes !edges)

let mb bytes = bytes /. (1024. *. 1024.)
