(** WET construction (tier-1) and stream packing (tier-2).

    {!build} performs the paper's tier-1 customized compression while
    replaying a raw trace:
    {ul
    {- nodes are interned per executed Ball–Larus path, so one timestamp
       is recorded per path execution rather than per block (§3.1);}
    {- value sequences are split into input groups with shared patterns
       and per-copy unique values (§3.2);}
    {- dependence slots whose producer always lies in the same node
       execution become label-free {!Wet.Local} links, and labeled edges
       between the same node pair with identical sequences share one
       label record (§3.3).}}

    All label sequences are raw after {!build}; {!pack} rewrites each of
    them as a bidirectionally compressed stream with per-stream method
    selection (§4), leaving the graph structure untouched. *)

(** Build a tier-1 WET from a recorded trace. *)
val build : Wet_interp.Trace.t -> Wet.t

(** Tier-2: compress every label stream of a tier-1 WET. The input WET
    remains usable. @raise Invalid_argument if already packed. *)
val pack : Wet.t -> Wet.t

(** [of_program p ~input] is the full pipeline: run the interpreter and
    build the tier-1 WET. *)
val of_program : Wet_ir.Program.t -> input:int array -> Wet.t
