lib/core/builder.mli: Wet Wet_interp Wet_ir
