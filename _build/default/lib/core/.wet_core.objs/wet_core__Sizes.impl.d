lib/core/sizes.ml: Array Hashtbl List Wet Wet_bistream
