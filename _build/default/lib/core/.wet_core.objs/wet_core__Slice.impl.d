lib/core/slice.ml: Array Hashtbl List Wet Wet_bistream Wet_ir
