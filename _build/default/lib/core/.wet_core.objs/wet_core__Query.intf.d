lib/core/query.mli: Wet Wet_ir
