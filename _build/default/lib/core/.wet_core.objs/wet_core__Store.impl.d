lib/core/store.ml: Fun Marshal Printf String Wet
