lib/core/wet.mli: Wet_bistream Wet_cfg Wet_ir
