lib/core/query.ml: Array List Wet Wet_bistream Wet_ir
