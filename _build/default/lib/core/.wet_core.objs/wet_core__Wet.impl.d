lib/core/wet.ml: Array Wet_bistream Wet_cfg Wet_ir
