lib/core/builder.ml: Array Bytes Fun Hashtbl Int List Option Set Wet Wet_bistream Wet_cfg Wet_interp Wet_ir Wet_util
