lib/core/slice.mli: Wet
