lib/core/store.mli: Wet
