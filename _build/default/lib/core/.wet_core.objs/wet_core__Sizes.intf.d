lib/core/sizes.mli: Wet
