(* Versioned container around the runtime representation. Everything in
   a [Wet.t] is plain data (arrays, bytes, records), so the OCaml
   marshaller round-trips it exactly; [Closures] is not passed, keeping
   the format closed under data. Cursor positions are part of the state
   and therefore of the file; [Query.park] resets them after load if a
   caller wants a canonical starting point. *)

let magic = "WETOCaml"

let version = 1

let save (w : Wet.t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc w [])

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let tag =
        try really_input_string ic (String.length magic)
        with End_of_file -> ""
      in
      if not (String.equal tag magic) then
        invalid_arg (path ^ ": not a WET container");
      let v = input_binary_int ic in
      if v <> version then
        invalid_arg
          (Printf.sprintf "%s: WET container version %d, expected %d" path v
             version);
      (Marshal.from_channel ic : Wet.t))
