(** A direct-mapped data cache.

    Supplies the per-access hit/miss bits of the paper's Table 4. Sizes
    are in words (the IR's memory unit). *)

type t

(** [create ~size_words ~line_words ()] — defaults: 4096-word cache
    (32 KiB of 8-byte words), 4-word lines. Both must be powers of two.
    @raise Invalid_argument otherwise. *)
val create : ?size_words:int -> ?line_words:int -> unit -> t

(** [access t ~addr ~is_store] simulates one access; [true] = hit. *)
val access : t -> addr:int -> is_store:bool -> bool

(** [(load accesses, load misses, store accesses, store misses)]. *)
val stats : t -> int * int * int * int
