lib/arch/arch_profile.mli: Branch_predictor Cache Wet_interp
