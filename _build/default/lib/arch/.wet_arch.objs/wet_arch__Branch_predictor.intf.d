lib/arch/branch_predictor.mli:
