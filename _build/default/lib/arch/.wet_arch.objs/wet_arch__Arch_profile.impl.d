lib/arch/arch_profile.ml: Array Branch_predictor Cache Wet_interp Wet_ir
