lib/arch/cache.mli:
