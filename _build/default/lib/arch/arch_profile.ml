module T = Wet_interp.Trace
module Instr = Wet_ir.Instr
module Program = Wet_ir.Program

type result = {
  branches : int;
  mispredicts : int;
  loads : int;
  load_misses : int;
  stores : int;
  store_misses : int;
}

let of_trace ?predictor ?cache (trace : T.t) =
  let bp =
    match predictor with Some p -> p | None -> Branch_predictor.create ()
  in
  let c = match cache with Some c -> c | None -> Cache.create () in
  let prog = T.program trace in
  let nblocks = Array.length trace.T.blocks in
  for k = 0 to nblocks - 1 do
    let f, b = T.decode_block trace.T.blocks.(k) in
    let fn = prog.Program.funcs.(f) in
    match Wet_ir.Func.terminator fn b with
    | Instr.Branch (_, b1, _) when k + 1 < nblocks ->
      (* A branch transfers directly, so the next block event is its
         target within the same function. *)
      let _, nb = T.decode_block trace.T.blocks.(k + 1) in
      let ninstrs = Array.length fn.Wet_ir.Func.blocks.(b).Wet_ir.Func.instrs in
      let pc = Program.stmt_id prog f b (ninstrs - 1) in
      ignore (Branch_predictor.record bp ~pc ~taken:(nb = b1))
    | _ -> ()
  done;
  Array.iter
    (fun op ->
      ignore (Cache.access c ~addr:(op lsr 1) ~is_store:(op land 1 = 1)))
    trace.T.mem_ops;
  let branches, mispredicts = Branch_predictor.stats bp in
  let loads, load_misses, stores, store_misses = Cache.stats c in
  { branches; mispredicts; loads; load_misses; stores; store_misses }

let history_bytes r =
  let bits n = float_of_int n /. 8. in
  (bits r.branches, bits r.loads, bits r.stores)
