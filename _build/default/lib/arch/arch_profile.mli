(** Architecture-specific augmentation of a trace (paper Table 4).

    Replays a recorded trace through a gshare branch predictor and a
    direct-mapped data cache, yielding the per-event one-bit histories
    (mispredict / load miss / store miss) whose storage Table 4 sizes. *)

type result = {
  branches : int;
  mispredicts : int;
  loads : int;
  load_misses : int;
  stores : int;
  store_misses : int;
}

(** Replay with the given (or default) structures. *)
val of_trace :
  ?predictor:Branch_predictor.t ->
  ?cache:Cache.t ->
  Wet_interp.Trace.t ->
  result

(** Uncompressed one-bit-per-event storage in bytes:
    [(branch, load, store)]. *)
val history_bytes : result -> float * float * float
