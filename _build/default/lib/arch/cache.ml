type t = {
  tags : int array;  (* -1 = invalid *)
  line_shift : int;
  index_mask : int;
  mutable loads : int;
  mutable load_misses : int;
  mutable stores : int;
  mutable store_misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v / 2) in
  go 0 n

let create ?(size_words = 4096) ?(line_words = 4) () =
  if not (is_pow2 size_words && is_pow2 line_words) then
    invalid_arg "Cache.create: sizes must be powers of two";
  if line_words > size_words then
    invalid_arg "Cache.create: line larger than cache";
  let nlines = size_words / line_words in
  {
    tags = Array.make nlines (-1);
    line_shift = log2 line_words;
    index_mask = nlines - 1;
    loads = 0;
    load_misses = 0;
    stores = 0;
    store_misses = 0;
  }

let access t ~addr ~is_store =
  let line = addr asr t.line_shift in
  let ix = line land t.index_mask in
  let hit = t.tags.(ix) = line in
  if not hit then t.tags.(ix) <- line;  (* allocate on both read and write *)
  if is_store then begin
    t.stores <- t.stores + 1;
    if not hit then t.store_misses <- t.store_misses + 1
  end
  else begin
    t.loads <- t.loads + 1;
    if not hit then t.load_misses <- t.load_misses + 1
  end;
  hit

let stats t = (t.loads, t.load_misses, t.stores, t.store_misses)
