(** A gshare branch predictor.

    The paper's Table 4 augments the WET with one bit of misprediction
    history per branch execution; this predictor supplies those bits.
    [2^history_bits] two-bit saturating counters are indexed by the
    branch address XORed with the global history register. *)

type t

(** [create ~history_bits ()] — default 12 bits (4096 counters). *)
val create : ?history_bits:int -> unit -> t

(** [predict t ~pc] is the predicted direction for the branch at [pc]. *)
val predict : t -> pc:int -> bool

(** [record t ~pc ~taken] updates the counter and history; returns
    [true] if the prediction was correct. *)
val record : t -> pc:int -> taken:bool -> bool

(** Executions seen and mispredictions so far. *)
val stats : t -> int * int
