type t = {
  counters : Bytes.t;  (* 2-bit saturating counters, one byte each *)
  mask : int;
  mutable history : int;
  mutable executed : int;
  mutable mispredicted : int;
}

let create ?(history_bits = 12) () =
  if history_bits < 1 || history_bits > 24 then
    invalid_arg "Branch_predictor.create: history_bits in [1,24]";
  {
    counters = Bytes.make (1 lsl history_bits) '\001';  (* weakly not-taken *)
    mask = (1 lsl history_bits) - 1;
    history = 0;
    executed = 0;
    mispredicted = 0;
  }

let index t ~pc = (pc lxor t.history) land t.mask

let predict t ~pc = Char.code (Bytes.get t.counters (index t ~pc)) >= 2

let record t ~pc ~taken =
  let ix = index t ~pc in
  let c = Char.code (Bytes.get t.counters ix) in
  let correct = c >= 2 = taken in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.counters ix (Char.chr c');
  t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.mask;
  t.executed <- t.executed + 1;
  if not correct then t.mispredicted <- t.mispredicted + 1;
  correct

let stats t = (t.executed, t.mispredicted)
