(* 64-bit FNV-1a, truncated to OCaml's 63-bit int. *)

let fnv_prime = 0x100000001b3

let fnv_init = 0x4bf29ce484222325 (* FNV offset basis, truncated to 63 bits *)

let fnv_fold acc x =
  (* Mix all eight bytes of [x] so nearby values do not collide. *)
  let acc = ref acc and x = ref x in
  for _ = 0 to 7 do
    acc := ((!acc lxor (!x land 0xff)) * fnv_prime) land max_int;
    x := !x lsr 8
  done;
  !acc

let hash_window a pos len =
  let acc = ref fnv_init in
  for i = pos to pos + len - 1 do
    acc := fnv_fold !acc (Array.unsafe_get a i)
  done;
  !acc

let hash_list xs = List.fold_left fnv_fold fnv_init xs

let index_of_hash h bits = (h lxor (h lsr 31)) land ((1 lsl bits) - 1)
