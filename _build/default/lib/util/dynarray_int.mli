(** Growable arrays of unboxed [int]s.

    Every dynamic label sequence in a WET (timestamps, values, pattern
    indices, edge timestamp pairs) is accumulated in one of these while the
    interpreter runs, then frozen with {!to_array} before compression. *)

type t

(** [create ()] is an empty array with a small initial capacity. *)
val create : unit -> t

(** [with_capacity n] is an empty array that will not reallocate before
    [n] elements have been appended. *)
val with_capacity : int -> t

(** Number of elements currently stored. *)
val length : t -> int

(** [get a i] is the [i]th element. @raise Invalid_argument if out of
    bounds. *)
val get : t -> int -> int

(** [set a i v] overwrites the [i]th element. @raise Invalid_argument if
    out of bounds. *)
val set : t -> int -> int -> unit

(** Append one element, growing the backing store if needed. *)
val push : t -> int -> unit

(** Last element. @raise Invalid_argument on an empty array. *)
val last : t -> int

(** Remove and return the last element. @raise Invalid_argument if empty. *)
val pop : t -> int

(** Drop all elements, keeping the backing store. *)
val clear : t -> unit

(** Fresh [int array] copy of the contents. *)
val to_array : t -> int array

(** [of_array a] copies [a] into a fresh growable array. *)
val of_array : int array -> t

(** [iter f a] applies [f] to every element in index order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f init a] folds [f] over elements in index order. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [sub a pos len] is a fresh array of [len] elements starting at [pos]. *)
val sub : t -> int -> int -> int array
