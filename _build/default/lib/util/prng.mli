(** Deterministic splitmix64 pseudo-random generator.

    Workload inputs and slice-criterion sampling must be reproducible
    across runs and platforms, so nothing in this repository uses the
    stdlib's seeded-from-entropy generator. *)

type t

(** [create seed] is a generator whose stream depends only on [seed]. *)
val create : int -> t

(** Next raw 62-bit non-negative value. *)
val next : t -> int

(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a uniform coin flip. *)
val bool : t -> bool
