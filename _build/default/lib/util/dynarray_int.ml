type t = { mutable data : int array; mutable len : int }

let create () = { data = Array.make 8 0; len = 0 }

let with_capacity n = { data = Array.make (max 1 n) 0; len = 0 }

let length a = a.len

let check a i =
  if i < 0 || i >= a.len then
    invalid_arg (Printf.sprintf "Dynarray_int: index %d out of [0,%d)" i a.len)

let get a i = check a i; Array.unsafe_get a.data i

let set a i v = check a i; Array.unsafe_set a.data i v

let grow a =
  let cap = Array.length a.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit a.data 0 data 0 a.len;
  a.data <- data

let push a v =
  if a.len = Array.length a.data then grow a;
  Array.unsafe_set a.data a.len v;
  a.len <- a.len + 1

let last a =
  if a.len = 0 then invalid_arg "Dynarray_int.last: empty";
  Array.unsafe_get a.data (a.len - 1)

let pop a =
  if a.len = 0 then invalid_arg "Dynarray_int.pop: empty";
  a.len <- a.len - 1;
  Array.unsafe_get a.data a.len

let clear a = a.len <- 0

let to_array a = Array.sub a.data 0 a.len

let of_array src = { data = Array.copy src; len = Array.length src }

let iter f a =
  for i = 0 to a.len - 1 do
    f (Array.unsafe_get a.data i)
  done

let fold f init a =
  let acc = ref init in
  for i = 0 to a.len - 1 do
    acc := f !acc (Array.unsafe_get a.data i)
  done;
  !acc

let sub a pos len =
  if pos < 0 || len < 0 || pos + len > a.len then
    invalid_arg "Dynarray_int.sub";
  Array.sub a.data pos len
