lib/util/prng.mli:
