lib/util/dynarray_int.ml: Array Printf
