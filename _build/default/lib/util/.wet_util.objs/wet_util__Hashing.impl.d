lib/util/hashing.ml: Array List
