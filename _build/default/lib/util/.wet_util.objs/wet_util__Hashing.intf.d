lib/util/hashing.mli:
