lib/util/bitvec.mli:
