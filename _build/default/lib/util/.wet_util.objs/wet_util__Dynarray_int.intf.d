lib/util/dynarray_int.mli:
