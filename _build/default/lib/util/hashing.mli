(** FNV-1a hashing over small integer windows.

    The bidirectional FCM family indexes its lookup tables by a hash of
    the context window; the tier-1 value compressor hashes input tuples
    to detect repeated group inputs. Both use these helpers so the hash
    is deterministic across runs. *)

(** [fnv_fold acc x] folds one int into an FNV-1a accumulator. *)
val fnv_fold : int -> int -> int

(** FNV-1a offset basis (use as the initial accumulator). *)
val fnv_init : int

(** [hash_window a pos len] hashes [len] ints of [a] starting at [pos]. *)
val hash_window : int array -> int -> int -> int

(** [hash_list xs] hashes a list of ints. *)
val hash_list : int list -> int

(** [index_of_hash h bits] reduces a hash to a [2^bits]-entry table index. *)
val index_of_hash : int -> int -> int
