type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  (* splitmix64 *)
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (shift_right_logical z 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let bool t = next t land 1 = 1
