(* Exercises the deprecated module-level cursor API alongside the new
   Session surface; the alias stays until the legacy API is removed. *)
[@@@alert "-deprecated"]

(* Persistence robustness: the sectioned container must detect every
   fault, attribute it to the right section, salvage what survives, and
   never crash or return garbage — exercised here with an exhaustive
   per-section corruption matrix and a seeded random-fault campaign. *)

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Query = Wet_core.Query
module Store = Wet_core.Store
module Container = Wet_core.Container
module Faultsim = Wet_faultsim.Faultsim
module Stream = Wet_bistream.Stream
module T = Wet_interp.Trace
module Interp = Wet_interp.Interp

(* ------------------------------------------------------------------ *)
(* Workloads: two programs with different shapes (recursion + arrays  *)
(* vs input-driven branching), both tiers each.                       *)
(* ------------------------------------------------------------------ *)

let programs =
  [
    ( "fib-array",
      {|
global arr[10];
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  var i = 0;
  while (i < 10) { arr[i] = fib(i); i = i + 1; }
  var j = 0;
  while (j < 10) { print(arr[j]); j = j + 1; }
}
|},
      [||] );
    ( "input-driven",
      {|
global buf[16];
fn weigh(x, w) { return x * w + 1; }
fn main() {
  var i = 0;
  while (i < 16) {
    buf[i] = weigh(input(), i % 4);
    i = i + 1;
  }
  var best = -1000000;
  for (var j = 0; j < 16; j = j + 1) {
    if (buf[j] > best) { best = buf[j]; }
  }
  print(best);
}
|},
      Array.init 16 (fun i -> (i * 13) mod 29) );
  ]

let built =
  lazy
    (List.map
       (fun (name, src, input) ->
         let prog = Wet_minic.Frontend.compile_exn src in
         let res = Interp.run prog ~input in
         let tr = res.Interp.trace in
         let w1 = Builder.build tr in
         let w2 = Builder.pack w1 in
         (name, tr, w1, w2))
       programs)

let each_tier f =
  List.iter
    (fun (name, tr, w1, w2) ->
      f (name ^ "/tier1") tr w1;
      f (name ^ "/tier2") tr w2)
    (Lazy.force built)

(* Canonical container bytes for a WET. *)
let bytes_of w =
  W.rewind w;
  Container.encode w

let sections_of_bytes data =
  match Container.examine data with
  | Ok h -> h.Container.hl_sections
  | Error f -> Alcotest.failf "examine failed: %s" (Container.fault_message f)

let with_temp_file suffix f =
  let path = Filename.temp_file "wet_test" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Control-flow fingerprint of a WET (parks cursors first). *)
let cf_blocks wet =
  Query.park wet Query.Forward;
  let out = ref [] in
  ignore
    (Query.control_flow wet Query.Forward ~f:(fun f b ->
         out := T.encode_block f b :: !out));
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Round trip and determinism                                         *)
(* ------------------------------------------------------------------ *)

let test_round_trip () =
  each_tier (fun name tr wet ->
      with_temp_file ".wet" (fun path ->
          Store.save wet path;
          let loaded = Store.load path in
          if cf_blocks loaded <> tr.T.blocks then
            Alcotest.failf "%s: loaded WET control flow differs" name;
          let vals w =
            let acc = ref [] in
            ignore (Query.load_values w ~f:(fun c v -> acc := (c, v) :: !acc));
            List.rev !acc
          in
          if vals loaded <> vals wet then
            Alcotest.failf "%s: loaded WET load values differ" name;
          Alcotest.(check (list string))
            (name ^ ": no damage") [] loaded.W.damage;
          Alcotest.(check (list string))
            (name ^ ": validates") [] (W.validate loaded)))

(* Cursors are part of stream state; save/load must be independent of
   query activity (cursors parked at the left end = canonical). *)
let test_deterministic_and_canonical () =
  each_tier (fun name _ wet ->
      with_temp_file ".wet" (fun path ->
          Store.save wet path;
          let first = read_file path in
          (* stir every cursor kind: control flow, values, deps *)
          ignore (cf_blocks wet);
          ignore (Query.load_values wet ~f:(fun _ _ -> ()));
          ignore (Query.addresses wet ~f:(fun _ _ -> ()));
          Store.save wet path;
          if read_file path <> first then
            Alcotest.failf "%s: save not deterministic after queries" name;
          let loaded = Store.load path in
          Array.iter
            (fun (n : W.node) ->
              if Stream.cursor n.W.n_ts <> 0 then
                Alcotest.failf "%s: node %d ts cursor not parked on load" name
                  n.W.n_id)
            loaded.W.nodes;
          ignore (cf_blocks loaded);
          Store.save loaded path;
          if read_file path <> first then
            Alcotest.failf "%s: save of loaded WET differs from original" name))

(* ------------------------------------------------------------------ *)
(* Structured rejection: garbage, legacy version, truncation          *)
(* ------------------------------------------------------------------ *)

let expect_corrupt name thunk check =
  match thunk () with
  | _ -> Alcotest.failf "%s: expected Store.Corrupt" name
  | exception Store.Corrupt { fault; _ } -> check fault
  | exception e ->
    Alcotest.failf "%s: raw exception escaped: %s" name (Printexc.to_string e)

let test_rejects_garbage () =
  with_temp_file ".not_wet" (fun path ->
      write_file path "not a wet file at all";
      expect_corrupt "garbage"
        (fun () -> Store.load path)
        (function
          | Container.Not_wet -> ()
          | f -> Alcotest.failf "garbage: wrong fault %s"
                   (Container.fault_message f)))

let test_rejects_legacy_v1 () =
  with_temp_file ".wet" (fun path ->
      (* the old monolithic format: magic, big-endian version 1, blob *)
      write_file path "WETOCaml\x00\x00\x00\x01leftover marshal bytes";
      expect_corrupt "legacy"
        (fun () -> Store.load path)
        (function
          | Container.Bad_version 1 -> ()
          | f -> Alcotest.failf "legacy: wrong fault %s"
                   (Container.fault_message f)))

(* Truncate at every section boundary, at every header field edge, and
   inside the footer: always a structured error (or a clean salvage),
   never End_of_file or a Marshal failure. *)
let test_truncation_everywhere () =
  each_tier (fun name _ wet ->
      let data = bytes_of wet in
      let secs = sections_of_bytes data in
      let cuts =
        [ 0; 3; 8; 10; 12; 14; 17 ]
        @ List.concat_map
            (fun (s : Container.section_status) ->
              [ s.Container.sec_offset;
                s.Container.sec_offset + s.Container.sec_length;
                s.Container.sec_offset + (s.Container.sec_length / 2) ])
            secs
        @ [ String.length data - 4; String.length data - 1 ]
      in
      List.iter
        (fun cut ->
          let cut = min cut (String.length data - 1) in
          let mutilated = Faultsim.apply (Faultsim.Truncate_at cut) data in
          (match Container.decode mutilated with
           | Ok _ -> Alcotest.failf "%s: truncation at %d undetected" name cut
           | Error _ -> ()
           | exception e ->
             Alcotest.failf "%s: trunc at %d leaked %s" name cut
               (Printexc.to_string e));
          match Container.decode ~salvage:true mutilated with
          | Ok (w, _) ->
            Alcotest.(check (list string))
              (Printf.sprintf "%s: salvage after trunc at %d validates" name cut)
              [] (W.validate w)
          | Error _ -> ()
          | exception e ->
            Alcotest.failf "%s: salvage trunc at %d leaked %s" name cut
              (Printexc.to_string e))
        cuts)

(* ------------------------------------------------------------------ *)
(* Per-section corruption matrix                                      *)
(* ------------------------------------------------------------------ *)

(* Flip one payload byte of each section in turn: strict load must name
   exactly that section; salvage must recover every other section. *)
let test_section_matrix () =
  each_tier (fun name tr wet ->
      let data = bytes_of wet in
      let secs = sections_of_bytes data in
      List.iter
        (fun (s : Container.section_status) ->
          let sec = s.Container.sec_name in
          let off = s.Container.sec_offset + (s.Container.sec_length / 2) in
          let mutilated =
            Faultsim.apply (Faultsim.Bit_flip { offset = off; bit = 5 }) data
          in
          (* strict: the right section is named *)
          (match Container.decode mutilated with
           | Ok _ -> Alcotest.failf "%s/%s: flip undetected" name sec
           | Error (Container.Bad_section { name = hit; _ }) ->
             Alcotest.(check string)
               (Printf.sprintf "%s: strict names the flipped section" name)
               sec hit
           | Error f ->
             Alcotest.failf "%s/%s: wrong fault %s" name sec
               (Container.fault_message f));
          (* salvage: required sections are fatal, the rest recover *)
          match Container.decode ~salvage:true mutilated with
          | Error f ->
            if not (Container.required sec) then
              Alcotest.failf "%s/%s: salvage refused: %s" name sec
                (Container.fault_message f)
          | Ok (w, _) ->
            if Container.required sec then
              Alcotest.failf "%s/%s: salvage loaded a required fault" name sec;
            (* index.stmts is rebuilt from copy.map: no damage at all *)
            if sec = "index.stmts" then begin
              Alcotest.(check (list string))
                (name ^ ": index.stmts rebuilt silently") [] w.W.damage;
              Array.iteri
                (fun st copies ->
                  if copies <> W.copies_of_stmt w st then
                    Alcotest.failf "%s: rebuilt stmt index differs" name)
                wet.W.stmt_copies
            end
            else begin
              Alcotest.(check (list string))
                (Printf.sprintf "%s/%s: damage recorded" name sec)
                [ sec ] w.W.damage;
              (* surviving sections still answer queries *)
              if sec <> "labels.ts" then begin
                if cf_blocks w <> tr.T.blocks then
                  Alcotest.failf "%s/%s: salvaged control flow differs" name sec
              end
              else begin
                (match cf_blocks w with
                 | _ -> Alcotest.failf "%s: lost ts must raise" name
                 | exception W.Missing_stream m ->
                   Alcotest.(check string) "missing stream" "labels.ts" m)
              end;
              if sec <> "labels.values" then
                ignore (Query.load_values w ~f:(fun _ _ -> ()))
              else begin
                match Query.load_values w ~f:(fun _ _ -> ()) with
                | _ -> Alcotest.failf "%s: lost values must raise" name
                | exception W.Missing_stream m ->
                  Alcotest.(check string) "missing stream" "labels.values" m
              end
            end;
            (* the validator must accept what survived *)
            Alcotest.(check (list string))
              (Printf.sprintf "%s/%s: salvage validates" name sec)
              [] (W.validate w))
        secs)

(* A salvaged WET saved and re-loaded (strictly) keeps its damage
   record and still validates: honesty survives round trips. *)
let test_salvage_round_trip () =
  let _, _, _, w2 =
    List.find (fun (n, _, _, _) -> n = "fib-array") (Lazy.force built)
  in
  let data = bytes_of w2 in
  let secs = sections_of_bytes data in
  let s =
    List.find
      (fun (s : Container.section_status) ->
        s.Container.sec_name = "labels.values")
      secs
  in
  let mutilated =
    Faultsim.apply
      (Faultsim.Bit_flip { offset = s.Container.sec_offset + 1; bit = 0 })
      data
  in
  match Container.decode ~salvage:true mutilated with
  | Error f -> Alcotest.failf "salvage failed: %s" (Container.fault_message f)
  | Ok (w, _) ->
    with_temp_file ".wet" (fun path ->
        Store.save w path;
        let reloaded = Store.load path in
        Alcotest.(check (list string))
          "damage survives a save/load round trip" [ "labels.values" ]
          reloaded.W.damage;
        Alcotest.(check (list string)) "still validates" []
          (W.validate reloaded);
        match W.value_of_copy reloaded 0 0 with
        | _ -> Alcotest.fail "expected Missing_stream"
        | exception W.Missing_stream _ -> ()
        | exception Invalid_argument _ ->
          Alcotest.fail "expected Missing_stream")

(* ------------------------------------------------------------------ *)
(* Atomic save                                                        *)
(* ------------------------------------------------------------------ *)

let test_atomic_save () =
  let _, tr, w1, w2 =
    List.find (fun (n, _, _, _) -> n = "fib-array") (Lazy.force built)
  in
  with_temp_file ".wet" (fun path ->
      Store.save w1 path;
      let before = read_file path in
      let total = String.length (bytes_of w2) in
      List.iter
        (fun k ->
          Store.crash_after := Some k;
          (match Store.save w2 path with
           | () -> Alcotest.failf "crash at %d not injected" k
           | exception Store.Crash_injected -> ());
          Alcotest.(check bool)
            (Printf.sprintf "file intact after crash at byte %d" k)
            true
            (read_file path = before))
        [ 0; 1; 17; total / 2; total - 1 ];
      (* hook disarmed after firing: the next save completes *)
      Store.save w2 path;
      let loaded = Store.load path in
      if cf_blocks loaded <> tr.T.blocks then
        Alcotest.fail "post-crash save loads wrong");
  (* sweep the leftover temp staging files out of the temp dir *)
  let dir = Filename.get_temp_dir_name () in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp"
         && String.length f > 9
         && String.sub f 0 9 = ".wet_test"
      then Sys.remove (Filename.concat dir f))
    (Sys.readdir dir)

(* ------------------------------------------------------------------ *)
(* Seeded random-fault campaign                                       *)
(* ------------------------------------------------------------------ *)

(* >= 500 faults across both tiers and both workloads: every fault is
   either a byte-identical no-op, detected with a structured fault, or
   salvaged into a WET the validator accepts. Nothing else. *)
let test_campaign () =
  let per_wet = 150 in
  let total = ref 0 in
  each_tier (fun name _ wet ->
      let data = bytes_of wet in
      let faults =
        Faultsim.campaign
          ~seed:(Hashtbl.hash name)
          ~count:per_wet ~len:(String.length data)
      in
      List.iter
        (fun fault ->
          incr total;
          let mutilated = Faultsim.apply fault data in
          let ctx = Printf.sprintf "%s [%s]" name (Faultsim.describe fault) in
          (match Container.decode mutilated with
           | Ok _ ->
             if mutilated <> data then
               Alcotest.failf "%s: strict accepted corrupted bytes" ctx
           | Error _ -> ()
           | exception e ->
             Alcotest.failf "%s: strict leaked %s" ctx (Printexc.to_string e));
          match Container.decode ~salvage:true mutilated with
          | Ok (w, _) ->
            let errs = W.validate w in
            if errs <> [] then
              Alcotest.failf "%s: salvage produced invalid WET: %s" ctx
                (String.concat "; " errs)
          | Error _ -> ()
          | exception e ->
            Alcotest.failf "%s: salvage leaked %s" ctx (Printexc.to_string e))
        faults);
  if !total < 500 then Alcotest.failf "campaign too small: %d faults" !total

(* Fault specs round-trip, for `wet fsck --inject`. *)
let test_fault_specs () =
  List.iter
    (fun f ->
      match Faultsim.of_spec (Faultsim.to_spec f) with
      | Ok f' -> Alcotest.(check bool) (Faultsim.to_spec f) true (f = f')
      | Error m -> Alcotest.failf "spec round trip: %s" m)
    [
      Faultsim.Bit_flip { offset = 12; bit = 7 };
      Faultsim.Zero_range { offset = 0; len = 64 };
      Faultsim.Truncate_at 9;
    ];
  List.iter
    (fun s ->
      match Faultsim.of_spec s with
      | Ok _ -> Alcotest.failf "accepted bad spec %s" s
      | Error _ -> ())
    [ "flip:1"; "flip:1:9"; "zero:-1:2"; "trunc:x"; "smash:3" ]

let () =
  Alcotest.run "store"
    [
      ( "container",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "deterministic + canonical cursors" `Quick
            test_deterministic_and_canonical;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "rejects legacy v1" `Quick test_rejects_legacy_v1;
          Alcotest.test_case "truncation everywhere" `Quick
            test_truncation_everywhere;
          Alcotest.test_case "per-section corruption matrix" `Quick
            test_section_matrix;
          Alcotest.test_case "salvage round trip" `Quick
            test_salvage_round_trip;
          Alcotest.test_case "atomic save" `Quick test_atomic_save;
          Alcotest.test_case "fault campaign (600 seeded faults)" `Slow
            test_campaign;
          Alcotest.test_case "fault specs" `Quick test_fault_specs;
        ] );
    ]
