(* The deprecated module-level cursor API stays covered here until it
   is removed; the Session equivalents are covered by test_session. *)
[@@@alert "-deprecated"]

(* Ground-truth verification of the WET core: everything a WET stores
   must reconstruct the raw trace exactly, on tier-1 and on tier-2. *)

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Query = Wet_core.Query
module Slice = Wet_core.Slice
module Sizes = Wet_core.Sizes
module T = Wet_interp.Trace
module Interp = Wet_interp.Interp
module Instr = Wet_ir.Instr

(* ------------------------------------------------------------------ *)
(* Replay: recompute the dynamic position -> (copy, instance) map.    *)
(* ------------------------------------------------------------------ *)

type replay = {
  wet : W.t;
  trace : T.t;
  pos_copy : int array;
  pos_inst : int array;
}

let replay wet (trace : T.t) =
  let n = max 1 trace.T.nstmts in
  let pos_copy = Array.make n (-1) and pos_inst = Array.make n (-1) in
  let node_of = Hashtbl.create 64 in
  Array.iter
    (fun (nd : W.node) -> Hashtbl.replace node_of (nd.W.n_func, nd.W.n_path) nd)
    wet.W.nodes;
  let nexec = Hashtbl.create 64 in
  let pos = ref 0 in
  Array.iter
    (fun pkey ->
      let f, pid = T.decode_path pkey in
      let node = Hashtbl.find node_of (f, pid) in
      let inst = Option.value (Hashtbl.find_opt nexec node.W.n_id) ~default:0 in
      Hashtbl.replace nexec node.W.n_id (inst + 1);
      Array.iteri
        (fun o _ ->
          pos_copy.(!pos) <- node.W.n_copy_base + o;
          pos_inst.(!pos) <- inst;
          incr pos)
        node.W.n_stmts)
    trace.T.paths;
  { wet; trace; pos_copy; pos_inst }

(* Iterate all statement executions as (copy, instance, position). *)
let iter_instances r f =
  for pos = 0 to r.trace.T.nstmts - 1 do
    f r.pos_copy.(pos) r.pos_inst.(pos) pos
  done

let programs =
  [
    ( "fib-array",
      {|
global arr[10];
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fn main() {
  var i = 0;
  while (i < 10) { arr[i] = fib(i); i = i + 1; }
  var j = 0;
  while (j < 10) { print(arr[j]); j = j + 1; }
}
|},
      [||] );
    ( "input-driven",
      {|
global buf[16];
fn weigh(x, w) { return x * w + 1; }
fn main() {
  var i = 0;
  while (i < 16) {
    buf[i] = weigh(input(), i % 4);
    i = i + 1;
  }
  var best = -1000000;
  for (var j = 0; j < 16; j = j + 1) {
    if (buf[j] > best) { best = buf[j]; }
  }
  print(best);
}
|},
      Array.init 16 (fun i -> (i * 13) mod 29) );
    ( "memory-churn",
      {|
global tab[32];
fn main() {
  var i = 0;
  while (i < 200) {
    var slot = (i * 7) % 32;
    tab[slot] = tab[slot] + i;
    if (tab[slot] % 3 == 0) { tab[(slot + 1) % 32] = tab[slot] / 2; }
    i = i + 1;
  }
  var s = 0;
  for (var j = 0; j < 32; j = j + 1) { s = s + tab[j]; }
  print(s);
}
|},
      [||] );
  ]

let built =
  lazy
    (List.map
       (fun (name, src, input) ->
         let prog = Wet_minic.Frontend.compile_exn src in
         let res = Interp.run prog ~input in
         let tr = res.Interp.trace in
         let w1 = Builder.build tr in
         let w2 = Builder.pack w1 in
         (name, tr, w1, w2))
       programs)

let each_tier f =
  List.iter
    (fun (name, tr, w1, w2) ->
      f (name ^ "/tier1") tr w1;
      f (name ^ "/tier2") tr w2)
    (Lazy.force built)

(* ------------------------------------------------------------------ *)
(* Exhaustive reconstruction checks                                   *)
(* ------------------------------------------------------------------ *)

let test_values () =
  each_tier (fun name tr wet ->
      let r = replay wet tr in
      iter_instances r (fun c i pos ->
          if wet.W.copy_uvals.(c) <> None then
            if W.value_of_copy wet c i <> tr.T.values.(pos) then
              Alcotest.failf "%s: value mismatch at copy %d inst %d" name c i))

let test_deps () =
  each_tier (fun name tr wet ->
      let r = replay wet tr in
      let depc = ref 0 in
      iter_instances r (fun c i _ ->
          let k = Instr.dyn_use_count (W.instr_of_copy wet c) in
          for s = 0 to k - 1 do
            let producer = tr.T.deps.(!depc) in
            incr depc;
            let want =
              if producer < 0 then None
              else Some (r.pos_copy.(producer), r.pos_inst.(producer))
            in
            if W.resolve_dep wet c i s <> want then
              Alcotest.failf "%s: dep mismatch at copy %d inst %d slot %d" name
                c i s
          done))

let test_control_deps () =
  each_tier (fun name tr wet ->
      let r = replay wet tr in
      let node_of = Hashtbl.create 64 in
      Array.iter
        (fun (nd : W.node) ->
          Hashtbl.replace node_of (nd.W.n_func, nd.W.n_path) nd)
        wet.W.nodes;
      let nexec = Hashtbl.create 64 in
      let blkc = ref 0 in
      Array.iter
        (fun pkey ->
          let f, pid = T.decode_path pkey in
          let node = Hashtbl.find node_of (f, pid) in
          let inst =
            Option.value (Hashtbl.find_opt nexec node.W.n_id) ~default:0
          in
          Hashtbl.replace nexec node.W.n_id (inst + 1);
          Array.iteri
            (fun bp _ ->
              let cd = tr.T.cd_producer.(!blkc) in
              incr blkc;
              let copy = node.W.n_copy_base + node.W.n_block_start.(bp) in
              let want =
                if cd < 0 then None
                else Some (r.pos_copy.(cd), r.pos_inst.(cd))
              in
              if W.resolve_cd wet copy inst <> want then
                Alcotest.failf "%s: cd mismatch node %d bp %d inst %d" name
                  node.W.n_id bp inst)
            node.W.n_blocks)
        tr.T.paths)

let test_control_flow_trace () =
  each_tier (fun name tr wet ->
      Query.park wet Query.Forward;
      let out = ref [] in
      let n =
        Query.control_flow wet Query.Forward ~f:(fun f b ->
            out := T.encode_block f b :: !out)
      in
      Alcotest.(check int) (name ^ " block count") (Array.length tr.T.blocks) n;
      if Array.of_list (List.rev !out) <> tr.T.blocks then
        Alcotest.failf "%s: forward control-flow trace differs" name;
      (* cursors are now at the end: extract backward *)
      let out = ref [] in
      ignore
        (Query.control_flow wet Query.Backward ~f:(fun f b ->
             out := T.encode_block f b :: !out));
      if Array.of_list !out <> tr.T.blocks then
        Alcotest.failf "%s: backward control-flow trace differs" name;
      Query.park wet Query.Forward)

(* Per-load value traces: ground truth collected from the raw trace. *)
let test_load_values () =
  each_tier (fun name tr wet ->
      let r = replay wet tr in
      let truth = Hashtbl.create 64 in
      iter_instances r (fun c _ pos ->
          match W.instr_of_copy wet c with
          | Instr.Load _ ->
            let l = Option.value (Hashtbl.find_opt truth c) ~default:[] in
            Hashtbl.replace truth c (tr.T.values.(pos) :: l)
          | _ -> ());
      let got = Hashtbl.create 64 in
      let total =
        Query.load_values wet ~f:(fun c v ->
            let l = Option.value (Hashtbl.find_opt got c) ~default:[] in
            Hashtbl.replace got c (v :: l))
      in
      let expected_total =
        Hashtbl.fold (fun _ l acc -> acc + List.length l) truth 0
      in
      Alcotest.(check int) (name ^ " load count") expected_total total;
      Hashtbl.iter
        (fun c l ->
          match Hashtbl.find_opt got c with
          | Some l' when l = l' -> ()
          | _ -> Alcotest.failf "%s: load values differ for copy %d" name c)
        truth)

(* Address traces: ground truth from the trace's memory operations. *)
let test_addresses () =
  each_tier (fun name tr wet ->
      let r = replay wet tr in
      let truth = Hashtbl.create 64 in
      let memc = ref 0 in
      iter_instances r (fun c _ _ ->
          if Instr.is_memory (W.instr_of_copy wet c) then begin
            let op = tr.T.mem_ops.(!memc) in
            incr memc;
            let l = Option.value (Hashtbl.find_opt truth c) ~default:[] in
            Hashtbl.replace truth c ((op lsr 1) :: l)
          end);
      let got = Hashtbl.create 64 in
      let total =
        Query.addresses wet ~f:(fun c a ->
            let l = Option.value (Hashtbl.find_opt got c) ~default:[] in
            Hashtbl.replace got c (a :: l))
      in
      Alcotest.(check int) (name ^ " address count")
        (Array.length tr.T.mem_ops) total;
      Hashtbl.iter
        (fun c l ->
          match Hashtbl.find_opt got c with
          | Some l' when l = l' -> ()
          | _ -> Alcotest.failf "%s: addresses differ for copy %d" name c)
        truth)

(* ------------------------------------------------------------------ *)
(* Slices                                                             *)
(* ------------------------------------------------------------------ *)

let test_slices_match_tiers () =
  List.iter
    (fun (name, _, w1, w2) ->
      let outputs =
        Query.copies_matching w1 (function Instr.Output _ -> true | _ -> false)
      in
      List.iter
        (fun c ->
          let node = W.node_of_copy w1 c in
          let i = node.W.n_nexec - 1 in
          let r1 = Slice.backward w1 c i in
          let r2 = Slice.backward w2 c i in
          if r1 <> r2 then Alcotest.failf "%s: tier slices differ" name;
          Alcotest.(check bool) (name ^ " slice nonempty") true
            (r1.Slice.instances >= 1))
        outputs)
    (Lazy.force built)

let test_slice_contents () =
  (* hand-checked example: slicing the printed sum pulls in exactly the
     statements that feed it *)
  let src =
    {|
fn main() {
  var a = 3;
  var b = 4;
  var unused = 99;
  var s = a * a + b * b;
  print(s);
}
|}
  in
  let prog = Wet_minic.Frontend.compile_exn src in
  let res = Interp.run prog ~input:[||] in
  let wet = Builder.build res.Interp.trace in
  let out =
    List.hd
      (Query.copies_matching wet (function Instr.Output _ -> true | _ -> false))
  in
  let consts = ref [] in
  let r =
    Slice.backward wet out 0 ~f:(fun c _ ->
        match W.instr_of_copy wet c with
        | Instr.Const (_, v) -> consts := v :: !consts
        | _ -> ())
  in
  Alcotest.(check bool) "not truncated" false r.Slice.truncated;
  let sorted = List.sort compare !consts in
  Alcotest.(check (list int)) "constants feeding the sum" [ 3; 4 ] sorted

let test_backward_forward_duality () =
  let _, _, w1, _ = List.hd (Lazy.force built) in
  let outputs =
    Query.copies_matching w1 (function Instr.Output _ -> true | _ -> false)
  in
  let c = List.hd outputs in
  let i = (W.node_of_copy w1 c).W.n_nexec - 1 in
  let members = ref [] in
  ignore (Slice.backward w1 c i ~f:(fun c' i' -> members := (c', i') :: !members));
  (* spot-check a handful of members: the criterion must appear in their
     forward slices *)
  let sample = List.filteri (fun k _ -> k mod 7 = 0) !members in
  List.iter
    (fun (c', i') ->
      let found = ref false in
      ignore
        (Slice.forward w1 c' i' ~f:(fun c'' i'' ->
             if c'' = c && i'' = i then found := true));
      Alcotest.(check bool)
        (Printf.sprintf "criterion in forward slice of (%d,%d)" c' i')
        true !found)
    sample

let test_slice_truncation () =
  let _, _, w1, _ = List.hd (Lazy.force built) in
  let outputs =
    Query.copies_matching w1 (function Instr.Output _ -> true | _ -> false)
  in
  let c = List.nth outputs (List.length outputs - 1) in
  let r = Slice.backward ~max_instances:3 w1 c 0 in
  Alcotest.(check int) "capped" 3 r.Slice.instances;
  Alcotest.(check bool) "flagged" true r.Slice.truncated

(* ------------------------------------------------------------------ *)
(* Sizes and statistics invariants                                    *)
(* ------------------------------------------------------------------ *)

let test_sizes () =
  List.iter
    (fun (name, _, w1, w2) ->
      let o = Sizes.original w1 in
      let c1 = Sizes.current w1 in
      let c2 = Sizes.current w2 in
      Alcotest.(check bool) (name ^ " orig positive") true (o.Sizes.total_bytes > 0.);
      Alcotest.(check bool) (name ^ " tier2 <= tier1") true
        (c2.Sizes.total_bytes <= c1.Sizes.total_bytes +. 1.);
      Alcotest.(check bool) (name ^ " tier1 < orig") true
        (c1.Sizes.total_bytes < o.Sizes.total_bytes);
      Alcotest.(check bool) (name ^ " originals agree across tiers") true
        (Sizes.original w2 = o))
    (Lazy.force built)

(* Every dynamic dependence instance is represented exactly once:
   either inferable (Local) or stored on a labeled edge. *)
let test_stats_conservation () =
  List.iter
    (fun (name, _, w1, _) ->
      let stored = ref 0 in
      let seen = Hashtbl.create 256 in
      let count_labels shared_ok (l : W.labels) =
        if shared_ok || not (Hashtbl.mem seen l.W.l_id) then begin
          Hashtbl.replace seen l.W.l_id ();
          ignore shared_ok
        end;
        stored := !stored + l.W.l_len
      in
      let count_source = function
        | W.No_dep | W.Local _ -> ()
        | W.Remote es -> List.iter (fun e -> count_labels true e.W.e_labels) es
      in
      Array.iter (Array.iter count_source) w1.W.copy_deps;
      (* control-dependence edges stand for every statement of their
         block, so expand them by block statement counts *)
      let cd_stored = ref 0 in
      Array.iter
        (fun (n : W.node) ->
          Array.iteri
            (fun bp src ->
              let stmts_in_block =
                (if bp + 1 < Array.length n.W.n_block_start then
                   n.W.n_block_start.(bp + 1)
                 else Array.length n.W.n_stmts)
                - n.W.n_block_start.(bp)
              in
              match src with
              | W.No_dep | W.Local _ -> ()
              | W.Remote es ->
                List.iter
                  (fun (e : W.edge) ->
                    cd_stored := !cd_stored + (e.W.e_labels.W.l_len * stmts_in_block))
                  es)
            n.W.n_cd)
        w1.W.nodes;
      let s = w1.W.stats in
      (* data deps: stored-or-local, minus holes, matches the count *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: dep conservation (%d stored + %d local vs %d+%d)"
           name !stored s.W.local_dep_instances s.W.dep_instances s.W.cd_instances)
        true
        (!stored + !cd_stored + s.W.local_dep_instances
         >= s.W.dep_instances))
    (Lazy.force built)

let test_cf_successors_cover () =
  (* every node except the first has a predecessor; succ/pred symmetry *)
  List.iter
    (fun (name, _, w1, _) ->
      Array.iter
        (fun (n : W.node) ->
          Array.iter
            (fun s ->
              let s_preds = w1.W.nodes.(s).W.n_preds in
              Alcotest.(check bool) (name ^ " pred symmetry") true
                (Array.exists (fun p -> p = n.W.n_id) s_preds))
            n.W.n_succs)
        w1.W.nodes)
    (Lazy.force built)

let test_pack_rejects_packed () =
  let _, _, _, w2 = List.hd (Lazy.force built) in
  Alcotest.check_raises "double pack"
    (Wet_error.Error { Wet_error.stage = Wet_error.Pack; msg = "already packed" })
    (fun () -> ignore (Builder.pack w2))

(* Fold wrappers must agree exactly with their callback counterparts:
   same visit counts, same values threaded through the accumulator. *)
let test_fold_wrappers () =
  each_tier (fun name _tr wet ->
      Query.park wet Query.Forward;
      let cb = Query.control_flow wet Query.Forward ~f:(fun _ _ -> ()) in
      (* cursors now at the end: fold backward without re-parking *)
      let folded =
        Query.fold_control_flow wet Query.Backward ~init:0 ~f:(fun n _ _ ->
            n + 1)
      in
      Alcotest.(check int) (name ^ " fold cf count") cb folded;
      let sum = ref 0 in
      let n = Query.load_values wet ~f:(fun _ v -> sum := !sum + v) in
      let fn, fsum =
        Query.fold_loads wet ~init:(0, 0) ~f:(fun (n, s) _ v -> (n + 1, s + v))
      in
      Alcotest.(check int) (name ^ " fold load count") n fn;
      Alcotest.(check int) (name ^ " fold load sum") !sum fsum;
      let asum = ref 0 in
      let na = Query.addresses wet ~f:(fun _ a -> asum := !asum + a) in
      let fan, fasum =
        Query.fold_addresses wet ~init:(0, 0) ~f:(fun (n, s) _ a ->
            (n + 1, s + a))
      in
      Alcotest.(check int) (name ^ " fold addr count") na fan;
      Alcotest.(check int) (name ^ " fold addr sum") !asum fasum)

let base_suites =
    [
      ( "reconstruction",
        [
          Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "data dependences" `Quick test_deps;
          Alcotest.test_case "control dependences" `Quick test_control_deps;
          Alcotest.test_case "control-flow traces" `Quick test_control_flow_trace;
          Alcotest.test_case "load value traces" `Quick test_load_values;
          Alcotest.test_case "address traces" `Quick test_addresses;
        ] );
      ( "slices",
        [
          Alcotest.test_case "tiers agree" `Quick test_slices_match_tiers;
          Alcotest.test_case "contents" `Quick test_slice_contents;
          Alcotest.test_case "duality" `Quick test_backward_forward_duality;
          Alcotest.test_case "truncation" `Quick test_slice_truncation;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "orderings" `Quick test_sizes;
          Alcotest.test_case "dep conservation" `Quick test_stats_conservation;
        ] );
      ( "structure",
        [
          Alcotest.test_case "cf successor symmetry" `Quick test_cf_successors_cover;
          Alcotest.test_case "pack guard" `Quick test_pack_rejects_packed;
          Alcotest.test_case "fold wrappers" `Quick test_fold_wrappers;
        ] );
    ]

(* Persistence (round trips, corruption, salvage, atomicity) is
   exercised exhaustively in test_store.ml. *)

(* ------------------------------------------------------------------ *)
(* Partial traversal from arbitrary execution points                  *)
(* ------------------------------------------------------------------ *)

let test_locate_time () =
  each_tier (fun name tr wet ->
      let total = Array.length tr.T.paths in
      (* every timestamp locates to the path that produced it *)
      List.iter
        (fun ts ->
          match Query.locate_time wet ts with
          | None -> Alcotest.failf "%s: ts %d not located" name ts
          | Some (nid, i) ->
            let n = wet.W.nodes.(nid) in
            let f, pid = T.decode_path tr.T.paths.(ts - 1) in
            if n.W.n_func <> f || n.W.n_path <> pid then
              Alcotest.failf "%s: ts %d located to wrong node" name ts;
            if W.Stream.read_at n.W.n_ts i <> ts then
              Alcotest.failf "%s: ts %d wrong instance" name ts)
        [ 1; 2; total / 2; total ];
      Alcotest.(check (option (pair int int))) (name ^ " out of range") None
        (Query.locate_time wet (total + 1));
      Alcotest.(check (option (pair int int))) (name ^ " zero") None
        (Query.locate_time wet 0))

let test_control_flow_from () =
  each_tier (fun name tr wet ->
      let total = Array.length tr.T.paths in
      let start_ts = max 1 (total / 3) in
      let steps = min 10 (total - start_ts) in
      (* ground truth: expand paths [start_ts-1 .. start_ts-1+steps] *)
      let module PA = Wet_cfg.Program_analysis in
      let expected = ref [] in
      for k = start_ts - 1 to start_ts - 1 + steps do
        let f, pid = T.decode_path tr.T.paths.(k) in
        let bl = (PA.fn tr.T.analysis f).PA.bl in
        List.iter
          (fun b -> expected := T.encode_block f b :: !expected)
          (Wet_cfg.Ball_larus.blocks_of_path bl pid)
      done;
      let got = ref [] in
      let n =
        Query.control_flow_from wet ~start_ts ~steps ~f:(fun f b ->
            got := T.encode_block f b :: !got)
      in
      Alcotest.(check int) (name ^ " partial block count")
        (List.length !expected) n;
      if !got <> !expected then
        Alcotest.failf "%s: partial control flow differs" name)


let test_chop () =
  (* source -> sink along a clear dependence chain; unrelated values
     are excluded *)
  let src =
    {|
fn main() {
  var seed = 5;
  var unrelated = 100;
  var a = seed * 2;
  var b = a + 3;
  var c = unrelated - 1;
  print(b + c);
}
|}
  in
  let prog = Wet_minic.Frontend.compile_exn src in
  let res = Interp.run prog ~input:[||] in
  let wet = Builder.build res.Interp.trace in
  (* find the Const 5 (seed) and the Output *)
  let find pred = List.hd (Wet_core.Query.copies_matching wet pred) in
  let seed = find (function Instr.Const (_, 5) -> true | _ -> false) in
  let unrelated = find (function Instr.Const (_, 100) -> true | _ -> false) in
  let out = find (function Instr.Output _ -> true | _ -> false) in
  let members = ref [] in
  let r =
    Slice.chop wet ~source:(seed, 0) ~sink:(out, 0)
      ~f:(fun c _ -> members := c :: !members)
  in
  Alcotest.(check bool) "chop nonempty" true (r.Slice.instances >= 3);
  Alcotest.(check bool) "source in chop" true (List.mem seed !members);
  Alcotest.(check bool) "sink in chop" true (List.mem out !members);
  Alcotest.(check bool) "unrelated excluded" false (List.mem unrelated !members);
  (* chopping from a value the sink does not depend on is empty *)
  let r2 = Slice.chop wet ~source:(unrelated, 0) ~sink:(seed, 0) in
  Alcotest.(check int) "independent chop empty" 0 r2.Slice.instances


let test_interprocedural_cd () =
  let src =
    {|
fn leaf(x) { return x + 1; }
fn main() {
  var n = 3;
  var r = 0;
  if (n > 2) { r = leaf(n); }
  print(r);
}
|}
  in
  let prog = Wet_minic.Frontend.compile_exn src in
  let slice_stmts interprocedural_cd =
    let res = Interp.run prog ~input:[||] ~interprocedural_cd in
    let wet = Builder.build res.Interp.trace in
    (* slice from leaf's add statement: with interprocedural CD it must
       pull in the call and the guarding branch in main *)
    let add =
      List.hd
        (Wet_core.Query.copies_matching wet (function
          | Instr.Binop (Instr.Add, _, _, _) -> true
          | _ -> false))
    in
    let kinds = ref [] in
    ignore
      (Slice.backward wet add 0 ~f:(fun c _ ->
           kinds := W.instr_of_copy wet c :: !kinds));
    !kinds
  in
  let intra = slice_stmts false in
  let inter = slice_stmts true in
  let has_branch l = List.exists (function Instr.Branch _ -> true | _ -> false) l in
  let has_call l = List.exists (function Instr.Call _ -> true | _ -> false) l in
  Alcotest.(check bool) "intra slice misses the guarding branch" false
    (has_branch intra);
  Alcotest.(check bool) "inter slice contains the call" true (has_call inter);
  Alcotest.(check bool) "inter slice contains the guarding branch" true
    (has_branch inter);
  Alcotest.(check bool) "inter is a superset" true
    (List.length inter > List.length intra)


(* End-to-end fuzz: random programs with loops, calls, arrays and input
   go through the full pipeline; every reconstruction the WET offers is
   checked against the raw trace, on both tiers. *)
let random_program rng =
  let stmts =
    List.init 7 (fun i ->
        match Wet_util.Prng.int rng 7 with
        | 0 -> Printf.sprintf "x = x * 3 + y - %d;" i
        | 1 -> Printf.sprintf "g[(x + %d) %% 8] = y; y = g[y %% 8] + 1;" i
        | 2 -> Printf.sprintf "if (x %% 4 == %d) { y = deep(x %% 5, y); } else { x = x - 1; }" (i mod 4)
        | 3 -> Printf.sprintf "var w%d = 0; while (w%d < x %% 6) { y = y + g[w%d %% 8]; w%d = w%d + 1; }" i i i i i
        | 4 -> Printf.sprintf "x = x + input();"
        | 5 -> Printf.sprintf "g[%d] = g[%d] + x;" (i mod 8) ((i + 3) mod 8)
        | _ -> Printf.sprintf "y = helper(x %% 9) + y;")
  in
  Printf.sprintf
    {|
global g[8];
fn helper(a) {
  var t = a;
  while (t > 2) { t = t - 2; }
  return t + g[a %% 8];
}
fn deep(a, b) {
  if (a <= 0) { return b; }
  return deep(a - 1, b + a);
}
fn main() {
  var x = %d;
  var y = %d;
  %s
  print(x + y);
}
|}
    (5 + Wet_util.Prng.int rng 20)
    (Wet_util.Prng.int rng 10)
    (String.concat "\n  " stmts)

let fuzz_one seed =
  let rng = Wet_util.Prng.create (seed * 131 + 7) in
  let src = random_program rng in
  let prog = Wet_minic.Frontend.compile_exn src in
  let input = Array.init 64 (fun i -> (i * 17) mod 23) in
  match Interp.run prog ~input with
  | exception Wet_error.Error _ -> true (* e.g. input exhausted: fine *)
  | res ->
    let tr = res.Interp.trace in
    let check wet =
      (* control flow *)
      Query.park wet Query.Forward;
      let out = ref [] in
      ignore
        (Query.control_flow wet Query.Forward ~f:(fun f b ->
             out := T.encode_block f b :: !out));
      let cf_ok = Array.of_list (List.rev !out) = tr.T.blocks in
      (* values and dependences *)
      let r = replay wet tr in
      let vals_ok = ref true in
      let deps_ok = ref true in
      let depc = ref 0 in
      iter_instances r (fun c i pos ->
          (if wet.W.copy_uvals.(c) <> None then
             if W.value_of_copy wet c i <> tr.T.values.(pos) then
               vals_ok := false);
          let k = Instr.dyn_use_count (W.instr_of_copy wet c) in
          for s = 0 to k - 1 do
            let producer = tr.T.deps.(!depc) in
            incr depc;
            let want =
              if producer < 0 then None
              else Some (r.pos_copy.(producer), r.pos_inst.(producer))
            in
            if W.resolve_dep wet c i s <> want then deps_ok := false
          done);
      cf_ok && !vals_ok && !deps_ok
    in
    let w1 = Builder.build tr in
    let w2 = Builder.pack w1 in
    check w1 && check w2

let prop_pipeline_fuzz =
  QCheck.Test.make ~name:"random programs reconstruct exactly on both tiers"
    ~count:15 QCheck.small_int fuzz_one

let more_suites =
  [
    ("fuzz", [ QCheck_alcotest.to_alcotest prop_pipeline_fuzz ]);
    ("chop", [ Alcotest.test_case "source-sink chop" `Quick test_chop ]);
    ( "interprocedural-cd",
      [ Alcotest.test_case "slices gain caller context" `Quick test_interprocedural_cd ] );
    ( "execution-points",
      [
        Alcotest.test_case "locate_time" `Quick test_locate_time;
        Alcotest.test_case "control_flow_from" `Quick test_control_flow_from;
      ] );
  ]

let () = Alcotest.run "core" (base_suites @ more_suites)
