(* The deprecated module-level cursor API stays covered here until it
   is removed; the Session equivalents are covered by test_session. *)
[@@@alert "-deprecated"]

module W = Wet_core.Wet
module Builder = Wet_core.Builder
module Iso = Wet_analyses.Isomorphism
module HS = Wet_analyses.Hot_streams
module Dot = Wet_analyses.Dot_export
module Interp = Wet_interp.Interp

let build src input =
  let prog = Wet_minic.Frontend.compile_exn src in
  let res = Interp.run prog ~input in
  (res, Builder.build res.Interp.trace)

(* Two statements computing the same function of the same input are
   value-isomorphic; a third computing something else is not. *)
let test_isomorphism_detects () =
  let _, wet =
    build
      {|fn main() {
          var i = 0;
          while (i < 50) {
            var a = i * 2 + 1;
            var b = i * 2 + 1;   // isomorphic with a
            var c = i * 3;       // not isomorphic
            print(a + b + c);
            i = i + 1;
          }
        }|}
      [||]
  in
  let iso, total, redundant = Iso.summary wet in
  Alcotest.(check bool) "found isomorphic copies" true (iso >= 2);
  Alcotest.(check bool) "not everything is isomorphic" true (iso < total);
  Alcotest.(check bool) "redundancy counted" true (redundant >= 49);
  (* members of any class really do produce identical sequences *)
  List.iter
    (fun (k : Iso.klass) ->
      match k.Iso.members with
      | c0 :: rest ->
        let seq c =
          List.init k.Iso.executions (fun i -> W.value_of_copy wet c i)
        in
        let s0 = seq c0 in
        List.iter
          (fun c -> Alcotest.(check (list int)) "identical sequences" s0 (seq c))
          rest
      | [] -> Alcotest.fail "empty class")
    (Iso.classes wet)

let test_hot_streams () =
  (* a trace alternating between a recurring walk and noise *)
  let rng = Wet_util.Prng.create 31 in
  let walk = [| 100; 104; 108; 112; 116 |] in
  let chunks =
    List.init 60 (fun i ->
        if i mod 2 = 0 then walk
        else Array.init 3 (fun _ -> Wet_util.Prng.int rng 5000))
  in
  let trace = Array.concat chunks in
  let streams = HS.mine trace in
  Alcotest.(check bool) "found streams" true (streams <> []);
  let top = List.hd streams in
  (* the recurring walk is (part of) the hottest stream *)
  Alcotest.(check bool)
    (Printf.sprintf "hot stream mentions the walk (heat %d)" top.HS.heat)
    true
    (Array.exists (fun a -> a = 100) top.HS.addresses
     || Array.exists (fun a -> a = 104) top.HS.addresses);
  let cov = HS.coverage streams trace in
  Alcotest.(check bool) (Printf.sprintf "coverage %.2f" cov) true (cov > 0.3)

let test_hot_streams_on_workload () =
  (* gzip re-reads its sliding window: its address trace is stream-rich *)
  let res = Wet_workloads.Spec.run ~scale:1 (Wet_workloads.Spec.find "gzip") in
  let addrs = HS.address_trace res.Interp.trace in
  Alcotest.(check int) "address trace length"
    (Array.length res.Interp.trace.Wet_interp.Trace.mem_ops)
    (Array.length addrs);
  let streams = HS.mine ~min_length:8 (Array.sub addrs 0 (min 20000 (Array.length addrs))) in
  Alcotest.(check bool) "workload has hot streams" true (streams <> [])

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_dot_nodes () =
  let _, wet = build "fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }" [||] in
  let dot = Dot.nodes wet in
  Alcotest.(check bool) "digraph" true (contains dot "digraph wet {");
  Alcotest.(check bool) "has nodes" true (contains dot "execs");
  Alcotest.(check bool) "has edges" true (contains dot "->");
  Alcotest.(check bool) "closes" true (contains dot "}")

let test_dot_slice () =
  let _, wet = build "fn main() { var a = 2; var b = a * 21; print(b); }" [||] in
  let out =
    List.hd
      (Wet_core.Query.copies_matching wet (function
        | Wet_ir.Instr.Output _ -> true
        | _ -> false))
  in
  let dot = Dot.slice wet out 0 in
  Alcotest.(check bool) "criterion highlighted" true (contains dot "lightgrey");
  Alcotest.(check bool) "mul in slice" true (contains dot "mul");
  Alcotest.(check bool) "dashed cd edges ok" true (contains dot "digraph wet_slice")


(* State reconstruction oracle: replay the raw trace's stores up to a
   timestamp cutoff and compare memory images. *)
let test_state_reconstruction () =
  let src =
    {|
global cells[6];
global gen;
fn main() {
  var i = 0;
  while (i < 30) {
    cells[i % 6] = i * i + gen;
    if (i % 10 == 4) { gen = gen + 100; }
    i = i + 1;
  }
  print(cells[3]);
}
|}
  in
  let res, wet1 = build src [||] in
  let wet = Wet_core.Builder.pack wet1 in
  let tr = res.Interp.trace in
  let module T = Wet_interp.Trace in
  let module PA = Wet_cfg.Program_analysis in
  let prog = T.program tr in
  let total = Array.length tr.T.paths in
  let oracle ts =
    let mem = Hashtbl.create 16 in
    let pos = ref 0 and memc = ref 0 in
    Array.iteri
      (fun k pkey ->
        let f, pid = T.decode_path pkey in
        let bl = (PA.fn tr.T.analysis f).PA.bl in
        List.iter
          (fun b ->
            Array.iter
              (fun ins ->
                if Wet_ir.Instr.is_memory ins then begin
                  let op = tr.T.mem_ops.(!memc) in
                  incr memc;
                  (match ins with
                   | Wet_ir.Instr.Store _ when k + 1 <= ts ->
                     Hashtbl.replace mem (op lsr 1) tr.T.values.(!pos)
                   | _ -> ())
                end;
                incr pos)
              prog.Wet_ir.Program.funcs.(f).Wet_ir.Func.blocks.(b)
                .Wet_ir.Func.instrs)
          (Wet_cfg.Ball_larus.blocks_of_path bl pid))
      tr.T.paths;
    mem
  in
  List.iter
    (fun ts ->
      let state = Wet_analyses.State_reconstruct.at wet ~ts in
      let want = oracle ts in
      Hashtbl.iter
        (fun addr v ->
          Alcotest.(check int)
            (Printf.sprintf "ts=%d addr=%d" ts addr)
            v
            (Wet_analyses.State_reconstruct.read state addr))
        want;
      Alcotest.(check int) "written count" (Hashtbl.length want)
        (List.length (Wet_analyses.State_reconstruct.written state));
      (* unwritten cells read as zero *)
      Alcotest.(check int) "unwritten" 0
        (Wet_analyses.State_reconstruct.read state 99999))
    [ 1; total / 3; (2 * total) / 3; total ];
  (* named-global access *)
  let s = Wet_analyses.State_reconstruct.at wet ~ts:total in
  Alcotest.(check int) "gen global" 300
    (Wet_analyses.State_reconstruct.global wet s "gen")


let test_value_locality () =
  (* a program whose loads see mostly one value *)
  let src =
    {|
global a[16];
fn main() {
  var i = 0;
  while (i < 16) { a[i] = 7; i = i + 1; }
  a[5] = 99;
  var s = 0;
  var r = 0;
  while (r < 4) {
    var j = 0;
    while (j < 16) { s = s + a[j]; j = j + 1; }
    r = r + 1;
  }
  print(s);
}
|}
  in
  let _, wet = build src [||] in
  let freq = Wet_analyses.Value_locality.frequent ~top:2 wet in
  (match freq with
   | (v, c) :: _ ->
     Alcotest.(check int) "7 dominates" 7 v;
     Alcotest.(check bool) "count sensible" true (c >= 60)
   | [] -> Alcotest.fail "no frequent values");
  let cov1 = Wet_analyses.Value_locality.coverage wet ~top:1 in
  let cov2 = Wet_analyses.Value_locality.coverage wet ~top:2 in
  Alcotest.(check bool) (Printf.sprintf "top-1 covers most (%.2f)" cov1) true
    (cov1 > 0.9);
  Alcotest.(check bool) "coverage monotone" true (cov2 >= cov1);
  Alcotest.(check bool) "top-2 covers all" true (cov2 > 0.999)

let () =
  Alcotest.run "analyses"
    [
      ( "isomorphism",
        [ Alcotest.test_case "detects identical sequences" `Quick test_isomorphism_detects ] );
      ( "hot-streams",
        [
          Alcotest.test_case "synthetic" `Quick test_hot_streams;
          Alcotest.test_case "workload" `Quick test_hot_streams_on_workload;
        ] );
      ( "value-locality",
        [ Alcotest.test_case "frequent values" `Quick test_value_locality ] );
      ( "state",
        [ Alcotest.test_case "reconstruction oracle" `Quick test_state_reconstruction ] );
      ( "dot",
        [
          Alcotest.test_case "nodes" `Quick test_dot_nodes;
          Alcotest.test_case "slice" `Quick test_dot_slice;
        ] );
    ]
