(* Semantics of the wet_obs observability library: instrument registry,
   log-scale histograms, span nesting and exception safety, exporter
   output (parsed with the local JSON reader below — the repo carries no
   JSON dependency), and the end-to-end guarantee that the tier-2
   per-method stream counters account for every packed stream. *)

module Obs = Wet_obs.Metrics
module Sink = Wet_obs.Sink
module Span = Wet_obs.Span
module Export = Wet_obs.Export
module Spec = Wet_workloads.Spec
module Interp = Wet_interp.Interp
module Builder = Wet_core.Builder

(* Arm the sink for the duration of [f], with zeroed instruments, and
   always disarm afterwards so tests cannot leak state. *)
let with_sink f =
  Sink.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Sink.disable ()) f

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader, just enough to validate exporter output.     *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail m = raise (Bad_json (Printf.sprintf "%s at offset %d" m !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let lit l v =
    let k = String.length l in
    if !pos + k <= n && String.sub s !pos k = l then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ l)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "truncated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
           pos := !pos + 4;
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else Buffer.add_string b (Printf.sprintf "<u%04x>" code)
         | c -> fail (Printf.sprintf "bad escape '%c'" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected a value";
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ((k, v) :: acc)
        | Some '}' ->
          incr pos;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems (v :: acc)
        | Some ']' ->
          incr pos;
          Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_mem k j =
  match mem k j with Some (Str s) -> Some s | _ -> None

let num_mem k j =
  match mem k j with Some (Num f) -> Some f | _ -> None

(* ------------------------------------------------------------------ *)
(* Registry and histogram semantics                                    *)
(* ------------------------------------------------------------------ *)

let test_disabled_mutations () =
  Sink.disable ();
  let c = Obs.counter "t.disabled.counter" in
  let g = Obs.gauge "t.disabled.gauge" in
  let h = Obs.histogram "t.disabled.hist" in
  Obs.add c 7;
  Obs.incr c;
  Obs.set g 42;
  Obs.observe h 9;
  Alcotest.(check int) "counter untouched" 0 (Obs.value c);
  Alcotest.(check int) "gauge untouched" 0 (Obs.gauge_value g);
  Alcotest.(check int) "time still runs f" 5 (Obs.time h (fun () -> 5))

let test_counter_gauge () =
  with_sink (fun () ->
      let c = Obs.counter "t.counter" in
      let g = Obs.gauge "t.gauge" in
      Obs.add c 3;
      Obs.incr c;
      Obs.set g 10;
      Obs.set g 4;
      Alcotest.(check int) "counter accumulates" 4 (Obs.value c);
      Alcotest.(check int) "gauge keeps last" 4 (Obs.gauge_value g);
      Alcotest.(check bool) "same name, same cell" true
        (Obs.value (Obs.counter "t.counter") = 4);
      let names = List.map fst (Obs.snapshot ()) in
      Alcotest.(check bool) "snapshot sorted by name" true
        (names = List.sort compare names))

let test_kind_mismatch () =
  let _ = Obs.counter "t.kind" in
  Alcotest.check_raises "re-interning as gauge rejected"
    (Wet_error.Error
       {
         Wet_error.stage = Wet_error.Obs;
         msg = "Wet_obs.Metrics: t.kind already registered as a counter";
       })
    (fun () -> ignore (Obs.gauge "t.kind"))

let test_bucket_of () =
  Alcotest.(check int) "non-positive in bucket 0" 0 (Obs.bucket_of 0);
  Alcotest.(check int) "negative in bucket 0" 0 (Obs.bucket_of (-17));
  Alcotest.(check int) "1 in bucket 1" 1 (Obs.bucket_of 1);
  for k = 1 to 40 do
    Alcotest.(check int)
      (Printf.sprintf "2^%d opens bucket %d" k (k + 1))
      (k + 1)
      (Obs.bucket_of (1 lsl k));
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1 closes bucket %d" k k)
      k
      (Obs.bucket_of ((1 lsl k) - 1))
  done

let test_histogram () =
  with_sink (fun () ->
      let h = Obs.histogram "t.hist" in
      List.iter (Obs.observe h) [ 1; 3; 3; 100; 0 ];
      match List.assoc "t.hist" (Obs.snapshot ()) with
      | Obs.Histogram s ->
        Alcotest.(check int) "count" 5 s.Obs.h_count;
        Alcotest.(check int) "sum" 107 s.Obs.h_sum;
        Alcotest.(check int) "min" 0 s.Obs.h_min;
        Alcotest.(check int) "max" 100 s.Obs.h_max;
        Alcotest.(check int) "bucket counts cover every sample" 5
          (List.fold_left (fun a (_, c) -> a + c) 0 s.Obs.h_buckets)
      | _ -> Alcotest.fail "t.hist is not a histogram")

let test_time_on_raise () =
  with_sink (fun () ->
      let h = Obs.histogram "t.hist_raise" in
      (try Obs.time h (fun () -> failwith "boom") with Failure _ -> ());
      match List.assoc "t.hist_raise" (Obs.snapshot ()) with
      | Obs.Histogram s ->
        Alcotest.(check int) "duration observed despite raise" 1 s.Obs.h_count
      | _ -> Alcotest.fail "t.hist_raise is not a histogram")

(* ------------------------------------------------------------------ *)
(* Span semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_sink (fun () ->
      let r =
        Span.with_ "outer" (fun () ->
            Span.set_attr "k" (Span.Int 7);
            Span.with_ "inner" (fun () -> Span.depth ()))
      in
      Alcotest.(check int) "two levels deep inside inner" 2 r;
      Alcotest.(check int) "stack unwound" 0 (Span.depth ());
      match Sink.events () with
      | [ inner; outer ] ->
        (* spans are recorded as they close: children precede parents *)
        Alcotest.(check string) "inner first" "inner" inner.Sink.ev_name;
        Alcotest.(check string) "outer second" "outer" outer.Sink.ev_name;
        Alcotest.(check int) "outer at depth 0" 0 outer.Sink.ev_depth;
        Alcotest.(check int) "inner at depth 1" 1 inner.Sink.ev_depth;
        let dur e = Option.get e.Sink.ev_dur_ns in
        Alcotest.(check bool) "inner nested in outer's extent" true
          (inner.Sink.ev_ts_ns >= outer.Sink.ev_ts_ns
          && dur inner <= dur outer);
        Alcotest.(check bool) "set_attr reached the open span" true
          (List.mem_assoc "k" outer.Sink.ev_attrs);
        Alcotest.(check bool) "alloc attributes attached" true
          (List.mem_assoc "alloc_minor_words" outer.Sink.ev_attrs)
      | evs ->
        Alcotest.fail (Printf.sprintf "expected 2 events, got %d"
                         (List.length evs)))

let test_span_on_raise () =
  with_sink (fun () ->
      (try Span.with_ "raising" (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "stack unwound after raise" 0 (Span.depth ());
      match Sink.events () with
      | [ e ] ->
        Alcotest.(check bool) "duration recorded" true
          (e.Sink.ev_dur_ns <> None);
        Alcotest.(check bool) "aborted span carries the raised attribute"
          true
          (List.assoc_opt "raised" e.Sink.ev_attrs = Some (Sink.Bool true))
      | evs ->
        Alcotest.fail
          (Printf.sprintf "expected 1 event, got %d" (List.length evs)))

let test_span_disabled () =
  Sink.disable ();
  (* the buffer is only cleared on [enable]; assert nothing is added *)
  let before = List.length (Sink.events ()) in
  let r = Span.with_ "ghost" (fun () -> 11) in
  Alcotest.(check int) "with_ is transparent when disabled" 11 r;
  Span.instant "ghost-instant";
  Alcotest.(check int) "nothing recorded" before
    (List.length (Sink.events ()))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_valid () =
  with_sink (fun () ->
      Span.with_ "phase.a" (fun () ->
          Span.instant "tick" ~attrs:[ ("i", Span.Int 1) ];
          Span.with_ "phase.b" ~attrs:[ ("s", Span.Str "x\"y\\z") ]
            (fun () -> ()));
      let doc = parse_json (Export.chrome_trace ()) in
      Alcotest.(check (option string)) "schema version" (Some Export.schema)
        (str_mem "schema" doc);
      Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
        (str_mem "displayTimeUnit" doc);
      match mem "traceEvents" doc with
      | Some (Arr evs) ->
        Alcotest.(check int) "three events" 3 (List.length evs);
        List.iter
          (fun e ->
            Alcotest.(check bool) "has name" true (str_mem "name" e <> None);
            Alcotest.(check bool) "has ts" true (num_mem "ts" e <> None);
            match str_mem "ph" e with
            | Some "X" ->
              Alcotest.(check bool) "complete event has dur" true
                (num_mem "dur" e <> None)
            | Some "i" ->
              Alcotest.(check (option string)) "instant scope" (Some "t")
                (str_mem "s" e)
            | ph ->
              Alcotest.fail
                (Printf.sprintf "unexpected ph %s"
                   (Option.value ph ~default:"<none>")))
          evs
      | _ -> Alcotest.fail "traceEvents missing")

let test_metrics_jsonl_valid () =
  with_sink (fun () ->
      Obs.add (Obs.counter "t.jsonl.counter") 2;
      Obs.set (Obs.gauge "t.jsonl.gauge") 5;
      let h = Obs.histogram "t.jsonl.hist" in
      List.iter (Obs.observe h) [ 1; 2; 900 ];
      let lines =
        String.split_on_char '\n' (Export.metrics_jsonl ())
        |> List.filter (fun l -> l <> "")
      in
      let header, rest =
        match lines with
        | h :: rest -> (h, rest)
        | [] -> Alcotest.fail "empty export"
      in
      Alcotest.(check (option string)) "schema header line"
        (Some Export.schema)
        (str_mem "schema" (parse_json header));
      Alcotest.(check bool) "one line per instrument" true
        (List.length rest >= 3);
      let parsed = List.map parse_json rest in
      List.iter
        (fun j ->
          Alcotest.(check bool) "typed and named" true
            (str_mem "type" j <> None && str_mem "name" j <> None))
        parsed;
      let hist =
        List.find (fun j -> str_mem "name" j = Some "t.jsonl.hist") parsed
      in
      Alcotest.(check (option (float 0.))) "histogram count" (Some 3.)
        (num_mem "count" hist);
      match mem "buckets" hist with
      | Some (Arr bs) ->
        let total =
          List.fold_left
            (fun a b -> a +. Option.value (num_mem "count" b) ~default:0.)
            0. bs
        in
        Alcotest.(check (float 0.)) "bucket counts sum to count" 3. total
      | _ -> Alcotest.fail "histogram line lacks buckets")

(* ------------------------------------------------------------------ *)
(* Interpreter heartbeat                                               *)
(* ------------------------------------------------------------------ *)

(* The heartbeat fires after every N-th completed statement, so a run of
   S statements beats exactly floor(S/N) times. *)
let test_heartbeat_count () =
  with_sink (fun () ->
      let n = 1000 in
      Sink.heartbeat_every := n;
      Fun.protect
        ~finally:(fun () -> Sink.heartbeat_every := 0)
        (fun () ->
          let w = Spec.find "parser" in
          let res = Spec.run ~scale:1 w in
          let beats =
            List.length
              (List.filter
                 (fun e -> e.Sink.ev_name = "interp.heartbeat")
                 (Sink.events ()))
          in
          Alcotest.(check int) "floor(statements/N) heartbeats"
            (res.Interp.stmts_executed / n)
            beats))

(* ------------------------------------------------------------------ *)
(* End-to-end: tier-2 method accounting on a real workload             *)
(* ------------------------------------------------------------------ *)

let test_pack_method_accounting () =
  with_sink (fun () ->
      let w = Spec.find "parser" in
      let res = Spec.run ~scale:2 w in
      let w1 = Builder.build res.Interp.trace in
      ignore (Builder.pack w1);
      let total = Obs.value (Obs.counter "pack.streams") in
      let per_method =
        List.fold_left
          (fun acc (name, r) ->
            match r with
            | Obs.Counter v
              when String.starts_with ~prefix:"pack.method." name
                   && String.ends_with ~suffix:".streams" name ->
              acc + v
            | _ -> acc)
          0 (Obs.snapshot ())
      in
      Alcotest.(check bool) "streams were packed" true (total > 0);
      Alcotest.(check int) "per-method counts account for every stream"
        total per_method;
      (* the pipeline spans closed in dependency order *)
      let names = List.map (fun e -> e.Sink.ev_name) (Sink.events ()) in
      List.iter
        (fun expected ->
          Alcotest.(check bool) (expected ^ " span present") true
            (List.mem expected names))
        [ "interp.run"; "build.tier1"; "build.tier2" ])

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "disabled mutations are no-ops" `Quick
            test_disabled_mutations;
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_kind_mismatch;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_of;
          Alcotest.test_case "histogram snapshot" `Quick test_histogram;
          Alcotest.test_case "time observes on raise" `Quick
            test_time_on_raise;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and attributes" `Quick
            test_span_nesting;
          Alcotest.test_case "closed on raise" `Quick test_span_on_raise;
          Alcotest.test_case "transparent when disabled" `Quick
            test_span_disabled;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace parses" `Quick
            test_chrome_trace_valid;
          Alcotest.test_case "metrics jsonl parses" `Quick
            test_metrics_jsonl_valid;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "heartbeat count" `Quick test_heartbeat_count;
          Alcotest.test_case "tier-2 method accounting" `Quick
            test_pack_method_accounting;
        ] );
    ]
