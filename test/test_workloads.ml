(* Exercises the deprecated module-level cursor API alongside the new
   Session surface; the alias stays until the legacy API is removed. *)
[@@@alert "-deprecated"]

module Spec = Wet_workloads.Spec
module Interp = Wet_interp.Interp

(* Tiny scales keeping the whole suite fast. *)
let tiny w =
  match w.Spec.name with
  | "099.go" -> 3
  | "126.gcc" -> 25
  | "130.li" -> 12
  | "164.gzip" -> 1
  | "181.mcf" -> 1
  | "197.parser" -> 60
  | "255.vortex" -> 300
  | "256.bzip2" -> 1
  | "300.twolf" -> 2
  | _ -> 1

let test_all_compile () =
  List.iter
    (fun w ->
      let prog = Spec.compile w in
      Alcotest.(check (list Alcotest.reject)) (w.Spec.name ^ " validates") []
        (List.map (fun _ -> assert false) (Wet_ir.Validate.errors prog)))
    Spec.all

let test_all_run_deterministically () =
  List.iter
    (fun w ->
      let r1 = Spec.run ~scale:(tiny w) w in
      let r2 = Spec.run ~scale:(tiny w) w in
      Alcotest.(check (array int)) (w.Spec.name ^ " outputs stable")
        r1.Interp.outputs r2.Interp.outputs;
      Alcotest.(check int) (w.Spec.name ^ " stmts stable")
        r1.Interp.stmts_executed r2.Interp.stmts_executed;
      Alcotest.(check bool) (w.Spec.name ^ " produced output") true
        (Array.length r1.Interp.outputs > 0))
    Spec.all

let test_scaling () =
  List.iter
    (fun w ->
      let small = (Spec.run ~scale:(tiny w) w).Interp.stmts_executed in
      let large = (Spec.run ~scale:(2 * tiny w) w).Interp.stmts_executed in
      Alcotest.(check bool)
        (Printf.sprintf "%s grows with scale (%d -> %d)" w.Spec.name small large)
        true (large > small))
    Spec.all

let test_find () =
  Alcotest.(check string) "full name" "099.go" (Spec.find "099.go").Spec.name;
  Alcotest.(check string) "suffix" "181.mcf" (Spec.find "mcf").Spec.name;
  Alcotest.(check bool) "not found" true
    (match Spec.find "nonesuch" with
     | _ -> false
     | exception Not_found -> true)

let test_distinct_seeds_and_names () =
  let names = List.map (fun w -> w.Spec.name) Spec.all in
  Alcotest.(check int) "nine benchmarks" 9 (List.length names);
  Alcotest.(check int) "unique names" 9
    (List.length (List.sort_uniq compare names));
  let seeds = List.map (fun w -> w.Spec.seed) Spec.all in
  Alcotest.(check int) "unique seeds" 9
    (List.length (List.sort_uniq compare seeds))

(* The full pipeline holds on every workload (value reconstruction spot
   check through the WET). *)
let test_wet_pipeline_spot () =
  List.iter
    (fun w ->
      let res = Spec.run ~scale:(tiny w) w in
      let wet = Wet_core.Builder.build res.Interp.trace in
      Wet_core.Query.park wet Wet_core.Query.Forward;
      let blocks = ref 0 in
      let n =
        Wet_core.Query.control_flow wet Wet_core.Query.Forward ~f:(fun _ _ ->
            incr blocks)
      in
      Alcotest.(check int) (w.Spec.name ^ " cf extraction") n !blocks;
      Alcotest.(check int)
        (w.Spec.name ^ " block count")
        (Array.length res.Interp.trace.Wet_interp.Trace.blocks)
        n)
    Spec.all

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "all compile" `Quick test_all_compile;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "distinct" `Quick test_distinct_seeds_and_names;
        ] );
      ( "execution",
        [
          Alcotest.test_case "deterministic" `Quick test_all_run_deterministically;
          Alcotest.test_case "scaling" `Quick test_scaling;
          Alcotest.test_case "wet pipeline" `Quick test_wet_pipeline_spot;
        ] );
    ]
